package main

import (
	"encoding/json"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/emitter"
	"repro/internal/fields"
	"repro/internal/keytab"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/subscribe"
	"repro/internal/telemetry"
	"repro/internal/tracez"
	"repro/internal/tuple"
)

// TestAllocBudget is the gating side of `make bench-alloc`: each hot path
// runs under testing.AllocsPerRun and must not exceed the budget checked in
// as alloc_budget.json. The budgets are all zero — the tentpole claim of the
// arena-backed state rewrite — and tightening or relaxing one is a reviewed
// change to the JSON file, not a silent drift.
func TestAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("alloc_budget.json")
	if err != nil {
		t.Fatal(err)
	}
	budgets := make(map[string]float64)
	if err := json.Unmarshal(raw, &budgets); err != nil {
		t.Fatal(err)
	}
	check := func(name string, fn func()) {
		t.Helper()
		budget, ok := budgets[name]
		if !ok {
			t.Fatalf("alloc_budget.json has no budget for %q", name)
		}
		if allocs := testing.AllocsPerRun(200, fn); allocs > budget {
			t.Errorf("%s: %.1f allocs/op exceeds budget of %.0f", name, allocs, budget)
		}
	}

	// Data plane: one packet through a compiled query instance whose key is
	// already stored (same frame every iteration).
	sw := allocBudgetSwitch(t)
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 2, Proto: 6, DstPort: 80,
		TCPFlags: fields.FlagSYN, Pad: 256})
	sw.Process(frame) // warm: first touch appends to the bank's arena
	check("SwitchProcess", func() { sw.Process(frame) })

	// Monitoring port: encode + decode of a mirror record through reused
	// buffers.
	m := pisa.Mirror{QID: 1, Level: 32, EntryOp: 2,
		Vals: []tuple.Value{tuple.U64(0xC0A80101), tuple.U64(1)}}
	var buf []byte
	var dec emitter.MirrorDecoder
	var out pisa.Mirror
	buf = emitter.EncodeMirror(buf[:0], &m)
	if err := dec.Decode(buf, &out); err != nil {
		t.Fatal(err)
	}
	check("EmitterRoundTrip", func() {
		buf = emitter.EncodeMirror(buf[:0], &m)
		if err := dec.Decode(buf, &out); err != nil {
			t.Fatal(err)
		}
	})

	// Keyed state: GetOrInsert hit on a populated table.
	tab := keytab.New()
	vals := []tuple.Value{tuple.U64(7)}
	key := tuple.AppendKey(nil, vals, []int{0})
	tab.GetOrInsert(key, vals, []int{0}, 1)
	check("KeytabSteadyState", func() {
		idx, existed := tab.GetOrInsert(key, vals, []int{0}, 1)
		if !existed {
			t.Fatal("warm key missing")
		}
		tab.SetAgg(idx, tab.Agg(idx)+1)
	})

	// Stream processor: tuple ingest folding into an existing reduce key.
	eng := allocBudgetEngine(t)
	tvals := []tuple.Value{tuple.U64(42), tuple.U64(1)}
	eng.IngestTuple(1, 0, stream.SideLeft, tvals)
	check("EngineReduceHit", func() { eng.IngestTuple(1, 0, stream.SideLeft, tvals) })

	// Scalar fallback ingest: the per-tuple interpreter through a tuple-phase
	// map into a warm reduce key. The map's output row comes from the
	// executor's per-op scratch, so the classic path is allocation-free too.
	scEng := allocBudgetMapEngine(t, true)
	mvals := []tuple.Value{tuple.U64(9), tuple.U64(42), tuple.U64(1)}
	scEng.IngestTuple(1, 0, stream.SideLeft, mvals)
	check("EngineScalarIngest", func() { scEng.IngestTuple(1, 0, stream.SideLeft, mvals) })

	// Batched ingest: tuples buffered into the column-major batch and flushed
	// through filter+map+reduce. Each run crosses a flush boundary (300 rows
	// against a 256-row batch), so the budget covers both the append path and
	// the columnar flush with its bitmap, map-buffer, and bulk-probe scratch.
	bEng := allocBudgetMapEngine(t, false)
	for w := 0; w < 2; w++ {
		for i := 0; i < 600; i++ {
			mvals[0] = tuple.U64(uint64(i % 16))
			bEng.IngestTuple(1, 0, stream.SideLeft, mvals)
		}
		bEng.EndWindow()
	}
	check("EngineBatchedIngest", func() {
		for i := 0; i < 300; i++ {
			mvals[0] = tuple.U64(uint64(i % 16))
			bEng.IngestTuple(1, 0, stream.SideLeft, mvals)
		}
	})

	// Result delivery: one window published through the subscription server
	// with a stalled drop-oldest subscriber. Encode-once into pooled frames
	// plus drop-oldest recycling keeps the publish path allocation-free once
	// the frame buffers and dedup maps are warm; the subscriber's writer
	// goroutine sits blocked in a pipe write, so nothing else runs during the
	// measurement.
	srv := subscribe.NewServer()
	srv.Instrument(telemetry.NewRegistry())
	defer srv.Close()
	stalled, peer := net.Pipe() // nobody reads: the writer blocks on its first frame
	defer peer.Close()
	defer stalled.Close() // unblocks (and evicts) the writer before srv.Close
	if _, err := srv.Attach(stalled, subscribe.SubscribeRequest{
		Mode: subscribe.Sample, Policy: subscribe.DropOldest, AllLevels: true, QueueCap: 4,
	}); err != nil {
		t.Fatal(err)
	}
	rep := allocBudgetReport()
	for i := 0; i < 4; i++ {
		srv.Publish(rep) // warm: grow every circulating frame buffer, fill the queue
	}
	check("SubscribePublish", func() { srv.Publish(rep) })

	// Trace recording: an op span started, attributed, and ended on a warm
	// lane, plus the window-close bookkeeping with retention disabled. Spans
	// are flat values in preallocated rings, so the steady state records
	// without touching the heap.
	tzr := tracez.New(tracez.Options{HeadEvery: -1, MinWindows: 1 << 30})
	lane := tzr.Lane(1)
	win := 0
	record := func() {
		lane.SetContext(win, 1)
		sp := lane.Start(tracez.NameOpEval)
		sp.Instance(1, 32)
		sp.Attr(tracez.AttrTuplesIn, 17)
		sp.End()
		tzr.CloseWindow(win, 1_000_000)
		win++
	}
	record() // warm: lane registration and estimator buckets
	check("TraceRecord", record)
}

// allocBudgetReport fabricates a window report with a coarse and a finest
// instance per query, the shape the fan-out path sees live.
func allocBudgetReport() *runtime.WindowReport {
	mk := func(qid uint16, level uint8, n int) stream.Result {
		res := stream.Result{QID: qid, Level: level,
			Schema: tuple.Schema{fields.DstIP, fields.AggVal}}
		for i := 0; i < n; i++ {
			res.Tuples = append(res.Tuples,
				[]tuple.Value{tuple.U64(uint64(qid)<<24 | uint64(i)), tuple.U64(uint64(level))})
		}
		return res
	}
	rep := &runtime.WindowReport{
		Index:      7,
		Results:    []stream.Result{mk(1, 32, 6), mk(2, 16, 3)},
		AllResults: []stream.Result{mk(1, 8, 2), mk(1, 32, 6), mk(2, 16, 3)},
	}
	return rep
}

func allocBudgetQuery() *query.Query {
	q := query.NewBuilder("q1", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 40)).
		MustBuild()
	q.ID = 1
	return q
}

func allocBudgetSwitch(t testing.TB) *pisa.Switch {
	q := allocBudgetQuery()
	pipe := compile.CompilePipeline(q.Left.Ops)
	spec := &pisa.InstanceSpec{QID: 1, Ops: q.Left.Ops, Tables: pipe.Tables,
		CutAt: len(pipe.Tables), StageOf: []int{0, 1, 2, 3},
		RegEntries: []int{0, 0, 0, 1 << 14}}
	sw, err := pisa.NewSwitch(pisa.DefaultConfig(),
		&pisa.Program{Instances: []*pisa.InstanceSpec{spec}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func allocBudgetEngine(t testing.TB) *stream.Engine {
	eng := stream.NewEngine(nil)
	if err := eng.Install(allocBudgetQuery(), 0, stream.Partition{LeftStart: 2}); err != nil {
		t.Fatal(err)
	}
	return eng
}

// allocBudgetMapEngine installs a chain whose tuple-phase section starts
// with a map, so ingest exercises the map scratch (scalar) or the columnar
// map buffers (batched) before folding into the reduce.
func allocBudgetMapEngine(t testing.TB, scalar bool) *stream.Engine {
	q := query.NewBuilder("qm", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP), query.ConstCol(1)).
		Map(query.C(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 1<<40)).
		MustBuild()
	q.ID = 1
	eng := stream.NewEngine(nil)
	eng.SetScalar(scalar)
	if err := eng.Install(q, 0, stream.Partition{LeftStart: 2}); err != nil {
		t.Fatal(err)
	}
	return eng
}

// BenchmarkKeytabSteadyState measures the per-tuple cost of the arena-backed
// table once every key exists: encode the grouping key into scratch, probe,
// fold the aggregate. This is the inner loop every stateful operator (and,
// via keytab.Store, every register bank) now runs.
func BenchmarkKeytabSteadyState(b *testing.B) {
	tab := keytab.New()
	const keys = 1024
	vals := make([][]tuple.Value, keys)
	var scratch []byte
	for i := range vals {
		vals[i] = []tuple.Value{tuple.U64(uint64(i)), tuple.U64(1)}
		scratch = tuple.AppendKey(scratch[:0], vals[i], []int{0})
		tab.GetOrInsert(scratch, vals[i], []int{0}, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vals[i&(keys-1)]
		scratch = tuple.AppendKey(scratch[:0], v, []int{0})
		idx, existed := tab.GetOrInsert(scratch, v, []int{0}, v[1].U)
		if existed {
			tab.SetAgg(idx, tab.Agg(idx)+v[1].U)
		}
	}
}
