# Tier-1 verification gate. `make check` is what CI (and the roadmap) runs.

GO ?= go

.PHONY: check fmt vet build test race bench bench-alloc bench-smoke check-batch check-metrics check-subscribe check-trace

check: fmt vet build test race check-batch check-metrics check-subscribe check-trace bench-alloc
	-@$(MAKE) --no-print-directory bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry ./internal/runtime ./internal/stream

bench:
	$(GO) test -bench . -benchmem

# Columnar-execution gate: the randomized differential fuzz drives the
# batched executor against the per-tuple scalar interpreter over generated
# op chains and adversarial window sizes (empty, all-filtered, exact batch
# boundaries), the bulk keytab/dyn-table probes against their scalar
# counterparts, and the full-workload differential proves WindowReports are
# bit-identical to the scalar oracle sequentially and at 1/2/8 workers.
check-batch:
	$(GO) test -run 'TestBatched|TestContainsKeyBatch' ./internal/stream
	$(GO) test -run 'TestLookupBulk' ./internal/keytab
	$(GO) test -run 'TestAppendKeyCols' ./internal/tuple
	$(GO) test -run 'TestShardedMatchesSequential' ./internal/runtime

# Metric-naming lint: instruments a full deployment (runtime + flight
# recorder) into one registry and runs telemetry.Registry.Lint over every
# family (sonata_ prefix, counter/gauge/histogram suffix rules, HELP text).
check-metrics:
	$(GO) test -run 'TestMetricsLint|TestLint' ./internal/runtime ./internal/telemetry

# Subscription delivery gate, under the race detector: the differential test
# proves concurrent subscribers observe the sequential runtime's per-window
# result sequence bit-identically at 1/2/8 workers, and the backpressure test
# proves a stalled consumer is evicted without delaying window close.
check-subscribe:
	$(GO) test -race -run 'TestSubscribe|TestPublishNeverBlocks|TestOnChange|TestSample|TestTargetDefined|TestDialOut' ./internal/subscribe

# Trace-tree gate, under the race detector: the ring/rotation test hammers
# eight single-writer lanes against concurrent window closes, and the
# runtime-level differential test proves retained span-tree structure is
# identical at 1/2/8 workers (plus the latency-triggered retention check).
check-trace:
	$(GO) test -race ./internal/tracez
	$(GO) test -race -run 'TestTraceTree|TestLatencyTriggered' ./internal/runtime

# Gating allocation budget: TestAllocBudget pins each hot path's allocs/op
# against alloc_budget.json (all zeros since the arena-backed state rewrite);
# the -benchmem run prints the same paths' current numbers for the log.
# Allocation counts are deterministic, so unlike bench-smoke this gate is not
# subject to perf noise and does fail `make check`.
bench-alloc:
	$(GO) test -run TestAllocBudget -benchtime 100x -benchmem \
		-bench 'BenchmarkSwitchProcess$$|BenchmarkEmitterRoundTrip$$|BenchmarkKeytabSteadyState$$' .

# Quick perf regression probe: the four hot-path benchmarks, sequential vs
# sharded, at a fixed iteration count, swept at -cpu 1 (pure sharding
# overhead: one worker, no parallelism) and -cpu 4 (the parallel win when the
# runner has the cores). The trailing awk pass distills the headline into a
# named metric per cpu count — `sharded_vs_sequential_sp_tuples_ratio` — so
# the uploaded CI artifact carries the ratio without anyone re-deriving it
# from raw benchmark lines. Non-gating in `make check` (perf noise must not
# fail CI); run it by hand and compare against BENCH_pr10.json.
bench-smoke:
	@rm -f bench-smoke.raw
	@for n in 1 4; do \
		$(GO) test -run xxx -benchtime 10x -cpu $$n \
			-bench 'BenchmarkEndToEndWindow|BenchmarkFig7bMultiQuery|BenchmarkEmitterRoundTrip|BenchmarkSwitchProcess' . \
			| tee -a bench-smoke.raw || exit 1; \
	done
	@awk '/^BenchmarkEndToEndWindow\/(sequential|sharded)/ { \
		cpu = $$1; sub(/^[^ ]*-/, "", cpu); if (cpu !~ /^[0-9]+$$/) cpu = 1; \
		v = 0; for (i = 1; i <= NF; i++) if ($$i == "sp_tuples/s") v = $$(i-1); \
		if ($$1 ~ /sequential/) seq[cpu] = v; else sh[cpu] = v } \
		END { for (c in sh) if (seq[c] > 0) \
			printf "sharded_vs_sequential_sp_tuples_ratio cpu=%s %.3f\n", c, sh[c] / seq[c] }' \
		bench-smoke.raw
	@rm -f bench-smoke.raw
