# Tier-1 verification gate. `make check` is what CI (and the roadmap) runs.

GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke

check: fmt vet build test race
	-@$(MAKE) --no-print-directory bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry ./internal/runtime ./internal/stream

bench:
	$(GO) test -bench . -benchmem

# Quick perf regression probe: the four hot-path benchmarks, sequential vs
# sharded, at a fixed iteration count. Non-gating in `make check` (perf noise
# must not fail CI); run it by hand and compare against BENCH_pr2.json.
bench-smoke:
	$(GO) test -run xxx -benchtime 10x -cpu 4 \
		-bench 'BenchmarkEndToEndWindow|BenchmarkFig7bMultiQuery|BenchmarkEmitterRoundTrip|BenchmarkSwitchProcess' .
