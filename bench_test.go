// Package repro's root benchmarks regenerate each table and figure of the
// paper at a reduced (benchmark-friendly) scale; cmd/eval runs the same
// experiments at full scale. One benchmark per evaluation artifact:
//
//	BenchmarkTable3Compile              — Table 3 (query compilation + codegen)
//	BenchmarkFig3Collisions             — Figure 3 (collision-rate model)
//	BenchmarkFig5Costs                  — Figure 5 (refinement cost matrix)
//	BenchmarkFig7aSingleQuery           — Figure 7a (per-query load, all plan modes)
//	BenchmarkFig7bMultiQuery            — Figure 7b (concurrent queries)
//	BenchmarkFig8Constraints            — Figure 8 (switch-constraint sweeps)
//	BenchmarkFig9CaseStudy              — Figure 9 (Zorro end-to-end)
//	BenchmarkRefinementUpdateOverhead   — Section 6.2 update-cost micro-benchmark
//
// Ablations (design choices DESIGN.md calls out):
//
//	BenchmarkAblationRefinementOnOff    — Sonata with vs without refinement
//	BenchmarkAblationRegisterChains     — d = 1 vs d = 3 collision shunting
//	BenchmarkAblationPlannerILP         — greedy packer vs ILP plan selection
//
// Throughput benchmarks:
//
//	BenchmarkSwitchProcess              — data-plane packets/second
//	BenchmarkEngineIngest               — stream-processor tuples/second
package main

import (
	"fmt"
	"io"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/emitter"
	"repro/internal/eval"
	"repro/internal/fields"
	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/subscribe"
	"repro/internal/telemetry"
	"repro/internal/tracez"
	"repro/internal/tuple"
)

func benchScale() eval.Scale {
	return eval.Scale{PacketsPerWindow: 4_000, Windows: 5, TrainWindows: 2, Hosts: 500, Seed: 1}
}

// benchWarmupWindows is how many windows the end-to-end benchmarks replay
// before b.ResetTimer(). The first windows are dominated by one-time growth —
// batch pools filling, output arenas and dynamic tables reaching steady
// capacity, shard workers faulting in their state — which at -benchtime 10x
// used to account for a third of the measurement.
const benchWarmupWindows = 8

func benchWorkload(b *testing.B) *eval.Workload {
	b.Helper()
	w, err := eval.NewWorkload(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkTable3Compile(b *testing.B) {
	p := queries.DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := eval.Table3(p, []int{8, 16, 24})
		if len(t.Rows) != 11 {
			b.Fatal("table 3 incomplete")
		}
	}
}

func BenchmarkFig3Collisions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.Fig3()
		if len(t.Rows) == 0 {
			b.Fatal("fig 3 empty")
		}
	}
}

func BenchmarkFig5Costs(b *testing.B) {
	w := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig5(w, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aSingleQuery(b *testing.B) {
	w := benchWorkload(b)
	cfg := pisa.DefaultConfig()
	params := eval.ScaledParams(benchScale())
	// One representative query per iteration keeps the benchmark honest
	// about per-run cost; cmd/eval produces the full 8x5 grid.
	q := queries.NewlyOpenedTCPConns(params)
	q.ID = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := eval.NewExperiment(w, []*query.Query{q})
		if _, err := e.AllModes(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bMultiQuery(b *testing.B) {
	w := benchWorkload(b)
	cfg := pisa.DefaultConfig()
	params := eval.ScaledParams(benchScale())
	// The full concurrent query set, as in the paper's Figure 7b.
	qs := queries.TopEight(params)
	run := func(b *testing.B, workers int) {
		b.Helper()
		// Warm-up: one full experiment outside the timer primes the page
		// cache, the allocator, and every per-package pool, so the timed
		// iterations measure the steady-state replay rather than first-touch
		// costs.
		{
			e := eval.NewExperiment(w, qs)
			e.Workers = workers
			if _, err := e.Run(cfg, planner.ModeSonata); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := eval.NewExperiment(w, qs)
			e.Workers = workers
			res, err := e.Run(cfg, planner.ModeSonata)
			if err != nil {
				b.Fatal(err)
			}
			if workers > 1 {
				// Achievable speedup from measured shard busy times: total
				// work over critical path. Wall-clock ns/op only reflects it
				// when the host has as many free cores as shards.
				b.ReportMetric(res.SpeedupPotential(), "speedup-potential")
			}
		}
	}
	// The sharded worker count follows GOMAXPROCS, so `-cpu 1,4,8` sweeps
	// shard counts while `sequential` stays the single-goroutine baseline.
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("sharded", func(b *testing.B) { run(b, goruntime.GOMAXPROCS(0)) })
}

func BenchmarkFig8Constraints(b *testing.B) {
	w := benchWorkload(b)
	params := eval.ScaledParams(benchScale())
	qs := queries.TopEight(params)[:3]
	e := eval.NewExperiment(w, qs)
	if _, err := e.Training(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One sweep point per iteration: a stage-starved switch.
		cfg := pisa.DefaultConfig()
		cfg.Stages = 4
		if _, err := e.Run(cfg, planner.ModeSonata); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.CaseStudy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if res.AttackConfirmedWindow < 0 {
			b.Fatal("attack not confirmed")
		}
	}
}

func BenchmarkRefinementUpdateOverhead(b *testing.B) {
	// The Section 6.2 micro-benchmark: time to replace ~200 dynamic filter
	// entries on the switch at a window boundary.
	q := query.NewBuilder("q1", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 40)).
		MustBuild()
	q.ID = 1
	key, _ := query.QueryRefinementKey(q)
	aug := planner.AugmentQuery(q, key, 16, 32, planner.Thresholds{})
	pipe := compile.CompilePipeline(aug.Left.Ops)
	spec := &pisa.InstanceSpec{QID: 1, Level: 32, Ops: aug.Left.Ops, Tables: pipe.Tables,
		CutAt: len(pipe.Tables), StageOf: []int{0, 1, 2, 3, 4},
		RegEntries: []int{0, 0, 0, 0, 4096}}
	sw, err := pisa.NewSwitch(pisa.DefaultConfig(), &pisa.Program{Instances: []*pisa.InstanceSpec{spec}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = stream.DynKeyFromValue(fields.DstIP, tuple.U64(uint64(i)<<16), 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.UpdateDynTable(1, 32, pisa.SideLeft, 0, keys); err != nil {
			b.Fatal(err)
		}
		sw.EndWindow() // includes the register reset the paper also times
	}
}

func BenchmarkAblationRefinementOnOff(b *testing.B) {
	w := benchWorkload(b)
	cfg := pisa.DefaultConfig()
	// Constrain the switch so refinement actually matters.
	cfg.RegisterBitsPerStage = 1 << 18
	cfg.MaxRegisterBitsPerOp = 1 << 17
	params := eval.ScaledParams(benchScale())
	qs := queries.TopEight(params)[:3]
	e := eval.NewExperiment(w, qs)
	if _, err := e.Training(); err != nil {
		b.Fatal(err)
	}
	b.Run("with-refinement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := e.Run(cfg, planner.ModeSonata)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanTuples(), "tuples/window")
		}
	})
	b.Run("without-refinement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := e.Run(cfg, planner.ModeMaxDP)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MeanTuples(), "tuples/window")
		}
	})
}

func BenchmarkAblationRegisterChains(b *testing.B) {
	for _, d := range []int{1, 3} {
		b.Run(chainName(d), func(b *testing.B) {
			w := benchWorkload(b)
			cfg := pisa.DefaultConfig()
			cfg.RegisterChains = d
			params := eval.ScaledParams(benchScale())
			qs := queries.TopEight(params)[:3]
			e := eval.NewExperiment(w, qs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Run(cfg, planner.ModeSonata)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Collisions), "collisions")
			}
		})
	}
}

func chainName(d int) string {
	return "d=" + string(rune('0'+d))
}

func BenchmarkAblationPlannerILP(b *testing.B) {
	w := benchWorkload(b)
	params := eval.ScaledParams(benchScale())
	qs := queries.TopEight(params)[:3]
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		b.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := planner.DefaultOptions()
			if _, err := planner.PlanQueries(tr, qs, cfg, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ilp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := planner.DefaultOptions()
			opts.UseILP = true
			opts.ILPBudget = 2 * time.Second
			if _, err := planner.PlanQueries(tr, qs, cfg, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSwitchProcess(b *testing.B) {
	q := query.NewBuilder("q1", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 40)).
		MustBuild()
	q.ID = 1
	pipe := compile.CompilePipeline(q.Left.Ops)
	spec := &pisa.InstanceSpec{QID: 1, Ops: q.Left.Ops, Tables: pipe.Tables,
		CutAt: len(pipe.Tables), StageOf: []int{0, 1, 2, 3},
		RegEntries: []int{0, 0, 0, 1 << 14}}
	sw, err := pisa.NewSwitch(pisa.DefaultConfig(), &pisa.Program{Instances: []*pisa.InstanceSpec{spec}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 2, Proto: 6, DstPort: 80,
		TCPFlags: fields.FlagSYN, Pad: 256})
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Process(frame)
	}
}

// BenchmarkEngineIngest runs the stream hot path bare and instrumented; the
// two sub-benchmark numbers bound the telemetry overhead (the acceptance
// bar is <5% regression). The instrumented variant derives tuples/s from a
// registry snapshot diff rather than b.N, proving the counters see every
// tuple the loop pushed.
func BenchmarkEngineIngest(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry) {
		q := query.NewBuilder("q1", 3*time.Second).
			Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
			Map(query.F(fields.DstIP), query.ConstCol(1)).
			Reduce(query.AggSum, fields.DstIP).
			Filter(query.Gt(fields.AggVal, 40)).
			MustBuild()
		q.ID = 1
		engine := stream.NewEngine(nil)
		engine.Instrument(reg)
		if err := engine.Install(q, 0, stream.Partition{LeftStart: 2}); err != nil {
			b.Fatal(err)
		}
		vals := []tuple.Value{tuple.U64(42), tuple.U64(1)}
		before := reg.Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.IngestTuple(1, 0, stream.SideLeft, vals)
			if i%100_000 == 99_999 {
				engine.EndWindow()
			}
		}
		b.StopTimer()
		if reg != nil {
			diff := reg.Snapshot().Diff(before)
			tuples := diff.Counter("sonata_stream_tuples_in_total")
			if tuples != uint64(b.N) {
				b.Fatalf("registry saw %d tuples, loop pushed %d", tuples, b.N)
			}
			b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/s")
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) { run(b, telemetry.NewRegistry()) })
}

func BenchmarkEmitterRoundTrip(b *testing.B) {
	m := pisa.Mirror{QID: 1, Level: 32, EntryOp: 2,
		Vals: []tuple.Value{tuple.U64(0xC0A80101), tuple.U64(1)}}
	var buf []byte
	var dec emitter.MirrorDecoder
	var out pisa.Mirror
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = emitter.EncodeMirror(buf[:0], &m)
		if err := dec.Decode(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Steady-state allocation bound: the encode buffer and the decoder's
	// value buffer are both reused, so the round trip is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		buf = emitter.EncodeMirror(buf[:0], &m)
		if err := dec.Decode(buf, &out); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("round trip allocates %.1f per op, want 0", allocs)
	}
}

// reportSPTuples derives the sp_tuples/s number every end-to-end benchmark
// (and therefore every BENCH_*.json record) reports through one code path:
// the registry's delivered-tuple counter over the measured interval — the
// same series the live /metrics endpoint exports — divided by elapsed
// wall-clock. Call it after b.StopTimer() with a snapshot diff spanning the
// timed region.
func reportSPTuples(b *testing.B, diff telemetry.Snapshot) {
	b.Helper()
	b.ReportMetric(float64(diff.Counter("sonata_runtime_tuples_to_sp_total"))/b.Elapsed().Seconds(), "sp_tuples/s")
}

func BenchmarkEndToEndWindow(b *testing.B) {
	w := benchWorkload(b)
	params := eval.ScaledParams(benchScale())
	qs := queries.TopEight(params)
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := planner.PlanQueries(tr, qs, pisa.DefaultConfig(), planner.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	frames := w.Frames(2)
	var pkts int
	for _, f := range frames {
		pkts += len(f)
	}
	run := func(b *testing.B, workers int) {
		b.Helper()
		rt, err := runtime.NewWithOptions(plan, pisa.DefaultConfig(), runtime.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		rt.Instrument(reg, nil)
		b.SetBytes(int64(pkts))
		// Warm-up windows: let pools, arenas, dynamic-filter tables, and the
		// scheduler reach steady state before the timer starts, so short
		// -benchtime runs measure the per-window cost rather than first-window
		// growth.
		for i := 0; i < benchWarmupWindows; i++ {
			rt.ProcessWindow(frames)
		}
		before := reg.Snapshot()
		var busySum, busyCrit time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := rt.ProcessWindow(frames)
			var winMax time.Duration
			for _, busy := range rep.ShardBusy {
				busySum += busy
				if busy > winMax {
					winMax = busy
				}
			}
			busyCrit += winMax
		}
		b.StopTimer()
		reportSPTuples(b, reg.Snapshot().Diff(before))
		if busyCrit > 0 {
			// Achievable speedup from measured shard busy times: total work
			// over critical path. Wall-clock ns/op only reflects it when the
			// host has as many free cores as shards.
			b.ReportMetric(float64(busySum)/float64(busyCrit), "speedup-potential")
		}
	}
	// The sharded worker count follows GOMAXPROCS, so `-cpu 1,4,8` sweeps
	// shard counts while `sequential` stays the single-goroutine baseline.
	b.Run("sequential", func(b *testing.B) { run(b, 1) })
	b.Run("sharded", func(b *testing.B) { run(b, goruntime.GOMAXPROCS(0)) })
}

// BenchmarkSubscribeFanOut measures subscription delivery at fan-out scale:
// the same sequential window replay with 0, 1, 10, 100, and 1000 attached
// subscribers, every one in sample-every-window mode over all refinement
// levels (the worst case — on-change dedup would suppress most frames).
// Subscribers drain to io.Discard, so the numbers isolate the publish path:
// encode-once, fingerprint, and N bounded-queue enqueues per instance.
//
// Two derived metrics come from the registry, as the live /metrics endpoint
// would report them: sp_tuples/s is the ingest rate (the acceptance bar is
// ≤5% overhead at 100 subscribers versus subs=0), delivered/s the notify
// frames written. BENCH_pr6.json records the measurement.
func BenchmarkSubscribeFanOut(b *testing.B) {
	w := benchWorkload(b)
	params := eval.ScaledParams(benchScale())
	qs := queries.TopEight(params)
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := planner.PlanQueries(tr, qs, pisa.DefaultConfig(), planner.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	frames := w.Frames(2)
	var pkts int
	for _, f := range frames {
		pkts += len(f)
	}
	run := func(b *testing.B, subs int) {
		b.Helper()
		rt, err := runtime.NewWithOptions(plan, pisa.DefaultConfig(), runtime.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		rt.Instrument(reg, nil)
		srv := subscribe.NewServer()
		srv.Instrument(reg)
		rt.SetResultSink(srv)
		defer srv.Close()
		for i := 0; i < subs; i++ {
			if _, err := srv.Attach(io.Discard, subscribe.SubscribeRequest{
				Mode: subscribe.Sample, AllLevels: true, QueueCap: 256,
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(pkts))
		before := reg.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.ProcessWindow(frames)
		}
		b.StopTimer()
		diff := reg.Snapshot().Diff(before)
		reportSPTuples(b, diff)
		b.ReportMetric(float64(diff.Counter("sonata_subscribe_delivered_total"))/b.Elapsed().Seconds(), "delivered/s")
		// The publish hook is the only part of delivery that runs on the
		// window-close path; on a single-core host the wall-clock numbers
		// also absorb the writer goroutines' drain work, so this isolates
		// what fan-out actually costs the ingest pipeline.
		if h := diff.Histograms["sonata_runtime_publish_ns"]; h.Count > 0 {
			b.ReportMetric(float64(h.Sum)/float64(h.Count), "publish_ns/window")
		}
	}
	for _, subs := range []int{0, 1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) { run(b, subs) })
	}
}

// BenchmarkEndToEndWindowFlightRec measures the flight recorder's overhead
// on the ingest hot path: the identical sequential window replay with the
// recorder detached ("off") and attached ("on"). The per-packet cost of the
// recorder is a handful of plain uint64 increments, so on/off ns/op should
// stay within a couple of percent (BENCH_pr3.json records the measurement).
func BenchmarkEndToEndWindowFlightRec(b *testing.B) {
	w := benchWorkload(b)
	params := eval.ScaledParams(benchScale())
	qs := queries.TopEight(params)
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := planner.PlanQueries(tr, qs, pisa.DefaultConfig(), planner.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	frames := w.Frames(2)
	var pkts int
	for _, f := range frames {
		pkts += len(f)
	}
	run := func(b *testing.B, rec *flightrec.Recorder) {
		b.Helper()
		rt, err := runtime.NewWithOptions(plan, pisa.DefaultConfig(), runtime.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rec != nil {
			rt.AttachFlightRecorder(rec)
		}
		reg := telemetry.NewRegistry()
		rt.Instrument(reg, nil)
		b.SetBytes(int64(pkts))
		before := reg.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.ProcessWindow(frames)
		}
		b.StopTimer()
		reportSPTuples(b, reg.Snapshot().Diff(before))
		if rec != nil {
			s := rec.Snapshot(0)
			if s.Window != b.N-1 {
				b.Fatalf("recorder committed through window %d, loop ran %d", s.Window, b.N)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, flightrec.New(flightrec.DefaultCapacity, nil)) })
}

// BenchmarkEndToEndWindowTracez measures the tracer's overhead on the
// ingest hot path: the identical sequential window replay with tracing
// detached ("off") and attached ("on", default retention policy).
// Recording a span is one slot write into a preallocated per-lane ring and
// closing a window a handful of counter updates, so on/off ns/op should
// stay within a couple of percent (BENCH_pr8.json records the measurement).
func BenchmarkEndToEndWindowTracez(b *testing.B) {
	w := benchWorkload(b)
	params := eval.ScaledParams(benchScale())
	qs := queries.TopEight(params)
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := planner.PlanQueries(tr, qs, pisa.DefaultConfig(), planner.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	frames := w.Frames(2)
	var pkts int
	for _, f := range frames {
		pkts += len(f)
	}
	run := func(b *testing.B, tz *tracez.Tracer) {
		b.Helper()
		rt, err := runtime.NewWithOptions(plan, pisa.DefaultConfig(), runtime.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		rt.Instrument(reg, tz)
		b.SetBytes(int64(pkts))
		before := reg.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.ProcessWindow(frames)
		}
		b.StopTimer()
		reportSPTuples(b, reg.Snapshot().Diff(before))
		if tz != nil {
			st := tz.Stats()
			if st.Windows != uint64(b.N) {
				b.Fatalf("tracer closed %d windows, loop ran %d", st.Windows, b.N)
			}
			if st.Dropped > 0 {
				b.Fatalf("tracer dropped %d spans at default ring capacity", st.Dropped)
			}
			b.ReportMetric(float64(st.Spans)/float64(b.N), "spans/window")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, tracez.New(tracez.Options{})) })
}
