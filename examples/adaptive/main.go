// Adaptive: collision-triggered re-planning when traffic outgrows training.
//
// The planner sizes switch registers from training traffic (Section 3.3 of
// the paper). Here live traffic carries 10x the training volume — and so
// ~10x the unique keys — overflowing the registers. The collision signal
// fires, the runtime re-trains on recent windows, and the redeployed plan's
// right-sized registers restore a near-zero collision rate.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/fields"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/trace"
)

func main() {
	// Training: light traffic.
	light := trace.DefaultConfig()
	light.PacketsPerWindow = 2_000
	light.Windows = 2
	light.Hosts = 4_000
	lightGen, err := trace.NewGenerator(light)
	if err != nil {
		log.Fatal(err)
	}
	// Live: the same network after a 10x traffic surge.
	heavy := light
	heavy.PacketsPerWindow = 20_000
	heavy.Windows = 6
	heavy.Seed = 2
	heavyGen, err := trace.NewGenerator(heavy)
	if err != nil {
		log.Fatal(err)
	}

	// Superspreader state grows with traffic: distinct (src, dst) pairs.
	q := query.NewBuilder("superspreader", 3*time.Second).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
		Distinct().
		Map(query.C(fields.SrcIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.SrcIP).
		Filter(query.Gt(fields.AggVal, 5_000)).
		MustBuild()

	s := core.New(core.Config{})
	s.Register(q)
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		train = append(train, frames(lightGen, i))
	}
	if err := s.Train(train); err != nil {
		log.Fatal(err)
	}
	ar, err := s.DeployAdaptive(0.01, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("window  pkts     collisions  collision-rate  replanned")
	for w := 0; w < heavyGen.Windows(); w++ {
		fr := frames(heavyGen, w)
		rep, replanned, err := ar.ProcessWindow(fr)
		if err != nil {
			log.Fatal(err)
		}
		rate := float64(rep.Switch.Collisions) / float64(rep.Switch.PacketsIn)
		mark := ""
		if replanned {
			mark = "<- re-trained & redeployed"
		}
		fmt.Printf("%6d  %7d  %10d  %13.2f%%  %s\n",
			w, rep.Switch.PacketsIn, rep.Switch.Collisions, rate*100, mark)
	}
	fmt.Printf("\nre-plans: %d (registers re-sized from recent windows)\n", ar.Replans())
}

func frames(g *trace.Generator, i int) [][]byte {
	win := g.WindowRecords(i)
	out := make([][]byte, len(win.Records))
	for j, r := range win.Records {
		out[j] = r.Data
	}
	return out
}
