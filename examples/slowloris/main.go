// Slowloris: a join query partitioned across switch and stream processor.
//
// The Slowloris query (Query 2 of the paper) joins two sub-queries — the
// connection count and the byte volume per host — and divides them at the
// stream processor, because no PISA switch can divide. This example shows
// the planner cutting each sub-query independently and the runtime joining
// their outputs.
//
//	go run ./examples/slowloris
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 20_000
	cfg.Windows = 6
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	victim := trace.StandardVictim
	gen.AddAttack(trace.NewSlowloris(victim, 1_200, 0, gen.Duration()))

	p := queries.DefaultParams()
	p.SlowlorisBytesThresh = 20_000
	p.SlowlorisRatioThresh = 8
	q := queries.SlowlorisAttacks(p)
	fmt.Println("query (note the join and the division, both stream-processor-only):")
	fmt.Println(q)

	s := core.New(core.Config{})
	s.Register(q)
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		train = append(train, frames(gen, i))
	}
	if err := s.Train(train); err != nil {
		log.Fatal(err)
	}
	plan, err := s.Plan()
	if err != nil {
		log.Fatal(err)
	}
	for _, qp := range plan.Queries {
		for _, lp := range qp.Levels {
			fmt.Printf("level /%d: left sub-query cut after %d/%d tables; right after %d/%d\n",
				lp.Level, lp.Left.Cut, len(lp.Left.Pipe.Tables),
				lp.Right.Cut, len(lp.Right.Pipe.Tables))
		}
	}

	rt, err := s.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	for w := 2; w < gen.Windows(); w++ {
		rep := rt.ProcessWindow(frames(gen, w))
		fmt.Printf("window %d: %d tuples to SP;", w, rep.TuplesToSP)
		for _, res := range rep.Results {
			for _, t := range res.Tuples {
				fmt.Printf(" ALERT %s conns-per-kilobyte=%d",
					packet.IPv4String(uint32(t[0].U)), t[1].U)
			}
		}
		fmt.Println()
	}
	fmt.Printf("expected victim: %s\n", packet.IPv4String(victim))
}

func frames(g *trace.Generator, i int) [][]byte {
	win := g.WindowRecords(i)
	out := make([][]byte, len(win.Records))
	for j, r := range win.Records {
		out[j] = r.Data
	}
	return out
}
