// Distributed: the runtime controls the switch over a real TCP connection.
//
// The paper's implementation drives its switches through a Thrift API; this
// repo's equivalent is the netproto control protocol. Here the data-plane
// driver server (owning the switch simulator) listens on localhost, the
// client dials it, discovers the switch's constraints, installs a compiled
// program, and orchestrates windows remotely — while packets stay on the
// switch host's fast path.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/compile"
	"repro/internal/drivers"
	"repro/internal/emitter"
	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
)

func main() {
	// Stream processor and emitter live on the "collection" host.
	engine := stream.NewEngine(nil)
	em := emitter.New(engine)

	// The switch host: a data-plane driver server wrapping the simulator.
	srv := drivers.NewDataPlaneServer(pisa.DefaultConfig(), em.HandleMirror)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srv.ListenAndServe(l)

	// The runtime host dials the control plane.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	dp, err := drivers.DialDataPlane(conn)
	if err != nil {
		log.Fatal(err)
	}
	caps := dp.Capabilities()
	fmt.Printf("connected to switch: S=%d stages, A=%d stateful/stage, B=%d Mb/stage\n",
		caps.Stages, caps.StatefulPerStage, caps.RegisterBitsPerStage>>20)

	// Compile Query 1 wholly onto the switch and install it remotely.
	q := query.NewBuilder("newly_opened_tcp_conns", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 300)).
		MustBuild()
	q.ID = 1
	cp := compile.CompilePipeline(q.Left.Ops)
	spec := &pisa.InstanceSpec{
		QID: 1, Ops: q.Left.Ops, Tables: cp.Tables, CutAt: len(cp.Tables),
		StageOf: []int{0, 1, 2, 3}, RegEntries: []int{0, 0, 0, 1 << 14},
	}
	if err := dp.Install(&pisa.Program{Instances: []*pisa.InstanceSpec{spec}}); err != nil {
		log.Fatal(err)
	}
	if err := engine.Install(q, 0, stream.Partition{LeftStart: len(q.Left.Ops)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("program installed over TCP")

	// Traffic hits the switch host directly.
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 20_000
	cfg.Windows = 3
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gen.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 64, 800, 0, gen.Duration()))

	for w := 0; w < gen.Windows(); w++ {
		win := gen.WindowRecords(w)
		for _, r := range win.Records {
			srv.Process(r.Data)
		}
		// The runtime closes the window remotely and pulls register dumps.
		dumps, stats, err := dp.EndWindow()
		if err != nil {
			log.Fatal(err)
		}
		em.HandleDumps(dumps)
		results, metrics := engine.EndWindow()
		fmt.Printf("window %d: %d pkts at switch, %d register dumps pulled, %d tuples at SP\n",
			w, stats.PacketsIn, len(dumps), metrics.TuplesIn)
		for _, res := range results {
			for _, t := range res.Tuples {
				fmt.Printf("  flood victim %s with %d new connections\n",
					packet.IPv4String(uint32(t[0].U)), t[1].U)
			}
		}
	}
}
