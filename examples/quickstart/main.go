// Quickstart: detect a SYN flood with one Sonata query.
//
// The example generates a synthetic border-switch workload with a SYN flood
// aimed at 99.7.0.25, expresses Query 1 of the paper ("newly opened TCP
// connections"), trains the planner on the first two windows, and replays
// the rest. Watch the tuples-to-stream-processor column: the switch handles
// almost everything.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/trace"
)

func main() {
	// 1. A workload: background traffic plus a SYN flood.
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 20_000
	cfg.Windows = 6
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gen.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 128, 1_000, 0, gen.Duration()))

	// 2. The query, in the paper's surface syntax:
	//
	//	packetStream(W)
	//	  .filter(p => p.tcp.flags == SYN)
	//	  .map(p => (p.dIP, 1))
	//	  .reduce(keys=(dIP,), f=sum)
	//	  .filter((dIP, count) => count > 400)
	q := query.NewBuilder("newly_opened_tcp_conns", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 400)).
		MustBuild()
	fmt.Println("query:")
	fmt.Println(q)

	// 3. Train and deploy.
	s := core.New(core.Config{})
	s.Register(q)
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		train = append(train, frames(gen, i))
	}
	if err := s.Train(train); err != nil {
		log.Fatal(err)
	}
	rt, err := s.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:")
	for _, line := range rt.EntrySummary() {
		fmt.Println("  ", line)
	}

	// 4. Replay and report.
	fmt.Println("\nwindow  pkts@switch  tuples@SP  detections")
	for w := 2; w < gen.Windows(); w++ {
		rep := rt.ProcessWindow(frames(gen, w))
		var hits []string
		for _, res := range rep.Results {
			for _, t := range res.Tuples {
				hits = append(hits, fmt.Sprintf("%s (%d SYNs)",
					packet.IPv4String(uint32(t[0].U)), t[1].U))
			}
		}
		fmt.Printf("%6d  %11d  %9d  %v\n", w, rep.Switch.PacketsIn, rep.TuplesToSP, hits)
	}
}

func frames(g *trace.Generator, i int) [][]byte {
	win := g.WindowRecords(i)
	out := make([][]byte, len(win.Records))
	for j, r := range win.Records {
		out[j] = r.Data
	}
	return out
}
