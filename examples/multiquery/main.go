// Multiquery: eight concurrent telemetry queries under contention.
//
// All eight header-field queries of the paper's evaluation run at once.
// The example compares the stream-processor load of the All-SP plan (every
// packet mirrored, once per query) against Sonata's joint partitioning and
// refinement, and prints which attacks each setup detected.
//
//	go run ./examples/multiquery
package main

import (
	"fmt"
	"log"

	"repro/internal/eval"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
)

func main() {
	scale := eval.Scale{PacketsPerWindow: 20_000, Windows: 9, TrainWindows: 2, Hosts: 2_000, Seed: 1}
	w, err := eval.NewWorkload(scale)
	if err != nil {
		log.Fatal(err)
	}
	params := eval.ScaledParams(scale)
	qs := queries.TopEight(params)
	exp := eval.NewExperiment(w, qs)
	cfg := pisa.DefaultConfig()

	fmt.Println("running eight queries concurrently under each plan mode...")
	fmt.Printf("%-10s  %14s  %8s  %s\n", "plan", "tuples/window", "delay", "distinct keys reported")
	fmt.Println("(plans with longer delays need that many windows before the finest level reports)")
	for _, mode := range eval.Modes {
		res, err := exp.Run(cfg, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %14.0f  %8d  %d\n", mode, res.MeanTuples(), res.Delay, len(res.Detected))
	}

	// Show Sonata's detections against the injected ground truth.
	res, err := exp.Run(cfg, planner.ModeSonata)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nground truth vs Sonata detections:")
	for _, gt := range w.Gen.Truth() {
		hit := res.Detected[uint64(gt.Victim)]
		status := "missed"
		if hit {
			status = "detected"
		}
		fmt.Printf("  %-16s %-16s %s\n", gt.Kind, packet.IPv4String(gt.Victim), status)
	}
	fmt.Println("\n(the DNS attacks target queries outside the eight header-field set)")
}
