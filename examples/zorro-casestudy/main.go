// Zorro case study: the end-to-end hardware scenario of Figure 9.
//
// An attacker starts brute-forcing telnet logins against one IoT device
// mid-trace. Sonata's refinement zooms in on the victim from coarse IP
// prefixes while reporting only a handful of tuples; once the attacker
// gains shell access and issues the "zorro" command, the payload condition
// fires and the attack is confirmed.
//
//	go run ./examples/zorro-casestudy
package main

import (
	"fmt"
	"log"

	"repro/internal/eval"
	"repro/internal/packet"
)

func main() {
	scale := eval.Scale{
		PacketsPerWindow: 20_000,
		Windows:          6,
		TrainWindows:     2,
		Hosts:            2_000,
		Seed:             7,
	}
	res, err := eval.CaseStudy(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table.Render())
	fmt.Printf("victim %s identified in window %d, attack confirmed in window %d\n",
		packet.IPv4String(res.Victim), res.VictimIdentifiedWindow, res.AttackConfirmedWindow)
	fmt.Println("\ncompare with the paper's Figure 9: the switch receives ~10^4 packets per")
	fmt.Println("window while only a handful of tuples reach the stream processor, and the")
	fmt.Println("victim is pinpointed before the keyword ever appears.")
}
