// Networkwide: one query plan running across several vantage points.
//
// The paper's future-work section proposes network-wide telemetry (and the
// authors followed up with network-wide heavy hitter detection at SOSR'18).
// This example runs Query 1 on a fabric of four switches, sharding traffic
// by source address the way flows split across border routers. The SYN
// flood stays below the detection threshold at every individual switch —
// only the fabric's merged aggregate reveals it.
//
//	go run ./examples/networkwide
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/fields"
	"repro/internal/netwide"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/trace"
)

const nSwitches = 4

func main() {
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 20_000
	cfg.Windows = 5
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// 256 sources x ~3 SYNs each per window: ~200 SYNs per vantage point
	// after sharding, threshold 500.
	gen.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 256, 800, 0, gen.Duration()))

	q := query.NewBuilder("newly_opened_tcp_conns", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 500)).
		MustBuild()
	q.ID = 1

	var train []planner.Frames
	for i := 0; i < 2; i++ {
		train = append(train, frames(gen, i))
	}
	tr, err := planner.Train([]*query.Query{q}, []int{8, 16, 24}, train)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := planner.PlanQueries(tr, []*query.Query{q}, pisa.DefaultConfig(), planner.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fabric, err := netwide.New(plan, pisa.DefaultConfig(), nSwitches)
	if err != nil {
		log.Fatal(err)
	}
	parser := packet.NewParser(packet.ParserOptions{})
	var pkt packet.Packet
	fmt.Printf("fabric of %d switches; per-switch SYN share stays below the threshold\n\n", nSwitches)
	for w := 2; w < gen.Windows(); w++ {
		for _, r := range gen.WindowRecords(w).Records {
			i := 0
			if parser.Parse(r.Data, &pkt) == nil {
				i = int(pkt.IPv4.Src) % nSwitches
			}
			fabric.Process(i, r.Data)
		}
		rep := fabric.CloseWindow()
		fmt.Printf("window %d: per-switch packets =", w)
		for _, st := range rep.PerSwitch {
			fmt.Printf(" %d", st.PacketsIn)
		}
		fmt.Printf(", merged tuples at SP = %d\n", rep.TuplesToSP)
		for _, res := range rep.Results {
			for _, t := range res.Tuples {
				fmt.Printf("  NETWORK-WIDE heavy hitter %s: %d new connections in aggregate\n",
					packet.IPv4String(uint32(t[0].U)), t[1].U)
			}
		}
	}
}

func frames(g *trace.Generator, i int) [][]byte {
	win := g.WindowRecords(i)
	out := make([][]byte, len(win.Records))
	for j, r := range win.Records {
		out[j] = r.Data
	}
	return out
}
