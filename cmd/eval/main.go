// Command eval regenerates the paper's tables and figures against the
// synthetic workload. Each experiment prints an aligned table plus a TSV
// block suitable for plotting.
//
// Usage:
//
//	eval [-scale small|medium|large] [-out dir] [-workers N] [-debug-addr :9090]
//	     [-subscribe-addr :9339] [experiment ...]
//	eval -top [-debug-addr host:9090] [-top-interval 1s]
//
// Experiments: table3, fig3, fig5, fig7a, fig7b, fig8, fig9, overhead, all.
//
// With -debug-addr the process serves /metrics, /debug/vars, /debug/pprof/,
// /debug/queries, and (with -subscribe-addr) /debug/subscribers while the
// experiments run — pprof in particular is the intended way to profile a
// long "large"-scale run. With -subscribe-addr it additionally serves
// gNMI-style result subscriptions: every deployed runtime streams its
// per-window results to attached collectors. With -top it attaches to a
// running process instead, rendering a refreshing per-query view.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	goruntime "runtime"
	"time"

	"repro/internal/eval"
	"repro/internal/flightrec"
	"repro/internal/pisa"
	"repro/internal/queries"
	"repro/internal/subscribe"
	"repro/internal/telemetry"
	"repro/internal/tracez"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "workload scale: small, medium, or large")
	outDir := flag.String("out", "", "directory for TSV outputs (optional)")
	workers := flag.Int("workers", goruntime.GOMAXPROCS(0), "window-pipeline worker shards (1 = sequential)")
	batch := flag.Int("batch", 0, "frames per pipeline batch (0 = default; the sharded fan-out unit)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this address (with -top: the address to poll)")
	subscribeAddr := flag.String("subscribe-addr", "", "serve gNMI-style result subscriptions on this address")
	top := flag.Bool("top", false, "poll a running process's /debug/queries and render a refreshing top view")
	topInterval := flag.Duration("top-interval", time.Second, "refresh interval for -top")
	flag.Parse()

	if *top {
		if *debugAddr == "" {
			fatal(fmt.Errorf("-top needs -debug-addr of the process to watch"))
		}
		if err := flightrec.WatchTop(os.Stdout, *debugAddr, *topInterval); err != nil {
			fatal(err)
		}
		return
	}

	eval.DefaultWorkers = *workers
	eval.DefaultBatchSize = *batch

	// The registry and flight recorder always exist (instrumentation is free
	// when nothing reads it); the endpoints are opt-in.
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, time.Now())
	eval.DefaultTelemetry = reg // every deployed runtime registers here
	tz := tracez.New(tracez.Options{})
	tz.Instrument(reg)
	eval.DefaultTracez = tz // /debug/trace follows the live runtime
	rec := flightrec.New(0, nil)
	rec.Instrument(reg)
	rec.AttachTraceIndex(tz.Has)
	eval.DefaultFlightRec = rec // /debug/queries follows the live runtime

	var subSrv *subscribe.Server
	if *subscribeAddr != "" {
		subSrv = subscribe.NewServer()
		subSrv.Instrument(reg)
		eval.DefaultResultSink = subSrv // every deployed runtime publishes here
		ln, err := net.Listen("tcp", *subscribeAddr)
		if err != nil {
			fatal(err)
		}
		defer subSrv.Close()
		go subSrv.Serve(ln)
		fmt.Fprintf(os.Stderr, "[eval] subscription endpoint on %s\n", ln.Addr())
	}

	if *debugAddr != "" {
		mux := telemetry.NewDebugMux(reg)
		mux.Handle("/debug/queries", rec.Handler())
		mux.Handle("/debug/trace", tz.Handler())
		if subSrv != nil {
			mux.Handle("/debug/subscribers", subSrv.Handler())
		}
		srv, addr, err := telemetry.ServeDebugMux(*debugAddr, mux)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "[eval] debug endpoint on http://%s (/metrics, /debug/vars, /debug/pprof/, /debug/queries, /debug/trace)\n", addr)
	}

	var scale eval.Scale
	switch *scaleFlag {
	case "small":
		scale = eval.SmallScale()
	case "medium":
		scale = eval.MediumScale()
	case "large":
		scale = eval.LargeScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	experiments := flag.Args()
	if len(experiments) == 0 || (len(experiments) == 1 && experiments[0] == "all") {
		experiments = []string{"table3", "fig3", "fig5", "fig7a", "fig7b", "fig8", "fig9", "overhead"}
	}

	emit := func(t *eval.Table) {
		fmt.Println(t.Render())
		if *outDir != "" {
			path := filepath.Join(*outDir, t.ID+".tsv")
			if err := os.WriteFile(path, []byte(t.TSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			}
		}
	}

	var w *eval.Workload
	workload := func() *eval.Workload {
		if w == nil {
			var err error
			w, err = eval.NewWorkload(scale)
			if err != nil {
				fatal(err)
			}
			w.Preload(*workers)
		}
		return w
	}
	cfg := pisa.DefaultConfig()

	for _, exp := range experiments {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "[eval] running %s at %s scale...\n", exp, *scaleFlag)
		switch exp {
		case "table3":
			emit(eval.Table3(queries.DefaultParams(), []int{8, 16, 24}))
		case "fig3":
			emit(eval.Fig3())
		case "fig5":
			t, err := eval.Fig5(workload(), 0)
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "fig7a":
			t, err := eval.Fig7a(workload(), cfg)
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "fig7b":
			t, err := eval.Fig7b(workload(), cfg)
			if err != nil {
				fatal(err)
			}
			emit(t)
		case "fig8":
			tabs, err := eval.Fig8(workload(), cfg)
			if err != nil {
				fatal(err)
			}
			for _, id := range []string{"fig8a", "fig8b", "fig8c", "fig8d"} {
				emit(tabs[id])
			}
		case "fig9":
			res, err := eval.CaseStudy(scale)
			if err != nil {
				fatal(err)
			}
			emit(res.Table)
			fmt.Printf("victim identified in window %d; attack confirmed in window %d\n\n",
				res.VictimIdentifiedWindow, res.AttackConfirmedWindow)
		case "overhead":
			t, err := eval.Overhead(workload(), cfg)
			if err != nil {
				fatal(err)
			}
			emit(t)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[eval] %s done in %v\n", exp, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eval:", err)
	os.Exit(1)
}
