// Command sonata runs a set of telemetry queries end-to-end over a packet
// trace: it trains the planner on the first windows, partitions and refines
// the queries across the switch simulator and the stream engine, then
// replays the remaining windows and prints per-window results.
//
// Usage:
//
//	sonata [-pcap trace.pcap | -synth] [-queries q1,q2,...] [-mode sonata]
//	       [-window 3s] [-train 2] [-pkts 100000] [-windows 6] [-v]
//	       [-workers N] [-debug-addr :9090] [-trace spans.jsonl]
//	       [-flightrec 64] [-subscribe-addr :9339] [-dial-out host:9339]
//	sonata -top [-debug-addr host:9090] [-top-interval 1s]
//
// Query names follow internal/queries (e.g. newly_opened_tcp_conns,
// superspreader). The default runs the eight header-field queries.
//
// With -debug-addr the process serves live introspection while running:
// /metrics (Prometheus text format), /debug/vars (expvar), /debug/pprof/,
// /debug/queries (the per-query flight recorder; append ?fmt=text for an
// aligned table), and /debug/trace (the always-on trace buffer: every
// window builds a span tree — root, lifecycle stages, per-(query, level)
// op spans with shard attribution — and slow or head-sampled windows are
// retained; append ?format=text for a waterfall or ?format=chrome for a
// Perfetto/chrome://tracing file). With -trace it additionally appends one
// JSONL span per window lifecycle stage (trace slice, switch pass, emitter
// decode, stream eval, filter update) to the given file ("-" for stderr).
//
// With -subscribe-addr the process serves gNMI-style streaming result
// subscriptions: collectors connect, pick a mode (on-change, sample, or
// target-defined), and receive each window's per-query results with
// per-subscriber backpressure (see internal/subscribe). The debug mux gains
// /debug/subscribers. With -dial-out the process instead (or additionally)
// pushes every window to a remote collector, redialing with backoff.
//
// With -top the command attaches to a running process instead: it polls
// http://<debug-addr>/debug/queries and renders a refreshing top-style view
// of per-query tuple-reduction factors, register pressure, plan drift, and
// attributed busy time.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/subscribe"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracez"
	"repro/internal/tuple"
)

func main() {
	pcapPath := flag.String("pcap", "", "replay this pcap file instead of synthesizing traffic")
	synth := flag.Bool("synth", false, "synthesize traffic (the default when -pcap is absent)")
	queryList := flag.String("queries", "", "comma-separated query names (default: the eight header queries)")
	modeName := flag.String("mode", "sonata", "plan mode: sonata, all-sp, filter-dp, max-dp, fix-ref")
	window := flag.Duration("window", 3*time.Second, "query window W")
	trainWindows := flag.Int("train", 2, "training windows")
	pkts := flag.Int("pkts", 100_000, "synthetic packets per window")
	nWindows := flag.Int("windows", 6, "synthetic windows")
	verbose := flag.Bool("v", false, "print every result tuple")
	workers := flag.Int("workers", goruntime.GOMAXPROCS(0), "window-pipeline worker shards (1 = sequential)")
	batch := flag.Int("batch", 0, "frames per pipeline batch (0 = default; the sharded fan-out unit)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof/, and /debug/queries on this address (with -top: the address to poll)")
	tracePath := flag.String("trace", "", "append per-window lifecycle spans as JSONL to this file (\"-\" for stderr)")
	frCap := flag.Int("flightrec", flightrec.DefaultCapacity, "flight-recorder ring capacity (windows retained)")
	top := flag.Bool("top", false, "poll a running process's /debug/queries and render a refreshing top view")
	topInterval := flag.Duration("top-interval", time.Second, "refresh interval for -top")
	subscribeAddr := flag.String("subscribe-addr", "", "serve gNMI-style result subscriptions on this address")
	dialOut := flag.String("dial-out", "", "push every window's results to this collector address (dial-out telemetry)")
	flag.Parse()

	if *top {
		if *debugAddr == "" {
			fatal(fmt.Errorf("-top needs -debug-addr of the process to watch"))
		}
		if err := flightrec.WatchTop(os.Stdout, *debugAddr, *topInterval); err != nil {
			fatal(err)
		}
		return
	}

	mode, err := parseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	if *pcapPath != "" && *synth {
		fatal(fmt.Errorf("-pcap and -synth are mutually exclusive"))
	}

	// Observability: the registry, span tracer, and flight recorder always
	// exist (instrumentation is free when nothing reads it); the endpoints
	// and the JSONL file exporter are opt-in. The JSONL tracer is created
	// first so the recorder's eviction spans land in the same stream as the
	// window lifecycle stages tracez exports.
	var tracer *telemetry.Tracer
	if *tracePath != "" {
		var w io.Writer = os.Stderr
		if *tracePath != "-" {
			f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		tracer = telemetry.NewTracer(w)
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, time.Now())
	tracer.Instrument(reg)
	tz := tracez.New(tracez.Options{JSONL: tracer})
	tz.Instrument(reg)
	rec := flightrec.New(*frCap, tracer)
	rec.Instrument(reg)
	rec.AttachTraceIndex(tz.Has)
	defer func() {
		if err := tracer.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "[sonata] trace export: dropped %d spans: %v\n",
				tracer.Dropped(), err)
		}
	}()

	// Result delivery: a subscription server collectors dial into, a
	// dial-out exporter pushing to a remote collector, or both.
	var sinks subscribe.MultiSink
	var subSrv *subscribe.Server
	if *subscribeAddr != "" {
		subSrv = subscribe.NewServer()
		subSrv.Instrument(reg)
		ln, err := net.Listen("tcp", *subscribeAddr)
		if err != nil {
			fatal(err)
		}
		defer subSrv.Close()
		go subSrv.Serve(ln)
		sinks = append(sinks, subSrv)
		fmt.Fprintf(os.Stderr, "[sonata] subscription endpoint on %s\n", ln.Addr())
	}
	if *dialOut != "" {
		exp := subscribe.NewDialOut(*dialOut, subscribe.DialOutOptions{})
		exp.Instrument(reg)
		defer exp.Close()
		sinks = append(sinks, exp)
		fmt.Fprintf(os.Stderr, "[sonata] dialing out to collector %s\n", *dialOut)
	}

	if *debugAddr != "" {
		mux := telemetry.NewDebugMux(reg)
		mux.Handle("/debug/queries", rec.Handler())
		mux.Handle("/debug/trace", tz.Handler())
		if subSrv != nil {
			mux.Handle("/debug/subscribers", subSrv.Handler())
		}
		srv, addr, err := telemetry.ServeDebugMux(*debugAddr, mux)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "[sonata] debug endpoint on http://%s (/metrics, /debug/vars, /debug/pprof/, /debug/queries, /debug/trace)\n", addr)
	}

	// Assemble the packet source.
	slice := tracer.Start(-1, telemetry.StageTraceSlice)
	var windows [][][]byte
	if *pcapPath != "" {
		windows, err = readPcapWindows(*pcapPath, *window)
		if err != nil {
			fatal(err)
		}
	} else {
		scale := eval.Scale{PacketsPerWindow: *pkts, Windows: *nWindows,
			TrainWindows: *trainWindows, Hosts: 6000, Seed: 1}
		w, err := eval.NewWorkload(scale)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < w.Gen.Windows(); i++ {
			windows = append(windows, w.Frames(i))
		}
	}
	slice.EndAttrs(map[string]uint64{"windows": uint64(len(windows))})
	if len(windows) <= *trainWindows {
		fatal(fmt.Errorf("trace has %d windows; need more than the %d training windows", len(windows), *trainWindows))
	}

	// Resolve queries.
	params := eval.ScaledParams(eval.Scale{PacketsPerWindow: *pkts})
	params.Window = *window
	var qs []*query.Query
	if *queryList == "" {
		qs = queries.TopEight(params)
	} else {
		for _, name := range strings.Split(*queryList, ",") {
			q, err := queries.ByName(params, strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			qs = append(qs, q)
		}
	}

	// Train, plan, deploy.
	plannerOpts := planner.DefaultOptions()
	plannerOpts.Mode = mode
	s := core.New(core.Config{Planner: plannerOpts, Window: *window, Switch: pisa.DefaultConfig(),
		Workers: *workers, BatchSize: *batch})
	for _, q := range qs {
		q.ID = 0 // renumber in registration order
		s.Register(q)
	}
	var train []planner.Frames
	for i := 0; i < *trainWindows; i++ {
		train = append(train, planner.Frames(windows[i]))
	}
	fmt.Fprintf(os.Stderr, "[sonata] training %d queries on %d windows...\n", len(qs), *trainWindows)
	if err := s.Train(train); err != nil {
		fatal(err)
	}
	rt, err := s.Deploy()
	if err != nil {
		fatal(err)
	}
	rt.Instrument(reg, tz)
	rt.AttachFlightRecorder(rec)
	if len(sinks) > 0 {
		rt.SetResultSink(sinks)
	}
	fmt.Fprintln(os.Stderr, "[sonata] plan:")
	for _, line := range rt.EntrySummary() {
		fmt.Fprintln(os.Stderr, "  ", line)
	}

	names := map[uint16]string{}
	for _, q := range s.Queries() {
		names[q.ID] = q.Name
	}

	// Replay.
	for wi := *trainWindows; wi < len(windows); wi++ {
		rep := rt.ProcessWindow(windows[wi])
		fmt.Printf("window %d: %d packets at switch, %d tuples to stream processor, %d collisions\n",
			wi, rep.Switch.PacketsIn, rep.TuplesToSP, rep.Switch.Collisions)
		for _, res := range rep.Results {
			if len(res.Tuples) == 0 {
				continue
			}
			fmt.Printf("  %s (%d result(s))\n", names[res.QID], len(res.Tuples))
			if *verbose {
				for _, t := range res.Tuples {
					fmt.Printf("    %s\n", renderTuple(res.Schema, t))
				}
			}
		}
	}
	fmt.Printf("cumulative collision rate: %.4f%%\n", rt.CollisionRate()*100)
	rt.Close()
}

// readPcapWindows opens, reads, and slices a pcap file into per-window
// frame batches. The file is closed on every path (including read errors)
// via the deferred Close.
func readPcapWindows(path string, window time.Duration) (windows [][][]byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := trace.ReadPcap(f)
	if err != nil {
		return nil, err
	}
	total := time.Duration(0)
	if len(recs) > 0 {
		total = recs[len(recs)-1].TS + 1
	}
	for _, win := range trace.Slice(recs, window, total) {
		frames := make([][]byte, 0, len(win.Records))
		for _, r := range win.Records {
			frames = append(frames, r.Data)
		}
		windows = append(windows, frames)
	}
	return windows, nil
}

func renderTuple(schema tuple.Schema, t []tuple.Value) string {
	parts := make([]string, len(t))
	for i, v := range t {
		name := "?"
		if i < len(schema) {
			name = schema[i].String()
		}
		if !v.Str && i < len(schema) && strings.Contains(name, "IP") {
			parts[i] = fmt.Sprintf("%s=%s", name, packet.IPv4String(uint32(v.U)))
		} else {
			parts[i] = fmt.Sprintf("%s=%s", name, v.String())
		}
	}
	return strings.Join(parts, " ")
}

func parseMode(s string) (planner.Mode, error) {
	switch strings.ToLower(s) {
	case "sonata":
		return planner.ModeSonata, nil
	case "all-sp", "allsp":
		return planner.ModeAllSP, nil
	case "filter-dp", "filterdp":
		return planner.ModeFilterDP, nil
	case "max-dp", "maxdp":
		return planner.ModeMaxDP, nil
	case "fix-ref", "fixref":
		return planner.ModeFixRef, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sonata:", err)
	os.Exit(1)
}
