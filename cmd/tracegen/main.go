// Command tracegen writes a synthetic CAIDA-like trace, with the standard
// attack suite injected, to a pcap file. The output replays through
// cmd/sonata or any pcap tool.
//
// Usage:
//
//	tracegen -out trace.pcap [-pkts 100000] [-windows 6] [-seed 1]
//	         [-hosts 6000] [-window 3s] [-no-attacks]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
)

func main() {
	out := flag.String("out", "", "output pcap path (required)")
	pkts := flag.Int("pkts", 100_000, "background packets per window")
	windows := flag.Int("windows", 6, "number of windows")
	seed := flag.Int64("seed", 1, "generator seed")
	hosts := flag.Int("hosts", 6000, "host population")
	window := flag.Duration("window", 3*time.Second, "window length")
	noAttacks := flag.Bool("no-attacks", false, "background traffic only")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out is required")
		os.Exit(2)
	}
	cfg := trace.DefaultConfig()
	cfg.Seed = *seed
	cfg.PacketsPerWindow = *pkts
	cfg.Windows = *windows
	cfg.Hosts = *hosts
	cfg.Window = *window
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}
	if !*noAttacks {
		trace.StandardAttackSuite(g)
		for _, gt := range g.Truth() {
			fmt.Fprintf(os.Stderr, "[tracegen] %-14s victim/actor %d.%d.%d.%d active %v-%v\n",
				gt.Kind, byte(gt.Victim>>24), byte(gt.Victim>>16), byte(gt.Victim>>8), byte(gt.Victim),
				gt.Start, gt.End)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.WritePcap(f, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[tracegen] wrote %d windows x ~%d packets to %s\n",
		*windows, *pkts, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
