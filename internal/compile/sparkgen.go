package compile

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// GenerateSpark renders the stream-processor side of a query as the Spark
// Streaming (Scala) code an operator would otherwise write by hand — the
// "Spark" column of Table 3. Only the operators past the partition point
// appear: the switch already executed the rest.
func GenerateSpark(q *query.Query, leftCutOps, rightCutOps int) string {
	var sb strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&sb, format, args...)
		sb.WriteByte('\n')
	}
	w("val %s = sonataTuples(qid = %d)", scalaName(q.Name), q.ID)
	emitPipe(&sb, scalaName(q.Name), q.Left.Ops, leftCutOps)
	if q.HasJoin() {
		sub := scalaName(q.Name) + "Sub"
		w("val %s = sonataTuples(qid = %d, side = 1)", sub, q.ID)
		emitPipe(&sb, sub, q.Right.Ops, rightCutOps)
		keys := make([]string, len(q.JoinKeys))
		for i, k := range q.JoinKeys {
			keys[i] = scalaName(k.String())
		}
		w("  .join(%s, Seq(%q))", sub, strings.Join(keys, ", "))
		if q.Post != nil {
			emitPipe(&sb, "", q.Post.Ops, 0)
		}
	}
	w("  .foreachRDD(rdd => runtime.report(%d, rdd.collect()))", q.ID)
	return sb.String()
}

func emitPipe(sb *strings.Builder, _ string, ops []query.Op, cut int) {
	for i := cut; i < len(ops); i++ {
		o := &ops[i]
		switch o.Kind {
		case query.OpFilter:
			if o.DynFilterTable != "" {
				fmt.Fprintf(sb, "  .filter(t => refined(%q).contains(t.key(%d)))\n", o.DynFilterTable, o.DynLevel)
				continue
			}
			conds := make([]string, len(o.Clauses))
			for j := range o.Clauses {
				conds[j] = scalaClause(&o.Clauses[j])
			}
			fmt.Fprintf(sb, "  .filter(t => %s)\n", strings.Join(conds, " && "))
		case query.OpMap:
			cols := make([]string, len(o.Cols))
			for j := range o.Cols {
				cols[j] = scalaExpr(&o.Cols[j].Expr)
			}
			fmt.Fprintf(sb, "  .map(t => (%s))\n", strings.Join(cols, ", "))
		case query.OpReduce:
			fmt.Fprintf(sb, "  .reduceByKey(_ %s _)\n", scalaAgg(o.Func))
		case query.OpDistinct:
			fmt.Fprintf(sb, "  .distinct()\n")
		}
	}
}

func scalaClause(cl *query.Clause) string {
	switch cl.Cmp {
	case query.CmpContains:
		return fmt.Sprintf("t.%s.contains(%s)", scalaName(cl.Field.String()), cl.Arg)
	case query.CmpMaskEq:
		return fmt.Sprintf("(t.%s & 0x%x) == %s", scalaName(cl.Field.String()), cl.Mask, cl.Arg)
	default:
		return fmt.Sprintf("t.%s %s %s", scalaName(cl.Field.String()), cl.Cmp, cl.Arg)
	}
}

func scalaExpr(e *query.Expr) string {
	switch e.Kind {
	case query.ExprField, query.ExprCol:
		return "t." + scalaName(e.Field.String())
	case query.ExprConst:
		return fmt.Sprintf("%dL", e.Const)
	case query.ExprMask:
		return fmt.Sprintf("mask(%s, %d)", scalaExpr(e.Sub), e.Level)
	case query.ExprShiftRound:
		return fmt.Sprintf("%s >> %d", scalaExpr(e.Sub), e.Shift)
	case query.ExprRatio:
		return fmt.Sprintf("t._%d * %dL / t._%d", e.Col+1, e.Const, e.ColB+1)
	case query.ExprDiff:
		return fmt.Sprintf("math.max(t._%d - t._%d, 0L)", e.Col+1, e.ColB+1)
	default:
		return "t"
	}
}

func scalaAgg(f query.AggFunc) string {
	switch f {
	case query.AggSum:
		return "+"
	case query.AggMax:
		return "max"
	case query.AggMin:
		return "min"
	default:
		return "|"
	}
}

func scalaName(s string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(s)
}

// LinesOf counts non-empty lines, the LoC metric used throughout Table 3.
func LinesOf(code string) int {
	n := 0
	for _, l := range strings.Split(code, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}
