package compile

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/query"
)

func q1() *query.Query {
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, 2)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 40)).
		MustBuild()
	q.ID = 1
	return q
}

func TestCompileMergesThresholdFilter(t *testing.T) {
	cp := CompilePipeline(q1().Left.Ops)
	last := cp.Tables[len(cp.Tables)-1]
	if last.Kind != TableStateUpdate || last.MergedFilterOp != 3 {
		t.Fatalf("last table = %+v", last)
	}
	if last.LastOp() != 3 {
		t.Errorf("LastOp = %d", last.LastOp())
	}
	if last.KeyBits != 32 || last.ValBits != 32 {
		t.Errorf("slot sizing = %d/%d", last.KeyBits, last.ValBits)
	}
}

func TestCompileDistinctUsesOneBit(t *testing.T) {
	q := query.NewBuilder("d", time.Second).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
		Distinct().
		MustBuild()
	cp := CompilePipeline(q.Left.Ops)
	upd := cp.Tables[2]
	if upd.Kind != TableStateUpdate || upd.ValBits != 1 {
		t.Fatalf("distinct update table = %+v", upd)
	}
	if upd.KeyBits != 64 {
		t.Errorf("distinct key bits = %d, want 64", upd.KeyBits)
	}
}

func TestCompileCapPrefixStopsAtPayload(t *testing.T) {
	q := query.NewBuilder("z", time.Second).
		Filter(query.Eq(fields.DstPort, 23)).
		Filter(query.Contains(fields.Payload, "zorro")).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		MustBuild()
	cp := CompilePipeline(q.Left.Ops)
	if cp.CapPrefix != 1 {
		t.Fatalf("CapPrefix = %d, want 1 (only the port filter)", cp.CapPrefix)
	}
	// No merge across the capability boundary.
	pts := cp.ValidPartitionPoints()
	if pts[len(pts)-1] != 1 {
		t.Errorf("partition points = %v", pts)
	}
}

func TestMetaBitsIncludesOverhead(t *testing.T) {
	got := MetaBits(q1().Left.Ops)
	// Widest schema is (dIP:32, const:64) = 96 bits + 25 overhead.
	if got != 96+25 {
		t.Errorf("MetaBits = %d, want 121", got)
	}
}

func TestEntryForStatelessCut(t *testing.T) {
	cp := CompilePipeline(q1().Left.Ops)
	e := cp.EntryFor(2) // filter+map on switch
	if e.AggMerge || e.StartOp != 2 {
		t.Errorf("entry = %+v", e)
	}
	e0 := cp.EntryFor(0)
	if e0.StartOp != 0 || e0.AggMerge {
		t.Errorf("zero-cut entry = %+v", e0)
	}
}

func TestGenerateP4Structure(t *testing.T) {
	cp := CompilePipeline(q1().Left.Ops)
	code := GenerateP4("q1", []Instance{{Level: 32, Pipe: cp, CutAt: len(cp.Tables)}})
	for _, frag := range []string{
		"#include <v1model.p4>",
		"parser SonataParser",
		"control SonataIngress",
		"register<bit<32>>",
		"hdr.tcp.flags",
		"q1_r32_t3_state_update",
		"V1Switch(",
	} {
		if !strings.Contains(code, frag) {
			t.Errorf("P4 missing %q", frag)
		}
	}
	// Braces must balance: a quick well-formedness check on the emitter.
	if strings.Count(code, "{") != strings.Count(code, "}") {
		t.Errorf("unbalanced braces: %d vs %d",
			strings.Count(code, "{"), strings.Count(code, "}"))
	}
	if LinesOf(code) < 100 {
		t.Errorf("generated P4 suspiciously short: %d lines", LinesOf(code))
	}
}

func TestGenerateP4MultiLevel(t *testing.T) {
	cp := CompilePipeline(q1().Left.Ops)
	one := GenerateP4("q1", []Instance{{Level: 32, Pipe: cp, CutAt: 4}})
	three := GenerateP4("q1", []Instance{
		{Level: 8, Pipe: cp, CutAt: 4},
		{Level: 16, Pipe: cp, CutAt: 4},
		{Level: 32, Pipe: cp, CutAt: 4},
	})
	if LinesOf(three) <= LinesOf(one) {
		t.Errorf("multi-level program not longer: %d vs %d", LinesOf(three), LinesOf(one))
	}
}

func TestGenerateSparkShapes(t *testing.T) {
	full := GenerateSpark(q1(), 0, 0)
	for _, frag := range []string{"sonataTuples(qid = 1)", ".filter", ".map", ".reduceByKey(_ + _)", "foreachRDD"} {
		if !strings.Contains(full, frag) {
			t.Errorf("spark missing %q in:\n%s", frag, full)
		}
	}
	// Cutting ops off the front shortens the program.
	cut := GenerateSpark(q1(), 2, 0)
	if LinesOf(cut) >= LinesOf(full) {
		t.Errorf("partitioned spark not shorter: %d vs %d", LinesOf(cut), LinesOf(full))
	}

	// Join query renders both sides.
	sub := query.NewBuilder("bytes", time.Second).
		Map(query.F(fields.DstIP), query.F(fields.PktLen)).
		Reduce(query.AggSum, fields.DstIP)
	jq := query.NewBuilder("join", time.Second).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Join(sub, fields.DstIP).
		Map(query.C(fields.DstIP), query.Ratio(fields.AggVal, fields.AggVal2, 1000)).
		MustBuild()
	jq.ID = 8
	code := GenerateSpark(jq, 0, 0)
	if !strings.Contains(code, ".join(") || !strings.Contains(code, "side = 1") {
		t.Errorf("join spark missing pieces:\n%s", code)
	}
}

func TestLinesOfIgnoresBlanks(t *testing.T) {
	if got := LinesOf("a\n\n  \nb\n"); got != 2 {
		t.Errorf("LinesOf = %d, want 2", got)
	}
	if got := LinesOf(""); got != 0 {
		t.Errorf("LinesOf(empty) = %d", got)
	}
}

func TestValidPartitionPointsSkipHashIndex(t *testing.T) {
	cp := CompilePipeline(q1().Left.Ops)
	for _, p := range cp.ValidPartitionPoints() {
		if p > 0 && cp.Tables[p-1].Kind == TableHashIndex {
			t.Errorf("partition point %d splits a hash-index pair", p)
		}
	}
}
