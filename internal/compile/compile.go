// Package compile lowers dataflow pipelines to the match-action table model
// of a PISA switch (Section 3.1.2 of the paper) and computes the static
// resource footprint of each table. The planner combines these static costs
// with workload profiles to solve the partitioning ILP; the pisa package
// executes the resulting table programs.
package compile

import (
	"fmt"

	"repro/internal/query"
)

// TableKind enumerates the match-action table roles.
type TableKind uint8

const (
	// TableFilter matches static clauses over header/metadata fields.
	TableFilter TableKind = iota
	// TableDynFilter matches a runtime-updated key set (dynamic refinement).
	TableDynFilter
	// TableMap writes metadata fields from header fields or constants.
	TableMap
	// TableHashIndex computes a register index from the key columns (the
	// first of the two tables a stateful operator compiles to).
	TableHashIndex
	// TableStateUpdate performs the stateful register action, optionally
	// with a merged threshold filter deciding what is reported.
	TableStateUpdate
)

func (k TableKind) String() string {
	switch k {
	case TableFilter:
		return "filter"
	case TableDynFilter:
		return "dyn-filter"
	case TableMap:
		return "map"
	case TableHashIndex:
		return "hash-index"
	case TableStateUpdate:
		return "state-update"
	default:
		return fmt.Sprintf("table(%d)", uint8(k))
	}
}

// Table is one match-action table lowered from the pipeline.
type Table struct {
	Kind TableKind
	// OpIdx is the dataflow op this table implements (for TableHashIndex
	// and TableStateUpdate, the stateful op).
	OpIdx int
	// MergedFilterOp is the op index of a threshold filter folded into a
	// TableStateUpdate (Section 3.3's "more than one dataflow operator can
	// be compiled to the same table"); -1 when absent.
	MergedFilterOp int
	// Stateful is the paper's Z_t indicator.
	Stateful bool
	// KeyBits / ValBits size one register slot for stateful tables.
	KeyBits int
	ValBits int
}

// LastOp returns the last dataflow op index covered by this table.
func (t *Table) LastOp() int {
	if t.MergedFilterOp >= 0 {
		return t.MergedFilterOp
	}
	return t.OpIdx
}

// Pipeline is a compiled pipeline: the table sequence plus capability
// metadata.
type Pipeline struct {
	Ops    []query.Op
	Tables []Table
	// CapPrefix is the number of leading tables the switch is capable of
	// executing (ignoring resources): tables at or past this index involve
	// payload parsing, string keys, or arithmetic the data plane lacks.
	CapPrefix int
	// MetaBits is M_q: the metadata the query needs while traversing the
	// pipeline — the widest schema carried between operators plus the
	// per-query bookkeeping fields (qid, refinement level, report bit).
	MetaBits int
}

// perQueryOverheadBits counts the qid (16), level (8), and report (1) bits
// each query instance carries in the PHV.
const perQueryOverheadBits = 25

// aggValBits is the register value width for aggregates on the switch.
const aggValBits = 32

// CompilePipeline lowers ops to tables.
func CompilePipeline(ops []query.Op) Pipeline {
	p := Pipeline{Ops: ops}
	capOps := query.SwitchPrefixLen(&query.Pipeline{Ops: ops})
	p.CapPrefix = -1

	for i := 0; i < len(ops); i++ {
		if p.CapPrefix < 0 && i >= capOps {
			p.CapPrefix = len(p.Tables)
		}
		o := &ops[i]
		switch o.Kind {
		case query.OpFilter:
			kind := TableFilter
			if o.DynFilterTable != "" {
				kind = TableDynFilter
			}
			p.Tables = append(p.Tables, Table{Kind: kind, OpIdx: i, MergedFilterOp: -1})
		case query.OpMap:
			p.Tables = append(p.Tables, Table{Kind: TableMap, OpIdx: i, MergedFilterOp: -1})
		case query.OpReduce, query.OpDistinct:
			keyBits := 0
			in := o.InSchema()
			for _, k := range o.KeyCols {
				keyBits += in[k].Bits()
			}
			valBits := aggValBits
			if o.Kind == query.OpDistinct {
				valBits = 1 // the paper's bit_or(1) trick
			}
			p.Tables = append(p.Tables, Table{Kind: TableHashIndex, OpIdx: i, MergedFilterOp: -1})
			upd := Table{Kind: TableStateUpdate, OpIdx: i, MergedFilterOp: -1,
				Stateful: true, KeyBits: keyBits, ValBits: valBits}
			// Merge a directly-following supported threshold filter.
			if i+1 < len(ops) && i+1 < capOps && ops[i+1].Kind == query.OpFilter && ops[i+1].DynFilterTable == "" {
				upd.MergedFilterOp = i + 1
				i++
			}
			p.Tables = append(p.Tables, upd)
		}
	}
	if p.CapPrefix < 0 {
		p.CapPrefix = len(p.Tables)
	}
	p.MetaBits = MetaBits(ops)
	return p
}

// MetaBits computes the widest metadata footprint a pipeline carries: the
// maximum schema width across operators plus per-query bookkeeping bits.
func MetaBits(ops []query.Op) int {
	widest := 0
	for i := range ops {
		if s := ops[i].OutSchema(); s != nil {
			if b := s.Bits(); b > widest {
				widest = b
			}
		}
	}
	return widest + perQueryOverheadBits
}

// ValidPartitionPoints returns the table counts that are legal "last table
// on the switch" choices: 0 (nothing on the switch) up to CapPrefix, never
// splitting a hash-index from its state-update.
func (p *Pipeline) ValidPartitionPoints() []int {
	points := []int{0}
	for n := 1; n <= p.CapPrefix; n++ {
		if p.Tables[n-1].Kind == TableHashIndex {
			continue // meaningless cut between index and update
		}
		points = append(points, n)
	}
	return points
}

// SPEntry describes how the stream processor resumes a pipeline cut after
// the first n tables.
type SPEntry struct {
	// StartOp is the first dataflow op the stream processor executes.
	StartOp int
	// AggMerge reports that the switch's last table was stateful: register
	// dumps must merge into the stateful op at MergeOp rather than entering
	// at StartOp.
	AggMerge bool
	MergeOp  int
}

// EntryFor computes the SP entry point for a cut after n tables.
func (p *Pipeline) EntryFor(n int) SPEntry {
	if n == 0 {
		return SPEntry{StartOp: 0}
	}
	last := &p.Tables[n-1]
	e := SPEntry{StartOp: last.LastOp() + 1}
	if last.Stateful {
		e.AggMerge = true
		e.MergeOp = last.OpIdx
	}
	return e
}
