package tracez

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrees fabricates a deterministic two-tree retained set: a
// latency-retained sharded window and a head-sampled sequential one.
func goldenTrees() []*Tree {
	base := int64(1_700_000_000_000_000_000)
	sp := func(id, parent uint32, name uint16, shard int16, window int32,
		off, dur int64, qid uint16, level uint8, attrs ...Attr) Span {
		s := Span{ID: id, Parent: parent, Name: name, Shard: shard,
			Window: window, StartNS: base + off, DurNS: dur,
			QID: qid, Level: level, NAttr: uint8(len(attrs))}
		copy(s.Attrs[:], attrs)
		return s
	}
	slow := &Tree{
		Window: 12, StartNS: base, CloseNS: 3_400_000,
		ThresholdNS: 1_024_000, Reason: "latency",
		Spans: []Span{
			sp(1<<20|1, 0, NameWindow, -1, 12, 0, 3_400_000, 0, 0),
			sp(1<<20|2, 1<<20|1, NameSwitchPass, -1, 12, 10_000, 2_000_000, 0, 0,
				Attr{AttrFrames, 4000}),
			sp(1<<20|3, 1<<20|1, NameEmitterDecode, -1, 12, 2_020_000, 150_000, 0, 0,
				Attr{AttrDumpTuples, 37}),
			sp(1<<20|4, 1<<20|1, NameStreamEval, -1, 12, 2_180_000, 900_000, 0, 0,
				Attr{AttrTuplesIn, 512}),
			sp(2<<20|1, 1<<20|4, NameOpEval, 0, 12, 2_200_000, 400_000, 1, 32,
				Attr{AttrTuplesIn, 300}, Attr{AttrResults, 4}),
			sp(3<<20|1, 1<<20|4, NameOpEval, 1, 12, 2_210_000, 850_000, 2, 16,
				Attr{AttrTuplesIn, 212}, Attr{AttrResults, 1}),
			sp(1<<20|5, 1<<20|1, NameFilterUpdate, -1, 12, 3_090_000, 80_000, 0, 0,
				Attr{AttrEntries, 6}),
			sp(1<<20|6, 1<<20|1, NamePublish, -1, 12, 3_180_000, 200_000, 0, 0),
			sp(1<<20|7, 1<<20|6, NameSubscribeFanout, -1, 12, 3_190_000, 180_000, 0, 0,
				Attr{AttrUpdates, 3}, Attr{AttrSubscribers, 2}, Attr{AttrBytes, 1024}),
		},
	}
	typical := &Tree{
		Window: 8, StartNS: base - 12_000_000_000, CloseNS: 950_000,
		ThresholdNS: -1, Reason: "sample",
		Spans: []Span{
			sp(1<<20|1, 0, NameWindow, -1, 8, -12_000_000_000, 950_000, 0, 0),
			sp(1<<20|2, 1<<20|1, NameSwitchPass, -1, 8, -11_999_990_000, 700_000, 0, 0,
				Attr{AttrFrames, 4000}),
		},
	}
	return []*Tree{slow, typical}
}

// TestChromeGolden pins the Chrome trace-event serialization against a
// golden file (the schema Perfetto loads) and validates the JSON shape.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteChrome(&buf, goldenTrees())

	// Structural validation first: the output must be valid JSON with the
	// trace-event envelope Perfetto expects.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur < 0 || ev.Name == "" {
				t.Errorf("bad X event: %+v", ev)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	// 2 process/close-path metadata + 2 shard threads, 11 spans.
	if meta != 4 || complete != 11 {
		t.Fatalf("got %d metadata + %d X events, want 4 + 11", meta, complete)
	}

	golden := filepath.Join("testdata", "chrome.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome output drifted from golden file; run with -update and review the diff\ngot:\n%s", buf.String())
	}
}

// TestWaterfall checks the text view: indentation follows the tree and
// attributes render inline.
func TestWaterfall(t *testing.T) {
	out := RenderWaterfall(Stats{Windows: 20, Spans: 100, Retained: 2,
		CloseP50NS: 1_024_000, CloseP99NS: 2_048_000}, goldenTrees())
	for _, want := range []string{
		"window 12", "reason latency", "threshold 1.0ms",
		"op_eval q1/32 [shard 0]", "tuples_in=300", "subscribe_fanout",
		"reason sample",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	// op_eval nests two levels under the root (root → stream_eval → op).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "op_eval") && !strings.HasPrefix(line, "      ") {
			t.Errorf("op_eval not indented under stream_eval: %q", line)
		}
	}
}

// TestHandler drives /debug/trace through all formats and filters.
func TestHandler(t *testing.T) {
	tz := New(Options{HeadEvery: 1})
	for w := 0; w < 3; w++ {
		r := tz.Lane(0)
		r.SetContext(w, 0)
		root := r.Start(NameWindow)
		r.SetContext(w, root.ID())
		sw := r.Start(NameSwitchPass)
		sw.Attr(AttrFrames, 100)
		sw.End()
		tz.CloseWindow(w, root.End().Nanoseconds())
	}
	h := tz.Handler()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/debug/trace")
	var doc traceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Windows != 3 || len(doc.Trees) != 3 {
		t.Fatalf("got %d windows, %d trees; want 3, 3", doc.Windows, len(doc.Trees))
	}
	if doc.Trees[0].Window != 2 {
		t.Errorf("trees not newest-first: first is window %d", doc.Trees[0].Window)
	}
	if doc.Trees[0].Spans[0].Name != "window" {
		t.Errorf("first span name = %q, want window", doc.Trees[0].Spans[0].Name)
	}

	rec = get("/debug/trace?window=1")
	doc = traceJSON{}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Trees) != 1 || doc.Trees[0].Window != 1 {
		t.Fatalf("window filter returned %d trees", len(doc.Trees))
	}

	rec = get("/debug/trace?n=2")
	doc = traceJSON{}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Trees) != 2 {
		t.Fatalf("n=2 returned %d trees", len(doc.Trees))
	}

	rec = get("/debug/trace?format=chrome")
	var chrome map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome format invalid JSON: %v", err)
	}
	if _, ok := chrome["traceEvents"]; !ok {
		t.Fatal("chrome format missing traceEvents")
	}

	rec = get("/debug/trace?format=text")
	if !strings.Contains(rec.Body.String(), "window 2") {
		t.Errorf("text format missing windows:\n%s", rec.Body.String())
	}

	if rec := get("/debug/trace?window=x"); rec.Code != 400 {
		t.Errorf("bad window parameter: code %d, want 400", rec.Code)
	}
	if rec := get("/debug/trace?n=-1"); rec.Code != 400 {
		t.Errorf("bad n parameter: code %d, want 400", rec.Code)
	}
}
