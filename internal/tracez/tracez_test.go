package tracez

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestSpanTreeStructure builds one window's tree across two lanes and
// checks ids, parenting, shard attribution, and attributes.
func TestSpanTreeStructure(t *testing.T) {
	tz := New(Options{HeadEvery: 1}) // retain everything
	orch, shard0 := tz.Lane(0), tz.Lane(1)

	orch.SetContext(3, 0)
	root := orch.Start(NameWindow)
	if root.ID() == 0 {
		t.Fatal("root span got id 0")
	}
	orch.SetContext(3, root.ID())
	se := orch.Start(NameStreamEval)
	shard0.SetContext(3, se.ID())
	op := shard0.Start(NameOpEval)
	op.Instance(7, 32)
	op.Attr(AttrTuplesIn, 120)
	op.Attr(AttrResults, 3)
	op.End()
	se.Attr(AttrTuplesIn, 120)
	se.End()
	closeNS := root.End().Nanoseconds()
	tz.CloseWindow(3, closeNS)

	trees := tz.Trees()
	if len(trees) != 1 {
		t.Fatalf("got %d retained trees, want 1", len(trees))
	}
	tr := trees[0]
	if tr.Window != 3 || tr.Reason != "sample" {
		t.Fatalf("tree = window %d reason %q, want window 3 reason sample", tr.Window, tr.Reason)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	byName := map[uint16]*Span{}
	for i := range tr.Spans {
		byName[tr.Spans[i].Name] = &tr.Spans[i]
	}
	rootSp, seSp, opSp := byName[NameWindow], byName[NameStreamEval], byName[NameOpEval]
	if rootSp == nil || seSp == nil || opSp == nil {
		t.Fatal("missing expected spans")
	}
	if rootSp.Parent != 0 || seSp.Parent != rootSp.ID || opSp.Parent != seSp.ID {
		t.Errorf("bad parenting: root.parent=%d se.parent=%d (root=%d) op.parent=%d (se=%d)",
			rootSp.Parent, seSp.Parent, rootSp.ID, opSp.Parent, seSp.ID)
	}
	if rootSp.Shard != -1 || opSp.Shard != 0 {
		t.Errorf("shard attribution: root=%d want -1, op=%d want 0", rootSp.Shard, opSp.Shard)
	}
	if opSp.QID != 7 || opSp.Level != 32 {
		t.Errorf("op instance = q%d/%d, want q7/32", opSp.QID, opSp.Level)
	}
	if opSp.NAttr != 2 || opSp.Attrs[0] != (Attr{AttrTuplesIn, 120}) || opSp.Attrs[1] != (Attr{AttrResults, 3}) {
		t.Errorf("op attrs = %v (n=%d)", opSp.Attrs, opSp.NAttr)
	}
	if rootSp.DurNS <= 0 || tr.CloseNS != rootSp.DurNS {
		t.Errorf("root dur %d vs tree close %d", rootSp.DurNS, tr.CloseNS)
	}
}

// TestRingDropsWhenFull: a full ring drops new spans (never overwrites)
// and counts them; the drop surfaces in Stats after the window closes.
func TestRingDropsWhenFull(t *testing.T) {
	tz := New(Options{RingCap: 2, HeadEvery: -1})
	r := tz.Lane(0)
	r.SetContext(0, 0)
	a, b := r.Start(NameWindow), r.Start(NameSwitchPass)
	c := r.Start(NameStreamEval) // dropped
	if a.ID() == 0 || b.ID() == 0 {
		t.Fatal("first two spans should fit")
	}
	if c.ID() != 0 {
		t.Fatal("third span should have been dropped")
	}
	if d := c.End(); d < 0 {
		t.Fatal("inert handle must still measure elapsed time")
	}
	b.End()
	a.End()
	tz.CloseWindow(0, 1)
	st := tz.Stats()
	if st.Spans != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %d spans %d dropped, want 2/1", st.Spans, st.Dropped)
	}
	// The ring reset makes room again.
	if sp := r.Start(NameWindow); sp.ID() == 0 {
		t.Fatal("ring did not reset after CloseWindow")
	}
}

// TestNilSafety: a nil tracer and nil ring no-op on every method.
func TestNilSafety(t *testing.T) {
	var tz *Tracer
	r := tz.Lane(0)
	r.SetContext(1, 2)
	sp := r.Start(NameWindow)
	sp.Instance(1, 2)
	sp.Attr(AttrFrames, 1)
	if sp.ID() != 0 {
		t.Error("nil ring span must have id 0")
	}
	if sp.End() < 0 {
		t.Error("nil ring End must return elapsed time")
	}
	tz.CloseWindow(0, 1)
	tz.Instrument(nil)
	if tz.Has(0) || tz.Trees() != nil || tz.Stats() != (Stats{}) {
		t.Error("nil tracer must report empty state")
	}
}

// TestEstimator exercises bucketing, quantiles, and decay.
func TestEstimator(t *testing.T) {
	e := NewEstimator()
	if e.Quantile(0.99) != 0 {
		t.Error("empty estimator quantile must be 0")
	}
	for i := 0; i < 99; i++ {
		e.Add(1_000_000) // ~1ms
	}
	e.Add(500_000_000) // one 500ms outlier
	if got := e.Quantile(0.50); got != 1_024_000 {
		t.Errorf("p50 = %d, want 1024000 (the 1ms bucket bound)", got)
	}
	if got := e.Quantile(0.99); got != 1_024_000 {
		t.Errorf("p99 = %d, want 1024000 (99/100 samples are ~1ms)", got)
	}
	if got := e.Quantile(1.0); got < 500_000_000 {
		t.Errorf("p100 = %d, want >= the outlier's bucket", got)
	}
	// Decay: totals stay bounded.
	for i := 0; i < 10*decayAt; i++ {
		e.Add(1_000_000)
	}
	if e.Total() >= decayAt {
		t.Errorf("total %d not decayed below %d", e.Total(), decayAt)
	}
}

// TestLatencyTriggeredRetention is the retention contract: after warm-up
// on typical latencies, a typical window is NOT retained, a window past
// the rolling p99 IS (reason "latency"), and the head-sampling floor
// retains every Nth window regardless.
func TestLatencyTriggeredRetention(t *testing.T) {
	tz := New(Options{MinWindows: 8, HeadEvery: 10, RetainCap: 16})
	closeOne := func(window int, closeNS int64) {
		r := tz.Lane(0)
		r.SetContext(window, 0)
		sp := r.Start(NameWindow)
		sp.End()
		tz.CloseWindow(window, closeNS)
	}
	for w := 0; w < 25; w++ {
		closeOne(w, 1_000_000) // typical ~1ms windows
	}
	// Head sampling: windows 0, 10, 20 (1-in-10) and nothing else.
	for _, w := range []int{0, 10, 20} {
		if !tz.Has(w) {
			t.Errorf("head-sampled window %d not retained", w)
		}
	}
	for _, w := range []int{9, 11, 24} {
		if tz.Has(w) {
			t.Errorf("typical window %d retained; should be filtered", w)
		}
	}
	// A slow window past the rolling p99 is retained in full.
	closeOne(25, 50_000_000)
	if !tz.Has(25) {
		t.Fatal("slow window 25 not retained")
	}
	trees := tz.Trees()
	if trees[0].Window != 25 || trees[0].Reason != "latency" {
		t.Fatalf("newest tree = window %d reason %q, want 25/latency", trees[0].Window, trees[0].Reason)
	}
	if trees[0].ThresholdNS <= 0 || trees[0].CloseNS <= trees[0].ThresholdNS {
		t.Errorf("close %d must exceed threshold %d", trees[0].CloseNS, trees[0].ThresholdNS)
	}
	// And a typical window right after is still filtered.
	closeOne(26, 1_000_000)
	if tz.Has(26) {
		t.Error("typical window 26 retained after the slow one")
	}
}

// TestRetainedEvictsOldest: the retained buffer is a fixed-capacity ring.
func TestRetainedEvictsOldest(t *testing.T) {
	tz := New(Options{RetainCap: 2, HeadEvery: 1})
	for w := 0; w < 4; w++ {
		r := tz.Lane(0)
		r.SetContext(w, 0)
		sp := r.Start(NameWindow)
		sp.End()
		tz.CloseWindow(w, 1000)
	}
	trees := tz.Trees()
	if len(trees) != 2 || trees[0].Window != 3 || trees[1].Window != 2 {
		t.Fatalf("retained = %d trees (newest %d), want windows 3,2",
			len(trees), trees[0].Window)
	}
	if tz.Has(0) || tz.Has(1) {
		t.Error("oldest trees not evicted")
	}
}

// TestJSONLExportBackCompat: with a legacy JSONL exporter attached, every
// window's lifecycle stage spans come out in the old tracer's schema and
// order — same stages, same attribute keys — while root and op spans stay
// out of the stream.
func TestJSONLExportBackCompat(t *testing.T) {
	var buf bytes.Buffer
	jl := telemetry.NewTracer(&buf)
	tz := New(Options{JSONL: jl, HeadEvery: -1})
	orch, shard0 := tz.Lane(0), tz.Lane(1)

	for w := 0; w < 2; w++ {
		orch.SetContext(w, 0)
		root := orch.Start(NameWindow)
		orch.SetContext(w, root.ID())
		sw := orch.Start(NameSwitchPass)
		sw.Attr(AttrFrames, 10)
		time.Sleep(time.Millisecond)
		sw.End()
		ed := orch.Start(NameEmitterDecode)
		ed.Attr(AttrDumpTuples, 2)
		time.Sleep(time.Millisecond)
		ed.End()
		se := orch.Start(NameStreamEval)
		shard0.SetContext(w, se.ID())
		op := shard0.Start(NameOpEval)
		op.End()
		se.Attr(AttrTuplesIn, 5)
		time.Sleep(time.Millisecond)
		se.End()
		fu := orch.Start(NameFilterUpdate)
		fu.Attr(AttrEntries, 1)
		time.Sleep(time.Millisecond)
		fu.End()
		tz.CloseWindow(w, root.End().Nanoseconds())
	}

	spans, err := telemetry.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{
		telemetry.StageSwitchPass, telemetry.StageEmitterDecode,
		telemetry.StageStreamEval, telemetry.StageFilterUpdate,
	}
	if len(spans) != 2*len(wantStages) {
		t.Fatalf("got %d JSONL spans, want %d", len(spans), 2*len(wantStages))
	}
	wantAttrs := map[string]string{
		telemetry.StageSwitchPass:    "frames",
		telemetry.StageEmitterDecode: "dump_tuples",
		telemetry.StageStreamEval:    "tuples_in",
		telemetry.StageFilterUpdate:  "entries",
	}
	for i, s := range spans {
		want := wantStages[i%len(wantStages)]
		if s.Stage != want {
			t.Errorf("span %d stage = %q, want %q", i, s.Stage, want)
		}
		if s.Window != i/len(wantStages) {
			t.Errorf("span %d window = %d, want %d", i, s.Window, i/len(wantStages))
		}
		if s.DurationNS <= 0 {
			t.Errorf("span %d duration %d, want > 0", i, s.DurationNS)
		}
		if _, ok := s.Attrs[wantAttrs[s.Stage]]; !ok {
			t.Errorf("span %d (%s) missing attr %q: %v", i, s.Stage, wantAttrs[s.Stage], s.Attrs)
		}
	}
	if jl.Spans() != uint64(len(spans)) {
		t.Errorf("exporter counted %d spans, stream has %d", jl.Spans(), len(spans))
	}
}

// TestInstrumentCounters: the registry series mirror the tracer's
// bookkeeping and pass the metric lint.
func TestInstrumentCounters(t *testing.T) {
	tz := New(Options{RingCap: 1, HeadEvery: 1})
	reg := telemetry.NewRegistry()
	tz.Instrument(reg)
	r := tz.Lane(0)
	r.SetContext(0, 0)
	r.Start(NameWindow).End()
	r.Start(NameSwitchPass).End() // dropped: ring cap 1
	tz.CloseWindow(0, 1000)
	s := reg.Snapshot()
	if got := s.Counter("sonata_tracez_spans_total"); got != 1 {
		t.Errorf("spans_total = %d, want 1", got)
	}
	if got := s.Counter("sonata_tracez_dropped_total"); got != 1 {
		t.Errorf("dropped_total = %d, want 1", got)
	}
	if got := s.Counter("sonata_tracez_retained_total"); got != 1 {
		t.Errorf("retained_total = %d, want 1", got)
	}
	if got := s.Counter("sonata_tracez_windows_total"); got != 1 {
		t.Errorf("windows_total = %d, want 1", got)
	}
	for _, problem := range reg.Lint() {
		t.Errorf("metric lint: %s", problem)
	}
}
