// Package tracez is the always-on hierarchical tracing subsystem: every
// window produces a span tree — window root → the six lifecycle stages →
// per-(query, level) op spans with shard attribution — written into
// per-shard fixed-capacity span rings so the steady-state record path is
// allocation-free (pinned in alloc_budget.json like the keytab and
// subscribe paths before it).
//
// Retention is latency-triggered, after the INT event-detection line of
// work: record everything cheaply, retain in full only what is anomalous.
// Each window's root span feeds a rolling close-latency estimator; only
// trees whose close latency exceeds the rolling p99 (plus a head-sampled
// 1-in-N floor) are promoted to the retained buffer, the trace-equivalent
// of the flight recorder's ring. Retained trees are served by /debug/trace
// as JSON, a text waterfall, and Chrome trace-event format (Perfetto).
//
// Concurrency contract (mirrors flightrec's): each ring has exactly one
// writer — lane 0 is the runtime's orchestration goroutine, lane i+1 the
// worker shard i — and the collector (CloseWindow) reads rings only from
// the orchestration goroutine after the window-end worker join. No atomics
// or locks appear on the record path; the tracer's mutex guards only
// close-time bookkeeping and the retained buffer.
package tracez

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Interned span names. Spans carry a uint16 id instead of a string so the
// record path never allocates; NameString maps back for export.
const (
	// NameWindow is the per-window root span covering first frame to
	// publish completion.
	NameWindow uint16 = iota
	// NameSwitchPass..NamePublish mirror the telemetry package's lifecycle
	// stages (the JSONL back-compat schema).
	NameSwitchPass
	NameEmitterDecode
	NameStreamEval
	NameFilterUpdate
	NamePublish
	// NameOpEval is one (query, level) instance's window-close evaluation,
	// a child of the stream_eval stage on the owning shard's lane.
	NameOpEval
	// NameSubscribeFanout is the subscription server's publish leaf: encode
	// + fan-out of one window's updates, a child of the publish stage.
	NameSubscribeFanout
	numNames
)

var nameStrings = [numNames]string{
	"window", "switch_pass", "emitter_decode", "stream_eval",
	"filter_update", "publish", "op_eval", "subscribe_fanout",
}

// NameString returns the display name of an interned span name.
func NameString(id uint16) string {
	if int(id) < len(nameStrings) {
		return nameStrings[id]
	}
	return "unknown"
}

// Interned attribute keys (same discipline as span names).
const (
	AttrFrames uint16 = iota
	AttrDumpTuples
	AttrTuplesIn
	AttrEntries
	AttrResults
	AttrSubscribers
	AttrUpdates
	AttrBytes
	numAttrKeys
)

var attrKeyStrings = [numAttrKeys]string{
	"frames", "dump_tuples", "tuples_in", "entries",
	"results", "subscribers", "updates", "bytes",
}

// AttrKeyString returns the display name of an interned attribute key.
func AttrKeyString(id uint16) string {
	if int(id) < len(attrKeyStrings) {
		return attrKeyStrings[id]
	}
	return "unknown"
}

// maxAttrs bounds the per-span attribute count; a fixed array keeps Span a
// flat value the rings can hold without indirection.
const maxAttrs = 4

// Attr is one interned-key numeric attribute.
type Attr struct {
	Key uint16
	Val uint64
}

// Span is one node of a window's span tree. It is a flat value — interned
// name, fixed attribute array — so rings of them never chase pointers and
// recording one is a single slot write.
type Span struct {
	ID      uint32 // lane-scoped, unique within a window; 0 is "no span"
	Parent  uint32 // 0 for the window root
	Name    uint16
	QID     uint16 // query attribution (op spans); 0 when not applicable
	Level   uint8
	NAttr   uint8
	Shard   int16 // owning worker shard; -1 for the orchestration lane
	Window  int32
	StartNS int64
	DurNS   int64 // -1 while the span is open
	Attrs   [maxAttrs]Attr
}

// Ring is one lane's fixed-capacity span buffer. Exactly one goroutine
// writes it (see the package comment); methods are nil-safe so components
// carry a *Ring unconditionally, like telemetry handles. When the ring is
// full new spans are dropped (never overwritten — overwriting would tear
// the tree) and counted.
type Ring struct {
	lane    int
	spans   []Span
	n       int
	seq     uint32
	window  int32
	parent  uint32
	dropped uint64
}

// SetContext sets the window index and parent span id stamped on
// subsequently started spans.
func (r *Ring) SetContext(window int, parent uint32) {
	if r != nil {
		r.window, r.parent = int32(window), parent
	}
}

// Parent returns the current parent span id (0 on a nil ring), so callers
// can save/restore around a re-parented region.
func (r *Ring) Parent() uint32 {
	if r == nil {
		return 0
	}
	return r.parent
}

// Start opens a span under the current context and returns its handle.
// On a nil or full ring the handle is inert but still measures elapsed
// time, so callers can use End()'s duration unconditionally.
func (r *Ring) Start(name uint16) Active {
	now := time.Now()
	if r == nil {
		return Active{idx: -1, t0: now}
	}
	if r.n == len(r.spans) {
		r.dropped++
		return Active{idx: -1, t0: now}
	}
	idx := r.n
	r.n++
	r.seq++
	r.spans[idx] = Span{
		ID:      uint32(r.lane+1)<<20 | r.seq,
		Parent:  r.parent,
		Name:    name,
		Shard:   int16(r.lane - 1),
		Window:  r.window,
		StartNS: now.UnixNano(),
		DurNS:   -1,
	}
	return Active{r: r, idx: int32(idx), t0: now}
}

// Active is an in-progress span handle. It is a value type (no allocation)
// and inert when the span was dropped or the ring is nil.
type Active struct {
	r   *Ring
	idx int32
	t0  time.Time
}

// ID returns the span's id, 0 for an inert handle.
func (a Active) ID() uint32 {
	if a.r == nil || a.idx < 0 {
		return 0
	}
	return a.r.spans[a.idx].ID
}

// Instance attributes the span to a (query, level) instance.
func (a Active) Instance(qid uint16, level uint8) {
	if a.r == nil || a.idx < 0 {
		return
	}
	sp := &a.r.spans[a.idx]
	sp.QID, sp.Level = qid, level
}

// Attr attaches one interned-key numeric attribute (silently dropped past
// maxAttrs).
func (a Active) Attr(key uint16, val uint64) {
	if a.r == nil || a.idx < 0 {
		return
	}
	sp := &a.r.spans[a.idx]
	if int(sp.NAttr) < maxAttrs {
		sp.Attrs[sp.NAttr] = Attr{Key: key, Val: val}
		sp.NAttr++
	}
}

// End closes the span and returns its duration (measured even on an inert
// handle, so instrumented code paths can reuse it for their own metrics).
func (a Active) End() time.Duration {
	d := time.Since(a.t0)
	if a.r != nil && a.idx >= 0 {
		a.r.spans[a.idx].DurNS = d.Nanoseconds()
	}
	return d
}

// Tree is one retained window's span tree.
type Tree struct {
	Window  int   `json:"window"`
	StartNS int64 `json:"start_ns"`
	CloseNS int64 `json:"close_ns"`
	// ThresholdNS is the rolling-quantile retention threshold at decision
	// time, -1 while the estimator is still warming up.
	ThresholdNS int64 `json:"threshold_ns"`
	// Reason is "latency" (close latency exceeded the rolling quantile) or
	// "sample" (the head-sampled 1-in-N floor).
	Reason string `json:"reason"`
	Spans  []Span `json:"spans"`
}

// Options tunes a Tracer. The zero value selects the defaults.
type Options struct {
	// RingCap is each lane's span capacity (default 4096).
	RingCap int
	// RetainCap is the retained-tree buffer size (default 32; oldest trees
	// are evicted first).
	RetainCap int
	// HeadEvery is the head-sampling floor: every Nth window is retained
	// regardless of latency (default 64; negative disables head sampling).
	HeadEvery int
	// Quantile is the close-latency retention quantile (default 0.99).
	Quantile float64
	// MinWindows is the estimator warm-up: latency-triggered retention
	// stays off until this many windows have closed (default 16).
	MinWindows int
	// JSONL, when set, receives the six lifecycle stage spans of every
	// window in the legacy telemetry.Span schema — the flat -trace file
	// demoted to one exporter over the span stream.
	JSONL *telemetry.Tracer
}

func (o Options) withDefaults() Options {
	if o.RingCap <= 0 {
		o.RingCap = 4096
	}
	if o.RetainCap <= 0 {
		o.RetainCap = 32
	}
	if o.HeadEvery == 0 {
		o.HeadEvery = 64
	}
	if o.Quantile <= 0 || o.Quantile > 1 {
		o.Quantile = 0.99
	}
	if o.MinWindows <= 0 {
		o.MinWindows = 16
	}
	return o
}

// tracezMetrics is the tracer's registry slice.
type tracezMetrics struct {
	spans    *telemetry.Counter
	dropped  *telemetry.Counter
	retained *telemetry.Counter
	windows  *telemetry.Counter
}

// Tracer owns the lanes, the close-latency estimator, and the retained
// buffer. A nil *Tracer is a no-op everywhere (Lane returns a nil ring,
// whose methods no-op), so an untraced deployment pays only nil checks.
type Tracer struct {
	mu       sync.Mutex
	opts     Options
	lanes    []*Ring
	est      *Estimator
	retained []*Tree
	windows  uint64
	spans    uint64
	drops    uint64
	m        tracezMetrics
}

// New returns a tracer with the given options.
func New(opts Options) *Tracer {
	return &Tracer{opts: opts.withDefaults(), est: NewEstimator()}
}

// Instrument registers the tracer's own metrics against reg (nil
// disables; handles are nil-safe).
func (t *Tracer) Instrument(reg *telemetry.Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = tracezMetrics{
		spans: reg.Counter("sonata_tracez_spans_total",
			"Spans recorded into the per-shard trace rings."),
		dropped: reg.Counter("sonata_tracez_dropped_total",
			"Spans dropped because a trace ring was full."),
		retained: reg.Counter("sonata_tracez_retained_total",
			"Span trees promoted to the retained trace buffer."),
		windows: reg.Counter("sonata_tracez_windows_total",
			"Windows whose span tree was collected and scored for retention."),
	}
}

// Lane returns (creating on first use) the ring for lane i: lane 0 is the
// orchestration goroutine, lane i+1 worker shard i. Lanes are registered
// at install time; the returned ring is then written lock-free by its
// single owner. A nil tracer returns a nil (inert) ring.
func (t *Tracer) Lane(i int) *Ring {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.lanes) <= i {
		t.lanes = append(t.lanes, &Ring{lane: len(t.lanes),
			spans: make([]Span, t.opts.RingCap)})
	}
	return t.lanes[i]
}

// CloseWindow collects the window's spans from every lane, feeds the
// close-latency estimator, decides retention, exports the lifecycle stages
// to the JSONL exporter if one is attached, and resets the lanes for the
// next window. It must be called from the orchestration goroutine after
// the worker join (all lane writers quiesced). closeNS is the root span's
// close latency. The steady (non-retained, no-JSONL) path is
// allocation-free.
func (t *Tracer) CloseWindow(window int, closeNS int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.windows++
	t.m.windows.Inc()
	var total uint64
	for _, r := range t.lanes {
		total += uint64(r.n)
		if r.dropped > 0 {
			t.drops += r.dropped
			t.m.dropped.Add(r.dropped)
		}
	}
	t.spans += total
	t.m.spans.Add(total)

	// Retention decision. The threshold is computed before the current
	// sample is added, so one slow window cannot raise the bar it is
	// judged against.
	reason := ""
	threshold := int64(-1)
	if t.est.Total() >= uint64(t.opts.MinWindows) {
		threshold = t.est.Quantile(t.opts.Quantile)
		if closeNS > threshold {
			reason = "latency"
		}
	}
	if reason == "" && t.opts.HeadEvery > 0 &&
		(t.windows-1)%uint64(t.opts.HeadEvery) == 0 {
		reason = "sample"
	}
	t.est.Add(closeNS)
	if reason != "" {
		t.retain(window, closeNS, threshold, reason)
	}
	if t.opts.JSONL != nil {
		t.exportJSONL()
	}
	for _, r := range t.lanes {
		r.n, r.seq, r.dropped = 0, 0, 0
	}
}

// retain copies every lane's spans into one Tree and appends it to the
// retained buffer, evicting the oldest tree past capacity. Runs under
// t.mu; allocation here is fine (retention is rare by construction).
func (t *Tracer) retain(window int, closeNS, threshold int64, reason string) {
	tree := &Tree{Window: window, CloseNS: closeNS,
		ThresholdNS: threshold, Reason: reason}
	n := 0
	for _, r := range t.lanes {
		n += r.n
	}
	tree.Spans = make([]Span, 0, n)
	for _, r := range t.lanes {
		for i := 0; i < r.n; i++ {
			sp := r.spans[i]
			if sp.DurNS < 0 {
				sp.DurNS = 0 // span never ended (a bug upstream, or a drop)
			}
			tree.Spans = append(tree.Spans, sp)
		}
	}
	if len(tree.Spans) > 0 {
		// Lane 0's first span is the window root by construction.
		tree.StartNS = tree.Spans[0].StartNS
	}
	t.m.retained.Inc()
	if len(t.retained) < t.opts.RetainCap {
		t.retained = append(t.retained, tree)
		return
	}
	copy(t.retained, t.retained[1:])
	t.retained[len(t.retained)-1] = tree
}

// jsonlStage maps interned lifecycle names to the legacy JSONL stage
// strings; other spans (root, op, fan-out) are not part of the back-compat
// schema and are skipped by the exporter.
func jsonlStage(name uint16) (string, bool) {
	switch name {
	case NameSwitchPass:
		return telemetry.StageSwitchPass, true
	case NameEmitterDecode:
		return telemetry.StageEmitterDecode, true
	case NameStreamEval:
		return telemetry.StageStreamEval, true
	case NameFilterUpdate:
		return telemetry.StageFilterUpdate, true
	case NamePublish:
		return telemetry.StagePublish, true
	}
	return "", false
}

// exportJSONL writes the window's lifecycle stage spans to the attached
// legacy tracer in ring (start) order — the same order and schema the old
// flat tracer produced. Runs under t.mu before the lanes reset.
func (t *Tracer) exportJSONL() {
	for _, r := range t.lanes {
		for i := 0; i < r.n; i++ {
			sp := &r.spans[i]
			stage, ok := jsonlStage(sp.Name)
			if !ok {
				continue
			}
			var attrs map[string]uint64
			if sp.NAttr > 0 {
				attrs = make(map[string]uint64, sp.NAttr)
				for j := 0; j < int(sp.NAttr); j++ {
					attrs[AttrKeyString(sp.Attrs[j].Key)] = sp.Attrs[j].Val
				}
			}
			dur := sp.DurNS
			if dur < 0 {
				dur = 0
			}
			t.opts.JSONL.Record(telemetry.Span{
				Window:     int(sp.Window),
				Stage:      stage,
				StartNS:    sp.StartNS,
				DurationNS: dur,
				Attrs:      attrs,
			})
		}
	}
}

// Has reports whether a retained tree exists for the given window (the
// flight recorder uses this for its trace cross-link).
func (t *Tracer) Has(window int) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.retained {
		if tr.Window == window {
			return true
		}
	}
	return false
}

// Trees returns the retained trees, newest first. Trees are immutable
// once retained; only the slice is copied.
func (t *Tracer) Trees() []*Tree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Tree, len(t.retained))
	for i, tr := range t.retained {
		out[len(out)-1-i] = tr
	}
	return out
}

// Stats is the tracer's cumulative bookkeeping, served by /debug/trace.
type Stats struct {
	Windows  uint64 `json:"windows"`
	Spans    uint64 `json:"spans_total"`
	Dropped  uint64 `json:"dropped_total"`
	Retained int    `json:"retained"`
	// CloseP50NS / CloseP99NS are the rolling close-latency quantiles the
	// retention decision uses.
	CloseP50NS int64 `json:"close_p50_ns"`
	CloseP99NS int64 `json:"close_p99_ns"`
}

// Stats returns the tracer's cumulative counters and rolling quantiles.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Windows:    t.windows,
		Spans:      t.spans,
		Dropped:    t.drops,
		Retained:   len(t.retained),
		CloseP50NS: t.est.Quantile(0.50),
		CloseP99NS: t.est.Quantile(0.99),
	}
}
