package tracez

import (
	"sync"
	"testing"
)

// TestConcurrentLanesRace is the concurrency contract under -race (`make
// check-trace`): 8 goroutines hammer Start/Instance/Attr/End on their own
// lanes while the orchestration goroutine rotates the rings with
// CloseWindow between windows. The per-window WaitGroup join models the
// runtime's worker barrier — the happens-before edge the single-writer
// rings rely on.
func TestConcurrentLanesRace(t *testing.T) {
	const (
		workers      = 8
		windows      = 50
		spansPerLane = 200
		ringCap      = 64 // smaller than spansPerLane: rotation under drops
	)
	tz := New(Options{RingCap: ringCap, HeadEvery: 5, MinWindows: 10})
	orch := tz.Lane(0)
	lanes := make([]*Ring, workers)
	for i := range lanes {
		lanes[i] = tz.Lane(i + 1)
	}

	for w := 0; w < windows; w++ {
		orch.SetContext(w, 0)
		root := orch.Start(NameWindow)
		orch.SetContext(w, root.ID())
		se := orch.Start(NameStreamEval)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(lane *Ring) {
				defer wg.Done()
				lane.SetContext(w, se.ID())
				for s := 0; s < spansPerLane; s++ {
					sp := lane.Start(NameOpEval)
					sp.Instance(uint16(s%7+1), uint8(s%32))
					sp.Attr(AttrTuplesIn, uint64(s))
					sp.End()
				}
			}(lanes[i])
		}
		wg.Wait()
		se.End()
		tz.CloseWindow(w, root.End().Nanoseconds())
	}

	st := tz.Stats()
	if st.Windows != windows {
		t.Fatalf("windows = %d, want %d", st.Windows, windows)
	}
	// Every lane fills to capacity each window and drops the rest.
	wantSpans := uint64(windows * (workers*ringCap + 2))
	wantDrops := uint64(windows * workers * (spansPerLane - ringCap))
	if st.Spans != wantSpans || st.Dropped != wantDrops {
		t.Fatalf("spans/drops = %d/%d, want %d/%d",
			st.Spans, st.Dropped, wantSpans, wantDrops)
	}
	if st.Retained == 0 {
		t.Fatal("head sampling retained nothing")
	}
	// Retained trees must be structurally sound: op spans parent to the
	// stream_eval span of their window.
	for _, tr := range tz.Trees() {
		var seID uint32
		for i := range tr.Spans {
			if tr.Spans[i].Name == NameStreamEval {
				seID = tr.Spans[i].ID
			}
		}
		if seID == 0 {
			t.Fatalf("window %d tree missing stream_eval span", tr.Window)
		}
		for i := range tr.Spans {
			sp := &tr.Spans[i]
			if sp.Name == NameOpEval && sp.Parent != seID {
				t.Fatalf("window %d op span parent %d, want %d", tr.Window, sp.Parent, seID)
			}
		}
	}
}
