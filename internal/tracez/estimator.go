package tracez

// Estimator is a rolling close-latency quantile estimator over geometric
// buckets: powers of two from 1µs up. Adding a sample is a short linear
// scan plus one increment; quantiles resolve to a bucket's upper bound,
// which is exactly the precision retention needs (is this window slower
// than the p99 band, not by how many nanoseconds). Counts decay by halving
// once the total passes decayAt, so the estimate tracks the recent regime
// instead of the whole run.
//
// Not safe for concurrent use; the Tracer calls it under its mutex.
type Estimator struct {
	bounds []int64  // inclusive upper bounds, ascending
	counts []uint64 // len(bounds)+1; last is +Inf
	total  uint64
}

// estimatorBuckets is the bucket count: 1µs << 24 ≈ 16.8s spans every
// plausible window close latency.
const estimatorBuckets = 25

// decayAt is the total at which counts are halved.
const decayAt = 512

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	e := &Estimator{
		bounds: make([]int64, estimatorBuckets),
		counts: make([]uint64, estimatorBuckets+1),
	}
	b := int64(1_000) // 1µs
	for i := range e.bounds {
		e.bounds[i] = b
		b <<= 1
	}
	return e
}

// Add records one close latency in nanoseconds.
func (e *Estimator) Add(ns int64) {
	i := 0
	for i < len(e.bounds) && ns > e.bounds[i] {
		i++
	}
	e.counts[i]++
	e.total++
	if e.total >= decayAt {
		e.decay()
	}
}

// decay halves every bucket, keeping the distribution's shape while
// letting old samples age out.
func (e *Estimator) decay() {
	var total uint64
	for i := range e.counts {
		e.counts[i] /= 2
		total += e.counts[i]
	}
	e.total = total
}

// Total returns the current (decayed) sample count; the Tracer gates
// latency retention on it as warm-up.
func (e *Estimator) Total() uint64 { return e.total }

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1), or 0 with no samples. Values past the last
// finite bound report twice that bound.
func (e *Estimator) Quantile(q float64) int64 {
	if e.total == 0 {
		return 0
	}
	target := uint64(q * float64(e.total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range e.counts {
		cum += c
		if cum >= target {
			if i < len(e.bounds) {
				return e.bounds[i]
			}
			return e.bounds[len(e.bounds)-1] * 2
		}
	}
	return e.bounds[len(e.bounds)-1] * 2
}
