package tracez

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// spanJSON is one span in the /debug/trace JSON schema: interned ids
// resolved to strings, attributes as a name→value object.
type spanJSON struct {
	ID      uint32            `json:"id"`
	Parent  uint32            `json:"parent"`
	Name    string            `json:"name"`
	Shard   int16             `json:"shard"`
	QID     uint16            `json:"qid,omitempty"`
	Level   uint8             `json:"level,omitempty"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]uint64 `json:"attrs,omitempty"`
}

type treeJSON struct {
	Window      int        `json:"window"`
	StartNS     int64      `json:"start_ns"`
	CloseNS     int64      `json:"close_ns"`
	ThresholdNS int64      `json:"threshold_ns"`
	Reason      string     `json:"reason"`
	Spans       []spanJSON `json:"spans"`
}

type traceJSON struct {
	Stats
	Trees []treeJSON `json:"trees"`
}

func exportSpan(sp *Span) spanJSON {
	out := spanJSON{
		ID: sp.ID, Parent: sp.Parent, Name: NameString(sp.Name),
		Shard: sp.Shard, QID: sp.QID, Level: sp.Level,
		StartNS: sp.StartNS, DurNS: sp.DurNS,
	}
	if sp.NAttr > 0 {
		out.Attrs = make(map[string]uint64, sp.NAttr)
		for j := 0; j < int(sp.NAttr); j++ {
			out.Attrs[AttrKeyString(sp.Attrs[j].Key)] = sp.Attrs[j].Val
		}
	}
	return out
}

// Handler serves the retained trace buffer as /debug/trace:
//
//	/debug/trace                 JSON: tracer stats + retained trees (newest first)
//	/debug/trace?window=N        only window N's tree
//	/debug/trace?n=K             at most K trees
//	/debug/trace?format=text     text waterfall view
//	/debug/trace?format=chrome   Chrome trace-event JSON (load in Perfetto
//	                             or chrome://tracing)
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		trees := t.Trees()
		if v := q.Get("window"); v != "" {
			win, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "tracez: bad window parameter", http.StatusBadRequest)
				return
			}
			var filtered []*Tree
			for _, tr := range trees {
				if tr.Window == win {
					filtered = append(filtered, tr)
				}
			}
			trees = filtered
		}
		if v := q.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "tracez: bad n parameter", http.StatusBadRequest)
				return
			}
			if n < len(trees) {
				trees = trees[:n]
			}
		}
		switch q.Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			WriteChrome(w, trees)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, RenderWaterfall(t.Stats(), trees))
		default:
			w.Header().Set("Content-Type", "application/json")
			out := traceJSON{Stats: t.Stats(), Trees: make([]treeJSON, 0, len(trees))}
			for _, tr := range trees {
				tj := treeJSON{Window: tr.Window, StartNS: tr.StartNS,
					CloseNS: tr.CloseNS, ThresholdNS: tr.ThresholdNS,
					Reason: tr.Reason, Spans: make([]spanJSON, 0, len(tr.Spans))}
				for i := range tr.Spans {
					tj.Spans = append(tj.Spans, exportSpan(&tr.Spans[i]))
				}
				out.Trees = append(out.Trees, tj)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(&out)
		}
	})
}

// spanLabel renders a span's display label: name plus (query, level)
// attribution when present.
func spanLabel(sp *Span) string {
	if sp.QID == 0 && sp.Level == 0 {
		return NameString(sp.Name)
	}
	return fmt.Sprintf("%s q%d/%d", NameString(sp.Name), sp.QID, sp.Level)
}

// WriteChrome serializes retained trees in the Chrome trace-event format
// ("X" complete events, microsecond timestamps) that Perfetto and
// chrome://tracing load directly. Lanes map to tids: tid 0 is the window
// close path (orchestration lane), tid i+1 worker shard i. The output is
// deterministic for a given tree set (fixed field and attribute order), so
// a golden file can pin the schema.
func WriteChrome(w io.Writer, trees []*Tree) {
	io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	io.WriteString(w, `{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"sonata window pipeline"}}`)
	fmt.Fprintf(w, ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"close path\"}}")
	// Name every worker-shard lane that appears in the tree set.
	shards := map[int16]bool{}
	for _, tr := range trees {
		for i := range tr.Spans {
			if s := tr.Spans[i].Shard; s >= 0 && !shards[s] {
				shards[s] = true
			}
		}
	}
	ordered := make([]int, 0, len(shards))
	for s := range shards {
		ordered = append(ordered, int(s))
	}
	sort.Ints(ordered)
	for _, s := range ordered {
		fmt.Fprintf(w, ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"shard %d\"}}", s+1, s)
	}
	for _, tr := range trees {
		for i := range tr.Spans {
			sp := &tr.Spans[i]
			dur := sp.DurNS
			if dur < 0 {
				dur = 0
			}
			fmt.Fprintf(w, ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":%q,\"cat\":%q,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
				int(sp.Shard)+1, spanLabel(sp), tr.Reason,
				float64(sp.StartNS)/1e3, float64(dur)/1e3)
			fmt.Fprintf(w, "\"window\":%d,\"span\":%d,\"parent\":%d", sp.Window, sp.ID, sp.Parent)
			if sp.QID != 0 || sp.Level != 0 {
				fmt.Fprintf(w, ",\"qid\":%d,\"level\":%d", sp.QID, sp.Level)
			}
			for j := 0; j < int(sp.NAttr); j++ {
				fmt.Fprintf(w, ",%q:%d", AttrKeyString(sp.Attrs[j].Key), sp.Attrs[j].Val)
			}
			io.WriteString(w, "}}")
		}
	}
	io.WriteString(w, "\n]}\n")
}

// RenderWaterfall renders retained trees as an indented text waterfall:
// one line per span with its offset from the tree root and duration,
// children indented under parents.
func RenderWaterfall(st Stats, trees []*Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tracez: %d windows, %d spans (%d dropped), %d retained trees, close p50 %s p99 %s\n",
		st.Windows, st.Spans, st.Dropped, st.Retained,
		humanNS(st.CloseP50NS), humanNS(st.CloseP99NS))
	if len(trees) == 0 {
		b.WriteString("no retained trees\n")
		return b.String()
	}
	for _, tr := range trees {
		fmt.Fprintf(&b, "\nwindow %d  close %s  reason %s",
			tr.Window, humanNS(tr.CloseNS), tr.Reason)
		if tr.ThresholdNS >= 0 {
			fmt.Fprintf(&b, "  (threshold %s)", humanNS(tr.ThresholdNS))
		}
		b.WriteByte('\n')
		children := map[uint32][]*Span{}
		for i := range tr.Spans {
			sp := &tr.Spans[i]
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
		for _, kids := range children {
			sort.SliceStable(kids, func(a, b int) bool {
				return kids[a].StartNS < kids[b].StartNS
			})
		}
		var walk func(parent uint32, depth int)
		walk = func(parent uint32, depth int) {
			for _, sp := range children[parent] {
				fmt.Fprintf(&b, "  %s+%-9s %-9s %s",
					strings.Repeat("  ", depth),
					humanNS(sp.StartNS-tr.StartNS), humanNS(max64(sp.DurNS, 0)),
					spanLabel(sp))
				if sp.Shard >= 0 {
					fmt.Fprintf(&b, " [shard %d]", sp.Shard)
				}
				for j := 0; j < int(sp.NAttr); j++ {
					fmt.Fprintf(&b, " %s=%d",
						AttrKeyString(sp.Attrs[j].Key), sp.Attrs[j].Val)
				}
				b.WriteByte('\n')
				walk(sp.ID, depth+1)
			}
		}
		walk(0, 0)
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// humanNS renders nanoseconds compactly (duplicated from flightrec to keep
// the import graph acyclic: flightrec links to /debug/trace, not the other
// way around).
func humanNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
