package netproto

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/telemetry"
)

// serveCalls answers n request frames on conn with the canonical response
// type for each request, so client Calls complete.
func serveCalls(t *testing.T, conn *Conn, n int) chan error {
	t.Helper()
	done := make(chan error, 1)
	responses := map[MsgType]MsgType{
		MsgHello:       MsgCapabilities,
		MsgUpdateTable: MsgUpdateOK,
		MsgEndWindow:   MsgWindowData,
	}
	go func() {
		for i := 0; i < n; i++ {
			req, _, err := conn.RecvRaw()
			if err != nil {
				done <- err
				return
			}
			resp, ok := responses[req]
			if !ok {
				done <- fmt.Errorf("unexpected request %s", req)
				return
			}
			var payload any
			if resp == MsgWindowData {
				payload = WindowData{}
			}
			if err := conn.Send(resp, payload); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

// TestCallRTTHistograms: every Call lands one observation in the RTT
// histogram labeled with the request's message type — and only that type's.
func TestCallRTTHistograms(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	client, server := NewConn(c1), NewConn(c2)
	reg := telemetry.NewRegistry()
	client.Instrument(reg)

	done := serveCalls(t, server, 3)
	if err := client.Call(MsgHello, Hello{Version: ProtocolVersion}, MsgCapabilities, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := client.Call(MsgUpdateTable, UpdateTable{QID: 1}, MsgUpdateOK, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	cases := []struct {
		mt   MsgType
		want uint64
	}{
		{MsgHello, 1},
		{MsgUpdateTable, 2},
		{MsgEndWindow, 0},
		{MsgInstall, 0},
	}
	for _, c := range cases {
		key := fmt.Sprintf(`sonata_netproto_rtt_ns{type="%s"}`, c.mt)
		hv, ok := s.Histograms[key]
		if !ok {
			t.Fatalf("no histogram series %s (have %v)", key, keysOf(s))
		}
		if hv.Count != c.want {
			t.Errorf("%s: count = %d, want %d", key, hv.Count, c.want)
		}
		if c.want > 0 && hv.Sum == 0 {
			t.Errorf("%s: %d observations but zero summed RTT", key, hv.Count)
		}
	}
	// Frame counters see both directions of every call.
	if got := s.Counter("sonata_netproto_frames_sent_total"); got != 3 {
		t.Errorf("frames sent = %d, want 3", got)
	}
	if got := s.Counter("sonata_netproto_frames_recv_total"); got != 3 {
		t.Errorf("frames recv = %d, want 3", got)
	}
}

func keysOf(s telemetry.Snapshot) []string {
	var out []string
	for k := range s.Histograms {
		out = append(out, k)
	}
	return out
}

// TestReconnectMetricsContinuity: when a control connection drops and the
// client redials, the new Conn is instrumented against the same registry.
// The registry hands back the existing handles, so the RTT histograms and
// frame/byte counters continue across the reconnect — each call observed
// exactly once, never doubled by the re-registration, and the in-flight
// failure of the dropped connection contributes no phantom observation.
func TestReconnectMetricsContinuity(t *testing.T) {
	reg := telemetry.NewRegistry()

	// First connection: one successful Hello call, then the transport drops
	// mid-call (the peer closes without responding).
	c1, s1 := net.Pipe()
	client := NewConn(c1)
	client.Instrument(reg)
	done := serveCalls(t, NewConn(s1), 1)
	if err := client.Call(MsgHello, Hello{Version: ProtocolVersion}, MsgCapabilities, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	go func() {
		// Swallow the request frame, then hang up instead of answering.
		conn := NewConn(s1)
		conn.RecvRaw()
		s1.Close()
	}()
	if err := client.Call(MsgUpdateTable, UpdateTable{QID: 9}, MsgUpdateOK, nil); err == nil {
		t.Fatal("call on dropped connection succeeded")
	}
	c1.Close()

	// Redial: a fresh Conn instrumented against the same registry.
	c2, s2 := net.Pipe()
	client = NewConn(c2)
	client.Instrument(reg)
	defer c2.Close()
	defer s2.Close()
	done = serveCalls(t, NewConn(s2), 2)
	for i := 0; i < 2; i++ {
		if err := client.Call(MsgUpdateTable, UpdateTable{QID: 1}, MsgUpdateOK, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	// RTT continuity: 1 hello observation from before the drop, 2 update
	// observations from after it. The failed call observes nothing (no
	// response ever arrived), and re-Instrument must not double anything.
	cases := []struct {
		mt   MsgType
		want uint64
	}{
		{MsgHello, 1},
		{MsgUpdateTable, 2},
	}
	for _, c := range cases {
		key := fmt.Sprintf(`sonata_netproto_rtt_ns{type="%s"}`, c.mt)
		if got := s.Histograms[key].Count; got != c.want {
			t.Errorf("%s: count = %d across reconnect, want %d", key, got, c.want)
		}
	}
	// Frames sent: 1 hello + 1 failed update + 2 updates = 4; received
	// responses: 1 capabilities + 2 update-oks = 3.
	if got := s.Counter("sonata_netproto_frames_sent_total"); got != 4 {
		t.Errorf("frames sent across reconnect = %d, want 4", got)
	}
	if got := s.Counter("sonata_netproto_frames_recv_total"); got != 3 {
		t.Errorf("frames recv across reconnect = %d, want 3", got)
	}
}

// TestCallUninstrumented: Call must work (and not panic) on a connection
// that was never instrumented, and after Instrument(nil) — the nil-handle
// discipline of the telemetry package.
func TestCallUninstrumented(t *testing.T) {
	for name, instrument := range map[string]func(*Conn){
		"never":   func(*Conn) {},
		"nil-reg": func(c *Conn) { c.Instrument(nil) },
	} {
		t.Run(name, func(t *testing.T) {
			c1, c2 := net.Pipe()
			defer c1.Close()
			defer c2.Close()
			client, server := NewConn(c1), NewConn(c2)
			instrument(client)
			done := serveCalls(t, server, 1)
			if err := client.Call(MsgEndWindow, nil, MsgWindowData, nil); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}
