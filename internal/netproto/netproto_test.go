package netproto

import (
	"bytes"
	"io"
	"net"
	"testing"

	"repro/internal/pisa"
	"repro/internal/tuple"
)

// duplex is an in-memory bidirectional buffer for single-threaded framing
// tests.
type duplex struct {
	buf bytes.Buffer
}

func (d *duplex) Read(p []byte) (int, error)  { return d.buf.Read(p) }
func (d *duplex) Write(p []byte) (int, error) { return d.buf.Write(p) }

func TestFramingRoundTrip(t *testing.T) {
	d := &duplex{}
	c := NewConn(d)
	want := UpdateTable{QID: 7, Level: 16, Side: pisa.SideRight, OpIdx: 2,
		Keys: []string{"a", "bb", ""}}
	if err := c.Send(MsgUpdateTable, &want); err != nil {
		t.Fatal(err)
	}
	var got UpdateTable
	if err := c.Expect(MsgUpdateTable, &got); err != nil {
		t.Fatal(err)
	}
	if got.QID != 7 || got.Level != 16 || got.Side != pisa.SideRight || len(got.Keys) != 3 {
		t.Errorf("got %+v", got)
	}
}

func TestEmptyPayloadFrames(t *testing.T) {
	d := &duplex{}
	c := NewConn(d)
	if err := c.Send(MsgEndWindow, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := c.RecvRaw()
	if err != nil || typ != MsgEndWindow || len(body) != 0 {
		t.Fatalf("typ=%v body=%d err=%v", typ, len(body), err)
	}
}

func TestErrorFramesSurfaceAsErrors(t *testing.T) {
	d := &duplex{}
	c := NewConn(d)
	if err := c.SendError(io.ErrClosedPipe); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(nil); err == nil {
		t.Fatal("error frame not surfaced")
	}
}

func TestExpectMismatch(t *testing.T) {
	d := &duplex{}
	c := NewConn(d)
	c.Send(MsgHello, &Hello{Version: 1})
	if err := c.Expect(MsgCapabilities, nil); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestWindowDataWithTuples(t *testing.T) {
	d := &duplex{}
	c := NewConn(d)
	wd := WindowData{
		Dumps: []pisa.RegDump{{QID: 1, Level: 32, MergeOp: 2,
			KeyVals: []tuple.Value{tuple.U64(99), tuple.Str("x")}, Val: 5}},
		Stats: pisa.WindowStats{PacketsIn: 100, Mirrored: 3},
	}
	if err := c.Send(MsgWindowData, &wd); err != nil {
		t.Fatal(err)
	}
	var got WindowData
	if err := c.Expect(MsgWindowData, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Dumps) != 1 || got.Dumps[0].Val != 5 || !got.Dumps[0].KeyVals[1].Str {
		t.Errorf("dumps = %+v", got.Dumps)
	}
	if got.Stats.PacketsIn != 100 {
		t.Errorf("stats = %+v", got.Stats)
	}
}

func TestRejectsOversizedFrame(t *testing.T) {
	d := &duplex{}
	// Forge a header claiming a giant body.
	d.buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgHello)})
	c := NewConn(d)
	if _, _, err := c.RecvRaw(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTruncatedBody(t *testing.T) {
	d := &duplex{}
	c := NewConn(d)
	c.Send(MsgHello, &Hello{Version: 1})
	raw := d.buf.Bytes()
	short := &duplex{}
	short.buf.Write(raw[:len(raw)-2])
	if _, _, err := NewConn(short).RecvRaw(); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		c := NewConn(conn)
		var h Hello
		if err := c.Expect(MsgHello, &h); err != nil {
			done <- err
			return
		}
		done <- c.Send(MsgCapabilities, &pisa.Config{Stages: h.Version})
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := NewConn(conn)
	if err := c.Send(MsgHello, &Hello{Version: 9}); err != nil {
		t.Fatal(err)
	}
	var cfg pisa.Config
	if err := c.Expect(MsgCapabilities, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Stages != 9 {
		t.Errorf("echoed stages = %d", cfg.Stages)
	}
	if err := <-done; err != nil {
		t.Errorf("server: %v", err)
	}
}
