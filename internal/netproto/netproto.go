// Package netproto implements the control-plane protocol between Sonata's
// runtime and its drivers — the role the Thrift API plays in the paper's
// implementation (Section 5). Messages are gob-encoded structs behind a
// length-prefixed frame with a type byte, carried over any net.Conn.
//
// The protocol is deliberately small: capability discovery, program
// installation, dynamic filter-table updates, and end-of-window register
// collection. The packet fast path never crosses this channel; only
// control operations do, exactly as in the paper's architecture.
package netproto

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/pisa"
	"repro/internal/telemetry"
)

// MsgType tags each frame.
type MsgType uint8

const (
	// MsgError carries a string error back to the caller.
	MsgError MsgType = iota
	// MsgHello / MsgCapabilities negotiate and report switch constraints.
	MsgHello
	MsgCapabilities
	// MsgInstall ships a compiled program to the data plane.
	MsgInstall
	MsgInstallOK
	// MsgUpdateTable replaces a dynamic filter's entries.
	MsgUpdateTable
	MsgUpdateOK
	// MsgEndWindow closes the switch window; MsgWindowData returns dumps
	// and stats.
	MsgEndWindow
	MsgWindowData
	// MsgSubscribe opens a streaming result subscription (gNMI-style);
	// MsgSubscribeOK acknowledges it with the assigned subscriber id.
	MsgSubscribe
	MsgSubscribeOK
	// MsgNotify carries one (query, level) window update to a subscriber.
	// Unlike the request/response pairs above it is one-way: the server (or
	// a dial-out client) streams notify frames without awaiting acks, so the
	// result path never blocks on a round trip.
	MsgNotify
)

// lastMsgType is the highest defined message type; Instrument registers one
// RTT series per type up to here.
const lastMsgType = MsgNotify

func (t MsgType) String() string {
	switch t {
	case MsgError:
		return "error"
	case MsgHello:
		return "hello"
	case MsgCapabilities:
		return "capabilities"
	case MsgInstall:
		return "install"
	case MsgInstallOK:
		return "install-ok"
	case MsgUpdateTable:
		return "update-table"
	case MsgUpdateOK:
		return "update-ok"
	case MsgEndWindow:
		return "end-window"
	case MsgWindowData:
		return "window-data"
	case MsgSubscribe:
		return "subscribe"
	case MsgSubscribeOK:
		return "subscribe-ok"
	case MsgNotify:
		return "notify"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// maxFrame bounds a control frame; programs and dumps stay far below this.
const maxFrame = 64 << 20

// Hello is the client's opening message.
type Hello struct {
	Version int
}

// ProtocolVersion is bumped on incompatible changes.
const ProtocolVersion = 1

// UpdateTable names a dynamic filter and its replacement entries.
type UpdateTable struct {
	QID   uint16
	Level uint8
	Side  pisa.Side
	OpIdx int
	Keys  []string
}

// UpdateResult reports entries written.
type UpdateResult struct {
	Entries int
}

// WindowData carries the end-of-window register dumps and stats.
type WindowData struct {
	Dumps []pisa.RegDump
	Stats pisa.WindowStats
}

// ErrorMsg carries a remote failure.
type ErrorMsg struct {
	Text string
}

// maxMsgType bounds the per-type metric arrays; message types are small
// consecutive constants.
const maxMsgType = 16

// connMetrics holds a connection's telemetry handles, pre-registered per
// message type so the control path never does a map lookup to count.
type connMetrics struct {
	framesSent *telemetry.Counter
	framesRecv *telemetry.Counter
	bytesSent  *telemetry.Counter
	bytesRecv  *telemetry.Counter
	rtt        [maxMsgType]*telemetry.Histogram
}

// Conn frames gob messages over an io.ReadWriter.
type Conn struct {
	rw io.ReadWriter
	m  connMetrics
}

// NewConn wraps a transport.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// Instrument registers the connection's metrics against reg (nil
// disables): frames and bytes in each direction, plus a round-trip-time
// histogram per request type (observed by Call).
func (c *Conn) Instrument(reg *telemetry.Registry) {
	c.m = connMetrics{
		framesSent: reg.Counter("sonata_netproto_frames_sent_total",
			"Control-plane frames written."),
		framesRecv: reg.Counter("sonata_netproto_frames_recv_total",
			"Control-plane frames read."),
		bytesSent: reg.Counter("sonata_netproto_bytes_sent_total",
			"Control-plane bytes written (headers and payloads)."),
		bytesRecv: reg.Counter("sonata_netproto_bytes_recv_total",
			"Control-plane bytes read (headers and payloads)."),
	}
	if reg == nil {
		return
	}
	for t := MsgType(0); t <= lastMsgType; t++ {
		c.m.rtt[t] = reg.Histogram("sonata_netproto_rtt_ns",
			"Round-trip time of one control request in nanoseconds.",
			telemetry.DurationBuckets, "type", t.String())
	}
}

// Call sends one request frame and waits for the expected response,
// decoding its payload into out (which may be nil). The round trip is
// timed into the per-request-type histogram when instrumented.
func (c *Conn) Call(t MsgType, payload any, want MsgType, out any) error {
	start := time.Now()
	if err := c.Send(t, payload); err != nil {
		return err
	}
	if err := c.Expect(want, out); err != nil {
		return err
	}
	if t < maxMsgType {
		c.m.rtt[t].ObserveDuration(time.Since(start))
	}
	return nil
}

// Send writes one frame: u32 length | u8 type | gob payload.
func (c *Conn) Send(t MsgType, payload any) error {
	var body bytes.Buffer
	if payload != nil {
		if err := gob.NewEncoder(&body).Encode(payload); err != nil {
			return fmt.Errorf("netproto: encoding %v: %w", t, err)
		}
	}
	return c.SendRaw(t, body.Bytes())
}

// SendRaw writes one frame whose body is already encoded. This is the
// fan-out fast path: a subscription server encodes an update once and writes
// the same body to every subscriber without re-serializing, and the write
// itself allocates nothing.
func (c *Conn) SendRaw(t MsgType, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = byte(t)
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: writing %v header: %w", t, err)
	}
	// Skip empty writes: a zero-length Write on a synchronous transport
	// (net.Pipe) blocks until a matching zero-length Read that never comes.
	if len(body) > 0 {
		if _, err := c.rw.Write(body); err != nil {
			return fmt.Errorf("netproto: writing %v body: %w", t, err)
		}
	}
	c.m.framesSent.Inc()
	c.m.bytesSent.Add(uint64(len(hdr) + len(body)))
	return nil
}

// RecvRaw reads one frame, returning its type and undecoded payload. A
// MsgError frame is surfaced as a Go error (with the type still returned).
func (c *Conn) RecvRaw() (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("netproto: bad frame length %d", n)
	}
	t := MsgType(hdr[4])
	body := make([]byte, n-1)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return t, nil, fmt.Errorf("netproto: reading %v body: %w", t, io.ErrUnexpectedEOF)
	}
	c.m.framesRecv.Inc()
	c.m.bytesRecv.Add(uint64(len(hdr) + len(body)))
	if t == MsgError {
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return t, nil, fmt.Errorf("netproto: undecodable remote error: %w", err)
		}
		return t, nil, fmt.Errorf("netproto: remote error: %s", e.Text)
	}
	return t, body, nil
}

// Decode unmarshals a frame payload.
func Decode(body []byte, out any) error {
	if len(body) == 0 {
		return nil
	}
	return gob.NewDecoder(bytes.NewReader(body)).Decode(out)
}

// Recv reads one frame and decodes its payload into out (which may be nil
// for payload-less messages).
func (c *Conn) Recv(out any) (MsgType, error) {
	t, body, err := c.RecvRaw()
	if err != nil {
		return t, err
	}
	if out != nil {
		if err := Decode(body, out); err != nil {
			return t, fmt.Errorf("netproto: decoding %v: %w", t, err)
		}
	}
	return t, nil
}

// Expect receives and verifies the message type.
func (c *Conn) Expect(want MsgType, out any) error {
	got, err := c.Recv(out)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("netproto: got %v, want %v", got, want)
	}
	return nil
}

// SendError reports a failure to the peer.
func (c *Conn) SendError(err error) error {
	return c.Send(MsgError, &ErrorMsg{Text: err.Error()})
}
