// Package core is Sonata's public façade: register queries written with the
// query builder, train the planner on historical traffic, and deploy the
// resulting plan onto a switch and stream processor pair.
//
// Typical use:
//
//	s := core.New(core.Config{})
//	s.Register(queries.NewlyOpenedTCPConns(queries.DefaultParams()))
//	if err := s.Train(trainingWindows); err != nil { ... }
//	rt, err := s.Deploy()
//	for each window { rep := rt.ProcessWindow(frames); use rep.Results }
package core

import (
	"fmt"
	"time"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/runtime"
)

// Config parameterizes a deployment.
type Config struct {
	// Switch holds the data-plane resource constraints; zero means
	// pisa.DefaultConfig().
	Switch pisa.Config
	// Planner holds plan-selection options; zero means
	// planner.DefaultOptions().
	Planner planner.Options
	// Levels is the refinement level menu; nil means {8, 16, 24}, plus each
	// key's finest level implicitly.
	Levels []int
	// Window is the query window W; zero means 3 seconds.
	Window time.Duration
	// Workers shards the deployed window pipeline across this many workers;
	// 0 or 1 deploys the sequential pipeline. Reports are identical either
	// way; only wall time changes.
	Workers int
	// BatchSize is the frame-batch granularity of the deployed pipeline —
	// the fan-out unit in sharded mode, the view-buffer size in sequential
	// mode. 0 means runtime.DefaultBatchSize.
	BatchSize int
}

func (c Config) withDefaults() Config {
	if c.Switch.Stages == 0 {
		c.Switch = pisa.DefaultConfig()
	}
	if c.Planner.MaxDelay == 0 && c.Planner.ILPBudget == 0 {
		c.Planner = planner.DefaultOptions()
	}
	if c.Levels == nil {
		c.Levels = []int{8, 16, 24}
	}
	if c.Window == 0 {
		c.Window = 3 * time.Second
	}
	return c
}

// Sonata holds registered queries and training state.
type Sonata struct {
	cfg      Config
	queries  []*query.Query
	training *planner.TrainingResult
	plan     *planner.Plan
}

// New returns a Sonata instance.
func New(cfg Config) *Sonata {
	return &Sonata{cfg: cfg.withDefaults()}
}

// Register adds a query. Queries without IDs are numbered in registration
// order starting at 1.
func (s *Sonata) Register(q *query.Query) *Sonata {
	if q.ID == 0 {
		q.ID = uint16(len(s.queries) + 1)
	}
	s.queries = append(s.queries, q)
	return s
}

// Queries returns the registered queries.
func (s *Sonata) Queries() []*query.Query { return s.queries }

// Train profiles the registered queries over historical windows, deriving
// refinement ladders, relaxed thresholds, and workload costs.
func (s *Sonata) Train(windows []planner.Frames) error {
	if len(s.queries) == 0 {
		return fmt.Errorf("core: no queries registered")
	}
	tr, err := planner.Train(s.queries, s.cfg.Levels, windows)
	if err != nil {
		return err
	}
	s.training = tr
	s.plan = nil
	return nil
}

// Training exposes the training result (the evaluation harness reuses it
// across plan modes).
func (s *Sonata) Training() *planner.TrainingResult { return s.training }

// Plan runs the query planner, returning (and caching) the joint
// partitioning and refinement plan.
func (s *Sonata) Plan() (*planner.Plan, error) {
	if s.training == nil {
		return nil, fmt.Errorf("core: Train must run before Plan")
	}
	if s.plan != nil {
		return s.plan, nil
	}
	plan, err := planner.PlanQueries(s.training, s.queries, s.cfg.Switch, s.cfg.Planner)
	if err != nil {
		return nil, err
	}
	s.plan = plan
	return plan, nil
}

// Deploy builds the runtime: the switch program installed on the simulator
// and every pipeline suffix installed on the stream engine.
func (s *Sonata) Deploy() (*runtime.Runtime, error) {
	plan, err := s.Plan()
	if err != nil {
		return nil, err
	}
	return runtime.NewWithOptions(plan, s.cfg.Switch,
		runtime.Options{Workers: s.cfg.Workers, BatchSize: s.cfg.BatchSize})
}
