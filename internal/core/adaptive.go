package core

import (
	"fmt"

	"repro/internal/planner"
	"repro/internal/runtime"
)

// AdaptiveRuntime wraps a deployment with the paper's re-planning loop
// (Section 3.3 / Section 5): register collisions signal that live traffic
// holds many more unique keys than the training data predicted; when the
// collision rate passes a threshold, the runtime re-trains the planner on
// the most recent windows and redeploys with freshly sized registers and a
// new plan.
type AdaptiveRuntime struct {
	s         *Sonata
	rt        *runtime.Runtime
	threshold float64
	keep      int
	recent    []planner.Frames
	replans   int
}

// DeployAdaptive deploys the current plan and arms re-planning: when the
// cumulative collision rate exceeds threshold, the planner re-trains on the
// last keepWindows processed windows.
func (s *Sonata) DeployAdaptive(threshold float64, keepWindows int) (*AdaptiveRuntime, error) {
	if threshold <= 0 {
		threshold = 0.01
	}
	if keepWindows <= 0 {
		keepWindows = 2
	}
	rt, err := s.Deploy()
	if err != nil {
		return nil, err
	}
	return &AdaptiveRuntime{s: s, rt: rt, threshold: threshold, keep: keepWindows}, nil
}

// Runtime exposes the current deployment (it changes after a re-plan).
func (a *AdaptiveRuntime) Runtime() *runtime.Runtime { return a.rt }

// Replans counts how many times the loop re-trained and redeployed.
func (a *AdaptiveRuntime) Replans() int { return a.replans }

// ProcessWindow processes one window and, if the collision signal fired,
// re-trains and redeploys before returning. The returned flag reports
// whether a re-plan happened; dynamic refinement state restarts after one
// (the new coarse levels re-discover the needles within a window or two).
func (a *AdaptiveRuntime) ProcessWindow(frames [][]byte) (*runtime.WindowReport, bool, error) {
	rep := a.rt.ProcessWindow(frames)

	a.recent = append(a.recent, planner.Frames(frames))
	if len(a.recent) > a.keep {
		a.recent = a.recent[len(a.recent)-a.keep:]
	}

	if !a.rt.NeedsReplan(a.threshold) || len(a.recent) == 0 {
		return rep, false, nil
	}
	if err := a.s.Train(a.recent); err != nil {
		return rep, false, fmt.Errorf("core: re-training after collision signal: %w", err)
	}
	rt, err := a.s.Deploy()
	if err != nil {
		return rep, false, fmt.Errorf("core: redeploying after collision signal: %w", err)
	}
	a.rt = rt
	a.replans++
	return rep, true, nil
}
