package core

import (
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/trace"
)

func synFloodWorkload(t *testing.T) (*trace.Generator, []planner.Frames) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 4000
	cfg.Windows = 4
	cfg.Hosts = 400
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 32, 300, 0, g.Duration()))
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		w := g.WindowRecords(i)
		f := make(planner.Frames, len(w.Records))
		for j, r := range w.Records {
			f[j] = r.Data
		}
		train = append(train, f)
	}
	return g, train
}

func q1() *query.Query {
	return query.NewBuilder("q1", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 100)).
		MustBuild()
}

func TestFacadeLifecycle(t *testing.T) {
	g, train := synFloodWorkload(t)
	s := New(Config{})
	s.Register(q1())
	if got := s.Queries()[0].ID; got != 1 {
		t.Errorf("auto-assigned ID = %d", got)
	}
	if _, err := s.Plan(); err == nil {
		t.Error("Plan before Train succeeded")
	}
	if err := s.Train(train); err != nil {
		t.Fatal(err)
	}
	plan1, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	plan2, _ := s.Plan()
	if plan1 != plan2 {
		t.Error("Plan not cached")
	}
	rt, err := s.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	w := g.WindowRecords(2)
	frames := make([][]byte, len(w.Records))
	for i, r := range w.Records {
		frames[i] = r.Data
	}
	rep := rt.ProcessWindow(frames)
	found := false
	for _, res := range rep.Results {
		for _, tup := range res.Tuples {
			if tup[0].U == uint64(trace.StandardVictim) {
				found = true
			}
		}
	}
	if !found {
		t.Error("victim not detected through the façade")
	}
}

func TestFacadeValidation(t *testing.T) {
	s := New(Config{})
	if err := s.Train(nil); err == nil {
		t.Error("Train with no queries succeeded")
	}
	s.Register(q1())
	if err := s.Train(nil); err == nil {
		t.Error("Train with no windows succeeded")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Switch.Stages == 0 || c.Window == 0 || c.Levels == nil {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.Planner.MaxDelay == 0 {
		t.Errorf("planner defaults not applied: %+v", c.Planner)
	}
	// Explicit values survive.
	c2 := Config{Window: time.Second}.withDefaults()
	if c2.Window != time.Second {
		t.Error("explicit window overridden")
	}
}

func TestRetrainInvalidatesPlan(t *testing.T) {
	_, train := synFloodWorkload(t)
	s := New(Config{})
	s.Register(q1())
	if err := s.Train(train); err != nil {
		t.Fatal(err)
	}
	p1, _ := s.Plan()
	if err := s.Train(train); err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Plan()
	if p1 == p2 {
		t.Error("re-training did not invalidate the cached plan")
	}
}
