package core

import (
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/trace"
)

// TestAdaptiveReplanOnTrafficGrowth reproduces the Section 3.3 scenario:
// the planner sizes registers from training traffic; live traffic then
// grows well past the estimate, registers overflow, the collision signal
// fires, and a re-plan with recent windows restores a low collision rate.
func TestAdaptiveReplanOnTrafficGrowth(t *testing.T) {
	// Training trace: light traffic.
	light := trace.DefaultConfig()
	light.PacketsPerWindow = 1_500
	light.Windows = 2
	light.Hosts = 3_000
	lightGen, err := trace.NewGenerator(light)
	if err != nil {
		t.Fatal(err)
	}
	// Live trace: the same shape at 10x the volume (and so ~10x the unique
	// keys for the distinct-based query).
	heavy := light
	heavy.PacketsPerWindow = 15_000
	heavy.Windows = 6
	heavy.Seed = 2
	heavyGen, err := trace.NewGenerator(heavy)
	if err != nil {
		t.Fatal(err)
	}

	// Superspreader counts distinct (sIP, dIP) pairs: its key population
	// scales with traffic volume, which is what breaks the trained sizing.
	q := query.NewBuilder("superspreader", 3*time.Second).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
		Distinct().
		Map(query.C(fields.SrcIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.SrcIP).
		Filter(query.Gt(fields.AggVal, 5_000)).
		MustBuild()

	s := New(Config{})
	s.Register(q)
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		train = append(train, frames(lightGen, i))
	}
	if err := s.Train(train); err != nil {
		t.Fatal(err)
	}
	ar, err := s.DeployAdaptive(0.01, 2)
	if err != nil {
		t.Fatal(err)
	}

	var sawReplan bool
	var collisionsBefore, collisionsAfter uint64
	for w := 0; w < heavyGen.Windows(); w++ {
		rep, replanned, err := ar.ProcessWindow(frames(heavyGen, w))
		if err != nil {
			t.Fatal(err)
		}
		if !sawReplan {
			// Windows up to and including the one that fired the signal.
			collisionsBefore += rep.Switch.Collisions
		} else {
			collisionsAfter += rep.Switch.Collisions
		}
		if replanned {
			sawReplan = true
		}
	}
	if !sawReplan {
		t.Fatalf("collision signal never triggered a re-plan (before=%d)", collisionsBefore)
	}
	if collisionsBefore == 0 {
		t.Fatal("expected collisions before the re-plan")
	}
	if collisionsAfter*10 > collisionsBefore {
		t.Errorf("re-plan did not restore low collisions: before=%d after=%d",
			collisionsBefore, collisionsAfter)
	}
	if ar.Replans() == 0 {
		t.Error("replan counter did not advance")
	}
}

func frames(g *trace.Generator, i int) [][]byte {
	w := g.WindowRecords(i)
	out := make([][]byte, len(w.Records))
	for j, r := range w.Records {
		out[j] = r.Data
	}
	return out
}
