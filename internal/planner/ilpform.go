package planner

import (
	"repro/internal/compile"
	"repro/internal/ilp"
	"repro/internal/lp"
	"repro/internal/pisa"
)

// solveILP selects one candidate per query by solving the plan-selection
// ILP with the repo's branch-and-bound solver. The formulation is the
// multiple-choice aggregation of the paper's Table 2 model:
//
//	min  sum_q sum_c N(q,c) * y[q,c]                 (the paper's objective)
//	s.t. sum_c y[q,c] = 1                for each q  (one plan per query)
//	     sum stateful-tables * y <= S*A              (aggregates C2 over stages)
//	     sum register-bits   * y <= S*B              (aggregates C1)
//	     sum metadata-bits   * y <= M                (C5)
//	     per-instance table count <= S enforced at candidate generation (C3, C4)
//
// Stage-granular packing (the exact C1-C4) is then verified by the same
// first-fit placer the greedy path uses; if the ILP's choice fails to
// place, the greedy incumbent is kept. This mirrors the paper's practice of
// accepting the best feasible solution found within a time budget.
func (s *selector) solveILP(incumbent []int) ([]int, bool) {
	// Variable layout: one binary per (query, candidate).
	type varRef struct{ qi, ci int }
	var refs []varRef
	base := make([]int, len(s.queries)+1)
	for qi := range s.queries {
		base[qi] = len(refs)
		for ci := range s.cands[qi] {
			refs = append(refs, varRef{qi, ci})
		}
	}
	base[len(s.queries)] = len(refs)
	n := len(refs)
	if n == 0 {
		return nil, false
	}

	prob := &ilp.Problem{C: make([]float64, n)}
	statefulCoef := make([]float64, n)
	bitsCoef := make([]float64, n)
	metaCoef := make([]float64, n)
	for v, ref := range refs {
		c := s.cands[ref.qi][ref.ci]
		prob.C[v] = float64(c.cost)
		st, bits, meta := s.candidateResources(ref.qi, c)
		statefulCoef[v] = float64(st)
		bitsCoef[v] = float64(bits)
		metaCoef[v] = float64(meta)
		prob.Binary = append(prob.Binary, v)
	}
	// One plan per query.
	for qi := range s.queries {
		coef := make([]float64, base[qi+1])
		for v := base[qi]; v < base[qi+1]; v++ {
			coef[v] = 1
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{
			Coef: coef, Rel: lp.EQ, RHS: 1, Name: "one-plan"})
	}
	cfg := s.cfg
	prob.Constraints = append(prob.Constraints,
		lp.Constraint{Coef: statefulCoef, Rel: lp.LE,
			RHS: float64(cfg.Stages * cfg.StatefulPerStage), Name: "C2-aggregate"},
		lp.Constraint{Coef: bitsCoef, Rel: lp.LE,
			RHS: float64(cfg.RegisterBitsPerStage) * float64(cfg.Stages), Name: "C1-aggregate"},
		lp.Constraint{Coef: metaCoef, Rel: lp.LE,
			RHS: float64(cfg.MetadataBits), Name: "C5"},
	)

	sol, err := ilp.Solve(prob, ilp.Options{TimeBudget: s.opts.ILPBudget})
	if err != nil || (sol.Status != ilp.Optimal && sol.Status != ilp.Feasible) {
		return nil, false
	}
	choice := make([]int, len(s.queries))
	for qi := range choice {
		choice[qi] = -1
		for v := base[qi]; v < base[qi+1]; v++ {
			if sol.X[v] > 0.5 {
				choice[qi] = refs[v].ci
				break
			}
		}
		if choice[qi] < 0 {
			return nil, false
		}
	}
	// Exact stage-level feasibility, and only accept an improvement.
	if _, err := s.buildProgram(choice); err != nil {
		return nil, false
	}
	if incumbent != nil && s.totalCost(choice) >= s.totalCost(incumbent) {
		return nil, false
	}
	return choice, true
}

func (s *selector) totalCost(choice []int) uint64 {
	var total uint64
	for qi, ci := range choice {
		total += s.cands[qi][ci].cost
	}
	return total
}

// candidateResources aggregates a candidate's switch footprint: stateful
// table count, register bits, and metadata bits.
func (s *selector) candidateResources(qi int, c candidate) (stateful int, bits int64, meta int) {
	qt := s.queries[qi]
	prev := LevelStar
	for i, level := range c.path {
		edge := qt.Edges[[2]int{prev, level}]
		st, b, m := sideResources(edge.Left, c.cuts[i][0], s.cfg)
		stateful += st
		bits += b
		meta += m
		if edge.Right != nil {
			st, b, m = sideResources(edge.Right, c.cuts[i][1], s.cfg)
			stateful += st
			bits += b
			meta += m
		}
		prev = level
	}
	return stateful, bits, meta
}

func sideResources(sc *SideCost, cut int, cfg pisa.Config) (stateful int, bits int64, meta int) {
	if sc == nil || cut == 0 {
		return 0, 0, 0
	}
	for t := 0; t < cut; t++ {
		tab := &sc.Pipe.Tables[t]
		if !tab.Stateful {
			continue
		}
		stateful++
		n := pisa.EntriesFor(sc.KeysAt[t])
		if cap := maxEntries(cfg, tab.KeyBits, tab.ValBits); n > cap {
			n = cap
		}
		bits += pisa.RegisterBits(n, cfg.RegisterChains, tab.KeyBits, tab.ValBits)
	}
	meta = compile.MetaBits(sc.Pipe.Ops)
	return stateful, bits, meta
}
