// Package planner implements Sonata's query planner: it augments queries
// for dynamic refinement (Section 4.1), estimates per-table workload costs
// from training traffic (Section 3.3), and chooses joint partitioning and
// refinement plans under the switch's resource constraints (Sections 3.3
// and 4.2), either with a greedy packing heuristic or with the ILP
// formulation solved by the repo's branch-and-bound solver.
package planner

import (
	"fmt"

	"repro/internal/fields"
	"repro/internal/query"
)

// LevelStar denotes "no previous level": the coarsest instance of a query
// observes all traffic.
const LevelStar = 0

// DynTableName names the dynamic filter table installed at a refinement
// level of a query: the runtime loads it with the keys the previous level
// reported. Both the switch and the stream processor resolve the same name.
func DynTableName(qid uint16, level int) string {
	return fmt.Sprintf("q%d.r%d", qid, level)
}

// Thresholds carries the relaxed threshold values for one refinement level
// of a query (Section 4.1: "relaxed threshold values for coarser refinement
// levels that do not sacrifice accuracy").
type Thresholds struct {
	// Left / Right apply to the final filter of the corresponding pipeline;
	// nil means "keep the original".
	Left  *uint64
	Right *uint64
}

// AugmentQuery builds the refinement-level instance of q per Figure 4:
//
//   - every map output naming the refinement key is masked to the level,
//   - when prev != LevelStar, a dynamic filter on the key at the previous
//     level is prepended to each packet-phase pipeline, and
//   - final threshold filters are relaxed to the training-derived values.
//
// The returned query shares q's ID; the caller distinguishes instances by
// level.
func AugmentQuery(q *query.Query, key query.RefinementKey, prev, level int, th Thresholds) *query.Query {
	aug := q.Clone()
	maskPipeline(aug.Left, key, level)
	relaxFinalFilter(aug.Left, th.Left)
	if aug.HasJoin() {
		maskPipeline(aug.Right, key, level)
		relaxFinalFilter(aug.Right, th.Right)
	}
	if prev != LevelStar {
		table := DynTableName(q.ID, level)
		dyn := query.NewDynPacketFilter(table, key.Field, prev)
		aug.Left.Ops = append([]query.Op{dyn}, aug.Left.Ops...)
		if aug.HasJoin() {
			dynR := query.NewDynPacketFilter(table, key.Field, prev)
			aug.Right.Ops = append([]query.Op{dynR}, aug.Right.Ops...)
		}
	}
	return aug
}

// maskPipeline rewrites every map column that extracts the refinement key
// to mask it at the level. Masking to the key's maximum level is the
// identity, so the finest instance keeps its original semantics.
func maskPipeline(p *query.Pipeline, key query.RefinementKey, level int) {
	if p == nil || level >= key.MaxLevel {
		return
	}
	for i := range p.Ops {
		o := &p.Ops[i]
		if o.Kind != query.OpMap {
			continue
		}
		for c := range o.Cols {
			col := &o.Cols[c]
			if col.Name != key.Field {
				continue
			}
			if col.Expr.Kind == query.ExprMask {
				// Already masked (shouldn't happen on originals); tighten.
				if col.Expr.Level > level {
					col.Expr.Level = level
				}
				continue
			}
			sub := col.Expr
			col.Expr = query.Expr{Kind: query.ExprMask, Field: key.Field, Level: level, Sub: &sub}
		}
	}
}

// relaxFinalFilter lowers the final threshold filter of a pipeline to the
// given value. Only a trailing filter whose clauses are Gt/Ge on numeric
// columns qualifies; anything else is left alone. The relaxed value is the
// minimum aggregate observed over satisfying keys, so the comparison
// becomes >= — keeping a strict > would reject exactly the minimal key the
// training run said must pass.
func relaxFinalFilter(p *query.Pipeline, th *uint64) {
	if p == nil || th == nil {
		return
	}
	op := finalThresholdOp(p)
	if op == nil {
		return
	}
	for i := range op.Clauses {
		op.Clauses[i].Cmp = query.CmpGe
		op.Clauses[i].Arg.U = *th
	}
}

// finalThresholdOp returns the pipeline's trailing threshold filter, or nil.
func finalThresholdOp(p *query.Pipeline) *query.Op {
	if p == nil || len(p.Ops) == 0 {
		return nil
	}
	op := &p.Ops[len(p.Ops)-1]
	if op.Kind != query.OpFilter || op.DynFilterTable != "" || op.PacketPhase() {
		return nil
	}
	for i := range op.Clauses {
		if c := op.Clauses[i].Cmp; c != query.CmpGt && c != query.CmpGe {
			return nil
		}
		if op.Clauses[i].Arg.Str {
			return nil
		}
	}
	return op
}

// disableFinalFilter returns a copy of the pipeline with its trailing
// threshold filter opened wide (>= 0), used during training to observe the
// aggregate values that reach the filter.
func disableFinalFilter(p *query.Pipeline) *query.Pipeline {
	op := finalThresholdOp(p)
	if op == nil {
		return p
	}
	c := &query.Pipeline{Ops: append([]query.Op(nil), p.Ops...)}
	last := c.Ops[len(c.Ops)-1].Clone()
	for i := range last.Clauses {
		last.Clauses[i].Cmp = query.CmpGe
		last.Clauses[i].Arg.U = 0
	}
	c.Ops[len(c.Ops)-1] = *last
	return c
}

// thresholdColumn returns the column index the pipeline's final threshold
// filter tests (-1 when there is none).
func thresholdColumn(p *query.Pipeline) int {
	op := finalThresholdOp(p)
	if op == nil || len(op.Clauses) == 0 {
		return -1
	}
	return op.Clauses[0].Col
}

// keyColumnOf locates the refinement key column in the pipeline's final
// schema (-1 when absent).
func keyColumnOf(p *query.Pipeline, key fields.ID) int {
	s := p.OutSchema()
	if s == nil {
		return -1
	}
	return s.Index(key)
}
