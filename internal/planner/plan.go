package planner

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/compile"
	"repro/internal/pisa"
	"repro/internal/query"
)

// Mode selects which telemetry system the planner emulates (Table 4). Each
// mode constrains the plan space exactly as the paper emulates prior
// systems by constraining the ILP.
type Mode uint8

const (
	// ModeSonata is the full planner: joint partitioning and refinement.
	ModeSonata Mode = iota
	// ModeAllSP mirrors every packet to the stream processor (Gigascope,
	// OpenSOC, NetQRE).
	ModeAllSP
	// ModeFilterDP executes only leading filter tables on the switch
	// (EverFlow).
	ModeFilterDP
	// ModeMaxDP executes as many operators as fit on the switch but never
	// refines (UnivMon, OpenSketch).
	ModeMaxDP
	// ModeFixRef refines through every level, one at a time (DREAM).
	ModeFixRef
)

func (m Mode) String() string {
	switch m {
	case ModeSonata:
		return "Sonata"
	case ModeAllSP:
		return "All-SP"
	case ModeFilterDP:
		return "Filter-DP"
	case ModeMaxDP:
		return "Max-DP"
	case ModeFixRef:
		return "Fix-REF"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Options configure planning.
type Options struct {
	Mode Mode
	// MaxDelay is the default bound on refinement chain length, in windows
	// (a query's own MaxDelay takes precedence when set).
	MaxDelay int
	// UseILP solves plan selection with the branch-and-bound ILP instead of
	// the greedy packer; the greedy result seeds the incumbent either way.
	UseILP bool
	// ILPBudget bounds the ILP solve time (the paper capped Gurobi at 20
	// minutes; the default here is 10 seconds).
	ILPBudget time.Duration
}

// DefaultOptions returns the Sonata-mode defaults.
func DefaultOptions() Options {
	return Options{Mode: ModeSonata, MaxDelay: 4, ILPBudget: 10 * time.Second}
}

// InstancePlan is one (level, side) pipeline placed on the switch and
// stream processor.
type InstancePlan struct {
	Side pisa.Side
	Ops  []query.Op
	Pipe compile.Pipeline
	// Cut is the number of tables on the switch.
	Cut int
	// RegEntries sizes each stateful switch table's registers.
	RegEntries []int
	// EstWork is the trained estimate of this instance's per-window work in
	// tuple-stage units: the number of tuples entering each pipeline stage,
	// summed, as measured on the training windows (with dynamic gates
	// applied). The runtime's shard balancer weighs instances by it.
	EstWork uint64
}

// LevelPlan is one refinement level of a query: the augmented query plus
// the per-side partitioning.
type LevelPlan struct {
	Prev, Level int
	Aug         *query.Query
	Left        InstancePlan
	Right       *InstancePlan // nil without join
	// ExpectedN is the trained estimate of stream-processor tuples per
	// window contributed by this level.
	ExpectedN uint64
}

// QueryPlan is the complete plan for one query.
type QueryPlan struct {
	Query  *query.Query
	Key    query.RefinementKey
	Levels []LevelPlan
}

// Delay returns the detection delay in windows (|R| in the paper).
func (qp *QueryPlan) Delay() int { return len(qp.Levels) }

// ExpectedN sums the per-level trained tuple estimates.
func (qp *QueryPlan) ExpectedN() uint64 {
	var n uint64
	for i := range qp.Levels {
		n += qp.Levels[i].ExpectedN
	}
	return n
}

// Plan is the planner's output for the whole query set.
type Plan struct {
	Queries []*QueryPlan
	Mode    Mode
	// Program is the switch-side program realizing the plan, with stages
	// assigned.
	Program *pisa.Program
}

// ExpectedN sums the trained per-window tuple estimates across queries.
func (p *Plan) ExpectedN() uint64 {
	var n uint64
	for _, qp := range p.Queries {
		n += qp.ExpectedN()
	}
	return n
}

// candidate is one explorable plan for a single query: a refinement path
// and per-edge cuts.
type candidate struct {
	path []int    // levels, coarse to fine; empty prev handled implicitly
	cuts [][2]int // per path element: {leftCut, rightCut}
	cost uint64
}

// PlanQueries chooses partitioning and refinement plans for the trained
// query set under the switch configuration.
func PlanQueries(tr *TrainingResult, queries []*query.Query, cfg pisa.Config, opts Options) (*Plan, error) {
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 4
	}
	sel := &selector{tr: tr, cfg: cfg, opts: opts}
	for _, q := range queries {
		qt, ok := tr.PerQuery[q.ID]
		if !ok {
			return nil, fmt.Errorf("planner: query %d (%s) was not trained", q.ID, q.Name)
		}
		cands := sel.candidatesFor(qt)
		if len(cands) == 0 {
			return nil, fmt.Errorf("planner: no candidates for %q", q.Name)
		}
		sel.queries = append(sel.queries, qt)
		sel.cands = append(sel.cands, cands)
	}

	choice := sel.greedy()
	if opts.UseILP {
		if ilpChoice, ok := sel.solveILP(choice); ok {
			choice = ilpChoice
		}
	}
	return sel.realize(choice)
}

// selector carries the plan-selection state.
type selector struct {
	tr      *TrainingResult
	cfg     pisa.Config
	opts    Options
	queries []*QueryTraining
	cands   [][]candidate
}

// candidatesFor enumerates the plan space of one query under the mode.
func (s *selector) candidatesFor(qt *QueryTraining) []candidate {
	switch s.opts.Mode {
	case ModeAllSP:
		return []candidate{s.allSPCandidate(qt)}
	case ModeFilterDP:
		return []candidate{s.filterDPCandidate(qt)}
	case ModeMaxDP:
		return s.pathCandidates(qt, [][]int{s.finestPath(qt)})
	case ModeFixRef:
		return s.pathCandidates(qt, [][]int{qt.Levels})
	default:
		return s.pathCandidates(qt, s.paths(qt))
	}
}

// finestPath is the no-refinement path: the single finest level.
func (s *selector) finestPath(qt *QueryTraining) []int {
	return []int{qt.Levels[len(qt.Levels)-1]}
}

// paths enumerates monotone level chains ending at the finest level, with
// length bounded by the query's delay budget.
func (s *selector) paths(qt *QueryTraining) [][]int {
	maxLen := s.opts.MaxDelay
	if qt.Query.MaxDelay > 0 && qt.Query.MaxDelay < maxLen {
		maxLen = qt.Query.MaxDelay
	}
	if maxLen < 1 {
		maxLen = 1
	}
	finest := qt.Levels[len(qt.Levels)-1]
	inner := qt.Levels[:len(qt.Levels)-1]
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		path := append(append([]int(nil), cur...), finest)
		out = append(out, path)
		if len(cur)+1 >= maxLen {
			return
		}
		for i := start; i < len(inner); i++ {
			rec(i+1, append(cur, inner[i]))
		}
	}
	rec(0, nil)
	return out
}

// allSPCandidate puts everything on the stream processor.
func (s *selector) allSPCandidate(qt *QueryTraining) candidate {
	finest := s.finestPath(qt)
	c := candidate{path: finest, cuts: [][2]int{{0, 0}}}
	c.cost = s.pathCost(qt, c)
	return c
}

// filterDPCandidate cuts after the leading run of plain filter tables.
func (s *selector) filterDPCandidate(qt *QueryTraining) candidate {
	finest := s.finestPath(qt)
	edge := qt.Edges[[2]int{LevelStar, finest[0]}]
	cutOf := func(sc *SideCost) int {
		if sc == nil {
			return 0
		}
		cut := 0
		for i, t := range sc.Pipe.Tables {
			if t.Kind != compile.TableFilter || i >= sc.Pipe.CapPrefix {
				break
			}
			cut = i + 1
		}
		return cut
	}
	c := candidate{path: finest, cuts: [][2]int{{cutOf(edge.Left), cutOf(edge.Right)}}}
	c.cost = s.pathCost(qt, c)
	return c
}

// pathCandidates expands each path into per-edge cut combinations. For each
// edge, three cut tiers are considered: everything capability-allowed
// ("max"), the stateless prefix only ("lean"), and nothing ("zero") — the
// tiers trade stream-processor load against switch resources.
func (s *selector) pathCandidates(qt *QueryTraining, paths [][]int) []candidate {
	var out []candidate
	seen := map[string]bool{}
	// Dedup signature: decimal-rendered path and cuts with separators. Built
	// by hand because this runs inside the per-window refinement loop, where
	// reflection-based formatting showed up in end-to-end profiles.
	var sigBuf []byte
	sig := func(c *candidate) []byte {
		sigBuf = sigBuf[:0]
		for _, p := range c.path {
			sigBuf = strconv.AppendInt(sigBuf, int64(p), 10)
			sigBuf = append(sigBuf, ',')
		}
		sigBuf = append(sigBuf, '|')
		for _, t := range c.cuts {
			sigBuf = strconv.AppendInt(sigBuf, int64(t[0]), 10)
			sigBuf = append(sigBuf, ':')
			sigBuf = strconv.AppendInt(sigBuf, int64(t[1]), 10)
			sigBuf = append(sigBuf, ',')
		}
		return sigBuf
	}
	for _, path := range paths {
		tiers := make([][][2]int, len(path))
		prev := LevelStar
		for i, level := range path {
			edge := qt.Edges[[2]int{prev, level}]
			tiers[i] = cutTiers(edge)
			prev = level
		}
		// Cartesian product of tiers, bounded: paths are short (<=4) and
		// tiers per edge <=3, so at most 81 combos per path.
		var rec func(i int, cuts [][2]int)
		rec = func(i int, cuts [][2]int) {
			if i == len(path) {
				c := candidate{path: path, cuts: append([][2]int(nil), cuts...)}
				c.cost = s.pathCost(qt, c)
				if key := sig(&c); !seen[string(key)] {
					seen[string(key)] = true
					out = append(out, c)
				}
				return
			}
			for _, t := range tiers[i] {
				rec(i+1, append(cuts, t))
			}
		}
		rec(0, nil)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		// Equal trained cost: prefer deeper cuts (more work on the switch).
		// Training can only estimate the traffic it saw; when a class of
		// traffic is absent from training, every cut costs zero and the
		// deeper one is free insurance against workload drift.
		return out[i].cutDepth() > out[j].cutDepth()
	})
	// Keep the search tractable: the cheapest few dozen candidates.
	if len(out) > 48 {
		out = out[:48]
	}
	return out
}

// cutDepth sums the candidate's cut positions across levels and sides.
func (c *candidate) cutDepth() int {
	d := 0
	for _, cut := range c.cuts {
		d += cut[0] + cut[1]
	}
	return d
}

// cutTiers returns the distinct {left, right} cut pairs worth considering
// for one edge.
func cutTiers(edge *EdgeProfile) [][2]int {
	tiersOf := func(sc *SideCost) []int {
		if sc == nil {
			return []int{0}
		}
		max := maxCut(sc)
		lean := statelessCut(sc)
		set := []int{max}
		if lean != max {
			set = append(set, lean)
		}
		if lean != 0 && max != 0 {
			set = append(set, 0)
		}
		return set
	}
	var out [][2]int
	for _, l := range tiersOf(edge.Left) {
		for _, r := range tiersOf(edge.Right) {
			out = append(out, [2]int{l, r})
		}
	}
	return out
}

// maxCut is the deepest valid cut (most work on the switch).
func maxCut(sc *SideCost) int {
	pts := sc.Pipe.ValidPartitionPoints()
	return pts[len(pts)-1]
}

// statelessCut is the deepest valid cut that uses no stateful tables.
func statelessCut(sc *SideCost) int {
	cut := 0
	for _, p := range sc.Pipe.ValidPartitionPoints() {
		ok := true
		for t := 0; t < p; t++ {
			if sc.Pipe.Tables[t].Stateful {
				ok = false
				break
			}
		}
		if ok && p > cut {
			cut = p
		}
	}
	return cut
}

// pathCost is the trained per-window tuple estimate of a candidate.
func (s *selector) pathCost(qt *QueryTraining, c candidate) uint64 {
	var total uint64
	prev := LevelStar
	for i, level := range c.path {
		edge := qt.Edges[[2]int{prev, level}]
		if !gateOnly(qt, c.path, i) {
			total += sideN(edge.Left, c.cuts[i][0], s.cfg)
		}
		total += sideN(edge.Right, c.cuts[i][1], s.cfg)
		prev = level
	}
	return total
}

// gateOnly reports whether level i of the path runs only the gating
// sub-query. For join queries whose left side is the raw packet stream
// (e.g. the Zorro payload query), coarse refinement levels exist solely to
// zoom in via the aggregating sub-query; mirroring the packet-phase left
// side there would ship payloads the stream processor cannot use yet. The
// paper's case study behaves this way: payload processing starts only once
// the victim is identified.
func gateOnly(qt *QueryTraining, path []int, i int) bool {
	if i == len(path)-1 || !qt.Query.HasJoin() {
		return false
	}
	return qt.Query.Left.OutSchema() == nil
}

// sideN is the trained N for a cut plus the estimated register-overflow
// traffic under the switch's per-op budget.
func sideN(sc *SideCost, cut int, cfg pisa.Config) uint64 {
	if sc == nil {
		return 0
	}
	base := sc.NAtCut[0]
	for i, p := range sc.Pipe.ValidPartitionPoints() {
		if p == cut {
			base = sc.NAtCut[i]
			break
		}
	}
	return base + overflowN(sc, cut, cfg)
}

// greedy packs candidates: start everything at All-SP-equivalent (always
// feasible: zero switch resources) and repeatedly adopt the single swap
// with the largest tuple saving that still packs onto the switch.
func (s *selector) greedy() []int {
	choice := make([]int, len(s.queries))
	for qi := range choice {
		choice[qi] = s.fallbackIndex(qi)
	}
	for {
		bestQ, bestC := -1, -1
		var bestGain int64
		for qi := range s.queries {
			cur := s.cands[qi][choice[qi]].cost
			for ci := range s.cands[qi] {
				if ci == choice[qi] {
					continue
				}
				gain := int64(cur) - int64(s.cands[qi][ci].cost)
				if gain <= bestGain {
					continue
				}
				old := choice[qi]
				choice[qi] = ci
				if _, err := s.buildProgram(choice); err == nil {
					bestQ, bestC, bestGain = qi, ci, gain
				}
				choice[qi] = old
			}
		}
		if bestQ < 0 {
			break
		}
		choice[bestQ] = bestC
	}
	// Final pass: within equal cost, move each query to the deepest-cut
	// candidate that still packs (free robustness; see candidate ordering).
	for qi := range s.queries {
		cur := &s.cands[qi][choice[qi]]
		for ci := range s.cands[qi] {
			c := &s.cands[qi][ci]
			if ci == choice[qi] || c.cost != cur.cost || c.cutDepth() <= cur.cutDepth() {
				continue
			}
			old := choice[qi]
			choice[qi] = ci
			if _, err := s.buildProgram(choice); err != nil {
				choice[qi] = old
			} else {
				cur = &s.cands[qi][choice[qi]]
			}
		}
	}
	return choice
}

// fallbackIndex finds (or appends) the all-zero-cut candidate, which is
// feasible on any switch.
func (s *selector) fallbackIndex(qi int) int {
	for ci, c := range s.cands[qi] {
		if len(c.path) == 1 && c.cuts[0] == [2]int{0, 0} {
			return ci
		}
	}
	s.cands[qi] = append(s.cands[qi], s.allSPCandidate(s.queries[qi]))
	return len(s.cands[qi]) - 1
}

// realize converts a choice vector into the final plan with a validated
// switch program.
func (s *selector) realize(choice []int) (*Plan, error) {
	prog, err := s.buildProgram(choice)
	if err != nil {
		return nil, fmt.Errorf("planner: chosen plan does not fit the switch: %w", err)
	}
	plan := &Plan{Mode: s.opts.Mode, Program: prog}
	for qi, qt := range s.queries {
		c := s.cands[qi][choice[qi]]
		qp := &QueryPlan{Query: qt.Query, Key: qt.Key}
		prev := LevelStar
		for i, level := range c.path {
			lp := s.levelPlan(qt, prev, level, c.cuts[i], gateOnly(qt, c.path, i))
			qp.Levels = append(qp.Levels, lp)
			prev = level
		}
		plan.Queries = append(plan.Queries, qp)
	}
	return plan, nil
}

// levelPlan builds one level's plan entry. Gate-only levels collapse the
// join query to its aggregating sub-query: the level's sole job is to feed
// the next level's dynamic filters.
func (s *selector) levelPlan(qt *QueryTraining, prev, level int, cuts [2]int, gate bool) LevelPlan {
	edge := qt.Edges[[2]int{prev, level}]
	aug := qt.AugmentedAt(prev, level)
	lp := LevelPlan{Prev: prev, Level: level, Aug: aug}
	if gate {
		lp.Aug = gateQuery(aug)
		lp.Left = makeInstance(pisa.SideLeft, lp.Aug.Left.Ops, edge.Right, cuts[1], s.cfg)
		lp.ExpectedN = sideN(edge.Right, cuts[1], s.cfg)
		return lp
	}
	lp.Left = makeInstance(pisa.SideLeft, aug.Left.Ops, edge.Left, cuts[0], s.cfg)
	lp.ExpectedN = sideN(edge.Left, cuts[0], s.cfg)
	if edge.Right != nil {
		r := makeInstance(pisa.SideRight, aug.Right.Ops, edge.Right, cuts[1], s.cfg)
		lp.Right = &r
		lp.ExpectedN += sideN(edge.Right, cuts[1], s.cfg)
	}
	return lp
}

// gateQuery rewrites a join query into a plain query over its right
// (aggregating) sub-pipeline.
func gateQuery(aug *query.Query) *query.Query {
	return &query.Query{
		ID: aug.ID, Name: aug.Name + "#gate", Window: aug.Window,
		MaxDelay: aug.MaxDelay, Left: aug.Right,
	}
}

func makeInstance(side pisa.Side, ops []query.Op, sc *SideCost, cut int, cfg pisa.Config) InstancePlan {
	inst := InstancePlan{Side: side, Ops: ops, Pipe: compile.CompilePipeline(ops), Cut: cut}
	// Work estimate for the shard balancer: the trained op-level work sum
	// plus the collision-overflow packets this cut will shunt inline to the
	// stream processor — the profiler has unbounded registers, so sc.Work
	// alone misses that cost, and it is heavy (mirror encode/decode plus an
	// SP pipeline run per packet).
	inst.EstWork = sc.Work + 8*overflowN(sc, cut, cfg)
	inst.RegEntries = make([]int, len(inst.Pipe.Tables))
	for t := range inst.Pipe.Tables {
		if inst.Pipe.Tables[t].Stateful && t < cut {
			tab := &inst.Pipe.Tables[t]
			n := pisa.EntriesFor(sc.KeysAt[t])
			if cap := maxEntries(cfg, tab.KeyBits, tab.ValBits); n > cap {
				// Cap to the per-operator register budget: keys beyond
				// capacity overflow to the stream processor per packet,
				// which the cost model (overflowN) accounts for.
				n = cap
			}
			inst.RegEntries[t] = n
		}
	}
	return inst
}

// maxEntries is the largest power-of-two register size fitting the per-op
// budget.
func maxEntries(cfg pisa.Config, keyBits, valBits int) int {
	n := 256
	for pisa.RegisterBits(n*2, cfg.RegisterChains, keyBits, valBits) <= cfg.MaxRegisterBitsPerOp {
		n *= 2
	}
	return n
}

// overflowN estimates the per-window packets shunted to the stream
// processor when a stateful table's key population exceeds its capped
// register capacity: the excess key fraction applied to the table's input
// packet volume (Section 3.3's "additional packets processed by the stream
// processor" term).
func overflowN(sc *SideCost, cut int, cfg pisa.Config) uint64 {
	var extra uint64
	for t := 0; t < cut; t++ {
		tab := &sc.Pipe.Tables[t]
		if !tab.Stateful {
			continue
		}
		keys := sc.KeysAt[t]
		n := pisa.EntriesFor(keys)
		cap := maxEntries(cfg, tab.KeyBits, tab.ValBits)
		if n <= cap {
			continue
		}
		// Effective capacity of d chained registers before collisions bite.
		capacity := uint64(float64(cap*cfg.RegisterChains) * 0.7)
		if keys <= capacity {
			continue
		}
		inPkts := tableInputN(sc, t)
		extra += (keys - capacity) * inPkts / keys
	}
	return extra
}

// tableInputN estimates the packets entering table t: the trained N at the
// deepest valid cut at or before t.
func tableInputN(sc *SideCost, t int) uint64 {
	pts := sc.Pipe.ValidPartitionPoints()
	best := sc.NAtCut[0]
	for i, p := range pts {
		if p <= t {
			best = sc.NAtCut[i]
		}
	}
	return best
}

// buildProgram materializes the switch program for a choice vector,
// assigning stages first-fit, and validates it against the configuration.
func (s *selector) buildProgram(choice []int) (*pisa.Program, error) {
	prog := &pisa.Program{}
	place := newPlacer(s.cfg)
	for qi, qt := range s.queries {
		c := s.cands[qi][choice[qi]]
		prev := LevelStar
		for i, level := range c.path {
			edge := qt.Edges[[2]int{prev, level}]
			aug := qt.AugmentedAt(prev, level)
			if gateOnly(qt, c.path, i) {
				// Gate-only level: the sub-query runs as the (only) left
				// pipeline.
				if err := s.placeSide(prog, place, qt, aug.Right.Ops, edge.Right, level, pisa.SideLeft, c.cuts[i][1]); err != nil {
					return nil, err
				}
				prev = level
				continue
			}
			if err := s.placeSide(prog, place, qt, aug.Left.Ops, edge.Left, level, pisa.SideLeft, c.cuts[i][0]); err != nil {
				return nil, err
			}
			if edge.Right != nil {
				if err := s.placeSide(prog, place, qt, aug.Right.Ops, edge.Right, level, pisa.SideRight, c.cuts[i][1]); err != nil {
					return nil, err
				}
			}
			prev = level
		}
	}
	if err := prog.Validate(s.cfg); err != nil {
		return nil, err
	}
	return prog, nil
}

func (s *selector) placeSide(prog *pisa.Program, place *placer, qt *QueryTraining,
	ops []query.Op, sc *SideCost, level int, side pisa.Side, cut int) error {
	inst := makeInstance(side, ops, sc, cut, s.cfg)
	spec := &pisa.InstanceSpec{
		QID: qt.Query.ID, Level: uint8(level), Side: side,
		Ops: inst.Ops, Tables: inst.Pipe.Tables, CutAt: cut,
		RegEntries: inst.RegEntries,
	}
	stages, err := place.fit(spec)
	if err != nil {
		return err
	}
	spec.StageOf = stages
	prog.Instances = append(prog.Instances, spec)
	return nil
}

// placer assigns tables to stages first-fit under the per-stage limits.
type placer struct {
	cfg       Config
	stateful  []int
	stateless []int
	bits      []int64
}

// Config aliases pisa.Config for the placer.
type Config = pisa.Config

func newPlacer(cfg Config) *placer {
	return &placer{cfg: cfg,
		stateful:  make([]int, cfg.Stages),
		stateless: make([]int, cfg.Stages),
		bits:      make([]int64, cfg.Stages)}
}

// fit places an instance's switch tables in strictly increasing stages.
func (p *placer) fit(spec *pisa.InstanceSpec) ([]int, error) {
	stages := make([]int, len(spec.Tables))
	for i := range stages {
		stages[i] = -1
	}
	next := 0
	for t := 0; t < spec.CutAt; t++ {
		tab := &spec.Tables[t]
		placed := false
		for st := next; st < p.cfg.Stages; st++ {
			if tab.Stateful {
				opBits := pisa.RegisterBits(spec.RegEntries[t], p.cfg.RegisterChains, tab.KeyBits, tab.ValBits)
				if opBits > p.cfg.MaxRegisterBitsPerOp {
					return nil, fmt.Errorf("planner: %s table %d needs %d bits, per-op cap %d",
						spec.Name(), t, opBits, p.cfg.MaxRegisterBitsPerOp)
				}
				if p.stateful[st]+1 > p.cfg.StatefulPerStage || p.bits[st]+opBits > p.cfg.RegisterBitsPerStage {
					continue
				}
				p.stateful[st]++
				p.bits[st] += opBits
			} else {
				if p.stateless[st]+1 > p.cfg.StatelessPerStage {
					continue
				}
				p.stateless[st]++
			}
			stages[t] = st
			next = st + 1
			placed = true
			break
		}
		if !placed {
			return nil, fmt.Errorf("planner: %s table %d does not fit in %d stages",
				spec.Name(), t, p.cfg.Stages)
		}
	}
	return stages, nil
}
