package planner

import (
	"math/rand"
	"testing"

	"repro/internal/pisa"
	"repro/internal/queries"
	"repro/internal/query"
)

// TestPlansAlwaysFitRandomSwitches is the planner's safety property: for
// arbitrary (valid) switch configurations, every mode must either produce a
// program that passes the switch's own constraint validation, or fail with
// an error — never emit an invalid program. The All-SP fallback (zero
// switch resources) guarantees feasibility, so errors should not occur
// either.
func TestPlansAlwaysFitRandomSwitches(t *testing.T) {
	windows := trainingWindows(t, 1, 4000)
	p := queries.DefaultParams()
	qs := []*query.Query{
		q1(100),
		queries.Superspreader(p),
		queries.SlowlorisAttacks(p),
	}
	for i, q := range qs {
		q.ID = uint16(i + 1)
	}
	tr, err := Train(qs, []int{8, 16}, windows)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		cfg := pisa.Config{
			Stages:               1 + r.Intn(32),
			StatefulPerStage:     r.Intn(9),
			StatelessPerStage:    8 + r.Intn(120),
			RegisterBitsPerStage: int64(1+r.Intn(64)) << 17,
			MetadataBits:         128 + r.Intn(8<<10),
			RegisterChains:       1 + r.Intn(4),
		}
		cfg.MaxRegisterBitsPerOp = cfg.RegisterBitsPerStage / int64(1+r.Intn(2))
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d generated invalid config: %v", trial, err)
		}
		for _, mode := range []Mode{ModeSonata, ModeMaxDP, ModeFixRef, ModeAllSP, ModeFilterDP} {
			opts := DefaultOptions()
			opts.Mode = mode
			plan, err := PlanQueries(tr, qs, cfg, opts)
			if err != nil {
				t.Errorf("trial %d %v: planning failed despite All-SP fallback: %v", trial, mode, err)
				continue
			}
			if err := plan.Program.Validate(cfg); err != nil {
				t.Errorf("trial %d %v: invalid program: %v (cfg %+v)", trial, mode, err, cfg)
			}
			// The plan must cover every query exactly once.
			if len(plan.Queries) != len(qs) {
				t.Errorf("trial %d %v: %d query plans for %d queries", trial, mode, len(plan.Queries), len(qs))
			}
		}
	}
}
