package planner

import (
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/pisa"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/trace"
)

func q1(th uint64) *query.Query {
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, th)).
		MustBuild()
	q.ID = 1
	return q
}

func TestAugmentMasksAndFilters(t *testing.T) {
	q := q1(40)
	key, ok := query.QueryRefinementKey(q)
	if !ok {
		t.Fatal("q1 must be refinable")
	}
	th := uint64(900)
	aug := AugmentQuery(q, key, 8, 16, Thresholds{Left: &th})

	// Dyn filter prepended at the previous level.
	first := &aug.Left.Ops[0]
	if first.DynFilterTable != DynTableName(1, 16) || first.DynLevel != 8 || first.DynKeyField != fields.DstIP {
		t.Errorf("dyn filter = %+v", first)
	}
	// Map output masked to /16.
	mapOp := &aug.Left.Ops[2]
	if mapOp.Kind != query.OpMap {
		t.Fatalf("op 2 = %v", mapOp.Kind)
	}
	if e := mapOp.Cols[0].Expr; e.Kind != query.ExprMask || e.Level != 16 {
		t.Errorf("key column expr = %+v", e)
	}
	// Threshold relaxed.
	last := &aug.Left.Ops[len(aug.Left.Ops)-1]
	if last.Clauses[0].Arg.U != 900 {
		t.Errorf("threshold = %d, want 900", last.Clauses[0].Arg.U)
	}
	// Original untouched.
	if q.Left.Ops[0].Kind != query.OpFilter || q.Left.Ops[0].DynFilterTable != "" {
		t.Error("original query mutated")
	}
	if q.Left.Ops[len(q.Left.Ops)-1].Clauses[0].Arg.U != 40 {
		t.Error("original threshold mutated")
	}
}

func TestAugmentFinestIsIdentityMask(t *testing.T) {
	q := q1(40)
	key, _ := query.QueryRefinementKey(q)
	aug2 := AugmentQuery(q, key, LevelStar, 32, Thresholds{})
	// No dyn filter for the coarsest instance; mask at /32 is identity so
	// the map is unchanged.
	if aug2.Left.Ops[0].DynFilterTable != "" {
		t.Error("coarsest instance must not have a dyn filter")
	}
	if e := aug2.Left.Ops[1].Cols[0].Expr; e.Kind == query.ExprMask {
		t.Error("finest level should not wrap the key in a mask")
	}
}

func trainingWindows(t *testing.T, nWindows, pktsPerWindow int) []Frames {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = pktsPerWindow
	cfg.Windows = nWindows
	cfg.Hosts = 600
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 64, pktsPerWindow/20, 0, g.Duration()))
	var out []Frames
	for i := 0; i < nWindows; i++ {
		w := g.WindowRecords(i)
		frames := make(Frames, len(w.Records))
		for j, r := range w.Records {
			frames[j] = r.Data
		}
		out = append(out, frames)
	}
	return out
}

func TestTrainQuery1(t *testing.T) {
	windows := trainingWindows(t, 2, 6000)
	q := q1(100)
	tr, err := Train([]*query.Query{q}, []int{8, 16, 24}, windows)
	if err != nil {
		t.Fatal(err)
	}
	qt := tr.PerQuery[1]
	if !qt.Refinable || qt.Key.Field != fields.DstIP {
		t.Fatalf("training = %+v", qt)
	}
	wantLevels := []int{8, 16, 24, 32}
	if len(qt.Levels) != 4 {
		t.Fatalf("levels = %v", qt.Levels)
	}
	for i, l := range wantLevels {
		if qt.Levels[i] != l {
			t.Fatalf("levels = %v", qt.Levels)
		}
	}
	// The flood victim must satisfy at the finest level.
	if len(qt.Satisfy[32]) == 0 {
		t.Fatal("no satisfying keys at /32")
	}
	// Coarser levels must have relaxed (larger) thresholds: the victim's /8
	// aggregate dwarfs its /32 count.
	if th := qt.Th[8].Left; th == nil || *th < 100 {
		t.Errorf("relaxed /8 threshold = %v; want >= original", th)
	}
	// Satisfying set shrinks or holds as levels coarsen (prefixes merge).
	if len(qt.Satisfy[8]) > len(qt.Satisfy[32]) {
		t.Errorf("satisfy sizes: /8=%d /32=%d", len(qt.Satisfy[8]), len(qt.Satisfy[32]))
	}
	// Edge costs: once the dyn filter runs on the switch (cut >= 1), gated
	// edges see far less traffic than the full stream. (At cut 0 even the
	// dyn filter runs at the SP, so N equals the whole window.)
	star32 := qt.Edges[[2]int{LevelStar, 32}]
	gated32 := qt.Edges[[2]int{8, 32}]
	if gated32.Left.NAtCut[0] != star32.Left.NAtCut[0] {
		t.Errorf("cut-0 N must be the whole window: %d vs %d",
			gated32.Left.NAtCut[0], star32.Left.NAtCut[0])
	}
	if gated32.Left.Pipe.Tables[0].Kind.String() != "dyn-filter" {
		t.Fatalf("gated pipeline table 0 = %v", gated32.Left.Pipe.Tables[0].Kind)
	}
	if gated32.Left.NAtCut[1]*2 >= star32.Left.NAtCut[0] {
		t.Errorf("gated N(cut1) %d not well below window %d",
			gated32.Left.NAtCut[1], star32.Left.NAtCut[0])
	}
	// Deeper cuts never increase N.
	for i := 1; i < len(star32.Left.NAtCut); i++ {
		if star32.Left.NAtCut[i] > star32.Left.NAtCut[i-1] {
			t.Errorf("N increased with deeper cut: %v", star32.Left.NAtCut)
		}
	}
}

func TestPlanModesOrdering(t *testing.T) {
	windows := trainingWindows(t, 2, 6000)
	p := queries.DefaultParams()
	p.NewTCPThresh = 100
	qs := []*query.Query{q1(100)}
	tr, err := Train(qs, []int{8, 16, 24}, windows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	costs := map[Mode]uint64{}
	for _, mode := range []Mode{ModeAllSP, ModeFilterDP, ModeMaxDP, ModeFixRef, ModeSonata} {
		opts := DefaultOptions()
		opts.Mode = mode
		plan, err := PlanQueries(tr, qs, cfg, opts)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := plan.Program.Validate(cfg); err != nil {
			t.Fatalf("%v: invalid program: %v", mode, err)
		}
		costs[mode] = plan.ExpectedN()
		t.Logf("%v: expected N = %d, delay = %d", mode, plan.ExpectedN(), plan.Queries[0].Delay())
	}
	if costs[ModeAllSP] < costs[ModeFilterDP] || costs[ModeFilterDP] < costs[ModeMaxDP] {
		t.Errorf("cost ordering violated: %v", costs)
	}
	if costs[ModeSonata] > costs[ModeMaxDP] {
		t.Errorf("Sonata (%d) should beat Max-DP (%d)", costs[ModeSonata], costs[ModeMaxDP])
	}
	// With ample resources Query 1 fits entirely on the switch, so Sonata's
	// expected N must be tiny compared to All-SP.
	if costs[ModeSonata]*100 > costs[ModeAllSP] {
		t.Errorf("Sonata %d not orders below All-SP %d", costs[ModeSonata], costs[ModeAllSP])
	}
}

func TestPlanTightSwitchForcesPartialOffload(t *testing.T) {
	windows := trainingWindows(t, 1, 4000)
	qs := []*query.Query{q1(100)}
	tr, err := Train(qs, []int{8, 16}, windows)
	if err != nil {
		t.Fatal(err)
	}
	// A switch with no stateful capacity: only stateless prefixes fit.
	cfg := pisa.DefaultConfig()
	cfg.StatefulPerStage = 0
	opts := DefaultOptions()
	plan, err := PlanQueries(tr, qs, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range plan.Program.Instances {
		for ti := 0; ti < inst.CutAt; ti++ {
			if inst.Tables[ti].Stateful {
				t.Fatalf("stateful table placed on a switch with A=0")
			}
		}
	}
	// Still better than nothing: the SYN filter runs on the switch.
	allSP := tr.WindowPackets
	if plan.ExpectedN() >= allSP {
		t.Errorf("stateless offload did not reduce N: %d vs %d", plan.ExpectedN(), allSP)
	}
}

func TestPlanILPAgreesWithGreedyOnEasyInstance(t *testing.T) {
	windows := trainingWindows(t, 1, 4000)
	qs := []*query.Query{q1(100)}
	tr, err := Train(qs, []int{8, 16}, windows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	greedyOpts := DefaultOptions()
	gPlan, err := PlanQueries(tr, qs, cfg, greedyOpts)
	if err != nil {
		t.Fatal(err)
	}
	ilpOpts := DefaultOptions()
	ilpOpts.UseILP = true
	ilpOpts.ILPBudget = 5 * time.Second
	iPlan, err := PlanQueries(tr, qs, cfg, ilpOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The ILP may only improve on the greedy incumbent.
	if iPlan.ExpectedN() > gPlan.ExpectedN() {
		t.Errorf("ILP (%d) worse than greedy (%d)", iPlan.ExpectedN(), gPlan.ExpectedN())
	}
}

func TestPlanJoinQueryUsesOnePlanForBothSides(t *testing.T) {
	windows := trainingWindows(t, 1, 5000)
	p := queries.DefaultParams()
	q := queries.SlowlorisAttacks(p)
	q.ID = 8
	tr, err := Train([]*query.Query{q}, []int{8, 16}, windows)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanQueries(tr, []*query.Query{q}, pisa.DefaultConfig(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	qp := plan.Queries[0]
	for _, lp := range qp.Levels {
		if lp.Right == nil {
			t.Fatal("join query level missing right side")
		}
		// Both sides share the level ladder by construction; the augmented
		// query must carry the same dyn table name on both sides when
		// refined.
		if lp.Prev != LevelStar {
			l := lp.Aug.Left.Ops[0]
			r := lp.Aug.Right.Ops[0]
			if l.DynFilterTable == "" || l.DynFilterTable != r.DynFilterTable {
				t.Errorf("level %d: dyn tables %q vs %q", lp.Level, l.DynFilterTable, r.DynFilterTable)
			}
		}
	}
}

func TestTrainRejectsEmptyInput(t *testing.T) {
	if _, err := Train(nil, []int{8}, []Frames{{}}); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := Train([]*query.Query{q1(1)}, []int{8}, nil); err == nil {
		t.Error("no windows accepted")
	}
}
