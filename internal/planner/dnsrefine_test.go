package planner

import (
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// dnsCountQuery counts DNS queries per query name — the paper's example of
// a non-IP refinement key: dns.rr.name refines by label depth, from the
// root (level 1 = TLD) down to the fully qualified name.
func dnsCountQuery(th uint64) *query.Query {
	q := query.NewBuilder("dns_name_count", time.Second).
		Filter(query.Eq(fields.DNSQR, 0)).
		Map(query.F(fields.DNSQName), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DNSQName).
		Filter(query.Gt(fields.AggVal, th)).
		MustBuild()
	q.ID = 7
	return q
}

func TestDNSNameIsRefinementKey(t *testing.T) {
	q := dnsCountQuery(10)
	key, ok := query.QueryRefinementKey(q)
	if !ok {
		t.Fatal("DNS-name query not refinable")
	}
	if key.Field != fields.DNSQName || key.MaxLevel != 8 {
		t.Fatalf("key = %+v", key)
	}
}

func TestDNSNameAugmentationMasksLabels(t *testing.T) {
	q := dnsCountQuery(10)
	key, _ := query.QueryRefinementKey(q)
	aug := AugmentQuery(q, key, 2, 3, Thresholds{})

	// Build a DNS query packet and push it through the augmented pipeline
	// with the dynamic filter loaded for its 2-label suffix.
	spec := packet.FrameSpec{SrcIP: 1, DstIP: 2, SrcPort: 4000}
	frame := packet.BuildDNSQuery(nil, &spec, 9, "chunk1.exfil.bad.example", packet.DNSTypeTXT)
	parser := packet.NewParser(packet.ParserOptions{DecodeDNS: true})
	var pkt packet.Packet
	if err := parser.Parse(frame, &pkt); err != nil {
		t.Fatal(err)
	}

	dyn := stream.NewDynTables()
	prof := stream.NewProfiler(aug.Left.Ops, dyn)
	// Without the gate nothing passes.
	prof.Feed(&pkt)
	if out := prof.EndWindow(); len(out.Outputs) != 0 {
		t.Fatalf("ungated output = %v", out.Outputs)
	}
	// Gate on the /2 suffix ("bad.example"): now the masked /3 name counts.
	dyn.Replace(DynTableName(7, 3), []string{
		stream.DynKeyFromValue(fields.DNSQName, tuple.Str("bad.example"), 2),
	})
	for i := 0; i < 12; i++ {
		prof.Feed(&pkt)
	}
	out := prof.EndWindow()
	if len(out.Outputs) != 1 {
		t.Fatalf("gated outputs = %v", out.Outputs)
	}
	got := out.Outputs[0]
	if got[0].S != "exfil.bad.example" {
		t.Errorf("masked name = %q, want the 3-label suffix", got[0].S)
	}
	if got[1].U != 12 {
		t.Errorf("count = %d", got[1].U)
	}
}

// TestDNSNameQueryStaysOffSwitch checks that the compiler never claims the
// switch can handle string-keyed state: the planner must schedule the whole
// pipeline (including its dyn filters) at the stream processor.
func TestDNSNameQueryStaysOffSwitch(t *testing.T) {
	q := dnsCountQuery(10)
	if n := query.SwitchPrefixLen(q.Left); n != 1 {
		// Only the QR-bit filter could even theoretically run on a switch —
		// and only if the parser extracted it, which DNS fields forbid.
		t.Logf("switch prefix = %d ops", n)
	}
	for i := range q.Left.Ops {
		sup := query.OpSwitchSupport(&q.Left.Ops[i])
		if q.Left.Ops[i].Kind == query.OpMap && sup.OK {
			t.Error("DNS-name map marked switch-supported")
		}
	}
}
