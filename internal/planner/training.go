package planner

import (
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// Frames is one training window's raw packets.
type Frames [][]byte

// SideCost holds the workload estimates for one side of one refinement
// edge: the paper's N_{q,t} and B_{q,t} inputs (Table 1), as medians across
// training windows.
type SideCost struct {
	// Pipe is the compiled augmented pipeline the costs refer to.
	Pipe compile.Pipeline
	// NAtCut[i] is the tuples-per-window the stream processor would receive
	// if the pipeline were cut after ValidPartitionPoints()[i] tables.
	NAtCut []uint64
	// KeysAt[t] is the distinct-key count of stateful table t.
	KeysAt map[int]uint64
	// Work is the median per-window op-level work sum: tuples entering each
	// pipeline op, added up. It feeds the runtime's shard balancer through
	// InstancePlan.EstWork.
	Work uint64
}

// EdgeProfile is the cost of running a query at level Level gated by the
// keys that satisfied level Prev (Figure 5's rows).
type EdgeProfile struct {
	Prev, Level int
	Left        *SideCost
	Right       *SideCost // nil without a join
}

// QueryTraining aggregates everything the planner learned about one query.
type QueryTraining struct {
	Query     *query.Query
	Key       query.RefinementKey
	Refinable bool
	// Levels are the refinement levels considered, coarse to fine, ending
	// at the key's finest level. For unrefinable queries it is [0].
	Levels []int
	// Th[r] carries the relaxed thresholds for level r.
	Th map[int]Thresholds
	// Satisfy[r] is the union (across windows) of keys satisfying the query
	// at level r, in dynamic-table encoding.
	Satisfy map[int][]string
	// Edges[{prev, level}] is the edge cost profile.
	Edges map[[2]int]*EdgeProfile
}

// AugmentedAt builds the query instance for an edge, with trained
// thresholds applied.
func (qt *QueryTraining) AugmentedAt(prev, level int) *query.Query {
	if !qt.Refinable {
		return qt.Query.Clone()
	}
	return AugmentQuery(qt.Query, qt.Key, prev, level, qt.Th[level])
}

// TrainingResult maps query IDs to their training outcomes.
type TrainingResult struct {
	PerQuery map[uint16]*QueryTraining
	// WindowPackets is the median packet count per training window — the
	// all-packets baseline N for a cut of zero.
	WindowPackets uint64
}

// Train profiles the query set over the training windows and derives
// refinement levels, relaxed thresholds, satisfying-key sets, and edge
// costs. levels is the planner's level menu (coarse to fine, e.g.
// {8,16,24,32}); the finest level of each query's key is appended
// automatically when missing.
func Train(queries []*query.Query, levels []int, windows []Frames) (*TrainingResult, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("planner: no training windows")
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("planner: no queries")
	}
	res := &TrainingResult{PerQuery: make(map[uint16]*QueryTraining)}

	// Parse every window once; packets retain their frames.
	parsed := make([][]packet.Packet, len(windows))
	counts := make([]uint64, len(windows))
	parser := packet.NewParser(packet.ParserOptions{DecodeDNS: true})
	for w, frames := range windows {
		pkts := make([]packet.Packet, 0, len(frames))
		for _, f := range frames {
			var pkt packet.Packet
			if err := parser.Parse(f, &pkt); err == nil {
				// Deep-copy DNS scratch state, which the parser reuses.
				pkt.DNS = *cloneDNS(&pkt.DNS)
				pkts = append(pkts, pkt)
			}
		}
		parsed[w] = pkts
		counts[w] = uint64(len(frames))
	}
	res.WindowPackets = medianU64(counts)

	for _, q := range queries {
		qt, err := trainQuery(q, levels, parsed)
		if err != nil {
			return nil, fmt.Errorf("planner: training %q: %w", q.Name, err)
		}
		res.PerQuery[q.ID] = qt
	}
	return res, nil
}

func cloneDNS(d *packet.DNS) *packet.DNS {
	c := *d
	c.Questions = append([]packet.DNSQuestion(nil), d.Questions...)
	c.Answers = append([]packet.DNSRecord(nil), d.Answers...)
	return &c
}

func trainQuery(q *query.Query, menu []int, windows [][]packet.Packet) (*QueryTraining, error) {
	qt := &QueryTraining{Query: q, Th: make(map[int]Thresholds),
		Satisfy: make(map[int][]string), Edges: make(map[[2]int]*EdgeProfile)}
	key, ok := query.QueryRefinementKey(q)
	qt.Key, qt.Refinable = key, ok

	if !qt.Refinable {
		qt.Levels = []int{0}
		edge, err := profileEdge(qt, LevelStar, 0, nil, windows)
		if err != nil {
			return nil, err
		}
		qt.Edges[[2]int{LevelStar, 0}] = edge
		return qt, nil
	}

	// Build the level ladder: menu levels below the key's max, plus the
	// finest level itself.
	for _, l := range menu {
		if l > 0 && l < key.MaxLevel {
			qt.Levels = append(qt.Levels, l)
		}
	}
	qt.Levels = append(qt.Levels, key.MaxLevel)
	sort.Ints(qt.Levels)

	// Phase A: relaxed thresholds. The finest level keeps the original
	// thresholds; coarser levels relax to the minimum aggregate observed
	// (across windows) over prefixes of finest-satisfying keys.
	finest := key.MaxLevel
	qt.Th[finest] = Thresholds{}
	finestKeys := make(map[string]struct{})
	for _, pkts := range windows {
		lk, rk := satisfyingKeys(qt, finest, Thresholds{}, nil, pkts)
		for k := range intersectKeys(lk, rk) {
			finestKeys[k] = struct{}{}
		}
	}
	for _, r := range qt.Levels[:len(qt.Levels)-1] {
		prefixes := prefixSet(qt.Key, finestKeys, r)
		var thL, thR *uint64
		for _, pkts := range windows {
			l, rr := observeThresholds(qt, r, prefixes, pkts)
			thL = minPtr(thL, l)
			thR = minPtr(thR, rr)
		}
		qt.Th[r] = Thresholds{Left: thL, Right: thR}
	}

	// Phase B1: satisfying sets per level with trained thresholds.
	for _, r := range qt.Levels {
		set := make(map[string]struct{})
		for _, pkts := range windows {
			lk, rk := satisfyingKeys(qt, r, qt.Th[r], nil, pkts)
			for k := range intersectKeys(lk, rk) {
				set[k] = struct{}{}
			}
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		qt.Satisfy[r] = keys
	}

	// Phase B2: edge costs. Edges run from * or any coarser level to every
	// finer level.
	for i, r := range qt.Levels {
		edge, err := profileEdge(qt, LevelStar, r, nil, windows)
		if err != nil {
			return nil, err
		}
		qt.Edges[[2]int{LevelStar, r}] = edge
		for j := 0; j < i; j++ {
			prev := qt.Levels[j]
			gate := qt.Satisfy[prev]
			edge, err := profileEdge(qt, prev, r, gate, windows)
			if err != nil {
				return nil, err
			}
			qt.Edges[[2]int{prev, r}] = edge
		}
	}
	return qt, nil
}

// satisfyingKeys runs both sides of the query at a level and returns the
// refinement-key sets (dyn-table encoding) passing each side's final
// filter. A nil set means "the side has no key column" (e.g. a packet-phase
// left pipeline) and should be ignored by the caller.
func satisfyingKeys(qt *QueryTraining, level int, th Thresholds, gate []string, pkts []packet.Packet) (left, right map[string]struct{}) {
	aug := AugmentQuery(qt.Query, qt.Key, LevelStar, level, th)
	left = runForKeys(qt, aug.Left, level, gate, pkts)
	if aug.HasJoin() {
		right = runForKeys(qt, aug.Right, level, gate, pkts)
	}
	return left, right
}

// runForKeys executes one pipeline over the window and collects the masked
// refinement keys of its outputs.
func runForKeys(qt *QueryTraining, p *query.Pipeline, level int, gate []string, pkts []packet.Packet) map[string]struct{} {
	col := keyColumnOf(p, qt.Key.Field)
	if col < 0 {
		return nil
	}
	prof := stream.NewProfiler(p.Ops, nil)
	if gate != nil {
		prof.Dyn().Replace(DynTableName(qt.Query.ID, level), gate)
	}
	for i := range pkts {
		prof.Feed(&pkts[i])
	}
	out := prof.EndWindow()
	set := make(map[string]struct{}, len(out.Outputs))
	for _, t := range out.Outputs {
		set[stream.DynKeyFromValue(qt.Key.Field, t[col], level)] = struct{}{}
	}
	return set
}

// observeThresholds runs both sides at a level with final filters disabled
// and returns the minimum aggregate observed over satisfying prefixes.
func observeThresholds(qt *QueryTraining, level int, prefixes map[string]struct{}, pkts []packet.Packet) (left, right *uint64) {
	aug := AugmentQuery(qt.Query, qt.Key, LevelStar, level, Thresholds{})
	left = observeSide(qt, aug.Left, level, prefixes, pkts)
	if aug.HasJoin() {
		right = observeSide(qt, aug.Right, level, prefixes, pkts)
	}
	return left, right
}

func observeSide(qt *QueryTraining, p *query.Pipeline, level int, prefixes map[string]struct{}, pkts []packet.Packet) *uint64 {
	thCol := thresholdColumn(p)
	keyCol := keyColumnOf(p, qt.Key.Field)
	if thCol < 0 || keyCol < 0 {
		return nil
	}
	open := disableFinalFilter(p)
	prof := stream.NewProfiler(open.Ops, nil)
	for i := range pkts {
		prof.Feed(&pkts[i])
	}
	out := prof.EndWindow()
	var min *uint64
	for _, t := range out.Outputs {
		k := stream.DynKeyFromValue(qt.Key.Field, t[keyCol], level)
		if _, ok := prefixes[k]; !ok {
			continue
		}
		v := t[thCol].U
		if min == nil || v < *min {
			vv := v
			min = &vv
		}
	}
	return min
}

// profileEdge measures the per-cut N and per-table key counts for both
// sides of an edge, gated by the previous level's satisfying keys.
func profileEdge(qt *QueryTraining, prev, level int, gate []string, windows [][]packet.Packet) (*EdgeProfile, error) {
	var aug *query.Query
	if qt.Refinable {
		aug = AugmentQuery(qt.Query, qt.Key, prev, level, qt.Th[level])
	} else {
		aug = qt.Query.Clone()
	}
	edge := &EdgeProfile{Prev: prev, Level: level}
	var err error
	edge.Left, err = profileSide(qt, aug.Left, level, gate, windows)
	if err != nil {
		return nil, err
	}
	if aug.HasJoin() {
		edge.Right, err = profileSide(qt, aug.Right, level, gate, windows)
		if err != nil {
			return nil, err
		}
	}
	return edge, nil
}

func profileSide(qt *QueryTraining, p *query.Pipeline, level int, gate []string, windows [][]packet.Packet) (*SideCost, error) {
	pipe := compile.CompilePipeline(p.Ops)
	cuts := pipe.ValidPartitionPoints()
	perCut := make([][]uint64, len(cuts))
	keysPerTable := make(map[int][]uint64)
	var works []uint64

	for _, pkts := range windows {
		prof := stream.NewProfiler(p.Ops, nil)
		if gate != nil {
			prof.Dyn().Replace(DynTableName(qt.Query.ID, level), gate)
		}
		for i := range pkts {
			prof.Feed(&pkts[i])
		}
		out := prof.EndWindow()
		for ci, cut := range cuts {
			perCut[ci] = append(perCut[ci], nForCut(&pipe, cut, &out, uint64(len(pkts))))
		}
		for ti := range pipe.Tables {
			if pipe.Tables[ti].Stateful {
				keysPerTable[ti] = append(keysPerTable[ti], out.Keys[pipe.Tables[ti].OpIdx])
			}
		}
		// Op-level work: op 0 sees the whole window, op j the records op
		// j-1 emitted. With the gate applied this captures filter
		// selectivity exactly, which cut-level counts cannot. Stateful ops
		// (reduce/distinct key-value updates) cost several times a filter
		// probe per record, so they weigh more.
		var work uint64
		for j := range p.Ops {
			entering := uint64(len(pkts))
			if j > 0 {
				entering = out.OutAfter[j-1]
			}
			if p.Ops[j].Stateful() {
				entering *= 4
			}
			work += entering
		}
		works = append(works, work)
	}

	sc := &SideCost{Pipe: pipe, NAtCut: make([]uint64, len(cuts)), KeysAt: make(map[int]uint64)}
	for ci := range cuts {
		sc.NAtCut[ci] = medianU64(perCut[ci])
	}
	for ti, ks := range keysPerTable {
		sc.KeysAt[ti] = medianU64(ks)
	}
	sc.Work = medianU64(works)
	return sc, nil
}

// nForCut maps a cut (table count) to the stream-processor tuple count: the
// whole window's packets for cut zero, otherwise the emission count of the
// last switch table's final op.
func nForCut(pipe *compile.Pipeline, cut int, prof *stream.PipelineProfile, windowPackets uint64) uint64 {
	if cut == 0 {
		return windowPackets
	}
	last := pipe.Tables[cut-1].LastOp()
	return prof.OutAfter[last]
}

// prefixSet masks a key set to a coarser level. Keys are stored in dyn
// encoding, so they are decoded, re-masked, and re-encoded.
func prefixSet(key query.RefinementKey, keys map[string]struct{}, level int) map[string]struct{} {
	out := make(map[string]struct{}, len(keys))
	for k := range keys {
		vals, err := tuple.DecodeKey(k)
		if err != nil || len(vals) != 1 {
			continue
		}
		out[stream.DynKeyFromValue(key.Field, vals[0], level)] = struct{}{}
	}
	return out
}

// intersectKeys intersects two optional key sets: a nil set means "no
// signal from this side" and the other side wins.
func intersectKeys(a, b map[string]struct{}) map[string]struct{} {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(map[string]struct{})
	for k := range a {
		if _, ok := b[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

func minPtr(cur *uint64, v *uint64) *uint64 {
	if v == nil {
		return cur
	}
	if cur == nil || *v < *cur {
		return v
	}
	return cur
}

func medianU64(xs []uint64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
