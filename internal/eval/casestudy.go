package eval

import (
	"fmt"
	"time"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// CaseStudyResult carries the Figure 9 timeline: per-window packets at the
// switch versus tuples reported to the stream processor, plus the two
// detection events.
type CaseStudyResult struct {
	Table *Table
	// VictimIdentifiedWindow is the first window whose refinement output
	// contains the victim (the paper's "victim identified" marker).
	VictimIdentifiedWindow int
	// AttackConfirmedWindow is the first window whose final result reports
	// the keyword detection ("attack confirmed").
	AttackConfirmedWindow int
	// Victim echoes the ground-truth target.
	Victim uint32
}

// CaseStudy reproduces the Tofino case study (Figure 9): a Zorro telnet
// brute-force attack starts mid-trace; Sonata identifies the victim via
// refinement within a window or two while reporting only a handful of
// tuples, then confirms the attack when the "zorro" keyword appears.
func CaseStudy(scale Scale) (*CaseStudyResult, error) {
	cfg := trace.DefaultConfig()
	cfg.Seed = scale.Seed
	cfg.PacketsPerWindow = scale.PacketsPerWindow
	cfg.Windows = scale.Windows + 3 // room for the attack phases
	cfg.Hosts = scale.Hosts
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	victim := trace.StandardVictim
	attacker := packet.IPv4Addr(10, 66, 0, 1)
	w := g.Config().Window
	attackStart := time.Duration(scale.TrainWindows+1) * w // after training + 1 quiet window
	// The shell phase lands several windows after onset so the timeline
	// separates "victim identified" (refinement) from "attack confirmed"
	// (payload keyword), as in the paper's Figure 9.
	shellAt := attackStart + 3*w + w/2
	zorro := trace.NewZorro(attacker, victim, scale.PacketsPerWindow/12, attackStart, g.Duration(), shellAt)
	g.AddAttack(zorro)

	p := ScaledParams(scale)
	q := queries.ZorroAttack(p)
	q.ID = 10

	wl := &Workload{Gen: g, TrainWindows: scale.TrainWindows}
	// Train on windows that include attack-free traffic only; thresholds
	// for the telnet sub-query then come from the query parameters (no
	// satisfying keys in training keeps originals).
	tr, err := planner.Train([]*query.Query{q}, []int{16, 24}, wl.TrainingFrames())
	if err != nil {
		return nil, err
	}
	opts := planner.DefaultOptions()
	plan, err := planner.PlanQueries(tr, []*query.Query{q}, pisa.DefaultConfig(), opts)
	if err != nil {
		return nil, err
	}
	rt, err := runtime.NewWithOptions(plan, pisa.DefaultConfig(),
		runtime.Options{Workers: DefaultWorkers, BatchSize: DefaultBatchSize})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	if DefaultTelemetry != nil || DefaultTracez != nil {
		rt.Instrument(DefaultTelemetry, DefaultTracez)
	}
	if DefaultFlightRec != nil {
		rt.AttachFlightRecorder(DefaultFlightRec)
	}
	if DefaultResultSink != nil {
		rt.SetResultSink(DefaultResultSink)
	}

	res := &CaseStudyResult{Victim: victim, VictimIdentifiedWindow: -1, AttackConfirmedWindow: -1}
	res.Table = &Table{ID: "fig9", Title: "Zorro case study timeline",
		Header: []string{"window", "t-start", "pkts@switch", "tuples@SP", "victim-identified", "attack-confirmed"}}

	for wi := scale.TrainWindows; wi < g.Windows(); wi++ {
		rep := rt.ProcessWindow(wl.Frames(wi))
		// "Victim identified": the telnet-volume sub-query (the refinement
		// gate) reports the victim's address, or a prefix of it at a coarse
		// level — the moment the stream processor starts watching the
		// victim's payloads. "Attack confirmed": the finest final result
		// (the keyword condition) fires.
		victimSeen, confirmed := false, false
		for _, r := range rep.AllResults {
			prefix := uint64(fields.TruncateU64(fields.DstIP, uint64(victim), int(r.Level)))
			for _, t := range r.RightOutputs {
				if len(t) > 0 && t[0].U == prefix {
					victimSeen = true
				}
			}
		}
		for _, r := range rep.Results {
			for _, t := range r.Tuples {
				if len(t) > 0 && t[0].U == uint64(victim) {
					confirmed = true
				}
			}
		}
		if victimSeen && res.VictimIdentifiedWindow < 0 {
			res.VictimIdentifiedWindow = wi
		}
		if confirmed && res.AttackConfirmedWindow < 0 {
			res.AttackConfirmedWindow = wi
		}
		res.Table.AddRow(wi, time.Duration(wi)*w,
			rep.Switch.PacketsIn, rep.TuplesToSP,
			mark(victimSeen), mark(confirmed))
	}
	res.Table.Notes = append(res.Table.Notes,
		fmt.Sprintf("attack starts at %v; shell (zorro keyword) at %v; victim %s",
			attackStart, shellAt, packet.IPv4String(victim)))
	return res, nil
}

func mark(b bool) string {
	if b {
		return "yes"
	}
	return ""
}
