package eval

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
)

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTable3LoCShape(t *testing.T) {
	tab := Table3(queries.DefaultParams(), []int{8, 16, 24})
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		sonata, _ := strconv.Atoi(row[2])
		p4, _ := strconv.Atoi(row[3])
		spark, _ := strconv.Atoi(row[4])
		// The paper's qualitative claim: Sonata queries are under 20 lines,
		// far below the generated target code combined.
		if sonata >= 20 {
			t.Errorf("%s: sonata LoC = %d, want < 20", row[1], sonata)
		}
		if p4 < 5*sonata {
			t.Errorf("%s: p4 LoC = %d vs sonata %d: expected order-of-magnitude gap", row[1], p4, sonata)
		}
		if spark <= 0 {
			t.Errorf("%s: spark LoC = %d", row[1], spark)
		}
	}
}

func TestFig3Monotonicity(t *testing.T) {
	tab := Fig3()
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// Within a row, more chains means fewer collisions; down a column, more
	// keys means more collisions.
	for _, row := range tab.Rows {
		d1, d4 := parse(row[1]), parse(row[4])
		if d1 < d4 {
			t.Errorf("k/n=%s: d=1 rate %v < d=4 rate %v", row[0], d1, d4)
		}
	}
	first := parse(tab.Rows[0][1])
	last := parse(tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Errorf("collision rate did not grow with load: %v -> %v", first, last)
	}
}

func TestFig5TransitionCosts(t *testing.T) {
	w := smallWorkload(t)
	tab, err := Fig5(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no transitions")
	}
	var starCoarseN1, gatedN1 float64
	for _, row := range tab.Rows {
		n1, _ := strconv.ParseFloat(row[1], 64)
		n2, _ := strconv.ParseFloat(row[2], 64)
		if n2 > n1 {
			t.Errorf("%s: N2 (%v) > N1 (%v); reduce must not increase tuples", row[0], n2, n1)
		}
		if strings.HasPrefix(row[0], "*->8") {
			starCoarseN1 = n1
		}
		if strings.HasPrefix(row[0], "8->32") {
			gatedN1 = n1
		}
	}
	if gatedN1 == 0 || starCoarseN1 == 0 {
		t.Fatal("expected transitions missing")
	}
}

func TestRunModeOrderingOnWorkload(t *testing.T) {
	w := smallWorkload(t)
	p := ScaledParams(SmallScale())
	qs := queries.TopEight(p)[:2]
	exp := NewExperiment(w, qs)
	cfg := pisa.DefaultConfig()
	allSP, err := exp.Run(cfg, planner.ModeAllSP)
	if err != nil {
		t.Fatal(err)
	}
	sonata, err := exp.Run(cfg, planner.ModeSonata)
	if err != nil {
		t.Fatal(err)
	}
	if sonata.MeanTuples() >= allSP.MeanTuples() {
		t.Errorf("Sonata %v !< All-SP %v", sonata.MeanTuples(), allSP.MeanTuples())
	}
	if allSP.MeanTuples() < float64(SmallScale().PacketsPerWindow) {
		t.Errorf("All-SP mean %v below window packet count", allSP.MeanTuples())
	}
}

func TestCaseStudyDetectsZorro(t *testing.T) {
	res, err := CaseStudy(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimIdentifiedWindow < 0 {
		t.Fatal("victim never identified")
	}
	if res.AttackConfirmedWindow < 0 {
		t.Fatal("attack never confirmed")
	}
	if res.AttackConfirmedWindow < res.VictimIdentifiedWindow {
		t.Errorf("confirmed (%d) before identified (%d)",
			res.AttackConfirmedWindow, res.VictimIdentifiedWindow)
	}
	if len(res.Table.Rows) == 0 {
		t.Error("empty timeline")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "t", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 0.125)
	text := tab.Render()
	for _, frag := range []string{"demo", "a", "2.5", "0.125"} {
		if !strings.Contains(text, frag) {
			t.Errorf("render missing %q:\n%s", frag, text)
		}
	}
	tsv := tab.TSV()
	if !strings.HasPrefix(tsv, "a\tb\n") {
		t.Errorf("tsv = %q", tsv)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") {
		t.Errorf("markdown = %q", md)
	}
}

func TestScaledParamsScaleWithWorkload(t *testing.T) {
	small := ScaledParams(Scale{PacketsPerWindow: 10_000})
	big := ScaledParams(Scale{PacketsPerWindow: 1_000_000})
	if big.NewTCPThresh <= small.NewTCPThresh {
		t.Errorf("thresholds did not scale: %d vs %d", big.NewTCPThresh, small.NewTCPThresh)
	}
	if small.NewTCPThresh < 8 {
		t.Errorf("threshold floor broken: %d", small.NewTCPThresh)
	}
}

func TestWorkloadSplitValidation(t *testing.T) {
	s := SmallScale()
	s.TrainWindows = s.Windows
	if _, err := NewWorkload(s); err == nil {
		t.Error("train == total windows accepted")
	}
}
