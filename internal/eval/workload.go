package eval

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/trace"
)

// Workload couples a trace generator with a train/eval split. Window
// frames are generated once and cached so experiment runs share windows
// across goroutines; Preload fills the cache in parallel up front.
type Workload struct {
	Gen          *trace.Generator
	TrainWindows int

	mu    sync.Mutex
	cache map[int][][]byte
}

// Scale presets the workload size. The paper replays 20 Mpps against a
// 3-second window; the simulator scales that down while preserving the
// needle-to-haystack ratios that drive the planner.
type Scale struct {
	PacketsPerWindow int
	Windows          int
	TrainWindows     int
	Hosts            int
	Seed             int64
}

// SmallScale keeps unit tests and benchmarks fast.
func SmallScale() Scale {
	return Scale{PacketsPerWindow: 6_000, Windows: 5, TrainWindows: 2, Hosts: 600, Seed: 1}
}

// MediumScale is the default for cmd/eval.
func MediumScale() Scale {
	return Scale{PacketsPerWindow: 100_000, Windows: 6, TrainWindows: 2, Hosts: 6_000, Seed: 1}
}

// LargeScale approaches the paper's per-window volumes (use with patience).
func LargeScale() Scale {
	return Scale{PacketsPerWindow: 1_000_000, Windows: 6, TrainWindows: 2, Hosts: 20_000, Seed: 1}
}

// NewWorkload builds the standard evaluation workload: background traffic
// plus one instance of every attack class (the needles every query hunts).
func NewWorkload(s Scale) (*Workload, error) {
	cfg := trace.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.PacketsPerWindow = s.PacketsPerWindow
	cfg.Windows = s.Windows
	cfg.Hosts = s.Hosts
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	trace.StandardAttackSuite(g)
	if s.TrainWindows <= 0 || s.TrainWindows >= s.Windows {
		return nil, fmt.Errorf("eval: train windows %d must fall inside trace (%d windows)", s.TrainWindows, s.Windows)
	}
	return &Workload{Gen: g, TrainWindows: s.TrainWindows}, nil
}

// TrainingFrames extracts the training split.
func (w *Workload) TrainingFrames() []planner.Frames {
	out := make([]planner.Frames, w.TrainWindows)
	for i := 0; i < w.TrainWindows; i++ {
		out[i] = planner.Frames(w.Frames(i))
	}
	return out
}

// EvalWindowIndices lists the replay windows.
func (w *Workload) EvalWindowIndices() []int {
	var out []int
	for i := w.TrainWindows; i < w.Gen.Windows(); i++ {
		out = append(out, i)
	}
	return out
}

// Frames materializes one window's frames (cached, safe for concurrent
// use).
func (w *Workload) Frames(i int) [][]byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cache == nil {
		w.cache = make(map[int][][]byte)
	}
	if f, ok := w.cache[i]; ok {
		return f
	}
	f := framesOf(w.Gen.WindowRecords(i))
	w.cache[i] = f
	return f
}

// Preload materializes every window's frames using up to workers
// goroutines. Window generation is pure per window, so a parallel preload
// fills the cache with exactly the frames lazy generation would produce.
func (w *Workload) Preload(workers int) {
	w.Gen.GenerateWindows(workers, func(win trace.Window) {
		f := framesOf(win)
		w.mu.Lock()
		if w.cache == nil {
			w.cache = make(map[int][][]byte, w.Gen.Windows())
		}
		if _, ok := w.cache[win.Index]; !ok {
			w.cache[win.Index] = f
		}
		w.mu.Unlock()
	})
}

// Window returns the configured window duration.
func (w *Workload) Window() time.Duration { return w.Gen.Config().Window }

func framesOf(win trace.Window) [][]byte {
	frames := make([][]byte, len(win.Records))
	for i, r := range win.Records {
		frames[i] = r.Data
	}
	return frames
}

// ScaledParams tunes query thresholds to the workload scale so the injected
// attacks satisfy their queries while background traffic stays below
// threshold. Thresholds grow with the per-window packet budget in
// proportion to the attack rates of trace.StandardAttackSuite.
func ScaledParams(s Scale) queries.Params {
	p := queries.DefaultParams()
	f := func(base int) uint64 {
		v := base * s.PacketsPerWindow / 100_000
		if v < 8 {
			v = 8
		}
		return uint64(v)
	}
	p.NewTCPThresh = f(800)
	// The SSH-brute signature counts distinct (source, size) pairs, which
	// scales with the attacker population (fixed by the suite), not volume.
	p.SSHBruteThresh = 30
	p.SpreaderThresh = f(400)
	p.PortScanThresh = f(400)
	p.DDoSThresh = f(700)
	p.SYNFloodThresh = f(800)
	p.IncompleteThresh = f(400)
	p.SlowlorisBytesThresh = f(12_000)
	p.SlowlorisRatioThresh = 5
	p.DNSTunnelThresh = f(200)
	p.DNSReflectThresh = f(700)
	p.ZorroTelnetThresh = f(100)
	return p
}
