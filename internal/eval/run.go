package eval

import (
	"time"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/telemetry"
)

// DefaultTelemetry, when non-nil, is adopted by every experiment built
// with NewExperiment (and by CaseStudy): each deployed runtime registers
// its metrics there. cmd/eval points this at the -debug-addr registry so
// the figure harness is observable while it runs.
var DefaultTelemetry *telemetry.Registry

// RunResult summarizes one (query set, plan mode, switch config) execution
// over the workload's evaluation windows.
type RunResult struct {
	Mode planner.Mode
	// PerWindow is the stream-processor tuple count per evaluation window —
	// the paper's y-axis.
	PerWindow []uint64
	// Detected collects every key (first result column) reported at the
	// finest level across windows.
	Detected map[uint64]bool
	// Delay is the maximum detection delay across queries, in windows.
	Delay int
	// Collisions counts register overflows across the run.
	Collisions uint64
	// FilterUpdates / UpdateTime accumulate the dynamic-refinement overhead.
	FilterUpdates int
	UpdateTime    time.Duration
	// PlannedN is the planner's trained estimate, for planner-accuracy
	// checks.
	PlannedN uint64
}

// MeanTuples averages the per-window load.
func (r *RunResult) MeanTuples() float64 {
	if len(r.PerWindow) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range r.PerWindow {
		sum += v
	}
	return float64(sum) / float64(len(r.PerWindow))
}

// MaxTuples returns the worst window.
func (r *RunResult) MaxTuples() uint64 {
	var max uint64
	for _, v := range r.PerWindow {
		if v > max {
			max = v
		}
	}
	return max
}

// Experiment caches training so multiple modes and switch configurations
// reuse it (training depends only on queries and traffic).
type Experiment struct {
	W       *Workload
	Queries []*query.Query
	Levels  []int
	// Telemetry, when set, instruments every runtime the experiment deploys
	// against this registry (cmd/eval's -debug-addr wires it).
	Telemetry *telemetry.Registry

	training *planner.TrainingResult
}

// NewExperiment prepares an experiment with the default level menu.
func NewExperiment(w *Workload, qs []*query.Query) *Experiment {
	return &Experiment{W: w, Queries: qs, Levels: []int{8, 16, 24},
		Telemetry: DefaultTelemetry}
}

// Training trains lazily and caches.
func (e *Experiment) Training() (*planner.TrainingResult, error) {
	if e.training != nil {
		return e.training, nil
	}
	tr, err := planner.Train(e.Queries, e.Levels, e.W.TrainingFrames())
	if err != nil {
		return nil, err
	}
	e.training = tr
	return tr, nil
}

// Run plans under the mode and replays the evaluation windows.
func (e *Experiment) Run(cfg pisa.Config, mode planner.Mode) (*RunResult, error) {
	tr, err := e.Training()
	if err != nil {
		return nil, err
	}
	opts := planner.DefaultOptions()
	opts.Mode = mode
	plan, err := planner.PlanQueries(tr, e.Queries, cfg, opts)
	if err != nil {
		return nil, err
	}
	rt, err := runtime.New(plan, cfg)
	if err != nil {
		return nil, err
	}
	if e.Telemetry != nil {
		rt.Instrument(e.Telemetry, nil)
	}
	res := &RunResult{Mode: mode, Detected: make(map[uint64]bool), PlannedN: plan.ExpectedN()}
	for _, qp := range plan.Queries {
		if d := qp.Delay(); d > res.Delay {
			res.Delay = d
		}
	}
	for _, wi := range e.W.EvalWindowIndices() {
		rep := rt.ProcessWindow(e.W.Frames(wi))
		res.PerWindow = append(res.PerWindow, rep.TuplesToSP)
		res.Collisions += rep.Switch.Collisions
		res.FilterUpdates += rep.FilterUpdates
		res.UpdateTime += rep.UpdateDuration
		for _, r := range rep.Results {
			for _, t := range r.Tuples {
				if len(t) > 0 && !t[0].Str {
					res.Detected[t[0].U] = true
				}
			}
		}
	}
	return res, nil
}

// AllModes runs every Table 4 plan mode.
func (e *Experiment) AllModes(cfg pisa.Config) (map[planner.Mode]*RunResult, error) {
	out := make(map[planner.Mode]*RunResult)
	for _, mode := range Modes {
		res, err := e.Run(cfg, mode)
		if err != nil {
			return nil, err
		}
		out[mode] = res
	}
	return out, nil
}

// Modes lists the emulated systems in presentation order (Table 4).
var Modes = []planner.Mode{
	planner.ModeAllSP,
	planner.ModeFilterDP,
	planner.ModeMaxDP,
	planner.ModeFixRef,
	planner.ModeSonata,
}
