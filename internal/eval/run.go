package eval

import (
	"time"

	"repro/internal/flightrec"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/telemetry"
	"repro/internal/tracez"
)

// DefaultTelemetry, when non-nil, is adopted by every experiment built
// with NewExperiment (and by CaseStudy): each deployed runtime registers
// its metrics there. cmd/eval points this at the -debug-addr registry so
// the figure harness is observable while it runs.
var DefaultTelemetry *telemetry.Registry

// DefaultWorkers, when positive, sets the sharded-pipeline worker count for
// every experiment built with NewExperiment. Zero keeps the sequential
// pipeline. cmd/eval wires its -workers flag here.
var DefaultWorkers int

// DefaultBatchSize, when positive, sets the frame-batch granularity for
// every experiment built with NewExperiment (the sharded fan-out unit and
// the sequential view-buffer size). Zero keeps runtime.DefaultBatchSize.
// cmd/eval wires its -batch flag here.
var DefaultBatchSize int

// DefaultResultSink, when non-nil, receives every deployed runtime's
// window reports (cmd/eval's -subscribe-addr wires a subscription server
// here so collectors can watch an evaluation live).
var DefaultResultSink runtime.ResultSink

// DefaultFlightRec, when non-nil, is attached to every runtime an
// experiment deploys, so /debug/queries follows whichever run is live.
var DefaultFlightRec *flightrec.Recorder

// DefaultTracez, when non-nil, collects every deployed runtime's per-window
// span trees, so /debug/trace follows whichever run is live.
var DefaultTracez *tracez.Tracer

// RunResult summarizes one (query set, plan mode, switch config) execution
// over the workload's evaluation windows.
type RunResult struct {
	Mode planner.Mode
	// PerWindow is the stream-processor tuple count per evaluation window —
	// the paper's y-axis.
	PerWindow []uint64
	// Detected collects every key (first result column) reported at the
	// finest level across windows.
	Detected map[uint64]bool
	// Delay is the maximum detection delay across queries, in windows.
	Delay int
	// Collisions counts register overflows across the run.
	Collisions uint64
	// FilterUpdates / UpdateTime accumulate the dynamic-refinement overhead.
	FilterUpdates int
	UpdateTime    time.Duration
	// PlannedN is the planner's trained estimate, for planner-accuracy
	// checks.
	PlannedN uint64
	// ShardBusySum / ShardBusyMax accumulate per-window shard busy time:
	// total work across shards vs the critical path (each window's slowest
	// shard). Their ratio is the run's achievable parallel speedup,
	// independent of the host's core count; both stay zero on the
	// sequential pipeline.
	ShardBusySum time.Duration
	ShardBusyMax time.Duration
}

// SpeedupPotential is the achievable parallel speedup of a sharded run:
// total shard work divided by the critical path. It returns 1 for a
// sequential run.
func (r *RunResult) SpeedupPotential() float64 {
	if r.ShardBusyMax == 0 {
		return 1
	}
	return float64(r.ShardBusySum) / float64(r.ShardBusyMax)
}

// MeanTuples averages the per-window load.
func (r *RunResult) MeanTuples() float64 {
	if len(r.PerWindow) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range r.PerWindow {
		sum += v
	}
	return float64(sum) / float64(len(r.PerWindow))
}

// MaxTuples returns the worst window.
func (r *RunResult) MaxTuples() uint64 {
	var max uint64
	for _, v := range r.PerWindow {
		if v > max {
			max = v
		}
	}
	return max
}

// Experiment caches training so multiple modes and switch configurations
// reuse it (training depends only on queries and traffic).
type Experiment struct {
	W       *Workload
	Queries []*query.Query
	Levels  []int
	// Telemetry, when set, instruments every runtime the experiment deploys
	// against this registry (cmd/eval's -debug-addr wires it).
	Telemetry *telemetry.Registry
	// Workers shards the window pipeline across this many workers (0 or 1
	// runs the sequential pipeline). Results are identical either way; only
	// wall time changes.
	Workers int
	// BatchSize is the frame-batch granularity (0 means
	// runtime.DefaultBatchSize). Results are batch-size independent.
	BatchSize int
	// FlightRec, when set, is attached to every runtime the experiment
	// deploys (the recorder resets per deployment, so it tracks the live one).
	FlightRec *flightrec.Recorder
	// Sink, when set, receives every deployed runtime's window reports
	// (subscription fan-out rides along with the evaluation).
	Sink runtime.ResultSink
	// Tracez, when set, collects per-window span trees from every runtime
	// the experiment deploys (cmd/eval's -debug-addr wires it).
	Tracez *tracez.Tracer

	training *planner.TrainingResult
}

// NewExperiment prepares an experiment with the default level menu.
func NewExperiment(w *Workload, qs []*query.Query) *Experiment {
	return &Experiment{W: w, Queries: qs, Levels: []int{8, 16, 24},
		Telemetry: DefaultTelemetry, Workers: DefaultWorkers,
		BatchSize: DefaultBatchSize,
		FlightRec: DefaultFlightRec, Sink: DefaultResultSink,
		Tracez: DefaultTracez}
}

// Training trains lazily and caches.
func (e *Experiment) Training() (*planner.TrainingResult, error) {
	if e.training != nil {
		return e.training, nil
	}
	tr, err := planner.Train(e.Queries, e.Levels, e.W.TrainingFrames())
	if err != nil {
		return nil, err
	}
	e.training = tr
	return tr, nil
}

// Run plans under the mode and replays the evaluation windows.
func (e *Experiment) Run(cfg pisa.Config, mode planner.Mode) (*RunResult, error) {
	tr, err := e.Training()
	if err != nil {
		return nil, err
	}
	opts := planner.DefaultOptions()
	opts.Mode = mode
	plan, err := planner.PlanQueries(tr, e.Queries, cfg, opts)
	if err != nil {
		return nil, err
	}
	rt, err := runtime.NewWithOptions(plan, cfg,
		runtime.Options{Workers: e.Workers, BatchSize: e.BatchSize})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	if e.Telemetry != nil || e.Tracez != nil {
		rt.Instrument(e.Telemetry, e.Tracez)
	}
	if e.FlightRec != nil {
		rt.AttachFlightRecorder(e.FlightRec)
	}
	if e.Sink != nil {
		rt.SetResultSink(e.Sink)
	}
	res := &RunResult{Mode: mode, Detected: make(map[uint64]bool), PlannedN: plan.ExpectedN()}
	for _, qp := range plan.Queries {
		if d := qp.Delay(); d > res.Delay {
			res.Delay = d
		}
	}
	for _, wi := range e.W.EvalWindowIndices() {
		rep := rt.ProcessWindow(e.W.Frames(wi))
		res.PerWindow = append(res.PerWindow, rep.TuplesToSP)
		res.Collisions += rep.Switch.Collisions
		res.FilterUpdates += rep.FilterUpdates
		res.UpdateTime += rep.UpdateDuration
		var winMax time.Duration
		for _, busy := range rep.ShardBusy {
			res.ShardBusySum += busy
			if busy > winMax {
				winMax = busy
			}
		}
		res.ShardBusyMax += winMax
		for _, r := range rep.Results {
			for _, t := range r.Tuples {
				if len(t) > 0 && !t[0].Str {
					res.Detected[t[0].U] = true
				}
			}
		}
	}
	return res, nil
}

// AllModes runs every Table 4 plan mode.
func (e *Experiment) AllModes(cfg pisa.Config) (map[planner.Mode]*RunResult, error) {
	out := make(map[planner.Mode]*RunResult)
	for _, mode := range Modes {
		res, err := e.Run(cfg, mode)
		if err != nil {
			return nil, err
		}
		out[mode] = res
	}
	return out, nil
}

// Modes lists the emulated systems in presentation order (Table 4).
var Modes = []planner.Mode{
	planner.ModeAllSP,
	planner.ModeFilterDP,
	planner.ModeMaxDP,
	planner.ModeFixRef,
	planner.ModeSonata,
}
