// Package eval regenerates every table and figure of the paper's evaluation
// (Section 6) against the synthetic workload: the expressiveness table
// (Table 3), the collision-rate model (Figure 3), the refinement cost
// matrix (Figure 5), single- and multi-query stream-processor load
// (Figure 7), the switch-constraint sweeps (Figure 8), the dynamic
// refinement overhead micro-benchmark, and the Zorro case study (Figure 9).
package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one paper table or figure's data.
type Table struct {
	ID     string // e.g. "fig7a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render prints an aligned text table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// TSV renders tab-separated values for plotting.
func (t *Table) TSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, "\t"))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Markdown renders a GitHub-flavored markdown table (EXPERIMENTS.md embeds
// these).
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}
