package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/compile"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/tuple"
)

// Table3 reproduces the expressiveness comparison: lines of code per
// telemetry task in Sonata's surface syntax versus the generated P4 and
// Spark programs an operator would otherwise maintain by hand.
func Table3(p queries.Params, levels []int) *Table {
	t := &Table{ID: "table3", Title: "Implemented Sonata queries: lines of code",
		Header: []string{"#", "query", "sonata", "p4", "spark"}}
	for i, q := range queries.All(p) {
		p4 := generatedP4(q, levels)
		spark := compile.GenerateSpark(q, 0, 0)
		t.AddRow(i+1, q.Name, q.LinesOfCode(), compile.LinesOf(p4), compile.LinesOf(spark))
	}
	t.Notes = append(t.Notes,
		"P4 covers all refinement levels with maximal on-switch partitioning, as in the paper",
		"Spark covers the full query at the stream processor")
	return t
}

// generatedP4 renders the per-level switch programs for a query.
func generatedP4(q *query.Query, levels []int) string {
	key, refinable := query.QueryRefinementKey(q)
	insts := make([]compile.Instance, 0, len(levels)+1)
	build := func(prev, level int) {
		aug := q.Clone()
		if refinable {
			aug = planner.AugmentQuery(q, key, prev, level, planner.Thresholds{})
		}
		pipe := compile.CompilePipeline(aug.Left.Ops)
		pts := pipe.ValidPartitionPoints()
		insts = append(insts, compile.Instance{Level: uint8(level), Pipe: pipe, CutAt: pts[len(pts)-1]})
	}
	if !refinable {
		build(planner.LevelStar, 0)
	} else {
		prev := planner.LevelStar
		for _, l := range levels {
			if l >= key.MaxLevel {
				continue
			}
			build(prev, l)
			prev = l
		}
		build(prev, key.MaxLevel)
	}
	return compile.GenerateP4(q.Name, insts)
}

// Fig3 reproduces the collision-rate model: rate versus the number of
// incoming keys relative to the register size, for d = 1..4 chained
// registers.
func Fig3() *Table {
	t := &Table{ID: "fig3", Title: "Collision rate vs incoming keys (k/n), by register chains d",
		Header: []string{"k/n", "d=1", "d=2", "d=3", "d=4"}}
	const n = 4096
	ratios := []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}
	for _, ratio := range ratios {
		row := []any{ratio}
		for d := 1; d <= 4; d++ {
			bank := pisa.NewRegisterBank(n, d)
			r := rand.New(rand.NewSource(7))
			keys := int(ratio * float64(n))
			fails := 0
			for i := 0; i < keys; i++ {
				kv := []tuple.Value{tuple.U64(r.Uint64())}
				if _, _, ok := bank.Update(kv, []int{0}, 1, query.AggSum); !ok {
					fails++
				}
			}
			row = append(row, float64(fails)/float64(keys))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5 reproduces the refinement cost matrix for Query 1: for each
// transition r_i -> r_{i+1}, the packets sent to the stream processor when
// only the filter runs on the switch (N1), when the reduce also runs (N2),
// and the register state B required.
func Fig5(w *Workload, th uint64) (*Table, error) {
	p := ScaledParams(Scale{PacketsPerWindow: w.Gen.Config().PacketsPerWindow})
	if th > 0 {
		p.NewTCPThresh = th
	}
	q := queries.NewlyOpenedTCPConns(p)
	q.ID = 1
	tr, err := planner.Train([]*query.Query{q}, []int{8, 16}, w.TrainingFrames())
	if err != nil {
		return nil, err
	}
	qt := tr.PerQuery[1]
	t := &Table{ID: "fig5", Title: "Query 1 refinement transition costs (per window)",
		Header: []string{"transition", "N1 (filter only)", "N2 (reduce on switch)", "B (Kb)"}}
	label := func(prev int) string {
		if prev == planner.LevelStar {
			return "*"
		}
		return fmt.Sprint(prev)
	}
	for _, lv := range qt.Levels {
		for _, prev := range append([]int{planner.LevelStar}, qt.Levels...) {
			edge, ok := qt.Edges[[2]int{prev, lv}]
			if !ok || prev >= lv && prev != planner.LevelStar {
				continue
			}
			sc := edge.Left
			n1 := statelessN(sc)
			n2 := sc.NAtCut[len(sc.NAtCut)-1]
			bits := stateBits(sc)
			t.AddRow(fmt.Sprintf("%s->%d", label(prev), lv), n1, n2, float64(bits)/1024)
		}
	}
	return t, nil
}

// statelessN is N at the deepest stateless cut.
func statelessN(sc *planner.SideCost) uint64 {
	pts := sc.Pipe.ValidPartitionPoints()
	best := sc.NAtCut[0]
	for i, p := range pts {
		stateless := true
		for t := 0; t < p; t++ {
			if sc.Pipe.Tables[t].Stateful {
				stateless = false
				break
			}
		}
		if stateless {
			best = sc.NAtCut[i]
		}
	}
	return best
}

// stateBits sums the sized register footprint of the side's stateful
// tables.
func stateBits(sc *planner.SideCost) int64 {
	cfg := pisa.DefaultConfig()
	var bits int64
	for t := range sc.Pipe.Tables {
		tab := &sc.Pipe.Tables[t]
		if !tab.Stateful {
			continue
		}
		n := pisa.EntriesFor(sc.KeysAt[t])
		bits += pisa.RegisterBits(n, cfg.RegisterChains, tab.KeyBits, tab.ValBits)
	}
	return bits
}

// parallelFor runs worker(i) for i in [0, n) on up to a few goroutines —
// experiment runs are independent once the workload's frame cache is warm.
func parallelFor(n int, worker func(i int) error) error {
	procs := runtime.GOMAXPROCS(0)
	if procs > 4 {
		procs = 4
	}
	if procs > n {
		procs = n
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := worker(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// warm forces the workload's frame cache so parallel runs never touch the
// (stateful) generator concurrently.
func warm(w *Workload) {
	for i := 0; i < w.Gen.Windows(); i++ {
		w.Frames(i)
	}
}

// Fig7a reproduces single-query performance: tuples at the stream processor
// per window for each of the top-eight queries under each plan mode.
func Fig7a(w *Workload, cfg pisa.Config) (*Table, error) {
	p := ScaledParams(Scale{PacketsPerWindow: w.Gen.Config().PacketsPerWindow})
	t := &Table{ID: "fig7a", Title: "Single-query load on the stream processor (mean tuples/window)",
		Header: []string{"query", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata", "sonata-delay"}}
	warm(w)
	qs := queries.TopEight(p)
	rows := make([][]any, len(qs))
	err := parallelFor(len(qs), func(i int) error {
		q := qs[i]
		e := NewExperiment(w, []*query.Query{q})
		results, err := e.AllModes(cfg)
		if err != nil {
			return fmt.Errorf("fig7a %s: %w", q.Name, err)
		}
		rows[i] = []any{q.Name,
			results[planner.ModeAllSP].MeanTuples(),
			results[planner.ModeFilterDP].MeanTuples(),
			results[planner.ModeMaxDP].MeanTuples(),
			results[planner.ModeFixRef].MeanTuples(),
			results[planner.ModeSonata].MeanTuples(),
			results[planner.ModeSonata].Delay}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// Fig7b reproduces multi-query performance: load versus the number of
// concurrently running queries.
func Fig7b(w *Workload, cfg pisa.Config) (*Table, error) {
	p := ScaledParams(Scale{PacketsPerWindow: w.Gen.Config().PacketsPerWindow})
	all := queries.TopEight(p)
	t := &Table{ID: "fig7b", Title: "Multi-query load on the stream processor (mean tuples/window)",
		Header: []string{"queries", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata"}}
	warm(w)
	rows := make([][]any, len(all))
	err := parallelFor(len(all), func(i int) error {
		n := i + 1
		e := NewExperiment(w, all[:n])
		results, err := e.AllModes(cfg)
		if err != nil {
			return fmt.Errorf("fig7b n=%d: %w", n, err)
		}
		rows[i] = []any{n,
			results[planner.ModeAllSP].MeanTuples(),
			results[planner.ModeFilterDP].MeanTuples(),
			results[planner.ModeMaxDP].MeanTuples(),
			results[planner.ModeFixRef].MeanTuples(),
			results[planner.ModeSonata].MeanTuples()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// Fig8 reproduces the switch-constraint sweeps: stream-processor load as
// one resource dimension varies, for Max-DP, Fix-REF, and Sonata, running
// all eight header queries concurrently.
func Fig8(w *Workload, base pisa.Config) (map[string]*Table, error) {
	p := ScaledParams(Scale{PacketsPerWindow: w.Gen.Config().PacketsPerWindow})
	all := queries.TopEight(p)
	e := NewExperiment(w, all)
	modes := []planner.Mode{planner.ModeMaxDP, planner.ModeFixRef, planner.ModeSonata}

	warm(w)
	if _, err := e.Training(); err != nil {
		return nil, err
	}
	sweep := func(id, title, unit string, values []any, apply func(pisa.Config, any) pisa.Config) (*Table, error) {
		t := &Table{ID: id, Title: title,
			Header: []string{unit, "Max-DP", "Fix-REF", "Sonata"}}
		rows := make([][]any, len(values))
		err := parallelFor(len(values), func(i int) error {
			v := values[i]
			cfg := apply(base, v)
			row := []any{v}
			for _, mode := range modes {
				res, err := e.Run(cfg, mode)
				if err != nil {
					return fmt.Errorf("%s %v %v: %w", id, v, mode, err)
				}
				row = append(row, res.MeanTuples())
			}
			rows[i] = row
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			t.AddRow(row...)
		}
		return t, nil
	}

	out := make(map[string]*Table)
	var err error
	out["fig8a"], err = sweep("fig8a", "Effect of pipeline depth", "stages",
		[]any{1, 2, 4, 8, 12, 16, 32},
		func(c pisa.Config, v any) pisa.Config { c.Stages = v.(int); return c })
	if err != nil {
		return nil, err
	}
	out["fig8b"], err = sweep("fig8b", "Effect of stateful actions per stage", "actions",
		[]any{1, 2, 4, 8, 12, 16, 32},
		func(c pisa.Config, v any) pisa.Config { c.StatefulPerStage = v.(int); return c })
	if err != nil {
		return nil, err
	}
	out["fig8c"], err = sweep("fig8c", "Effect of register memory per stage", "memory-mb",
		[]any{0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 32.0},
		func(c pisa.Config, v any) pisa.Config {
			c.RegisterBitsPerStage = int64(v.(float64) * (1 << 20))
			c.MaxRegisterBitsPerOp = c.RegisterBitsPerStage / 2
			return c
		})
	if err != nil {
		return nil, err
	}
	out["fig8d"], err = sweep("fig8d", "Effect of PHV metadata budget", "metadata-kb",
		[]any{0.25, 0.5, 1.0, 2.0, 4.0, 8.0},
		func(c pisa.Config, v any) pisa.Config {
			c.MetadataBits = int(v.(float64) * 1024)
			return c
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Overhead reproduces the dynamic refinement overhead micro-benchmark:
// updating ~200 dynamic filter entries and resetting registers at a window
// boundary, compared with the window length.
func Overhead(w *Workload, cfg pisa.Config) (*Table, error) {
	p := ScaledParams(Scale{PacketsPerWindow: w.Gen.Config().PacketsPerWindow})
	e := NewExperiment(w, queries.TopEight(p))
	res, err := e.Run(cfg, planner.ModeSonata)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "overhead", Title: "Dynamic refinement update overhead",
		Header: []string{"metric", "value"}}
	windows := len(res.PerWindow)
	if windows == 0 {
		windows = 1
	}
	perWindowEntries := float64(res.FilterUpdates) / float64(windows)
	perWindowTime := res.UpdateTime / time.Duration(windows)
	t.AddRow("filter entries updated per window", perWindowEntries)
	t.AddRow("update time per window", perWindowTime.String())
	t.AddRow("window length", w.Window().String())
	t.AddRow("overhead fraction", float64(perWindowTime)/float64(w.Window()))
	t.Notes = append(t.Notes,
		"the paper measures 131 ms for 200 Tofino entries (~5% of W=3s); the simulator's updates are memory writes, so the fraction here bounds scheduling overhead rather than hardware latency")
	return t, nil
}
