package pisa

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// retainMirror deep-copies a mirror's Vals so a test may keep it past the
// callback, which the Switch contract otherwise forbids (Vals may alias
// per-instance scratch reused by the next packet).
func retainMirror(m Mirror) Mirror {
	m.Vals = append([]tuple.Value(nil), m.Vals...)
	return m
}
func query1(th uint64) *query.Query {
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, th)).
		MustBuild()
	q.ID = 1
	return q
}

// specFor builds an InstanceSpec with cutTables tables on the switch and
// first-fit stage assignment (one table per stage).
func specFor(q *query.Query, cutTables int, regEntries int) *InstanceSpec {
	cp := compile.CompilePipeline(q.Left.Ops)
	spec := &InstanceSpec{QID: q.ID, Ops: q.Left.Ops, Tables: cp.Tables, CutAt: cutTables}
	spec.StageOf = make([]int, len(cp.Tables))
	spec.RegEntries = make([]int, len(cp.Tables))
	for i := range cp.Tables {
		spec.StageOf[i] = i
		if cp.Tables[i].Stateful {
			spec.RegEntries[i] = regEntries
		}
	}
	return spec
}

func synFrame(src, dst uint32) []byte {
	return packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: src, DstIP: dst, Proto: 6, SrcPort: 9, DstPort: 80,
		TCPFlags: fields.FlagSYN, Pad: 60})
}

func ackFrame(src, dst uint32) []byte {
	return packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: src, DstIP: dst, Proto: 6, SrcPort: 9, DstPort: 80,
		TCPFlags: fields.FlagACK, Pad: 60})
}

func TestCompileQuery1Tables(t *testing.T) {
	cp := compile.CompilePipeline(query1(40).Left.Ops)
	kinds := []compile.TableKind{compile.TableFilter, compile.TableMap,
		compile.TableHashIndex, compile.TableStateUpdate}
	if len(cp.Tables) != len(kinds) {
		t.Fatalf("tables = %d, want %d", len(cp.Tables), len(kinds))
	}
	for i, k := range kinds {
		if cp.Tables[i].Kind != k {
			t.Errorf("table %d kind = %v, want %v", i, cp.Tables[i].Kind, k)
		}
	}
	upd := cp.Tables[3]
	if !upd.Stateful || upd.MergedFilterOp != 3 || upd.KeyBits != 32 {
		t.Errorf("state update table = %+v", upd)
	}
	if cp.CapPrefix != 4 {
		t.Errorf("CapPrefix = %d", cp.CapPrefix)
	}
	pts := cp.ValidPartitionPoints()
	want := []int{0, 1, 2, 4} // cannot cut between hash-index and update
	if fmt.Sprint(pts) != fmt.Sprint(want) {
		t.Errorf("partition points = %v, want %v", pts, want)
	}
	entry := cp.EntryFor(4)
	if !entry.AggMerge || entry.MergeOp != 2 || entry.StartOp != 4 {
		t.Errorf("entry = %+v", entry)
	}
}

func TestSwitchRunsQuery1Fully(t *testing.T) {
	q := query1(3)
	spec := specFor(q, 4, 1024)
	var mirrors []Mirror
	sw, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec}},
		func(m Mirror) { mirrors = append(mirrors, retainMirror(m)) })
	if err != nil {
		t.Fatal(err)
	}
	victim := packet.IPv4Addr(9, 9, 9, 9)
	for i := 0; i < 10; i++ {
		sw.Process(synFrame(uint32(i+1), victim))
	}
	sw.Process(synFrame(1, packet.IPv4Addr(8, 8, 8, 8))) // 1 SYN: below Th
	sw.Process(ackFrame(1, victim))                      // not a SYN
	dumps, stats := sw.EndWindow()
	if len(mirrors) != 0 {
		t.Errorf("stateful tail should not mirror per packet; got %d", len(mirrors))
	}
	if len(dumps) != 1 {
		t.Fatalf("dumps = %+v", dumps)
	}
	d := dumps[0]
	if d.KeyVals[0].U != uint64(victim) || d.Val != 10 || d.MergeOp != 2 {
		t.Errorf("dump = %+v", d)
	}
	if stats.PacketsIn != 12 || stats.DumpTuples != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// Registers reset between windows.
	sw.Process(synFrame(1, victim))
	dumps, _ = sw.EndWindow()
	if len(dumps) != 0 {
		t.Error("register state leaked across windows")
	}
}

func TestSwitchStatelessCut(t *testing.T) {
	// Cut after filter+map: every SYN mirrors a tuple.
	q := query1(3)
	spec := specFor(q, 2, 0)
	var mirrors []Mirror
	sw, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec}},
		func(m Mirror) { mirrors = append(mirrors, retainMirror(m)) })
	if err != nil {
		t.Fatal(err)
	}
	sw.Process(synFrame(1, 42))
	sw.Process(ackFrame(1, 42))
	if len(mirrors) != 1 {
		t.Fatalf("mirrors = %d", len(mirrors))
	}
	m := mirrors[0]
	if m.EntryOp != 2 || m.Overflow || len(m.Vals) != 2 || m.Vals[0].U != 42 || m.Vals[1].U != 1 {
		t.Errorf("mirror = %+v", m)
	}
	if m.Packet != nil {
		t.Error("tuple-phase mirror should not carry the frame unless requested")
	}
}

func TestSwitchAllSPMirrorsEverything(t *testing.T) {
	q := query1(3)
	spec := specFor(q, 0, 0)
	count := 0
	sw, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec}},
		func(m Mirror) {
			count++
			if m.Packet == nil || m.EntryOp != 0 {
				t.Errorf("All-SP mirror = %+v", m)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	sw.Process(synFrame(1, 42))
	sw.Process(ackFrame(1, 42)) // even non-matching packets mirror: SP does the filtering
	if count != 2 {
		t.Errorf("mirrored %d of 2", count)
	}
}

func TestSwitchOverflowShunts(t *testing.T) {
	q := query1(0)
	spec := specFor(q, 4, 1) // one slot per chain: guaranteed collisions
	var overflow int
	sw, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec}},
		func(m Mirror) {
			if m.Overflow {
				overflow++
				if m.MergeOp != 2 || len(m.Vals) != 2 {
					t.Errorf("overflow mirror = %+v", m)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	// d=3 chains x 1 slot: the 4th distinct key (and all its packets) must
	// overflow ... but single-slot chains hash every key to slot 0, so keys
	// beyond the first 3 spill.
	distinct := 8
	for i := 0; i < distinct; i++ {
		sw.Process(synFrame(1, uint32(1000+i)))
	}
	dumps, stats := sw.EndWindow()
	if overflow == 0 {
		t.Fatal("no overflow with 1-slot registers")
	}
	if int(stats.Collisions) != overflow {
		t.Errorf("collisions = %d, overflow mirrors = %d", stats.Collisions, overflow)
	}
	if len(dumps)+overflow != distinct {
		t.Errorf("dumps %d + overflow %d != %d distinct keys", len(dumps), overflow, distinct)
	}
}

func TestSwitchMidPipelineDistinct(t *testing.T) {
	// Superspreader-style: map, distinct on switch; reduce on SP.
	q := query.NewBuilder("spread", time.Second).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
		Distinct().
		Map(query.C(fields.SrcIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.SrcIP).
		Filter(query.Gt(fields.AggVal, 2)).
		MustBuild()
	q.ID = 3
	cp := compile.CompilePipeline(q.Left.Ops)
	// Tables: map, hash, distinct-update, map, hash, reduce-update(+filter).
	// Cut after the second map (table 3): distinct passes first occurrences
	// through to the map, which mirrors per-tuple; the SP runs the reduce.
	spec := &InstanceSpec{QID: 3, Ops: q.Left.Ops, Tables: cp.Tables, CutAt: 4,
		StageOf: []int{0, 1, 2, 3, 4, 5}, RegEntries: []int{0, 0, 1024, 0, 0, 1024}}
	var mirrors []Mirror
	sw, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec}},
		func(m Mirror) { mirrors = append(mirrors, retainMirror(m)) })
	if err != nil {
		t.Fatal(err)
	}
	// Same (src,dst) five times: only the first passes distinct.
	for i := 0; i < 5; i++ {
		sw.Process(synFrame(7, 100))
	}
	sw.Process(synFrame(7, 101))
	if len(mirrors) != 2 {
		t.Fatalf("distinct passed %d tuples, want 2", len(mirrors))
	}
	if mirrors[0].EntryOp != 3 {
		t.Errorf("entry op = %d, want 3 (the SP-side reduce)", mirrors[0].EntryOp)
	}
	if len(mirrors[0].Vals) != 2 || mirrors[0].Vals[0].U != 7 || mirrors[0].Vals[1].U != 1 {
		t.Errorf("mirror tuple = %+v", mirrors[0].Vals)
	}

	// Cut at the distinct itself (table 3 exclusive): keys arrive via the
	// end-of-window register dump instead.
	spec2 := &InstanceSpec{QID: 3, Ops: q.Left.Ops, Tables: cp.Tables, CutAt: 3,
		StageOf: []int{0, 1, 2, 3, 4, 5}, RegEntries: []int{0, 0, 1024, 0, 0, 1024}}
	sw2, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec2}},
		func(m Mirror) { t.Errorf("unexpected mirror %+v", m) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sw2.Process(synFrame(7, 100))
	}
	sw2.Process(synFrame(7, 101))
	dumps, _ := sw2.EndWindow()
	if len(dumps) != 2 {
		t.Fatalf("distinct dump = %d keys, want 2", len(dumps))
	}
	if dumps[0].MergeOp != 1 {
		t.Errorf("dump merge op = %d, want 1 (the distinct)", dumps[0].MergeOp)
	}
}

func TestSwitchDynFilterGates(t *testing.T) {
	q := query1(0)
	aug := q.Clone()
	dynOp := query.NewDynPacketFilter("q1.r8", fields.DstIP, 8)
	aug.Left.Ops = append([]query.Op{dynOp}, aug.Left.Ops...)
	cp := compile.CompilePipeline(aug.Left.Ops)
	spec := &InstanceSpec{QID: 1, Level: 16, Ops: aug.Left.Ops, Tables: cp.Tables,
		CutAt: len(cp.Tables)}
	spec.StageOf = []int{0, 1, 2, 3, 4}
	spec.RegEntries = make([]int, len(cp.Tables))
	for i, tab := range cp.Tables {
		if tab.Stateful {
			spec.RegEntries[i] = 512
		}
	}
	sw, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := packet.IPv4Addr(9, 1, 1, 1)
	out := packet.IPv4Addr(10, 1, 1, 1)
	// Empty dyn table: nothing counted.
	sw.Process(synFrame(1, in))
	if dumps, _ := sw.EndWindow(); len(dumps) != 0 {
		t.Error("empty dyn table let packets through")
	}
	key := stream.DynKeyFromValue(fields.DstIP, tuple.U64(uint64(in)), 8)
	if _, err := sw.UpdateDynTable(1, 16, SideLeft, 0, []string{key}); err != nil {
		t.Fatal(err)
	}
	sw.Process(synFrame(1, in))
	sw.Process(synFrame(1, out))
	dumps, _ := sw.EndWindow()
	if len(dumps) != 1 || dumps[0].KeyVals[0].U != uint64(in) {
		t.Fatalf("dyn-gated dumps = %+v", dumps)
	}
	if sw.TableUpdates() != 1 {
		t.Errorf("TableUpdates = %d", sw.TableUpdates())
	}
}

func TestProgramValidationConstraints(t *testing.T) {
	q := query1(3)
	base := func() (*InstanceSpec, Config) {
		return specFor(q, 4, 1024), DefaultConfig()
	}

	// C3: stage beyond S.
	spec, cfg := base()
	cfg.Stages = 3
	if err := (&Program{Instances: []*InstanceSpec{spec}}).Validate(cfg); err == nil {
		t.Error("stage overflow accepted (C3)")
	}

	// C4: non-increasing stages.
	spec, cfg = base()
	spec.StageOf = []int{0, 0, 1, 2}
	if err := (&Program{Instances: []*InstanceSpec{spec}}).Validate(cfg); err == nil {
		t.Error("non-increasing stages accepted (C4)")
	}

	// C2: stateful actions per stage.
	cfg = DefaultConfig()
	cfg.StatefulPerStage = 1
	specs := []*InstanceSpec{specFor(q, 4, 1024), specFor(q, 4, 1024)}
	specs[1].QID = 2
	if err := (&Program{Instances: specs}).Validate(cfg); err == nil {
		t.Error("stateful overflow accepted (C2)")
	}

	// C1: register bits per stage.
	spec, cfg = base()
	cfg.RegisterBitsPerStage = 100
	cfg.MaxRegisterBitsPerOp = 100
	if err := (&Program{Instances: []*InstanceSpec{spec}}).Validate(cfg); err == nil {
		t.Error("register overflow accepted (C1)")
	}

	// Per-op register cap.
	spec, cfg = base()
	cfg.MaxRegisterBitsPerOp = 64
	if err := (&Program{Instances: []*InstanceSpec{spec}}).Validate(cfg); err == nil {
		t.Error("per-op register overflow accepted")
	}

	// C5: metadata budget.
	spec, cfg = base()
	cfg.MetadataBits = 8
	if err := (&Program{Instances: []*InstanceSpec{spec}}).Validate(cfg); err == nil {
		t.Error("metadata overflow accepted (C5)")
	}

	// Valid program passes.
	spec, cfg = base()
	if err := (&Program{Instances: []*InstanceSpec{spec}}).Validate(cfg); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestRegisterBankBasics(t *testing.T) {
	b := NewRegisterBank(64, 2)
	vals := []tuple.Value{tuple.U64(5)}
	if _, newKey, ok := b.Update(vals, []int{0}, 3, query.AggSum); !ok || !newKey {
		t.Fatal("first insert failed")
	}
	if v, newKey, ok := b.Update(vals, []int{0}, 4, query.AggSum); !ok || newKey || v != 7 {
		t.Fatalf("second update: v=%d newKey=%v ok=%v", v, newKey, ok)
	}
	if v, ok := b.Lookup(vals, []int{0}); !ok || v != 7 {
		t.Errorf("Lookup = %d, %v", v, ok)
	}
	if b.Stored() != 1 {
		t.Errorf("Stored = %d", b.Stored())
	}
	dump := b.Dump()
	if len(dump) != 1 || dump[0].Val != 7 || dump[0].KeyVals[0].U != 5 {
		t.Errorf("Dump = %+v", dump)
	}
	if col := b.Reset(); col != 0 {
		t.Errorf("collisions = %d", col)
	}
	if _, ok := b.Lookup(vals, []int{0}); ok {
		t.Error("Reset did not clear")
	}
}

// TestCollisionRateMatchesFigure3 checks the qualitative properties of
// Figure 3: collision rate grows with incoming keys relative to the
// register size and shrinks as the number of chained registers d grows.
func TestCollisionRateMatchesFigure3(t *testing.T) {
	n := 1024
	rate := func(d int, loadFactor float64) float64 {
		b := NewRegisterBank(n, d)
		r := rand.New(rand.NewSource(42))
		keys := int(loadFactor * float64(n))
		fails := 0
		for i := 0; i < keys; i++ {
			kv := []tuple.Value{tuple.U64(r.Uint64())}
			if _, _, ok := b.Update(kv, []int{0}, 1, query.AggSum); !ok {
				fails++
			}
		}
		return float64(fails) / float64(keys)
	}
	// More chains, fewer collisions at the same load.
	r1, r2, r4 := rate(1, 1.0), rate(2, 1.0), rate(4, 1.0)
	if !(r1 > r2 && r2 > r4) {
		t.Errorf("collision rates not decreasing in d: %v %v %v", r1, r2, r4)
	}
	// More keys, more collisions at the same d.
	lo, hi := rate(2, 0.25), rate(2, 2.0)
	if !(lo < hi) {
		t.Errorf("collision rate not increasing in load: %v vs %v", lo, hi)
	}
	// Tiny load keeps collisions near zero.
	if z := rate(4, 0.05); z > 0.01 {
		t.Errorf("near-empty bank collision rate = %v", z)
	}
}

func TestEntriesFor(t *testing.T) {
	cases := []struct {
		keys uint64
		min  int
	}{{0, 16}, {10, 31}, {1000, 1500}, {100000, 150000}}
	for _, c := range cases {
		n := EntriesFor(c.keys)
		if n < c.min {
			t.Errorf("EntriesFor(%d) = %d, below %d", c.keys, n, c.min)
		}
		if n&(n-1) != 0 {
			t.Errorf("EntriesFor(%d) = %d not a power of two", c.keys, n)
		}
	}
}
