package pisa

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/query"
)

// Side distinguishes the two pipelines of a join query (matching
// stream.Side but kept independent so the packages stay decoupled).
type Side uint8

const (
	SideLeft  Side = 0
	SideRight Side = 1
)

// InstanceSpec describes one (query, refinement level, side) pipeline as
// installed on the switch: its compiled tables, how many run here, where
// they are placed, and how the registers are sized.
type InstanceSpec struct {
	QID   uint16
	Level uint8
	Side  Side

	// Ops is the (augmented) dataflow pipeline; Tables its lowering.
	Ops    []query.Op
	Tables []compile.Table
	// CutAt is the number of leading tables executed on the switch.
	CutAt int
	// StageOf[t] is the pipeline stage of table t (t < CutAt). Stages must
	// be strictly increasing along the table sequence.
	StageOf []int
	// RegEntries[t] is the per-chain slot count n for stateful table t.
	RegEntries []int
	// NeedsPacket asks the mirror to carry the original frame because the
	// stream processor's portion parses it further (payload queries,
	// packet-phase joins).
	NeedsPacket bool
}

// Name identifies the instance in logs and dynamic table updates.
func (s *InstanceSpec) Name() string {
	return fmt.Sprintf("q%d/r%d/s%d", s.QID, s.Level, s.Side)
}

// MetaBits is the instance's PHV footprint when any table runs on the
// switch.
func (s *InstanceSpec) MetaBits() int {
	if s.CutAt == 0 {
		return 0
	}
	return compile.MetaBits(s.Ops)
}

// statefulSlotBits returns the register footprint of table t.
func (s *InstanceSpec) statefulSlotBits(cfg Config, t int) int64 {
	tab := &s.Tables[t]
	return RegisterBits(s.RegEntries[t], cfg.RegisterChains, tab.KeyBits, tab.ValBits)
}

// Program is the full switch configuration: every installed instance.
type Program struct {
	Instances []*InstanceSpec
}

// Validate checks a program against the switch constraints — the runtime
// analogue of the planner's ILP constraints C1-C5.
func (p *Program) Validate(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	statefulPerStage := make([]int, cfg.Stages)
	statelessPerStage := make([]int, cfg.Stages)
	bitsPerStage := make([]int64, cfg.Stages)
	totalMeta := 0

	for _, inst := range p.Instances {
		if inst.CutAt < 0 || inst.CutAt > len(inst.Tables) {
			return fmt.Errorf("pisa: %s: cut %d out of range", inst.Name(), inst.CutAt)
		}
		if len(inst.StageOf) < inst.CutAt {
			return fmt.Errorf("pisa: %s: missing stage assignment", inst.Name())
		}
		prev := -1
		for t := 0; t < inst.CutAt; t++ {
			st := inst.StageOf[t]
			if st < 0 || st >= cfg.Stages {
				return fmt.Errorf("pisa: %s table %d: stage %d outside [0,%d) (C3)", inst.Name(), t, st, cfg.Stages)
			}
			if st <= prev {
				return fmt.Errorf("pisa: %s table %d: stage %d not after %d (C4)", inst.Name(), t, st, prev)
			}
			prev = st
			tab := &inst.Tables[t]
			if tab.Stateful {
				statefulPerStage[st]++
				opBits := inst.statefulSlotBits(cfg, t)
				if opBits > cfg.MaxRegisterBitsPerOp {
					return fmt.Errorf("pisa: %s table %d: %d register bits exceed per-op cap %d",
						inst.Name(), t, opBits, cfg.MaxRegisterBitsPerOp)
				}
				bitsPerStage[st] += opBits
			} else {
				statelessPerStage[st]++
			}
		}
		totalMeta += inst.MetaBits()
	}
	for s := 0; s < cfg.Stages; s++ {
		if statefulPerStage[s] > cfg.StatefulPerStage {
			return fmt.Errorf("pisa: stage %d has %d stateful actions, limit %d (C2)",
				s, statefulPerStage[s], cfg.StatefulPerStage)
		}
		if statelessPerStage[s] > cfg.StatelessPerStage {
			return fmt.Errorf("pisa: stage %d has %d stateless actions, limit %d",
				s, statelessPerStage[s], cfg.StatelessPerStage)
		}
		if bitsPerStage[s] > cfg.RegisterBitsPerStage {
			return fmt.Errorf("pisa: stage %d uses %d register bits, limit %d (C1)",
				s, bitsPerStage[s], cfg.RegisterBitsPerStage)
		}
	}
	if totalMeta > cfg.MetadataBits {
		return fmt.Errorf("pisa: program needs %d metadata bits, PHV budget %d (C5)",
			totalMeta, cfg.MetadataBits)
	}
	return nil
}
