package pisa

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// TestSwitchMatchesStreamProcessor is the partitioning-correctness
// invariant from Section 3.1: executing a query's operators on the switch
// must produce exactly the results the stream processor would produce on
// the same packets. Random workloads, several queries, both cut depths.
func TestSwitchMatchesStreamProcessor(t *testing.T) {
	mkQ1 := func() *query.Query {
		q := query.NewBuilder("q1", time.Second).
			Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
			Map(query.F(fields.DstIP), query.ConstCol(1)).
			Reduce(query.AggSum, fields.DstIP).
			Filter(query.Gt(fields.AggVal, 3)).
			MustBuild()
		q.ID = 1
		return q
	}
	mkSpread := func() *query.Query {
		q := query.NewBuilder("spread", time.Second).
			Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
			Distinct().
			Map(query.C(fields.SrcIP), query.ConstCol(1)).
			Reduce(query.AggSum, fields.SrcIP).
			Filter(query.Gt(fields.AggVal, 2)).
			MustBuild()
		q.ID = 1
		return q
	}

	for _, mk := range []func() *query.Query{mkQ1, mkSpread} {
		for seed := int64(0); seed < 5; seed++ {
			q := mk()
			t.Run(fmt.Sprintf("%s/seed%d", q.Name, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				var frames [][]byte
				for i := 0; i < 800; i++ {
					flags := byte(fields.FlagSYN)
					if r.Intn(3) == 0 {
						flags = fields.FlagACK
					}
					frames = append(frames, packet.BuildFrame(nil, &packet.FrameSpec{
						SrcIP: uint32(r.Intn(20) + 1), DstIP: uint32(r.Intn(30) + 1000),
						Proto: 6, SrcPort: uint16(r.Intn(100) + 1), DstPort: 80,
						TCPFlags: flags, Pad: 60,
					}))
				}

				cp := compile.CompilePipeline(q.Left.Ops)
				for _, cut := range cp.ValidPartitionPoints() {
					// Switch + engine with the cut.
					engine := stream.NewEngine(nil)
					if err := engine.Install(q, 0, stream.Partition{LeftStart: cp.EntryFor(cut).StartOp}); err != nil {
						t.Fatal(err)
					}
					spec := &InstanceSpec{QID: 1, Ops: q.Left.Ops, Tables: cp.Tables, CutAt: cut}
					spec.StageOf = make([]int, len(cp.Tables))
					spec.RegEntries = make([]int, len(cp.Tables))
					for i := range cp.Tables {
						spec.StageOf[i] = i
						if cp.Tables[i].Stateful {
							spec.RegEntries[i] = 4096
						}
					}
					parser := packet.NewParser(packet.ParserOptions{})
					var pkt packet.Packet
					sw, err := NewSwitch(DefaultConfig(), &Program{Instances: []*InstanceSpec{spec}},
						func(m Mirror) {
							switch {
							case m.Overflow:
								vals := append([]tuple.Value(nil), m.Vals...)
								engine.IngestTupleAt(1, 0, stream.SideLeft, m.MergeOp, vals)
							case m.Vals != nil:
								vals := append([]tuple.Value(nil), m.Vals...)
								engine.IngestTuple(1, 0, stream.SideLeft, vals)
							case m.Packet != nil:
								if parser.Parse(m.Packet, &pkt) == nil {
									engine.IngestPacket(1, 0, &pkt)
								}
							}
						})
					if err != nil {
						t.Fatal(err)
					}
					for _, f := range frames {
						sw.Process(f)
					}
					dumps, _ := sw.EndWindow()
					for _, d := range dumps {
						engine.IngestAgg(1, 0, stream.SideLeft, d.MergeOp, d.KeyVals, d.Val)
					}
					results, _ := engine.EndWindow()
					got := renderResults(results)

					// Reference: everything at the stream processor.
					ref := stream.NewEngine(nil)
					if err := ref.Install(q, 0, stream.Partition{}); err != nil {
						t.Fatal(err)
					}
					var rp packet.Packet
					for _, f := range frames {
						if parser.Parse(f, &rp) == nil {
							ref.IngestPacket(1, 0, &rp)
						}
					}
					refResults, _ := ref.EndWindow()
					want := renderResults(refResults)

					if got != want {
						t.Errorf("cut %d diverged:\nswitch: %s\nstream: %s", cut, got, want)
					}
				}
			})
		}
	}
}

func renderResults(results []stream.Result) string {
	var lines []string
	for _, r := range results {
		for _, t := range r.Tuples {
			line := ""
			for _, v := range t {
				line += fmt.Sprintf("%v ", v)
			}
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	return fmt.Sprint(lines)
}
