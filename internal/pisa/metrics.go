package pisa

import (
	"strconv"

	"repro/internal/telemetry"
)

// switchMetrics holds the data plane's pre-registered telemetry handles.
// The zero value (all nil handles) is the uninstrumented mode: every method
// call on a nil handle is a no-op, so the packet path carries no branch on
// an "enabled" flag and no map lookups.
type switchMetrics struct {
	packets     *telemetry.Counter
	mirrored    *telemetry.Counter
	collisions  *telemetry.Counter
	dumpTuples  *telemetry.Counter
	dynUpdates  *telemetry.Counter
	regUsed     *telemetry.Gauge
	regCapacity *telemetry.Gauge
}

// Instrument registers the switch's metrics against reg (nil disables).
// Call once after NewSwitch; the register-capacity gauge is fixed at that
// point, occupancy updates at every window boundary.
func (sw *Switch) Instrument(reg *telemetry.Registry) {
	sw.instrument(reg, nil)
}

// InstrumentShard registers the metrics of one shard of a sharded
// deployment. Counter families are shared with the sequential series — the
// registry returns the same handle for the same (family, labels), so
// per-shard increments fold into one total automatically. The register
// gauges are Set (not added), so they get a shard label to keep each
// shard's occupancy and capacity as its own series.
func (sw *Switch) InstrumentShard(reg *telemetry.Registry, shard int) {
	sw.instrument(reg, []string{"shard", strconv.Itoa(shard)})
}

func (sw *Switch) instrument(reg *telemetry.Registry, gaugeLabels []string) {
	sw.m = switchMetrics{
		packets: reg.Counter("sonata_switch_packets_total",
			"Frames processed by the data plane."),
		mirrored: reg.Counter("sonata_switch_mirrored_total",
			"Mirror reports sent out the monitoring port."),
		collisions: reg.Counter("sonata_switch_collisions_total",
			"Stateful updates that overflowed all register chains."),
		dumpTuples: reg.Counter("sonata_switch_dump_tuples_total",
			"Aggregated (key, value) pairs dumped at window boundaries."),
		dynUpdates: reg.Counter("sonata_switch_dyn_table_updates_total",
			"Dynamic filter entries written by refinement updates."),
		regUsed: reg.Gauge("sonata_switch_register_entries_used",
			"Register slots occupied at the last window boundary.", gaugeLabels...),
		regCapacity: reg.Gauge("sonata_switch_register_entries_capacity",
			"Total register slots across all installed banks.", gaugeLabels...),
	}
	sw.m.regCapacity.Set(sw.registerCapacity())
}

// registerCapacity totals the slots of every installed bank.
func (sw *Switch) registerCapacity() int64 {
	var total int64
	for _, st := range sw.insts {
		for _, bank := range st.banks {
			if bank != nil {
				total += int64(bank.Capacity())
			}
		}
	}
	return total
}

// registerOccupancy totals the keys currently stored across banks.
func (sw *Switch) registerOccupancy() int64 {
	var total int64
	for _, st := range sw.insts {
		for _, bank := range st.banks {
			if bank != nil {
				total += int64(bank.Stored())
			}
		}
	}
	return total
}
