// Package pisa simulates a protocol-independent switch architecture (PISA)
// switch: a programmable parser feeding a pipeline of match-action stages
// with per-stage stateful actions and register memory, a metadata budget,
// and a mirror port toward the stream processor.
//
// The simulator is parameterized by the same four resource constraints the
// paper's query planner models (Section 3.2): number of stages S, stateful
// actions per stage A, register bits per stage B, and PHV metadata bits M.
// Figures 7 and 8 of the paper are produced against exactly this kind of
// simulated switch.
package pisa

import "fmt"

// Config holds the data-plane resource constraints.
type Config struct {
	// Stages is S: the number of physical match-action stages.
	Stages int
	// StatefulPerStage is A: stateful actions available per stage.
	StatefulPerStage int
	// StatelessPerStage bounds stateless actions per stage (PISA switches
	// support 100-200; rarely binding but modeled for completeness).
	StatelessPerStage int
	// RegisterBitsPerStage is B: register memory per stage, in bits.
	RegisterBitsPerStage int64
	// MaxRegisterBitsPerOp bounds a single stateful operator's register
	// allocation within a stage.
	MaxRegisterBitsPerOp int64
	// MetadataBits is M: the PHV budget available for query metadata.
	MetadataBits int
	// RegisterChains is d: how many hash-indexed register banks a stateful
	// operator probes before shunting a colliding key to the stream
	// processor (Section 3.1.3).
	RegisterChains int
}

// DefaultConfig mirrors the paper's evaluation defaults (Section 6.1):
// sixteen stages, eight stateful operators per stage, 8 Mb of register
// memory per stage with a 4 Mb single-operator cap.
func DefaultConfig() Config {
	return Config{
		Stages:               16,
		StatefulPerStage:     8,
		StatelessPerStage:    128,
		RegisterBitsPerStage: 8 << 20, // 8 Mb
		MaxRegisterBitsPerOp: 4 << 20, // 4 Mb
		MetadataBits:         8 << 10, // 8 Kb
		RegisterChains:       3,
	}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Stages <= 0 || c.StatefulPerStage < 0 || c.StatelessPerStage <= 0 {
		return fmt.Errorf("pisa: bad stage configuration %+v", c)
	}
	if c.RegisterBitsPerStage < 0 || c.MaxRegisterBitsPerOp < 0 {
		return fmt.Errorf("pisa: negative register memory")
	}
	if c.MetadataBits <= 0 {
		return fmt.Errorf("pisa: no metadata budget")
	}
	if c.RegisterChains <= 0 {
		return fmt.Errorf("pisa: need at least one register chain")
	}
	return nil
}
