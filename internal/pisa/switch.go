package pisa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/fields"
	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// Mirror is one record sent from the switch's monitoring port toward the
// emitter: either a per-packet report (a metadata tuple and/or the original
// frame) or a collision-overflow shunt.
type Mirror struct {
	QID   uint16
	Level uint8
	Side  Side
	// Overflow marks a packet shunted because its key collided in all d
	// registers; the stream processor folds it into the stateful operator
	// at MergeOp.
	Overflow bool
	MergeOp  int
	// EntryOp is the dataflow op index where the stream processor resumes
	// for non-overflow reports.
	EntryOp int
	// Vals is the metadata tuple at the partition point (nil when the
	// pipeline was still packet-phase).
	Vals []tuple.Value
	// Packet is the original frame, present when the instance requested it
	// or the pipeline was packet-phase.
	Packet []byte
	// Parsed is the switch's header parse of Packet, attached only when the
	// frame decoded fully. It is a process-local sidecar — never serialized
	// by the emitter's wire format — that lets the stream side skip the
	// re-parse. Receivers must treat it as read-only: in sharded mode it is
	// shared across workers.
	Parsed *packet.Packet
}

// RegDump is one aggregated (key, value) pair reported at window end.
type RegDump struct {
	QID     uint16
	Level   uint8
	Side    Side
	MergeOp int
	KeyVals []tuple.Value
	Val     uint64
}

// WindowStats summarizes one window of switch activity.
type WindowStats struct {
	PacketsIn  uint64
	Mirrored   uint64
	Collisions uint64
	DumpTuples uint64
}

// Merge folds another shard's stats into s. The merge is associative and
// commutative (plain addition per column), which is what makes the sharded
// pipeline's window close order-independent. Note that shards driven via
// ProcessView report PacketsIn = 0 — the parse side owns that count, since
// every shard sees every frame.
func (s *WindowStats) Merge(o WindowStats) {
	s.PacketsIn += o.PacketsIn
	s.Mirrored += o.Mirrored
	s.Collisions += o.Collisions
	s.DumpTuples += o.DumpTuples
}

// dynRuleSet is one immutable generation of a dynamic filter table's
// entries; UpdateDynTable publishes a fresh set through an atomic pointer
// (copy-on-write), so the per-packet lookup takes no lock and never sees a
// half-written table. Numeric keys (tag 'u' + 8 big-endian bytes, the
// encoding stream.DynKeyFromValue produces for non-string fields) are
// decoded into nums at publish time so the per-packet lookup skips both the
// key encoding and the string hash.
type dynRuleSet struct {
	strs map[string]struct{}
	nums map[uint64]struct{}
}

func (s *dynRuleSet) empty() bool { return len(s.strs) == 0 && len(s.nums) == 0 }

// instState is the runtime state of one installed instance.
type instState struct {
	spec  *InstanceSpec
	banks []*RegisterBank // by table index; nil for stateless tables
	// dynRules holds the dynamic filter entry snapshot per table index
	// (parallel to spec.Tables up to CutAt; nil until first populated).
	dynRules []atomic.Pointer[dynRuleSet]
	entry    compile.SPEntry
	// valsBufs and dynScratch are per-packet buffers so the hot path does
	// not allocate; mirrors may alias them (documented: callers must not
	// retain Vals past the callback). valsBufs is a ping-pong pair: every
	// table that produces a metadata tuple writes the buffer vals does not
	// currently occupy, so a producer never overwrites the tuple it is
	// reading.
	valsBufs   [2][]tuple.Value
	valsCur    int
	dynScratch []byte
	// fr is the instance's flight-recorder probe (nil when detached; nil
	// probes no-op). frStage[t] is the probe's global stage index for table
	// t's op, or -1 when an earlier table already counted that op (stateful
	// ops lower to a hash-index + state-update table pair). frBase offsets
	// right-side instances into the probe's combined stage space.
	fr      *flightrec.Probe
	frStage []int
	frBase  int
	// screenTables is the number of leading packet-phase filter tables
	// (static and dynamic) covered by the batch prescreen. screenAtoms
	// indexes the shared static-clause bitmaps whose AND gates this
	// instance's entry; screenDyn lists the leading dynamic filter tables,
	// applied per batch against one rule-set snapshot. Zero when the
	// instance's first table is not a filter (prescreen not applicable).
	screenTables int
	screenAtoms  []int
	screenDyn    []int
}

// nextVals returns an n-wide tuple buffer from the instance's ping-pong
// pair, toggling so the returned buffer is never the one vals currently
// aliases. Buffers grow monotonically; the steady state allocates nothing.
func (st *instState) nextVals(n int) []tuple.Value {
	st.valsCur ^= 1
	buf := st.valsBufs[st.valsCur]
	if cap(buf) < n {
		buf = make([]tuple.Value, n)
		st.valsBufs[st.valsCur] = buf
	}
	return buf[:n]
}

// packetView pairs a parsed packet with its raw frame so mirrors can carry
// the original bytes when the stream processor needs them. clean marks a
// fully decoded frame whose parse mirrors may re-use (ErrUnsupportedLayer
// frames still run the pipeline but the emitter treats their embedded
// packets as malformed, so their parse must not be forwarded).
type packetView struct {
	pkt   *packet.Packet
	frame []byte
	clean bool
}

// View is one frame parsed once for fan-out to switch shards. The embedded
// Packet owns its own scratch storage, so a batch of Views can be pooled
// and re-Prepared without allocation; after Prepare the view is read-only
// and safe to share across shard goroutines.
type View struct {
	Pkt   packet.Packet
	Frame []byte
	// Runnable reports whether the telemetry pipeline should see the frame:
	// the parse succeeded, or failed with ErrUnsupportedLayer (the decoded
	// prefix is valid and the frame is forwarded like any other traffic).
	Runnable bool
	clean    bool
}

// Prepare parses frame into the view using p. It mirrors exactly the parse
// decision Process makes inline.
func (v *View) Prepare(p *packet.Parser, frame []byte) {
	v.Frame = frame
	err := p.Parse(frame, &v.Pkt)
	v.clean = err == nil
	v.Runnable = v.clean || errors.Is(err, packet.ErrUnsupportedLayer)
}

// Switch simulates the data plane: packets stream through every installed
// instance's tables; reports leave via the mirror callback; registers dump
// at window boundaries.
type Switch struct {
	cfg     Config
	insts   []*instState
	mirror  func(Mirror)
	stats   WindowStats
	parser  *packet.Parser
	scratch packet.Packet
	// dumpScratch is EndWindow's reusable (keys + aggregate) row buffer for
	// merged threshold filters; dumpBuf is its reusable RegDump slice (the
	// returned dumps are valid until the next EndWindow).
	dumpScratch []tuple.Value
	dumpBuf     []RegDump
	// tableUpdates counts dynamic filter entry updates (the refinement
	// overhead micro-benchmark).
	tableUpdates uint64
	// Leading-filter prescreen. pre holds the distinct static packet-phase
	// filter clauses ("atoms") that gate instance entry — program-wide, and
	// possibly shared with other switches (worker shards) via
	// NewSwitchShared. ProcessViews evaluates each atom once per batch into
	// its bitmap (in ownMasks), and every instance ANDs its atoms' masks
	// (into screenComb) to select the frames that enter its pipeline. A
	// frame thus pays each distinct predicate once per batch instead of once
	// per instance that shares it; with ProcessViewsPre the dispatch side
	// pays it once per batch instead of once per shard.
	// Dynamic filters in the leading run are screened per instance: one
	// rule-set snapshot per batch, probed only for frames still selected.
	// screenActive reports whether any of this switch's instances has a
	// screenable prefix; the masks' runnable bitmap seeds the combined mask
	// when an instance's prefix has dynamic filters but no static clauses.
	pre          *Prescreen
	ownMasks     PrescreenMasks
	screenComb   []uint64
	screenActive bool
	// m holds pre-registered telemetry handles; the zero value is the
	// uninstrumented (free) mode.
	m switchMetrics
}

// NewSwitch validates and installs a program. The mirror callback receives
// per-packet reports; it must not retain Vals or Packet beyond the call
// unless it copies them.
func NewSwitch(cfg Config, prog *Program, mirror func(Mirror)) (*Switch, error) {
	return NewSwitchShared(cfg, prog, mirror, nil)
}

// NewSwitchShared is NewSwitch with an externally owned prescreen atom
// space. Worker shards built over slices of one program pass the same
// Prescreen so their leading-filter clauses dedup program-wide; the
// dispatch side then evaluates the atoms once per batch (Prescreen.Eval)
// and each shard consumes the bitmaps via ProcessViewsPre. A nil ps gives
// the switch a private atom space (identical to NewSwitch).
func NewSwitchShared(cfg Config, prog *Program, mirror func(Mirror), ps *Prescreen) (*Switch, error) {
	if err := prog.Validate(cfg); err != nil {
		return nil, err
	}
	if mirror == nil {
		mirror = func(Mirror) {}
	}
	// The switch parser extracts headers only; deep (DNS/payload) parsing
	// happens at the emitter/stream processor, as in the paper.
	sw := &Switch{cfg: cfg, mirror: mirror, parser: packet.NewParser(packet.ParserOptions{})}
	for _, spec := range prog.Instances {
		st := &instState{spec: spec, banks: make([]*RegisterBank, spec.CutAt),
			dynRules: make([]atomic.Pointer[dynRuleSet], spec.CutAt)}
		for t := 0; t < spec.CutAt; t++ {
			tab := &spec.Tables[t]
			if tab.Stateful {
				n := spec.RegEntries[t]
				if n <= 0 {
					return nil, fmt.Errorf("pisa: %s table %d: no register entries", spec.Name(), t)
				}
				st.banks[t] = NewRegisterBank(n, cfg.RegisterChains)
			}
		}
		cp := compile.Pipeline{Ops: spec.Ops, Tables: spec.Tables}
		st.entry = cp.EntryFor(spec.CutAt)
		sw.insts = append(sw.insts, st)
	}
	// Collect the prescreen: each instance's leading run of packet-phase
	// filter tables (no map has run yet, so all are packet-phase). Static
	// clauses become shared atoms, deduplicated across every switch sharing
	// the prescreen — instances installed at several refinement levels (or
	// partitioned across shards) share their entry filters, so the dedup is
	// what buys the win. Dynamic filter tables in the run are recorded per
	// instance for the snapshot-per-batch screen.
	if ps == nil {
		ps = NewPrescreen()
	}
	sw.pre = ps
	for _, st := range sw.insts {
		spec := st.spec
		t := 0
	scan:
		for t < spec.CutAt {
			switch spec.Tables[t].Kind {
			case compile.TableFilter:
				o := &spec.Ops[spec.Tables[t].OpIdx]
				for _, cl := range o.Clauses {
					st.screenAtoms = append(st.screenAtoms, ps.intern(cl))
				}
			case compile.TableDynFilter:
				st.screenDyn = append(st.screenDyn, t)
			default:
				break scan
			}
			t++
		}
		st.screenTables = t
		if t > 0 {
			sw.screenActive = true
			ps.active = true
		}
	}
	return sw, nil
}

// Config returns the switch's resource configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// UpdateDynTable replaces the dynamic filter entries of the instance's
// table implementing the given dataflow op. Entry keys use the same masked
// encoding as stream.DynKeyFromValue. Returns the number of entries
// written (for the update-overhead accounting).
func (sw *Switch) UpdateDynTable(qid uint16, level uint8, side Side, opIdx int, keys []string) (int, error) {
	for _, st := range sw.insts {
		s := st.spec
		if s.QID != qid || s.Level != level || s.Side != side {
			continue
		}
		for t := 0; t < s.CutAt; t++ {
			if s.Tables[t].Kind == compile.TableDynFilter && s.Tables[t].OpIdx == opIdx {
				set := &dynRuleSet{}
				for _, k := range keys {
					if len(k) == 9 && k[0] == 'u' {
						if set.nums == nil {
							set.nums = make(map[uint64]struct{}, len(keys))
						}
						set.nums[binary.BigEndian.Uint64([]byte(k[1:9]))] = struct{}{}
					} else {
						if set.strs == nil {
							set.strs = make(map[string]struct{}, len(keys))
						}
						set.strs[k] = struct{}{}
					}
				}
				st.dynRules[t].Store(set)
				sw.tableUpdates += uint64(len(keys))
				sw.m.dynUpdates.Add(uint64(len(keys)))
				return len(keys), nil
			}
		}
		return 0, fmt.Errorf("pisa: %s has no dyn filter for op %d on the switch", s.Name(), opIdx)
	}
	return 0, fmt.Errorf("pisa: no instance q%d/r%d/s%d", qid, level, side)
}

// TableUpdates returns the cumulative count of dynamic filter entries
// written.
func (sw *Switch) TableUpdates() uint64 { return sw.tableUpdates }

// AttachFlightRec wires flight-recorder probes into every installed
// instance: per-table entering-packet counts, collision shunts, mirror
// reports, and register occupancy feed the probe of the instance's
// (qid, level). A nil lookup (or a lookup returning nil) detaches.
func (sw *Switch) AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe) {
	for _, st := range sw.insts {
		spec := st.spec
		st.fr, st.frStage, st.frBase = nil, nil, 0
		if lookup == nil {
			continue
		}
		p := lookup(spec.QID, spec.Level)
		if p == nil {
			continue
		}
		st.fr = p
		if spec.Side == SideRight {
			st.frBase = p.RightBase()
		}
		// A stateful op lowers to two tables (hash-index + state-update);
		// count its entering packets at the first table only.
		st.frStage = make([]int, spec.CutAt)
		seen := make(map[int]bool, spec.CutAt)
		for t := 0; t < spec.CutAt; t++ {
			op := spec.Tables[t].OpIdx
			if seen[op] {
				st.frStage[t] = -1
				continue
			}
			seen[op] = true
			st.frStage[t] = st.frBase + op
		}
		for _, bank := range st.banks {
			if bank != nil {
				p.AddRegCapacity(uint64(bank.Capacity()))
			}
		}
	}
}

// Process parses one frame and runs it through every installed instance.
// The packet is forwarded unmodified (Sonata only touches metadata); the
// return value is the number of mirror reports generated. Malformed frames
// are forwarded without telemetry processing, like any non-matching
// traffic.
func (sw *Switch) Process(frame []byte) int {
	sw.stats.PacketsIn++
	sw.m.packets.Inc()
	err := sw.parser.Parse(frame, &sw.scratch)
	if err != nil && !errors.Is(err, packet.ErrUnsupportedLayer) {
		return 0
	}
	view := packetView{pkt: &sw.scratch, frame: frame, clean: err == nil}
	reports := 0
	for _, st := range sw.insts {
		if sw.processInstance(st, &view, 0) {
			reports++
		}
	}
	return reports
}

// ProcessView runs an already-parsed frame through every installed
// instance — the sharded fan-out path, where one parse is shared by all
// shards. It does not count PacketsIn (every shard sees every frame; the
// parse side owns that count) and skips non-Runnable views' processing the
// same way Process drops hard parse errors.
func (sw *Switch) ProcessView(v *View) int {
	if !v.Runnable {
		return 0
	}
	view := packetView{pkt: &v.Pkt, frame: v.Frame, clean: v.clean}
	reports := 0
	for _, st := range sw.insts {
		if sw.processInstance(st, &view, 0) {
			reports++
		}
	}
	return reports
}

// ProcessViews runs a batch of already-parsed frames through every installed
// instance, instance-major: the outer loop walks instances, the inner one
// frames, so one instance's tables, register banks, and dynamic rule
// snapshots stay hot in cache across the whole batch. Before the instance
// loop, each distinct leading filter clause ("atom") is evaluated once over
// the batch into a selection bitmap; an instance whose entry is guarded by
// such filters ANDs its atoms' bitmaps and walks only the surviving frames,
// entering its pipeline past the prescreened tables. Per-instance frame
// order is unchanged from view-at-a-time processing, and prescreened
// rejection has exactly the side effects of a scalar first-filter
// rejection (none) — only the interleaving across instances differs, which
// no per-instance state observes — so window results are bit-identical to
// calling ProcessView per view. Like ProcessView it does not count
// PacketsIn and skips non-Runnable views. Instances with a flight-recorder
// probe attached take the unscreened walk so per-stage funnel counts keep
// their exact per-packet semantics.
func (sw *Switch) ProcessViews(vs []View) int {
	if sw.screenActive && len(vs) > 0 {
		sw.pre.Eval(vs, &sw.ownMasks)
		return sw.processViewsScreened(vs, &sw.ownMasks)
	}
	return sw.processViewsScreened(vs, nil)
}

// ProcessViewsPre is ProcessViews with the prescreen bitmaps already
// computed by the dispatch side (Prescreen.Eval over the same batch, using
// the shared atom space this switch was built with via NewSwitchShared).
// The masks are consulted read-only, so any number of shards can consume
// the same PrescreenMasks concurrently; each shard only ANDs the masks its
// own instances reference instead of re-evaluating every clause over every
// frame. A nil m falls back to evaluating locally.
func (sw *Switch) ProcessViewsPre(vs []View, m *PrescreenMasks) int {
	if m == nil {
		return sw.ProcessViews(vs)
	}
	return sw.processViewsScreened(vs, m)
}

func (sw *Switch) processViewsScreened(vs []View, m *PrescreenMasks) int {
	reports := 0
	screened := sw.screenActive && len(vs) > 0 && m != nil
	if screened {
		words := (len(vs) + 63) >> 6
		if cap(sw.screenComb) < words {
			sw.screenComb = make([]uint64, words)
		}
		sw.screenComb = sw.screenComb[:words]
	}
	for _, st := range sw.insts {
		if screened && st.screenTables > 0 && st.fr == nil {
			comb := sw.screenComb
			if len(st.screenAtoms) > 0 {
				copy(comb, m.atoms[st.screenAtoms[0]])
				for _, a := range st.screenAtoms[1:] {
					am := m.atoms[a]
					for w := range comb {
						comb[w] &= am[w]
					}
				}
			} else {
				copy(comb, m.runnable)
			}
			idle := false
			for _, t := range st.screenDyn {
				if !sw.applyDynScreen(st, t, vs, comb) {
					idle = true
					break
				}
			}
			if idle {
				continue // unpopulated dynamic filter: no frame enters
			}
			for w, word := range comb {
				for b := word; b != 0; b &= b - 1 {
					v := &vs[w<<6|bits.TrailingZeros64(b)]
					view := packetView{pkt: &v.Pkt, frame: v.Frame, clean: v.clean}
					if sw.processInstance(st, &view, st.screenTables) {
						reports++
					}
				}
			}
			continue
		}
		for i := range vs {
			v := &vs[i]
			if !v.Runnable {
				continue
			}
			view := packetView{pkt: &v.Pkt, frame: v.Frame, clean: v.clean}
			if sw.processInstance(st, &view, 0) {
				reports++
			}
		}
	}
	return reports
}

// applyDynScreen narrows comb to the frames whose masked key is in table
// t's dynamic rule set, loading the copy-on-write snapshot once for the
// whole batch (rule updates happen between batches — at window close — so
// one snapshot per batch observes every update a per-packet load would).
// Returns false when the set is empty or unpublished, meaning the instance
// is idle and the whole batch is rejected.
func (sw *Switch) applyDynScreen(st *instState, t int, vs []View, comb []uint64) bool {
	rp := st.dynRules[t].Load()
	if rp == nil || rp.empty() {
		return false
	}
	o := &st.spec.Ops[st.spec.Tables[t].OpIdx]
	for w, word := range comb {
		for b := word; b != 0; b &= b - 1 {
			i := w<<6 | bits.TrailingZeros64(b)
			v, ok := vs[i].Pkt.Field(o.DynKeyField)
			if ok {
				if !v.Str {
					_, ok = rp.nums[fields.TruncateU64(o.DynKeyField, v.U, o.DynLevel)]
				} else {
					st.dynScratch = stream.AppendDynKey(st.dynScratch[:0], o.DynKeyField, v, o.DynLevel)
					_, ok = rp.strs[string(st.dynScratch)]
				}
			}
			if !ok {
				comb[w] &^= 1 << uint(i&63)
			}
		}
	}
	return true
}

// processInstance walks one instance's switch-side tables starting at table
// index from (non-zero only on the prescreened batch path, where the
// leading filter tables already passed). It returns true if a mirror report
// was emitted.
func (sw *Switch) processInstance(st *instState, pkt *packetView, from int) bool {
	spec := st.spec
	if spec.CutAt == 0 {
		// Nothing on the switch: mirror every packet (the All-SP plan).
		m := Mirror{QID: spec.QID, Level: spec.Level, Side: spec.Side,
			EntryOp: 0, Packet: pkt.frame}
		if pkt.clean {
			m.Parsed = pkt.pkt
		}
		sw.emit(st, m)
		return true
	}

	var vals []tuple.Value // metadata tuple once past the first map
	inTuplePhase := false

	for t := from; t < spec.CutAt; t++ {
		tab := &spec.Tables[t]
		o := &spec.Ops[tab.OpIdx]
		if st.fr != nil && st.frStage[t] >= 0 {
			st.fr.OpSwitch(st.frStage[t])
		}
		switch tab.Kind {
		case compile.TableFilter:
			if inTuplePhase {
				for i := range o.Clauses {
					if !o.Clauses[i].MatchTuple(vals) {
						return false
					}
				}
			} else {
				for i := range o.Clauses {
					if !o.Clauses[i].MatchPacket(pkt.pkt) {
						return false
					}
				}
			}
		case compile.TableDynFilter:
			rp := st.dynRules[t].Load()
			if rp == nil || rp.empty() {
				return false // not yet populated: finer level idle
			}
			v, ok := pkt.pkt.Field(o.DynKeyField)
			if !ok {
				return false
			}
			if !v.Str {
				// Numeric fast path: mask in registers and probe the decoded
				// set directly, skipping the key encoding and string hash.
				masked := fields.TruncateU64(o.DynKeyField, v.U, o.DynLevel)
				if _, ok := rp.nums[masked]; !ok {
					return false
				}
				break
			}
			// Build the masked key into the per-instance scratch; the map
			// index's string conversion does not escape, so the lookup is
			// allocation-free.
			st.dynScratch = stream.AppendDynKey(st.dynScratch[:0], o.DynKeyField, v, o.DynLevel)
			if _, ok := rp.strs[string(st.dynScratch)]; !ok {
				return false
			}
		case compile.TableMap:
			// Toggled buffer: vals (if set) occupies the other one, so a
			// tuple-phase map never writes the tuple it is reading.
			out := st.nextVals(len(o.Cols))
			if inTuplePhase {
				for i := range o.Cols {
					out[i] = o.Cols[i].Expr.EvalTuple(vals)
				}
			} else {
				for i := range o.Cols {
					v, ok := o.Cols[i].Expr.EvalPacket(pkt.pkt)
					if !ok {
						return false
					}
					out[i] = v
				}
			}
			vals = out
			inTuplePhase = true
		case compile.TableHashIndex:
			// Index computation is folded into the bank update below.
		case compile.TableStateUpdate:
			bank := st.banks[t]
			var inc uint64 = 1
			if o.Kind == query.OpReduce {
				inc = vals[o.ValCol].U
			}
			newVal, newKey, ok := bank.Update(vals, o.KeyCols, inc, statefulFunc(o))
			if !ok {
				// Collision overflow: shunt to the stream processor, which
				// executes the stateful op itself for this packet.
				sw.stats.Collisions++
				sw.m.collisions.Inc()
				st.fr.Collision()
				m := Mirror{QID: spec.QID, Level: spec.Level, Side: spec.Side,
					Overflow: true, MergeOp: tab.OpIdx, Vals: vals}
				if spec.NeedsPacket {
					m.Packet = pkt.frame
					if pkt.clean {
						m.Parsed = pkt.pkt
					}
				}
				sw.emit(st, m)
				return true
			}
			last := t == spec.CutAt-1
			if last {
				// One report per key via the end-of-window register dump;
				// nothing per packet.
				return false
			}
			// Mid-pipeline stateful table: distinct passes first
			// occurrences through; reduce carries the running aggregate.
			if o.Kind == query.OpDistinct {
				if !newKey {
					return false
				}
				next := st.nextVals(len(o.KeyCols))
				for i, j := range o.KeyCols {
					next[i] = vals[j]
				}
				vals = next
			} else {
				next := st.nextVals(len(o.KeyCols) + 1)
				for i, j := range o.KeyCols {
					next[i] = vals[j]
				}
				next[len(o.KeyCols)] = tuple.U64(newVal)
				vals = next
			}
			if m := tab.MergedFilterOp; m >= 0 {
				if st.fr != nil {
					st.fr.OpSwitch(st.frBase + m)
				}
				mo := &spec.Ops[m]
				for i := range mo.Clauses {
					if !mo.Clauses[i].MatchTuple(vals) {
						return false
					}
				}
			}
		}
	}

	// Survived every switch table with a stateless tail: report.
	m := Mirror{QID: spec.QID, Level: spec.Level, Side: spec.Side,
		EntryOp: st.entry.StartOp}
	if inTuplePhase {
		m.Vals = vals
	}
	if !inTuplePhase || spec.NeedsPacket {
		m.Packet = pkt.frame
		if pkt.clean {
			m.Parsed = pkt.pkt
		}
	}
	sw.emit(st, m)
	return true
}

func (sw *Switch) emit(st *instState, m Mirror) {
	sw.stats.Mirrored++
	sw.m.mirrored.Inc()
	st.fr.Mirror()
	sw.mirror(m)
}

// statefulFunc returns the aggregation a stateful op applies on the switch.
func statefulFunc(o *query.Op) query.AggFunc {
	if o.Kind == query.OpDistinct {
		return query.AggBitOr
	}
	return o.Func
}

// EndWindow dumps and resets every register bank, returning the aggregated
// tuples (filtered by any merged threshold) and the closing window's stats.
// The returned slice (and the KeyVals its entries alias) is reused: it is
// valid until the next EndWindow, and its key columns are overwritten once
// the next window's first keys arrive — callers consume or copy before
// feeding new traffic, exactly the runtime's window-close sequence.
func (sw *Switch) EndWindow() ([]RegDump, WindowStats) {
	// Occupancy peaks at the window boundary; sample it before the reset.
	sw.m.regUsed.Set(sw.registerOccupancy())
	dumps := sw.dumpBuf[:0]
	for _, st := range sw.insts {
		spec := st.spec
		for t := 0; t < spec.CutAt; t++ {
			bank := st.banks[t]
			if bank == nil {
				continue
			}
			tab := &spec.Tables[t]
			last := t == spec.CutAt-1
			if last {
				for i, n := 0, bank.Stored(); i < n; i++ {
					e := bank.Entry(i)
					if m := tab.MergedFilterOp; m >= 0 {
						if st.fr != nil {
							st.fr.OpSwitch(st.frBase + m)
						}
						if !sw.dumpPasses(&spec.Ops[m], e) {
							continue
						}
					}
					st.fr.DumpTuple()
					dumps = append(dumps, RegDump{QID: spec.QID, Level: spec.Level,
						Side: spec.Side, MergeOp: tab.OpIdx, KeyVals: e.KeyVals, Val: e.Val})
				}
			}
			st.fr.RegOccupied(uint64(bank.Stored()))
			bank.Reset()
		}
	}
	sw.dumpBuf = dumps
	sw.stats.DumpTuples = uint64(len(dumps))
	sw.m.dumpTuples.Add(sw.stats.DumpTuples)
	stats := sw.stats
	sw.stats = WindowStats{}
	return dumps, stats
}

// dumpPasses applies a merged threshold filter to a dump entry. The filter
// compares the aggregate column, which sits after the keys; the row is
// assembled in a switch-level scratch so a full-register dump does not
// allocate per entry.
func (sw *Switch) dumpPasses(o *query.Op, e DumpEntry) bool {
	vals := append(sw.dumpScratch[:0], e.KeyVals...)
	vals = append(vals, tuple.U64(e.Val))
	sw.dumpScratch = vals[:0]
	for i := range o.Clauses {
		if !o.Clauses[i].MatchTuple(vals) {
			return false
		}
	}
	return true
}
