package pisa

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// Mirror is one record sent from the switch's monitoring port toward the
// emitter: either a per-packet report (a metadata tuple and/or the original
// frame) or a collision-overflow shunt.
type Mirror struct {
	QID   uint16
	Level uint8
	Side  Side
	// Overflow marks a packet shunted because its key collided in all d
	// registers; the stream processor folds it into the stateful operator
	// at MergeOp.
	Overflow bool
	MergeOp  int
	// EntryOp is the dataflow op index where the stream processor resumes
	// for non-overflow reports.
	EntryOp int
	// Vals is the metadata tuple at the partition point (nil when the
	// pipeline was still packet-phase).
	Vals []tuple.Value
	// Packet is the original frame, present when the instance requested it
	// or the pipeline was packet-phase.
	Packet []byte
	// Parsed is the switch's header parse of Packet, attached only when the
	// frame decoded fully. It is a process-local sidecar — never serialized
	// by the emitter's wire format — that lets the stream side skip the
	// re-parse. Receivers must treat it as read-only: in sharded mode it is
	// shared across workers.
	Parsed *packet.Packet
}

// RegDump is one aggregated (key, value) pair reported at window end.
type RegDump struct {
	QID     uint16
	Level   uint8
	Side    Side
	MergeOp int
	KeyVals []tuple.Value
	Val     uint64
}

// WindowStats summarizes one window of switch activity.
type WindowStats struct {
	PacketsIn  uint64
	Mirrored   uint64
	Collisions uint64
	DumpTuples uint64
}

// Merge folds another shard's stats into s. The merge is associative and
// commutative (plain addition per column), which is what makes the sharded
// pipeline's window close order-independent. Note that shards driven via
// ProcessView report PacketsIn = 0 — the parse side owns that count, since
// every shard sees every frame.
func (s *WindowStats) Merge(o WindowStats) {
	s.PacketsIn += o.PacketsIn
	s.Mirrored += o.Mirrored
	s.Collisions += o.Collisions
	s.DumpTuples += o.DumpTuples
}

// dynRuleSet is one immutable generation of a dynamic filter table's
// entries; UpdateDynTable publishes a fresh set through an atomic pointer
// (copy-on-write), so the per-packet lookup takes no lock and never sees a
// half-written table.
type dynRuleSet = map[string]struct{}

// instState is the runtime state of one installed instance.
type instState struct {
	spec  *InstanceSpec
	banks map[int]*RegisterBank // by table index
	// dynRules holds the dynamic filter entry snapshot per table index
	// (parallel to spec.Tables up to CutAt; nil until first populated).
	dynRules []atomic.Pointer[dynRuleSet]
	entry    compile.SPEntry
	// valsScratch, keyScratch and dynScratch are per-packet buffers so the
	// hot path does not allocate; mirrors may alias them (documented:
	// callers must not retain Vals past the callback).
	valsScratch []tuple.Value
	keyScratch  []byte
	dynScratch  []byte
	// fr is the instance's flight-recorder probe (nil when detached; nil
	// probes no-op). frStage[t] is the probe's global stage index for table
	// t's op, or -1 when an earlier table already counted that op (stateful
	// ops lower to a hash-index + state-update table pair). frBase offsets
	// right-side instances into the probe's combined stage space.
	fr      *flightrec.Probe
	frStage []int
	frBase  int
}

// packetView pairs a parsed packet with its raw frame so mirrors can carry
// the original bytes when the stream processor needs them. clean marks a
// fully decoded frame whose parse mirrors may re-use (ErrUnsupportedLayer
// frames still run the pipeline but the emitter treats their embedded
// packets as malformed, so their parse must not be forwarded).
type packetView struct {
	pkt   *packet.Packet
	frame []byte
	clean bool
}

// View is one frame parsed once for fan-out to switch shards. The embedded
// Packet owns its own scratch storage, so a batch of Views can be pooled
// and re-Prepared without allocation; after Prepare the view is read-only
// and safe to share across shard goroutines.
type View struct {
	Pkt   packet.Packet
	Frame []byte
	// Runnable reports whether the telemetry pipeline should see the frame:
	// the parse succeeded, or failed with ErrUnsupportedLayer (the decoded
	// prefix is valid and the frame is forwarded like any other traffic).
	Runnable bool
	clean    bool
}

// Prepare parses frame into the view using p. It mirrors exactly the parse
// decision Process makes inline.
func (v *View) Prepare(p *packet.Parser, frame []byte) {
	v.Frame = frame
	err := p.Parse(frame, &v.Pkt)
	v.clean = err == nil
	v.Runnable = v.clean || errors.Is(err, packet.ErrUnsupportedLayer)
}

// Switch simulates the data plane: packets stream through every installed
// instance's tables; reports leave via the mirror callback; registers dump
// at window boundaries.
type Switch struct {
	cfg     Config
	insts   []*instState
	mirror  func(Mirror)
	stats   WindowStats
	parser  *packet.Parser
	scratch packet.Packet
	// tableUpdates counts dynamic filter entry updates (the refinement
	// overhead micro-benchmark).
	tableUpdates uint64
	// m holds pre-registered telemetry handles; the zero value is the
	// uninstrumented (free) mode.
	m switchMetrics
}

// NewSwitch validates and installs a program. The mirror callback receives
// per-packet reports; it must not retain Vals or Packet beyond the call
// unless it copies them.
func NewSwitch(cfg Config, prog *Program, mirror func(Mirror)) (*Switch, error) {
	if err := prog.Validate(cfg); err != nil {
		return nil, err
	}
	if mirror == nil {
		mirror = func(Mirror) {}
	}
	// The switch parser extracts headers only; deep (DNS/payload) parsing
	// happens at the emitter/stream processor, as in the paper.
	sw := &Switch{cfg: cfg, mirror: mirror, parser: packet.NewParser(packet.ParserOptions{})}
	for _, spec := range prog.Instances {
		st := &instState{spec: spec, banks: make(map[int]*RegisterBank),
			dynRules: make([]atomic.Pointer[dynRuleSet], spec.CutAt)}
		for t := 0; t < spec.CutAt; t++ {
			tab := &spec.Tables[t]
			if tab.Stateful {
				n := spec.RegEntries[t]
				if n <= 0 {
					return nil, fmt.Errorf("pisa: %s table %d: no register entries", spec.Name(), t)
				}
				st.banks[t] = NewRegisterBank(n, cfg.RegisterChains)
			}
		}
		cp := compile.Pipeline{Ops: spec.Ops, Tables: spec.Tables}
		st.entry = cp.EntryFor(spec.CutAt)
		sw.insts = append(sw.insts, st)
	}
	return sw, nil
}

// Config returns the switch's resource configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// UpdateDynTable replaces the dynamic filter entries of the instance's
// table implementing the given dataflow op. Entry keys use the same masked
// encoding as stream.DynKeyFromValue. Returns the number of entries
// written (for the update-overhead accounting).
func (sw *Switch) UpdateDynTable(qid uint16, level uint8, side Side, opIdx int, keys []string) (int, error) {
	for _, st := range sw.insts {
		s := st.spec
		if s.QID != qid || s.Level != level || s.Side != side {
			continue
		}
		for t := 0; t < s.CutAt; t++ {
			if s.Tables[t].Kind == compile.TableDynFilter && s.Tables[t].OpIdx == opIdx {
				set := make(dynRuleSet, len(keys))
				for _, k := range keys {
					set[k] = struct{}{}
				}
				st.dynRules[t].Store(&set)
				sw.tableUpdates += uint64(len(keys))
				sw.m.dynUpdates.Add(uint64(len(keys)))
				return len(keys), nil
			}
		}
		return 0, fmt.Errorf("pisa: %s has no dyn filter for op %d on the switch", s.Name(), opIdx)
	}
	return 0, fmt.Errorf("pisa: no instance q%d/r%d/s%d", qid, level, side)
}

// TableUpdates returns the cumulative count of dynamic filter entries
// written.
func (sw *Switch) TableUpdates() uint64 { return sw.tableUpdates }

// AttachFlightRec wires flight-recorder probes into every installed
// instance: per-table entering-packet counts, collision shunts, mirror
// reports, and register occupancy feed the probe of the instance's
// (qid, level). A nil lookup (or a lookup returning nil) detaches.
func (sw *Switch) AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe) {
	for _, st := range sw.insts {
		spec := st.spec
		st.fr, st.frStage, st.frBase = nil, nil, 0
		if lookup == nil {
			continue
		}
		p := lookup(spec.QID, spec.Level)
		if p == nil {
			continue
		}
		st.fr = p
		if spec.Side == SideRight {
			st.frBase = p.RightBase()
		}
		// A stateful op lowers to two tables (hash-index + state-update);
		// count its entering packets at the first table only.
		st.frStage = make([]int, spec.CutAt)
		seen := make(map[int]bool, spec.CutAt)
		for t := 0; t < spec.CutAt; t++ {
			op := spec.Tables[t].OpIdx
			if seen[op] {
				st.frStage[t] = -1
				continue
			}
			seen[op] = true
			st.frStage[t] = st.frBase + op
		}
		for _, bank := range st.banks {
			p.AddRegCapacity(uint64(bank.Capacity()))
		}
	}
}

// Process parses one frame and runs it through every installed instance.
// The packet is forwarded unmodified (Sonata only touches metadata); the
// return value is the number of mirror reports generated. Malformed frames
// are forwarded without telemetry processing, like any non-matching
// traffic.
func (sw *Switch) Process(frame []byte) int {
	sw.stats.PacketsIn++
	sw.m.packets.Inc()
	err := sw.parser.Parse(frame, &sw.scratch)
	if err != nil && !errors.Is(err, packet.ErrUnsupportedLayer) {
		return 0
	}
	view := packetView{pkt: &sw.scratch, frame: frame, clean: err == nil}
	reports := 0
	for _, st := range sw.insts {
		if sw.processInstance(st, &view) {
			reports++
		}
	}
	return reports
}

// ProcessView runs an already-parsed frame through every installed
// instance — the sharded fan-out path, where one parse is shared by all
// shards. It does not count PacketsIn (every shard sees every frame; the
// parse side owns that count) and skips non-Runnable views' processing the
// same way Process drops hard parse errors.
func (sw *Switch) ProcessView(v *View) int {
	if !v.Runnable {
		return 0
	}
	view := packetView{pkt: &v.Pkt, frame: v.Frame, clean: v.clean}
	reports := 0
	for _, st := range sw.insts {
		if sw.processInstance(st, &view) {
			reports++
		}
	}
	return reports
}

// processInstance walks one instance's switch-side tables. It returns true
// if a mirror report was emitted.
func (sw *Switch) processInstance(st *instState, pkt *packetView) bool {
	spec := st.spec
	if spec.CutAt == 0 {
		// Nothing on the switch: mirror every packet (the All-SP plan).
		m := Mirror{QID: spec.QID, Level: spec.Level, Side: spec.Side,
			EntryOp: 0, Packet: pkt.frame}
		if pkt.clean {
			m.Parsed = pkt.pkt
		}
		sw.emit(st, m)
		return true
	}

	var vals []tuple.Value // metadata tuple once past the first map
	inTuplePhase := false

	for t := 0; t < spec.CutAt; t++ {
		tab := &spec.Tables[t]
		o := &spec.Ops[tab.OpIdx]
		if st.fr != nil && st.frStage[t] >= 0 {
			st.fr.OpSwitch(st.frStage[t])
		}
		switch tab.Kind {
		case compile.TableFilter:
			if inTuplePhase {
				for i := range o.Clauses {
					if !o.Clauses[i].MatchTuple(vals) {
						return false
					}
				}
			} else {
				for i := range o.Clauses {
					if !o.Clauses[i].MatchPacket(pkt.pkt) {
						return false
					}
				}
			}
		case compile.TableDynFilter:
			rp := st.dynRules[t].Load()
			if rp == nil || len(*rp) == 0 {
				return false // not yet populated: finer level idle
			}
			v, ok := pkt.pkt.Field(o.DynKeyField)
			if !ok {
				return false
			}
			// Build the masked key into the per-instance scratch; the map
			// index's string conversion does not escape, so the lookup is
			// allocation-free.
			st.dynScratch = stream.AppendDynKey(st.dynScratch[:0], o.DynKeyField, v, o.DynLevel)
			if _, ok := (*rp)[string(st.dynScratch)]; !ok {
				return false
			}
		case compile.TableMap:
			out := st.valsScratch[:0]
			if cap(out) < len(o.Cols) {
				out = make([]tuple.Value, 0, 8)
			}
			if inTuplePhase {
				// Tuple-phase maps may read vals while writing out; vals
				// currently aliases the scratch only before the first map,
				// so a fresh slice is needed when re-mapping.
				fresh := make([]tuple.Value, len(o.Cols))
				for i := range o.Cols {
					fresh[i] = o.Cols[i].Expr.EvalTuple(vals)
				}
				vals = fresh
			} else {
				for i := range o.Cols {
					v, ok := o.Cols[i].Expr.EvalPacket(pkt.pkt)
					if !ok {
						return false
					}
					out = append(out, v)
				}
				st.valsScratch = out[:0]
				vals = out
			}
			inTuplePhase = true
		case compile.TableHashIndex:
			// Index computation is folded into the bank update below.
		case compile.TableStateUpdate:
			bank := st.banks[t]
			st.keyScratch = tuple.AppendKey(st.keyScratch[:0], vals, o.KeyCols)
			key := st.keyScratch
			var inc uint64 = 1
			if o.Kind == query.OpReduce {
				inc = vals[o.ValCol].U
			}
			newVal, newKey, ok := bank.Update(key, vals, o.KeyCols, inc, statefulFunc(o))
			if !ok {
				// Collision overflow: shunt to the stream processor, which
				// executes the stateful op itself for this packet.
				sw.stats.Collisions++
				sw.m.collisions.Inc()
				st.fr.Collision()
				m := Mirror{QID: spec.QID, Level: spec.Level, Side: spec.Side,
					Overflow: true, MergeOp: tab.OpIdx, Vals: vals}
				if spec.NeedsPacket {
					m.Packet = pkt.frame
					if pkt.clean {
						m.Parsed = pkt.pkt
					}
				}
				sw.emit(st, m)
				return true
			}
			last := t == spec.CutAt-1
			if last {
				// One report per key via the end-of-window register dump;
				// nothing per packet.
				return false
			}
			// Mid-pipeline stateful table: distinct passes first
			// occurrences through; reduce carries the running aggregate.
			if o.Kind == query.OpDistinct {
				if !newKey {
					return false
				}
				vals = pickIdx(vals, o.KeyCols)
			} else {
				next := make([]tuple.Value, 0, len(o.KeyCols)+1)
				for _, j := range o.KeyCols {
					next = append(next, vals[j])
				}
				next = append(next, tuple.U64(newVal))
				vals = next
			}
			if m := tab.MergedFilterOp; m >= 0 {
				if st.fr != nil {
					st.fr.OpSwitch(st.frBase + m)
				}
				mo := &spec.Ops[m]
				for i := range mo.Clauses {
					if !mo.Clauses[i].MatchTuple(vals) {
						return false
					}
				}
			}
		}
	}

	// Survived every switch table with a stateless tail: report.
	m := Mirror{QID: spec.QID, Level: spec.Level, Side: spec.Side,
		EntryOp: st.entry.StartOp}
	if inTuplePhase {
		m.Vals = vals
	}
	if !inTuplePhase || spec.NeedsPacket {
		m.Packet = pkt.frame
		if pkt.clean {
			m.Parsed = pkt.pkt
		}
	}
	sw.emit(st, m)
	return true
}

func (sw *Switch) emit(st *instState, m Mirror) {
	sw.stats.Mirrored++
	sw.m.mirrored.Inc()
	st.fr.Mirror()
	sw.mirror(m)
}

// statefulFunc returns the aggregation a stateful op applies on the switch.
func statefulFunc(o *query.Op) query.AggFunc {
	if o.Kind == query.OpDistinct {
		return query.AggBitOr
	}
	return o.Func
}

// EndWindow dumps and resets every register bank, returning the aggregated
// tuples (filtered by any merged threshold) and the closing window's stats.
func (sw *Switch) EndWindow() ([]RegDump, WindowStats) {
	// Occupancy peaks at the window boundary; sample it before the reset.
	sw.m.regUsed.Set(sw.registerOccupancy())
	var dumps []RegDump
	for _, st := range sw.insts {
		spec := st.spec
		for t := 0; t < spec.CutAt; t++ {
			bank := st.banks[t]
			if bank == nil {
				continue
			}
			tab := &spec.Tables[t]
			last := t == spec.CutAt-1
			if last {
				for _, e := range bank.Dump() {
					if m := tab.MergedFilterOp; m >= 0 {
						if st.fr != nil {
							st.fr.OpSwitch(st.frBase + m)
						}
						if !dumpPasses(&spec.Ops[m], e) {
							continue
						}
					}
					st.fr.DumpTuple()
					dumps = append(dumps, RegDump{QID: spec.QID, Level: spec.Level,
						Side: spec.Side, MergeOp: tab.OpIdx, KeyVals: e.KeyVals, Val: e.Val})
				}
			}
			st.fr.RegOccupied(uint64(bank.Stored()))
			bank.Reset()
		}
	}
	sw.stats.DumpTuples = uint64(len(dumps))
	sw.m.dumpTuples.Add(sw.stats.DumpTuples)
	stats := sw.stats
	sw.stats = WindowStats{}
	return dumps, stats
}

// dumpPasses applies a merged threshold filter to a dump entry. The filter
// compares the aggregate column, which sits after the keys.
func dumpPasses(o *query.Op, e DumpEntry) bool {
	vals := make([]tuple.Value, 0, len(e.KeyVals)+1)
	vals = append(vals, e.KeyVals...)
	vals = append(vals, tuple.U64(e.Val))
	for i := range o.Clauses {
		if !o.Clauses[i].MatchTuple(vals) {
			return false
		}
	}
	return true
}

func pickIdx(vals []tuple.Value, idx []int) []tuple.Value {
	out := make([]tuple.Value, len(idx))
	for i, j := range idx {
		out[i] = vals[j]
	}
	return out
}
