package pisa

import (
	"math/bits"

	"repro/internal/keytab"
	"repro/internal/query"
	"repro/internal/tuple"
)

// bankSlot is one register entry. PISA registers are value arrays; Sonata
// stores the key alongside the value to detect hash collisions
// (Section 3.1.3). The slot holds only an epoch stamp and an index into the
// bank's flat key store: key bytes live in one arena and the decoded key
// columns in parallel slices, so the per-packet probe path never allocates
// and the per-window reset never frees.
type bankSlot struct {
	epoch uint32
	idx   int32
}

// RegisterBank models the sequence of d hash-indexed registers backing one
// stateful operator: a key probes each register in order with an
// independent hash; it is stored in the first register whose slot is empty
// or already holds it; if all d slots collide, the update fails and the
// packet must be shunted to the stream processor.
type RegisterBank struct {
	entries int
	chains  [][]bankSlot
	seeds   []uint64
	// store holds each stored key's bytes, decoded key columns, and running
	// aggregate in insertion order — the flat side table the end-of-window
	// dump walks.
	store keytab.Store
	// epoch stamps live slots; Reset bumps it, emptying every chain in O(1).
	epoch uint32
	// collisions counts failed updates this window.
	collisions uint64
}

// NewRegisterBank allocates d chains of n slots each.
func NewRegisterBank(n, d int) *RegisterBank {
	if n <= 0 || d <= 0 {
		panic("pisa: register bank must have positive entries and chains")
	}
	b := &RegisterBank{entries: n, chains: make([][]bankSlot, d), seeds: make([]uint64, d),
		epoch: 1}
	for i := range b.chains {
		b.chains[i] = make([]bankSlot, n)
		// Distinct deterministic seeds per chain.
		b.seeds[i] = 0x9E3779B97F4A7C15 * uint64(i+1)
	}
	return b
}

// mix64 is a murmur-style avalanche. Each register chain derives its
// independent index from one shared key hash (tuple.Hash64) mixed with the
// chain's seed — hashing the key bytes once per update instead of once per
// chain, which matters because every packet reaching a stateful table pays
// this cost d times otherwise.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fastRange maps a full-width hash uniformly onto [0, n) with one multiply
// (Lemire's fast alternative to modulo) — the per-chain slot index runs for
// every packet reaching a stateful table, where a hardware divide is
// measurable.
func fastRange(h uint64, n int) uint64 {
	hi, _ := bits.Mul64(h, uint64(n))
	return hi
}

// hashVals hashes the selected key columns directly — an FNV-1a-style fold
// over each value's content — skipping the byte encoding the bank's store
// used to key on. Hash quality affects only the collision (shunt) rate,
// never correctness: Update compares full key columns on every hit.
func hashVals(vals []tuple.Value, keyIdx []int) uint64 {
	h := uint64(14695981039346656037)
	for _, i := range keyIdx {
		v := &vals[i]
		if v.Str {
			h = (h ^ uint64(len(v.S))) * 1099511628211
			for j := 0; j < len(v.S); j++ {
				h = (h ^ uint64(v.S[j])) * 1099511628211
			}
		} else {
			h = (h ^ v.U) * 1099511628211
		}
	}
	return h
}

// equalEntry reports whether stored entry i's key columns equal
// vals[keyIdx...].
func (b *RegisterBank) equalEntry(i int, vals []tuple.Value, keyIdx []int) bool {
	kv := b.store.KeyVals(i)
	if len(kv) != len(keyIdx) {
		return false
	}
	for j, c := range keyIdx {
		if !kv[j].Equal(vals[c]) {
			return false
		}
	}
	return true
}

// Update folds v into the slot keyed by vals[keyIdx...] using fn. The
// boolean reports success; on failure (all d chains collide) the caller
// shunts the packet to the stream processor. newKey reports first-touch of
// the key this window — the signal used for one-packet-per-key reporting.
// The key is hashed and compared as values, never encoded to bytes: the
// per-packet register probe is the hottest loop in the switch model, and
// every consumer of bank state (dumps, mirrors) wants the columns anyway.
func (b *RegisterBank) Update(vals []tuple.Value, keyIdx []int, v uint64, fn query.AggFunc) (newVal uint64, newKey, ok bool) {
	base := hashVals(vals, keyIdx)
	for c := range b.chains {
		idx := fastRange(mix64(base^b.seeds[c]), b.entries)
		slot := &b.chains[c][idx]
		if slot.epoch != b.epoch {
			// Key columns are copied into the flat store only on first
			// insert, keeping the steady-state probe allocation-free.
			slot.idx = int32(b.store.Append(nil, vals, keyIdx, v))
			slot.epoch = b.epoch
			return v, true, true
		}
		if b.equalEntry(int(slot.idx), vals, keyIdx) {
			nv := fn.Apply(b.store.Agg(int(slot.idx)), v)
			b.store.SetAgg(int(slot.idx), nv)
			return nv, false, true
		}
	}
	b.collisions++
	return 0, false, false
}

// Lookup returns the current value for the key vals[keyIdx...], if stored.
func (b *RegisterBank) Lookup(vals []tuple.Value, keyIdx []int) (uint64, bool) {
	base := hashVals(vals, keyIdx)
	for c := range b.chains {
		idx := fastRange(mix64(base^b.seeds[c]), b.entries)
		slot := &b.chains[c][idx]
		if slot.epoch == b.epoch && b.equalEntry(int(slot.idx), vals, keyIdx) {
			return b.store.Agg(int(slot.idx)), true
		}
	}
	return 0, false
}

// Dump returns every stored (key columns, value) pair — the end-of-window
// register poll — in key insertion order (deterministic, unlike the map
// iteration it replaces). The returned KeyVals alias the bank's storage:
// they stay valid through Reset but are overwritten once the next window's
// first keys arrive, so callers consume or copy them before feeding new
// traffic — exactly the runtime's window-close sequence. The per-window
// dump path iterates Entry directly instead, avoiding this allocation.
func (b *RegisterBank) Dump() []DumpEntry {
	out := make([]DumpEntry, b.store.Len())
	for i := range out {
		out[i] = b.Entry(i)
	}
	return out
}

// Entry returns the i-th stored (key columns, value) pair in insertion
// order, 0 <= i < Stored(). KeyVals alias the bank's storage with the same
// lifetime rules as Dump.
func (b *RegisterBank) Entry(i int) DumpEntry {
	return DumpEntry{KeyVals: b.store.KeyVals(i), Val: b.store.Agg(i)}
}

// Reset clears all slots for the next window and returns the collision
// count of the closing window. The clear is an epoch bump plus slice
// truncation: no slot memory is freed or zeroed (except once every 2^32
// windows when the epoch wraps).
func (b *RegisterBank) Reset() uint64 {
	b.store.Reset()
	b.epoch++
	if b.epoch == 0 {
		for c := range b.chains {
			for i := range b.chains[c] {
				b.chains[c][i] = bankSlot{}
			}
		}
		b.epoch = 1
	}
	col := b.collisions
	b.collisions = 0
	return col
}

// Stored returns the number of keys currently held.
func (b *RegisterBank) Stored() int { return b.store.Len() }

// Capacity returns the total slot count across all chains.
func (b *RegisterBank) Capacity() int { return b.entries * len(b.chains) }

// Collisions returns the number of failed updates this window.
func (b *RegisterBank) Collisions() uint64 { return b.collisions }

// Bits returns the bank's register memory footprint for slots of the given
// key and value widths.
func (b *RegisterBank) Bits(keyBits, valBits int) int64 {
	return int64(len(b.chains)) * int64(b.entries) * int64(keyBits+valBits)
}

// DumpEntry is one (key, aggregate) pair read from the registers.
type DumpEntry struct {
	KeyVals []tuple.Value
	Val     uint64
}

// RegisterBits is the planner's sizing formula for a stateful operator:
// d chains of n slots, each slot holding key and value.
func RegisterBits(n, d, keyBits, valBits int) int64 {
	return int64(d) * int64(n) * int64(keyBits+valBits)
}

// EntriesFor picks the register size n for an expected key count,
// applying headroom and rounding to a power of two, mirroring how the
// planner configures registers from training data. A floor of 256 slots
// keeps operators whose traffic class was absent from training (zero
// expected keys) from collapsing into immediate collisions when the
// workload shifts — the paper sizes registers "to keep collision rates low
// but still high enough to send a signal" (Section 3.3).
func EntriesFor(expectedKeys uint64) int {
	n := 256
	target := expectedKeys + expectedKeys/2 + 16 // 1.5x headroom
	for uint64(n) < target {
		n <<= 1
	}
	return n
}
