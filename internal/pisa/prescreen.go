package pisa

import "repro/internal/query"

// Prescreen owns the program-wide set of distinct static leading-filter
// clauses ("atoms") that gate instance entry. A switch built with
// NewSwitchShared interns its instances' leading clauses here instead of in
// a private table, so several switches — the runtime's worker shards —
// share one atom space. The dispatch side then evaluates every atom exactly
// once per view batch (Eval) and ships the bitmaps with the batch; each
// shard only ANDs the masks its own instances reference. Without sharing,
// every shard re-evaluates every atom over every frame, multiplying the
// prescreen cost by the worker count.
//
// A Prescreen is built single-threaded (switch construction) and read-only
// afterwards; Eval writes only into the caller-owned PrescreenMasks.
type Prescreen struct {
	atoms  []query.Clause
	atomOf map[query.Clause]int
	active bool
}

// NewPrescreen returns an empty shared atom space.
func NewPrescreen() *Prescreen {
	return &Prescreen{atomOf: make(map[query.Clause]int)}
}

// intern returns the atom index for cl, adding it if unseen. Instances
// installed at several refinement levels share their entry filters, so the
// program-wide dedup is what buys the win.
func (ps *Prescreen) intern(cl query.Clause) int {
	idx, ok := ps.atomOf[cl]
	if !ok {
		idx = len(ps.atoms)
		ps.atomOf[cl] = idx
		ps.atoms = append(ps.atoms, cl)
	}
	return idx
}

// Active reports whether any registered switch has a screenable instance
// prefix — i.e. whether Eval would do useful work for a batch.
func (ps *Prescreen) Active() bool { return ps != nil && ps.active }

// PrescreenMasks is the per-batch bitmap set a dispatch side computes once
// and ships read-only to every shard: the runnable bitmap plus one
// selection bitmap per atom. Storage is reused across batches and grows
// monotonically, so a pooled batch carrying its masks allocates nothing in
// steady state.
type PrescreenMasks struct {
	words    int
	runnable []uint64
	atoms    [][]uint64
}

// Eval fills m with the runnable bitmap and one bitmap per atom over vs:
// bit i of an atom's mask is set when view i is runnable and matches the
// clause. After Eval the masks are read-only until the next Eval, so any
// number of shards may consult them concurrently.
func (ps *Prescreen) Eval(vs []View, m *PrescreenMasks) {
	words := (len(vs) + 63) >> 6
	m.words = words
	if cap(m.runnable) < words {
		m.runnable = make([]uint64, words)
	}
	if len(m.atoms) < len(ps.atoms) {
		grown := make([][]uint64, len(ps.atoms))
		copy(grown, m.atoms)
		m.atoms = grown
	}
	run := m.runnable[:words]
	for w := range run {
		run[w] = 0
	}
	for i := range vs {
		if vs[i].Runnable {
			run[i>>6] |= 1 << uint(i&63)
		}
	}
	m.runnable = run
	for a := range ps.atoms {
		cl := &ps.atoms[a]
		if cap(m.atoms[a]) < words {
			m.atoms[a] = make([]uint64, words)
		}
		mask := m.atoms[a][:words]
		for w := range mask {
			mask[w] = 0
		}
		for i := range vs {
			v := &vs[i]
			if v.Runnable && cl.MatchPacket(&v.Pkt) {
				mask[i>>6] |= 1 << uint(i&63)
			}
		}
		m.atoms[a] = mask
	}
}
