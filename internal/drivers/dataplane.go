// Package drivers implements Sonata's target drivers (Section 5): the
// data-plane driver that fronts a PISA switch over the control-plane
// protocol, and the streaming driver that installs partitioned queries into
// the stream engine. Each driver has a server half (co-located with its
// target) and a client half (used by the runtime), connected by any
// net.Conn. The packet fast path never crosses the control channel, exactly
// as in the paper's architecture.
package drivers

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/netproto"
	"repro/internal/pisa"
	"repro/internal/telemetry"
)

// DataPlaneServer owns a switch and serves control operations for it.
type DataPlaneServer struct {
	cfg pisa.Config

	mu     sync.Mutex
	sw     *pisa.Switch
	mirror func(pisa.Mirror)
}

// NewDataPlaneServer prepares a server for a switch with the given
// constraints. The mirror callback receives the monitoring-port records of
// whatever program is installed.
func NewDataPlaneServer(cfg pisa.Config, mirror func(pisa.Mirror)) *DataPlaneServer {
	return &DataPlaneServer{cfg: cfg, mirror: mirror}
}

// Process feeds one frame to the installed program (local fast path). It
// returns 0 until a program is installed.
func (s *DataPlaneServer) Process(frame []byte) int {
	s.mu.Lock()
	sw := s.sw
	s.mu.Unlock()
	if sw == nil {
		return 0
	}
	return sw.Process(frame)
}

// Serve handles one control connection until it closes or fails. Protocol
// errors are reported to the peer where possible.
func (s *DataPlaneServer) Serve(conn io.ReadWriter) error {
	c := netproto.NewConn(conn)
	var hello netproto.Hello
	if err := c.Expect(netproto.MsgHello, &hello); err != nil {
		return err
	}
	if hello.Version != netproto.ProtocolVersion {
		c.SendError(fmt.Errorf("protocol version %d unsupported", hello.Version))
		return fmt.Errorf("drivers: client protocol version %d", hello.Version)
	}
	if err := c.Send(netproto.MsgCapabilities, &s.cfg); err != nil {
		return err
	}
	for {
		t, body, err := c.RecvRaw()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.handle(c, t, body); err != nil {
			return err
		}
	}
}

func (s *DataPlaneServer) handle(c *netproto.Conn, t netproto.MsgType, body []byte) error {
	switch t {
	case netproto.MsgInstall:
		var prog pisa.Program
		if err := netproto.Decode(body, &prog); err != nil {
			return c.SendError(fmt.Errorf("decoding program: %w", err))
		}
		sw, err := pisa.NewSwitch(s.cfg, &prog, s.mirror)
		if err != nil {
			return c.SendError(err)
		}
		s.mu.Lock()
		s.sw = sw
		s.mu.Unlock()
		return c.Send(netproto.MsgInstallOK, nil)

	case netproto.MsgUpdateTable:
		var upd netproto.UpdateTable
		if err := netproto.Decode(body, &upd); err != nil {
			return c.SendError(fmt.Errorf("decoding update: %w", err))
		}
		s.mu.Lock()
		sw := s.sw
		s.mu.Unlock()
		if sw == nil {
			return c.SendError(fmt.Errorf("no program installed"))
		}
		n, err := sw.UpdateDynTable(upd.QID, upd.Level, upd.Side, upd.OpIdx, upd.Keys)
		if err != nil {
			return c.SendError(err)
		}
		return c.Send(netproto.MsgUpdateOK, &netproto.UpdateResult{Entries: n})

	case netproto.MsgEndWindow:
		s.mu.Lock()
		sw := s.sw
		s.mu.Unlock()
		if sw == nil {
			return c.SendError(fmt.Errorf("no program installed"))
		}
		dumps, stats := sw.EndWindow()
		return c.Send(netproto.MsgWindowData, &netproto.WindowData{Dumps: dumps, Stats: stats})

	default:
		return c.SendError(fmt.Errorf("unexpected message %v", t))
	}
}

// ListenAndServe accepts control connections on l, serving each serially
// (the runtime opens exactly one).
func (s *DataPlaneServer) ListenAndServe(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		err = s.Serve(conn)
		conn.Close()
		if err != nil && !errors.Is(err, io.EOF) {
			return err
		}
	}
}

// DataPlaneClient is the runtime's handle to a remote switch.
type DataPlaneClient struct {
	c   *netproto.Conn
	cfg pisa.Config
}

// DialDataPlane performs the hello handshake over conn and returns the
// client plus the switch's advertised constraints — the runtime "polls the
// data-plane driver ... to determine the values of the data-plane
// constraints" (Section 5).
func DialDataPlane(conn io.ReadWriter) (*DataPlaneClient, error) {
	c := netproto.NewConn(conn)
	if err := c.Send(netproto.MsgHello, &netproto.Hello{Version: netproto.ProtocolVersion}); err != nil {
		return nil, err
	}
	var cfg pisa.Config
	if err := c.Expect(netproto.MsgCapabilities, &cfg); err != nil {
		return nil, err
	}
	return &DataPlaneClient{c: c, cfg: cfg}, nil
}

// Capabilities returns the switch constraints learned at handshake.
func (d *DataPlaneClient) Capabilities() pisa.Config { return d.cfg }

// Instrument registers the client's control-channel metrics (frames,
// bytes, and per-request round-trip time) against reg.
func (d *DataPlaneClient) Instrument(reg *telemetry.Registry) { d.c.Instrument(reg) }

// Install ships a program to the switch.
func (d *DataPlaneClient) Install(prog *pisa.Program) error {
	return d.c.Call(netproto.MsgInstall, prog, netproto.MsgInstallOK, nil)
}

// UpdateDynTable replaces a dynamic filter's entries.
func (d *DataPlaneClient) UpdateDynTable(qid uint16, level uint8, side pisa.Side, opIdx int, keys []string) (int, error) {
	var res netproto.UpdateResult
	err := d.c.Call(netproto.MsgUpdateTable, &netproto.UpdateTable{
		QID: qid, Level: level, Side: side, OpIdx: opIdx, Keys: keys},
		netproto.MsgUpdateOK, &res)
	if err != nil {
		return 0, err
	}
	return res.Entries, nil
}

// EndWindow closes the switch window and returns dumps and stats.
func (d *DataPlaneClient) EndWindow() ([]pisa.RegDump, pisa.WindowStats, error) {
	var wd netproto.WindowData
	if err := d.c.Call(netproto.MsgEndWindow, nil, netproto.MsgWindowData, &wd); err != nil {
		return nil, pisa.WindowStats{}, err
	}
	return wd.Dumps, wd.Stats, nil
}
