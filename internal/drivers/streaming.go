package drivers

import (
	"fmt"

	"repro/internal/planner"
	"repro/internal/stream"
)

// StreamingDriver installs a planner's output into a stream engine — the
// role of the paper's Spark Streaming driver: translate the partitioned,
// refined queries into the target's native jobs.
type StreamingDriver struct {
	engine *stream.Engine
}

// NewStreamingDriver wraps an engine.
func NewStreamingDriver(engine *stream.Engine) *StreamingDriver {
	return &StreamingDriver{engine: engine}
}

// InstallPlan installs every (query, level) instance of the plan with its
// partition points.
func (d *StreamingDriver) InstallPlan(plan *planner.Plan) error {
	for _, qp := range plan.Queries {
		for _, lp := range qp.Levels {
			part := stream.Partition{LeftStart: lp.Left.Pipe.EntryFor(lp.Left.Cut).StartOp}
			if lp.Right != nil {
				part.RightStart = lp.Right.Pipe.EntryFor(lp.Right.Cut).StartOp
			}
			if err := d.engine.Install(lp.Aug, uint8(lp.Level), part); err != nil {
				return fmt.Errorf("drivers: installing q%d level %d: %w", qp.Query.ID, lp.Level, err)
			}
		}
	}
	return nil
}

// Engine exposes the wrapped engine.
func (d *StreamingDriver) Engine() *stream.Engine { return d.engine }
