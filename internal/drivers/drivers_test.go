package drivers

import (
	"net"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/fields"
	"repro/internal/netproto"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

func testQuery() *query.Query {
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 2)).
		MustBuild()
	q.ID = 1
	return q
}

func testProgram(q *query.Query) *pisa.Program {
	cp := compile.CompilePipeline(q.Left.Ops)
	spec := &pisa.InstanceSpec{QID: q.ID, Ops: q.Left.Ops, Tables: cp.Tables,
		CutAt: len(cp.Tables), StageOf: []int{0, 1, 2, 3},
		RegEntries: []int{0, 0, 0, 1024}}
	return &pisa.Program{Instances: []*pisa.InstanceSpec{spec}}
}

func TestDataPlaneDriverEndToEnd(t *testing.T) {
	var mirrors []pisa.Mirror
	srv := NewDataPlaneServer(pisa.DefaultConfig(), func(m pisa.Mirror) {
		mirrors = append(mirrors, m)
	})

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(server) }()

	dp, err := DialDataPlane(client)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Capabilities().Stages != pisa.DefaultConfig().Stages {
		t.Errorf("capabilities = %+v", dp.Capabilities())
	}

	q := testQuery()
	if err := dp.Install(testProgram(q)); err != nil {
		t.Fatalf("Install: %v", err)
	}

	// The fast path stays server-local: feed SYNs to one victim.
	victim := packet.IPv4Addr(9, 9, 9, 9)
	for i := 0; i < 5; i++ {
		frame := packet.BuildFrame(nil, &packet.FrameSpec{
			SrcIP: uint32(i + 1), DstIP: victim, Proto: 6,
			TCPFlags: fields.FlagSYN, DstPort: 80, Pad: 60})
		srv.Process(frame)
	}

	dumps, stats, err := dp.EndWindow()
	if err != nil {
		t.Fatalf("EndWindow: %v", err)
	}
	if stats.PacketsIn != 5 {
		t.Errorf("stats = %+v", stats)
	}
	if len(dumps) != 1 || dumps[0].KeyVals[0].U != uint64(victim) || dumps[0].Val != 5 {
		t.Fatalf("dumps = %+v", dumps)
	}

	// Dynamic table update flows through: the program has no dyn filter, so
	// a well-formed error must come back, not a hang or disconnect.
	if _, err := dp.UpdateDynTable(1, 0, pisa.SideLeft, 0, []string{"k"}); err == nil {
		t.Error("update on missing dyn table succeeded")
	}

	client.Close()
	if err := <-done; err != nil {
		t.Errorf("server exited with %v", err)
	}
	_ = mirrors
}

func TestDataPlaneRejectsBadVersion(t *testing.T) {
	srv := NewDataPlaneServer(pisa.DefaultConfig(), nil)
	client, server := net.Pipe()
	go srv.Serve(server)
	defer client.Close()

	c := netproto.NewConn(client)
	if err := c.Send(netproto.MsgHello, &netproto.Hello{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(nil); err == nil {
		t.Error("bad version accepted")
	}
}

func TestStreamingDriverInstalls(t *testing.T) {
	engine := stream.NewEngine(nil)
	d := NewStreamingDriver(engine)
	// A minimal hand-built plan: reuse planner types indirectly through a
	// runtime-level test would pull in training; instead install directly.
	q := testQuery()
	if err := engine.Install(q, 0, stream.Partition{}); err != nil {
		t.Fatal(err)
	}
	if got := len(engine.Installed()); got != 1 {
		t.Fatalf("installed = %d", got)
	}
	if d.Engine() != engine {
		t.Error("driver lost its engine")
	}
}

func TestGobRoundTripPreservesOpInternals(t *testing.T) {
	// The program crosses the wire by gob; unexported Op fields (schemas,
	// phase) must survive, or the remote switch would misinterpret every
	// pipeline.
	q := testQuery()
	prog := testProgram(q)

	var mirrors int
	srv := NewDataPlaneServer(pisa.DefaultConfig(), func(pisa.Mirror) { mirrors++ })
	client, server := net.Pipe()
	go srv.Serve(server)
	defer client.Close()
	dp, err := DialDataPlane(client)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Install(prog); err != nil {
		t.Fatal(err)
	}
	// A non-SYN packet must be dropped by the decoded filter: if packet
	// phase was lost in transit the switch would panic or misroute.
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 2, Proto: 6, TCPFlags: fields.FlagACK, Pad: 60})
	srv.Process(frame)
	dumps, stats, err := dp.EndWindow()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PacketsIn != 1 || len(dumps) != 0 {
		t.Errorf("stats=%+v dumps=%d", stats, len(dumps))
	}
	_ = tuple.Value{}
}
