package netwide

import (
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/trace"
)

func q1(th uint64) *query.Query {
	q := query.NewBuilder("newly_opened_tcp_conns", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, th)).
		MustBuild()
	q.ID = 1
	return q
}

func buildPlan(t *testing.T, g *trace.Generator, th uint64) *planner.Plan {
	t.Helper()
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		w := g.WindowRecords(i)
		f := make(planner.Frames, len(w.Records))
		for j, r := range w.Records {
			f[j] = r.Data
		}
		train = append(train, f)
	}
	tr, err := planner.Train([]*query.Query{q1(th)}, []int{8, 16}, train)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.PlanQueries(tr, []*query.Query{q1(th)}, pisa.DefaultConfig(), planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// shard routes a frame to a vantage point by source address, splitting any
// one attack's traffic across the fabric.
func shard(frame []byte, n int) int {
	var pkt packet.Packet
	if err := packet.NewParser(packet.ParserOptions{}).Parse(frame, &pkt); err != nil {
		return 0
	}
	return int(pkt.IPv4.Src) % n
}

// TestFabricDetectsSplitHeavyHitter is the headline network-wide property:
// a flood whose sources are spread over vantage points stays below the
// threshold at every single switch but crosses it once merged.
func TestFabricDetectsSplitHeavyHitter(t *testing.T) {
	const nSwitches = 4
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 4_000
	cfg.Windows = 4
	cfg.Hosts = 500
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 600 SYNs per window from many sources: ~150 per switch after
	// sharding, threshold 400 — invisible to any single vantage point.
	g.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 256, 600, 0, g.Duration()))
	plan := buildPlan(t, g, 400)

	fabric, err := New(plan, pisa.DefaultConfig(), nSwitches)
	if err != nil {
		t.Fatal(err)
	}
	if fabric.Size() != nSwitches {
		t.Fatalf("size = %d", fabric.Size())
	}
	detected := false
	for w := 2; w < g.Windows(); w++ {
		for _, r := range g.WindowRecords(w).Records {
			fabric.Process(shard(r.Data, nSwitches), r.Data)
		}
		rep := fabric.CloseWindow()
		if len(rep.PerSwitch) != nSwitches {
			t.Fatalf("per-switch stats = %d", len(rep.PerSwitch))
		}
		for _, res := range rep.Results {
			for _, tup := range res.Tuples {
				if tup[0].U == uint64(trace.StandardVictim) {
					detected = true
					if tup[1].U < 400 {
						t.Errorf("merged count %d below threshold", tup[1].U)
					}
				}
			}
		}
	}
	if !detected {
		t.Fatal("split heavy hitter not detected by the fabric")
	}

	// Control: a single switch seeing only one shard must NOT detect.
	single, err := New(plan, pisa.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for w := 2; w < g.Windows(); w++ {
		for _, r := range g.WindowRecords(w).Records {
			if shard(r.Data, nSwitches) == 0 {
				single.Process(0, r.Data)
			}
		}
		rep := single.CloseWindow()
		for _, res := range rep.Results {
			for _, tup := range res.Tuples {
				if tup[0].U == uint64(trace.StandardVictim) {
					t.Error("single shard should not cross the threshold")
				}
			}
		}
	}
}

func TestFabricRefinementFansOut(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 4_000
	cfg.Windows = 5
	cfg.Hosts = 500
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 64, 600, 0, g.Duration()))
	plan := buildPlan(t, g, 300)

	// Force a refined plan so updates actually occur; skip if the planner
	// legitimately chose a single level for this workload.
	refined := false
	for _, qp := range plan.Queries {
		if qp.Delay() > 1 {
			refined = true
		}
	}
	fabric, err := New(plan, pisa.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	updates := 0
	for w := 2; w < g.Windows(); w++ {
		for _, r := range g.WindowRecords(w).Records {
			fabric.Process(shard(r.Data, 3), r.Data)
		}
		rep := fabric.CloseWindow()
		updates += rep.FilterUpdates
	}
	if refined && updates == 0 {
		t.Error("refined plan produced no fan-out updates")
	}
}

func TestFabricValidation(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 2_000
	cfg.Windows = 3
	cfg.Hosts = 200
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := buildPlan(t, g, 100)
	if _, err := New(plan, pisa.DefaultConfig(), 0); err == nil {
		t.Error("zero-switch fabric accepted")
	}
}
