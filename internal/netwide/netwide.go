// Package netwide implements the network-wide extension the paper names as
// future work (Section 8, citing the authors' follow-on SOSR'18 paper on
// network-wide heavy hitter detection): the same partitioned, refined query
// plan runs on several switches — border routers, IXP ports — and the
// stream processor merges their partial aggregates, so a heavy hitter whose
// traffic is split across vantage points is still detected even though no
// single switch sees it cross the threshold.
//
// The mechanism reuses Sonata's existing reconciliation path: every
// switch's register dump merges into the shared stateful operator state via
// the operator's own aggregation function, exactly like collision-overflow
// traffic does on a single switch. Dynamic refinement updates fan out to
// every switch.
package netwide

import (
	"fmt"
	"time"

	"repro/internal/compile"
	"repro/internal/emitter"
	"repro/internal/fields"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/stream"
)

// WindowReport aggregates one fabric-wide window.
type WindowReport struct {
	Index int
	// Results holds the finest-level merged outputs per query.
	Results []stream.Result
	// AllResults includes every refinement level.
	AllResults []stream.Result
	// TuplesToSP counts tuples the shared stream processor ingested.
	TuplesToSP uint64
	// PerSwitch carries each vantage point's data-plane stats.
	PerSwitch []pisa.WindowStats
	// FilterUpdates counts refinement entries written across all switches.
	FilterUpdates  int
	UpdateDuration time.Duration
}

// Fabric is a set of switches sharing one stream processor.
type Fabric struct {
	switches []*pisa.Switch
	engine   *stream.Engine
	em       *emitter.Emitter
	links    []link
	finest   map[uint16]uint8
	window   int
}

type link struct {
	qid    uint16
	from   uint8
	to     uint8
	keyCol int
	field  fields.ID
}

// New builds a fabric of n switches all running the plan's program.
func New(plan *planner.Plan, cfg pisa.Config, n int) (*Fabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netwide: need at least one switch")
	}
	dyn := stream.NewDynTables()
	engine := stream.NewEngine(dyn)
	em := emitter.New(engine)
	f := &Fabric{engine: engine, em: em, finest: make(map[uint16]uint8)}
	prog := dropDumpThresholds(plan.Program)
	for i := 0; i < n; i++ {
		sw, err := pisa.NewSwitch(cfg, prog, em.HandleMirror)
		if err != nil {
			return nil, fmt.Errorf("netwide: switch %d: %w", i, err)
		}
		f.switches = append(f.switches, sw)
	}
	for _, qp := range plan.Queries {
		for li, lp := range qp.Levels {
			part := stream.Partition{LeftStart: lp.Left.Pipe.EntryFor(lp.Left.Cut).StartOp}
			if lp.Right != nil {
				part.RightStart = lp.Right.Pipe.EntryFor(lp.Right.Cut).StartOp
			}
			if err := engine.Install(lp.Aug, uint8(lp.Level), part); err != nil {
				return nil, fmt.Errorf("netwide: installing q%d level %d: %w", qp.Query.ID, lp.Level, err)
			}
			if li == len(qp.Levels)-1 {
				f.finest[qp.Query.ID] = uint8(lp.Level)
			}
			if li+1 < len(qp.Levels) {
				keyCol := lp.Aug.FinalSchema().Index(qp.Key.Field)
				if keyCol < 0 {
					return nil, fmt.Errorf("netwide: q%d level %d lacks refinement key column", qp.Query.ID, lp.Level)
				}
				f.links = append(f.links, link{qid: qp.Query.ID,
					from: uint8(lp.Level), to: uint8(qp.Levels[li+1].Level),
					keyCol: keyCol, field: qp.Key.Field})
			}
		}
	}
	return f, nil
}

// dropDumpThresholds copies the program with threshold filters removed from
// dump-boundary stateful tables. A per-switch threshold would suppress keys
// whose traffic is split across vantage points and only crosses the
// threshold in aggregate — the defining difficulty of network-wide heavy
// hitter detection. Switches instead dump raw partial aggregates; the
// stream engine's drain path re-applies the original threshold after
// merging, so results are identical to a single switch observing the union
// of the traffic.
func dropDumpThresholds(prog *pisa.Program) *pisa.Program {
	out := &pisa.Program{Instances: make([]*pisa.InstanceSpec, len(prog.Instances))}
	for i, spec := range prog.Instances {
		c := *spec
		c.Tables = append([]compile.Table(nil), spec.Tables...)
		if c.CutAt > 0 {
			last := &c.Tables[c.CutAt-1]
			if last.Stateful && last.MergedFilterOp >= 0 {
				last.MergedFilterOp = -1
			}
		}
		out.Instances[i] = &c
	}
	return out
}

// Size returns the number of vantage points.
func (f *Fabric) Size() int { return len(f.switches) }

// Process feeds a frame to switch i (the caller routes traffic to vantage
// points; tests shard by flow hash).
func (f *Fabric) Process(i int, frame []byte) {
	f.switches[i].Process(frame)
}

// CloseWindow ends the window fabric-wide: every switch's dumps merge into
// the shared engine, results are computed once, and refinement updates fan
// out to all switches.
func (f *Fabric) CloseWindow() *WindowReport {
	rep := &WindowReport{Index: f.window}
	f.window++
	for _, sw := range f.switches {
		dumps, stats := sw.EndWindow()
		f.em.HandleDumps(dumps)
		rep.PerSwitch = append(rep.PerSwitch, stats)
	}
	results, metrics := f.engine.EndWindow()
	rep.AllResults = results
	rep.TuplesToSP = metrics.TuplesIn
	for _, res := range results {
		if f.finest[res.QID] == res.Level {
			rep.Results = append(rep.Results, res)
		}
	}

	start := time.Now()
	for _, l := range f.links {
		keys := refinedKeys(results, l)
		table := planner.DynTableName(l.qid, int(l.to))
		f.engine.Dyn().Replace(table, keys)
		for _, sw := range f.switches {
			for _, side := range []pisa.Side{pisa.SideLeft, pisa.SideRight} {
				if n, err := sw.UpdateDynTable(l.qid, l.to, side, 0, keys); err == nil {
					rep.FilterUpdates += n
				}
			}
		}
	}
	rep.UpdateDuration = time.Since(start)
	return rep
}

// refinedKeys mirrors the single-switch runtime's gating logic: sub-query
// outputs for join queries, final results otherwise.
func refinedKeys(results []stream.Result, l link) []string {
	var keys []string
	for i := range results {
		res := &results[i]
		if res.QID != l.qid || res.Level != l.from {
			continue
		}
		if res.RightOutputs == nil && res.LeftOutputs == nil {
			for _, t := range res.Tuples {
				if l.keyCol < len(t) {
					keys = append(keys, stream.DynKeyFromValue(l.field, t[l.keyCol], int(l.from)))
				}
			}
			continue
		}
		if col := res.RightSchema.Index(l.field); col >= 0 {
			for _, t := range res.RightOutputs {
				if col < len(t) {
					keys = append(keys, stream.DynKeyFromValue(l.field, t[col], int(l.from)))
				}
			}
		}
	}
	return keys
}
