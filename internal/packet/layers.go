package packet

import (
	"encoding/binary"
	"fmt"
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst  [6]byte
	Src  [6]byte
	Type uint16
}

const ethernetHeaderLen = 14

// DecodeEthernet fills h from data and returns the remaining bytes.
func DecodeEthernet(data []byte, h *Ethernet) ([]byte, error) {
	if len(data) < ethernetHeaderLen {
		return nil, fmt.Errorf("packet: ethernet header truncated (%d bytes)", len(data))
	}
	copy(h.Dst[:], data[0:6])
	copy(h.Src[:], data[6:12])
	h.Type = binary.BigEndian.Uint16(data[12:14])
	return data[ethernetHeaderLen:], nil
}

// AppendEthernet appends the wire encoding of h to dst.
func AppendEthernet(dst []byte, h *Ethernet) []byte {
	dst = append(dst, h.Dst[:]...)
	dst = append(dst, h.Src[:]...)
	return binary.BigEndian.AppendUint16(dst, h.Type)
}

// IPv4 is a decoded IPv4 header (options are validated for length but not
// interpreted).
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits
	TTL      uint8
	Proto    uint8
	Checksum uint16
	Src      uint32
	Dst      uint32
}

const ipv4MinHeaderLen = 20

// DecodeIPv4 fills h from data and returns the bytes after the header,
// bounded by TotalLen so trailing link-layer padding is excluded.
func DecodeIPv4(data []byte, h *IPv4) ([]byte, error) {
	if len(data) < ipv4MinHeaderLen {
		return nil, fmt.Errorf("packet: ipv4 header truncated (%d bytes)", len(data))
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return nil, fmt.Errorf("packet: ipv4 version field is %d", vihl>>4)
	}
	h.IHL = vihl & 0x0f
	hdrLen := int(h.IHL) * 4
	if hdrLen < ipv4MinHeaderLen || len(data) < hdrLen {
		return nil, fmt.Errorf("packet: ipv4 IHL %d invalid for %d bytes", h.IHL, len(data))
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = data[8]
	h.Proto = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	h.Src = binary.BigEndian.Uint32(data[12:16])
	h.Dst = binary.BigEndian.Uint32(data[16:20])
	end := int(h.TotalLen)
	if end < hdrLen {
		return nil, fmt.Errorf("packet: ipv4 total length %d shorter than header %d", end, hdrLen)
	}
	if end > len(data) {
		end = len(data) // tolerate truncated captures
	}
	return data[hdrLen:end], nil
}

// AppendIPv4 appends the wire encoding of h to dst, computing the header
// checksum. IHL is forced to 5 (no options).
func AppendIPv4(dst []byte, h *IPv4) []byte {
	start := len(dst)
	dst = append(dst, 0x45, h.TOS)
	dst = binary.BigEndian.AppendUint16(dst, h.TotalLen)
	dst = binary.BigEndian.AppendUint16(dst, h.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(h.Flags)<<13|h.FragOff&0x1fff)
	dst = append(dst, h.TTL, h.Proto)
	dst = append(dst, 0, 0) // checksum placeholder
	dst = binary.BigEndian.AppendUint32(dst, h.Src)
	dst = binary.BigEndian.AppendUint32(dst, h.Dst)
	sum := Checksum(dst[start:], 0)
	binary.BigEndian.PutUint16(dst[start+10:start+12], sum)
	return dst
}

// IPv6 is a decoded IPv6 fixed header. Addresses are carried as the upper 64
// bits (network-identifying half) plus the full bytes, since the query
// fields only use prefixes.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	SrcHi, SrcLo uint64
	DstHi, DstLo uint64
}

const ipv6HeaderLen = 40

// DecodeIPv6 fills h from data and returns the payload bytes bounded by
// PayloadLen.
func DecodeIPv6(data []byte, h *IPv6) ([]byte, error) {
	if len(data) < ipv6HeaderLen {
		return nil, fmt.Errorf("packet: ipv6 header truncated (%d bytes)", len(data))
	}
	v := binary.BigEndian.Uint32(data[0:4])
	if v>>28 != 6 {
		return nil, fmt.Errorf("packet: ipv6 version field is %d", v>>28)
	}
	h.TrafficClass = uint8(v >> 20)
	h.FlowLabel = v & 0xfffff
	h.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	h.NextHeader = data[6]
	h.HopLimit = data[7]
	h.SrcHi = binary.BigEndian.Uint64(data[8:16])
	h.SrcLo = binary.BigEndian.Uint64(data[16:24])
	h.DstHi = binary.BigEndian.Uint64(data[24:32])
	h.DstLo = binary.BigEndian.Uint64(data[32:40])
	end := ipv6HeaderLen + int(h.PayloadLen)
	if end > len(data) {
		end = len(data)
	}
	return data[ipv6HeaderLen:end], nil
}

// AppendIPv6 appends the wire encoding of h to dst.
func AppendIPv6(dst []byte, h *IPv6) []byte {
	v := uint32(6)<<28 | uint32(h.TrafficClass)<<20 | h.FlowLabel&0xfffff
	dst = binary.BigEndian.AppendUint32(dst, v)
	dst = binary.BigEndian.AppendUint16(dst, h.PayloadLen)
	dst = append(dst, h.NextHeader, h.HopLimit)
	dst = binary.BigEndian.AppendUint64(dst, h.SrcHi)
	dst = binary.BigEndian.AppendUint64(dst, h.SrcLo)
	dst = binary.BigEndian.AppendUint64(dst, h.DstHi)
	dst = binary.BigEndian.AppendUint64(dst, h.DstLo)
	return dst
}

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      uint8
	Window     uint16
	Checksum   uint16
	Urgent     uint16
}

const tcpMinHeaderLen = 20

// DecodeTCP fills h from data and returns the payload bytes.
func DecodeTCP(data []byte, h *TCP) ([]byte, error) {
	if len(data) < tcpMinHeaderLen {
		return nil, fmt.Errorf("packet: tcp header truncated (%d bytes)", len(data))
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Seq = binary.BigEndian.Uint32(data[4:8])
	h.Ack = binary.BigEndian.Uint32(data[8:12])
	h.DataOffset = data[12] >> 4
	h.Flags = data[13]
	h.Window = binary.BigEndian.Uint16(data[14:16])
	h.Checksum = binary.BigEndian.Uint16(data[16:18])
	h.Urgent = binary.BigEndian.Uint16(data[18:20])
	hdrLen := int(h.DataOffset) * 4
	if hdrLen < tcpMinHeaderLen || hdrLen > len(data) {
		return nil, fmt.Errorf("packet: tcp data offset %d invalid for %d bytes", h.DataOffset, len(data))
	}
	return data[hdrLen:], nil
}

// AppendTCP appends the wire encoding of h to dst with DataOffset forced to
// 5 (no options). The checksum must be filled afterwards by the frame
// builder, which knows the pseudo-header.
func AppendTCP(dst []byte, h *TCP) []byte {
	dst = binary.BigEndian.AppendUint16(dst, h.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, h.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, h.Seq)
	dst = binary.BigEndian.AppendUint32(dst, h.Ack)
	dst = append(dst, 5<<4, h.Flags)
	dst = binary.BigEndian.AppendUint16(dst, h.Window)
	dst = append(dst, 0, 0) // checksum placeholder
	dst = binary.BigEndian.AppendUint16(dst, h.Urgent)
	return dst
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

const udpHeaderLen = 8

// DecodeUDP fills h from data and returns the payload bytes bounded by the
// UDP length field.
func DecodeUDP(data []byte, h *UDP) ([]byte, error) {
	if len(data) < udpHeaderLen {
		return nil, fmt.Errorf("packet: udp header truncated (%d bytes)", len(data))
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Length = binary.BigEndian.Uint16(data[4:6])
	h.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(h.Length)
	if end < udpHeaderLen {
		return nil, fmt.Errorf("packet: udp length %d shorter than header", end)
	}
	if end > len(data) {
		end = len(data)
	}
	return data[udpHeaderLen:end], nil
}

// AppendUDP appends the wire encoding of h to dst. The checksum must be
// filled afterwards by the frame builder.
func AppendUDP(dst []byte, h *UDP) []byte {
	dst = binary.BigEndian.AppendUint16(dst, h.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, h.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, h.Length)
	dst = append(dst, 0, 0) // checksum placeholder
	return dst
}

// Checksum computes the Internet checksum (RFC 1071) over data, starting
// from the partial sum initial. The final fold and complement are applied.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial checksum of the IPv4 pseudo-header for
// the given transport protocol and segment length.
func pseudoHeaderSum(src, dst uint32, proto uint8, segLen int) uint32 {
	var sum uint32
	sum += src >> 16
	sum += src & 0xffff
	sum += dst >> 16
	sum += dst & 0xffff
	sum += uint32(proto)
	sum += uint32(segLen)
	return sum
}
