package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/fields"
)

func tcpFrame(t *testing.T, spec FrameSpec) []byte {
	t.Helper()
	spec.Proto = 6
	return BuildFrame(nil, &spec)
}

func TestBuildAndParseTCP(t *testing.T) {
	frame := tcpFrame(t, FrameSpec{
		SrcIP: IPv4Addr(10, 0, 0, 1), DstIP: IPv4Addr(192, 168, 1, 100),
		SrcPort: 12345, DstPort: 80,
		TCPFlags: fields.FlagSYN, Seq: 1000, Window: 4096,
		Payload: []byte("hello"),
	})
	var pkt Packet
	p := NewParser(ParserOptions{})
	if err := p.Parse(frame, &pkt); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !pkt.Has(LayerEthernet) || !pkt.Has(LayerIPv4) || !pkt.Has(LayerTCP) {
		t.Fatalf("layers = %b", pkt.Layers)
	}
	if pkt.IPv4.Src != IPv4Addr(10, 0, 0, 1) || pkt.IPv4.Dst != IPv4Addr(192, 168, 1, 100) {
		t.Errorf("addresses = %s -> %s", IPv4String(pkt.IPv4.Src), IPv4String(pkt.IPv4.Dst))
	}
	if pkt.TCP.SrcPort != 12345 || pkt.TCP.DstPort != 80 {
		t.Errorf("ports = %d -> %d", pkt.TCP.SrcPort, pkt.TCP.DstPort)
	}
	if pkt.TCP.Flags != fields.FlagSYN {
		t.Errorf("flags = %#x", pkt.TCP.Flags)
	}
	if string(pkt.Payload) != "hello" {
		t.Errorf("payload = %q", pkt.Payload)
	}
}

func TestBuildAndParseUDP(t *testing.T) {
	spec := FrameSpec{
		SrcIP: IPv4Addr(1, 2, 3, 4), DstIP: IPv4Addr(5, 6, 7, 8),
		Proto: 17, SrcPort: 500, DstPort: 9999,
		Payload: []byte{0xde, 0xad},
	}
	frame := BuildFrame(nil, &spec)
	var pkt Packet
	if err := NewParser(ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !pkt.Has(LayerUDP) {
		t.Fatal("UDP layer missing")
	}
	if pkt.UDP.Length != udpHeaderLen+2 {
		t.Errorf("udp length = %d", pkt.UDP.Length)
	}
	if !bytes.Equal(pkt.Payload, []byte{0xde, 0xad}) {
		t.Errorf("payload = %x", pkt.Payload)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := tcpFrame(t, FrameSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4})
	// Verify the IPv4 header checksums to zero when summed including the
	// checksum field.
	hdr := frame[ethernetHeaderLen : ethernetHeaderLen+20]
	if got := Checksum(hdr, 0); got != 0 {
		t.Errorf("ipv4 header checksum residue = %#x", got)
	}
}

func TestTCPChecksumValid(t *testing.T) {
	frame := tcpFrame(t, FrameSpec{
		SrcIP: IPv4Addr(10, 0, 0, 1), DstIP: IPv4Addr(10, 0, 0, 2),
		SrcPort: 1, DstPort: 2, Payload: []byte("odd"),
	})
	seg := frame[ethernetHeaderLen+20:]
	src := binary.BigEndian.Uint32(frame[ethernetHeaderLen+12:])
	dst := binary.BigEndian.Uint32(frame[ethernetHeaderLen+16:])
	if got := Checksum(seg, pseudoHeaderSum(src, dst, 6, len(seg))); got != 0 {
		t.Errorf("tcp checksum residue = %#x", got)
	}
}

func TestPadGrowsFrame(t *testing.T) {
	spec := FrameSpec{SrcIP: 1, DstIP: 2, Proto: 6, Pad: 200}
	frame := BuildFrame(nil, &spec)
	if len(frame) != 200 {
		t.Errorf("frame length = %d, want 200", len(frame))
	}
	var pkt Packet
	if err := NewParser(ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatalf("Parse padded frame: %v", err)
	}
	// Padding must not leak into the transport payload.
	if len(pkt.Payload) != 0 {
		t.Errorf("payload leaked %d padding bytes", len(pkt.Payload))
	}
}

func TestParseTruncatedHeaders(t *testing.T) {
	full := tcpFrame(t, FrameSpec{SrcIP: 1, DstIP: 2})
	var pkt Packet
	p := NewParser(ParserOptions{})
	for cut := 0; cut < len(full); cut++ {
		err := p.Parse(full[:cut], &pkt)
		// Truncations inside eth/ip/tcp headers must error; there is no
		// payload so every cut is inside a header.
		if err == nil {
			t.Errorf("Parse accepted %d-byte truncation of %d-byte frame", cut, len(full))
		}
	}
	if err := p.Parse(full, &pkt); err != nil {
		t.Errorf("Parse rejected the full frame: %v", err)
	}
}

func TestParseUnsupportedEtherType(t *testing.T) {
	eth := Ethernet{Type: EtherTypeARP}
	frame := AppendEthernet(nil, &eth)
	frame = append(frame, 1, 2, 3)
	var pkt Packet
	err := NewParser(ParserOptions{}).Parse(frame, &pkt)
	if !errors.Is(err, ErrUnsupportedLayer) {
		t.Fatalf("err = %v, want ErrUnsupportedLayer", err)
	}
	if !pkt.Has(LayerEthernet) {
		t.Error("ethernet layer should still be decoded")
	}
}

func TestParseFragmentSkipsTransport(t *testing.T) {
	// Hand-build a non-first fragment: FragOff != 0.
	ip := IPv4{TotalLen: 20 + 4, TTL: 64, Proto: 6, Src: 1, Dst: 2, FragOff: 100}
	eth := Ethernet{Type: EtherTypeIPv4}
	frame := AppendEthernet(nil, &eth)
	frame = AppendIPv4(frame, &ip)
	frame = append(frame, 9, 9, 9, 9)
	var pkt Packet
	if err := NewParser(ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if pkt.Has(LayerTCP) {
		t.Error("fragment should not decode a TCP layer")
	}
	if len(pkt.Payload) != 4 {
		t.Errorf("fragment payload = %d bytes", len(pkt.Payload))
	}
}

func TestParseIPv6(t *testing.T) {
	ip6 := IPv6{NextHeader: 17, HopLimit: 64, SrcHi: 0x20010db8_00000001, DstHi: 0x20010db8_00000002, PayloadLen: udpHeaderLen}
	eth := Ethernet{Type: EtherTypeIPv6}
	frame := AppendEthernet(nil, &eth)
	frame = AppendIPv6(frame, &ip6)
	udp := UDP{SrcPort: 1, DstPort: 2, Length: udpHeaderLen}
	frame = AppendUDP(frame, &udp)
	var pkt Packet
	if err := NewParser(ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !pkt.Has(LayerIPv6) || !pkt.Has(LayerUDP) {
		t.Fatalf("layers = %b", pkt.Layers)
	}
	if v, ok := pkt.Field(fields.SrcIPv6); !ok || v.U != 0x20010db8_00000001 {
		t.Errorf("SrcIPv6 field = %v, %v", v, ok)
	}
	if v, ok := pkt.Field(fields.Proto); !ok || v.U != 17 {
		t.Errorf("Proto via IPv6 = %v, %v", v, ok)
	}
}

func TestFieldExtraction(t *testing.T) {
	frame := tcpFrame(t, FrameSpec{
		SrcIP: IPv4Addr(10, 1, 2, 3), DstIP: IPv4Addr(172, 16, 0, 9),
		SrcPort: 1111, DstPort: 23, TCPFlags: fields.FlagACK | fields.FlagPSH,
		Payload: []byte("zorro says hi"),
	})
	var pkt Packet
	if err := NewParser(ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		f    fields.ID
		want uint64
	}{
		{fields.SrcIP, uint64(IPv4Addr(10, 1, 2, 3))},
		{fields.DstIP, uint64(IPv4Addr(172, 16, 0, 9))},
		{fields.Proto, 6},
		{fields.SrcPort, 1111},
		{fields.DstPort, 23},
		{fields.TCPFlags, uint64(fields.FlagACK | fields.FlagPSH)},
		{fields.PktLen, uint64(len(frame))},
		{fields.PayloadLen, 13},
		{fields.TTL, 64},
	}
	for _, c := range checks {
		v, ok := pkt.Field(c.f)
		if !ok || v.U != c.want {
			t.Errorf("Field(%v) = %v, %v; want %d", c.f, v, ok, c.want)
		}
	}
	if v, ok := pkt.Field(fields.Payload); !ok || v.S != "zorro says hi" {
		t.Errorf("Field(Payload) = %v, %v", v, ok)
	}
	// Fields from absent layers are reported missing.
	if _, ok := pkt.Field(fields.DNSQName); ok {
		t.Error("DNSQName present on non-DNS packet")
	}
	if _, ok := pkt.Field(fields.SrcIPv6); ok {
		t.Error("SrcIPv6 present on IPv4 packet")
	}
}

func TestFieldOnUDPPorts(t *testing.T) {
	spec := FrameSpec{SrcIP: 1, DstIP: 2, Proto: 17, SrcPort: 53, DstPort: 3333}
	var pkt Packet
	if err := NewParser(ParserOptions{}).Parse(BuildFrame(nil, &spec), &pkt); err != nil {
		t.Fatal(err)
	}
	if v, _ := pkt.Field(fields.SrcPort); v.U != 53 {
		t.Errorf("SrcPort = %d", v.U)
	}
	if _, ok := pkt.Field(fields.TCPFlags); ok {
		t.Error("TCPFlags present on UDP packet")
	}
}

func TestCloneIndependence(t *testing.T) {
	frame := tcpFrame(t, FrameSpec{SrcIP: 1, DstIP: 2, Payload: []byte("data")})
	var pkt Packet
	if err := NewParser(ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatal(err)
	}
	c := pkt.Clone()
	frame[len(frame)-1] = 'X' // mutate original buffer
	if string(c.Payload) != "data" {
		t.Errorf("clone payload = %q after source mutation", c.Payload)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// RFC 1071 example-style check: verify residue of data plus its checksum.
	data := []byte{0x01, 0x02, 0x03}
	sum := Checksum(data, 0)
	padded := append(append([]byte{}, data...), 0) // pad to even
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], sum)
	if got := Checksum(append(padded, b[:]...), 0); got != 0 {
		t.Errorf("odd-length checksum residue = %#x", got)
	}
}
