package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS record types used by the telemetry queries.
const (
	DNSTypeA     = 1
	DNSTypeNS    = 2
	DNSTypeCNAME = 5
	DNSTypeTXT   = 16
	DNSTypeAAAA  = 28
	DNSTypeANY   = 255
)

// DNSQuestion is one entry from the question section.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSRecord is one resource record from the answer section.
type DNSRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte // rdata, aliasing the message buffer
}

// DNS is a decoded DNS message. Only the question and answer sections are
// retained; authority and additional records are skipped but validated.
type DNS struct {
	ID        uint16
	Response  bool
	Opcode    uint8
	RCode     uint8
	Recursion bool
	Questions []DNSQuestion
	Answers   []DNSRecord
}

func (d *DNS) reset() {
	d.ID = 0
	d.Response = false
	d.Opcode = 0
	d.RCode = 0
	d.Recursion = false
	d.Questions = d.Questions[:0]
	d.Answers = d.Answers[:0]
}

func (d *DNS) clone() DNS {
	c := *d
	c.Questions = append([]DNSQuestion(nil), d.Questions...)
	c.Answers = make([]DNSRecord, len(d.Answers))
	for i, a := range d.Answers {
		c.Answers[i] = a
		c.Answers[i].Data = append([]byte(nil), a.Data...)
	}
	return c
}

const dnsHeaderLen = 12

// maxDNSPointers bounds compression-pointer chains so a malicious message
// cannot loop the parser.
const maxDNSPointers = 32

// DecodeDNS parses a DNS message. Names are decompressed into freshly
// allocated strings; rdata slices alias msg.
func DecodeDNS(msg []byte, d *DNS) error {
	d.reset()
	if len(msg) < dnsHeaderLen {
		return fmt.Errorf("packet: dns header truncated (%d bytes)", len(msg))
	}
	d.ID = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	d.Response = flags&0x8000 != 0
	d.Opcode = uint8(flags >> 11 & 0xf)
	d.Recursion = flags&0x0100 != 0
	d.RCode = uint8(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))

	off := dnsHeaderLen
	for i := 0; i < qd; i++ {
		name, n, err := decodeDNSName(msg, off)
		if err != nil {
			return fmt.Errorf("packet: dns question %d: %w", i, err)
		}
		off += n
		if off+4 > len(msg) {
			return fmt.Errorf("packet: dns question %d truncated", i)
		}
		d.Questions = append(d.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(msg[off : off+2]),
			Class: binary.BigEndian.Uint16(msg[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := decodeDNSName(msg, off)
		if err != nil {
			return fmt.Errorf("packet: dns answer %d: %w", i, err)
		}
		off += n
		if off+10 > len(msg) {
			return fmt.Errorf("packet: dns answer %d truncated", i)
		}
		rec := DNSRecord{
			Name:  name,
			Type:  binary.BigEndian.Uint16(msg[off : off+2]),
			Class: binary.BigEndian.Uint16(msg[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(msg[off+4 : off+8]),
		}
		rdLen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
		off += 10
		if off+rdLen > len(msg) {
			return fmt.Errorf("packet: dns answer %d rdata truncated (want %d bytes)", i, rdLen)
		}
		rec.Data = msg[off : off+rdLen]
		off += rdLen
		d.Answers = append(d.Answers, rec)
	}
	return nil
}

// decodeDNSName decodes a possibly-compressed name starting at off. It
// returns the dotted name and the number of bytes consumed at the original
// position (pointers consume two bytes there).
func decodeDNSName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	consumed := 0
	jumped := false
	pointers := 0
	pos := off
	for {
		if pos >= len(msg) {
			return "", 0, fmt.Errorf("name runs past message end")
		}
		b := msg[pos]
		switch {
		case b == 0:
			if !jumped {
				consumed = pos - off + 1
			}
			return sb.String(), consumed, nil
		case b&0xc0 == 0xc0:
			if pos+1 >= len(msg) {
				return "", 0, fmt.Errorf("truncated compression pointer")
			}
			if pointers++; pointers > maxDNSPointers {
				return "", 0, fmt.Errorf("compression pointer chain too long")
			}
			target := int(binary.BigEndian.Uint16(msg[pos:pos+2]) & 0x3fff)
			if !jumped {
				consumed = pos - off + 2
				jumped = true
			}
			if target >= pos {
				return "", 0, fmt.Errorf("forward compression pointer")
			}
			pos = target
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("reserved label type %#x", b&0xc0)
		default:
			l := int(b)
			if pos+1+l > len(msg) {
				return "", 0, fmt.Errorf("label runs past message end")
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[pos+1 : pos+1+l])
			pos += 1 + l
			if sb.Len() > 255 {
				return "", 0, fmt.Errorf("name longer than 255 bytes")
			}
		}
	}
}

// AppendDNS appends the wire encoding of d to dst. Names are encoded without
// compression.
func AppendDNS(dst []byte, d *DNS) []byte {
	dst = binary.BigEndian.AppendUint16(dst, d.ID)
	var flags uint16
	if d.Response {
		flags |= 0x8000
	}
	flags |= uint16(d.Opcode&0xf) << 11
	if d.Recursion {
		flags |= 0x0100
	}
	flags |= uint16(d.RCode & 0xf)
	dst = binary.BigEndian.AppendUint16(dst, flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Questions)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Answers)))
	dst = binary.BigEndian.AppendUint16(dst, 0) // nscount
	dst = binary.BigEndian.AppendUint16(dst, 0) // arcount
	for _, q := range d.Questions {
		dst = appendDNSName(dst, q.Name)
		dst = binary.BigEndian.AppendUint16(dst, q.Type)
		dst = binary.BigEndian.AppendUint16(dst, q.Class)
	}
	for _, a := range d.Answers {
		dst = appendDNSName(dst, a.Name)
		dst = binary.BigEndian.AppendUint16(dst, a.Type)
		dst = binary.BigEndian.AppendUint16(dst, a.Class)
		dst = binary.BigEndian.AppendUint32(dst, a.TTL)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(a.Data)))
		dst = append(dst, a.Data...)
	}
	return dst
}

func appendDNSName(dst []byte, name string) []byte {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) > 63 {
				label = label[:63]
			}
			dst = append(dst, byte(len(label)))
			dst = append(dst, label...)
		}
	}
	return append(dst, 0)
}

// DNSNameLevel truncates a dotted DNS name to its last n labels, mirroring
// prefix truncation for IP addresses: level 1 keeps only the TLD, level 2 the
// second-level domain, and so on. A level at or beyond the label count
// returns the name unchanged.
func DNSNameLevel(name string, level int) string {
	if level <= 0 {
		return ""
	}
	labels := strings.Split(name, ".")
	if level >= len(labels) {
		return name
	}
	return strings.Join(labels[len(labels)-level:], ".")
}
