// Package packet implements binary encoding and decoding for the protocol
// layers Sonata queries reference: Ethernet, IPv4, IPv6, TCP, UDP, and DNS.
//
// The decoding design follows gopacket's DecodingLayerParser idiom: a Parser
// owns preallocated layer structs and fills a Packet view in place, slicing
// into the original buffer rather than copying, so the hot path performs no
// allocation. Callers that retain a Packet beyond the lifetime of its buffer
// must Clone it first.
package packet

import (
	"fmt"

	"repro/internal/fields"
	"repro/internal/tuple"
)

// EtherType values understood by the parser.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86DD
	EtherTypeARP  = 0x0806
)

// Layer flags recording which layers a parsed Packet contains.
type LayerMask uint8

const (
	LayerEthernet LayerMask = 1 << iota
	LayerIPv4
	LayerIPv6
	LayerTCP
	LayerUDP
	LayerDNS
	LayerPayload
)

// Packet is a decoded view over one frame. All byte-slice fields alias the
// buffer passed to Parse.
type Packet struct {
	Data    []byte // entire frame
	Layers  LayerMask
	Eth     Ethernet
	IPv4    IPv4
	IPv6    IPv6
	TCP     TCP
	UDP     UDP
	DNS     DNS
	Payload []byte // transport payload (aliases Data)
}

// Has reports whether the packet contains the given layer.
func (p *Packet) Has(l LayerMask) bool { return p.Layers&l != 0 }

// Reset clears the packet view for reuse without releasing DNS scratch
// storage.
func (p *Packet) Reset() {
	p.Data = nil
	p.Layers = 0
	p.Payload = nil
	p.DNS.reset()
}

// Clone returns a deep copy whose slices no longer alias the original buffer.
// The parser always leaves Payload as the tail of the frame, so the clone
// re-slices it from the copied buffer.
func (p *Packet) Clone() *Packet {
	c := *p
	c.Data = append([]byte(nil), p.Data...)
	if p.Payload != nil {
		c.Payload = c.Data[len(c.Data)-len(p.Payload):]
	}
	c.DNS = p.DNS.clone()
	return &c
}

// Field extracts the value of field f from the packet. The second return is
// false when the packet does not carry the field (e.g. TCPFlags on a UDP
// packet).
func (p *Packet) Field(f fields.ID) (tuple.Value, bool) {
	switch f {
	case fields.EthSrc:
		if !p.Has(LayerEthernet) {
			return tuple.Value{}, false
		}
		return tuple.U64(macToU64(p.Eth.Src)), true
	case fields.EthDst:
		if !p.Has(LayerEthernet) {
			return tuple.Value{}, false
		}
		return tuple.U64(macToU64(p.Eth.Dst)), true
	case fields.EthType:
		if !p.Has(LayerEthernet) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.Eth.Type)), true
	case fields.SrcIP:
		if !p.Has(LayerIPv4) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.IPv4.Src)), true
	case fields.DstIP:
		if !p.Has(LayerIPv4) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.IPv4.Dst)), true
	case fields.SrcIPv6:
		if !p.Has(LayerIPv6) {
			return tuple.Value{}, false
		}
		return tuple.U64(p.IPv6.SrcHi), true
	case fields.DstIPv6:
		if !p.Has(LayerIPv6) {
			return tuple.Value{}, false
		}
		return tuple.U64(p.IPv6.DstHi), true
	case fields.Proto:
		if p.Has(LayerIPv4) {
			return tuple.U64(uint64(p.IPv4.Proto)), true
		}
		if p.Has(LayerIPv6) {
			return tuple.U64(uint64(p.IPv6.NextHeader)), true
		}
		return tuple.Value{}, false
	case fields.TTL:
		if !p.Has(LayerIPv4) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.IPv4.TTL)), true
	case fields.IPLen:
		if !p.Has(LayerIPv4) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.IPv4.TotalLen)), true
	case fields.IPID:
		if !p.Has(LayerIPv4) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.IPv4.ID)), true
	case fields.DSCP:
		if !p.Has(LayerIPv4) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.IPv4.TOS)), true
	case fields.SrcPort:
		if p.Has(LayerTCP) {
			return tuple.U64(uint64(p.TCP.SrcPort)), true
		}
		if p.Has(LayerUDP) {
			return tuple.U64(uint64(p.UDP.SrcPort)), true
		}
		return tuple.Value{}, false
	case fields.DstPort:
		if p.Has(LayerTCP) {
			return tuple.U64(uint64(p.TCP.DstPort)), true
		}
		if p.Has(LayerUDP) {
			return tuple.U64(uint64(p.UDP.DstPort)), true
		}
		return tuple.Value{}, false
	case fields.TCPFlags:
		if !p.Has(LayerTCP) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.TCP.Flags)), true
	case fields.TCPSeq:
		if !p.Has(LayerTCP) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.TCP.Seq)), true
	case fields.TCPAck:
		if !p.Has(LayerTCP) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.TCP.Ack)), true
	case fields.TCPWin:
		if !p.Has(LayerTCP) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.TCP.Window)), true
	case fields.PktLen:
		return tuple.U64(uint64(len(p.Data))), true
	case fields.PayloadLen:
		return tuple.U64(uint64(len(p.Payload))), true
	case fields.Payload:
		if !p.Has(LayerPayload) {
			return tuple.Value{}, false
		}
		return tuple.Str(string(p.Payload)), true
	case fields.DNSQName:
		if !p.Has(LayerDNS) || len(p.DNS.Questions) == 0 {
			return tuple.Value{}, false
		}
		return tuple.Str(p.DNS.Questions[0].Name), true
	case fields.DNSRRName:
		if !p.Has(LayerDNS) || len(p.DNS.Answers) == 0 {
			return tuple.Value{}, false
		}
		return tuple.Str(p.DNS.Answers[0].Name), true
	case fields.DNSQType:
		if !p.Has(LayerDNS) || len(p.DNS.Questions) == 0 {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(p.DNS.Questions[0].Type)), true
	case fields.DNSAnCount:
		if !p.Has(LayerDNS) {
			return tuple.Value{}, false
		}
		return tuple.U64(uint64(len(p.DNS.Answers))), true
	case fields.DNSQR:
		if !p.Has(LayerDNS) {
			return tuple.Value{}, false
		}
		if p.DNS.Response {
			return tuple.U64(1), true
		}
		return tuple.U64(0), true
	default:
		return tuple.Value{}, false
	}
}

func macToU64(m [6]byte) uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// IPv4String formats a uint32 address value as dotted quad.
func IPv4String(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IPv4Addr builds a uint32 address from four octets.
func IPv4Addr(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
