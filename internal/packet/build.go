package packet

import "encoding/binary"

// FrameSpec describes a frame to assemble. Zero values give a minimal valid
// TCP/IPv4 frame; set Proto to select the transport.
type FrameSpec struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   uint32
	Proto          uint8 // fields.ProtoTCP, ProtoUDP, or other (raw IP payload)
	TTL            uint8 // defaults to 64
	TOS            uint8
	IPID           uint16

	SrcPort, DstPort uint16
	TCPFlags         uint8
	Seq, Ack         uint32
	Window           uint16

	Payload []byte

	// Pad grows the frame to at least this many bytes with trailing zeros
	// after the IP datagram, emulating a chosen wire length without
	// inflating the transport payload.
	Pad int
}

// BuildFrame assembles a complete Ethernet/IPv4 frame with correct lengths
// and checksums, appending to dst (which may be nil).
func BuildFrame(dst []byte, s *FrameSpec) []byte {
	ttl := s.TTL
	if ttl == 0 {
		ttl = 64
	}
	var transport []byte
	switch s.Proto {
	case 6:
		tcp := TCP{
			SrcPort: s.SrcPort, DstPort: s.DstPort,
			Seq: s.Seq, Ack: s.Ack,
			Flags: s.TCPFlags, Window: s.Window,
		}
		transport = AppendTCP(nil, &tcp)
		transport = append(transport, s.Payload...)
		sum := Checksum(transport, pseudoHeaderSum(s.SrcIP, s.DstIP, 6, len(transport)))
		binary.BigEndian.PutUint16(transport[16:18], sum)
	case 17:
		udp := UDP{
			SrcPort: s.SrcPort, DstPort: s.DstPort,
			Length: uint16(udpHeaderLen + len(s.Payload)),
		}
		transport = AppendUDP(nil, &udp)
		transport = append(transport, s.Payload...)
		sum := Checksum(transport, pseudoHeaderSum(s.SrcIP, s.DstIP, 17, len(transport)))
		if sum == 0 {
			sum = 0xffff // RFC 768: zero checksum means "none"
		}
		binary.BigEndian.PutUint16(transport[6:8], sum)
	default:
		transport = s.Payload
	}

	eth := Ethernet{Dst: s.DstMAC, Src: s.SrcMAC, Type: EtherTypeIPv4}
	dst = AppendEthernet(dst, &eth)
	ip := IPv4{
		TOS: s.TOS, TotalLen: uint16(ipv4MinHeaderLen + len(transport)),
		ID: s.IPID, TTL: ttl, Proto: s.Proto,
		Src: s.SrcIP, Dst: s.DstIP,
	}
	dst = AppendIPv4(dst, &ip)
	dst = append(dst, transport...)
	for len(dst) < s.Pad {
		dst = append(dst, 0)
	}
	return dst
}

// BuildDNSQuery assembles a UDP frame carrying a single-question DNS query.
func BuildDNSQuery(dst []byte, s *FrameSpec, id uint16, qname string, qtype uint16) []byte {
	msg := DNS{ID: id, Recursion: true,
		Questions: []DNSQuestion{{Name: qname, Type: qtype, Class: 1}}}
	spec := *s
	spec.Proto = 17
	spec.DstPort = 53
	spec.Payload = AppendDNS(nil, &msg)
	return BuildFrame(dst, &spec)
}

// BuildDNSResponse assembles a UDP frame carrying a DNS response with the
// given answers (and the matching question).
func BuildDNSResponse(dst []byte, s *FrameSpec, id uint16, qname string, qtype uint16, answers []DNSRecord) []byte {
	msg := DNS{ID: id, Response: true, Recursion: true,
		Questions: []DNSQuestion{{Name: qname, Type: qtype, Class: 1}},
		Answers:   answers}
	spec := *s
	spec.Proto = 17
	spec.SrcPort = 53
	spec.Payload = AppendDNS(nil, &msg)
	return BuildFrame(dst, &spec)
}
