package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestDNSRoundTrip(t *testing.T) {
	orig := DNS{
		ID: 0xbeef, Response: true, Recursion: true, RCode: 0,
		Questions: []DNSQuestion{{Name: "www.example.com", Type: DNSTypeA, Class: 1}},
		Answers: []DNSRecord{
			{Name: "www.example.com", Type: DNSTypeA, Class: 1, TTL: 300, Data: []byte{93, 184, 216, 34}},
			{Name: "www.example.com", Type: DNSTypeA, Class: 1, TTL: 300, Data: []byte{93, 184, 216, 35}},
		},
	}
	wire := AppendDNS(nil, &orig)
	var got DNS
	if err := DecodeDNS(wire, &got); err != nil {
		t.Fatalf("DecodeDNS: %v", err)
	}
	if got.ID != orig.ID || !got.Response || !got.Recursion {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.com" {
		t.Errorf("questions = %+v", got.Questions)
	}
	if len(got.Answers) != 2 || !bytes.Equal(got.Answers[0].Data, []byte{93, 184, 216, 34}) {
		t.Errorf("answers = %+v", got.Answers)
	}
}

func TestDNSCompressionPointer(t *testing.T) {
	// Hand-encode a response whose answer name is a pointer to the question
	// name at offset 12.
	var msg []byte
	msg = binary.BigEndian.AppendUint16(msg, 0x1234) // id
	msg = binary.BigEndian.AppendUint16(msg, 0x8180) // response flags
	msg = binary.BigEndian.AppendUint16(msg, 1)      // qdcount
	msg = binary.BigEndian.AppendUint16(msg, 1)      // ancount
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = appendDNSName(msg, "a.example.org")
	msg = binary.BigEndian.AppendUint16(msg, DNSTypeA)
	msg = binary.BigEndian.AppendUint16(msg, 1)
	msg = append(msg, 0xc0, 12) // pointer to question name
	msg = binary.BigEndian.AppendUint16(msg, DNSTypeA)
	msg = binary.BigEndian.AppendUint16(msg, 1)
	msg = binary.BigEndian.AppendUint32(msg, 60)
	msg = binary.BigEndian.AppendUint16(msg, 4)
	msg = append(msg, 1, 2, 3, 4)

	var d DNS
	if err := DecodeDNS(msg, &d); err != nil {
		t.Fatalf("DecodeDNS: %v", err)
	}
	if len(d.Answers) != 1 || d.Answers[0].Name != "a.example.org" {
		t.Errorf("answer name = %+v", d.Answers)
	}
}

func TestDNSPointerLoopRejected(t *testing.T) {
	var msg []byte
	msg = binary.BigEndian.AppendUint16(msg, 1)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 1) // one question
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	msg = binary.BigEndian.AppendUint16(msg, 0)
	// A name that points at itself (offset 12).
	msg = append(msg, 0xc0, 12)
	msg = binary.BigEndian.AppendUint16(msg, DNSTypeA)
	msg = binary.BigEndian.AppendUint16(msg, 1)
	var d DNS
	if err := DecodeDNS(msg, &d); err == nil {
		t.Fatal("self-referential pointer accepted")
	}
}

func TestDNSTruncatedRejected(t *testing.T) {
	q := DNS{ID: 1, Questions: []DNSQuestion{{Name: "x.io", Type: 1, Class: 1}}}
	wire := AppendDNS(nil, &q)
	var d DNS
	for cut := 1; cut < len(wire); cut++ {
		if err := DecodeDNS(wire[:cut], &d); err == nil {
			t.Errorf("accepted truncation at %d of %d bytes", cut, len(wire))
		}
	}
}

func TestDNSNameLevel(t *testing.T) {
	cases := []struct {
		name  string
		level int
		want  string
	}{
		{"a.b.example.com", 1, "com"},
		{"a.b.example.com", 2, "example.com"},
		{"a.b.example.com", 4, "a.b.example.com"},
		{"a.b.example.com", 9, "a.b.example.com"},
		{"com", 1, "com"},
		{"a.b", 0, ""},
	}
	for _, c := range cases {
		if got := DNSNameLevel(c.name, c.level); got != c.want {
			t.Errorf("DNSNameLevel(%q, %d) = %q, want %q", c.name, c.level, got, c.want)
		}
	}
}

// Property: DNSNameLevel behaves like prefix truncation — composing a finer
// truncation with a coarser one equals the coarser truncation directly.
func TestDNSNameLevelComposition(t *testing.T) {
	f := func(raw []byte, lRaw, kRaw uint8) bool {
		name := sanitizeName(raw)
		l := int(lRaw%8) + 1
		k := int(kRaw%8) + 1
		if k > l {
			l, k = k, l
		}
		return DNSNameLevel(DNSNameLevel(name, l), k) == DNSNameLevel(name, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitizeName builds a small dotted name from arbitrary bytes.
func sanitizeName(raw []byte) string {
	const letters = "abcdefghij"
	labels := len(raw)%5 + 1
	name := make([]byte, 0, labels*3)
	for i := 0; i < labels; i++ {
		if i > 0 {
			name = append(name, '.')
		}
		name = append(name, letters[i], letters[(i+3)%10])
	}
	return string(name)
}

func TestBuildDNSQueryParses(t *testing.T) {
	spec := FrameSpec{SrcIP: IPv4Addr(10, 0, 0, 5), DstIP: IPv4Addr(8, 8, 8, 8), SrcPort: 40000}
	frame := BuildDNSQuery(nil, &spec, 77, "tunnel.evil.example", DNSTypeTXT)
	var pkt Packet
	if err := NewParser(ParserOptions{DecodeDNS: true}).Parse(frame, &pkt); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !pkt.Has(LayerDNS) {
		t.Fatal("DNS layer missing")
	}
	if pkt.DNS.ID != 77 || pkt.DNS.Response {
		t.Errorf("dns header = %+v", pkt.DNS)
	}
	if pkt.DNS.Questions[0].Name != "tunnel.evil.example" || pkt.DNS.Questions[0].Type != DNSTypeTXT {
		t.Errorf("question = %+v", pkt.DNS.Questions[0])
	}
}

func TestBuildDNSResponseParses(t *testing.T) {
	spec := FrameSpec{SrcIP: IPv4Addr(8, 8, 8, 8), DstIP: IPv4Addr(10, 0, 0, 5), DstPort: 40000}
	ans := []DNSRecord{{Name: "x.example", Type: DNSTypeA, Class: 1, TTL: 5, Data: []byte{1, 2, 3, 4}}}
	frame := BuildDNSResponse(nil, &spec, 9, "x.example", DNSTypeA, ans)
	var pkt Packet
	if err := NewParser(ParserOptions{DecodeDNS: true}).Parse(frame, &pkt); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !pkt.Has(LayerDNS) || !pkt.DNS.Response {
		t.Fatal("response flag lost")
	}
	if len(pkt.DNS.Answers) != 1 || pkt.DNS.Answers[0].Name != "x.example" {
		t.Errorf("answers = %+v", pkt.DNS.Answers)
	}
	// DNS parsing disabled: same frame decodes but without the DNS layer.
	var plain Packet
	if err := NewParser(ParserOptions{}).Parse(frame, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Has(LayerDNS) {
		t.Error("DNS decoded despite DecodeDNS=false")
	}
}

func TestParserZeroAllocOnPlainTCP(t *testing.T) {
	frame := BuildFrame(nil, &FrameSpec{SrcIP: 1, DstIP: 2, Proto: 6, SrcPort: 1, DstPort: 2, Payload: []byte("abc")})
	p := NewParser(ParserOptions{})
	var pkt Packet
	allocs := testing.AllocsPerRun(200, func() {
		if err := p.Parse(frame, &pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Parse allocated %.1f times per packet; want 0", allocs)
	}
}

func BenchmarkParseTCP(b *testing.B) {
	frame := BuildFrame(nil, &FrameSpec{SrcIP: 1, DstIP: 2, Proto: 6, SrcPort: 1, DstPort: 2, Payload: make([]byte, 512)})
	p := NewParser(ParserOptions{})
	var pkt Packet
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Parse(frame, &pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseDNS(b *testing.B) {
	spec := FrameSpec{SrcIP: 1, DstIP: 2, SrcPort: 4000}
	frame := BuildDNSQuery(nil, &spec, 1, "deep.label.chain.example.com", DNSTypeA)
	p := NewParser(ParserOptions{DecodeDNS: true})
	var pkt Packet
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Parse(frame, &pkt); err != nil {
			b.Fatal(err)
		}
	}
}
