package packet

import (
	"errors"
	"fmt"
)

// ErrUnsupportedLayer reports a frame whose next layer the parser does not
// understand (e.g. ARP); the decoded prefix of the packet remains valid.
var ErrUnsupportedLayer = errors.New("packet: unsupported layer")

// ParserOptions control how deep the parser decodes.
type ParserOptions struct {
	// DecodeDNS enables DNS message parsing on UDP/TCP port 53 traffic.
	// Deep parsing allocates (names are decompressed into strings), so the
	// switch-side parser leaves it off and only the emitter/stream side
	// enables it, mirroring the paper's split between switch parsing and
	// stream-processor parsing.
	DecodeDNS bool
}

// Parser decodes frames into Packet views. It is the analogue of gopacket's
// DecodingLayerParser: one Parser owns the scratch state and may be reused
// across packets; it is not safe for concurrent use.
type Parser struct {
	opts ParserOptions
}

// NewParser returns a Parser with the given options.
func NewParser(opts ParserOptions) *Parser {
	return &Parser{opts: opts}
}

// Parse decodes data into pkt. On ErrUnsupportedLayer the layers decoded so
// far are valid and pkt.Payload holds the undecoded remainder. Any other
// error means the frame is malformed.
func (p *Parser) Parse(data []byte, pkt *Packet) error {
	pkt.Reset()
	pkt.Data = data

	rest, err := DecodeEthernet(data, &pkt.Eth)
	if err != nil {
		return err
	}
	pkt.Layers |= LayerEthernet

	var proto uint8
	switch pkt.Eth.Type {
	case EtherTypeIPv4:
		rest, err = DecodeIPv4(rest, &pkt.IPv4)
		if err != nil {
			return err
		}
		pkt.Layers |= LayerIPv4
		if pkt.IPv4.FragOff != 0 {
			// Non-first fragments carry no transport header.
			pkt.Payload = rest
			if len(rest) > 0 {
				pkt.Layers |= LayerPayload
			}
			return nil
		}
		proto = pkt.IPv4.Proto
	case EtherTypeIPv6:
		rest, err = DecodeIPv6(rest, &pkt.IPv6)
		if err != nil {
			return err
		}
		pkt.Layers |= LayerIPv6
		proto = pkt.IPv6.NextHeader
	default:
		pkt.Payload = rest
		if len(rest) > 0 {
			pkt.Layers |= LayerPayload
		}
		return fmt.Errorf("%w: ethertype %#04x", ErrUnsupportedLayer, pkt.Eth.Type)
	}

	switch proto {
	case 6: // TCP
		rest, err = DecodeTCP(rest, &pkt.TCP)
		if err != nil {
			return err
		}
		pkt.Layers |= LayerTCP
		pkt.Payload = rest
	case 17: // UDP
		rest, err = DecodeUDP(rest, &pkt.UDP)
		if err != nil {
			return err
		}
		pkt.Layers |= LayerUDP
		pkt.Payload = rest
	default:
		pkt.Payload = rest
		if len(rest) > 0 {
			pkt.Layers |= LayerPayload
		}
		return nil
	}
	if len(pkt.Payload) > 0 {
		pkt.Layers |= LayerPayload
	}

	if p.opts.DecodeDNS && len(pkt.Payload) >= dnsHeaderLen && isDNSPort(pkt) {
		if err := DecodeDNS(pkt.Payload, &pkt.DNS); err == nil {
			pkt.Layers |= LayerDNS
		}
		// A malformed DNS payload is not a malformed packet; queries simply
		// see no DNS fields.
	}
	return nil
}

// Adopt copies an already-parsed header view from src into dst and applies
// this parser's deep-decode options on top, re-using dst's scratch storage.
// It lets a second pipeline stage (the emitter) reuse the switch's header
// parse instead of re-decoding the frame, while still performing the deep
// (DNS) decode only it enables. src is not modified and may be shared
// read-only across goroutines.
func (p *Parser) Adopt(src, dst *Packet) {
	dns := dst.DNS
	*dst = *src
	dst.DNS = dns
	dst.DNS.reset()
	dst.Layers &^= LayerDNS
	if p.opts.DecodeDNS && len(dst.Payload) >= dnsHeaderLen && isDNSPort(dst) {
		if err := DecodeDNS(dst.Payload, &dst.DNS); err == nil {
			dst.Layers |= LayerDNS
		}
	}
}

func isDNSPort(pkt *Packet) bool {
	if pkt.Has(LayerUDP) {
		return pkt.UDP.SrcPort == 53 || pkt.UDP.DstPort == 53
	}
	if pkt.Has(LayerTCP) {
		return pkt.TCP.SrcPort == 53 || pkt.TCP.DstPort == 53
	}
	return false
}
