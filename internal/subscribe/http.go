package subscribe

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
)

// SubSnapshot describes one attached subscriber for /debug/subscribers.
type SubSnapshot struct {
	ID             uint64   `json:"id"`
	Mode           string   `json:"mode"`
	Policy         string   `json:"policy"`
	SampleInterval string   `json:"sample_interval,omitempty"`
	Queries        []uint16 `json:"queries,omitempty"` // empty = all
	AllLevels      bool     `json:"all_levels"`
	QueueLen       int      `json:"queue_len"`
	QueueCap       int      `json:"queue_cap"`
	Highwater      int      `json:"highwater"`
	Delivered      uint64   `json:"delivered"`
	Dropped        uint64   `json:"dropped"`
}

// Snapshot is the /debug/subscribers document.
type Snapshot struct {
	Active      int           `json:"active"`
	Instances   int           `json:"instances"` // (query, level) keys with retained state
	Subscribers []SubSnapshot `json:"subscribers"`
}

// Snapshot captures the current subscriber set, ordered by id.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Active:      len(s.subs),
		Instances:   len(s.last),
		Subscribers: make([]SubSnapshot, 0, len(s.subs)),
	}
	for _, sub := range s.subs {
		ss := SubSnapshot{
			ID:        sub.id,
			Mode:      sub.req.Mode.String(),
			Policy:    sub.req.Policy.String(),
			Queries:   sub.req.Queries,
			AllLevels: sub.req.AllLevels,
			QueueLen:  len(sub.q),
			QueueCap:  sub.req.QueueCap,
			Highwater: sub.highwater,
			Delivered: sub.delivered,
			Dropped:   sub.dropped,
		}
		if sub.req.SampleInterval > 0 {
			ss.SampleInterval = sub.req.SampleInterval.String()
		}
		snap.Subscribers = append(snap.Subscribers, ss)
	}
	sort.Slice(snap.Subscribers, func(i, j int) bool {
		return snap.Subscribers[i].ID < snap.Subscribers[j].ID
	})
	return snap
}

// Handler serves the subscriber set as /debug/subscribers:
//
//	/debug/subscribers           JSON Snapshot
//	/debug/subscribers?fmt=text  aligned table, one row per subscriber
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		if r.URL.Query().Get("fmt") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, renderSubscribers(&snap))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&snap)
	})
}

func renderSubscribers(snap *Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d subscriber(s), %d instance(s) with retained state\n",
		snap.Active, snap.Instances)
	if len(snap.Subscribers) == 0 {
		return b.String()
	}
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "ID\tMODE\tPOLICY\tINTERVAL\tQUERIES\tLEVELS\tQUEUE\tHIWAT\tDELIVERED\tDROPPED\t")
	for i := range snap.Subscribers {
		ss := &snap.Subscribers[i]
		iv := "-"
		if ss.SampleInterval != "" {
			iv = ss.SampleInterval
		}
		qs := "all"
		if len(ss.Queries) > 0 {
			parts := make([]string, len(ss.Queries))
			for j, q := range ss.Queries {
				parts[j] = fmt.Sprint(q)
			}
			qs = strings.Join(parts, ",")
		}
		levels := "finest"
		if ss.AllLevels {
			levels = "all"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%d/%d\t%d\t%d\t%d\t\n",
			ss.ID, ss.Mode, ss.Policy, iv, qs, levels,
			ss.QueueLen, ss.QueueCap, ss.Highwater, ss.Delivered, ss.Dropped)
	}
	tw.Flush()
	return b.String()
}
