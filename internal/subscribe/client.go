package subscribe

import (
	"fmt"
	"io"
	"net"

	"repro/internal/netproto"
)

// Client consumes a subscription stream: one MsgSubscribe/MsgSubscribeOK
// handshake, then MsgNotify frames until the connection drops.
type Client struct {
	pc *netproto.Conn
	// ID is the server-assigned subscriber id (set by Subscribe).
	ID uint64
}

// NewClient wraps an established transport. Call Subscribe before Recv.
func NewClient(rw io.ReadWriter) *Client {
	return &Client{pc: netproto.NewConn(rw)}
}

// Dial connects to a subscription server and performs the handshake. The
// returned conn is owned by the caller (close it to end the subscription).
func Dial(addr string, req SubscribeRequest) (*Client, net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	c := NewClient(nc)
	if err := c.Subscribe(req); err != nil {
		nc.Close()
		return nil, nil, err
	}
	return c, nc, nil
}

// Subscribe sends the request and waits for the ack.
func (c *Client) Subscribe(req SubscribeRequest) error {
	var ack SubscribeAck
	if err := c.pc.Call(netproto.MsgSubscribe, &req, netproto.MsgSubscribeOK, &ack); err != nil {
		return err
	}
	c.ID = ack.ID
	return nil
}

// RecvRaw returns the next notify frame's undecoded body — the exact bytes
// the server encoded, which the differential tests compare bit-for-bit.
func (c *Client) RecvRaw() ([]byte, error) {
	t, body, err := c.pc.RecvRaw()
	if err != nil {
		return nil, err
	}
	if t != netproto.MsgNotify {
		return nil, fmt.Errorf("subscribe: got %v frame, want notify", t)
	}
	return body, nil
}

// Recv returns the next decoded update.
func (c *Client) Recv() (Update, error) {
	body, err := c.RecvRaw()
	if err != nil {
		return Update{}, err
	}
	return DecodeUpdate(body)
}
