package subscribe

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/flightrec"
	"repro/internal/netproto"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/tracez"
)

// DefaultQueueCap is the per-subscriber send-queue depth when the request
// leaves QueueCap zero: deep enough to ride out a transient stall, shallow
// enough that an evicted consumer's backlog is bounded.
const DefaultQueueCap = 64

// closeGrace bounds how long Close waits for a subscriber's writer to flush
// before forcing the transport shut.
const closeGrace = 2 * time.Second

// ErrClosed is returned by Attach/HandleConn after Close.
var ErrClosed = errors.New("subscribe: server closed")

// frameOverhead is the netproto frame header (u32 length | u8 type) that
// rides in front of every notify body on the wire.
const frameOverhead = 5

// frame is one encoded (query, level) window update, refcounted so the
// publisher, the retained last-state slot, and every subscriber queue share
// the same bytes. Frames are pooled; release recycles when the last
// reference drops. The count is plain (not atomic) by design: it is only
// touched under the server mutex (Publish, enqueue, drop-oldest) or by the
// single writer goroutine draining a queue, and writers release through
// Server.release which takes the mutex.
type frame struct {
	buf        []byte
	payloadOff int // header ends here; fingerprint covers buf[payloadOff:]
	fp         uint64
	key        stream.QueryKey
	window     int
	refs       int
}

// subscriber is one attached consumer: its request, its bounded queue, and
// the writer goroutine draining it.
type subscriber struct {
	id     uint64
	req    SubscribeRequest
	pc     *netproto.Conn
	closer io.Closer // underlying transport, when it can be closed
	nc     net.Conn  // non-nil when the transport supports write deadlines

	q    chan *frame
	done chan struct{} // closed when the writer goroutine exits

	// lastSamp paces Sample-mode delivery per (query, level); touched only
	// under the server mutex (the publish path).
	lastSamp map[stream.QueryKey]time.Time

	// Stats below are written under the server mutex; the debug endpoint
	// reads them the same way.
	evicted   bool
	highwater int
	delivered uint64
	dropped   uint64
}

// matches reports whether the subscriber's filter admits the instance.
func (sub *subscriber) matches(key stream.QueryKey, isFinest bool) bool {
	if !sub.req.AllLevels && !isFinest {
		return false
	}
	if len(sub.req.Queries) == 0 {
		return true
	}
	for _, q := range sub.req.Queries {
		if q == key.QID {
			return true
		}
	}
	return false
}

// wants applies the subscription mode to one update. changed is the
// OnChange signal (payload fingerprint moved since the previous window).
func (sub *subscriber) wants(key stream.QueryKey, changed, isFinest bool, now time.Time) bool {
	mode := sub.req.Mode
	if mode == TargetDefined {
		if isFinest {
			mode = OnChange
		} else {
			mode = Sample
		}
	}
	switch mode {
	case OnChange:
		return changed
	case Sample:
		iv := sub.req.SampleInterval
		if iv <= 0 {
			return true
		}
		if last, ok := sub.lastSamp[key]; ok && now.Sub(last) < iv {
			return false
		}
		sub.lastSamp[key] = now
		return true
	}
	return true
}

type serverMetrics struct {
	active     *telemetry.Gauge
	accepted   *telemetry.Counter
	updates    *telemetry.Counter
	delivered  *telemetry.Counter
	dropped    *telemetry.Counter
	evictions  *telemetry.Counter
	queueDepth *telemetry.Gauge
	highwater  *telemetry.Gauge
	sendNS     *telemetry.Histogram
	sentBytes  *telemetry.Counter
}

// Server fans window results out to subscribers. It implements
// runtime.ResultSink (Publish) and runtime.FlightRecAttacher, so one
// SetResultSink call wires both delivery and per-instance attribution.
//
// The zero Server is not usable; call NewServer.
type Server struct {
	mu     sync.Mutex
	subs   map[uint64]*subscriber
	nextID uint64
	closed bool

	// Per-instance publish state: prevFP/seen drive OnChange dedup, last
	// retains the newest frame for initial sync of late joiners, finest
	// tracks which level carries each query's operator-facing answers.
	prevFP map[stream.QueryKey]uint64
	seen   map[stream.QueryKey]bool
	last   map[stream.QueryKey]*frame
	finest map[uint16]uint8

	pool   sync.Pool // *frame
	lookup func(qid uint16, level uint8) *flightrec.Probe
	m      serverMetrics
	depth  int // frames currently queued across all subscribers
	// tring is the span lane Publish records its fan-out span into. Publish
	// runs on the runtime's close path, so writes are single-threaded with
	// the runtime's other lane-0 spans (nil when tracing is off).
	tring *tracez.Ring
}

// NewServer returns an empty subscription server; wire it with
// rt.SetResultSink(s) and (optionally) Instrument / AttachFlightRec.
func NewServer() *Server {
	s := &Server{
		subs:   make(map[uint64]*subscriber),
		nextID: 1,
		prevFP: make(map[stream.QueryKey]uint64),
		seen:   make(map[stream.QueryKey]bool),
		last:   make(map[stream.QueryKey]*frame),
		finest: make(map[uint16]uint8),
	}
	s.pool.New = func() any { return &frame{} }
	return s
}

// Instrument registers the server's metrics against reg (nil disables; the
// handles are nil-safe).
func (s *Server) Instrument(reg *telemetry.Registry) {
	s.m = serverMetrics{
		active: reg.Gauge("sonata_subscribe_active",
			"Currently attached result subscribers."),
		accepted: reg.Counter("sonata_subscribe_accepted_total",
			"Subscriptions accepted since start."),
		updates: reg.Counter("sonata_subscribe_updates_total",
			"Per-instance window updates encoded for fan-out."),
		delivered: reg.Counter("sonata_subscribe_delivered_total",
			"Notify frames written to subscribers."),
		dropped: reg.Counter("sonata_subscribe_dropped_total",
			"Queued updates discarded by drop-oldest backpressure."),
		evictions: reg.Counter("sonata_subscribe_evictions_total",
			"Subscribers forcibly evicted: queue overflow under the disconnect policy, or a failed write."),
		queueDepth: reg.Gauge("sonata_subscribe_queue_depth",
			"Updates currently queued across all subscriber send queues."),
		highwater: reg.Gauge("sonata_subscribe_queue_highwater",
			"Deepest single subscriber send queue observed."),
		sendNS: reg.Histogram("sonata_subscribe_send_ns",
			"Wall time writing one notify frame to a subscriber in nanoseconds.",
			telemetry.DurationBuckets),
		sentBytes: reg.Counter("sonata_subscribe_sent_bytes_total",
			"Bytes written to subscribers, frame headers included."),
	}
}

// AttachFlightRec wires per-(query, level) delivery-byte attribution; the
// runtime forwards its probe lookup here when both a flight recorder and
// this sink are attached. A nil lookup detaches.
func (s *Server) AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe) {
	s.mu.Lock()
	s.lookup = lookup
	s.mu.Unlock()
}

// AttachTracez wires the span lane Publish records its subscribe_fanout
// span into; the runtime forwards its orchestration lane here. A nil ring
// detaches.
func (s *Server) AttachTracez(r *tracez.Ring) {
	s.mu.Lock()
	s.tring = r
	s.mu.Unlock()
}

// Publish fans one closed window out to every subscriber. It is called on
// the runtime's window-close path and never blocks: each matching update is
// encoded once into a pooled, refcounted frame and enqueued without copying;
// a full queue triggers the subscriber's eviction policy inline. Delivery
// bytes are attributed to the window's flight-recorder record at enqueue
// time, which is why the runtime publishes before sealing the window.
func (s *Server) Publish(rep *runtime.WindowReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	sp := s.tring.Start(tracez.NameSubscribeFanout)
	sp.Attr(tracez.AttrSubscribers, uint64(len(s.subs)))
	defer sp.End()
	var fanUpdates, fanBytes uint64
	defer func() {
		sp.Attr(tracez.AttrUpdates, fanUpdates)
		sp.Attr(tracez.AttrBytes, fanBytes)
	}()
	// rep.Results carries exactly the finest-level outputs; remember each
	// query's finest level for TargetDefined and level filtering.
	for i := range rep.Results {
		s.finest[rep.Results[i].QID] = rep.Results[i].Level
	}
	if len(s.subs) == 0 && len(s.last) == 0 {
		// Nobody listening and nothing retained: skip encoding entirely so
		// an unsubscribed deployment pays nothing per window.
		return
	}
	now := time.Now()
	for i := range rep.AllResults {
		res := &rep.AllResults[i]
		key := stream.QueryKey{QID: res.QID, Level: res.Level}
		isFinest := s.finest[res.QID] == res.Level

		f := s.pool.Get().(*frame)
		f.key, f.window, f.refs = key, rep.Index, 1
		f.buf = appendHeader(f.buf[:0], rep.Index, key)
		f.payloadOff = len(f.buf)
		f.buf = appendResult(f.buf, res)
		f.fp = fingerprint(f.buf[f.payloadOff:])
		changed := f.fp != s.prevFP[key] || !s.seen[key]
		s.prevFP[key], s.seen[key] = f.fp, true
		s.m.updates.Inc()
		fanUpdates++

		// Retain the newest frame per instance for late-joiner initial sync.
		if old := s.last[key]; old != nil {
			s.releaseLocked(old)
		}
		f.refs++
		s.last[key] = f

		enqueued := 0
		for _, sub := range s.subs {
			if !sub.matches(key, isFinest) || !sub.wants(key, changed, isFinest, now) {
				continue
			}
			if s.enqueueLocked(sub, f) {
				enqueued++
			}
		}
		if enqueued > 0 {
			n := uint64(enqueued * (len(f.buf) + frameOverhead))
			fanBytes += n
			if s.lookup != nil {
				if p := s.lookup(key.QID, key.Level); p != nil {
					p.Delivered(n)
				}
			}
		}
		s.releaseLocked(f)
	}
	s.m.queueDepth.Set(int64(s.depth))
}

// enqueueLocked hands one frame to a subscriber without blocking, applying
// its backpressure policy on overflow. Reports whether the frame was
// queued. Caller holds s.mu.
func (s *Server) enqueueLocked(sub *subscriber, f *frame) bool {
	f.refs++
	for {
		select {
		case sub.q <- f:
			s.depth++
			if d := len(sub.q); d > sub.highwater {
				sub.highwater = d
				if int64(d) > s.m.highwater.Value() {
					s.m.highwater.Set(int64(d))
				}
			}
			return true
		default:
		}
		if sub.req.Policy == Disconnect {
			f.refs--
			s.evictLocked(sub)
			return false
		}
		// DropOldest: pop one (racing benignly with the writer, which may
		// drain it first) and retry. Dropping shrinks the queue by one, so
		// the retry can only go around once per concurrent writer read.
		select {
		case old := <-sub.q:
			s.depth--
			sub.dropped++
			s.m.dropped.Inc()
			s.releaseLocked(old)
		default:
		}
	}
}

// evictLocked forcibly removes a subscriber: it is deleted from the fan-out
// set, its transport is closed (unblocking a writer stalled mid-Write), and
// its queue is closed so the writer drains and exits. Never blocks; caller
// holds s.mu.
func (s *Server) evictLocked(sub *subscriber) {
	if sub.evicted {
		return
	}
	sub.evicted = true
	delete(s.subs, sub.id)
	s.m.evictions.Inc()
	s.m.active.Set(int64(len(s.subs)))
	if sub.closer != nil {
		sub.closer.Close()
	}
	close(sub.q)
}

// releaseLocked drops one reference; the last reference recycles the frame
// into the pool. Caller holds s.mu.
func (s *Server) releaseLocked(f *frame) {
	f.refs--
	if f.refs == 0 {
		s.pool.Put(f)
	}
}

// release is releaseLocked for the writer goroutines.
func (s *Server) release(f *frame) {
	s.mu.Lock()
	s.releaseLocked(f)
	s.mu.Unlock()
}

// writer drains one subscriber's queue onto its transport. Frames are
// written verbatim (the fan-out shares one encoding); a failed write evicts
// the subscriber and the remaining queue is released unsent.
func (s *Server) writer(sub *subscriber) {
	defer close(sub.done)
	for f := range sub.q {
		start := time.Now()
		err := sub.pc.SendRaw(netproto.MsgNotify, f.buf)
		s.m.sendNS.ObserveDuration(time.Since(start))
		n := len(f.buf) + frameOverhead
		s.mu.Lock()
		s.depth--
		s.releaseLocked(f)
		if err == nil {
			sub.delivered++
		}
		s.mu.Unlock()
		if err != nil {
			s.mu.Lock()
			if !sub.evicted {
				s.evictLocked(sub)
			}
			s.mu.Unlock()
			for g := range sub.q {
				s.mu.Lock()
				s.depth--
				s.releaseLocked(g)
				s.mu.Unlock()
			}
			return
		}
		s.m.delivered.Inc()
		s.m.sentBytes.Add(uint64(n))
	}
}

// Attach subscribes a local consumer over any writer (no MsgSubscribe
// handshake — the bench and in-process consumers use this). If w implements
// io.Closer it is closed on eviction; a net.Conn additionally gets a write
// deadline during Close's grace period. Retained last-state frames matching
// the filter are queued immediately (initial sync). Returns the subscriber
// id for Detach.
func (s *Server) Attach(w io.Writer, req SubscribeRequest) (uint64, error) {
	sub, err := s.attach(w, req)
	if err != nil {
		return 0, err
	}
	go s.writer(sub)
	return sub.id, nil
}

func (s *Server) attach(w io.Writer, req SubscribeRequest) (*subscriber, error) {
	if req.QueueCap <= 0 {
		req.QueueCap = DefaultQueueCap
	}
	if req.Mode > TargetDefined {
		return nil, fmt.Errorf("subscribe: unknown mode %d", req.Mode)
	}
	if req.Policy > Disconnect {
		return nil, fmt.Errorf("subscribe: unknown eviction policy %d", req.Policy)
	}
	sub := &subscriber{
		req:      req,
		pc:       netproto.NewConn(writeOnly{w}),
		q:        make(chan *frame, req.QueueCap),
		done:     make(chan struct{}),
		lastSamp: make(map[stream.QueryKey]time.Time),
	}
	if c, ok := w.(io.Closer); ok {
		sub.closer = c
	}
	if nc, ok := w.(net.Conn); ok {
		sub.nc = nc
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	sub.id = s.nextID
	s.nextID++
	s.subs[sub.id] = sub
	s.m.accepted.Inc()
	s.m.active.Set(int64(len(s.subs)))
	// Initial sync: the retained newest frame per matching instance, so an
	// OnChange subscriber starts from current state, not from the next diff.
	for key, f := range s.last {
		if sub.matches(key, s.finest[key.QID] == key.Level) {
			s.enqueueLocked(sub, f)
		}
	}
	s.mu.Unlock()
	return sub, nil
}

// abort tears down a subscriber whose writer was never started (a failed
// handshake): it is removed from the fan-out set and its queue drained.
func (s *Server) abort(sub *subscriber) {
	s.mu.Lock()
	if !sub.evicted {
		sub.evicted = true
		delete(s.subs, sub.id)
		s.m.active.Set(int64(len(s.subs)))
		close(sub.q)
	}
	for f := range sub.q {
		s.depth--
		s.releaseLocked(f)
	}
	s.mu.Unlock()
	close(sub.done)
}

// Detach gracefully unsubscribes: queued updates are still flushed, then
// the writer exits. The transport is not closed (the caller owns it).
func (s *Server) Detach(id uint64) {
	s.mu.Lock()
	sub, ok := s.subs[id]
	if ok {
		sub.evicted = true // bar re-eviction; not counted as one
		delete(s.subs, id)
		s.m.active.Set(int64(len(s.subs)))
		close(sub.q)
	}
	s.mu.Unlock()
	if ok {
		<-sub.done
	}
}

// HandleConn serves one subscriber connection: it reads the MsgSubscribe
// request, acknowledges with the assigned id, then streams MsgNotify frames
// until the peer disconnects (the reader doubles as the liveness check).
// The caller owns closing nc.
//
// Write ordering: the subscriber is registered before the ack (so no window
// is missed) but its writer goroutine starts only after the ack is on the
// wire — updates buffer in the queue meanwhile — so the ack always precedes
// the first notify.
func (s *Server) HandleConn(nc net.Conn) error {
	pc := netproto.NewConn(nc)
	var req SubscribeRequest
	if err := pc.Expect(netproto.MsgSubscribe, &req); err != nil {
		return err
	}
	sub, err := s.attach(nc, req)
	if err != nil {
		pc.SendError(err)
		return err
	}
	if err := pc.Send(netproto.MsgSubscribeOK, &SubscribeAck{ID: sub.id}); err != nil {
		s.abort(sub)
		return err
	}
	go s.writer(sub)
	// Block on the read side: a clean EOF or any error means the peer is
	// gone. Subscribers send nothing after the request, so any frame here
	// is protocol misuse and also ends the session.
	_, _, rerr := pc.RecvRaw()
	s.Detach(sub.id)
	return rerr
}

// Serve accepts subscriber connections until the listener closes. Each
// connection is handled on its own goroutine and closed when it ends.
func (s *Server) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer nc.Close()
			_ = s.HandleConn(nc)
		}()
	}
}

// Close shuts the server down: no new subscriptions are accepted, queued
// updates are flushed within a grace period, then transports are closed. A
// subscriber stalled past the grace has its transport forced shut.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	subs := make([]*subscriber, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subs = map[uint64]*subscriber{}
	for key, f := range s.last {
		s.releaseLocked(f)
		delete(s.last, key)
	}
	s.m.active.Set(0)
	for _, sub := range subs {
		sub.evicted = true
		close(sub.q)
		if sub.nc != nil {
			// Bound the flush: a stalled peer unblocks with a timeout error.
			sub.nc.SetWriteDeadline(time.Now().Add(closeGrace))
		}
	}
	s.mu.Unlock()
	for _, sub := range subs {
		select {
		case <-sub.done:
		case <-time.After(closeGrace + time.Second):
			if sub.closer != nil {
				sub.closer.Close()
			}
			<-sub.done
		}
		if sub.closer != nil {
			sub.closer.Close()
		}
	}
	return nil
}

// writeOnly adapts a bare writer to netproto's ReadWriter transport; the
// subscriber path never reads through it.
type writeOnly struct{ io.Writer }

func (writeOnly) Read([]byte) (int, error) { return 0, io.EOF }
