package subscribe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/netproto"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/tuple"
)

// fakeReport fabricates a window report with two queries and one coarse
// refinement level; seed varies the payload so consecutive windows differ.
func fakeReport(index int, seed uint64) *runtime.WindowReport {
	all := []stream.Result{
		{QID: 1, Level: 8, Schema: tuple.Schema{fields.SrcIP},
			Tuples: [][]tuple.Value{{{U: seed}}}},
		{QID: 1, Level: 32, Schema: tuple.Schema{fields.SrcIP, fields.DstPort},
			Tuples: [][]tuple.Value{
				{{U: seed}, {U: 443}},
				{{S: fmt.Sprintf("host-%d", seed), Str: true}, {U: 80}},
			}},
		{QID: 2, Level: 16, Schema: tuple.Schema{fields.DstIP},
			Tuples: [][]tuple.Value{{{U: seed * 3}}}},
	}
	finest := []stream.Result{all[1], all[2]}
	return &runtime.WindowReport{Index: index, Results: finest, AllResults: all}
}

func TestCodecRoundTrip(t *testing.T) {
	rep := fakeReport(7, 42)
	for i := range rep.AllResults {
		res := &rep.AllResults[i]
		key := stream.QueryKey{QID: res.QID, Level: res.Level}
		buf := appendHeader(nil, rep.Index, key)
		buf = appendResult(buf, res)
		u, err := DecodeUpdate(buf)
		if err != nil {
			t.Fatalf("decode q%d/%d: %v", res.QID, res.Level, err)
		}
		if u.Window != 7 || u.QID != res.QID || u.Level != res.Level {
			t.Errorf("header round-trip = %d/q%d/%d, want 7/q%d/%d",
				u.Window, u.QID, u.Level, res.QID, res.Level)
		}
		if !reflect.DeepEqual(u.Schema, res.Schema) {
			t.Errorf("schema round-trip = %v, want %v", u.Schema, res.Schema)
		}
		if !reflect.DeepEqual(u.Tuples, res.Tuples) {
			t.Errorf("tuples round-trip = %v, want %v", u.Tuples, res.Tuples)
		}
	}

	// An empty result survives too.
	empty := stream.Result{QID: 3, Level: 24}
	buf := appendHeader(nil, 0, stream.QueryKey{QID: 3, Level: 24})
	buf = appendResult(buf, &empty)
	if u, err := DecodeUpdate(buf); err != nil || len(u.Tuples) != 0 {
		t.Errorf("empty result round-trip: %v, %v", u, err)
	}

	// Truncations and garbage must error, not panic or hang.
	full := appendResult(appendHeader(nil, 1, stream.QueryKey{QID: 1, Level: 32}),
		&rep.AllResults[1])
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeUpdate(full[:cut]); err == nil {
			t.Errorf("truncation at %d/%d decoded without error", cut, len(full))
		}
	}
	if _, err := DecodeUpdate(append(append([]byte{}, full...), 0)); err == nil {
		t.Error("trailing byte decoded without error")
	}
}

// TestFingerprintIgnoresWindowHeader: the same payload in different windows
// must fingerprint equal (that is what makes OnChange dedup across windows
// work), while a payload change must move the fingerprint.
func TestFingerprintIgnoresWindowHeader(t *testing.T) {
	res := &fakeReport(0, 5).AllResults[1]
	key := stream.QueryKey{QID: res.QID, Level: res.Level}

	fpOf := func(window int, r *stream.Result) uint64 {
		b := appendHeader(nil, window, key)
		off := len(b)
		b = appendResult(b, r)
		return fingerprint(b[off:])
	}
	if fpOf(1, res) != fpOf(2, res) {
		t.Error("fingerprint depends on the window header")
	}
	other := &fakeReport(0, 6).AllResults[1]
	if fpOf(1, res) == fpOf(1, other) {
		t.Error("fingerprint blind to payload change")
	}
}

// collectWriter records every completed notify frame body; SendRaw issues
// two writes (header, body), so frames are reassembled from the stream.
type collectWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *collectWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// frames parses the accumulated stream into notify bodies.
func (w *collectWriter) frames(t *testing.T) [][]byte {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	var out [][]byte
	data := w.buf.Bytes()
	for len(data) > 0 {
		if len(data) < 5 {
			t.Fatalf("trailing partial frame header (%d bytes)", len(data))
		}
		n := int(uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]))
		if data[4] != byte(netproto.MsgNotify) {
			t.Fatalf("unexpected frame type %d", data[4])
		}
		if len(data) < 4+n {
			t.Fatalf("partial frame body")
		}
		out = append(out, data[5:4+n])
		data = data[4+n:]
	}
	return out
}

// waitFrames polls until the writer holds want complete frames.
func (w *collectWriter) waitFrames(t *testing.T, want int) [][]byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs := w.frames(t)
		if len(fs) >= want {
			return fs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d frames, have %d", want, len(fs))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOnChangeDedupAndInitialSync(t *testing.T) {
	s := NewServer()
	defer s.Close()
	a := &collectWriter{}
	if _, err := s.Attach(a, SubscribeRequest{Mode: OnChange, AllLevels: true}); err != nil {
		t.Fatal(err)
	}

	s.Publish(fakeReport(0, 1)) // first window: everything is a change
	a.waitFrames(t, 3)
	s.Publish(fakeReport(1, 1)) // identical payloads: nothing delivered
	s.Publish(fakeReport(2, 2)) // all three instances change
	fs := a.waitFrames(t, 6)
	if len(fs) != 6 {
		t.Fatalf("on-change subscriber got %d frames, want 6", len(fs))
	}
	for _, f := range fs {
		if _, err := DecodeUpdate(f); err != nil {
			t.Fatalf("delivered frame undecodable: %v", err)
		}
	}

	// A late joiner gets the retained state of window 2 as initial sync.
	b := &collectWriter{}
	if _, err := s.Attach(b, SubscribeRequest{Mode: OnChange, AllLevels: true}); err != nil {
		t.Fatal(err)
	}
	sync := b.waitFrames(t, 3)
	for _, f := range sync {
		u, err := DecodeUpdate(f)
		if err != nil || u.Window != 2 {
			t.Fatalf("initial sync frame = window %d (err %v), want 2", u.Window, err)
		}
	}

	// Finest-only subscriber never sees the /8 instance.
	c := &collectWriter{}
	if _, err := s.Attach(c, SubscribeRequest{Mode: OnChange}); err != nil {
		t.Fatal(err)
	}
	s.Publish(fakeReport(3, 3))
	for _, f := range c.waitFrames(t, 2+2) { // 2 sync + 2 changed finest
		u, err := DecodeUpdate(f)
		if err != nil {
			t.Fatal(err)
		}
		if u.QID == 1 && u.Level == 8 {
			t.Error("finest-only subscriber received a coarse-level update")
		}
	}
}

func TestSampleIntervalPacing(t *testing.T) {
	s := NewServer()
	defer s.Close()
	every := &collectWriter{}
	slow := &collectWriter{}
	if _, err := s.Attach(every, SubscribeRequest{Mode: Sample, AllLevels: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Attach(slow, SubscribeRequest{Mode: Sample, AllLevels: true,
		SampleInterval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Publish(fakeReport(i, 1)) // identical payloads: Sample still delivers
	}
	if fs := every.waitFrames(t, 12); len(fs) != 12 {
		t.Errorf("interval-0 sampler got %d frames, want 12 (3 per window)", len(fs))
	}
	// The one-hour sampler saw exactly the first window.
	time.Sleep(20 * time.Millisecond)
	if fs := slow.frames(t); len(fs) != 3 {
		t.Errorf("slow sampler got %d frames, want 3 (first window only)", len(fs))
	}
}

func TestTargetDefinedSplitsByLevel(t *testing.T) {
	s := NewServer()
	defer s.Close()
	w := &collectWriter{}
	if _, err := s.Attach(w, SubscribeRequest{Mode: TargetDefined, AllLevels: true}); err != nil {
		t.Fatal(err)
	}
	// Same payload twice: finest levels (OnChange) dedup, the coarse /8
	// level (Sample, interval 0) is delivered both times.
	s.Publish(fakeReport(0, 1))
	s.Publish(fakeReport(1, 1))
	fs := w.waitFrames(t, 4)
	time.Sleep(20 * time.Millisecond)
	fs = w.frames(t)
	coarse, finest := 0, 0
	for _, f := range fs {
		u, err := DecodeUpdate(f)
		if err != nil {
			t.Fatal(err)
		}
		if u.QID == 1 && u.Level == 8 {
			coarse++
		} else {
			finest++
		}
	}
	if coarse != 2 || finest != 2 {
		t.Errorf("target-defined delivered coarse=%d finest=%d, want 2 and 2", coarse, finest)
	}
}

// TestPublishNeverBlocks is the eviction contract: a subscriber that never
// reads (net.Pipe with no reader, so its writer goroutine stalls mid-write)
// must not delay Publish. Disconnect evicts it; DropOldest recycles its
// queue in place. 200 windows against a dead consumer must finish promptly.
func TestPublishNeverBlocks(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer()
	s.Instrument(reg)
	defer s.Close()

	stalledD, _ := net.Pipe() // reader side discarded: writes block forever
	if _, err := s.Attach(stalledD, SubscribeRequest{Mode: Sample, AllLevels: true,
		Policy: Disconnect, QueueCap: 2}); err != nil {
		t.Fatal(err)
	}
	stalledO, _ := net.Pipe()
	if _, err := s.Attach(stalledO, SubscribeRequest{Mode: Sample, AllLevels: true,
		Policy: DropOldest, QueueCap: 2}); err != nil {
		t.Fatal(err)
	}
	healthy := &collectWriter{}
	if _, err := s.Attach(healthy, SubscribeRequest{Mode: Sample, AllLevels: true,
		QueueCap: 1024}); err != nil {
		t.Fatal(err)
	}

	const windows = 200
	start := time.Now()
	for i := 0; i < windows; i++ {
		s.Publish(fakeReport(i, uint64(i)))
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Errorf("publishing %d windows against stalled subscribers took %v; the close path is being blocked", windows, elapsed)
	}

	snap := reg.Snapshot()
	if ev := snap.Counters["sonata_subscribe_evictions_total"]; ev != 1 {
		t.Errorf("evictions_total = %d, want exactly 1 (the disconnect-policy subscriber)", ev)
	}
	if dr := snap.Counters["sonata_subscribe_dropped_total"]; dr < windows*3-10 {
		t.Errorf("dropped_total = %d, want near %d (drop-oldest churns every enqueue)", dr, windows*3)
	}
	// The healthy subscriber is unaffected by its neighbors' stalls.
	if fs := healthy.waitFrames(t, windows*3); len(fs) != windows*3 {
		t.Errorf("healthy subscriber got %d frames, want %d", len(fs), windows*3)
	}
	if got := snap.Gauges["sonata_subscribe_active"]; got != 2 {
		t.Errorf("active = %d after one eviction of three, want 2", got)
	}
}

func TestDebugSubscribersEndpoint(t *testing.T) {
	s := NewServer()
	defer s.Close()
	w := &collectWriter{}
	if _, err := s.Attach(w, SubscribeRequest{Mode: OnChange, Queries: []uint16{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Attach(&collectWriter{}, SubscribeRequest{Mode: Sample,
		SampleInterval: time.Second, Policy: Disconnect, AllLevels: true}); err != nil {
		t.Fatal(err)
	}
	s.Publish(fakeReport(0, 1))
	time.Sleep(20 * time.Millisecond)

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/subscribers", nil))
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("endpoint JSON undecodable: %v\n%s", err, rr.Body.String())
	}
	if snap.Active != 2 || len(snap.Subscribers) != 2 {
		t.Fatalf("snapshot active=%d subs=%d, want 2/2", snap.Active, len(snap.Subscribers))
	}
	if snap.Subscribers[0].ID >= snap.Subscribers[1].ID {
		t.Error("subscribers not ordered by id")
	}
	first := snap.Subscribers[0]
	if first.Mode != "on-change" || len(first.Queries) != 1 || first.Queries[0] != 1 {
		t.Errorf("first subscriber rendered %+v", first)
	}
	if second := snap.Subscribers[1]; second.SampleInterval != "1s" || second.Policy != "disconnect" {
		t.Errorf("second subscriber rendered %+v", second)
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/subscribers?fmt=text", nil))
	text := rr.Body.String()
	for _, want := range []string{"MODE", "on-change", "disconnect", "2 subscriber(s)"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}

// TestHandleConnLifecycle drives the wire protocol end to end over TCP: the
// handshake acks before any notify, updates arrive decoded, and the server's
// graceful Close flushes queued frames before the transport drops.
func TestHandleConnLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer()
	s.Instrument(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.Serve(ln)

	cl, nc, err := Dial(ln.Addr().String(), SubscribeRequest{Mode: OnChange, AllLevels: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if cl.ID == 0 {
		t.Error("handshake assigned id 0")
	}

	// Wait for the server-side attach before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for s.Snapshot().Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}

	s.Publish(fakeReport(0, 9))
	for i := 0; i < 3; i++ {
		u, err := cl.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if u.Window != 0 {
			t.Errorf("update %d from window %d, want 0", i, u.Window)
		}
	}

	// Close flushes: publish one more window, close immediately, and the
	// subscriber still receives every frame before EOF.
	s.Publish(fakeReport(1, 10))
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	got := 0
	for {
		if _, err := cl.Recv(); err != nil {
			break
		}
		got++
	}
	if got != 3 {
		t.Errorf("received %d frames after Close, want the 3 queued before it", got)
	}
	if err := <-closed; err != nil {
		t.Errorf("close: %v", err)
	}
	if acc := reg.Snapshot().Counters["sonata_subscribe_accepted_total"]; acc != 1 {
		t.Errorf("accepted_total = %d, want 1", acc)
	}
}

func TestDialOutReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var mu sync.Mutex
	var got []Update
	conns := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- c
			go Collect(c, func(u Update) {
				mu.Lock()
				got = append(got, u)
				mu.Unlock()
			})
		}
	}()

	reg := telemetry.NewRegistry()
	d := NewDialOut(ln.Addr().String(), DialOutOptions{
		MinBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})
	d.Instrument(reg)
	defer d.Close()

	countGot := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(got)
	}
	waitGot := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for countGot() < want {
			if time.Now().After(deadline) {
				t.Fatalf("collector has %d updates, want %d", countGot(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	d.Publish(fakeReport(0, 1)) // 2 finest results
	waitGot(2)

	// Rude collector: kill the live connection, then publish more. The
	// exporter must redial and deliver the later windows.
	(<-conns).Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.Publish(fakeReport(1, 2))
		if countGot() >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no updates after collector drop; got %d", countGot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rc := reg.Snapshot().Counters["sonata_subscribe_dialout_reconnects_total"]; rc < 1 {
		t.Errorf("reconnects_total = %d, want >= 1", rc)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, u := range got {
		if u.QID == 1 && u.Level == 8 {
			t.Error("dial-out forwarded a coarse level without AllLevels")
		}
	}
}

// TestLintSubscribeMetrics: every series the package registers obeys the
// repo's naming rules.
func TestLintSubscribeMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer()
	s.Instrument(reg)
	defer s.Close()
	d := NewDialOut("127.0.0.1:1", DialOutOptions{})
	d.Instrument(reg)
	defer d.Close()
	if problems := reg.Lint(); len(problems) != 0 {
		t.Errorf("subscribe metrics lint dirty: %q", problems)
	}
}
