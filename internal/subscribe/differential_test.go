package subscribe_test

import (
	"encoding/hex"
	"net"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/subscribe"
	"repro/internal/telemetry"
)

// TestSubscribeDifferential is the delivery-path correctness contract: N
// concurrent ON_CHANGE subscribers over real TCP each observe the exact
// per-window notify sequence, bit-identical to what the sequential runtime
// publishes, regardless of the worker count — because the runtime's merged
// reports are bit-identical and the server encodes each update exactly once.
// Each run also carries a deliberately stalled subscriber (disconnect
// policy, tiny queue, never reads): it must be evicted without delaying
// window close, which the publish-time histogram bounds.
func TestSubscribeDifferential(t *testing.T) {
	scale := eval.SmallScale()
	w, err := eval.NewWorkload(scale)
	if err != nil {
		t.Fatal(err)
	}
	qs := queries.All(eval.ScaledParams(scale))
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	plan, err := planner.PlanQueries(tr, qs, cfg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	const nSubs = 3
	run := func(workers int) [][]string {
		rt, err := runtime.NewWithOptions(plan, cfg, runtime.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		rt.Instrument(reg, nil)
		srv := subscribe.NewServer()
		srv.Instrument(reg)
		rt.SetResultSink(srv)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go srv.Serve(ln)

		type subResult struct {
			idx    int
			frames []string
		}
		results := make(chan subResult, nSubs)
		for i := 0; i < nSubs; i++ {
			cl, nc, err := subscribe.Dial(ln.Addr().String(), subscribe.SubscribeRequest{
				Mode: subscribe.OnChange, AllLevels: true, QueueCap: 4096,
				Policy: subscribe.Disconnect})
			if err != nil {
				t.Fatal(err)
			}
			go func(idx int) {
				defer nc.Close()
				var fs []string
				for {
					b, err := cl.RecvRaw()
					if err != nil {
						break
					}
					fs = append(fs, hex.EncodeToString(b))
				}
				results <- subResult{idx, fs}
			}(i)
		}
		deadline := time.Now().Add(5 * time.Second)
		for srv.Snapshot().Active < nSubs {
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d subscribers attached", srv.Snapshot().Active, nSubs)
			}
			time.Sleep(time.Millisecond)
		}

		// The saboteur: never reads, asks to be disconnected on overflow.
		stalled, _ := net.Pipe()
		defer stalled.Close()
		if _, err := srv.Attach(stalled, subscribe.SubscribeRequest{
			Mode: subscribe.Sample, AllLevels: true,
			Policy: subscribe.Disconnect, QueueCap: 2}); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < w.Gen.Windows(); i++ {
			rt.ProcessWindow(w.Frames(i))
		}
		srv.Close()

		snap := reg.Snapshot()
		if ev := snap.Counters["sonata_subscribe_evictions_total"]; ev != 1 {
			t.Errorf("workers=%d: evictions_total = %d, want exactly 1 (the stalled subscriber)",
				workers, ev)
		}
		// The latency contract: publishing (including the eviction) must
		// never hold a window close hostage to a dead consumer. A blocked
		// write on the stalled pipe would park here for the full test
		// timeout; bound the whole run's publish time instead.
		if pub := snap.Histograms["sonata_runtime_publish_ns"]; pub.Count == 0 {
			t.Errorf("workers=%d: publish histogram never observed", workers)
		} else if pub.Sum > uint64(5*time.Second) {
			t.Errorf("workers=%d: cumulative publish time %v across %d windows; eviction is delaying window close",
				workers, time.Duration(pub.Sum), pub.Count)
		}

		collected := make([][]string, nSubs)
		for i := 0; i < nSubs; i++ {
			r := <-results
			collected[r.idx] = r.frames
		}
		return collected
	}

	want := run(0) // sequential baseline
	if len(want[0]) == 0 {
		t.Fatal("sequential run delivered no frames")
	}
	for i := 1; i < nSubs; i++ {
		if !equalSeq(want[i], want[0]) {
			t.Fatalf("sequential subscribers diverged: sub0 got %d frames, sub%d got %d",
				len(want[0]), i, len(want[i]))
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got := run(workers)
		for i := 0; i < nSubs; i++ {
			if !equalSeq(got[i], want[0]) {
				t.Errorf("workers=%d subscriber %d: frame sequence diverged from sequential (%d vs %d frames)",
					workers, i, len(got[i]), len(want[0]))
				for j := 0; j < len(got[i]) && j < len(want[0]); j++ {
					if got[i][j] != want[0][j] {
						t.Errorf("  first divergence at frame %d:\n    sequential %s\n    workers=%d %s",
							j, want[0][j], workers, got[i][j])
						break
					}
				}
				break
			}
		}
	}
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
