package subscribe

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fields"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// The notify body is a deterministic uvarint-framed encoding, built once per
// (query, level) per window and shared byte-for-byte by every subscriber:
//
//	header:  uvarint window | uvarint qid | uvarint level
//	payload: uvarint len(schema) | schema field IDs (one byte each)
//	         uvarint len(tuples)
//	         per tuple: uvarint len(row)
//	           per value: u8 tag (0 = uint, 1 = string)
//	             tag 0: uvarint U
//	             tag 1: uvarint len | raw bytes
//
// gob is deliberately avoided on this path: its per-stream type preamble
// would make the first frame differ from later ones, and its map ordering
// is nondeterministic. The fingerprint used for OnChange dedup covers the
// payload only, so the same result in two different windows hashes equal.

// appendHeader appends the window/instance header.
func appendHeader(b []byte, window int, key stream.QueryKey) []byte {
	b = binary.AppendUvarint(b, uint64(window))
	b = binary.AppendUvarint(b, uint64(key.QID))
	b = binary.AppendUvarint(b, uint64(key.Level))
	return b
}

// appendResult appends the payload for one result. Tuple order is the
// engine's output order, which the runtime guarantees is identical across
// worker counts — so the encoding is bit-identical too.
func appendResult(b []byte, res *stream.Result) []byte {
	b = binary.AppendUvarint(b, uint64(len(res.Schema)))
	for _, f := range res.Schema {
		b = append(b, byte(f))
	}
	b = binary.AppendUvarint(b, uint64(len(res.Tuples)))
	for _, row := range res.Tuples {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for i := range row {
			v := &row[i]
			if v.Str {
				b = append(b, 1)
				b = binary.AppendUvarint(b, uint64(len(v.S)))
				b = append(b, v.S...)
			} else {
				b = append(b, 0)
				b = binary.AppendUvarint(b, v.U)
			}
		}
	}
	return b
}

// fingerprint is FNV-1a over the payload bytes.
func fingerprint(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range p {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// DecodeUpdate parses one MsgNotify body.
func DecodeUpdate(body []byte) (Update, error) {
	d := decoder{buf: body}
	window := d.uvarint()
	qid := d.uvarint()
	level := d.uvarint()
	nSchema := d.uvarint()
	u := Update{Window: int(window), QID: uint16(qid), Level: uint8(level)}
	if d.err == nil && nSchema > uint64(len(body)) {
		return u, fmt.Errorf("subscribe: schema length %d exceeds frame", nSchema)
	}
	for i := uint64(0); i < nSchema && d.err == nil; i++ {
		u.Schema = append(u.Schema, fields.ID(d.byte()))
	}
	nTuples := d.uvarint()
	if d.err == nil && nTuples > uint64(len(body)) {
		return u, fmt.Errorf("subscribe: tuple count %d exceeds frame", nTuples)
	}
	for i := uint64(0); i < nTuples && d.err == nil; i++ {
		rowLen := d.uvarint()
		if d.err == nil && rowLen > uint64(len(body)) {
			return u, fmt.Errorf("subscribe: row length %d exceeds frame", rowLen)
		}
		row := make([]tuple.Value, 0, rowLen)
		for j := uint64(0); j < rowLen && d.err == nil; j++ {
			switch tag := d.byte(); tag {
			case 0:
				row = append(row, tuple.Value{U: d.uvarint()})
			case 1:
				row = append(row, tuple.Value{S: d.str(), Str: true})
			default:
				if d.err == nil {
					d.err = fmt.Errorf("subscribe: unknown value tag %d", tag)
				}
			}
		}
		u.Tuples = append(u.Tuples, row)
	}
	if d.err != nil {
		return u, d.err
	}
	if d.off != len(body) {
		return u, fmt.Errorf("subscribe: %d trailing bytes after update", len(body)-d.off)
	}
	return u, nil
}

// decoder is a cursor over a frame body; the first malformed read latches
// err and every later read no-ops, so call sites stay linear.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("subscribe: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("subscribe: truncated frame at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(d.off)+n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("subscribe: string length %d exceeds frame", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
