package subscribe

import (
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/netproto"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// DialOutOptions tunes a dial-out exporter.
type DialOutOptions struct {
	// QueueCap bounds updates buffered across collector outages
	// (0 = DefaultQueueCap). Overflow always drops oldest: the exporter
	// exists to survive a flaky collector, not to disconnect from it.
	QueueCap int
	// AllLevels forwards coarse refinement levels too (default: finest only).
	AllLevels bool
	// MinBackoff/MaxBackoff bound the reconnect backoff (defaults 100ms/5s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
}

// DialOut is the reverse of Serve: instead of collectors subscribing in,
// the monitored process pushes every window to a remote collector —
// gNMI's dial-out telemetry. It implements runtime.ResultSink; Publish
// never blocks regardless of collector health. A background goroutine
// dials the collector with exponential backoff, sends MsgHello, then
// streams MsgNotify frames; on a write failure the frame is retried once
// on the next connection before being counted dropped.
type DialOut struct {
	addr string
	opts DialOutOptions

	mu     sync.Mutex
	q      chan []byte
	closed bool
	done   chan struct{}
	dialed bool // a first connection attempt has happened (run goroutine only)

	reconnects *telemetry.Counter
	sent       *telemetry.Counter
	dropped    *telemetry.Counter
}

// NewDialOut starts an exporter pushing to addr.
func NewDialOut(addr string, opts DialOutOptions) *DialOut {
	if opts.QueueCap <= 0 {
		opts.QueueCap = DefaultQueueCap
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	d := &DialOut{
		addr: addr,
		opts: opts,
		q:    make(chan []byte, opts.QueueCap),
		done: make(chan struct{}),
	}
	go d.run()
	return d
}

// Instrument registers the exporter's metrics (nil-safe).
func (d *DialOut) Instrument(reg *telemetry.Registry) {
	d.reconnects = reg.Counter("sonata_subscribe_dialout_reconnects_total",
		"Dial-out collector connection attempts after the first.")
	d.sent = reg.Counter("sonata_subscribe_dialout_sent_total",
		"Dial-out notify frames delivered to the collector.")
	d.dropped = reg.Counter("sonata_subscribe_dialout_dropped_total",
		"Dial-out updates discarded while the collector was unreachable.")
}

// Publish encodes the window's results and enqueues them, dropping the
// oldest buffered update on overflow. Unlike the fan-out server there is a
// copy per update here — the dial-out queue outlives the window, and one
// collector does not merit a refcounting scheme.
func (d *DialOut) Publish(rep *runtime.WindowReport) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	results := rep.Results
	if d.opts.AllLevels {
		results = rep.AllResults
	}
	for i := range results {
		res := &results[i]
		buf := appendHeader(nil, rep.Index, stream.QueryKey{QID: res.QID, Level: res.Level})
		buf = appendResult(buf, res)
		for {
			select {
			case d.q <- buf:
			default:
				select {
				case <-d.q:
					d.dropped.Inc()
				default:
				}
				continue
			}
			break
		}
	}
}

// run owns the connection: dial with backoff, hello, stream, redial.
func (d *DialOut) run() {
	defer close(d.done)
	var pending []byte // frame that failed mid-connection, retried once
	for {
		conn := d.dial()
		if conn == nil {
			return // closed while dialing
		}
		pc := netproto.NewConn(conn)
		if err := pc.Send(netproto.MsgHello, &netproto.Hello{Version: netproto.ProtocolVersion}); err != nil {
			conn.Close()
			continue
		}
		for {
			var buf []byte
			if pending != nil {
				buf, pending = pending, nil
			} else {
				var ok bool
				buf, ok = <-d.q
				if !ok {
					conn.Close()
					return
				}
			}
			if err := pc.SendRaw(netproto.MsgNotify, buf); err != nil {
				pending = buf
				conn.Close()
				break
			}
			d.sent.Inc()
		}
	}
}

// dial keeps trying until it connects or the exporter closes. Every
// attempt after the exporter's very first counts as a reconnect.
func (d *DialOut) dial() net.Conn {
	backoff := d.opts.MinBackoff
	for {
		d.mu.Lock()
		closed := d.closed
		d.mu.Unlock()
		if closed {
			return nil
		}
		if d.dialed {
			d.reconnects.Inc()
		}
		d.dialed = true
		conn, err := net.Dial("tcp", d.addr)
		if err == nil {
			return conn
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > d.opts.MaxBackoff {
			backoff = d.opts.MaxBackoff
		}
	}
}

// Close stops the exporter; buffered updates not yet on the wire are
// discarded once the current write (if any) finishes.
func (d *DialOut) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.q)
	d.mu.Unlock()
	<-d.done
	return nil
}

// Collect serves one dial-out connection on the collector side: it expects
// the opening MsgHello, then decodes every MsgNotify into handler until the
// peer disconnects. A clean EOF returns nil.
func Collect(conn net.Conn, handler func(Update)) error {
	pc := netproto.NewConn(conn)
	var hello netproto.Hello
	if err := pc.Expect(netproto.MsgHello, &hello); err != nil {
		return err
	}
	for {
		t, body, err := pc.RecvRaw()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if t != netproto.MsgNotify {
			continue
		}
		u, err := DecodeUpdate(body)
		if err != nil {
			return err
		}
		handler(u)
	}
}
