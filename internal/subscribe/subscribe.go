// Package subscribe streams per-window query results to many concurrent
// consumers — the gNMI-style telemetry delivery layer the paper's driver
// leaves to "the operator's collector". A Server sits behind the runtime's
// ResultSink hook: at every window close it encodes each (query, level)
// result exactly once and fans the shared bytes out over internal/netproto
// framing (MsgSubscribe / MsgSubscribeOK / MsgNotify).
//
// The contract with the runtime is strict: Publish never blocks. Every
// subscriber owns a bounded send queue drained by its own writer goroutine;
// when a queue overflows, the subscriber's eviction policy decides whether
// the oldest queued update is discarded (DropOldest) or the subscriber is
// disconnected on the spot (Disconnect). A stalled consumer therefore costs
// the pipeline a queue slot, never a window.
//
// Subscription modes follow gNMI's STREAM semantics:
//
//   - OnChange delivers a (query, level) update only when its encoded
//     payload differs from the previous window's (plus an initial-sync
//     frame of the retained last state on attach);
//   - Sample delivers at most once per SampleInterval per (query, level)
//     (interval 0 means every window);
//   - TargetDefined lets the server choose: OnChange for a query's finest
//     refinement level (the operator-facing answers), Sample for the
//     coarser intermediate levels.
package subscribe

import (
	"time"

	"repro/internal/stream"
	"repro/internal/tuple"
)

// Mode selects when a subscriber receives a (query, level) window update.
type Mode uint8

const (
	// OnChange delivers only windows whose encoded payload changed.
	OnChange Mode = iota
	// Sample delivers at most once per SampleInterval per (query, level).
	Sample
	// TargetDefined lets the server pick: OnChange at a query's finest
	// refinement level, Sample at coarser levels.
	TargetDefined
)

func (m Mode) String() string {
	switch m {
	case OnChange:
		return "on-change"
	case Sample:
		return "sample"
	case TargetDefined:
		return "target-defined"
	default:
		return "mode(?)"
	}
}

// EvictPolicy decides what happens when a subscriber's send queue is full.
type EvictPolicy uint8

const (
	// DropOldest discards the oldest queued update to admit the new one.
	DropOldest EvictPolicy = iota
	// Disconnect evicts the subscriber outright: a consumer that cannot
	// keep up loses its session rather than silently losing data.
	Disconnect
)

func (p EvictPolicy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Disconnect:
		return "disconnect"
	default:
		return "policy(?)"
	}
}

// SubscribeRequest opens a subscription (the MsgSubscribe payload).
type SubscribeRequest struct {
	Mode           Mode
	SampleInterval time.Duration // Sample/TargetDefined pacing; 0 = every window
	Policy         EvictPolicy
	QueueCap       int      // send-queue depth; 0 means DefaultQueueCap
	Queries        []uint16 // restrict to these query IDs (empty = all)
	AllLevels      bool     // include coarse refinement levels, not just finest
}

// SubscribeAck acknowledges a subscription (the MsgSubscribeOK payload).
type SubscribeAck struct {
	ID uint64
}

// Update is one decoded MsgNotify frame: a (query, level) instance's output
// for one window.
type Update struct {
	Window int
	QID    uint16
	Level  uint8
	Schema tuple.Schema
	Tuples [][]tuple.Value
}

// Key returns the instance the update belongs to.
func (u *Update) Key() stream.QueryKey {
	return stream.QueryKey{QID: u.QID, Level: u.Level}
}
