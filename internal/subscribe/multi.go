package subscribe

import (
	"repro/internal/flightrec"
	"repro/internal/runtime"
	"repro/internal/tracez"
)

// MultiSink fans one window report to several sinks — e.g. a local
// subscription server plus a dial-out exporter — behind the runtime's
// single ResultSink slot.
type MultiSink []runtime.ResultSink

// Publish forwards to every sink in order.
func (m MultiSink) Publish(rep *runtime.WindowReport) {
	for _, s := range m {
		if s != nil {
			s.Publish(rep)
		}
	}
}

// AttachFlightRec forwards the probe lookup to every sink that wants it.
func (m MultiSink) AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe) {
	for _, s := range m {
		if a, ok := s.(runtime.FlightRecAttacher); ok {
			a.AttachFlightRec(lookup)
		}
	}
}

// AttachTracez forwards the runtime's span lane to every sink that wants it.
func (m MultiSink) AttachTracez(r *tracez.Ring) {
	for _, s := range m {
		if a, ok := s.(runtime.TracezAttacher); ok {
			a.AttachTracez(r)
		}
	}
}
