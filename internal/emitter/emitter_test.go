package emitter

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tuple"
)

func TestMirrorRoundTrip(t *testing.T) {
	cases := []pisa.Mirror{
		{QID: 1, Level: 32, EntryOp: 2, Vals: []tuple.Value{tuple.U64(42), tuple.U64(1)}},
		{QID: 9, Level: 8, Side: pisa.SideRight, EntryOp: 0, Packet: []byte{1, 2, 3}},
		{QID: 3, Overflow: true, MergeOp: 4, Vals: []tuple.Value{tuple.Str("example.com"), tuple.U64(7)}},
		{QID: 2, Vals: []tuple.Value{tuple.Str("")}, Packet: []byte{}},
	}
	for i, m := range cases {
		wire := EncodeMirror(nil, &m)
		got, err := DecodeMirror(wire)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// Normalize empty-but-non-nil slices for comparison.
		if len(got.Packet) == 0 && len(m.Packet) == 0 {
			got.Packet, m.Packet = nil, nil
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("case %d: got %+v want %+v", i, got, m)
		}
	}
}

func TestMirrorRoundTripProperty(t *testing.T) {
	f := func(qid uint16, level uint8, overflow bool, u uint64, s string, pkt []byte) bool {
		if len(s) > 1000 || len(pkt) > 2000 {
			return true
		}
		m := pisa.Mirror{QID: qid, Level: level, Overflow: overflow,
			EntryOp: int(level % 8), MergeOp: int(level % 4),
			Vals: []tuple.Value{tuple.U64(u), tuple.Str(s)}}
		if len(pkt) > 0 {
			m.Packet = pkt
		}
		got, err := DecodeMirror(EncodeMirror(nil, &m))
		if err != nil {
			return false
		}
		if got.QID != m.QID || got.Level != m.Level || got.Overflow != m.Overflow {
			return false
		}
		if !got.Vals[0].Equal(m.Vals[0]) || !got.Vals[1].Equal(m.Vals[1]) {
			return false
		}
		return string(got.Packet) == string(m.Packet)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMirrorDecoderReuse checks the scratch-buffer contract: successive
// Decode calls overwrite every field (no bleed-through of Vals/Packet from a
// richer previous frame) while reusing the value buffer.
func TestMirrorDecoderReuse(t *testing.T) {
	var d MirrorDecoder
	var got pisa.Mirror
	frames := []pisa.Mirror{
		{QID: 1, Level: 32, EntryOp: 2, Vals: []tuple.Value{tuple.U64(1), tuple.Str("abc"), tuple.U64(2)}},
		{QID: 2, Overflow: true, MergeOp: 3, Vals: []tuple.Value{tuple.Str("")}},
		{QID: 3, Packet: []byte{7, 8, 9}}, // no vals: Vals must reset to nil
		{QID: 4, Vals: []tuple.Value{tuple.U64(9)}},
	}
	var buf []byte
	for i, m := range frames {
		buf = EncodeMirror(buf[:0], &m)
		if err := d.Decode(buf, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.QID != m.QID || got.Overflow != m.Overflow || got.MergeOp != m.MergeOp {
			t.Fatalf("frame %d: header = %+v", i, got)
		}
		if len(got.Vals) != len(m.Vals) {
			t.Fatalf("frame %d: %d vals, want %d", i, len(got.Vals), len(m.Vals))
		}
		for j := range m.Vals {
			if !got.Vals[j].Equal(m.Vals[j]) {
				t.Fatalf("frame %d val %d: %v != %v", i, j, got.Vals[j], m.Vals[j])
			}
		}
		if string(got.Packet) != string(m.Packet) {
			t.Fatalf("frame %d: packet %v != %v", i, got.Packet, m.Packet)
		}
	}
	// Numeric-only frames decode with zero allocations once the buffer has
	// grown (the last emitter hot-path allocation, fixed this PR).
	buf = EncodeMirror(buf[:0], &frames[3])
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.Decode(buf, &got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f/op, want 0", allocs)
	}
}

func TestDecodeMirrorRejectsMalformed(t *testing.T) {
	m := pisa.Mirror{QID: 1, Vals: []tuple.Value{tuple.U64(5)}, Packet: []byte{9, 9}}
	wire := EncodeMirror(nil, &m)
	for cut := 0; cut < len(wire); cut++ {
		if _, err := DecodeMirror(wire[:cut]); err == nil {
			t.Errorf("accepted %d-byte truncation", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), wire...)
	bad[0] = 0xFF
	if _, err := DecodeMirror(bad); err == nil {
		t.Error("accepted bad magic")
	}
	// Trailing garbage.
	if _, err := DecodeMirror(append(wire, 0)); err == nil {
		t.Error("accepted trailing bytes")
	}
}

func engineWithQ1(t *testing.T) (*stream.Engine, *Emitter) {
	t.Helper()
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 2)).
		MustBuild()
	q.ID = 1
	e := stream.NewEngine(nil)
	if err := e.Install(q, 0, stream.Partition{LeftStart: 2}); err != nil {
		t.Fatal(err)
	}
	return e, New(e)
}

func TestHandleMirrorDeliversTuples(t *testing.T) {
	engine, em := engineWithQ1(t)
	for i := 0; i < 4; i++ {
		em.HandleMirror(pisa.Mirror{QID: 1, EntryOp: 2,
			Vals: []tuple.Value{tuple.U64(7), tuple.U64(1)}})
	}
	results, m := engine.EndWindow()
	if m.TuplesIn != 4 {
		t.Errorf("TuplesIn = %d", m.TuplesIn)
	}
	if len(results[0].Tuples) != 1 || results[0].Tuples[0][1].U != 4 {
		t.Fatalf("results = %+v", results[0].Tuples)
	}
	frames, malformed := em.WindowStats()
	if frames != 4 || malformed != 0 {
		t.Errorf("emitter stats = %d/%d", frames, malformed)
	}
}

func TestHandleMirrorPacketPath(t *testing.T) {
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		MustBuild()
	q.ID = 1
	engine := stream.NewEngine(nil)
	if err := engine.Install(q, 0, stream.Partition{}); err != nil {
		t.Fatal(err)
	}
	em := New(engine)
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 99, Proto: 6, TCPFlags: fields.FlagSYN, Pad: 60})
	em.HandleMirror(pisa.Mirror{QID: 1, EntryOp: 0, Packet: frame})
	em.HandleMirror(pisa.Mirror{QID: 1, EntryOp: 0, Packet: frame[:10]}) // mangled
	results, _ := engine.EndWindow()
	if len(results[0].Tuples) != 1 || results[0].Tuples[0][0].U != 99 {
		t.Fatalf("results = %+v", results[0].Tuples)
	}
	_, malformed := em.WindowStats()
	if malformed != 1 {
		t.Errorf("malformed = %d, want 1", malformed)
	}
}

// TestHandleMirrorAdoptsParsedView covers the parse-once monitoring path:
// when the mirror record carries the switch's parsed view, the emitter must
// adopt it instead of re-parsing — and still apply its own deep DNS decode,
// which the switch-side parser skips.
func TestHandleMirrorAdoptsParsedView(t *testing.T) {
	q := query.NewBuilder("dns_tunnel", time.Second).
		Filter(query.Eq(fields.DNSQR, 0)).
		Map(query.F(fields.DstIP), query.F(fields.DNSQName)).
		MustBuild()
	q.ID = 1
	engine := stream.NewEngine(nil)
	if err := engine.Install(q, 0, stream.Partition{}); err != nil {
		t.Fatal(err)
	}
	em := New(engine)

	frame := packet.BuildDNSQuery(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 99, SrcPort: 40000}, 7, "x1.exfil.bad", packet.DNSTypeTXT)
	// The switch parses headers only (no DNS), like pisa's data plane.
	swParser := packet.NewParser(packet.ParserOptions{})
	var swPkt packet.Packet
	if err := swParser.Parse(frame, &swPkt); err != nil {
		t.Fatal(err)
	}
	if swPkt.Layers&packet.LayerDNS != 0 {
		t.Fatal("switch-side parse unexpectedly decoded DNS")
	}
	em.HandleMirror(pisa.Mirror{QID: 1, Packet: frame, Parsed: &swPkt})

	results, _ := engine.EndWindow()
	if len(results[0].Tuples) != 1 {
		t.Fatalf("tuples = %+v", results[0].Tuples)
	}
	tup := results[0].Tuples[0]
	if tup[0].U != 99 || tup[1].S != "x1.exfil.bad" {
		t.Errorf("tuple = %v, want dstIP=99 qname=x1.exfil.bad", tup)
	}
}

// TestHandleMirrorPacketPathAllocs is the regression guard for the
// double-parse fix: with the parsed view carried through the mirror and the
// encode buffer pooled, the steady-state packet path must not allocate.
func TestHandleMirrorPacketPathAllocs(t *testing.T) {
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		MustBuild()
	q.ID = 1
	engine := stream.NewEngine(nil)
	if err := engine.Install(q, 0, stream.Partition{}); err != nil {
		t.Fatal(err)
	}
	em := New(engine)
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 99, Proto: 6, TCPFlags: fields.FlagSYN, Pad: 60})
	parser := packet.NewParser(packet.ParserOptions{})
	var pkt packet.Packet
	if err := parser.Parse(frame, &pkt); err != nil {
		t.Fatal(err)
	}
	m := pisa.Mirror{QID: 1, Packet: frame, Parsed: &pkt}
	em.HandleMirror(m) // warm the pool and the engine's aggregation entry
	// Full path: the only allocations allowed are the engine's per-packet
	// tuple build (map output + reduce key); the emitter itself — encode
	// buffer, decode, and the adopted parse — must contribute none.
	allocs := testing.AllocsPerRun(100, func() { em.HandleMirror(m) })
	if allocs > 2 {
		t.Errorf("HandleMirror packet path allocates %.1f per op, want <= 2 (engine tuple build only)", allocs)
	}

	// Isolate the emitter: a packet the query's filter drops never reaches
	// the engine's tuple build, so any allocation left is emitter overhead.
	dropped := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 99, Proto: 6, TCPFlags: fields.FlagACK, Pad: 60})
	var dpkt packet.Packet
	if err := parser.Parse(dropped, &dpkt); err != nil {
		t.Fatal(err)
	}
	dm := pisa.Mirror{QID: 1, Packet: dropped, Parsed: &dpkt}
	em.HandleMirror(dm)
	if allocs := testing.AllocsPerRun(100, func() { em.HandleMirror(dm) }); allocs > 0 {
		t.Errorf("emitter-side packet path allocates %.1f per op, want 0", allocs)
	}
	engine.EndWindow()
}

func TestHandleDumpsMerges(t *testing.T) {
	engine, em := engineWithQ1(t)
	// Overflow path first (tuple merged through the reduce op itself).
	em.HandleMirror(pisa.Mirror{QID: 1, Overflow: true, MergeOp: 2,
		Vals: []tuple.Value{tuple.U64(5), tuple.U64(1)}})
	// Register dump adds 4 more for the same key.
	em.HandleDumps([]pisa.RegDump{{QID: 1, MergeOp: 2,
		KeyVals: []tuple.Value{tuple.U64(5)}, Val: 4}})
	results, m := engine.EndWindow()
	if m.TuplesIn != 2 {
		t.Errorf("TuplesIn = %d", m.TuplesIn)
	}
	if len(results[0].Tuples) != 1 || results[0].Tuples[0][1].U != 5 {
		t.Fatalf("results = %+v", results[0].Tuples)
	}
}
