// Package emitter implements Sonata's emitter (Section 5): it consumes the
// packets mirrored out of the switch's monitoring port, parses the
// query-specific fields embedded by the data plane (demultiplexing on the
// query identifier), and delivers the resulting tuples to the stream
// processor. At window boundaries it converts the switch's register dumps
// into pre-aggregated tuples the engine merges with any collision-overflow
// traffic it absorbed during the window.
//
// Mirrored records cross the monitoring port as real bytes in a compact
// telemetry framing (a qid-tagged header, the metadata tuple, and
// optionally the original frame), so the encode/decode path the paper's
// Scapy-based emitter performs is exercised rather than bypassed.
package emitter

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/tuple"
)

// wire format constants.
const (
	magic = 0x53 // 'S'

	flagOverflow = 1 << 0
	flagVals     = 1 << 1
	flagPacket   = 1 << 2
)

// EncodeMirror serializes a mirror record into the telemetry framing,
// appending to dst.
func EncodeMirror(dst []byte, m *pisa.Mirror) []byte {
	dst = append(dst, magic)
	dst = binary.BigEndian.AppendUint16(dst, m.QID)
	dst = append(dst, m.Level, byte(m.Side))
	var flags byte
	if m.Overflow {
		flags |= flagOverflow
	}
	if m.Vals != nil {
		flags |= flagVals
	}
	if m.Packet != nil {
		flags |= flagPacket
	}
	dst = append(dst, flags, byte(m.EntryOp), byte(m.MergeOp))
	if m.Vals != nil {
		dst = append(dst, byte(len(m.Vals)))
		dst = appendVals(dst, m.Vals)
	}
	if m.Packet != nil {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Packet)))
		dst = append(dst, m.Packet...)
	}
	return dst
}

// DecodeMirror parses a telemetry frame back into a mirror record. The
// returned record's Packet aliases data. The decoded value slice is freshly
// allocated; the hot path (HandleMirror) uses MirrorDecoder instead, which
// reuses one.
func DecodeMirror(data []byte) (pisa.Mirror, error) {
	var d MirrorDecoder
	var m pisa.Mirror
	err := d.Decode(data, &m)
	return m, err
}

// MirrorDecoder decodes telemetry frames into caller-held Mirror records,
// reusing one internal value buffer across calls so a steady-state decode
// of numeric tuples performs no allocation.
type MirrorDecoder struct {
	vals []tuple.Value
}

// Decode parses a telemetry frame into m, overwriting every field. The
// decoded record's Packet aliases data and its Vals alias the decoder's
// internal buffer: both are valid only until the next Decode call, so
// consumers must finish with (or copy from) m before decoding another
// frame — the contract the stream engine's ingest paths already satisfy by
// copying any state they retain.
func (d *MirrorDecoder) Decode(data []byte, m *pisa.Mirror) error {
	*m = pisa.Mirror{}
	if len(data) < 8 || data[0] != magic {
		return fmt.Errorf("emitter: bad telemetry frame header")
	}
	m.QID = binary.BigEndian.Uint16(data[1:3])
	m.Level = data[3]
	m.Side = pisa.Side(data[4])
	flags := data[5]
	m.Overflow = flags&flagOverflow != 0
	m.EntryOp = int(data[6])
	m.MergeOp = int(data[7])
	rest := data[8:]
	var err error
	if flags&flagVals != 0 {
		if len(rest) < 1 {
			return fmt.Errorf("emitter: truncated tuple count")
		}
		n := int(rest[0])
		rest = rest[1:]
		d.vals, rest, err = decodeVals(d.vals[:0], rest, n)
		if err != nil {
			return err
		}
		m.Vals = d.vals
	}
	if flags&flagPacket != 0 {
		if len(rest) < 2 {
			return fmt.Errorf("emitter: truncated packet length")
		}
		n := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < n {
			return fmt.Errorf("emitter: truncated packet body (%d < %d)", len(rest), n)
		}
		m.Packet = rest[:n]
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("emitter: %d trailing bytes", len(rest))
	}
	return nil
}

func appendVals(dst []byte, vals []tuple.Value) []byte {
	for _, v := range vals {
		if v.Str {
			dst = append(dst, 's')
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(v.S)))
			dst = append(dst, v.S...)
		} else {
			dst = append(dst, 'u')
			dst = binary.BigEndian.AppendUint64(dst, v.U)
		}
	}
	return dst
}

// decodeVals appends n decoded values to dst (reusing its capacity) and
// returns the extended slice plus the remaining bytes.
func decodeVals(dst []tuple.Value, data []byte, n int) ([]tuple.Value, []byte, error) {
	vals := dst
	for i := 0; i < n; i++ {
		if len(data) < 1 {
			return nil, nil, fmt.Errorf("emitter: truncated value %d", i)
		}
		switch data[0] {
		case 'u':
			if len(data) < 9 {
				return nil, nil, fmt.Errorf("emitter: truncated numeric value")
			}
			vals = append(vals, tuple.U64(binary.BigEndian.Uint64(data[1:9])))
			data = data[9:]
		case 's':
			if len(data) < 3 {
				return nil, nil, fmt.Errorf("emitter: truncated string header")
			}
			l := int(binary.BigEndian.Uint16(data[1:3]))
			if len(data) < 3+l {
				return nil, nil, fmt.Errorf("emitter: truncated string body")
			}
			vals = append(vals, tuple.Str(string(data[3:3+l])))
			data = data[3+l:]
		default:
			return nil, nil, fmt.Errorf("emitter: bad value tag %q", data[0])
		}
	}
	return vals, data, nil
}

// Emitter bridges the switch's monitoring port to the stream engine.
type Emitter struct {
	engine *stream.Engine
	parser *packet.Parser
	pkt    packet.Packet
	// dec/decoded are the frame-decode scratch: the engine copies anything
	// it retains, so one record and one value buffer serve every frame.
	dec     MirrorDecoder
	decoded pisa.Mirror
	// Stats for the window.
	frames   uint64
	badFrame uint64
	// m holds telemetry handles (zero value when uninstrumented).
	m emitterMetrics
	// frLookup/frCache attribute encoded byte volume to flight-recorder
	// probes per (qid, level); the cache keeps the hot path map-lookup-free
	// after the first frame of each instance.
	frLookup func(qid uint16, level uint8) *flightrec.Probe
	frCache  map[uint32]*flightrec.Probe
}

// bufPool shares encode buffers (which hold the mirror frame copy crossing
// the monitoring port) across all emitters, so a sharded deployment's
// per-shard emitters amortize their steady-state buffers instead of each
// growing one, and the encode path stays allocation-free once warm.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// emitterMetrics is the monitoring-port slice of the registry.
type emitterMetrics struct {
	frames    *telemetry.Counter
	malformed *telemetry.Counter
	bytes     *telemetry.Counter
	dumps     *telemetry.Counter
}

// Instrument registers the emitter's metrics against reg (nil disables).
func (e *Emitter) Instrument(reg *telemetry.Registry) {
	e.m = emitterMetrics{
		frames: reg.Counter("sonata_emitter_frames_total",
			"Telemetry frames decoded off the monitoring port."),
		malformed: reg.Counter("sonata_emitter_malformed_total",
			"Telemetry frames (or embedded packets) that failed to parse."),
		bytes: reg.Counter("sonata_emitter_bytes_total",
			"Encoded telemetry bytes crossing the monitoring port."),
		dumps: reg.Counter("sonata_emitter_dump_tuples_total",
			"Register-dump tuples converted into pre-aggregated records."),
	}
}

// New returns an emitter delivering into engine. The emitter enables deep
// parsing (DNS) because stream-processor portions of queries may reference
// fields the switch cannot extract.
func New(engine *stream.Engine) *Emitter {
	return &Emitter{engine: engine,
		parser: packet.NewParser(packet.ParserOptions{DecodeDNS: true})}
}

// AttachFlightRec wires the flight recorder's probe lookup into the
// emitter, which attributes the encoded byte volume of each mirror frame to
// its (qid, level) instance. A nil lookup detaches.
func (e *Emitter) AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe) {
	e.frLookup = lookup
	e.frCache = nil
	if lookup != nil {
		e.frCache = make(map[uint32]*flightrec.Probe)
	}
}

// frProbe resolves (and caches) the probe for one instance.
func (e *Emitter) frProbe(qid uint16, level uint8) *flightrec.Probe {
	key := uint32(qid)<<8 | uint32(level)
	p, ok := e.frCache[key]
	if !ok {
		p = e.frLookup(qid, level)
		e.frCache[key] = p
	}
	return p
}

// HandleMirror is wired as the switch's mirror callback: it performs the
// encode/parse round trip the monitoring port implies and forwards the
// tuple (or packet) to the engine.
func (e *Emitter) HandleMirror(m pisa.Mirror) {
	bp := bufPool.Get().(*[]byte)
	buf := EncodeMirror((*bp)[:0], &m)
	e.frames++
	e.m.frames.Inc()
	e.m.bytes.Add(uint64(len(buf)))
	if e.frLookup != nil {
		e.frProbe(m.QID, m.Level).Bytes(uint64(len(buf)))
	}
	if err := e.dec.Decode(buf, &e.decoded); err == nil {
		// The parsed view rides beside the wire format, not in it: the
		// monitoring port carries bytes, but within one process the decoded
		// record can reuse the switch's parse instead of re-decoding.
		e.decoded.Parsed = m.Parsed
		e.Deliver(&e.decoded)
	} else {
		e.badFrame++
		e.m.malformed.Inc()
	}
	*bp = buf
	bufPool.Put(bp)
}

// Deliver routes a decoded mirror record into the engine.
func (e *Emitter) Deliver(m *pisa.Mirror) {
	side := stream.SideLeft
	if m.Side == pisa.SideRight {
		side = stream.SideRight
	}
	switch {
	case m.Overflow:
		// The switch could not store this key: the stream processor
		// executes the stateful operator itself on the shunted input tuple.
		e.engine.IngestTupleAt(m.QID, m.Level, side, m.MergeOp, m.Vals)
	case m.Vals != nil:
		e.engine.IngestTuple(m.QID, m.Level, side, m.Vals)
	case m.Packet != nil:
		if m.Parsed != nil {
			// The switch's header parse survived the round trip (same
			// process); adopt it and apply only the deep DNS decode the
			// switch-side parser skips.
			e.parser.Adopt(m.Parsed, &e.pkt)
		} else if err := e.parser.Parse(m.Packet, &e.pkt); err != nil {
			e.badFrame++
			e.m.malformed.Inc()
			return
		}
		if side == stream.SideRight {
			e.engine.IngestRightPacket(m.QID, m.Level, &e.pkt)
		} else {
			e.engine.IngestPacket(m.QID, m.Level, &e.pkt)
		}
	}
}

// HandleDumps converts the end-of-window register dumps into pre-aggregated
// tuples merged into the engine's stateful operators — the emitter's "read
// the aggregated value for each key" role from Section 5.
func (e *Emitter) HandleDumps(dumps []pisa.RegDump) {
	e.m.dumps.Add(uint64(len(dumps)))
	for i := range dumps {
		d := &dumps[i]
		side := stream.SideLeft
		if d.Side == pisa.SideRight {
			side = stream.SideRight
		}
		e.engine.IngestAgg(d.QID, d.Level, side, d.MergeOp, d.KeyVals, d.Val)
	}
}

// WindowStats reports and resets the emitter's per-window counters.
func (e *Emitter) WindowStats() (frames, malformed uint64) {
	frames, malformed = e.frames, e.badFrame
	e.frames, e.badFrame = 0, 0
	return frames, malformed
}
