// Package lp implements a dense two-phase simplex solver for linear
// programs in inequality form. It provides the relaxation bounds for the
// branch-and-bound ILP solver (package ilp) that stands in for the Gurobi
// solver the paper uses.
//
// Problems are stated as
//
//	minimize    c . x
//	subject to  A_i . x  (<=|>=|=)  b_i      for each constraint i
//	            x >= 0
//
// which is exactly the shape of the query-planning ILP's relaxation.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is a constraint's comparison operator.
type Relation uint8

const (
	LE Relation = iota
	GE
	EQ
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Constraint is one linear constraint over the problem's variables. Coef
// may be shorter than the variable count; missing entries are zero.
type Constraint struct {
	Coef []float64
	Rel  Relation
	RHS  float64
	Name string // used in error messages
}

// Problem is a minimization LP.
type Problem struct {
	// C is the objective coefficient vector; its length fixes the number of
	// variables.
	C           []float64
	Constraints []Constraint
}

// Status classifies a solve outcome.
type Status uint8

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of a successful solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

// ErrBadProblem reports malformed input.
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// Solve runs two-phase simplex with Bland's anti-cycling rule.
func Solve(p *Problem) (Solution, error) {
	n := len(p.C)
	if n == 0 {
		return Solution{}, fmt.Errorf("%w: no variables", ErrBadProblem)
	}
	for i := range p.Constraints {
		if len(p.Constraints[i].Coef) > n {
			return Solution{}, fmt.Errorf("%w: constraint %d has %d coefficients for %d variables",
				ErrBadProblem, i, len(p.Constraints[i].Coef), n)
		}
	}
	t := newTableau(p)
	if t.needPhase1 {
		if ok := t.phase1(); !ok {
			return Solution{Status: Infeasible}, nil
		}
	}
	status := t.phase2()
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := t.extract(n)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is the dense simplex tableau. Columns: n structural variables,
// then slack/surplus variables, then artificial variables; the final column
// is the RHS.
type tableau struct {
	rows       [][]float64 // m x (cols+1)
	obj        []float64   // phase-2 objective row (cols+1)
	basis      []int       // basic variable per row
	n          int         // structural variables
	cols       int         // total variables
	artStart   int         // first artificial column
	needPhase1 bool
}

func newTableau(p *Problem) *tableau {
	n := len(p.C)
	m := len(p.Constraints)
	slacks := 0
	arts := 0
	for _, c := range p.Constraints {
		switch c.Rel {
		case LE, GE:
			slacks++
		}
	}
	// Artificials: for GE and EQ rows, and for LE rows with negative RHS
	// (normalized below to GE). Allocate pessimistically: one per row.
	arts = m

	t := &tableau{n: n}
	t.artStart = n + slacks
	t.cols = n + slacks + arts
	t.rows = make([][]float64, m)
	t.basis = make([]int, m)

	slackIdx := n
	artIdx := t.artStart
	for i, c := range p.Constraints {
		row := make([]float64, t.cols+1)
		for j, v := range c.Coef {
			row[j] = v
		}
		rhs := c.RHS
		rel := c.Rel
		// Normalize to non-negative RHS.
		if rhs < 0 {
			for j := range row[:t.cols] {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		row[t.cols] = rhs
		switch rel {
		case LE:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
			t.needPhase1 = true
		case EQ:
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
			t.needPhase1 = true
		}
		t.rows[i] = row
	}

	// Phase-2 objective row (reduced costs computed on demand).
	t.obj = make([]float64, t.cols+1)
	for j := 0; j < n; j++ {
		t.obj[j] = p.C[j]
	}
	return t
}

// phase1 minimizes the sum of artificials; feasible iff it reaches ~0.
func (t *tableau) phase1() bool {
	w := make([]float64, t.cols+1)
	for j := t.artStart; j < t.cols; j++ {
		w[j] = 1
	}
	// Price out the basic artificials.
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := 0; j <= t.cols; j++ {
				w[j] -= t.rows[i][j]
			}
		}
	}
	t.iterate(w, t.cols)
	if -w[t.cols] > 1e-7 { // sum of artificials still positive
		return false
	}
	// Drive any remaining artificials out of the basis.
	for i, b := range t.basis {
		if b < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row; zero it so it never constrains again.
			for j := 0; j <= t.cols; j++ {
				t.rows[i][j] = 0
			}
		}
	}
	return true
}

// phase2 optimizes the real objective, keeping artificial columns blocked.
func (t *tableau) phase2() Status {
	// Price out basic variables from the objective row.
	for i, b := range t.basis {
		if t.obj[b] != 0 {
			coef := t.obj[b]
			for j := 0; j <= t.cols; j++ {
				t.obj[j] -= coef * t.rows[i][j]
			}
		}
	}
	return t.iterate(t.obj, t.artStart)
}

// iterate runs simplex pivots on objective row w, considering entering
// columns below limit. Bland's rule: smallest eligible index.
func (t *tableau) iterate(w []float64, limit int) Status {
	for iter := 0; iter < 50000; iter++ {
		enter := -1
		for j := 0; j < limit; j++ {
			if w[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		best := math.Inf(1)
		for i := range t.rows {
			a := t.rows[i][enter]
			if a > eps {
				ratio := t.rows[i][t.cols] / a
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		// Update the objective row.
		coef := w[enter]
		if coef != 0 {
			for j := 0; j <= t.cols; j++ {
				w[j] -= coef * t.rows[leave][j]
			}
		}
	}
	// Iteration cap: report the current (feasible) point as optimal-ish.
	return Optimal
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	row := t.rows[leave]
	piv := row[enter]
	for j := 0; j <= t.cols; j++ {
		row[j] /= piv
	}
	for i := range t.rows {
		if i == leave {
			continue
		}
		f := t.rows[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			t.rows[i][j] -= f * row[j]
		}
	}
	t.basis[leave] = enter
}

// extract reads the structural variable values out of the tableau.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			v := t.rows[i][t.cols]
			if v < 0 && v > -eps {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
