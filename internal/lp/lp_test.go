package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 2 => x=2, y=2, obj=-6.
	p := &Problem{
		C: []float64{-1, -2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coef: []float64{1}, Rel: LE, RHS: 2},
		},
	}
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol.Status, err)
	}
	if !approx(sol.Objective, -8) {
		// x=0,y=4 gives -8, better than x=2,y=2 (-6).
		t.Fatalf("objective = %v, want -8 (x=%v)", sol.Objective, sol.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + y s.t. x + y >= 3, x - y = 1 => x=2, y=1, obj=3.
	p := &Problem{
		C: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: GE, RHS: 3},
			{Coef: []float64{1, -1}, Rel: EQ, RHS: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol.Status, err)
	}
	if !approx(sol.Objective, 3) || !approx(sol.X[0], 2) || !approx(sol.X[1], 1) {
		t.Fatalf("solution = %+v", sol)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := &Problem{
		C: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: LE, RHS: 1},
			{Coef: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with no upper bound on x.
	p := &Problem{C: []float64{-1}}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := &Problem{
		C:           []float64{1},
		Constraints: []Constraint{{Coef: []float64{-1}, Rel: LE, RHS: -3}},
	}
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %+v %v", sol, err)
	}
	if !approx(sol.X[0], 3) {
		t.Fatalf("x = %v, want 3", sol.X[0])
	}
}

func TestDegenerateTies(t *testing.T) {
	// A classic degenerate problem; Bland's rule must terminate.
	p := &Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coef: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coef: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coef: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %+v %v", sol, err)
	}
	if !approx(sol.Objective, -0.05) {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestBadProblemRejected(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	p := &Problem{C: []float64{1},
		Constraints: []Constraint{{Coef: []float64{1, 2}, Rel: LE, RHS: 1}}}
	if _, err := Solve(p); err == nil {
		t.Error("over-long constraint accepted")
	}
}

// Property: for random feasible bounded problems of the knapsack-relaxation
// shape, the solution respects every constraint and is at least as good as
// any sampled feasible point.
func TestRandomKnapsackRelaxations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(4)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = -(r.Float64()*10 + 0.1) // maximize value
		}
		for i := 0; i < m; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = r.Float64()*5 + 0.1
			}
			p.Constraints = append(p.Constraints,
				Constraint{Coef: coef, Rel: LE, RHS: r.Float64()*20 + 1})
		}
		// x <= 1 for each var keeps it bounded.
		for j := 0; j < n; j++ {
			coef := make([]float64, j+1)
			coef[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coef: coef, Rel: LE, RHS: 1})
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Check feasibility.
		for _, c := range p.Constraints {
			dot := 0.0
			for j, v := range c.Coef {
				dot += v * sol.X[j]
			}
			if dot > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		// Compare against random feasible points.
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = r.Float64()
			}
			feasible := true
			obj := 0.0
			for _, c := range p.Constraints {
				dot := 0.0
				for j, v := range c.Coef {
					dot += v * x[j]
				}
				if dot > c.RHS {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if obj < sol.Objective-1e-6 {
				return false // sampled point beat the "optimum"
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
