// Package fields defines the registry of packet and tuple fields that Sonata
// queries can reference.
//
// A field identifies a single value extracted from a packet (for example the
// IPv4 destination address or the TCP flags byte) or a value synthesized by a
// dataflow operator (for example the running aggregate produced by reduce).
// Fields carry static metadata — bit width, value kind, and whether the field
// is hierarchical — that the query planner uses to size switch resources and
// to identify refinement keys (Section 4.1 of the paper).
package fields

import "fmt"

// ID names a field. IDs are small integers so they can be stored compactly in
// schemas, match-action table specifications, and the emitter wire format.
type ID uint8

// Packet header fields and synthetic dataflow fields.
const (
	// Unknown is the zero ID and never names a real field.
	Unknown ID = iota

	// Link layer.
	EthSrc  // Ethernet source MAC (48 bits)
	EthDst  // Ethernet destination MAC (48 bits)
	EthType // EtherType (16 bits)

	// Network layer.
	SrcIP   // IPv4 source address (32 bits, hierarchical)
	DstIP   // IPv4 destination address (32 bits, hierarchical)
	SrcIPv6 // IPv6 source address (truncated to 64 bits, hierarchical)
	DstIPv6 // IPv6 destination address (truncated to 64 bits, hierarchical)
	Proto   // IP protocol number (8 bits)
	TTL     // IPv4 time-to-live (8 bits)
	IPLen   // IPv4 total length (16 bits)
	IPID    // IPv4 identification (16 bits)
	DSCP    // IPv4 DSCP/TOS bits (8 bits)

	// Transport layer.
	SrcPort  // TCP/UDP source port (16 bits)
	DstPort  // TCP/UDP destination port (16 bits)
	TCPFlags // TCP flags byte (8 bits)
	TCPSeq   // TCP sequence number (32 bits)
	TCPAck   // TCP acknowledgment number (32 bits)
	TCPWin   // TCP advertised window (16 bits)

	// Packet-level quantities.
	PktLen     // total frame length in bytes (16 bits)
	PayloadLen // transport payload length in bytes (16 bits)
	Payload    // transport payload (string; stream processor only)

	// DNS fields (require deep parsing; extracted by the switch parser for
	// header fields and by the stream processor for names).
	DNSQName   // first question name (string, hierarchical by label)
	DNSRRName  // first answer resource-record name (string, hierarchical)
	DNSQType   // first question type (16 bits)
	DNSAnCount // answer count (16 bits)
	DNSQR      // query/response bit (1 bit)

	// Synthetic dataflow fields produced by operators.
	AggVal  // aggregate produced by reduce (64 bits)
	AggVal2 // second aggregate, e.g. the right side of a join (64 bits)
	ConstV  // constant column introduced by map (64 bits)
	QID     // query identifier metadata (16 bits)

	numIDs // sentinel; keep last
)

// Kind classifies the runtime representation of a field's values.
type Kind uint8

const (
	// Numeric fields fit in a uint64.
	Numeric Kind = iota
	// Bytes fields are variable-length byte strings (payload, DNS names).
	Bytes
)

// Info is the static metadata for one field.
type Info struct {
	ID   ID
	Name string
	Kind Kind
	// Bits is the width used when the field is carried in switch metadata.
	// Bytes-kind fields report the width of a pointer/offset pair because the
	// switch cannot carry the bytes themselves.
	Bits int
	// Hierarchical reports whether coarser versions of the field exist, which
	// makes it a candidate refinement key (Section 4.1). For IPv4 addresses
	// the levels are prefix lengths 1..32; for DNS names, label counts.
	Hierarchical bool
	// MaxLevel is the finest refinement level for hierarchical fields (32 for
	// IPv4 prefixes, 8 for DNS label depth). Zero for flat fields.
	MaxLevel int
	// SwitchParsable reports whether a PISA parser can extract the field at
	// line rate. Payload and DNS name fields require the stream processor.
	SwitchParsable bool
}

var infos = [numIDs]Info{
	EthSrc:     {EthSrc, "eth.src", Numeric, 48, false, 0, true},
	EthDst:     {EthDst, "eth.dst", Numeric, 48, false, 0, true},
	EthType:    {EthType, "eth.type", Numeric, 16, false, 0, true},
	SrcIP:      {SrcIP, "ipv4.sIP", Numeric, 32, true, 32, true},
	DstIP:      {DstIP, "ipv4.dIP", Numeric, 32, true, 32, true},
	SrcIPv6:    {SrcIPv6, "ipv6.sIP", Numeric, 64, true, 64, true},
	DstIPv6:    {DstIPv6, "ipv6.dIP", Numeric, 64, true, 64, true},
	Proto:      {Proto, "ipv4.proto", Numeric, 8, false, 0, true},
	TTL:        {TTL, "ipv4.ttl", Numeric, 8, false, 0, true},
	IPLen:      {IPLen, "ipv4.len", Numeric, 16, false, 0, true},
	IPID:       {IPID, "ipv4.id", Numeric, 16, false, 0, true},
	DSCP:       {DSCP, "ipv4.dscp", Numeric, 8, false, 0, true},
	SrcPort:    {SrcPort, "tcp.sPort", Numeric, 16, false, 0, true},
	DstPort:    {DstPort, "tcp.dPort", Numeric, 16, false, 0, true},
	TCPFlags:   {TCPFlags, "tcp.flags", Numeric, 8, false, 0, true},
	TCPSeq:     {TCPSeq, "tcp.seq", Numeric, 32, false, 0, true},
	TCPAck:     {TCPAck, "tcp.ack", Numeric, 32, false, 0, true},
	TCPWin:     {TCPWin, "tcp.win", Numeric, 16, false, 0, true},
	PktLen:     {PktLen, "pkt.len", Numeric, 16, false, 0, true},
	PayloadLen: {PayloadLen, "payload.len", Numeric, 16, false, 0, true},
	Payload:    {Payload, "payload", Bytes, 32, false, 0, false},
	DNSQName:   {DNSQName, "dns.qname", Bytes, 32, true, 8, false},
	DNSRRName:  {DNSRRName, "dns.rr.name", Bytes, 32, true, 8, false},
	DNSQType:   {DNSQType, "dns.qtype", Numeric, 16, false, 0, false},
	DNSAnCount: {DNSAnCount, "dns.ancount", Numeric, 16, false, 0, false},
	DNSQR:      {DNSQR, "dns.qr", Numeric, 1, false, 0, false},
	AggVal:     {AggVal, "agg", Numeric, 64, false, 0, true},
	AggVal2:    {AggVal2, "agg2", Numeric, 64, false, 0, true},
	ConstV:     {ConstV, "const", Numeric, 64, false, 0, true},
	QID:        {QID, "qid", Numeric, 16, false, 0, true},
}

var byName = func() map[string]ID {
	m := make(map[string]ID, numIDs)
	for id := ID(1); id < numIDs; id++ {
		if infos[id].Name != "" {
			m[infos[id].Name] = id
		}
	}
	return m
}()

// Lookup returns the Info for id. It panics on an invalid ID because a bad
// field identifier is always a programming error, never a runtime condition.
func Lookup(id ID) Info {
	if id == Unknown || id >= numIDs {
		panic(fmt.Sprintf("fields: invalid field ID %d", id))
	}
	return infos[id]
}

// Valid reports whether id names a registered field.
func Valid(id ID) bool { return id > Unknown && id < numIDs }

// ByName resolves a field by its dotted name, e.g. "ipv4.dIP".
func ByName(name string) (ID, bool) {
	id, ok := byName[name]
	return id, ok
}

// All returns every registered field ID in declaration order.
func All() []ID {
	ids := make([]ID, 0, numIDs-1)
	for id := ID(1); id < numIDs; id++ {
		ids = append(ids, id)
	}
	return ids
}

// String returns the dotted name of the field.
func (id ID) String() string {
	if !Valid(id) {
		return fmt.Sprintf("field(%d)", uint8(id))
	}
	return infos[id].Name
}

// Bits returns the metadata width of the field in bits.
func (id ID) Bits() int { return Lookup(id).Bits }

// Hierarchical reports whether the field supports refinement levels.
func (id ID) Hierarchical() bool { return Lookup(id).Hierarchical }

// TruncateU64 returns the numeric value v reduced to refinement level
// level for field id. For IPv4 addresses, level is a prefix length and the
// result keeps the top level bits. Truncating to the field's MaxLevel is the
// identity. TruncateU64 panics if the field is not numeric-hierarchical.
func TruncateU64(id ID, v uint64, level int) uint64 {
	info := Lookup(id)
	if !info.Hierarchical || info.Kind != Numeric {
		panic(fmt.Sprintf("fields: TruncateU64 on non-hierarchical field %s", id))
	}
	if level <= 0 {
		return 0
	}
	if level >= info.MaxLevel {
		return v
	}
	shift := uint(info.MaxLevel - level)
	return v >> shift << shift
}

// TCP flag bit masks for the TCPFlags field.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// IP protocol numbers used throughout the queries.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)
