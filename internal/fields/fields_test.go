package fields

import (
	"testing"
	"testing/quick"
)

func TestLookupAllRegistered(t *testing.T) {
	for _, id := range All() {
		info := Lookup(id)
		if info.ID != id {
			t.Errorf("Lookup(%v).ID = %v", id, info.ID)
		}
		if info.Name == "" {
			t.Errorf("field %d has no name", id)
		}
		if info.Bits <= 0 {
			t.Errorf("field %v has non-positive width %d", id, info.Bits)
		}
		if info.Hierarchical && info.MaxLevel <= 0 {
			t.Errorf("hierarchical field %v has MaxLevel %d", id, info.MaxLevel)
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, id := range All() {
		got, ok := ByName(id.String())
		if !ok || got != id {
			t.Errorf("ByName(%q) = %v, %v; want %v", id.String(), got, ok, id)
		}
	}
	if _, ok := ByName("no.such.field"); ok {
		t.Error("ByName accepted an unregistered name")
	}
}

func TestLookupPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lookup(Unknown) did not panic")
		}
	}()
	Lookup(Unknown)
}

func TestValid(t *testing.T) {
	if Valid(Unknown) {
		t.Error("Valid(Unknown) = true")
	}
	if !Valid(DstIP) {
		t.Error("Valid(DstIP) = false")
	}
	if Valid(numIDs) {
		t.Error("Valid(numIDs) = true")
	}
}

func TestTruncateU64IPv4(t *testing.T) {
	addr := uint64(0xC0A80164) // 192.168.1.100
	cases := []struct {
		level int
		want  uint64
	}{
		{32, 0xC0A80164},
		{24, 0xC0A80100},
		{16, 0xC0A80000},
		{8, 0xC0000000},
		{1, 0x80000000},
		{0, 0},
		{-3, 0},
		{40, 0xC0A80164}, // beyond MaxLevel is identity
	}
	for _, c := range cases {
		if got := TruncateU64(DstIP, addr, c.level); got != c.want {
			t.Errorf("TruncateU64(DstIP, %#x, %d) = %#x, want %#x", addr, c.level, got, c.want)
		}
	}
}

func TestTruncateU64PanicsOnFlatField(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TruncateU64 on flat field did not panic")
		}
	}()
	TruncateU64(Proto, 6, 4)
}

// Property: truncation is idempotent and monotone in coarseness — truncating
// to level l then to a coarser level k equals truncating directly to k.
func TestTruncateComposition(t *testing.T) {
	f := func(v uint64, lRaw, kRaw uint8) bool {
		l := int(lRaw%32) + 1
		k := int(kRaw%32) + 1
		if k > l {
			l, k = k, l
		}
		direct := TruncateU64(DstIP, v&0xffffffff, k)
		composed := TruncateU64(DstIP, TruncateU64(DstIP, v&0xffffffff, l), k)
		idem := TruncateU64(DstIP, direct, k)
		return direct == composed && idem == direct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a truncated address is always ≤ the original and shares the top
// `level` bits.
func TestTruncatePrefixPreserving(t *testing.T) {
	f := func(v uint64, lRaw uint8) bool {
		level := int(lRaw % 33)
		addr := v & 0xffffffff
		got := TruncateU64(DstIP, addr, level)
		if got > addr {
			return false
		}
		if level > 0 && got>>(32-uint(level)) != addr>>(32-uint(level)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagConstants(t *testing.T) {
	// Query 1 filters on tcp.flags == 2, which must be exactly SYN.
	if FlagSYN != 2 {
		t.Errorf("FlagSYN = %d, want 2", FlagSYN)
	}
	all := FlagFIN | FlagSYN | FlagRST | FlagPSH | FlagACK | FlagURG
	if all != 0x3f {
		t.Errorf("flag bits overlap or skip: union = %#x", all)
	}
}
