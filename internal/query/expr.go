// Package query defines Sonata's declarative dataflow query language:
// the operator AST, a fluent builder, evaluation semantics shared by the
// stream processor and the switch simulator, and the static analysis the
// query planner relies on (schema inference, switch-supportability, and
// refinement-key detection).
//
// A query is a pipeline of dataflow operators over a packet stream, exactly
// as in Section 2 of the paper:
//
//	packetStream(W).filter(...).map(...).reduce(...).filter(...)
//
// Operators before the first map see the raw packet ("packet phase");
// operators after it see positional tuples ("tuple phase"). A query may join
// the outputs of two sub-pipelines, after which further operators apply to
// the joined stream.
package query

import (
	"fmt"
	"strings"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/tuple"
)

// CmpOp is a comparison operator in a filter clause.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpGt
	CmpGe
	CmpLt
	CmpLe
	// CmpContains tests substring containment and only applies to Bytes
	// fields; it cannot execute on a switch.
	CmpContains
	// CmpMaskEq tests (value & mask) == arg, used for flag-bit predicates.
	CmpMaskEq
)

func (c CmpOp) String() string {
	switch c {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpContains:
		return "contains"
	case CmpMaskEq:
		return "&=="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(c))
	}
}

// compare applies the operator to two numeric values (mask comparisons are
// handled by the caller).
func (c CmpOp) compareU64(a, b uint64) bool {
	switch c {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	default:
		panic(fmt.Sprintf("query: compareU64 on %v", c))
	}
}

// Clause is one conjunct of a filter predicate.
type Clause struct {
	// Field names the packet field (packet phase) or the schema column
	// (tuple phase, resolved via the schema at build time).
	Field fields.ID
	// Col is the resolved column index in tuple phase; -1 in packet phase.
	Col int
	Cmp CmpOp
	// Arg is the comparison constant.
	Arg tuple.Value
	// Mask is the bit mask for CmpMaskEq.
	Mask uint64
}

// MatchValue applies the clause to an extracted value. It is the shared
// core of MatchPacket/MatchTuple, exported for the stream engine's batched
// filter path, which tests one column's values against a selection bitmap.
func (cl *Clause) MatchValue(v tuple.Value) bool {
	switch cl.Cmp {
	case CmpContains:
		return v.Str && strings.Contains(v.S, cl.Arg.S)
	case CmpMaskEq:
		return !v.Str && v.U&cl.Mask == cl.Arg.U
	default:
		if v.Str || cl.Arg.Str {
			// String equality is the only ordered comparison we define on
			// Bytes fields.
			if cl.Cmp == CmpEq {
				return v.Str == cl.Arg.Str && v.S == cl.Arg.S
			}
			if cl.Cmp == CmpNe {
				return v.Str != cl.Arg.Str || v.S != cl.Arg.S
			}
			return false
		}
		return cl.Cmp.compareU64(v.U, cl.Arg.U)
	}
}

// MatchPacket evaluates a packet-phase clause. Packets lacking the field do
// not match.
func (cl *Clause) MatchPacket(p *packet.Packet) bool {
	v, ok := p.Field(cl.Field)
	if !ok {
		return false
	}
	return cl.MatchValue(v)
}

// MatchTuple evaluates a tuple-phase clause against positional values.
func (cl *Clause) MatchTuple(vals []tuple.Value) bool {
	return cl.MatchValue(vals[cl.Col])
}

// String renders the clause in the paper's surface syntax.
func (cl *Clause) String() string {
	switch cl.Cmp {
	case CmpContains:
		return fmt.Sprintf("p.%s.contains(%s)", cl.Field, cl.Arg)
	case CmpMaskEq:
		return fmt.Sprintf("p.%s & %#x == %s", cl.Field, cl.Mask, cl.Arg)
	default:
		return fmt.Sprintf("p.%s %s %s", cl.Field, cl.Cmp, cl.Arg)
	}
}

// ExprKind enumerates map-expression forms.
type ExprKind uint8

const (
	// ExprField extracts a packet field (packet phase only).
	ExprField ExprKind = iota
	// ExprCol copies a column (tuple phase only).
	ExprCol
	// ExprConst produces a constant.
	ExprConst
	// ExprMask truncates a hierarchical operand to a refinement level.
	ExprMask
	// ExprShiftRound buckets the operand by a power of two: v >> Shift.
	ExprShiftRound
	// ExprRatio computes (A * Scale) / B over two columns; division is not
	// available on switches, so this expression is stream-processor only.
	ExprRatio
	// ExprDiff computes the saturating difference A - B over two columns.
	ExprDiff
)

// Expr is a map output expression.
type Expr struct {
	Kind  ExprKind
	Field fields.ID // ExprField, ExprMask over a field
	Col   int       // ExprCol, ExprMask over a column; ExprRatio numerator
	ColB  int       // ExprRatio denominator
	Const uint64    // ExprConst value; ExprRatio scale
	Level int       // ExprMask refinement level
	Shift uint      // ExprShiftRound bits
	// Sub is the operand of ExprMask/ExprShiftRound.
	Sub *Expr
}

// EvalPacket evaluates a packet-phase expression.
func (e *Expr) EvalPacket(p *packet.Packet) (tuple.Value, bool) {
	switch e.Kind {
	case ExprField:
		return p.Field(e.Field)
	case ExprConst:
		return tuple.U64(e.Const), true
	case ExprMask:
		v, ok := e.Sub.EvalPacket(p)
		if !ok {
			return tuple.Value{}, false
		}
		return MaskValue(e.Field, v, e.Level), true
	case ExprShiftRound:
		v, ok := e.Sub.EvalPacket(p)
		if !ok || v.Str {
			return tuple.Value{}, false
		}
		return tuple.U64(v.U >> e.Shift), true
	default:
		panic(fmt.Sprintf("query: expression kind %d in packet phase", e.Kind))
	}
}

// EvalTuple evaluates a tuple-phase expression.
func (e *Expr) EvalTuple(vals []tuple.Value) tuple.Value {
	switch e.Kind {
	case ExprCol:
		return vals[e.Col]
	case ExprConst:
		return tuple.U64(e.Const)
	case ExprMask:
		return MaskValue(e.Field, e.Sub.EvalTuple(vals), e.Level)
	case ExprShiftRound:
		v := e.Sub.EvalTuple(vals)
		return tuple.U64(v.U >> e.Shift)
	case ExprRatio:
		den := vals[e.ColB].U
		if den == 0 {
			return tuple.U64(0)
		}
		return tuple.U64(vals[e.Col].U * e.Const / den)
	case ExprDiff:
		a, b := vals[e.Col].U, vals[e.ColB].U
		if b > a {
			return tuple.U64(0)
		}
		return tuple.U64(a - b)
	default:
		panic(fmt.Sprintf("query: expression kind %d in tuple phase", e.Kind))
	}
}

// EvalTupleCols evaluates a tuple-phase expression column-at-a-time over a
// column-major batch: rows [0, n) of cols, writing row r's value to out[r].
// Every tuple-phase expression kind is a total function of its inputs, so
// the loop is branch-free over rows and may legitimately evaluate rows a
// filter already deselected — the batched engine ignores those outputs via
// its selection bitmap. Results are value-identical to EvalTuple on the
// equivalent row-major tuples.
func (e *Expr) EvalTupleCols(cols [][]tuple.Value, n int, out []tuple.Value) {
	switch e.Kind {
	case ExprCol:
		copy(out[:n], cols[e.Col][:n])
	case ExprConst:
		v := tuple.U64(e.Const)
		for r := 0; r < n; r++ {
			out[r] = v
		}
	case ExprMask:
		e.Sub.EvalTupleCols(cols, n, out)
		for r := 0; r < n; r++ {
			out[r] = MaskValue(e.Field, out[r], e.Level)
		}
	case ExprShiftRound:
		e.Sub.EvalTupleCols(cols, n, out)
		for r := 0; r < n; r++ {
			out[r] = tuple.U64(out[r].U >> e.Shift)
		}
	case ExprRatio:
		num, den := cols[e.Col], cols[e.ColB]
		for r := 0; r < n; r++ {
			if d := den[r].U; d != 0 {
				out[r] = tuple.U64(num[r].U * e.Const / d)
			} else {
				out[r] = tuple.U64(0)
			}
		}
	case ExprDiff:
		a, b := cols[e.Col], cols[e.ColB]
		for r := 0; r < n; r++ {
			if av, bv := a[r].U, b[r].U; bv <= av {
				out[r] = tuple.U64(av - bv)
			} else {
				out[r] = tuple.U64(0)
			}
		}
	default:
		panic(fmt.Sprintf("query: expression kind %d in tuple phase", e.Kind))
	}
}

// MaskValue truncates v to a refinement level of field f, handling both
// numeric prefixes (IPv4/IPv6) and DNS label hierarchies. It is shared by
// map expressions, the dynamic-refinement filters, and the switch simulator.
func MaskValue(f fields.ID, v tuple.Value, level int) tuple.Value {
	if v.Str {
		return tuple.Str(packet.DNSNameLevel(v.S, level))
	}
	return tuple.U64(fields.TruncateU64(f, v.U, level))
}

// switchSupported reports whether the expression can be computed by a PISA
// match-action stage.
func (e *Expr) switchSupported() bool {
	switch e.Kind {
	case ExprRatio:
		return false // no division in the data plane
	case ExprField:
		return fields.Lookup(e.Field).SwitchParsable
	case ExprMask, ExprShiftRound:
		return e.Sub.switchSupported()
	default:
		return true
	}
}

// String renders the expression in the paper's surface syntax.
func (e *Expr) String() string {
	switch e.Kind {
	case ExprField:
		return "p." + e.Field.String()
	case ExprCol:
		return fmt.Sprintf("$%d", e.Col)
	case ExprConst:
		return fmt.Sprintf("%d", e.Const)
	case ExprMask:
		return fmt.Sprintf("%s/%d", e.Sub, e.Level)
	case ExprShiftRound:
		return fmt.Sprintf("%s>>%d", e.Sub, e.Shift)
	case ExprRatio:
		return fmt.Sprintf("$%d*%d/$%d", e.Col, e.Const, e.ColB)
	case ExprDiff:
		return fmt.Sprintf("$%d-$%d", e.Col, e.ColB)
	default:
		return fmt.Sprintf("expr(%d)", e.Kind)
	}
}
