package query

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/tuple"
)

func synPacket(t *testing.T, dst uint32) *packet.Packet {
	t.Helper()
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: packet.IPv4Addr(10, 0, 0, 1), DstIP: dst, Proto: 6,
		SrcPort: 1234, DstPort: 80, TCPFlags: fields.FlagSYN, Pad: 60,
	})
	var pkt packet.Packet
	if err := packet.NewParser(packet.ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatal(err)
	}
	return &pkt
}

func TestBuilderQuery1Shape(t *testing.T) {
	q := NewBuilder("q1", 3*time.Second).
		Filter(Eq(fields.TCPFlags, 2)).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		Filter(Gt(fields.AggVal, 40)).
		MustBuild()

	if len(q.Left.Ops) != 4 {
		t.Fatalf("ops = %d", len(q.Left.Ops))
	}
	kinds := []OpKind{OpFilter, OpMap, OpReduce, OpFilter}
	for i, k := range kinds {
		if q.Left.Ops[i].Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, q.Left.Ops[i].Kind, k)
		}
	}
	if !q.Left.Ops[0].PacketPhase() || q.Left.Ops[3].PacketPhase() {
		t.Error("phase tracking wrong")
	}
	want := tuple.Schema{fields.DstIP, fields.AggVal}
	if !q.FinalSchema().Equal(want) {
		t.Errorf("final schema = %s, want %s", q.FinalSchema(), want)
	}
	if q.HasJoin() {
		t.Error("q1 should not join")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]*Builder{
		"empty": NewBuilder("x", time.Second),
		"reduce before map": NewBuilder("x", time.Second).
			Reduce(AggSum, fields.DstIP),
		"bad filter column": NewBuilder("x", time.Second).
			Map(F(fields.DstIP), ConstCol(1)).
			Filter(Gt(fields.SrcIP, 1)),
		"reduce key missing": NewBuilder("x", time.Second).
			Map(F(fields.DstIP), ConstCol(1)).
			Reduce(AggSum, fields.SrcIP),
		"reduce no value": NewBuilder("x", time.Second).
			Map(F(fields.DstIP)).
			Reduce(AggSum, fields.DstIP),
		"reduce two values": NewBuilder("x", time.Second).
			Map(F(fields.DstIP), F(fields.SrcIP), ConstCol(1)).
			Reduce(AggSum, fields.DstIP),
		"duplicate map names": NewBuilder("x", time.Second).
			Map(F(fields.DstIP), F(fields.DstIP)),
		"distinct before map": NewBuilder("x", time.Second).
			Distinct(),
		"zero window": NewBuilder("x", 0).
			Map(F(fields.DstIP), ConstCol(1)),
		"join without keys": NewBuilder("x", time.Second).
			Filter(Eq(fields.Proto, 6)).
			Join(NewBuilder("y", time.Second).Map(F(fields.DstIP), ConstCol(1))),
		"join key missing in sub": NewBuilder("x", time.Second).
			Filter(Eq(fields.Proto, 6)).
			Join(NewBuilder("y", time.Second).Map(F(fields.SrcPort), ConstCol(1)), fields.DstIP),
		"join sub in packet phase": NewBuilder("x", time.Second).
			Filter(Eq(fields.Proto, 6)).
			Join(NewBuilder("y", time.Second).Filter(Eq(fields.Proto, 6)), fields.DstIP),
	}
	for name, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
	}
}

func TestClauseEvaluation(t *testing.T) {
	pkt := synPacket(t, packet.IPv4Addr(1, 2, 3, 4))
	cases := []struct {
		cl   Clause
		want bool
	}{
		{Eq(fields.TCPFlags, 2), true},
		{Eq(fields.TCPFlags, 16), false},
		{Ne(fields.DstPort, 80), false},
		{Gt(fields.PktLen, 50), true},
		{Ge(fields.PktLen, 60), true},
		{Lt(fields.SrcPort, 2000), true},
		{Le(fields.SrcPort, 1233), false},
		{MaskEq(fields.TCPFlags, fields.FlagSYN, fields.FlagSYN), true},
		{MaskEq(fields.TCPFlags, fields.FlagACK, fields.FlagACK), false},
		{Eq(fields.DNSQType, 1), false}, // missing field never matches
	}
	for i, c := range cases {
		if got := c.cl.MatchPacket(pkt); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.cl.String(), got, c.want)
		}
	}
}

func TestContainsClause(t *testing.T) {
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: 1, DstIP: 2, Proto: 6, DstPort: 23,
		TCPFlags: fields.FlagPSH, Payload: []byte("run zorro now"),
	})
	var pkt packet.Packet
	if err := packet.NewParser(packet.ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatal(err)
	}
	hit := Contains(fields.Payload, "zorro")
	if !hit.MatchPacket(&pkt) {
		t.Error("contains missed keyword")
	}
	miss := Contains(fields.Payload, "zeus")
	if miss.MatchPacket(&pkt) {
		t.Error("contains false positive")
	}
}

func TestExprEvaluation(t *testing.T) {
	pkt := synPacket(t, packet.IPv4Addr(192, 168, 1, 77))
	dip := F(fields.DstIP).Expr
	if v, ok := dip.EvalPacket(pkt); !ok || v.U != uint64(packet.IPv4Addr(192, 168, 1, 77)) {
		t.Errorf("F(DstIP) = %v, %v", v, ok)
	}
	masked := MaskF(fields.DstIP, 16).Expr
	if v, _ := masked.EvalPacket(pkt); v.U != uint64(packet.IPv4Addr(192, 168, 0, 0)) {
		t.Errorf("MaskF /16 = %v", v)
	}
	rounded := RoundF(fields.PktLen, 64).Expr
	if v, _ := rounded.EvalPacket(pkt); v.U != 60/64 {
		t.Errorf("RoundF = %v", v)
	}

	// Tuple-phase arithmetic.
	schema := tuple.Schema{fields.DstIP, fields.AggVal, fields.AggVal2}
	vals := []tuple.Value{tuple.U64(9), tuple.U64(30), tuple.U64(7)}
	ratio := Ratio(fields.AggVal, fields.AggVal2, 100)
	resolveExpr(&ratio.Expr, schema)
	if v := ratio.Expr.EvalTuple(vals); v.U != 30*100/7 {
		t.Errorf("Ratio = %d", v.U)
	}
	diff := Diff(fields.AggVal, fields.AggVal2)
	resolveExpr(&diff.Expr, schema)
	if v := diff.Expr.EvalTuple(vals); v.U != 23 {
		t.Errorf("Diff = %d", v.U)
	}
	// Saturating: reversed operands clamp to zero.
	diff2 := Diff(fields.AggVal2, fields.AggVal)
	resolveExpr(&diff2.Expr, schema)
	if v := diff2.Expr.EvalTuple(vals); v.U != 0 {
		t.Errorf("saturating Diff = %d", v.U)
	}
	// Division by zero yields zero, not a panic.
	vals[2] = tuple.U64(0)
	if v := ratio.Expr.EvalTuple(vals); v.U != 0 {
		t.Errorf("Ratio/0 = %d", v.U)
	}
}

func TestRoundFRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RoundF(100) did not panic")
		}
	}()
	RoundF(fields.PktLen, 100)
}

func TestAggFuncs(t *testing.T) {
	cases := []struct {
		f        AggFunc
		a, b, ok uint64
	}{
		{AggSum, 3, 4, 7},
		{AggMax, 3, 4, 4},
		{AggMax, 9, 4, 9},
		{AggMin, 3, 4, 3},
		{AggMin, 9, 4, 4},
		{AggBitOr, 1, 2, 3},
	}
	for _, c := range cases {
		if got := c.f.Apply(c.a, c.b); got != c.ok {
			t.Errorf("%v(%d,%d) = %d, want %d", c.f, c.a, c.b, got, c.ok)
		}
	}
}

func TestJoinSchemas(t *testing.T) {
	sub := NewBuilder("bytes", time.Second).
		Filter(Eq(fields.Proto, 6)).
		Map(F(fields.DstIP), F(fields.PktLen)).
		Reduce(AggSum, fields.DstIP).
		Filter(Gt(fields.AggVal, 100))
	q := NewBuilder("slowloris", time.Second).
		Filter(Eq(fields.Proto, 6)).
		Map(F(fields.DstIP), F(fields.SrcIP), F(fields.SrcPort)).
		Distinct().
		Map(C(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		Join(sub, fields.DstIP).
		Map(C(fields.DstIP), Ratio(fields.AggVal, fields.AggVal2, 1000)).
		Filter(Gt(fields.AggVal, 5)).
		MustBuild()

	if !q.HasJoin() {
		t.Fatal("join lost")
	}
	joined := q.joinedSchema()
	want := tuple.Schema{fields.DstIP, fields.AggVal, fields.AggVal2}
	if !joined.Equal(want) {
		t.Errorf("joined schema = %s, want %s", joined, want)
	}
	final := q.FinalSchema()
	if !final.Equal(tuple.Schema{fields.DstIP, fields.AggVal}) {
		t.Errorf("final schema = %s", final)
	}
	if err := Validate(q); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPacketPhaseJoin(t *testing.T) {
	sub := NewBuilder("vol", time.Second).
		Filter(Eq(fields.DstPort, 23)).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		Filter(Gt(fields.AggVal, 10))
	q := NewBuilder("zorro", time.Second).
		Filter(Eq(fields.DstPort, 23)).
		Join(sub, fields.DstIP).
		Filter(Contains(fields.Payload, "zorro")).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		MustBuild()

	// Post-join ops should be in packet phase until the map.
	if !q.Post.Ops[0].PacketPhase() {
		t.Error("post-join filter should be packet-phase")
	}
	if q.Post.Ops[2].PacketPhase() {
		t.Error("post-join reduce should be tuple-phase")
	}
}

func TestSwitchSupport(t *testing.T) {
	sup := func(o *Op) bool { return OpSwitchSupport(o).OK }

	q := NewBuilder("q", time.Second).
		Filter(Eq(fields.TCPFlags, 2)).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		MustBuild()
	for i := range q.Left.Ops {
		if !sup(&q.Left.Ops[i]) {
			t.Errorf("op %d should be switch-supported", i)
		}
	}
	if n := SwitchPrefixLen(q.Left); n != 3 {
		t.Errorf("SwitchPrefixLen = %d, want 3", n)
	}

	// Payload contains: unsupported.
	qp := NewBuilder("p", time.Second).
		Filter(Contains(fields.Payload, "x")).
		Map(F(fields.DstIP), ConstCol(1)).
		MustBuild()
	if SwitchPrefixLen(qp.Left) != 0 {
		t.Error("payload filter must not be switch-supported")
	}

	// DNS name key: stateful op unsupported, but map of dns name is also
	// not parsable on the switch.
	qd := NewBuilder("d", time.Second).
		Map(F(fields.SrcIP), F(fields.DNSQName)).
		Distinct().
		MustBuild()
	if got := SwitchPrefixLen(qd.Left); got != 0 {
		t.Errorf("DNS-name map should stop the switch prefix, got %d", got)
	}

	// Ratio: unsupported on switch.
	ratioOp := Op{Kind: OpMap, Cols: []Column{{Name: fields.AggVal,
		Expr: Expr{Kind: ExprRatio, Col: 0, ColB: 1, Const: 10}}}}
	if sup(&ratioOp) {
		t.Error("ratio map must not be switch-supported")
	}
}

func TestFindRefinementKey(t *testing.T) {
	q := NewBuilder("q1", time.Second).
		Filter(Eq(fields.TCPFlags, 2)).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		Filter(Gt(fields.AggVal, 40)).
		MustBuild()
	rk, ok := FindRefinementKey(q.Left)
	if !ok || rk.Field != fields.DstIP || rk.MaxLevel != 32 {
		t.Errorf("refinement key = %+v, %v", rk, ok)
	}

	// A "less than" threshold disqualifies refinement.
	qlt := NewBuilder("lt", time.Second).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		Filter(Lt(fields.AggVal, 40)).
		MustBuild()
	if _, ok := FindRefinementKey(qlt.Left); ok {
		t.Error("Lt-threshold query must not be refinable")
	}

	// No hierarchical key.
	qport := NewBuilder("ports", time.Second).
		Map(F(fields.SrcPort), ConstCol(1)).
		Reduce(AggSum, fields.SrcPort).
		Filter(Gt(fields.AggVal, 40)).
		MustBuild()
	if _, ok := FindRefinementKey(qport.Left); ok {
		t.Error("port-keyed query must not be refinable")
	}

	// Stateless query: nothing to refine.
	qsl := NewBuilder("sl", time.Second).
		Filter(Eq(fields.Proto, 6)).
		MustBuild()
	if _, ok := FindRefinementKey(qsl.Left); ok {
		t.Error("stateless query must not be refinable")
	}
}

func TestQueryRefinementKeyJoin(t *testing.T) {
	sub := NewBuilder("bytes", time.Second).
		Map(F(fields.DstIP), F(fields.PktLen)).
		Reduce(AggSum, fields.DstIP).
		Filter(Gt(fields.AggVal, 100))
	q := NewBuilder("j", time.Second).
		Map(F(fields.DstIP), F(fields.SrcIP)).
		Distinct().
		Map(C(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		Join(sub, fields.DstIP).
		MustBuild()
	rk, ok := QueryRefinementKey(q)
	if !ok || rk.Field != fields.DstIP {
		t.Errorf("join refinement key = %+v, %v", rk, ok)
	}

	// Join on a non-hierarchical key: not refinable.
	sub2 := NewBuilder("s2", time.Second).
		Map(F(fields.SrcPort), ConstCol(1)).
		Reduce(AggSum, fields.SrcPort)
	q2 := NewBuilder("j2", time.Second).
		Map(F(fields.SrcPort), F(fields.PktLen)).
		Reduce(AggSum, fields.SrcPort).
		Join(sub2, fields.SrcPort).
		MustBuild()
	if _, ok := QueryRefinementKey(q2); ok {
		t.Error("port-joined query must not be refinable")
	}
}

func TestQueryCloneIndependence(t *testing.T) {
	q := NewBuilder("q1", time.Second).
		Filter(Eq(fields.TCPFlags, 2)).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		MustBuild()
	c := q.Clone()
	c.Left.Ops[0].Clauses[0].Arg = tuple.U64(99)
	if q.Left.Ops[0].Clauses[0].Arg.U != 2 {
		t.Error("Clone shares clause storage")
	}
	c.Left.Ops[1].Cols[0].Expr.Field = fields.SrcIP
	if q.Left.Ops[1].Cols[0].Expr.Field != fields.DstIP {
		t.Error("Clone shares column storage")
	}
}

func TestStringRendering(t *testing.T) {
	q := NewBuilder("q1", 3*time.Second).
		Filter(Eq(fields.TCPFlags, 2)).
		Map(F(fields.DstIP), ConstCol(1)).
		Reduce(AggSum, fields.DstIP).
		Filter(Gt(fields.AggVal, 40)).
		MustBuild()
	s := q.String()
	for _, frag := range []string{"packetStream", ".filter(p.tcp.flags == 2)", ".map(p => (p.ipv4.dIP, 1))", ".reduce(keys=(ipv4.dIP), f=sum)", "agg > 40"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering missing %q in:\n%s", frag, s)
		}
	}
	if q.LinesOfCode() != 5 {
		t.Errorf("LinesOfCode = %d, want 5", q.LinesOfCode())
	}
}
