package query

import (
	"bytes"
	"encoding/gob"

	"repro/internal/fields"
	"repro/internal/tuple"
)

// opWire mirrors Op with every field exported so gob can move compiled
// query pipelines across the control-plane connection between the runtime
// and the data-plane driver.
type opWire struct {
	Kind           OpKind
	Clauses        []Clause
	DynFilterTable string
	DynKeyCols     []int
	DynKeyField    fields.ID
	DynLevel       int
	Cols           []Column
	KeyCols        []int
	Func           AggFunc
	ValCol         int
	InSchema       tuple.Schema
	OutSchema      tuple.Schema
	PacketPhase    bool
}

// GobEncode implements gob.GobEncoder, including the unexported schema and
// phase fields the evaluator depends on.
func (o *Op) GobEncode() ([]byte, error) {
	w := opWire{
		Kind: o.Kind, Clauses: o.Clauses,
		DynFilterTable: o.DynFilterTable, DynKeyCols: o.DynKeyCols,
		DynKeyField: o.DynKeyField, DynLevel: o.DynLevel,
		Cols: o.Cols, KeyCols: o.KeyCols, Func: o.Func, ValCol: o.ValCol,
		InSchema: o.inSchema, OutSchema: o.outSchema, PacketPhase: o.packetPhase,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (o *Op) GobDecode(data []byte) error {
	var w opWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*o = Op{
		Kind: w.Kind, Clauses: w.Clauses,
		DynFilterTable: w.DynFilterTable, DynKeyCols: w.DynKeyCols,
		DynKeyField: w.DynKeyField, DynLevel: w.DynLevel,
		Cols: w.Cols, KeyCols: w.KeyCols, Func: w.Func, ValCol: w.ValCol,
		inSchema: w.InSchema, outSchema: w.OutSchema, packetPhase: w.PacketPhase,
	}
	return nil
}
