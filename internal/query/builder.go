package query

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/fields"
	"repro/internal/tuple"
)

// Builder assembles a Query with a fluent API mirroring the paper's surface
// syntax. Errors accumulate and are reported by Build, so call chains stay
// uncluttered.
type Builder struct {
	name     string
	window   time.Duration
	maxDelay int

	left  *pipeBuilder
	right *pipeBuilder
	post  *pipeBuilder
	joinK []fields.ID
	outer bool

	cur  *pipeBuilder // where the next operator lands
	errs []error
}

// pipeBuilder tracks one pipeline plus its evolving schema.
type pipeBuilder struct {
	ops    []Op
	schema tuple.Schema // nil while in packet phase
}

// NewBuilder starts a query named name with window w.
func NewBuilder(name string, w time.Duration) *Builder {
	b := &Builder{name: name, window: w, left: &pipeBuilder{}}
	b.cur = b.left
	return b
}

// MaxDelay bounds the refinement chain length the planner may use for this
// query (D_q, in windows).
func (b *Builder) MaxDelay(windows int) *Builder {
	b.maxDelay = windows
	return b
}

func (b *Builder) errf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// Filter appends a filter with the given conjunctive clauses. In packet
// phase clauses reference packet fields; in tuple phase they reference
// schema columns by field name.
func (b *Builder) Filter(clauses ...Clause) *Builder {
	if len(clauses) == 0 {
		return b.errf("filter with no clauses")
	}
	p := b.cur
	resolved := make([]Clause, len(clauses))
	for i, cl := range clauses {
		resolved[i] = cl
		if p.schema == nil {
			resolved[i].Col = -1
			if !fields.Valid(cl.Field) {
				return b.errf("filter clause %d references invalid field", i)
			}
		} else {
			idx := p.schema.Index(cl.Field)
			if idx < 0 {
				return b.errf("filter clause %d references %s, not in schema %s", i, cl.Field, p.schema)
			}
			resolved[i].Col = idx
		}
	}
	op := Op{Kind: OpFilter, Clauses: resolved, packetPhase: p.schema == nil,
		inSchema: p.schema.Clone(), outSchema: p.schema.Clone()}
	p.ops = append(p.ops, op)
	return b
}

// Map appends a projection/transformation producing the given columns and
// moves the pipeline into tuple phase.
func (b *Builder) Map(cols ...Column) *Builder {
	if len(cols) == 0 {
		return b.errf("map with no columns")
	}
	p := b.cur
	out := make(tuple.Schema, len(cols))
	for i, c := range cols {
		if !fields.Valid(c.Name) {
			return b.errf("map column %d has invalid name", i)
		}
		if out[:i].Contains(c.Name) {
			return b.errf("map column %d duplicates name %s", i, c.Name)
		}
		out[i] = c.Name
		if err := b.checkExpr(&c.Expr, p.schema); err != nil {
			return b.errf("map column %s: %v", c.Name, err)
		}
	}
	resolved := b.resolveCols(cols, p.schema)
	op := Op{Kind: OpMap, Cols: resolved, packetPhase: p.schema == nil,
		inSchema: p.schema.Clone(), outSchema: out}
	p.ops = append(p.ops, op)
	p.schema = out
	return b
}

// checkExpr validates expression references against the current phase.
func (b *Builder) checkExpr(e *Expr, schema tuple.Schema) error {
	switch e.Kind {
	case ExprField:
		if schema != nil {
			return fmt.Errorf("field reference %s in tuple phase", e.Field)
		}
		if !fields.Valid(e.Field) {
			return fmt.Errorf("invalid field")
		}
	case ExprCol:
		if schema == nil {
			return fmt.Errorf("column reference in packet phase")
		}
		if schema.Index(e.Field) < 0 {
			return fmt.Errorf("column %s not in schema %s", e.Field, schema)
		}
	case ExprMask, ExprShiftRound:
		if e.Sub == nil {
			return fmt.Errorf("mask/round without operand")
		}
		return b.checkExpr(e.Sub, schema)
	case ExprRatio, ExprDiff:
		if schema == nil {
			return fmt.Errorf("two-column arithmetic in packet phase")
		}
		if schema.Index(e.Field) < 0 || schema.Index(fields.ID(e.ColB)) < 0 {
			// ColB carries the field ID pre-resolution; see resolveCols.
			return fmt.Errorf("arithmetic operands not in schema %s", schema)
		}
	case ExprConst:
	default:
		return fmt.Errorf("unknown expression kind %d", e.Kind)
	}
	return nil
}

// resolveCols rewrites field-name references into column indices once the
// schema is known.
func (b *Builder) resolveCols(cols []Column, schema tuple.Schema) []Column {
	out := make([]Column, len(cols))
	for i, c := range cols {
		out[i] = c
		e := c.Expr
		resolveExpr(&e, schema)
		out[i].Expr = e
	}
	return out
}

func resolveExpr(e *Expr, schema tuple.Schema) {
	switch e.Kind {
	case ExprCol:
		e.Col = schema.Index(e.Field)
	case ExprMask, ExprShiftRound:
		sub := *e.Sub
		resolveExpr(&sub, schema)
		e.Sub = &sub
	case ExprRatio, ExprDiff:
		e.Col = schema.Index(e.Field)
		e.ColB = schema.Index(fields.ID(e.ColB))
	}
}

// Reduce appends an aggregation grouped by the named key columns. The value
// column is the single non-key column of the schema; its aggregate replaces
// it under the name fields.AggVal.
func (b *Builder) Reduce(f AggFunc, keys ...fields.ID) *Builder {
	p := b.cur
	if p.schema == nil {
		return b.errf("reduce before map: no tuple schema yet")
	}
	if len(keys) == 0 {
		return b.errf("reduce with no keys")
	}
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		idx := p.schema.Index(k)
		if idx < 0 {
			return b.errf("reduce key %s not in schema %s", k, p.schema)
		}
		keyIdx[i] = idx
	}
	valCol := -1
	for i := range p.schema {
		if !intsContain(keyIdx, i) {
			if valCol >= 0 {
				return b.errf("reduce: schema %s has multiple value columns", p.schema)
			}
			valCol = i
		}
	}
	if valCol < 0 {
		return b.errf("reduce: schema %s has no value column", p.schema)
	}
	out := make(tuple.Schema, 0, len(keys)+1)
	out = append(out, keys...)
	out = append(out, fields.AggVal)
	op := Op{Kind: OpReduce, KeyCols: keyIdx, Func: f, ValCol: valCol,
		inSchema: p.schema.Clone(), outSchema: out}
	p.ops = append(p.ops, op)
	p.schema = out
	return b
}

// Distinct appends a duplicate-suppression operator over all current
// columns.
func (b *Builder) Distinct() *Builder {
	p := b.cur
	if p.schema == nil {
		return b.errf("distinct before map: no tuple schema yet")
	}
	keyIdx := make([]int, len(p.schema))
	for i := range keyIdx {
		keyIdx[i] = i
	}
	op := Op{Kind: OpDistinct, KeyCols: keyIdx,
		inSchema: p.schema.Clone(), outSchema: p.schema.Clone()}
	p.ops = append(p.ops, op)
	return b
}

// OuterJoin is Join with left-outer semantics: left tuples without a right
// match join against zeros instead of being dropped.
func (b *Builder) OuterJoin(sub *Builder, keys ...fields.ID) *Builder {
	b.outer = true
	return b.Join(sub, keys...)
}

// Join attaches sub as the right-hand side, equi-joined on the named keys.
// Subsequent operators apply to the joined stream. The sub-builder's window
// and name are ignored; only its pipeline is used.
func (b *Builder) Join(sub *Builder, keys ...fields.ID) *Builder {
	if b.right != nil {
		return b.errf("query already has a join")
	}
	if len(keys) == 0 {
		return b.errf("join with no keys")
	}
	if sub == nil || len(sub.left.ops) == 0 {
		return b.errf("join with empty sub-query")
	}
	if sub.right != nil {
		return b.errf("nested joins are not supported")
	}
	b.errs = append(b.errs, sub.errs...)
	// The right side must be in tuple phase and expose every join key.
	if sub.left.schema == nil {
		return b.errf("join sub-query never produced tuples (missing map)")
	}
	for _, k := range keys {
		if sub.left.schema.Index(k) < 0 {
			return b.errf("join key %s not in sub-query schema %s", k, sub.left.schema)
		}
		if b.left.schema != nil && b.left.schema.Index(k) < 0 {
			return b.errf("join key %s not in main schema %s", k, b.left.schema)
		}
		if b.left.schema == nil && !fields.Valid(k) {
			return b.errf("join key invalid for packet-phase left side")
		}
	}
	b.right = sub.left
	b.joinK = keys

	// Compute the post-join schema; a packet-phase left side stays in
	// packet phase (the join acts as a semi-join filter on packets).
	b.post = &pipeBuilder{}
	if b.left.schema != nil {
		q := &Query{Left: &Pipeline{Ops: b.left.ops}, Right: &Pipeline{Ops: b.right.ops}, JoinKeys: keys}
		b.post.schema = q.joinedSchema()
	}
	b.cur = b.post
	return b
}

// Build validates the accumulated pipeline and returns the query. The ID is
// assigned by the caller (the planner namespaces queries).
func (b *Builder) Build() (*Query, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("query %q: %w", b.name, b.errs[0])
	}
	if b.window <= 0 {
		return nil, fmt.Errorf("query %q: non-positive window", b.name)
	}
	if len(b.left.ops) == 0 {
		return nil, fmt.Errorf("query %q: empty pipeline", b.name)
	}
	q := &Query{
		Name:   b.name,
		Window: b.window,
		Left:   &Pipeline{Ops: b.left.ops},
	}
	q.MaxDelay = b.maxDelay
	if b.right != nil {
		q.Right = &Pipeline{Ops: b.right.ops}
		q.JoinKeys = b.joinK
		q.JoinOuter = b.outer
		q.Post = &Pipeline{Ops: b.post.ops}
	}
	return q, nil
}

// MustBuild is Build for statically-known queries; it panics on error.
func (b *Builder) MustBuild() *Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// --- Clause constructors ---

// Eq matches field == v.
func Eq(f fields.ID, v uint64) Clause { return Clause{Field: f, Cmp: CmpEq, Arg: tuple.U64(v)} }

// EqStr matches a bytes field == s.
func EqStr(f fields.ID, s string) Clause { return Clause{Field: f, Cmp: CmpEq, Arg: tuple.Str(s)} }

// Ne matches field != v.
func Ne(f fields.ID, v uint64) Clause { return Clause{Field: f, Cmp: CmpNe, Arg: tuple.U64(v)} }

// Gt matches field > v.
func Gt(f fields.ID, v uint64) Clause { return Clause{Field: f, Cmp: CmpGt, Arg: tuple.U64(v)} }

// Ge matches field >= v.
func Ge(f fields.ID, v uint64) Clause { return Clause{Field: f, Cmp: CmpGe, Arg: tuple.U64(v)} }

// Lt matches field < v.
func Lt(f fields.ID, v uint64) Clause { return Clause{Field: f, Cmp: CmpLt, Arg: tuple.U64(v)} }

// Le matches field <= v.
func Le(f fields.ID, v uint64) Clause { return Clause{Field: f, Cmp: CmpLe, Arg: tuple.U64(v)} }

// MaskEq matches field & mask == v (flag tests).
func MaskEq(f fields.ID, mask, v uint64) Clause {
	return Clause{Field: f, Cmp: CmpMaskEq, Mask: mask, Arg: tuple.U64(v)}
}

// Contains matches a bytes field containing substring s.
func Contains(f fields.ID, s string) Clause {
	return Clause{Field: f, Cmp: CmpContains, Arg: tuple.Str(s)}
}

// --- Column constructors ---

// F extracts packet field f into a column of the same name.
func F(f fields.ID) Column {
	return Column{Name: f, Expr: Expr{Kind: ExprField, Field: f}}
}

// C copies schema column f (tuple phase).
func C(f fields.ID) Column {
	return Column{Name: f, Expr: Expr{Kind: ExprCol, Field: f}}
}

// ConstCol produces the constant v under the name fields.ConstV (the usual
// "map to (key, 1)" idiom).
func ConstCol(v uint64) Column {
	return Column{Name: fields.ConstV, Expr: Expr{Kind: ExprConst, Const: v}}
}

// RoundF extracts packet field f and buckets it by n (a power of two),
// e.g. packet length rounded to 64-byte buckets.
func RoundF(f fields.ID, n uint64) Column {
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("query: RoundF bucket %d is not a power of two", n))
	}
	return Column{Name: f, Expr: Expr{
		Kind: ExprShiftRound, Shift: uint(bits.TrailingZeros64(n)),
		Sub: &Expr{Kind: ExprField, Field: f},
	}}
}

// MaskC truncates schema column f to refinement level level, keeping the
// name.
func MaskC(f fields.ID, level int) Column {
	return Column{Name: f, Expr: Expr{
		Kind: ExprMask, Field: f, Level: level,
		Sub: &Expr{Kind: ExprCol, Field: f},
	}}
}

// MaskF extracts packet field f truncated to refinement level level.
func MaskF(f fields.ID, level int) Column {
	return Column{Name: f, Expr: Expr{
		Kind: ExprMask, Field: f, Level: level,
		Sub: &Expr{Kind: ExprField, Field: f},
	}}
}

// Ratio produces (a * scale) / b over two schema columns, named
// fields.AggVal. Integer division makes small ratios vanish, so scale
// rescales the numerator first (the paper's conns-per-byte uses this).
func Ratio(a, b fields.ID, scale uint64) Column {
	return Column{Name: fields.AggVal, Expr: Expr{
		Kind: ExprRatio, Field: a, ColB: int(b), Const: scale,
	}}
}

// Diff produces the saturating difference a - b over two schema columns,
// named fields.AggVal (e.g. SYNs minus FINs per host).
func Diff(a, b fields.ID) Column {
	return Column{Name: fields.AggVal, Expr: Expr{
		Kind: ExprDiff, Field: a, ColB: int(b),
	}}
}

// Named renames a column constructor's output.
func Named(name fields.ID, c Column) Column {
	c.Name = name
	return c
}
