package query

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fields"
	"repro/internal/tuple"
)

// OpKind enumerates the dataflow operators.
type OpKind uint8

const (
	OpFilter OpKind = iota
	OpMap
	OpReduce
	OpDistinct
)

func (k OpKind) String() string {
	switch k {
	case OpFilter:
		return "filter"
	case OpMap:
		return "map"
	case OpReduce:
		return "reduce"
	case OpDistinct:
		return "distinct"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// AggFunc is the aggregation applied by reduce.
type AggFunc uint8

const (
	AggSum AggFunc = iota
	AggMax
	AggMin
	AggBitOr
)

func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggBitOr:
		return "bit_or"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// Apply folds next into acc.
func (f AggFunc) Apply(acc, next uint64) uint64 {
	switch f {
	case AggSum:
		return acc + next
	case AggMax:
		if next > acc {
			return next
		}
		return acc
	case AggMin:
		if next < acc {
			return next
		}
		return acc
	case AggBitOr:
		return acc | next
	default:
		panic("query: unknown aggregation")
	}
}

// Column is one output of a map: a named expression.
type Column struct {
	// Name identifies the column in later operators (key selection, filter
	// clauses). Two columns in one schema may not share a name.
	Name fields.ID
	Expr Expr
}

// Op is one dataflow operator. Exactly one of the payload fields is set,
// selected by Kind; a flat struct keeps the AST trivially copyable, which
// the planner's query-augmentation rewrites rely on.
type Op struct {
	Kind OpKind

	// Filter payload: conjunction of clauses. In tuple phase each clause's
	// Col is resolved; in packet phase Col is -1.
	Clauses []Clause
	// DynFilterTable marks a filter whose rule set is installed at runtime
	// by dynamic refinement (the red filters of Figure 4). Key gives the
	// match columns; the runtime updates the allowed-value set each window.
	DynFilterTable string
	DynKeyCols     []int
	DynKeyField    fields.ID
	DynLevel       int

	// Map payload.
	Cols []Column

	// Reduce / Distinct payload: key column indices into the input schema.
	KeyCols []int
	Func    AggFunc
	ValCol  int // reduce input value column

	// inSchema and outSchema are filled by schema inference at build time.
	inSchema  tuple.Schema
	outSchema tuple.Schema
	// packetPhase reports whether this operator consumes raw packets.
	packetPhase bool
}

// InSchema returns the operator's input schema (nil in packet phase).
func (o *Op) InSchema() tuple.Schema { return o.inSchema }

// OutSchema returns the operator's output schema (nil while still in packet
// phase).
func (o *Op) OutSchema() tuple.Schema { return o.outSchema }

// PacketPhase reports whether the operator consumes raw packets.
func (o *Op) PacketPhase() bool { return o.packetPhase }

// Stateful reports whether the operator keeps per-key state.
func (o *Op) Stateful() bool { return o.Kind == OpReduce || o.Kind == OpDistinct }

// Clone returns a deep copy of the operator (schemas are re-derived on
// build, but clauses/columns must not alias).
func (o *Op) Clone() *Op {
	c := *o
	c.Clauses = append([]Clause(nil), o.Clauses...)
	c.Cols = make([]Column, len(o.Cols))
	for i, col := range o.Cols {
		c.Cols[i] = col
		if col.Expr.Sub != nil {
			sub := *col.Expr.Sub
			c.Cols[i].Expr.Sub = &sub
		}
	}
	c.KeyCols = append([]int(nil), o.KeyCols...)
	c.DynKeyCols = append([]int(nil), o.DynKeyCols...)
	c.inSchema = o.inSchema.Clone()
	c.outSchema = o.outSchema.Clone()
	return &c
}

// String renders the operator in the paper's surface syntax.
func (o *Op) String() string {
	switch o.Kind {
	case OpFilter:
		if o.DynFilterTable != "" {
			return fmt.Sprintf(".filter(in refined(%s/%d))", o.DynKeyField, o.DynLevel)
		}
		parts := make([]string, len(o.Clauses))
		for i := range o.Clauses {
			parts[i] = o.Clauses[i].String()
		}
		return ".filter(" + strings.Join(parts, " && ") + ")"
	case OpMap:
		parts := make([]string, len(o.Cols))
		for i, c := range o.Cols {
			parts[i] = c.Expr.String()
		}
		return ".map(p => (" + strings.Join(parts, ", ") + "))"
	case OpReduce:
		keys := make([]string, len(o.KeyCols))
		for i, k := range o.KeyCols {
			keys[i] = o.inSchema[k].String()
		}
		return fmt.Sprintf(".reduce(keys=(%s), f=%s)", strings.Join(keys, ","), o.Func)
	case OpDistinct:
		return ".distinct()"
	default:
		return ".?"
	}
}

// Pipeline is a linear chain of operators over one packet stream.
type Pipeline struct {
	Ops []Op
}

// clone deep-copies the pipeline.
func (p *Pipeline) clone() *Pipeline {
	if p == nil {
		return nil
	}
	c := &Pipeline{Ops: make([]Op, len(p.Ops))}
	for i := range p.Ops {
		c.Ops[i] = *p.Ops[i].Clone()
	}
	return c
}

// OutSchema returns the schema after the last operator, or nil if the
// pipeline never leaves packet phase.
func (p *Pipeline) OutSchema() tuple.Schema {
	for i := len(p.Ops) - 1; i >= 0; i-- {
		if s := p.Ops[i].outSchema; s != nil {
			return s
		}
	}
	return nil
}

// Query is a complete telemetry query: a main pipeline, an optional joined
// sub-pipeline, and operators applied after the join.
type Query struct {
	ID     uint16
	Name   string
	Window time.Duration
	// MaxDelay bounds the number of refinement levels the planner may chain
	// (D_q in the paper), expressed in windows. Zero means unbounded.
	MaxDelay int

	// Left is the main pipeline. For join queries it is the left operand
	// (which may still be in packet phase, as in the Zorro query).
	Left *Pipeline
	// Right is the joined sub-query's pipeline; nil when there is no join.
	Right *Pipeline
	// JoinKeys names the equi-join key columns, present in both sides'
	// schemas (or extractable from the packet when Left is packet-phase).
	JoinKeys []fields.ID
	// JoinOuter makes the join left-outer: left tuples without a right
	// match join against zero values. Queries that subtract an aggregate
	// that may be absent (SYNs minus SYN-ACKs) need this — the anomaly is
	// precisely the key with no counterpart.
	JoinOuter bool
	// Post holds operators applied to the joined stream.
	Post *Pipeline
}

// HasJoin reports whether the query joins two sub-pipelines.
func (q *Query) HasJoin() bool { return q.Right != nil }

// Clone deep-copies the query so planner rewrites never alias the original.
func (q *Query) Clone() *Query {
	c := *q
	c.Left = q.Left.clone()
	c.Right = q.Right.clone()
	c.Post = q.Post.clone()
	c.JoinKeys = append([]fields.ID(nil), q.JoinKeys...)
	return &c
}

// FinalSchema returns the schema of the query's results.
func (q *Query) FinalSchema() tuple.Schema {
	if q.Post != nil && len(q.Post.Ops) > 0 {
		if s := q.Post.OutSchema(); s != nil {
			return s
		}
	}
	if q.HasJoin() {
		return q.joinedSchema()
	}
	return q.Left.OutSchema()
}

// joinedSchema computes the schema immediately after the join: the join
// keys, then the left side's non-key columns, then the right side's non-key
// columns. A packet-phase left side contributes only the keys.
func (q *Query) joinedSchema() tuple.Schema {
	out := tuple.Schema{}
	out = append(out, q.JoinKeys...)
	if ls := q.Left.OutSchema(); ls != nil {
		for _, f := range ls {
			if !containsField(q.JoinKeys, f) {
				out = append(out, f)
			}
		}
	}
	if rs := q.Right.OutSchema(); rs != nil {
		for _, f := range rs {
			if !containsField(q.JoinKeys, f) {
				// Disambiguate a second aggregate column.
				if f == fields.AggVal && out.Contains(fields.AggVal) {
					f = fields.AggVal2
				}
				out = append(out, f)
			}
		}
	}
	return out
}

func containsField(list []fields.ID, f fields.ID) bool {
	for _, x := range list {
		if x == f {
			return true
		}
	}
	return false
}

// String renders the whole query in the paper's surface syntax, one
// operator per line. Table 3's "lines of Sonata code" metric counts these
// lines.
func (q *Query) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "packetStream(W=%s)\n", q.Window)
	for i := range q.Left.Ops {
		sb.WriteString(q.Left.Ops[i].String())
		sb.WriteByte('\n')
	}
	if q.HasJoin() {
		keys := make([]string, len(q.JoinKeys))
		for i, k := range q.JoinKeys {
			keys[i] = k.String()
		}
		fmt.Fprintf(&sb, ".join(keys=(%s), packetStream\n", strings.Join(keys, ","))
		for i := range q.Right.Ops {
			sb.WriteString("  ")
			sb.WriteString(q.Right.Ops[i].String())
			sb.WriteByte('\n')
		}
		sb.WriteString(")\n")
	}
	if q.Post != nil {
		for i := range q.Post.Ops {
			sb.WriteString(q.Post.Ops[i].String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// LinesOfCode counts the operators in the paper's surface syntax, the
// number Table 3 reports for Sonata queries.
func (q *Query) LinesOfCode() int {
	return strings.Count(strings.TrimRight(q.String(), "\n"), "\n") + 1
}
