package query

import (
	"fmt"

	"repro/internal/fields"
)

// SwitchSupport classifies whether an operator can execute in the data
// plane, and if not, why — the planner partitions at the first unsupported
// operator regardless of resource availability.
type SwitchSupport struct {
	OK     bool
	Reason string
}

// OpSwitchSupport analyzes one operator.
func OpSwitchSupport(o *Op) SwitchSupport {
	switch o.Kind {
	case OpFilter:
		if o.DynFilterTable != "" {
			return SwitchSupport{OK: true}
		}
		for i := range o.Clauses {
			cl := &o.Clauses[i]
			if cl.Cmp == CmpContains {
				return SwitchSupport{false, "payload/string matching requires the stream processor"}
			}
			if o.packetPhase && !fields.Lookup(cl.Field).SwitchParsable {
				return SwitchSupport{false, fmt.Sprintf("field %s is not switch-parsable", cl.Field)}
			}
			if cl.Arg.Str {
				return SwitchSupport{false, "string comparison requires the stream processor"}
			}
		}
		return SwitchSupport{OK: true}
	case OpMap:
		for i := range o.Cols {
			e := &o.Cols[i].Expr
			if !e.switchSupported() {
				return SwitchSupport{false, fmt.Sprintf("expression %s cannot run in the data plane", e)}
			}
		}
		return SwitchSupport{OK: true}
	case OpReduce, OpDistinct:
		// Stateful key columns must be register-indexable: string keys from
		// deep parsing (DNS names) cannot live in switch registers.
		schema := o.inSchema
		for _, k := range o.KeyCols {
			if fields.Lookup(schema[k]).Kind == fields.Bytes {
				return SwitchSupport{false, fmt.Sprintf("stateful key %s is a byte string", schema[k])}
			}
		}
		return SwitchSupport{OK: true}
	default:
		return SwitchSupport{false, "unknown operator"}
	}
}

// SwitchPrefixLen returns how many leading operators of the pipeline could
// execute on a switch with unbounded resources. Partitioning never places an
// operator on the switch past this point.
func SwitchPrefixLen(p *Pipeline) int {
	for i := range p.Ops {
		if s := OpSwitchSupport(&p.Ops[i]); !s.OK {
			return i
		}
	}
	return len(p.Ops)
}

// RefinementKey describes the hierarchical key the planner may coarsen.
type RefinementKey struct {
	Field fields.ID
	// MaxLevel is the finest level (e.g. 32 for IPv4).
	MaxLevel int
}

// FindRefinementKey identifies a refinement key for a pipeline, following
// Section 4.1: the key must be hierarchical, be used as a key in a stateful
// operator, and the pipeline's final aggregate filter must be monotone
// (Gt/Ge), so that coarsening the key can never miss satisfying traffic.
// It returns false when the pipeline has no refinable key.
func FindRefinementKey(p *Pipeline) (RefinementKey, bool) {
	// Find the first stateful op and its hierarchical keys.
	var candidate fields.ID
	statefulAt := -1
	for i := range p.Ops {
		o := &p.Ops[i]
		if !o.Stateful() {
			continue
		}
		statefulAt = i
		for _, k := range o.KeyCols {
			f := o.inSchema[k]
			if fields.Lookup(f).Hierarchical {
				candidate = f
				break
			}
		}
		break
	}
	if statefulAt < 0 || candidate == fields.Unknown {
		return RefinementKey{}, false
	}
	// Monotonicity: every tuple-phase filter after the stateful operator
	// must use >= or > comparisons on numeric columns. (A "count < Th"
	// filter could be missed at coarse levels, so it disqualifies.)
	for i := statefulAt + 1; i < len(p.Ops); i++ {
		o := &p.Ops[i]
		if o.Kind != OpFilter {
			continue
		}
		for j := range o.Clauses {
			if c := o.Clauses[j].Cmp; c != CmpGt && c != CmpGe {
				return RefinementKey{}, false
			}
		}
	}
	// The key must be traceable back to the raw packet field: the map that
	// introduced the column must extract it unmodified (possibly masked).
	return RefinementKey{Field: candidate, MaxLevel: fields.Lookup(candidate).MaxLevel}, true
}

// QueryRefinementKey identifies a refinement key for a whole query. For
// join queries both sides must share the key (the paper constrains joined
// sub-queries to a common refinement plan), so the key must be refinable in
// the right side and — when the left side has its own stateful operators —
// in the left side too.
func QueryRefinementKey(q *Query) (RefinementKey, bool) {
	if !q.HasJoin() {
		return FindRefinementKey(q.Left)
	}
	rk, ok := FindRefinementKey(q.Right)
	if !ok {
		return RefinementKey{}, false
	}
	// The join keys must include the refinement key so filtering coarse
	// results constrains both sides.
	if !containsField(q.JoinKeys, rk.Field) {
		return RefinementKey{}, false
	}
	if leftHasStateful(q.Left) {
		lk, ok := FindRefinementKey(q.Left)
		if !ok || lk.Field != rk.Field {
			return RefinementKey{}, false
		}
	}
	return rk, true
}

func leftHasStateful(p *Pipeline) bool {
	for i := range p.Ops {
		if p.Ops[i].Stateful() {
			return true
		}
	}
	return false
}

// NewDynPacketFilter constructs the packet-phase dynamic-refinement filter
// that query augmentation prepends at finer levels (the red filters of
// Figure 4): it admits only packets whose key field, masked to level,
// appears in the named runtime-updated table.
func NewDynPacketFilter(table string, key fields.ID, level int) Op {
	return Op{Kind: OpFilter, DynFilterTable: table, DynKeyField: key,
		DynLevel: level, packetPhase: true}
}

// Validate performs whole-query consistency checks beyond what the builder
// enforces, for queries constructed or rewritten programmatically.
func Validate(q *Query) error {
	if q.Left == nil || len(q.Left.Ops) == 0 {
		return fmt.Errorf("query %q: empty left pipeline", q.Name)
	}
	if q.Window <= 0 {
		return fmt.Errorf("query %q: non-positive window", q.Name)
	}
	if q.HasJoin() {
		if len(q.JoinKeys) == 0 {
			return fmt.Errorf("query %q: join without keys", q.Name)
		}
		rs := q.Right.OutSchema()
		if rs == nil {
			return fmt.Errorf("query %q: join right side has no tuple schema", q.Name)
		}
		for _, k := range q.JoinKeys {
			if rs.Index(k) < 0 {
				return fmt.Errorf("query %q: join key %s missing from right schema %s", q.Name, k, rs)
			}
		}
		if ls := q.Left.OutSchema(); ls != nil {
			for _, k := range q.JoinKeys {
				if ls.Index(k) < 0 {
					return fmt.Errorf("query %q: join key %s missing from left schema %s", q.Name, k, ls)
				}
			}
		}
	}
	return nil
}
