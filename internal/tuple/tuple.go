// Package tuple defines the value and tuple representations that flow between
// the switch, the emitter, and the stream processor.
//
// Sonata's dataflow operators are defined over tuples of typed values. A
// tuple's layout is described by a Schema (an ordered list of field IDs); the
// values themselves are stored positionally so that hot-path operators can
// index columns without map lookups.
package tuple

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/fields"
)

// Value is a single column value: either a numeric (U) or a byte-string (S).
// The zero Value is the numeric 0.
type Value struct {
	U   uint64
	S   string
	Str bool
}

// U64 returns a numeric value.
func U64(v uint64) Value { return Value{U: v} }

// Str returns a byte-string value.
func Str(s string) Value { return Value{S: s, Str: true} }

// Equal reports whether two values are identical in kind and content.
func (v Value) Equal(o Value) bool {
	if v.Str != o.Str {
		return false
	}
	if v.Str {
		return v.S == o.S
	}
	return v.U == o.U
}

// Less orders values: numerics before strings, then by content. It provides a
// total order for deterministic result sorting.
func (v Value) Less(o Value) bool {
	if v.Str != o.Str {
		return !v.Str
	}
	if v.Str {
		return v.S < o.S
	}
	return v.U < o.U
}

// String renders the value for logs and test failures.
func (v Value) String() string {
	if v.Str {
		return fmt.Sprintf("%q", v.S)
	}
	return fmt.Sprintf("%d", v.U)
}

// IPString renders a numeric value as a dotted-quad IPv4 address.
func (v Value) IPString() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v.U>>24), byte(v.U>>16), byte(v.U>>8), byte(v.U))
}

// Schema is an ordered list of field IDs describing tuple columns. Field IDs
// may repeat only when they denote distinct synthetic columns (e.g. two
// AggVal columns after a join); position is the identity of a column.
type Schema []fields.ID

// Index returns the position of the first column with field id, or -1.
func (s Schema) Index(id fields.ID) int {
	for i, f := range s {
		if f == id {
			return i
		}
	}
	return -1
}

// Contains reports whether the schema has a column with field id.
func (s Schema) Contains(id fields.ID) bool { return s.Index(id) >= 0 }

// Clone returns an independent copy of the schema. A nil schema (the
// packet-phase marker) stays nil.
func (s Schema) Clone() Schema {
	if s == nil {
		return nil
	}
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two schemas have identical columns.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Bits returns the total metadata width of the schema in bits, which is what
// carrying one tuple of this schema through the switch pipeline costs.
func (s Schema) Bits() int {
	total := 0
	for _, f := range s {
		total += f.Bits()
	}
	return total
}

// String renders the schema as "(ipv4.dIP, agg)".
func (s Schema) String() string {
	names := make([]string, len(s))
	for i, f := range s {
		names[i] = f.String()
	}
	return "(" + strings.Join(names, ", ") + ")"
}

// Tuple is one record flowing through the system. QID identifies the query
// the tuple belongs to and Level the refinement level that produced it (zero
// when refinement is not in play). Vals is positional per the query's schema
// at that point in the dataflow.
type Tuple struct {
	QID   uint16
	Level uint8
	Vals  []Value
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	vals := make([]Value, len(t.Vals))
	copy(vals, t.Vals)
	return Tuple{QID: t.QID, Level: t.Level, Vals: vals}
}

// String renders the tuple for logs and test failures.
func (t Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("q%d/r%d[%s]", t.QID, t.Level, strings.Join(parts, " "))
}

// Key encodes the values at positions idx into a compact comparable string
// for use as a grouping key. The encoding is injective: numerics are tagged
// 'u' followed by 8 big-endian bytes; strings are tagged 's' followed by a
// 4-byte length and the bytes.
func Key(vals []Value, idx []int) string {
	var b []byte
	b = appendKey(b, vals, idx)
	return string(b)
}

// AppendKey appends the key encoding of the selected values to dst and
// returns the extended slice, allowing callers to reuse a scratch buffer.
func AppendKey(dst []byte, vals []Value, idx []int) []byte {
	return appendKey(dst, vals, idx)
}

func appendKey(b []byte, vals []Value, idx []int) []byte {
	for _, i := range idx {
		v := vals[i]
		if v.Str {
			b = append(b, 's')
			var l [4]byte
			binary.BigEndian.PutUint32(l[:], uint32(len(v.S)))
			b = append(b, l[:]...)
			b = append(b, v.S...)
		} else {
			b = append(b, 'u')
			var u [8]byte
			binary.BigEndian.PutUint64(u[:], v.U)
			b = append(b, u[:]...)
		}
	}
	return b
}

// DecodeKey decodes a key produced by Key back into values. It is the
// inverse of Key for the selected columns and is used when the stream
// processor reconstructs grouping keys from switch register dumps.
func DecodeKey(key string) ([]Value, error) {
	var vals []Value
	b := []byte(key)
	for len(b) > 0 {
		switch b[0] {
		case 'u':
			if len(b) < 9 {
				return nil, fmt.Errorf("tuple: truncated numeric key at byte %d", len(key)-len(b))
			}
			vals = append(vals, U64(binary.BigEndian.Uint64(b[1:9])))
			b = b[9:]
		case 's':
			if len(b) < 5 {
				return nil, fmt.Errorf("tuple: truncated string key header")
			}
			n := int(binary.BigEndian.Uint32(b[1:5]))
			if len(b) < 5+n {
				return nil, fmt.Errorf("tuple: truncated string key body (want %d bytes)", n)
			}
			vals = append(vals, Str(string(b[5:5+n])))
			b = b[5+n:]
		default:
			return nil, fmt.Errorf("tuple: bad key tag %q", b[0])
		}
	}
	return vals, nil
}

// Less orders tuples by QID, then Level, then values column-by-column. It
// gives tests and result reports a deterministic order.
func Less(a, b Tuple) bool {
	if a.QID != b.QID {
		return a.QID < b.QID
	}
	if a.Level != b.Level {
		return a.Level < b.Level
	}
	n := len(a.Vals)
	if len(b.Vals) < n {
		n = len(b.Vals)
	}
	for i := 0; i < n; i++ {
		if !a.Vals[i].Equal(b.Vals[i]) {
			return a.Vals[i].Less(b.Vals[i])
		}
	}
	return len(a.Vals) < len(b.Vals)
}
