// Package tuple defines the value and tuple representations that flow between
// the switch, the emitter, and the stream processor.
//
// Sonata's dataflow operators are defined over tuples of typed values. A
// tuple's layout is described by a Schema (an ordered list of field IDs); the
// values themselves are stored positionally so that hot-path operators can
// index columns without map lookups.
package tuple

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fields"
)

// Value is a single column value: either a numeric (U) or a byte-string (S).
// The zero Value is the numeric 0.
type Value struct {
	U   uint64
	S   string
	Str bool
}

// U64 returns a numeric value.
func U64(v uint64) Value { return Value{U: v} }

// Str returns a byte-string value.
func Str(s string) Value { return Value{S: s, Str: true} }

// Equal reports whether two values are identical in kind and content.
func (v Value) Equal(o Value) bool {
	if v.Str != o.Str {
		return false
	}
	if v.Str {
		return v.S == o.S
	}
	return v.U == o.U
}

// Less orders values: numerics before strings, then by content. It provides a
// total order for deterministic result sorting.
func (v Value) Less(o Value) bool {
	if v.Str != o.Str {
		return !v.Str
	}
	if v.Str {
		return v.S < o.S
	}
	return v.U < o.U
}

// String renders the value for logs and test failures. It runs in result
// rendering and the -top refresh loop, so it avoids fmt's reflection path.
func (v Value) String() string {
	if v.Str {
		return strconv.Quote(v.S)
	}
	return strconv.FormatUint(v.U, 10)
}

// IPString renders a numeric value as a dotted-quad IPv4 address.
func (v Value) IPString() string {
	var b [15]byte // "255.255.255.255"
	out := strconv.AppendUint(b[:0], v.U>>24&0xFF, 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, v.U>>16&0xFF, 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, v.U>>8&0xFF, 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, v.U&0xFF, 10)
	return string(out)
}

// Schema is an ordered list of field IDs describing tuple columns. Field IDs
// may repeat only when they denote distinct synthetic columns (e.g. two
// AggVal columns after a join); position is the identity of a column.
type Schema []fields.ID

// Index returns the position of the first column with field id, or -1.
func (s Schema) Index(id fields.ID) int {
	for i, f := range s {
		if f == id {
			return i
		}
	}
	return -1
}

// Contains reports whether the schema has a column with field id.
func (s Schema) Contains(id fields.ID) bool { return s.Index(id) >= 0 }

// Clone returns an independent copy of the schema. A nil schema (the
// packet-phase marker) stays nil.
func (s Schema) Clone() Schema {
	if s == nil {
		return nil
	}
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two schemas have identical columns.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Bits returns the total metadata width of the schema in bits, which is what
// carrying one tuple of this schema through the switch pipeline costs.
func (s Schema) Bits() int {
	total := 0
	for _, f := range s {
		total += f.Bits()
	}
	return total
}

// String renders the schema as "(ipv4.dIP, agg)".
func (s Schema) String() string {
	names := make([]string, len(s))
	for i, f := range s {
		names[i] = f.String()
	}
	return "(" + strings.Join(names, ", ") + ")"
}

// Tuple is one record flowing through the system. QID identifies the query
// the tuple belongs to and Level the refinement level that produced it (zero
// when refinement is not in play). Vals is positional per the query's schema
// at that point in the dataflow.
type Tuple struct {
	QID   uint16
	Level uint8
	Vals  []Value
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	vals := make([]Value, len(t.Vals))
	copy(vals, t.Vals)
	return Tuple{QID: t.QID, Level: t.Level, Vals: vals}
}

// String renders the tuple for logs and test failures.
func (t Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("q%d/r%d[%s]", t.QID, t.Level, strings.Join(parts, " "))
}

// Key encodes the values at positions idx into a compact comparable string
// for use as a grouping key. The encoding is injective: numerics are tagged
// 'u' followed by 8 big-endian bytes; strings are tagged 's' followed by a
// 4-byte length and the bytes.
func Key(vals []Value, idx []int) string {
	var b []byte
	b = appendKey(b, vals, idx)
	return string(b)
}

// AppendKey appends the key encoding of the selected values to dst and
// returns the extended slice, allowing callers to reuse a scratch buffer.
func AppendKey(dst []byte, vals []Value, idx []int) []byte {
	return appendKey(dst, vals, idx)
}

func appendKey(b []byte, vals []Value, idx []int) []byte {
	if k, ok := appendKeyU64(b, vals, idx); ok {
		return k
	}
	for _, i := range idx {
		b = AppendKeyValue(b, vals[i])
	}
	return b
}

// appendKeyU64 writes an all-numeric key (tag 'u' + 8 big-endian bytes per
// column, byte-identical to AppendKeyValue) straight into b's spare
// capacity. It reports false — leaving b untouched — when a column is a
// string or the scratch would need to grow; numeric keys over a warm
// scratch are the per-packet steady state, so the generic append path runs
// only on growth and string keys.
func appendKeyU64(b []byte, vals []Value, idx []int) ([]byte, bool) {
	n := len(idx) * 9
	if cap(b)-len(b) < n {
		return b, false
	}
	out := b[len(b) : len(b)+n]
	j := 0
	for _, i := range idx {
		v := &vals[i]
		if v.Str {
			return b, false
		}
		out[j] = 'u'
		binary.BigEndian.PutUint64(out[j+1:j+9], v.U)
		j += 9
	}
	return b[:len(b)+n], true
}

// AppendKeyCols appends the key encoding of row r's selected columns from a
// column-major value layout — the batch-executor form of AppendKey. The
// encoding is byte-identical to AppendKey over the equivalent row-major
// tuple, which is what lets the batched and per-tuple engines share keytab
// state.
func AppendKeyCols(dst []byte, cols [][]Value, idx []int, r int) []byte {
	for _, i := range idx {
		dst = AppendKeyValue(dst, cols[i][r])
	}
	return dst
}

// AppendKeyValue appends the key encoding of a single value to dst. It is
// the one-column form of AppendKey, used where the column set is implicit
// (dynamic-filter keys) and building an index slice would be wasted work.
func AppendKeyValue(dst []byte, v Value) []byte {
	if v.Str {
		dst = append(dst, 's')
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(v.S)))
		dst = append(dst, l[:]...)
		return append(dst, v.S...)
	}
	dst = append(dst, 'u')
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], v.U)
	return append(dst, u[:]...)
}

// Hash64 hashes an encoded key to 64 bits. The core is FNV-1a folded over
// 8-byte little-endian chunks (fast on the per-tuple path), finished with a
// murmur-style avalanche so that power-of-two-masked low bits are well
// mixed — the contract internal/keytab's open-addressing tables rely on.
// Hash quality affects only probe length, never correctness: keytab compares
// full key bytes on every hit.
func Hash64(b []byte) uint64 {
	h := uint64(14695981039346656037) ^ uint64(len(b))
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * 1099511628211
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i := len(b) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(b[i])
		}
		h = (h ^ tail) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// DecodeKey decodes a key produced by Key back into values. It is the
// inverse of Key for the selected columns and is used when the stream
// processor reconstructs grouping keys from switch register dumps.
func DecodeKey(key string) ([]Value, error) {
	var vals []Value
	b := []byte(key)
	for len(b) > 0 {
		switch b[0] {
		case 'u':
			if len(b) < 9 {
				return nil, fmt.Errorf("tuple: truncated numeric key at byte %d", len(key)-len(b))
			}
			vals = append(vals, U64(binary.BigEndian.Uint64(b[1:9])))
			b = b[9:]
		case 's':
			if len(b) < 5 {
				return nil, fmt.Errorf("tuple: truncated string key header")
			}
			n := int(binary.BigEndian.Uint32(b[1:5]))
			if len(b) < 5+n {
				return nil, fmt.Errorf("tuple: truncated string key body (want %d bytes)", n)
			}
			vals = append(vals, Str(string(b[5:5+n])))
			b = b[5+n:]
		default:
			return nil, fmt.Errorf("tuple: bad key tag %q", b[0])
		}
	}
	return vals, nil
}

// Less orders tuples by QID, then Level, then values column-by-column. It
// gives tests and result reports a deterministic order.
func Less(a, b Tuple) bool {
	if a.QID != b.QID {
		return a.QID < b.QID
	}
	if a.Level != b.Level {
		return a.Level < b.Level
	}
	n := len(a.Vals)
	if len(b.Vals) < n {
		n = len(b.Vals)
	}
	for i := 0; i < n; i++ {
		if !a.Vals[i].Equal(b.Vals[i]) {
			return a.Vals[i].Less(b.Vals[i])
		}
	}
	return len(a.Vals) < len(b.Vals)
}
