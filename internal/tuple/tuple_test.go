package tuple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fields"
)

func TestValueEqualAndLess(t *testing.T) {
	cases := []struct {
		a, b        Value
		equal, less bool
	}{
		{U64(1), U64(1), true, false},
		{U64(1), U64(2), false, true},
		{U64(2), U64(1), false, false},
		{Str("a"), Str("a"), true, false},
		{Str("a"), Str("b"), false, true},
		{U64(99), Str("a"), false, true}, // numerics order before strings
		{Str("a"), U64(99), false, false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.equal)
		}
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestSchemaIndexAndBits(t *testing.T) {
	s := Schema{fields.DstIP, fields.AggVal}
	if i := s.Index(fields.DstIP); i != 0 {
		t.Errorf("Index(DstIP) = %d", i)
	}
	if i := s.Index(fields.AggVal); i != 1 {
		t.Errorf("Index(AggVal) = %d", i)
	}
	if i := s.Index(fields.SrcIP); i != -1 {
		t.Errorf("Index(SrcIP) = %d, want -1", i)
	}
	if got := s.Bits(); got != 32+64 {
		t.Errorf("Bits() = %d, want 96", got)
	}
	if !s.Contains(fields.AggVal) || s.Contains(fields.Proto) {
		t.Error("Contains misreported membership")
	}
}

func TestSchemaCloneIndependent(t *testing.T) {
	s := Schema{fields.DstIP, fields.AggVal}
	c := s.Clone()
	c[0] = fields.SrcIP
	if s[0] != fields.DstIP {
		t.Error("Clone shares backing array with original")
	}
	if !s.Equal(Schema{fields.DstIP, fields.AggVal}) {
		t.Error("Equal failed on identical schema")
	}
	if s.Equal(c) {
		t.Error("Equal reported modified clone as equal")
	}
	if s.Equal(Schema{fields.DstIP}) {
		t.Error("Equal ignored length difference")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	vals := []Value{U64(0xC0A80001), Str("example.com"), U64(0), Str("")}
	key := Key(vals, []int{0, 1, 2, 3})
	got, err := DecodeKey(key)
	if err != nil {
		t.Fatalf("DecodeKey: %v", err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Errorf("round trip = %v, want %v", got, vals)
	}
}

func TestKeySelectsColumns(t *testing.T) {
	vals := []Value{U64(1), U64(2), U64(3)}
	if Key(vals, []int{0, 2}) == Key(vals, []int{0, 1}) {
		t.Error("keys over different columns collided")
	}
	if Key(vals, []int{1}) != Key([]Value{U64(7), U64(2)}, []int{1}) {
		t.Error("same selected values produced different keys")
	}
}

// Property: Key is injective over value slices (round trip through
// DecodeKey reproduces the input exactly).
func TestKeyInjectiveProperty(t *testing.T) {
	gen := func(r *rand.Rand) []Value {
		n := r.Intn(5)
		vals := make([]Value, n)
		for i := range vals {
			if r.Intn(2) == 0 {
				vals[i] = U64(r.Uint64())
			} else {
				b := make([]byte, r.Intn(20))
				r.Read(b)
				vals[i] = Str(string(b))
			}
		}
		return vals
	}
	cfg := &quick.Config{Values: func(out []reflect.Value, r *rand.Rand) {
		out[0] = reflect.ValueOf(gen(r))
	}}
	f := func(vals []Value) bool {
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		got, err := DecodeKey(Key(vals, idx))
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return len(vals) == 0 && len(got) == 0
		}
		for i := range vals {
			if !got[i].Equal(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestKeyEncodingAdversarial pits the key encoding against tuple lists
// crafted to collide under naive separator- or concatenation-based schemes:
// column-boundary shifts, embedded separator bytes, empty strings, strings
// that spell out the wire encoding of other values, and numeric/string kind
// confusion. Every pair must encode distinctly (the prefix-free property
// keytab and the register banks rely on — equal bytes must mean equal keys)
// and every encoding must round-trip through DecodeKey.
func TestKeyEncodingAdversarial(t *testing.T) {
	u := func(b ...byte) string { return string(b) }
	cases := [][]Value{
		{},
		{Str("")},
		{Str(""), Str("")},
		{Str(""), Str(""), Str("")},
		// Boundary shifts: same concatenated bytes, different splits.
		{Str("ab"), Str("c")},
		{Str("a"), Str("bc")},
		{Str("abc")},
		{Str(""), Str("abc")},
		{Str("abc"), Str("")},
		// Embedded separator-ish bytes: commas, NULs, pipes.
		{Str("a,b"), Str("c")},
		{Str("a"), Str("b,c")},
		{Str("a\x00b")},
		{Str("a"), Str("\x00b")},
		{Str("a|b"), Str("|")},
		{Str("a"), Str("|b|")},
		// Strings spelling out the encoding of numeric values.
		{Str(u('u', 0, 0, 0, 0, 0, 0, 0, 42))},
		{U64(42)},
		{Str("u")},
		{U64('u')},
		// Strings spelling out a string header.
		{Str(u('s', 0, 0, 0, 1, 'x'))},
		{Str("x")},
		// Kind confusion: same printable bytes, different kinds.
		{Str("42")},
		{U64(0x3432)}, // "42" read as big-endian digits
		{U64(0), Str("")},
		{Str(""), U64(0)},
		{U64(0)},
		{U64(0), U64(0)},
		// Length-prefix lookalikes: a string whose body starts with bytes
		// that parse as the next column's header.
		{Str(u('s', 0, 0, 0, 9)), U64(1)},
		{Str(u('s', 0, 0, 0, 9, 'u', 0, 0, 0, 0, 0, 0, 0, 1))},
	}
	idx := func(n int) []int {
		ix := make([]int, n)
		for i := range ix {
			ix[i] = i
		}
		return ix
	}
	keys := make([]string, len(cases))
	for i, vals := range cases {
		keys[i] = Key(vals, idx(len(vals)))
		got, err := DecodeKey(keys[i])
		if err != nil {
			t.Fatalf("case %d: DecodeKey: %v", i, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("case %d: round trip %d columns, want %d", i, len(got), len(vals))
		}
		for j := range vals {
			if !got[j].Equal(vals[j]) {
				t.Fatalf("case %d col %d: %v != %v", i, j, got[j], vals[j])
			}
		}
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[i] == keys[j] {
				t.Errorf("cases %d and %d collide: %v and %v both encode to %q",
					i, j, cases[i], cases[j], keys[i])
			}
		}
	}
	// No encoding may be a strict prefix of another with more columns —
	// otherwise an arena holding concatenated keys could mistake one key's
	// head for a shorter key. (Equal-length comparison makes full prefixes
	// harmless, but keytab compares by length too; document the invariant.)
	for i := range keys {
		for j := range keys {
			if i != j && len(keys[i]) < len(keys[j]) &&
				keys[j][:len(keys[i])] == keys[i] && len(cases[i]) >= len(cases[j]) {
				t.Errorf("case %d (%v) is a prefix of case %d (%v) without fewer columns",
					i, cases[i], j, cases[j])
			}
		}
	}
}

func TestDecodeKeyRejectsMalformed(t *testing.T) {
	bad := []string{
		"x",                                  // unknown tag
		"u\x00",                              // truncated numeric
		"s\x00\x00\x00\x05ab",                // truncated string body
		"s\x00\x00",                          // truncated string header
		Key([]Value{U64(1)}, []int{0}) + "u", // trailing garbage
	}
	for _, k := range bad {
		if _, err := DecodeKey(k); err == nil {
			t.Errorf("DecodeKey(%q) accepted malformed key", k)
		}
	}
}

func TestAppendKeyReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	vals := []Value{U64(42)}
	out := AppendKey(buf, vals, []int{0})
	if string(out) != Key(vals, []int{0}) {
		t.Error("AppendKey and Key disagree")
	}
	if cap(out) != cap(buf) {
		t.Error("AppendKey reallocated despite sufficient capacity")
	}
}

func TestTupleCloneIndependent(t *testing.T) {
	orig := Tuple{QID: 3, Level: 2, Vals: []Value{U64(1), Str("x")}}
	c := orig.Clone()
	c.Vals[0] = U64(99)
	if orig.Vals[0].U != 1 {
		t.Error("Clone shares Vals with original")
	}
	if c.QID != 3 || c.Level != 2 {
		t.Error("Clone dropped metadata")
	}
}

func TestTupleLessOrdering(t *testing.T) {
	a := Tuple{QID: 1, Vals: []Value{U64(1)}}
	b := Tuple{QID: 2, Vals: []Value{U64(0)}}
	if !Less(a, b) || Less(b, a) {
		t.Error("QID should dominate ordering")
	}
	c := Tuple{QID: 1, Level: 1, Vals: []Value{U64(0)}}
	if !Less(a, c) {
		t.Error("Level should order within a QID")
	}
	d := Tuple{QID: 1, Vals: []Value{U64(1), U64(5)}}
	if !Less(a, d) {
		t.Error("shorter tuple with equal prefix should order first")
	}
}

func TestIPString(t *testing.T) {
	v := U64(0xC0A80101)
	if got := v.IPString(); got != "192.168.1.1" {
		t.Errorf("IPString = %q", got)
	}
}

func TestAppendKeyColsMatchesAppendKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20) + 1
		w := rng.Intn(4) + 1
		cols := make([][]Value, w)
		for j := range cols {
			for r := 0; r < n; r++ {
				if rng.Intn(2) == 0 {
					cols[j] = append(cols[j], U64(rng.Uint64()))
				} else {
					cols[j] = append(cols[j], Str(string(rune('a'+rng.Intn(26)))))
				}
			}
		}
		idx := rng.Perm(w)[:rng.Intn(w)+1]
		for r := 0; r < n; r++ {
			row := make([]Value, w)
			for j := range row {
				row[j] = cols[j][r]
			}
			want := AppendKey(nil, row, idx)
			got := AppendKeyCols(nil, cols, idx, r)
			if string(got) != string(want) {
				t.Fatalf("trial %d row %d: cols key %x != row key %x", trial, r, got, want)
			}
		}
	}
}
