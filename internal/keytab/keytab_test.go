package keytab

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tuple"
)

func key(vals ...tuple.Value) []byte {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	return tuple.AppendKey(nil, vals, idx)
}

func TestTableBasics(t *testing.T) {
	tab := New()
	kv := []tuple.Value{tuple.U64(7), tuple.Str("x")}
	k := key(kv...)
	idx, existed := tab.GetOrInsert(k, kv, []int{0, 1}, 5)
	if existed || idx != 0 {
		t.Fatalf("first insert: idx=%d existed=%v", idx, existed)
	}
	idx2, existed := tab.GetOrInsert(k, kv, []int{0, 1}, 99)
	if !existed || idx2 != idx {
		t.Fatalf("re-insert: idx=%d existed=%v", idx2, existed)
	}
	if tab.Agg(idx) != 5 {
		t.Errorf("Agg = %d, want the first insert's 5", tab.Agg(idx))
	}
	tab.SetAgg(idx, 12)
	if got, ok := tab.Lookup(k); !ok || got != idx || tab.Agg(got) != 12 {
		t.Errorf("Lookup = %d, %v (agg %d)", got, ok, tab.Agg(got))
	}
	got := tab.KeyVals(idx)
	if len(got) != 2 || !got[0].Equal(kv[0]) || !got[1].Equal(kv[1]) {
		t.Errorf("KeyVals = %v", got)
	}
	if string(tab.Key(idx)) != string(k) {
		t.Errorf("Key = %x, want %x", tab.Key(idx), k)
	}
	if _, ok := tab.Lookup(key(tuple.U64(8))); ok {
		t.Error("Lookup found a key never inserted")
	}
}

// TestTableAgainstMap drives a table and a reference map with the same
// random workload across several windows (reset between them) and checks
// contents and insertion order match.
func TestTableAgainstMap(t *testing.T) {
	tab := New()
	r := rand.New(rand.NewSource(7))
	for window := 0; window < 5; window++ {
		ref := make(map[string]uint64)
		var order []string
		// Skewed key space so both hit and miss paths exercise.
		n := 200 + window*700 // later windows force index growth
		for i := 0; i < n; i++ {
			kv := []tuple.Value{tuple.U64(uint64(r.Intn(n / 2)))}
			k := key(kv...)
			idx, existed := tab.GetOrInsert(k, kv, []int{0}, 1)
			if _, inRef := ref[string(k)]; inRef != existed {
				t.Fatalf("window %d op %d: existed=%v, ref says %v", window, i, existed, inRef)
			}
			if existed {
				tab.SetAgg(idx, tab.Agg(idx)+1)
				ref[string(k)]++
			} else {
				ref[string(k)] = 1
				order = append(order, string(k))
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("window %d: Len=%d ref=%d", window, tab.Len(), len(ref))
		}
		for i := 0; i < tab.Len(); i++ {
			k := string(tab.Key(i))
			if k != order[i] {
				t.Fatalf("window %d entry %d: key out of insertion order", window, i)
			}
			if tab.Agg(i) != ref[k] {
				t.Fatalf("window %d entry %d: agg=%d ref=%d", window, i, tab.Agg(i), ref[k])
			}
		}
		tab.Reset()
		if tab.Len() != 0 {
			t.Fatal("Reset left entries")
		}
	}
}

func TestResetInvalidatesIndex(t *testing.T) {
	tab := New()
	kv := []tuple.Value{tuple.U64(1)}
	k := key(kv...)
	tab.GetOrInsert(k, kv, nil, 3)
	tab.Reset()
	if _, ok := tab.Lookup(k); ok {
		t.Fatal("Lookup found a key after Reset")
	}
	if idx, existed := tab.GetOrInsert(k, kv, nil, 9); existed || idx != 0 || tab.Agg(0) != 9 {
		t.Fatalf("post-reset insert: idx=%d existed=%v agg=%d", idx, existed, tab.Agg(0))
	}
}

func TestEpochWrapClearsSlots(t *testing.T) {
	tab := New()
	tab.epoch = ^uint32(0) // next Reset wraps
	kv := []tuple.Value{tuple.U64(5)}
	k := key(kv...)
	tab.GetOrInsert(k, kv, nil, 1)
	tab.Reset()
	if tab.epoch != 1 {
		t.Fatalf("epoch after wrap = %d", tab.epoch)
	}
	if _, ok := tab.Lookup(k); ok {
		t.Fatal("stale slot survived the epoch wrap")
	}
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	tab := New()
	keys := make([][]byte, 512)
	kv := make([]tuple.Value, 1)
	for i := range keys {
		kv[0] = tuple.U64(uint64(i))
		keys[i] = key(kv[0])
		tab.GetOrInsert(keys[i], kv, []int{0}, 1)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		idx, existed := tab.GetOrInsert(keys[i%len(keys)], kv, []int{0}, 1)
		if !existed {
			t.Fatal("steady-state key missing")
		}
		tab.SetAgg(idx, tab.Agg(idx)+1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state GetOrInsert allocates %.1f/op, want 0", allocs)
	}
	// Reset + re-population over the same working set is also alloc-free
	// once the arena has grown to fit.
	allocs = testing.AllocsPerRun(100, func() {
		tab.Reset()
		for j := range keys {
			kv[0] = tuple.U64(uint64(j))
			tab.GetOrInsert(keys[j], kv, []int{0}, 1)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state window cycle allocates %.1f/op, want 0", allocs)
	}
}

func TestStoreAppendAllColumns(t *testing.T) {
	var s Store
	kv := []tuple.Value{tuple.U64(1), tuple.Str("ab")}
	idx := s.Append([]byte("k0"), kv, nil, 4)
	idx2 := s.Append([]byte("k1"), kv, []int{1}, 6)
	if s.Len() != 2 || idx != 0 || idx2 != 1 {
		t.Fatalf("Len=%d idx=%d,%d", s.Len(), idx, idx2)
	}
	if got := s.KeyVals(0); len(got) != 2 || !got[0].Equal(kv[0]) {
		t.Errorf("KeyVals(0) = %v", got)
	}
	if got := s.KeyVals(1); len(got) != 1 || !got[0].Equal(kv[1]) {
		t.Errorf("KeyVals(1) = %v", got)
	}
	if string(s.Key(1)) != "k1" || s.Agg(1) != 6 {
		t.Errorf("entry 1 = %q/%d", s.Key(1), s.Agg(1))
	}
}

func BenchmarkGetOrInsertHit(b *testing.B) {
	tab := New()
	keys := make([][]byte, 4096)
	kv := make([]tuple.Value, 1)
	for i := range keys {
		kv[0] = tuple.U64(uint64(i))
		keys[i] = key(kv[0])
		tab.GetOrInsert(keys[i], kv, []int{0}, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, _ := tab.GetOrInsert(keys[i&4095], kv, []int{0}, 1)
		tab.SetAgg(idx, tab.Agg(idx)+1)
	}
}

func BenchmarkMapHit(b *testing.B) {
	// The baseline this package replaces: string-keyed map with the same
	// access pattern (string conversion per lookup).
	agg := make(map[string]uint64)
	keys := make([][]byte, 4096)
	kv := make([]tuple.Value, 1)
	for i := range keys {
		kv[0] = tuple.U64(uint64(i))
		keys[i] = key(kv[0])
		agg[string(keys[i])] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg[string(keys[i&4095])]++
	}
}

func TestHash64Distribution(t *testing.T) {
	// Smoke-check the mask-visible bits: hashing sequential numeric keys
	// into 1024 buckets should not leave most buckets empty.
	buckets := make([]int, 1024)
	kv := make([]tuple.Value, 1)
	for i := 0; i < 8192; i++ {
		kv[0] = tuple.U64(uint64(i))
		buckets[tuple.Hash64(key(kv[0]))&1023]++
	}
	empty := 0
	for _, n := range buckets {
		if n == 0 {
			empty++
		}
	}
	if empty > 10 {
		t.Fatalf("%d/1024 buckets empty over 8192 sequential keys", empty)
	}
}

func ExampleTable() {
	tab := New()
	kv := []tuple.Value{tuple.U64(10)}
	k := tuple.AppendKey(nil, kv, []int{0})
	tab.GetOrInsert(k, kv, []int{0}, 2)
	idx, existed := tab.GetOrInsert(k, kv, []int{0}, 0)
	if existed {
		tab.SetAgg(idx, tab.Agg(idx)+3)
	}
	fmt.Println(tab.Len(), tab.Agg(0))
	// Output: 1 5
}

func TestLookupBulkAndColsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scalar := New()
	bulk := New()
	for round := 0; round < 20; round++ {
		n := rng.Intn(100) + 1
		// Column-major batch of (key0, key1, payload) rows.
		cols := [][]tuple.Value{nil, nil, nil}
		for r := 0; r < n; r++ {
			cols[0] = append(cols[0], tuple.U64(uint64(rng.Intn(8))))
			cols[1] = append(cols[1], tuple.Str(fmt.Sprintf("k%d", rng.Intn(4))))
			cols[2] = append(cols[2], tuple.U64(uint64(rng.Intn(100))))
		}
		kvIdx := []int{0, 1}
		var keys []byte
		var ends []uint32
		for r := 0; r < n; r++ {
			keys = tuple.AppendKeyCols(keys, cols, kvIdx, r)
			ends = append(ends, uint32(len(keys)))
		}
		// Scalar model: row-major GetOrInsert in row order.
		for r := 0; r < n; r++ {
			row := []tuple.Value{cols[0][r], cols[1][r], cols[2][r]}
			k := tuple.AppendKey(nil, row, kvIdx)
			if idx, ok := scalar.GetOrInsert(k, row, kvIdx, cols[2][r].U); ok {
				scalar.SetAgg(idx, scalar.Agg(idx)+cols[2][r].U)
			}
		}
		// Bulk path: LookupBulk, then fold hits / insert misses in row order
		// (re-probing for duplicate-within-batch misses), exactly as the
		// stream engine's reduceCols does.
		idxs := make([]int32, n)
		bulk.LookupBulk(keys, ends, idxs)
		start := uint32(0)
		for r := 0; r < n; r++ {
			k := keys[start:ends[r]]
			start = ends[r]
			if i := idxs[r]; i >= 0 {
				bulk.SetAgg(int(i), bulk.Agg(int(i))+cols[2][r].U)
				continue
			}
			if i, existed := bulk.GetOrInsertCols(k, cols, kvIdx, r, cols[2][r].U); existed {
				bulk.SetAgg(i, bulk.Agg(i)+cols[2][r].U)
			}
		}
		if scalar.Len() != bulk.Len() {
			t.Fatalf("round %d: len scalar=%d bulk=%d", round, scalar.Len(), bulk.Len())
		}
		for i := 0; i < scalar.Len(); i++ {
			if !bytes.Equal(scalar.Key(i), bulk.Key(i)) || scalar.Agg(i) != bulk.Agg(i) {
				t.Fatalf("round %d entry %d: scalar (%x,%d) bulk (%x,%d)", round, i,
					scalar.Key(i), scalar.Agg(i), bulk.Key(i), bulk.Agg(i))
			}
			sv, bv := scalar.KeyVals(i), bulk.KeyVals(i)
			if len(sv) != len(bv) {
				t.Fatalf("round %d entry %d: keyvals width differ", round, i)
			}
			for j := range sv {
				if !sv[j].Equal(bv[j]) {
					t.Fatalf("round %d entry %d col %d: %v != %v", round, i, j, sv[j], bv[j])
				}
			}
		}
		scalar.Reset()
		bulk.Reset()
	}
}
