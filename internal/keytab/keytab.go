// Package keytab provides the flat keyed-state containers backing Sonata's
// per-tuple hot paths: the stream processor's reduce/distinct window state,
// and the switch register banks' key side tables.
//
// General-purpose Go maps force a string conversion (one allocation) per
// lookup of a byte-encoded grouping key and a values-slice allocation per
// new key. Telemetry state has a much narrower contract — keys are
// prefix-free byte strings (tuple.AppendKey), state lives exactly one window
// and is then drained in full and thrown away — so it fits a purpose-built
// layout: key bytes in one append-only arena, per-key payload (aggregate +
// decoded key columns) in parallel flat slices, and an open-addressing index
// over them. A lookup of an existing key allocates nothing; a miss costs one
// amortized arena append; a window reset is O(1) (epoch bump + slice
// truncation) and keeps every backing array for the next window.
//
// Invariants (DESIGN.md "keytab invariants"):
//
//   - Entry indices are dense and insertion-ordered: iterating 0..Len()-1
//     visits keys in first-touch order, which makes window flushes
//     deterministic (maps iterate in random order).
//   - Handed-out Key/KeyVals slices alias internal storage: they are
//     invalidated by the next Append/GetOrInsert (growth may reallocate) and
//     overwritten after Reset once new keys arrive. Callers either consume
//     them immediately or copy.
//   - Capacity only grows. Steady-state windows over a stable working set
//     run allocation-free.
package keytab

import (
	"bytes"

	"repro/internal/tuple"
)

// Store is the flat payload storage shared by Table and RegisterBank-style
// callers that maintain their own index: an append-only key arena plus
// parallel aggregate and key-column slices, one entry per key.
type Store struct {
	arena  []byte
	keyEnd []uint32 // keyEnd[i]: end offset of key i in arena
	aggs   []uint64
	vals   []tuple.Value
	kvEnd  []uint32 // kvEnd[i]: end offset of entry i's key columns in vals
}

// Len returns the number of entries.
func (s *Store) Len() int { return len(s.aggs) }

// Append adds an entry holding key, the key columns kvSrc[kvIdx...] (all of
// kvSrc when kvIdx is nil), and the initial aggregate, returning its dense
// index. The key bytes and values are copied into the store.
func (s *Store) Append(key []byte, kvSrc []tuple.Value, kvIdx []int, agg uint64) int {
	s.arena = append(s.arena, key...)
	s.keyEnd = append(s.keyEnd, uint32(len(s.arena)))
	if kvIdx != nil {
		for _, j := range kvIdx {
			s.vals = append(s.vals, kvSrc[j])
		}
	} else {
		s.vals = append(s.vals, kvSrc...)
	}
	s.kvEnd = append(s.kvEnd, uint32(len(s.vals)))
	s.aggs = append(s.aggs, agg)
	return len(s.aggs) - 1
}

// AppendCols is Append with a column-major key-column source: the entry's
// key columns are cols[kvIdx[j]][row] in order. Used by the batched stream
// executor, whose tuples live one-slice-per-field.
func (s *Store) AppendCols(key []byte, cols [][]tuple.Value, kvIdx []int, row int, agg uint64) int {
	s.arena = append(s.arena, key...)
	s.keyEnd = append(s.keyEnd, uint32(len(s.arena)))
	for _, j := range kvIdx {
		s.vals = append(s.vals, cols[j][row])
	}
	s.kvEnd = append(s.kvEnd, uint32(len(s.vals)))
	s.aggs = append(s.aggs, agg)
	return len(s.aggs) - 1
}

// Key returns entry i's key bytes, aliasing the arena.
func (s *Store) Key(i int) []byte {
	start := uint32(0)
	if i > 0 {
		start = s.keyEnd[i-1]
	}
	return s.arena[start:s.keyEnd[i]]
}

// KeyVals returns entry i's key columns, aliasing internal storage.
func (s *Store) KeyVals(i int) []tuple.Value {
	start := uint32(0)
	if i > 0 {
		start = s.kvEnd[i-1]
	}
	return s.vals[start:s.kvEnd[i]]
}

// Agg returns entry i's aggregate.
func (s *Store) Agg(i int) uint64 { return s.aggs[i] }

// SetAgg overwrites entry i's aggregate.
func (s *Store) SetAgg(i int, v uint64) { s.aggs[i] = v }

// Reset drops all entries, retaining every backing array.
func (s *Store) Reset() {
	s.arena = s.arena[:0]
	s.keyEnd = s.keyEnd[:0]
	s.aggs = s.aggs[:0]
	s.vals = s.vals[:0]
	s.kvEnd = s.kvEnd[:0]
}

// minSlots is the initial index size; power of two, small enough that idle
// operators cost little, large enough that warm-up doubling is short.
const minSlots = 16

// Table is a Store with an open-addressing index over the keys: 64-bit
// hashes (tuple.Hash64), a power-of-two slot array, linear probing. Slots
// are epoch-stamped so Reset invalidates the whole index in O(1) without
// tombstones — the table is insert-only within a window, which is exactly
// the reduce/distinct access pattern.
type Table struct {
	Store
	// slots packs (epoch<<32 | entry index); a slot is live only when its
	// epoch matches the table's current one.
	slots  []uint64
	hashes []uint64 // per-entry hash, reused when the index grows
	mask   uint32
	epoch  uint32
}

// New returns an empty table.
func New() *Table {
	return &Table{slots: make([]uint64, minSlots), mask: minSlots - 1, epoch: 1}
}

// GetOrInsert looks up key; when absent it inserts a new entry with key
// columns kvSrc[kvIdx...] (all of kvSrc when kvIdx is nil) and the initial
// aggregate, copying both. It returns the entry's dense index and whether
// the key already existed. The hit path performs no allocation; key may be a
// reused scratch buffer.
func (t *Table) GetOrInsert(key []byte, kvSrc []tuple.Value, kvIdx []int, agg uint64) (int, bool) {
	h := tuple.Hash64(key)
	mask := uint64(t.mask)
	i := h & mask
	for {
		s := t.slots[i]
		if uint32(s>>32) != t.epoch {
			idx := t.Store.Append(key, kvSrc, kvIdx, agg)
			t.hashes = append(t.hashes, h)
			t.slots[i] = uint64(t.epoch)<<32 | uint64(uint32(idx))
			// Grow at 3/4 load to keep probe chains short.
			if uint64(len(t.hashes))*4 > uint64(len(t.slots))*3 {
				t.grow()
			}
			return idx, false
		}
		idx := int(uint32(s))
		if t.hashes[idx] == h && bytes.Equal(t.Store.Key(idx), key) {
			return idx, true
		}
		i = (i + 1) & mask
	}
}

// Lookup returns the entry index for key, if present. No allocation.
func (t *Table) Lookup(key []byte) (int, bool) {
	h := tuple.Hash64(key)
	mask := uint64(t.mask)
	i := h & mask
	for {
		s := t.slots[i]
		if uint32(s>>32) != t.epoch {
			return 0, false
		}
		idx := int(uint32(s))
		if t.hashes[idx] == h && bytes.Equal(t.Store.Key(idx), key) {
			return idx, true
		}
		i = (i + 1) & mask
	}
}

// GetOrInsertCols is GetOrInsert with a column-major key-column source: on a
// miss the inserted entry's key columns are cols[kvIdx[j]][row]. Hit-path
// behaviour (and thus entry order) is identical to GetOrInsert with the
// equivalent row-major tuple.
func (t *Table) GetOrInsertCols(key []byte, cols [][]tuple.Value, kvIdx []int, row int, agg uint64) (int, bool) {
	h := tuple.Hash64(key)
	mask := uint64(t.mask)
	i := h & mask
	for {
		s := t.slots[i]
		if uint32(s>>32) != t.epoch {
			idx := t.Store.AppendCols(key, cols, kvIdx, row, agg)
			t.hashes = append(t.hashes, h)
			t.slots[i] = uint64(t.epoch)<<32 | uint64(uint32(idx))
			if uint64(len(t.hashes))*4 > uint64(len(t.slots))*3 {
				t.grow()
			}
			return idx, false
		}
		idx := int(uint32(s))
		if t.hashes[idx] == h && bytes.Equal(t.Store.Key(idx), key) {
			return idx, true
		}
		i = (i + 1) & mask
	}
}

// LookupBulk resolves a batch of concatenated keys in one pass: key i is
// keys[ends[i-1]:ends[i]] (keys[0:ends[0]] for the first), and idxs[i]
// receives its entry index or -1 when absent. Amortizing the call and the
// slot/hash loads across a batch is the fused-probe half of the stream
// engine's bulk reduce: the caller folds hits and inserts the misses in row
// order afterwards, preserving first-touch entry order exactly.
func (t *Table) LookupBulk(keys []byte, ends []uint32, idxs []int32) {
	mask := uint64(t.mask)
	epoch := t.epoch
	start := uint32(0)
	for ki, end := range ends {
		key := keys[start:end]
		start = end
		h := tuple.Hash64(key)
		i := h & mask
		idxs[ki] = -1
		for {
			s := t.slots[i]
			if uint32(s>>32) != epoch {
				break
			}
			idx := int(uint32(s))
			if t.hashes[idx] == h && bytes.Equal(t.Store.Key(idx), key) {
				idxs[ki] = int32(idx)
				break
			}
			i = (i + 1) & mask
		}
	}
}

// grow doubles the slot array and reindexes every entry from its stored
// hash; entry indices (and thus iteration order) are unchanged.
func (t *Table) grow() {
	n := len(t.slots) * 2
	t.slots = make([]uint64, n)
	t.mask = uint32(n - 1)
	t.epoch = 1
	mask := uint64(t.mask)
	for idx, h := range t.hashes {
		i := h & mask
		for uint32(t.slots[i]>>32) == t.epoch {
			i = (i + 1) & mask
		}
		t.slots[i] = uint64(t.epoch)<<32 | uint64(uint32(idx))
	}
}

// Reset drops all entries and invalidates the index by bumping the slot
// epoch — O(1) except once every 2^32 windows, when the epoch wraps and the
// slot array is cleared to keep stale stamps from matching.
func (t *Table) Reset() {
	t.Store.Reset()
	t.hashes = t.hashes[:0]
	t.epoch++
	if t.epoch == 0 {
		for i := range t.slots {
			t.slots[i] = 0
		}
		t.epoch = 1
	}
}
