package runtime

import (
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
)

// buildWorkload generates a trace with a SYN flood, returning training
// windows and replay windows.
func buildWorkload(t *testing.T, pkts int, windows int) (*trace.Generator, []planner.Frames) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = pkts
	cfg.Windows = windows
	cfg.Hosts = 600
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 64, pkts/20, 0, g.Duration()))
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		w := g.WindowRecords(i)
		frames := make(planner.Frames, len(w.Records))
		for j, r := range w.Records {
			frames[j] = r.Data
		}
		train = append(train, frames)
	}
	return g, train
}

func framesOf(w trace.Window) [][]byte {
	frames := make([][]byte, len(w.Records))
	for i, r := range w.Records {
		frames[i] = r.Data
	}
	return frames
}

func q1(th uint64) *query.Query {
	q := query.NewBuilder("newly_opened_tcp_conns", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, th)).
		MustBuild()
	q.ID = 1
	return q
}

func planFor(t *testing.T, qs []*query.Query, train []planner.Frames, cfg pisa.Config, mode planner.Mode) *planner.Plan {
	t.Helper()
	tr, err := planner.Train(qs, []int{8, 16, 24}, train)
	if err != nil {
		t.Fatal(err)
	}
	opts := planner.DefaultOptions()
	opts.Mode = mode
	plan, err := planner.PlanQueries(tr, qs, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestEndToEndSonataDetectsFlood(t *testing.T) {
	g, train := buildWorkload(t, 6000, 6)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeSonata)
	rt, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}

	delay := plan.Queries[0].Delay()
	var detected bool
	var maxTuples uint64
	for w := 0; w < g.Windows(); w++ {
		rep := rt.ProcessWindow(framesOf(g.WindowRecords(w)))
		if rep.TuplesToSP > maxTuples {
			maxTuples = rep.TuplesToSP
		}
		// After the refinement pipeline has warmed up (delay windows), the
		// victim must appear in the finest results.
		if w >= delay-1 {
			for _, res := range rep.Results {
				for _, tup := range res.Tuples {
					if tup[0].U == uint64(trace.StandardVictim) {
						detected = true
					}
				}
			}
		}
	}
	if !detected {
		t.Fatal("victim never detected at the finest level")
	}
	// Load reduction: the stream processor must see orders of magnitude
	// fewer tuples than the per-window packet count.
	if maxTuples*20 > 6000 {
		t.Errorf("TuplesToSP per window = %d; expected well below %d", maxTuples, 6000)
	}
	if rt.CollisionRate() > 0.01 {
		t.Errorf("collision rate = %v", rt.CollisionRate())
	}
}

func TestEndToEndAllSPMatchesSonataResults(t *testing.T) {
	g, train := buildWorkload(t, 5000, 5)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()

	run := func(mode planner.Mode) (map[uint64]bool, uint64) {
		plan := planFor(t, qs, train, cfg, mode)
		rt, err := New(plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		found := map[uint64]bool{}
		var tuples uint64
		for w := 0; w < g.Windows(); w++ {
			rep := rt.ProcessWindow(framesOf(g.WindowRecords(w)))
			tuples += rep.TuplesToSP
			for _, res := range rep.Results {
				for _, tup := range res.Tuples {
					found[tup[0].U] = true
				}
			}
		}
		return found, tuples
	}

	allSP, allSPTuples := run(planner.ModeAllSP)
	sonata, sonataTuples := run(planner.ModeSonata)

	// Sonata must find everything All-SP finds (its refinement filters are
	// trained not to sacrifice accuracy) — the victim in particular.
	if !allSP[uint64(trace.StandardVictim)] || !sonata[uint64(trace.StandardVictim)] {
		t.Fatalf("victim missing: allSP=%v sonata=%v", allSP, sonata)
	}
	for k := range allSP {
		if !sonata[k] {
			t.Errorf("Sonata missed key %d that All-SP reported", k)
		}
	}
	if sonataTuples*50 > allSPTuples {
		t.Errorf("Sonata %d tuples vs All-SP %d: insufficient reduction", sonataTuples, allSPTuples)
	}
}

func TestEndToEndJoinQuery(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = 5000
	cfg.Windows = 5
	cfg.Hosts = 600
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := trace.StandardVictim
	g.AddAttack(trace.NewSlowloris(victim, 400, 0, g.Duration()))

	p := queries.DefaultParams()
	p.SlowlorisBytesThresh = 2000
	p.SlowlorisRatioThresh = 5
	q := queries.SlowlorisAttacks(p)
	q.ID = 8

	var train []planner.Frames
	for i := 0; i < 2; i++ {
		train = append(train, planner.Frames(framesOf(g.WindowRecords(i))))
	}
	swCfg := pisa.DefaultConfig()
	plan := planFor(t, []*query.Query{q}, train, swCfg, planner.ModeSonata)
	rt, err := New(plan, swCfg)
	if err != nil {
		t.Fatal(err)
	}
	detected := false
	for w := 0; w < g.Windows(); w++ {
		rep := rt.ProcessWindow(framesOf(g.WindowRecords(w)))
		for _, res := range rep.Results {
			for _, tup := range res.Tuples {
				if tup[0].U == uint64(victim) {
					detected = true
				}
			}
		}
	}
	if !detected {
		t.Fatal("slowloris victim never detected through the partitioned join")
	}
}

func TestRefinementUpdatesHappen(t *testing.T) {
	g, train := buildWorkload(t, 5000, 4)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeFixRef)
	if plan.Queries[0].Delay() < 2 {
		t.Skip("Fix-REF plan collapsed to one level on this workload")
	}
	rt, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var updates int
	for w := 0; w < g.Windows(); w++ {
		rep := rt.ProcessWindow(framesOf(g.WindowRecords(w)))
		updates += rep.FilterUpdates
	}
	if updates == 0 {
		t.Error("refinement never updated any filter entries")
	}
	if len(rt.EntrySummary()) < 2 {
		t.Error("entry summary missing levels")
	}
}

func TestStreamMetricsPerQueryBreakdown(t *testing.T) {
	g, train := buildWorkload(t, 4000, 3)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeAllSP)
	rt, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.ProcessWindow(framesOf(g.WindowRecords(2)))
	if rep.TuplesToSP == 0 {
		t.Fatal("All-SP reported zero tuples")
	}
	var sum uint64
	for _, v := range rep.PerQuery {
		sum += v
	}
	if sum != rep.TuplesToSP {
		t.Errorf("per-query sum %d != total %d", sum, rep.TuplesToSP)
	}
	if rep.EmitterFrames == 0 {
		t.Error("emitter frame counter did not advance")
	}
	_ = stream.QueryKey{}
}
