package runtime

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/tracez"
)

// treeShape reduces a retained tree to a sorted list of structural span
// descriptors — (name, qid, level, parent-name) — dropping everything that
// legitimately varies across worker counts: shard attribution, span IDs,
// timings, and attribute values.
func treeShape(t *testing.T, tree *tracez.Tree) []string {
	t.Helper()
	byID := make(map[uint32]tracez.Span, len(tree.Spans))
	for _, sp := range tree.Spans {
		byID[sp.ID] = sp
	}
	shape := make([]string, 0, len(tree.Spans))
	for _, sp := range tree.Spans {
		parent := "root"
		if sp.Parent != 0 {
			p, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("window %d: span %s has dangling parent %d",
					tree.Window, tracez.NameString(sp.Name), sp.Parent)
			}
			parent = tracez.NameString(p.Name)
		}
		shape = append(shape, fmt.Sprintf("%s q%d/%d < %s",
			tracez.NameString(sp.Name), sp.QID, sp.Level, parent))
	}
	sort.Strings(shape)
	return shape
}

// TestTraceTreeDifferentialWorkers runs the same workload at 1, 2, and 8
// workers with head sampling set to retain every window, then asserts the
// retained span-tree structure is identical across worker counts. Query
// instances are owner-partitioned across shards, so even the span multiset
// must match — only shard attribution and timings may differ.
func TestTraceTreeDifferentialWorkers(t *testing.T) {
	g, train := buildWorkload(t, 4000, 5)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeSonata)

	const nWindows = 4
	shapes := map[int]map[int][]string{} // workers -> window -> shape
	for _, workers := range []int{1, 2, 8} {
		rt, err := NewWithOptions(plan, cfg, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		tz := tracez.New(tracez.Options{HeadEvery: 1})
		rt.Instrument(nil, tz)
		for w := 0; w < nWindows; w++ {
			rt.ProcessWindow(framesOf(g.WindowRecords(w)))
		}
		trees := tz.Trees()
		if len(trees) != nWindows {
			t.Fatalf("workers=%d: retained %d trees, want %d (HeadEvery=1)",
				workers, len(trees), nWindows)
		}
		shapes[workers] = map[int][]string{}
		for _, tree := range trees {
			shapes[workers][tree.Window] = treeShape(t, tree)
		}
	}

	for w := 0; w < nWindows; w++ {
		base := shapes[1][w]
		if len(base) == 0 {
			t.Fatalf("window %d missing from sequential run", w)
		}
		// Sanity: the tree holds the lifecycle stages and per-instance op
		// spans parented under stream_eval, not just a bare root. (Coarse
		// refinement levels run on the switch; only stream-resident
		// instances get op spans.)
		want := map[string]bool{
			"window q0/0 < root":          false,
			"switch_pass q0/0 < window":   false,
			"stream_eval q0/0 < window":   false,
			"filter_update q0/0 < window": false,
		}
		opSpans := 0
		for _, s := range base {
			if _, ok := want[s]; ok {
				want[s] = true
			}
			if strings.HasPrefix(s, "op_eval q1/") && strings.HasSuffix(s, "< stream_eval") {
				opSpans++
			}
		}
		for s, seen := range want {
			if !seen {
				t.Errorf("window %d: sequential tree missing span %q; got %v", w, s, base)
			}
		}
		if opSpans == 0 {
			t.Errorf("window %d: no op_eval spans under stream_eval; got %v", w, base)
		}
		for _, workers := range []int{2, 8} {
			got := shapes[workers][w]
			if len(got) != len(base) {
				t.Errorf("window %d: workers=%d retained %d spans, sequential %d\nseq: %v\ngot: %v",
					w, workers, len(got), len(base), base, got)
				continue
			}
			for i := range base {
				if got[i] != base[i] {
					t.Errorf("window %d workers=%d: span[%d] = %q, sequential %q",
						w, workers, i, got[i], base[i])
				}
			}
		}
	}
}

// slowSink inflates one window's publish latency so its root close time
// spikes far above the rolling quantile.
type slowSink struct {
	slowAt int
	delay  time.Duration
}

func (s *slowSink) Publish(rep *WindowReport) {
	if rep.Index == s.slowAt {
		time.Sleep(s.delay)
	}
}

// TestLatencyTriggeredRetention is the acceptance check for the retention
// policy: with head sampling off, a window whose close latency is inflated
// well past the rolling p99 is retained in full (reason "latency"), while
// typical windows are not.
func TestLatencyTriggeredRetention(t *testing.T) {
	g, train := buildWorkload(t, 3000, 6)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeSonata)
	rt, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tz := tracez.New(tracez.Options{HeadEvery: -1, MinWindows: 8})
	rt.Instrument(nil, tz)

	const nWindows = 24
	const slowWin = 16
	rt.SetResultSink(&slowSink{slowAt: slowWin, delay: 100 * time.Millisecond})
	for w := 0; w < nWindows; w++ {
		rt.ProcessWindow(framesOf(g.WindowRecords(w % g.Windows())))
	}

	if !tz.Has(slowWin) {
		t.Fatalf("inflated window %d was not retained", slowWin)
	}
	var slow *tracez.Tree
	retained := tz.Trees()
	for _, tree := range retained {
		if tree.Window == slowWin {
			slow = tree
		}
	}
	if slow.Reason != "latency" {
		t.Errorf("slow window retained with reason %q, want \"latency\"", slow.Reason)
	}
	if slow.ThresholdNS <= 0 {
		t.Errorf("slow window threshold = %d, want > 0 (estimator past warm-up)", slow.ThresholdNS)
	}
	if slow.CloseNS < (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("slow window close = %dns, want >= the injected 100ms delay's order", slow.CloseNS)
	}
	// The tree is complete: root, stages, and the per-instance op spans.
	names := map[string]int{}
	for _, sp := range slow.Spans {
		names[tracez.NameString(sp.Name)]++
	}
	for _, n := range []string{"window", "switch_pass", "emitter_decode", "stream_eval", "filter_update", "publish", "op_eval"} {
		if names[n] == 0 {
			t.Errorf("slow window tree missing %q span (have %v)", n, names)
		}
	}
	// Selectivity: latency retention must not fire on most typical windows.
	// Scheduling jitter can legitimately tip a fast window over a rolling
	// power-of-two bucket boundary, so bound the count rather than pinning
	// individual windows.
	if len(retained) > nWindows/3 {
		t.Errorf("retained %d of %d windows; latency trigger is not selective", len(retained), nWindows)
	}
}
