package runtime_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// TestShardedMatchesSequential is the correctness contract of the sharded
// pipeline: over the full evaluation workload (background traffic plus the
// standard attack suite, all eleven queries), every window report produced
// with workers > 1 must be identical to the sequential runtime's — results,
// tuple counts, switch counters, filter updates, and emitter volume alike.
func TestShardedMatchesSequential(t *testing.T) {
	scale := eval.SmallScale()
	w, err := eval.NewWorkload(scale)
	if err != nil {
		t.Fatal(err)
	}
	qs := queries.All(eval.ScaledParams(scale))
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	plan, err := planner.PlanQueries(tr, qs, cfg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) []string {
		rt, err := runtime.NewWithOptions(plan, cfg, runtime.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 && rt.Workers() < 2 {
			t.Fatalf("workers=%d built a %d-shard runtime", workers, rt.Workers())
		}
		snaps := make([]string, 0, w.Gen.Windows())
		for i := 0; i < w.Gen.Windows(); i++ {
			snaps = append(snaps, snapshotReport(rt.ProcessWindow(w.Frames(i))))
		}
		return snaps
	}

	want := run(0) // sequential baseline
	for _, workers := range []int{1, 2, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d window %d diverged from sequential:\n--- sequential\n%s\n--- workers=%d\n%s",
					workers, i, want[i], workers, got[i])
			}
		}
	}
}

// snapshotReport renders a window report into a canonical string. Result
// tuples are already sorted by the engine; join sub-pipeline outputs are
// sorted here because their order is map-iteration dependent even on the
// sequential path.
func snapshotReport(rep *runtime.WindowReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "window=%d tuplesToSP=%d filterUpdates=%d emitterFrames=%d emitterMalformed=%d\n",
		rep.Index, rep.TuplesToSP, rep.FilterUpdates, rep.EmitterFrames, rep.EmitterMalformed)
	fmt.Fprintf(&b, "switch: in=%d mirrored=%d collisions=%d dumps=%d\n",
		rep.Switch.PacketsIn, rep.Switch.Mirrored, rep.Switch.Collisions, rep.Switch.DumpTuples)
	keys := make([]stream.QueryKey, 0, len(rep.PerQuery))
	for k := range rep.PerQuery {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].QID != keys[j].QID {
			return keys[i].QID < keys[j].QID
		}
		return keys[i].Level < keys[j].Level
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "perquery q%d/%d=%d\n", k.QID, k.Level, rep.PerQuery[k])
	}
	for _, res := range rep.AllResults {
		fmt.Fprintf(&b, "result q%d/%d tuples=%s left=%s right=%s\n", res.QID, res.Level,
			renderTuples(res.Tuples, false),
			renderTuples(res.LeftOutputs, true),
			renderTuples(res.RightOutputs, true))
	}
	return b.String()
}

func renderTuples(ts [][]tuple.Value, sortThem bool) string {
	out := make([]string, len(ts))
	for i, tup := range ts {
		parts := make([]string, len(tup))
		for j, v := range tup {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, ",")
	}
	if sortThem {
		sort.Strings(out)
	}
	return "[" + strings.Join(out, " | ") + "]"
}
