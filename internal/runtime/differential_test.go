package runtime_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/tuple"
)

// TestShardedMatchesSequential is the correctness contract of the batched
// and sharded pipelines: over the full evaluation workload (background
// traffic plus the standard attack suite, all eleven queries), every window
// report must be identical to the scalar per-tuple oracle's — results,
// tuple counts, switch counters, filter updates, and emitter volume alike.
// The oracle (Options.Scalar, workers 0) is byte-for-byte the classic
// frame-at-a-time, tuple-at-a-time interpreter; against it run the batched
// sequential runtime and 1/2/8-worker sharded runtimes (whose engines use
// the columnar batched executor).
func TestShardedMatchesSequential(t *testing.T) {
	scale := eval.SmallScale()
	w, err := eval.NewWorkload(scale)
	if err != nil {
		t.Fatal(err)
	}
	qs := queries.All(eval.ScaledParams(scale))
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	plan, err := planner.PlanQueries(tr, qs, cfg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	run := func(opts runtime.Options) []string {
		rt, err := runtime.NewWithOptions(plan, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if opts.Workers > 1 && rt.Workers() < 2 {
			t.Fatalf("workers=%d built a %d-shard runtime", opts.Workers, rt.Workers())
		}
		snaps := make([]string, 0, w.Gen.Windows())
		for i := 0; i < w.Gen.Windows(); i++ {
			snaps = append(snaps, snapshotReport(rt.ProcessWindow(w.Frames(i))))
		}
		return snaps
	}

	want := run(runtime.Options{Scalar: true}) // per-tuple oracle
	modes := []struct {
		name string
		opts runtime.Options
	}{
		{"batched-sequential", runtime.Options{}},
		{"workers=1", runtime.Options{Workers: 1}},
		{"workers=2", runtime.Options{Workers: 2}},
		{"workers=8", runtime.Options{Workers: 8}},
		{"workers=2-scalar", runtime.Options{Workers: 2, Scalar: true}},
	}
	for _, mode := range modes {
		got := run(mode.opts)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s window %d diverged from scalar oracle:\n--- oracle\n%s\n--- %s\n%s",
					mode.name, i, want[i], mode.name, got[i])
			}
		}
	}
}

// snapshotReport renders a window report into a canonical string. Result
// tuples are already sorted by the engine; join sub-pipeline outputs are
// sorted here because their order is map-iteration dependent even on the
// sequential path.
func snapshotReport(rep *runtime.WindowReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "window=%d tuplesToSP=%d filterUpdates=%d emitterFrames=%d emitterMalformed=%d\n",
		rep.Index, rep.TuplesToSP, rep.FilterUpdates, rep.EmitterFrames, rep.EmitterMalformed)
	fmt.Fprintf(&b, "switch: in=%d mirrored=%d collisions=%d dumps=%d\n",
		rep.Switch.PacketsIn, rep.Switch.Mirrored, rep.Switch.Collisions, rep.Switch.DumpTuples)
	keys := make([]stream.QueryKey, 0, len(rep.PerQuery))
	for k := range rep.PerQuery {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].QID != keys[j].QID {
			return keys[i].QID < keys[j].QID
		}
		return keys[i].Level < keys[j].Level
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "perquery q%d/%d=%d\n", k.QID, k.Level, rep.PerQuery[k])
	}
	for _, res := range rep.AllResults {
		fmt.Fprintf(&b, "result q%d/%d tuples=%s left=%s right=%s\n", res.QID, res.Level,
			renderTuples(res.Tuples, false),
			renderTuples(res.LeftOutputs, true),
			renderTuples(res.RightOutputs, true))
	}
	return b.String()
}

func renderTuples(ts [][]tuple.Value, sortThem bool) string {
	out := make([]string, len(ts))
	for i, tup := range ts {
		parts := make([]string, len(tup))
		for j, v := range tup {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, ",")
	}
	if sortThem {
		sort.Strings(out)
	}
	return "[" + strings.Join(out, " | ") + "]"
}
