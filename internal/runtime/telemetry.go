package runtime

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/tracez"
)

// runtimeMetrics is the orchestration slice of the registry. The
// per-window numbers in WindowReport are produced by the same increments
// that feed these cumulative series, so a registry snapshot and a sum of
// reports can never disagree.
type runtimeMetrics struct {
	windows        *telemetry.Counter
	tuplesToSP     *telemetry.Counter
	filterUpdates  *telemetry.Counter
	refTransitions *telemetry.Counter
	windowNS       *telemetry.Histogram
	filterUpdateNS *telemetry.Histogram
	publishNS      *telemetry.Histogram
	windowIndex    *telemetry.Gauge
	// freshNS is the freshness watermark: first frame of a window to
	// publish completion, the staleness a subscriber observes. freshByQID
	// carries the same observation per query for `sonata -top`.
	freshNS    *telemetry.Histogram
	freshByQID map[uint16]*telemetry.Histogram
	// packets feeds sonata_switch_packets_total from the sharded fan-out
	// path, where the runtime parses each frame once and the shard switches
	// never see Process. The registry hands back the same handle the
	// sequential switch uses, so the series is identical either way.
	packets *telemetry.Counter
}

// freshHelp is shared with flightrec, which re-fetches the family to render
// quantiles; registration returns the existing handle only when help matches
// first registration, so the string lives in one place per package pair.
const freshHelp = "Result freshness per window in nanoseconds: first frame to publish completion."

// Instrument registers the whole deployment against reg and attaches the
// span tracer (either may be nil). It threads the registry through the
// switch, the emitter, and the stream engine — per shard in sharded mode,
// where counter series fold into the same totals and the register gauges
// split per shard — so one call lights up the full pipeline. The tracer's
// lanes are wired the same way: lane 0 carries the orchestration (window
// root and lifecycle stages), lane i+1 carries shard i's op spans.
func (r *Runtime) Instrument(reg *telemetry.Registry, tz *tracez.Tracer) {
	r.tz = tz
	r.lane = tz.Lane(0)
	if len(r.shards) > 0 {
		for i, s := range r.shards {
			s.sw.InstrumentShard(reg, i)
			s.engine.Instrument(reg)
			// The shard's lane is cached so the close path can re-parent it
			// without taking the tracer's lane mutex every window. The lane
			// outlives every window: the worker writes spans into it during
			// each close, with the close barrier ordering its writes against
			// the runtime's SetContext.
			s.lane = tz.Lane(i + 1)
			s.engine.AttachTracez(s.lane)
			s.em.Instrument(reg)
		}
	} else {
		r.sw.Instrument(reg)
		r.engine.Instrument(reg)
		r.engine.AttachTracez(r.lane)
		r.em.Instrument(reg)
	}
	if a, ok := r.sink.(TracezAttacher); ok && r.lane != nil {
		a.AttachTracez(r.lane)
	}
	if reg == nil {
		return
	}
	r.m = runtimeMetrics{
		packets: reg.Counter("sonata_switch_packets_total",
			"Frames processed by the data plane."),
		windows: reg.Counter("sonata_runtime_windows_total",
			"Query windows processed since deployment."),
		tuplesToSP: reg.Counter("sonata_runtime_tuples_to_sp_total",
			"Tuples delivered to the stream processor (the paper's headline metric)."),
		filterUpdates: reg.Counter("sonata_runtime_filter_updates_total",
			"Dynamic filter entries written at window boundaries."),
		refTransitions: reg.Counter("sonata_runtime_refinement_transitions_total",
			"Window boundaries at which a refinement link's key set changed."),
		windowNS: reg.Histogram("sonata_runtime_window_ns",
			"End-to-end wall time per window in nanoseconds.",
			telemetry.DurationBuckets),
		filterUpdateNS: reg.Histogram("sonata_runtime_filter_update_ns",
			"Wall time spent writing refinement filter updates per window.",
			telemetry.DurationBuckets),
		publishNS: reg.Histogram("sonata_runtime_publish_ns",
			"Wall time spent publishing window results to the result sink.",
			telemetry.DurationBuckets),
		windowIndex: reg.Gauge("sonata_runtime_window_index",
			"Index of the most recently closed window."),
		freshNS: reg.Histogram("sonata_freshness_ns", freshHelp,
			telemetry.DurationBuckets),
		freshByQID: make(map[uint16]*telemetry.Histogram, len(r.plan.Queries)),
	}
	for _, qp := range r.plan.Queries {
		qid := qp.Query.ID
		r.m.freshByQID[qid] = reg.Histogram("sonata_freshness_ns", freshHelp,
			telemetry.DurationBuckets, "qid", strconv.Itoa(int(qid)))
	}
}

// keyFingerprint canonicalizes a refinement key set so consecutive windows
// can be compared for the transition counter.
func keyFingerprint(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

// keySetChanged reports whether link li's refinement key set differs from
// the previous window's, updating the stored fingerprint when it does. It
// is keyFingerprint without the steady-state allocations: keys are sorted
// in place (safe — every consumer has already copied what it keeps), the
// canonical form is built in a reused byte scratch, the comparison against
// the stored fingerprint allocates nothing, and a string is materialized
// only on an actual transition.
func (r *Runtime) keySetChanged(li int, keys []string) bool {
	sort.Strings(keys)
	fp := r.fpScratch[:0]
	for i, k := range keys {
		if i > 0 {
			fp = append(fp, 0)
		}
		fp = append(fp, k...)
	}
	r.fpScratch = fp
	if string(fp) == r.lastKeys[li] {
		return false
	}
	r.lastKeys[li] = string(fp)
	return true
}
