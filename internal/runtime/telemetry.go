package runtime

import (
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// runtimeMetrics is the orchestration slice of the registry. The
// per-window numbers in WindowReport are produced by the same increments
// that feed these cumulative series, so a registry snapshot and a sum of
// reports can never disagree.
type runtimeMetrics struct {
	windows        *telemetry.Counter
	tuplesToSP     *telemetry.Counter
	filterUpdates  *telemetry.Counter
	refTransitions *telemetry.Counter
	windowNS       *telemetry.Histogram
	filterUpdateNS *telemetry.Histogram
	windowIndex    *telemetry.Gauge
}

// Instrument registers the whole deployment against reg and attaches the
// span tracer (either may be nil). It threads the registry through the
// switch, the emitter, and the stream engine, so one call lights up the
// full pipeline.
func (r *Runtime) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	r.tracer = tr
	r.sw.Instrument(reg)
	r.engine.Instrument(reg)
	r.em.Instrument(reg)
	r.m = runtimeMetrics{
		windows: reg.Counter("sonata_runtime_windows_total",
			"Query windows processed since deployment."),
		tuplesToSP: reg.Counter("sonata_runtime_tuples_to_sp_total",
			"Tuples delivered to the stream processor (the paper's headline metric)."),
		filterUpdates: reg.Counter("sonata_runtime_filter_updates_total",
			"Dynamic filter entries written at window boundaries."),
		refTransitions: reg.Counter("sonata_runtime_refinement_transitions_total",
			"Window boundaries at which a refinement link's key set changed."),
		windowNS: reg.Histogram("sonata_runtime_window_ns",
			"End-to-end wall time per window in nanoseconds.",
			telemetry.DurationBuckets),
		filterUpdateNS: reg.Histogram("sonata_runtime_filter_update_ns",
			"Wall time spent writing refinement filter updates per window.",
			telemetry.DurationBuckets),
		windowIndex: reg.Gauge("sonata_runtime_window_index",
			"Index of the most recently closed window."),
	}
}

// keyFingerprint canonicalizes a refinement key set so consecutive windows
// can be compared for the transition counter.
func keyFingerprint(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}
