// Package runtime orchestrates one Sonata deployment: it installs the
// planner's output on the switch simulator and the stream engine, drives
// the per-window processing loop, applies dynamic-refinement filter updates
// at window boundaries (Section 4), reconciles register dumps, and reports
// the per-window load metrics the evaluation compares.
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/emitter"
	"repro/internal/fields"
	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tracez"
	"repro/internal/tuple"
)

// WindowReport summarizes one processed window.
type WindowReport struct {
	Index int
	// Results holds the finest-level outputs of every query — the answers
	// the operator asked for.
	Results []stream.Result
	// AllResults includes every refinement level's outputs.
	AllResults []stream.Result
	// TuplesToSP is the number of tuples the stream processor ingested this
	// window: the paper's headline metric.
	TuplesToSP uint64
	// PerQuery breaks the load down by (query, level) instance.
	PerQuery map[stream.QueryKey]uint64
	// Switch carries the data-plane counters.
	Switch pisa.WindowStats
	// FilterUpdates counts dynamic filter entries written at the window
	// boundary, and UpdateDuration the wall time spent writing them — the
	// refinement-overhead micro-benchmark of Section 6.2.
	FilterUpdates  int
	UpdateDuration time.Duration
	// EmitterFrames / EmitterMalformed report the monitoring-port volume.
	EmitterFrames    uint64
	EmitterMalformed uint64
	// ShardBusy holds each worker shard's busy time inside this window (nil
	// for the sequential runtime). sum/max estimates the achievable parallel
	// speedup independently of how many cores the host actually has.
	ShardBusy []time.Duration
}

// ResultSink receives each WindowReport as the window closes, before the
// flight recorder seals it — so a sink that attributes delivery bytes via
// flightrec probes lands them in the same window's record. Publish is called
// from the runtime's close path and must not block: sinks fan out to slow
// consumers through bounded queues, never by stalling the pipeline. The
// report and its results are shared, not copied; sinks must treat them as
// read-only and must not retain the tuple slices past Publish unless they
// encode them first.
type ResultSink interface {
	Publish(rep *WindowReport)
}

// FlightRecAttacher is implemented by sinks that attribute their delivery
// volume to (query, level) flight-recorder records. The runtime forwards its
// probe lookup whenever both a recorder and a sink are attached, in either
// order.
type FlightRecAttacher interface {
	AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe)
}

// TracezAttacher is implemented by sinks that record their fan-out work as
// spans in the window's trace tree. Publish runs on the runtime's close
// path, so the sink records into the orchestration lane; the runtime
// re-parents the lane to the publish span for the duration of the call.
type TracezAttacher interface {
	AttachTracez(r *tracez.Ring)
}

// SetResultSink installs (or, with nil, removes) the sink that receives each
// closed window's report. If a flight recorder or tracer is already attached
// and the sink wants probes or a span lane, they are wired immediately.
func (r *Runtime) SetResultSink(sink ResultSink) {
	r.sink = sink
	if a, ok := sink.(FlightRecAttacher); ok {
		a.AttachFlightRec(r.frLookup)
	}
	if a, ok := sink.(TracezAttacher); ok && r.lane != nil {
		a.AttachTracez(r.lane)
	}
}

// Options tunes a runtime's execution mode.
type Options struct {
	// Workers is the number of parallel shards the installed (query, level)
	// instances are partitioned across. 0 or 1 selects the sequential path,
	// which is byte-for-byte the classic single-goroutine runtime; values
	// above the instance count are clamped to it.
	Workers int
	// BatchSize is the number of frames per processing batch: the fan-out
	// granularity in sharded mode, the view-batch size in sequential mode
	// (0 means DefaultBatchSize).
	BatchSize int
	// Scalar forces the classic per-tuple execution everywhere: the
	// sequential switch path runs frame-at-a-time (no view batching) and the
	// stream engines use the per-tuple interpreter instead of the columnar
	// batched executor. The two modes produce bit-identical WindowReports;
	// Scalar exists as the differential-testing oracle and an escape hatch.
	Scalar bool
}

// DefaultBatchSize is the fan-out batch granularity: large enough to
// amortize the channel handoff, small enough that shards stay busy inside
// one window.
const DefaultBatchSize = 256

// shard owns one slice of the deployment: the switch instances assigned to
// it (with their registers and dynamic tables), a private emitter, and the
// matching stream-engine instances. Its worker goroutine is spawned once at
// construction and lives until Runtime.Close: during a window (and during
// the window close it executes on the runtime's behalf) only the worker
// touches this state, so the hot path takes no locks; the runtime's close
// barrier hands ownership back to the main goroutine between windows.
type shard struct {
	sw     *pisa.Switch
	engine *stream.Engine
	em     *emitter.Emitter
	// q is the shard's inbound SPSC ring: view batches during the window,
	// then a close (or stop) message acting as the epoch barrier — FIFO
	// order guarantees every batch of the window is processed before the
	// close runs.
	q spscRing
	// lane is the shard's tracez lane (lane index+1), cached at Instrument;
	// nil when tracing is off. The main goroutine re-parents it before each
	// close barrier, the worker records op spans into it during the close.
	lane *tracez.Ring
	// busy accumulates time spent processing batches (and closing the
	// window) this window; only the worker writes it while running, and the
	// close barrier publishes it to the runtime via cr.
	busy time.Duration
	// cr is the shard's close-phase output, written by the worker before it
	// signals the barrier and read by the main goroutine after.
	cr closeResult
}

// closeResult carries one shard's window-close products across the epoch
// barrier: everything the serial close loop used to read inline.
type closeResult struct {
	busy      time.Duration
	stats     pisa.WindowStats
	dumpCount int
	results   []stream.Result
	metrics   stream.Metrics
	emFrames  uint64
	emBad     uint64
}

// viewBatch is a refcounted batch of frames parsed once and shared
// read-only by every shard; the last shard to finish a batch recycles it.
// When the runtime's shared prescreen is active, dispatch evaluates the
// static leading-filter atoms once into masks and every shard consumes the
// bitmaps read-only (masked reports whether masks are valid for this trip).
type viewBatch struct {
	views  []pisa.View
	n      int
	masks  pisa.PrescreenMasks
	masked bool
	refs   atomic.Int32
}

// Runtime binds a plan to executable components.
type Runtime struct {
	plan *planner.Plan
	cfg  pisa.Config
	opts Options
	// Sequential components (Workers <= 1). Nil in sharded mode, where
	// shards carries the per-worker slices instead.
	sw     *pisa.Switch
	engine *stream.Engine
	em     *emitter.Emitter
	// Sharded mode: owner maps each instance to its shard, order preserves
	// global installation order so merged results match the sequential
	// engine's ordering exactly, parser is the shared parse-once front end.
	shards    []*shard
	owner     map[stream.QueryKey]int
	order     []stream.QueryKey
	parser    *packet.Parser
	batchPool *sync.Pool
	fill      *viewBatch // batch currently being filled
	framesIn  uint64     // frames ingested this window (merged PacketsIn)
	// pre is the shard switches' shared prescreen atom space; dispatch
	// evaluates it once per batch so shards only AND precomputed bitmaps.
	pre *pisa.Prescreen
	// closeWG is the epoch barrier for window closes, stopWG for worker
	// shutdown; closed flips once Close has joined the workers, after which
	// the runtime degrades to inline (single-goroutine) shard execution.
	closeWG sync.WaitGroup
	stopWG  sync.WaitGroup
	closed  bool
	// Sequential view batching (nil in scalar or sharded mode): frames are
	// Prepared into seqViews and flushed through sw.ProcessViews at capacity
	// and at window close.
	seqViews []pisa.View
	seqN     int

	links  []link
	finest map[uint16]uint8
	window int
	// infos preserves the flattened plan (installation order); the flight
	// recorder tracks one probe per entry. flight/frProbes are nil until
	// AttachFlightRecorder.
	infos    []instInfo
	flight   *flightrec.Recorder
	frProbes map[stream.QueryKey]*flightrec.Probe
	frLookup func(qid uint16, level uint8) *flightrec.Probe
	// sink receives each WindowReport at window close (nil until
	// SetResultSink); Publish runs on the close path and must not block.
	sink ResultSink
	// collisionSum tracks cumulative collisions for the re-planning signal.
	collisionSum uint64
	packetsSum   uint64
	// Telemetry: m holds registry handles (inert until Instrument).
	// windowStart anchors the window-duration histogram and the freshness
	// watermark; lastKeys fingerprints each link's refinement key set for
	// the transition counter.
	m           runtimeMetrics
	windowStart time.Time
	lastKeys    map[int]string
	fpScratch   []byte
	// Tracing: tz collects every window's span tree (nil when disabled).
	// lane is the orchestration lane (lane 0) carrying the window root and
	// lifecycle-stage spans; shard engines write op spans into lanes 1..N.
	// troot is the open window-root span, rootOpen whether one is open.
	tz       *tracez.Tracer
	lane     *tracez.Ring
	troot    tracez.Active
	rootOpen bool
}

type link struct {
	qid    uint16
	from   uint8
	to     uint8
	keyCol int
	field  fields.ID // the refinement key
	// table is the target level's dyn-table name, precomputed so the close
	// path doesn't Sprintf it every window. keys and the side-key sets are
	// the per-window refinement-candidate scratch, reused across windows
	// (Replace/UpdateDynTable copy what they keep).
	keys []string
	rset map[string]struct{}
	lset map[string]struct{}
	tabl string
}

// instInfo is one planned (query, level) instance in installation order.
// cost is the instance's switch-side work proxy (its cut depth): every
// instance examines every frame, so per-packet work scales with how many
// tables run in the data plane.
type instInfo struct {
	key  stream.QueryKey
	aug  *query.Query
	part stream.Partition
	cost int
}

// New wires a sequential runtime from a plan.
func New(plan *planner.Plan, cfg pisa.Config) (*Runtime, error) {
	return NewWithOptions(plan, cfg, Options{})
}

// NewWithOptions wires a runtime with explicit execution options.
func NewWithOptions(plan *planner.Plan, cfg pisa.Config, opts Options) (*Runtime, error) {
	r := &Runtime{plan: plan, cfg: cfg, opts: opts,
		finest: make(map[uint16]uint8), lastKeys: make(map[int]string)}

	// Flatten the plan into installation-ordered instances and derive the
	// refinement links; both execution modes share this pass.
	var infos []instInfo
	for _, qp := range plan.Queries {
		for li, lp := range qp.Levels {
			part := stream.Partition{
				LeftStart:  entryOp(&lp.Left),
				RightStart: 0,
			}
			if lp.Right != nil {
				part.RightStart = entryOp(lp.Right)
			}
			key := stream.QueryKey{QID: qp.Query.ID, Level: uint8(lp.Level)}
			infos = append(infos, instInfo{key: key, aug: lp.Aug, part: part,
				cost: instanceCost(&lp)})
			r.order = append(r.order, key)
			if li == len(qp.Levels)-1 {
				r.finest[qp.Query.ID] = key.Level
			}
			if li+1 < len(qp.Levels) {
				next := qp.Levels[li+1]
				keyCol := lp.Aug.FinalSchema().Index(qp.Key.Field)
				if keyCol < 0 {
					return nil, fmt.Errorf("runtime: q%d level %d: refinement key %s missing from result schema %s",
						qp.Query.ID, lp.Level, qp.Key.Field, lp.Aug.FinalSchema())
				}
				r.links = append(r.links, link{qid: qp.Query.ID,
					from: uint8(lp.Level), to: uint8(next.Level),
					keyCol: keyCol, field: qp.Key.Field,
					tabl: planner.DynTableName(qp.Query.ID, next.Level)})
			}
		}
	}

	r.infos = infos

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(infos) {
		workers = len(infos)
	}
	if workers <= 1 {
		return r, r.buildSequential(infos)
	}
	return r, r.buildSharded(infos, workers)
}

// buildSequential wires the classic single-goroutine pipeline.
func (r *Runtime) buildSequential(infos []instInfo) error {
	dyn := stream.NewDynTables()
	engine := stream.NewEngine(dyn)
	em := emitter.New(engine)
	sw, err := pisa.NewSwitch(r.cfg, r.plan.Program, em.HandleMirror)
	if err != nil {
		return fmt.Errorf("runtime: installing switch program: %w", err)
	}
	r.sw, r.engine, r.em = sw, engine, em
	if r.opts.Scalar {
		engine.SetScalar(true)
	} else {
		// Batched sequential mode: frames are parsed into a reusable view
		// buffer and run through the switch instance-major (ProcessViews),
		// so one instance's tables stay cache-hot across the whole batch.
		batch := r.opts.BatchSize
		if batch <= 0 {
			batch = DefaultBatchSize
		}
		r.parser = packet.NewParser(packet.ParserOptions{})
		r.seqViews = make([]pisa.View, batch)
	}
	for _, in := range infos {
		if err := engine.Install(in.aug, in.key.Level, in.part); err != nil {
			return fmt.Errorf("runtime: installing q%d level %d: %w", in.key.QID, in.key.Level, err)
		}
	}
	return nil
}

// buildSharded partitions the instances across workers. Each shard gets the
// switch program slice, emitter, and engine instances for the keys it owns;
// both sides of a join instance share a key and so land on the same shard.
//
// Assignment is greedy longest-processing-time over each instance's cut
// depth: instance costs are heavily skewed (a coarse level with a deep cut
// runs many tables over every packet, a dyn-gated fine level drops almost
// everything at op 0), so round-robin leaves some shards nearly idle. The
// result is deterministic — ties break on installation order and lowest
// shard index — so a given plan always shards the same way.
func (r *Runtime) buildSharded(infos []instInfo, workers int) error {
	r.owner = make(map[stream.QueryKey]int, len(infos))
	ord := make([]int, len(infos))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return infos[ord[a]].cost > infos[ord[b]].cost })
	load := make([]int, workers)
	for _, idx := range ord {
		best := 0
		for s := 1; s < workers; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += infos[idx].cost
		r.owner[infos[idx].key] = best
	}
	progs := make([]*pisa.Program, workers)
	for i := range progs {
		progs[i] = &pisa.Program{}
	}
	for _, spec := range r.plan.Program.Instances {
		si, ok := r.owner[stream.QueryKey{QID: spec.QID, Level: spec.Level}]
		if !ok {
			return fmt.Errorf("runtime: program instance %s has no planned level", spec.Name())
		}
		progs[si].Instances = append(progs[si].Instances, spec)
	}
	r.pre = pisa.NewPrescreen()
	for i := 0; i < workers; i++ {
		engine := stream.NewEngine(stream.NewDynTables())
		if r.opts.Scalar {
			engine.SetScalar(true)
		}
		em := emitter.New(engine)
		sw, err := pisa.NewSwitchShared(r.cfg, progs[i], em.HandleMirror, r.pre)
		if err != nil {
			return fmt.Errorf("runtime: installing shard %d program: %w", i, err)
		}
		r.shards = append(r.shards, &shard{sw: sw, engine: engine, em: em})
	}
	for _, in := range infos {
		s := r.shards[r.owner[in.key]]
		if err := s.engine.Install(in.aug, in.key.Level, in.part); err != nil {
			return fmt.Errorf("runtime: installing q%d level %d: %w", in.key.QID, in.key.Level, err)
		}
	}
	batch := r.opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	r.parser = packet.NewParser(packet.ParserOptions{})
	r.batchPool = &sync.Pool{New: func() any {
		return &viewBatch{views: make([]pisa.View, batch)}
	}}
	// Persistent workers: spawned once here, joined only by Close. Windows
	// are delimited by close messages through the rings (the epoch barrier),
	// not by goroutine teardown.
	for _, s := range r.shards {
		s.q.init(shardQueueDepth)
		go s.run(r)
	}
	return nil
}

// instanceCost is the weight the shard balancer assigns an instance: the
// planner's trained per-window work estimate (tuples entering each pipeline
// stage, gates applied — see InstancePlan.EstWork). A floor of 1 keeps
// zero-traffic instances schedulable.
func instanceCost(lp *planner.LevelPlan) int {
	cost := lp.Left.EstWork
	if lp.Right != nil {
		cost += lp.Right.EstWork
	}
	if cost == 0 {
		return 1
	}
	return int(cost)
}

// entryOp maps an instance plan's cut to the stream processor's resume op.
func entryOp(inst *planner.InstancePlan) int {
	return inst.Pipe.EntryFor(inst.Cut).StartOp
}

// Switch exposes the data plane (examples and tests inspect it). It is nil
// for a sharded runtime, whose data plane is split across workers.
func (r *Runtime) Switch() *pisa.Switch { return r.sw }

// Engine exposes the stream processor (nil for a sharded runtime).
func (r *Runtime) Engine() *stream.Engine { return r.engine }

// Plan returns the installed plan.
func (r *Runtime) Plan() *planner.Plan { return r.plan }

// Workers returns the number of parallel shards (1 for the sequential
// runtime).
func (r *Runtime) Workers() int {
	if len(r.shards) > 0 {
		return len(r.shards)
	}
	return 1
}

// ShardOf reports which shard owns the given (query, level) instance, and
// -1 for unknown instances or a sequential runtime. Pairs with
// WindowReport.ShardBusy for balance inspection.
func (r *Runtime) ShardOf(qid uint16, level uint8) int {
	if len(r.shards) == 0 {
		return -1
	}
	s, ok := r.owner[stream.QueryKey{QID: qid, Level: level}]
	if !ok {
		return -1
	}
	return s
}

// ProcessWindow pushes one window of frames through the data plane, closes
// the window on both components, applies refinement updates for the next
// window, and reports.
func (r *Runtime) ProcessWindow(frames [][]byte) *WindowReport {
	r.markWindowStart()
	sp := r.lane.Start(tracez.NameSwitchPass)
	switch {
	case len(r.shards) > 0:
		for _, f := range frames {
			r.processSharded(f)
		}
	case r.seqViews != nil:
		for _, f := range frames {
			r.processSequential(f)
		}
	default:
		for _, f := range frames {
			r.sw.Process(f)
		}
	}
	sp.Attr(tracez.AttrFrames, uint64(len(frames)))
	sp.End()
	return r.closeWindow()
}

// Process pushes a single frame (streaming use; pair with CloseWindow).
// Both the sharded runtime and the batched sequential runtime alias the
// frame in parsed views that outlive this call, so the caller must not
// modify it until the window closes. (Only Options.Scalar consumes the
// frame before returning.)
func (r *Runtime) Process(frame []byte) {
	r.markWindowStart()
	if len(r.shards) > 0 {
		r.processSharded(frame)
		return
	}
	if r.seqViews != nil {
		r.processSequential(frame)
		return
	}
	r.sw.Process(frame)
}

// processSequential parses the frame into the sequential view buffer,
// flushing a full buffer through the switch instance-major. PacketsIn moves
// to the runtime here (like the sharded path): ProcessViews does not count
// it, and the registry's packet counter is the same series either way.
func (r *Runtime) processSequential(frame []byte) {
	r.framesIn++
	r.m.packets.Inc()
	r.seqViews[r.seqN].Prepare(r.parser, frame)
	r.seqN++
	if r.seqN == len(r.seqViews) {
		r.flushSeq()
	}
}

// flushSeq runs the buffered sequential views through the switch. A no-op
// when the buffer is empty (and always in scalar or sharded mode).
func (r *Runtime) flushSeq() {
	if r.seqN > 0 {
		r.sw.ProcessViews(r.seqViews[:r.seqN])
		r.seqN = 0
	}
}

// processSharded parses the frame once and fans the shared read-only view
// out to every shard's persistent worker.
func (r *Runtime) processSharded(frame []byte) {
	r.framesIn++
	r.m.packets.Inc()
	b := r.fill
	if b == nil {
		b = r.batchPool.Get().(*viewBatch)
		b.n = 0
		r.fill = b
	}
	b.views[b.n].Prepare(r.parser, frame)
	b.n++
	if b.n == len(b.views) {
		r.dispatch()
	}
}

// dispatch hands the filling batch to every shard. The batch is read-only
// from here on; the last shard to finish it returns it to the pool.
func (r *Runtime) dispatch() {
	b := r.takeFill()
	if b == nil {
		return
	}
	if r.closed {
		r.processInline(b)
		return
	}
	r.fanOut(b, msgBatch)
}

// takeFill detaches the filling batch, recycling an empty one.
func (r *Runtime) takeFill() *viewBatch {
	b := r.fill
	r.fill = nil
	if b != nil && b.n == 0 {
		r.batchPool.Put(b)
		b = nil
	}
	return b
}

// fanOut ships a message (optionally carrying a batch) to every shard's
// ring. When the shared prescreen is active, the batch's static
// leading-filter bitmaps are computed once here — on the dispatch side —
// so every shard only ANDs the masks its own instances reference.
func (r *Runtime) fanOut(b *viewBatch, kind uint8) {
	if b != nil {
		if r.pre.Active() {
			r.pre.Eval(b.views[:b.n], &b.masks)
			b.masked = true
		}
		b.refs.Store(int32(len(r.shards)))
	}
	for _, s := range r.shards {
		s.q.push(shardMsg{batch: b, kind: kind})
	}
}

// processInline runs a batch through every shard on the calling goroutine —
// the degraded single-threaded mode a Runtime falls back to after Close.
func (r *Runtime) processInline(b *viewBatch) {
	for _, s := range r.shards {
		t0 := time.Now()
		s.sw.ProcessViews(b.views[:b.n])
		s.busy += time.Since(t0)
	}
	b.masked = false
	r.batchPool.Put(b)
}

// run is a shard's persistent worker loop: drain batches, run the owned
// instances over each view; on a close message, additionally close the
// window on this shard's state and signal the epoch barrier. Ring FIFO
// order is what makes the close a barrier: every batch pushed before the
// close message is processed before the close runs.
func (s *shard) run(r *Runtime) {
	for {
		m := s.q.pop()
		if b := m.batch; b != nil {
			t0 := time.Now()
			if b.masked {
				s.sw.ProcessViewsPre(b.views[:b.n], &b.masks)
			} else {
				s.sw.ProcessViews(b.views[:b.n])
			}
			s.busy += time.Since(t0)
			if b.refs.Add(-1) == 0 {
				b.masked = false
				r.batchPool.Put(b)
			}
		}
		switch m.kind {
		case msgClose:
			t0 := time.Now()
			s.closeShard()
			s.cr.busy += time.Since(t0)
			r.closeWG.Done()
		case msgStop:
			r.stopWG.Done()
			return
		}
	}
}

// closeShard runs the window close on this shard's slice of the pipeline:
// register dump, dump decode into the shard engine, stream-engine window
// evaluation, emitter stats — everything the serial close loop used to do
// inline, now concurrent across shards. The products land in s.cr; busy is
// published alongside and reset for the next window.
func (s *shard) closeShard() {
	cr := &s.cr
	dumps, st := s.sw.EndWindow()
	s.em.HandleDumps(dumps)
	cr.dumpCount = len(dumps)
	cr.stats = st
	cr.results, cr.metrics = s.engine.EndWindow()
	cr.emFrames, cr.emBad = s.em.WindowStats()
	cr.busy, s.busy = s.busy, 0
}

// markWindowStart anchors the window-duration measurement and the window
// root span at the first frame of each window.
func (r *Runtime) markWindowStart() {
	if r.windowStart.IsZero() {
		r.windowStart = time.Now()
	}
	r.openRoot()
}

// openRoot starts the window's root span and re-parents the orchestration
// lane under it, so every subsequent stage span becomes its child. Inert
// when tracing is off (nil lane).
func (r *Runtime) openRoot() {
	if r.rootOpen {
		return
	}
	r.lane.SetContext(r.window, 0)
	r.troot = r.lane.Start(tracez.NameWindow)
	r.lane.SetContext(r.window, r.troot.ID())
	r.rootOpen = true
}

// CloseWindow ends the current window explicitly.
func (r *Runtime) CloseWindow() *WindowReport { return r.closeWindow() }

// Close stops a sharded runtime's persistent workers and is safe to call
// at any point, including mid-window and more than once. Frames already
// handed to the workers are fully processed before they exit (the stop
// message rides the same FIFO rings as the batches), frames still in the
// filling batch stay buffered, and the runtime remains usable afterwards:
// Process and CloseWindow degrade to inline single-goroutine execution
// over the shard state, so a window spanning a Close still produces the
// exact report it would have produced without one. Sequential runtimes
// have no workers; Close is a no-op there.
func (r *Runtime) Close() {
	if len(r.shards) == 0 || r.closed {
		return
	}
	r.closed = true
	r.stopWG.Add(len(r.shards))
	for _, s := range r.shards {
		s.q.push(shardMsg{kind: msgStop})
	}
	r.stopWG.Wait()
}

func (r *Runtime) closeWindow() *WindowReport {
	r.openRoot() // zero-frame windows still get a (short) trace tree
	var (
		results   []stream.Result
		metrics   stream.Metrics
		stats     pisa.WindowStats
		dumpCount int
		emFrames  uint64
		emBad     uint64
	)
	var shardBusy []time.Duration
	if len(r.shards) > 0 {
		// Parallel close: each shard's worker runs register dump, dump
		// decode, and stream-engine evaluation on the state it owns; the
		// barrier hands ownership of every shard back to this goroutine.
		// Both stage spans wrap the whole barrier (the phases overlap across
		// shards), and each shard lane is re-parented before the close
		// message so op spans recorded by the workers nest under this
		// window's stream_eval span — the ring handoff publishes the lane
		// context to the worker.
		ed := r.lane.Start(tracez.NameEmitterDecode)
		se := r.lane.Start(tracez.NameStreamEval)
		for _, s := range r.shards {
			s.lane.SetContext(r.window, se.ID())
		}
		if r.closed {
			// Degraded inline mode (after Close): the workers are gone, so
			// run the tail batch and every shard's close on this goroutine.
			if b := r.takeFill(); b != nil {
				r.processInline(b)
			}
			for _, s := range r.shards {
				s.closeShard()
			}
		} else {
			r.closeWG.Add(len(r.shards))
			r.fanOut(r.takeFill(), msgClose)
			r.closeWG.Wait()
		}
		// Deterministic merge, on this side of the barrier: shard order for
		// the commutative counters, global installation order for results —
		// exactly as the sequential engine orders its output.
		metrics.PerQuery = make(map[stream.QueryKey]uint64)
		byKey := make(map[stream.QueryKey]stream.Result, len(r.order))
		shardBusy = make([]time.Duration, len(r.shards))
		for i, s := range r.shards {
			cr := &s.cr
			shardBusy[i] = cr.busy
			dumpCount += cr.dumpCount
			stats.Merge(cr.stats)
			for j := range cr.results {
				res := &cr.results[j]
				byKey[stream.QueryKey{QID: res.QID, Level: res.Level}] = *res
			}
			metrics.Merge(cr.metrics)
			emFrames += cr.emFrames
			emBad += cr.emBad
		}
		// Shards do not count PacketsIn (each saw every frame); the fan-out
		// side owns the count.
		stats.PacketsIn = r.framesIn
		r.framesIn = 0
		results = make([]stream.Result, 0, len(r.order))
		for _, k := range r.order {
			if res, ok := byKey[k]; ok {
				results = append(results, res)
			}
		}
		ed.Attr(tracez.AttrDumpTuples, uint64(dumpCount))
		ed.End()
		se.Attr(tracez.AttrTuplesIn, metrics.TuplesIn)
		se.End()
	} else {
		ed := r.lane.Start(tracez.NameEmitterDecode)
		r.flushSeq()
		dumps, st := r.sw.EndWindow()
		r.em.HandleDumps(dumps)
		dumpCount = len(dumps)
		stats = st
		if r.seqViews != nil {
			// Batched sequential mode counts frames at the runtime, exactly
			// like the sharded fan-out (ProcessViews never counts PacketsIn).
			stats.PacketsIn = r.framesIn
			r.framesIn = 0
		}
		ed.Attr(tracez.AttrDumpTuples, uint64(dumpCount))
		ed.End()

		se := r.lane.Start(tracez.NameStreamEval)
		// The sequential engine shares the orchestration lane; re-parent it
		// so its op spans nest under stream_eval rather than the root.
		r.lane.SetContext(r.window, se.ID())
		results, metrics = r.engine.EndWindow()
		r.lane.SetContext(r.window, r.troot.ID())
		emFrames, emBad = r.em.WindowStats()
		se.Attr(tracez.AttrTuplesIn, metrics.TuplesIn)
		se.End()
	}
	// Register dumps become tuples at the stream processor; count them into
	// the headline metric like any other delivered tuple.
	rep := &WindowReport{
		Index:      r.window,
		AllResults: results,
		TuplesToSP: metrics.TuplesIn,
		PerQuery:   metrics.PerQuery,
		Switch:     stats,
		ShardBusy:  shardBusy,
	}
	r.collisionSum += stats.Collisions
	r.packetsSum += stats.PacketsIn
	rep.EmitterFrames, rep.EmitterMalformed = emFrames, emBad

	for _, res := range results {
		if r.finest[res.QID] == res.Level {
			rep.Results = append(rep.Results, res)
		}
	}

	// Dynamic refinement: level From's results gate level To next window.
	fu := r.lane.Start(tracez.NameFilterUpdate)
	start := time.Now()
	for li := range r.links {
		l := &r.links[li]
		keys := r.refinedKeys(results, l)
		r.dynOf(l.qid, l.to).Replace(l.tabl, keys)
		sw := r.swOf(l.qid, l.to)
		for _, side := range []pisa.Side{pisa.SideLeft, pisa.SideRight} {
			// Op 0 is the dynamic filter by construction of AugmentQuery;
			// instances whose cut keeps the filter at the stream processor
			// reject the update, which is expected.
			if n, err := sw.UpdateDynTable(l.qid, l.to, side, 0, keys); err == nil {
				rep.FilterUpdates += n
			}
		}
		rep.FilterUpdates += len(keys) // the SP-side table update
		changed := r.keySetChanged(li, keys)
		if changed {
			r.m.refTransitions.Inc()
		}
		// The flight recorder attributes the transition to the gated (finer)
		// instance: how many keys now admit its traffic, and whether the set
		// moved this window.
		if p := r.frProbes[stream.QueryKey{QID: l.qid, Level: l.to}]; p != nil {
			p.Refined(uint64(len(keys)), changed)
		}
	}
	rep.UpdateDuration = time.Since(start)
	fu.Attr(tracez.AttrEntries, uint64(rep.FilterUpdates))
	fu.End()

	// Feed the registry with the same values the report carries.
	r.m.windows.Inc()
	r.m.windowIndex.Set(int64(rep.Index))
	r.m.tuplesToSP.Add(rep.TuplesToSP)
	r.m.filterUpdates.Add(uint64(rep.FilterUpdates))
	r.m.filterUpdateNS.ObserveDuration(rep.UpdateDuration)
	if !r.windowStart.IsZero() {
		r.m.windowNS.ObserveDuration(time.Since(r.windowStart))
	}
	// Fan the report out to subscribers before the flight recorder seals the
	// window, so delivery bytes are attributed to the window they belong to.
	// Publish must not block (sinks absorb slow consumers in bounded queues).
	if r.sink != nil {
		pub := r.lane.Start(tracez.NamePublish)
		r.lane.SetContext(r.window, pub.ID())
		pubStart := time.Now()
		r.sink.Publish(rep)
		r.m.publishNS.ObserveDuration(time.Since(pubStart))
		pub.End()
		r.lane.SetContext(r.window, r.troot.ID())
	}
	// Freshness watermark: first frame of the window → results published.
	// Observed after publish (unlike window_ns, which excludes fan-out) so
	// it measures what a subscriber experiences.
	if !r.windowStart.IsZero() {
		fresh := time.Since(r.windowStart)
		r.m.freshNS.ObserveDuration(fresh)
		for _, h := range r.m.freshByQID {
			h.ObserveDuration(fresh)
		}
		for _, p := range r.frProbes {
			p.Fresh(fresh.Nanoseconds())
		}
		r.windowStart = time.Time{}
	}
	// Close the window's trace tree; the tracer decides retention from the
	// root's close latency.
	if r.rootOpen {
		r.tz.CloseWindow(r.window, r.troot.End().Nanoseconds())
		r.rootOpen = false
	}
	// Seal the window into the flight recorder with the very values the
	// report carries (a nil recorder no-ops).
	r.flight.Commit(rep.Index, stats.PacketsIn, shardBusy)
	r.window++
	return rep
}

// swOf returns the switch hosting the given instance (the owner shard's in
// sharded mode).
func (r *Runtime) swOf(qid uint16, level uint8) *pisa.Switch {
	if len(r.shards) > 0 {
		return r.shards[r.owner[stream.QueryKey{QID: qid, Level: level}]].sw
	}
	return r.sw
}

// dynOf returns the dynamic filter tables guarding the given instance.
func (r *Runtime) dynOf(qid uint16, level uint8) *stream.DynTables {
	if len(r.shards) > 0 {
		return r.shards[r.owner[stream.QueryKey{QID: qid, Level: level}]].engine.Dyn()
	}
	return r.engine.Dyn()
}

// refinedKeys extracts the dyn-table keys from one level's results into the
// link's reused candidate slice (regenerating it each window used to be a
// steady per-window allocation; consumers copy what they keep). For
// join queries the gate is the intersection of the sub-queries' outputs
// (the paper's Section 4.1: "their output at coarser levels determines
// which portion of traffic to process for the finer levels") — the final
// post-join condition (e.g. a payload keyword) must not gate refinement, or
// the victim would never be zoomed in on.
func (r *Runtime) refinedKeys(results []stream.Result, l *link) []string {
	keys := l.keys[:0]
	for i := range results {
		res := &results[i]
		if res.QID != l.qid || res.Level != l.from {
			continue
		}
		if res.RightOutputs == nil && res.LeftOutputs == nil {
			for _, t := range res.Tuples {
				if l.keyCol < len(t) {
					keys = append(keys, stream.DynKeyFromValue(l.field, t[l.keyCol], int(l.from)))
				}
			}
			continue
		}
		l.rset = sideKeySet(l.rset, res.RightOutputs, res.RightSchema, l.field, int(l.from))
		l.lset = sideKeySet(l.lset, res.LeftOutputs, res.LeftSchema, l.field, int(l.from))
		switch {
		case l.lset == nil:
			for k := range l.rset {
				keys = append(keys, k)
			}
		case l.rset == nil:
			for k := range l.lset {
				keys = append(keys, k)
			}
		default:
			for k := range l.rset {
				if _, ok := l.lset[k]; ok {
					keys = append(keys, k)
				}
			}
		}
	}
	l.keys = keys
	return keys
}

// sideKeySet collects a sub-pipeline's refinement keys into the reused set
// (cleared each call); nil when the side has no outputs/schema
// (packet-phase left sides).
func sideKeySet(set map[string]struct{}, outs [][]tuple.Value, schema tuple.Schema, f fields.ID, level int) map[string]struct{} {
	if outs == nil || schema == nil {
		return nil
	}
	col := schema.Index(f)
	if col < 0 {
		return nil
	}
	if set == nil {
		set = make(map[string]struct{}, len(outs))
	} else {
		clear(set)
	}
	for _, t := range outs {
		if col < len(t) {
			set[stream.DynKeyFromValue(f, t[col], level)] = struct{}{}
		}
	}
	return set
}

// CollisionRate returns the cumulative fraction of packets whose stateful
// updates overflowed the registers — the signal that triggers re-planning
// when traffic drifts from the training data (Section 3.3).
func (r *Runtime) CollisionRate() float64 {
	if r.packetsSum == 0 {
		return 0
	}
	return float64(r.collisionSum) / float64(r.packetsSum)
}

// NeedsReplan reports whether the collision rate passed the threshold.
func (r *Runtime) NeedsReplan(threshold float64) bool {
	return r.CollisionRate() > threshold
}

// EntrySummary describes where each installed instance was cut, for logs
// and the DESIGN.md-style plan dumps in the examples.
func (r *Runtime) EntrySummary() []string {
	var out []string
	for _, qp := range r.plan.Queries {
		for _, lp := range qp.Levels {
			out = append(out, fmt.Sprintf("q%-2d %-24s level /%-2d cut=%d/%d spEntry=op%d expectedN=%d",
				qp.Query.ID, qp.Query.Name, lp.Level, lp.Left.Cut,
				len(lp.Left.Pipe.Tables), entryOp(&lp.Left), lp.ExpectedN))
		}
	}
	return out
}
