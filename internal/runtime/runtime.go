// Package runtime orchestrates one Sonata deployment: it installs the
// planner's output on the switch simulator and the stream engine, drives
// the per-window processing loop, applies dynamic-refinement filter updates
// at window boundaries (Section 4), reconciles register dumps, and reports
// the per-window load metrics the evaluation compares.
package runtime

import (
	"fmt"
	"time"

	"repro/internal/emitter"
	"repro/internal/fields"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/tuple"
)

// WindowReport summarizes one processed window.
type WindowReport struct {
	Index int
	// Results holds the finest-level outputs of every query — the answers
	// the operator asked for.
	Results []stream.Result
	// AllResults includes every refinement level's outputs.
	AllResults []stream.Result
	// TuplesToSP is the number of tuples the stream processor ingested this
	// window: the paper's headline metric.
	TuplesToSP uint64
	// PerQuery breaks the load down by (query, level) instance.
	PerQuery map[stream.QueryKey]uint64
	// Switch carries the data-plane counters.
	Switch pisa.WindowStats
	// FilterUpdates counts dynamic filter entries written at the window
	// boundary, and UpdateDuration the wall time spent writing them — the
	// refinement-overhead micro-benchmark of Section 6.2.
	FilterUpdates  int
	UpdateDuration time.Duration
	// EmitterFrames / EmitterMalformed report the monitoring-port volume.
	EmitterFrames    uint64
	EmitterMalformed uint64
}

// Runtime binds a plan to executable components.
type Runtime struct {
	plan   *planner.Plan
	cfg    pisa.Config
	sw     *pisa.Switch
	engine *stream.Engine
	em     *emitter.Emitter
	links  []link
	finest map[uint16]uint8
	window int
	// collisionSum tracks cumulative collisions for the re-planning signal.
	collisionSum uint64
	packetsSum   uint64
	// Telemetry: m holds registry handles, tracer records lifecycle spans
	// (both inert until Instrument). windowStart anchors the window-duration
	// histogram; lastKeys fingerprints each link's refinement key set for
	// the transition counter.
	m           runtimeMetrics
	tracer      *telemetry.Tracer
	windowStart time.Time
	lastKeys    map[int]string
}

type link struct {
	qid    uint16
	from   uint8
	to     uint8
	keyCol int
	field  fields.ID // the refinement key
}

// New wires a runtime from a plan.
func New(plan *planner.Plan, cfg pisa.Config) (*Runtime, error) {
	dyn := stream.NewDynTables()
	engine := stream.NewEngine(dyn)
	em := emitter.New(engine)
	sw, err := pisa.NewSwitch(cfg, plan.Program, em.HandleMirror)
	if err != nil {
		return nil, fmt.Errorf("runtime: installing switch program: %w", err)
	}
	r := &Runtime{plan: plan, cfg: cfg, sw: sw, engine: engine, em: em,
		finest: make(map[uint16]uint8), lastKeys: make(map[int]string)}

	for _, qp := range plan.Queries {
		for li, lp := range qp.Levels {
			part := stream.Partition{
				LeftStart:  entryOp(&lp.Left),
				RightStart: 0,
			}
			if lp.Right != nil {
				part.RightStart = entryOp(lp.Right)
			}
			if err := engine.Install(lp.Aug, uint8(lp.Level), part); err != nil {
				return nil, fmt.Errorf("runtime: installing q%d level %d: %w", qp.Query.ID, lp.Level, err)
			}
			if li == len(qp.Levels)-1 {
				r.finest[qp.Query.ID] = uint8(lp.Level)
			}
			if li+1 < len(qp.Levels) {
				next := qp.Levels[li+1]
				keyCol := lp.Aug.FinalSchema().Index(qp.Key.Field)
				if keyCol < 0 {
					return nil, fmt.Errorf("runtime: q%d level %d: refinement key %s missing from result schema %s",
						qp.Query.ID, lp.Level, qp.Key.Field, lp.Aug.FinalSchema())
				}
				r.links = append(r.links, link{qid: qp.Query.ID,
					from: uint8(lp.Level), to: uint8(next.Level),
					keyCol: keyCol, field: qp.Key.Field})
			}
		}
	}
	return r, nil
}

// entryOp maps an instance plan's cut to the stream processor's resume op.
func entryOp(inst *planner.InstancePlan) int {
	return inst.Pipe.EntryFor(inst.Cut).StartOp
}

// Switch exposes the data plane (examples and tests inspect it).
func (r *Runtime) Switch() *pisa.Switch { return r.sw }

// Engine exposes the stream processor.
func (r *Runtime) Engine() *stream.Engine { return r.engine }

// Plan returns the installed plan.
func (r *Runtime) Plan() *planner.Plan { return r.plan }

// ProcessWindow pushes one window of frames through the data plane, closes
// the window on both components, applies refinement updates for the next
// window, and reports.
func (r *Runtime) ProcessWindow(frames [][]byte) *WindowReport {
	r.markWindowStart()
	sp := r.tracer.Start(r.window, telemetry.StageSwitchPass)
	for _, f := range frames {
		r.sw.Process(f)
	}
	sp.EndAttrs(map[string]uint64{"frames": uint64(len(frames))})
	return r.closeWindow()
}

// Process pushes a single frame (streaming use; pair with CloseWindow).
func (r *Runtime) Process(frame []byte) {
	r.markWindowStart()
	r.sw.Process(frame)
}

// markWindowStart anchors the window-duration measurement at the first
// frame of each window.
func (r *Runtime) markWindowStart() {
	if r.windowStart.IsZero() {
		r.windowStart = time.Now()
	}
}

// CloseWindow ends the current window explicitly.
func (r *Runtime) CloseWindow() *WindowReport { return r.closeWindow() }

func (r *Runtime) closeWindow() *WindowReport {
	ed := r.tracer.Start(r.window, telemetry.StageEmitterDecode)
	dumps, stats := r.sw.EndWindow()
	r.em.HandleDumps(dumps)
	ed.EndAttrs(map[string]uint64{"dump_tuples": uint64(len(dumps))})

	se := r.tracer.Start(r.window, telemetry.StageStreamEval)
	results, metrics := r.engine.EndWindow()
	se.EndAttrs(map[string]uint64{"tuples_in": metrics.TuplesIn})
	// Register dumps become tuples at the stream processor; count them into
	// the headline metric like any other delivered tuple.
	rep := &WindowReport{
		Index:      r.window,
		AllResults: results,
		TuplesToSP: metrics.TuplesIn,
		PerQuery:   metrics.PerQuery,
		Switch:     stats,
	}
	r.collisionSum += stats.Collisions
	r.packetsSum += stats.PacketsIn
	rep.EmitterFrames, rep.EmitterMalformed = r.em.WindowStats()

	for _, res := range results {
		if r.finest[res.QID] == res.Level {
			rep.Results = append(rep.Results, res)
		}
	}

	// Dynamic refinement: level From's results gate level To next window.
	fu := r.tracer.Start(r.window, telemetry.StageFilterUpdate)
	start := time.Now()
	for li, l := range r.links {
		keys := r.refinedKeys(results, l)
		table := planner.DynTableName(l.qid, int(l.to))
		r.engine.Dyn().Replace(table, keys)
		for _, side := range []pisa.Side{pisa.SideLeft, pisa.SideRight} {
			// Op 0 is the dynamic filter by construction of AugmentQuery;
			// instances whose cut keeps the filter at the stream processor
			// reject the update, which is expected.
			if n, err := r.sw.UpdateDynTable(l.qid, l.to, side, 0, keys); err == nil {
				rep.FilterUpdates += n
			}
		}
		rep.FilterUpdates += len(keys) // the SP-side table update
		if fp := keyFingerprint(keys); fp != r.lastKeys[li] {
			r.lastKeys[li] = fp
			r.m.refTransitions.Inc()
		}
	}
	rep.UpdateDuration = time.Since(start)
	fu.EndAttrs(map[string]uint64{"entries": uint64(rep.FilterUpdates)})

	// Feed the registry with the same values the report carries.
	r.m.windows.Inc()
	r.m.windowIndex.Set(int64(rep.Index))
	r.m.tuplesToSP.Add(rep.TuplesToSP)
	r.m.filterUpdates.Add(uint64(rep.FilterUpdates))
	r.m.filterUpdateNS.ObserveDuration(rep.UpdateDuration)
	if !r.windowStart.IsZero() {
		r.m.windowNS.ObserveDuration(time.Since(r.windowStart))
		r.windowStart = time.Time{}
	}
	r.window++
	return rep
}

// refinedKeys extracts the dyn-table keys from one level's results. For
// join queries the gate is the intersection of the sub-queries' outputs
// (the paper's Section 4.1: "their output at coarser levels determines
// which portion of traffic to process for the finer levels") — the final
// post-join condition (e.g. a payload keyword) must not gate refinement, or
// the victim would never be zoomed in on.
func (r *Runtime) refinedKeys(results []stream.Result, l link) []string {
	var keys []string
	for i := range results {
		res := &results[i]
		if res.QID != l.qid || res.Level != l.from {
			continue
		}
		if res.RightOutputs == nil && res.LeftOutputs == nil {
			for _, t := range res.Tuples {
				if l.keyCol < len(t) {
					keys = append(keys, stream.DynKeyFromValue(l.field, t[l.keyCol], int(l.from)))
				}
			}
			continue
		}
		right := sideKeySet(res.RightOutputs, res.RightSchema, l.field, int(l.from))
		left := sideKeySet(res.LeftOutputs, res.LeftSchema, l.field, int(l.from))
		switch {
		case left == nil:
			for k := range right {
				keys = append(keys, k)
			}
		case right == nil:
			for k := range left {
				keys = append(keys, k)
			}
		default:
			for k := range right {
				if _, ok := left[k]; ok {
					keys = append(keys, k)
				}
			}
		}
	}
	return keys
}

// sideKeySet collects a sub-pipeline's refinement keys; nil when the side
// has no outputs/schema (packet-phase left sides).
func sideKeySet(outs [][]tuple.Value, schema tuple.Schema, f fields.ID, level int) map[string]struct{} {
	if outs == nil || schema == nil {
		return nil
	}
	col := schema.Index(f)
	if col < 0 {
		return nil
	}
	set := make(map[string]struct{}, len(outs))
	for _, t := range outs {
		if col < len(t) {
			set[stream.DynKeyFromValue(f, t[col], level)] = struct{}{}
		}
	}
	return set
}

// CollisionRate returns the cumulative fraction of packets whose stateful
// updates overflowed the registers — the signal that triggers re-planning
// when traffic drifts from the training data (Section 3.3).
func (r *Runtime) CollisionRate() float64 {
	if r.packetsSum == 0 {
		return 0
	}
	return float64(r.collisionSum) / float64(r.packetsSum)
}

// NeedsReplan reports whether the collision rate passed the threshold.
func (r *Runtime) NeedsReplan(threshold float64) bool {
	return r.CollisionRate() > threshold
}

// EntrySummary describes where each installed instance was cut, for logs
// and the DESIGN.md-style plan dumps in the examples.
func (r *Runtime) EntrySummary() []string {
	var out []string
	for _, qp := range r.plan.Queries {
		for _, lp := range qp.Levels {
			out = append(out, fmt.Sprintf("q%-2d %-24s level /%-2d cut=%d/%d spEntry=op%d expectedN=%d",
				qp.Query.ID, qp.Query.Name, lp.Level, lp.Left.Cut,
				len(lp.Left.Pipe.Tables), entryOp(&lp.Left), lp.ExpectedN))
		}
	}
	return out
}
