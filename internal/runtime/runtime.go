// Package runtime orchestrates one Sonata deployment: it installs the
// planner's output on the switch simulator and the stream engine, drives
// the per-window processing loop, applies dynamic-refinement filter updates
// at window boundaries (Section 4), reconciles register dumps, and reports
// the per-window load metrics the evaluation compares.
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/emitter"
	"repro/internal/fields"
	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tracez"
	"repro/internal/tuple"
)

// WindowReport summarizes one processed window.
type WindowReport struct {
	Index int
	// Results holds the finest-level outputs of every query — the answers
	// the operator asked for.
	Results []stream.Result
	// AllResults includes every refinement level's outputs.
	AllResults []stream.Result
	// TuplesToSP is the number of tuples the stream processor ingested this
	// window: the paper's headline metric.
	TuplesToSP uint64
	// PerQuery breaks the load down by (query, level) instance.
	PerQuery map[stream.QueryKey]uint64
	// Switch carries the data-plane counters.
	Switch pisa.WindowStats
	// FilterUpdates counts dynamic filter entries written at the window
	// boundary, and UpdateDuration the wall time spent writing them — the
	// refinement-overhead micro-benchmark of Section 6.2.
	FilterUpdates  int
	UpdateDuration time.Duration
	// EmitterFrames / EmitterMalformed report the monitoring-port volume.
	EmitterFrames    uint64
	EmitterMalformed uint64
	// ShardBusy holds each worker shard's busy time inside this window (nil
	// for the sequential runtime). sum/max estimates the achievable parallel
	// speedup independently of how many cores the host actually has.
	ShardBusy []time.Duration
}

// ResultSink receives each WindowReport as the window closes, before the
// flight recorder seals it — so a sink that attributes delivery bytes via
// flightrec probes lands them in the same window's record. Publish is called
// from the runtime's close path and must not block: sinks fan out to slow
// consumers through bounded queues, never by stalling the pipeline. The
// report and its results are shared, not copied; sinks must treat them as
// read-only and must not retain the tuple slices past Publish unless they
// encode them first.
type ResultSink interface {
	Publish(rep *WindowReport)
}

// FlightRecAttacher is implemented by sinks that attribute their delivery
// volume to (query, level) flight-recorder records. The runtime forwards its
// probe lookup whenever both a recorder and a sink are attached, in either
// order.
type FlightRecAttacher interface {
	AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe)
}

// TracezAttacher is implemented by sinks that record their fan-out work as
// spans in the window's trace tree. Publish runs on the runtime's close
// path, so the sink records into the orchestration lane; the runtime
// re-parents the lane to the publish span for the duration of the call.
type TracezAttacher interface {
	AttachTracez(r *tracez.Ring)
}

// SetResultSink installs (or, with nil, removes) the sink that receives each
// closed window's report. If a flight recorder or tracer is already attached
// and the sink wants probes or a span lane, they are wired immediately.
func (r *Runtime) SetResultSink(sink ResultSink) {
	r.sink = sink
	if a, ok := sink.(FlightRecAttacher); ok {
		a.AttachFlightRec(r.frLookup)
	}
	if a, ok := sink.(TracezAttacher); ok && r.lane != nil {
		a.AttachTracez(r.lane)
	}
}

// Options tunes a runtime's execution mode.
type Options struct {
	// Workers is the number of parallel shards the installed (query, level)
	// instances are partitioned across. 0 or 1 selects the sequential path,
	// which is byte-for-byte the classic single-goroutine runtime; values
	// above the instance count are clamped to it.
	Workers int
	// BatchSize is the number of frames per processing batch: the fan-out
	// granularity in sharded mode, the view-batch size in sequential mode
	// (0 means DefaultBatchSize).
	BatchSize int
	// Scalar forces the classic per-tuple execution everywhere: the
	// sequential switch path runs frame-at-a-time (no view batching) and the
	// stream engines use the per-tuple interpreter instead of the columnar
	// batched executor. The two modes produce bit-identical WindowReports;
	// Scalar exists as the differential-testing oracle and an escape hatch.
	Scalar bool
}

// DefaultBatchSize is the fan-out batch granularity: large enough to
// amortize the channel handoff, small enough that shards stay busy inside
// one window.
const DefaultBatchSize = 256

// shard owns one slice of the deployment: the switch instances assigned to
// it (with their registers and dynamic tables), a private emitter, and the
// matching stream-engine instances. During a window only the shard's worker
// goroutine touches this state, so the hot path takes no locks; the
// runtime's window close joins the workers before reading any of it.
type shard struct {
	sw     *pisa.Switch
	engine *stream.Engine
	em     *emitter.Emitter
	in     chan *viewBatch
	done   chan struct{}
	// busy accumulates time spent processing batches this window; only the
	// shard's own goroutine writes it, and the runtime reads it after the
	// window-end join.
	busy time.Duration
}

// viewBatch is a refcounted batch of frames parsed once and shared
// read-only by every shard; the last shard to finish a batch recycles it.
type viewBatch struct {
	views []pisa.View
	n     int
	refs  atomic.Int32
}

// Runtime binds a plan to executable components.
type Runtime struct {
	plan *planner.Plan
	cfg  pisa.Config
	opts Options
	// Sequential components (Workers <= 1). Nil in sharded mode, where
	// shards carries the per-worker slices instead.
	sw     *pisa.Switch
	engine *stream.Engine
	em     *emitter.Emitter
	// Sharded mode: owner maps each instance to its shard, order preserves
	// global installation order so merged results match the sequential
	// engine's ordering exactly, parser is the shared parse-once front end.
	shards    []*shard
	owner     map[stream.QueryKey]int
	order     []stream.QueryKey
	parser    *packet.Parser
	batchPool *sync.Pool
	fill      *viewBatch // batch currently being filled
	running   bool       // shard workers live for the current window
	framesIn  uint64     // frames ingested this window (merged PacketsIn)
	// Sequential view batching (nil in scalar or sharded mode): frames are
	// Prepared into seqViews and flushed through sw.ProcessViews at capacity
	// and at window close.
	seqViews []pisa.View
	seqN     int

	links  []link
	finest map[uint16]uint8
	window int
	// infos preserves the flattened plan (installation order); the flight
	// recorder tracks one probe per entry. flight/frProbes are nil until
	// AttachFlightRecorder.
	infos    []instInfo
	flight   *flightrec.Recorder
	frProbes map[stream.QueryKey]*flightrec.Probe
	frLookup func(qid uint16, level uint8) *flightrec.Probe
	// sink receives each WindowReport at window close (nil until
	// SetResultSink); Publish runs on the close path and must not block.
	sink ResultSink
	// collisionSum tracks cumulative collisions for the re-planning signal.
	collisionSum uint64
	packetsSum   uint64
	// Telemetry: m holds registry handles (inert until Instrument).
	// windowStart anchors the window-duration histogram and the freshness
	// watermark; lastKeys fingerprints each link's refinement key set for
	// the transition counter.
	m           runtimeMetrics
	windowStart time.Time
	lastKeys    map[int]string
	// Tracing: tz collects every window's span tree (nil when disabled).
	// lane is the orchestration lane (lane 0) carrying the window root and
	// lifecycle-stage spans; shard engines write op spans into lanes 1..N.
	// troot is the open window-root span, rootOpen whether one is open.
	tz       *tracez.Tracer
	lane     *tracez.Ring
	troot    tracez.Active
	rootOpen bool
}

type link struct {
	qid    uint16
	from   uint8
	to     uint8
	keyCol int
	field  fields.ID // the refinement key
}

// instInfo is one planned (query, level) instance in installation order.
// cost is the instance's switch-side work proxy (its cut depth): every
// instance examines every frame, so per-packet work scales with how many
// tables run in the data plane.
type instInfo struct {
	key  stream.QueryKey
	aug  *query.Query
	part stream.Partition
	cost int
}

// New wires a sequential runtime from a plan.
func New(plan *planner.Plan, cfg pisa.Config) (*Runtime, error) {
	return NewWithOptions(plan, cfg, Options{})
}

// NewWithOptions wires a runtime with explicit execution options.
func NewWithOptions(plan *planner.Plan, cfg pisa.Config, opts Options) (*Runtime, error) {
	r := &Runtime{plan: plan, cfg: cfg, opts: opts,
		finest: make(map[uint16]uint8), lastKeys: make(map[int]string)}

	// Flatten the plan into installation-ordered instances and derive the
	// refinement links; both execution modes share this pass.
	var infos []instInfo
	for _, qp := range plan.Queries {
		for li, lp := range qp.Levels {
			part := stream.Partition{
				LeftStart:  entryOp(&lp.Left),
				RightStart: 0,
			}
			if lp.Right != nil {
				part.RightStart = entryOp(lp.Right)
			}
			key := stream.QueryKey{QID: qp.Query.ID, Level: uint8(lp.Level)}
			infos = append(infos, instInfo{key: key, aug: lp.Aug, part: part,
				cost: instanceCost(&lp)})
			r.order = append(r.order, key)
			if li == len(qp.Levels)-1 {
				r.finest[qp.Query.ID] = key.Level
			}
			if li+1 < len(qp.Levels) {
				next := qp.Levels[li+1]
				keyCol := lp.Aug.FinalSchema().Index(qp.Key.Field)
				if keyCol < 0 {
					return nil, fmt.Errorf("runtime: q%d level %d: refinement key %s missing from result schema %s",
						qp.Query.ID, lp.Level, qp.Key.Field, lp.Aug.FinalSchema())
				}
				r.links = append(r.links, link{qid: qp.Query.ID,
					from: uint8(lp.Level), to: uint8(next.Level),
					keyCol: keyCol, field: qp.Key.Field})
			}
		}
	}

	r.infos = infos

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(infos) {
		workers = len(infos)
	}
	if workers <= 1 {
		return r, r.buildSequential(infos)
	}
	return r, r.buildSharded(infos, workers)
}

// buildSequential wires the classic single-goroutine pipeline.
func (r *Runtime) buildSequential(infos []instInfo) error {
	dyn := stream.NewDynTables()
	engine := stream.NewEngine(dyn)
	em := emitter.New(engine)
	sw, err := pisa.NewSwitch(r.cfg, r.plan.Program, em.HandleMirror)
	if err != nil {
		return fmt.Errorf("runtime: installing switch program: %w", err)
	}
	r.sw, r.engine, r.em = sw, engine, em
	if r.opts.Scalar {
		engine.SetScalar(true)
	} else {
		// Batched sequential mode: frames are parsed into a reusable view
		// buffer and run through the switch instance-major (ProcessViews),
		// so one instance's tables stay cache-hot across the whole batch.
		batch := r.opts.BatchSize
		if batch <= 0 {
			batch = DefaultBatchSize
		}
		r.parser = packet.NewParser(packet.ParserOptions{})
		r.seqViews = make([]pisa.View, batch)
	}
	for _, in := range infos {
		if err := engine.Install(in.aug, in.key.Level, in.part); err != nil {
			return fmt.Errorf("runtime: installing q%d level %d: %w", in.key.QID, in.key.Level, err)
		}
	}
	return nil
}

// buildSharded partitions the instances across workers. Each shard gets the
// switch program slice, emitter, and engine instances for the keys it owns;
// both sides of a join instance share a key and so land on the same shard.
//
// Assignment is greedy longest-processing-time over each instance's cut
// depth: instance costs are heavily skewed (a coarse level with a deep cut
// runs many tables over every packet, a dyn-gated fine level drops almost
// everything at op 0), so round-robin leaves some shards nearly idle. The
// result is deterministic — ties break on installation order and lowest
// shard index — so a given plan always shards the same way.
func (r *Runtime) buildSharded(infos []instInfo, workers int) error {
	r.owner = make(map[stream.QueryKey]int, len(infos))
	ord := make([]int, len(infos))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return infos[ord[a]].cost > infos[ord[b]].cost })
	load := make([]int, workers)
	for _, idx := range ord {
		best := 0
		for s := 1; s < workers; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += infos[idx].cost
		r.owner[infos[idx].key] = best
	}
	progs := make([]*pisa.Program, workers)
	for i := range progs {
		progs[i] = &pisa.Program{}
	}
	for _, spec := range r.plan.Program.Instances {
		si, ok := r.owner[stream.QueryKey{QID: spec.QID, Level: spec.Level}]
		if !ok {
			return fmt.Errorf("runtime: program instance %s has no planned level", spec.Name())
		}
		progs[si].Instances = append(progs[si].Instances, spec)
	}
	for i := 0; i < workers; i++ {
		engine := stream.NewEngine(stream.NewDynTables())
		if r.opts.Scalar {
			engine.SetScalar(true)
		}
		em := emitter.New(engine)
		sw, err := pisa.NewSwitch(r.cfg, progs[i], em.HandleMirror)
		if err != nil {
			return fmt.Errorf("runtime: installing shard %d program: %w", i, err)
		}
		r.shards = append(r.shards, &shard{sw: sw, engine: engine, em: em})
	}
	for _, in := range infos {
		s := r.shards[r.owner[in.key]]
		if err := s.engine.Install(in.aug, in.key.Level, in.part); err != nil {
			return fmt.Errorf("runtime: installing q%d level %d: %w", in.key.QID, in.key.Level, err)
		}
	}
	batch := r.opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	r.parser = packet.NewParser(packet.ParserOptions{})
	r.batchPool = &sync.Pool{New: func() any {
		return &viewBatch{views: make([]pisa.View, batch)}
	}}
	return nil
}

// instanceCost is the weight the shard balancer assigns an instance: the
// planner's trained per-window work estimate (tuples entering each pipeline
// stage, gates applied — see InstancePlan.EstWork). A floor of 1 keeps
// zero-traffic instances schedulable.
func instanceCost(lp *planner.LevelPlan) int {
	cost := lp.Left.EstWork
	if lp.Right != nil {
		cost += lp.Right.EstWork
	}
	if cost == 0 {
		return 1
	}
	return int(cost)
}

// entryOp maps an instance plan's cut to the stream processor's resume op.
func entryOp(inst *planner.InstancePlan) int {
	return inst.Pipe.EntryFor(inst.Cut).StartOp
}

// Switch exposes the data plane (examples and tests inspect it). It is nil
// for a sharded runtime, whose data plane is split across workers.
func (r *Runtime) Switch() *pisa.Switch { return r.sw }

// Engine exposes the stream processor (nil for a sharded runtime).
func (r *Runtime) Engine() *stream.Engine { return r.engine }

// Plan returns the installed plan.
func (r *Runtime) Plan() *planner.Plan { return r.plan }

// Workers returns the number of parallel shards (1 for the sequential
// runtime).
func (r *Runtime) Workers() int {
	if len(r.shards) > 0 {
		return len(r.shards)
	}
	return 1
}

// ShardOf reports which shard owns the given (query, level) instance, and
// -1 for unknown instances or a sequential runtime. Pairs with
// WindowReport.ShardBusy for balance inspection.
func (r *Runtime) ShardOf(qid uint16, level uint8) int {
	if len(r.shards) == 0 {
		return -1
	}
	s, ok := r.owner[stream.QueryKey{QID: qid, Level: level}]
	if !ok {
		return -1
	}
	return s
}

// ProcessWindow pushes one window of frames through the data plane, closes
// the window on both components, applies refinement updates for the next
// window, and reports.
func (r *Runtime) ProcessWindow(frames [][]byte) *WindowReport {
	r.markWindowStart()
	sp := r.lane.Start(tracez.NameSwitchPass)
	switch {
	case len(r.shards) > 0:
		for _, f := range frames {
			r.processSharded(f)
		}
	case r.seqViews != nil:
		for _, f := range frames {
			r.processSequential(f)
		}
	default:
		for _, f := range frames {
			r.sw.Process(f)
		}
	}
	sp.Attr(tracez.AttrFrames, uint64(len(frames)))
	sp.End()
	return r.closeWindow()
}

// Process pushes a single frame (streaming use; pair with CloseWindow).
// Both the sharded runtime and the batched sequential runtime alias the
// frame in parsed views that outlive this call, so the caller must not
// modify it until the window closes. (Only Options.Scalar consumes the
// frame before returning.)
func (r *Runtime) Process(frame []byte) {
	r.markWindowStart()
	if len(r.shards) > 0 {
		r.processSharded(frame)
		return
	}
	if r.seqViews != nil {
		r.processSequential(frame)
		return
	}
	r.sw.Process(frame)
}

// processSequential parses the frame into the sequential view buffer,
// flushing a full buffer through the switch instance-major. PacketsIn moves
// to the runtime here (like the sharded path): ProcessViews does not count
// it, and the registry's packet counter is the same series either way.
func (r *Runtime) processSequential(frame []byte) {
	r.framesIn++
	r.m.packets.Inc()
	r.seqViews[r.seqN].Prepare(r.parser, frame)
	r.seqN++
	if r.seqN == len(r.seqViews) {
		r.flushSeq()
	}
}

// flushSeq runs the buffered sequential views through the switch. A no-op
// when the buffer is empty (and always in scalar or sharded mode).
func (r *Runtime) flushSeq() {
	if r.seqN > 0 {
		r.sw.ProcessViews(r.seqViews[:r.seqN])
		r.seqN = 0
	}
}

// processSharded parses the frame once and fans the shared read-only view
// out to every shard. Workers start lazily at the first frame of a window
// and are joined by closeWindow.
func (r *Runtime) processSharded(frame []byte) {
	if !r.running {
		r.startWorkers()
	}
	r.framesIn++
	r.m.packets.Inc()
	b := r.fill
	if b == nil {
		b = r.batchPool.Get().(*viewBatch)
		b.n = 0
		r.fill = b
	}
	b.views[b.n].Prepare(r.parser, frame)
	b.n++
	if b.n == len(b.views) {
		r.dispatch()
	}
}

// dispatch hands the filling batch to every shard. The batch is read-only
// from here on; the last shard to finish it returns it to the pool.
func (r *Runtime) dispatch() {
	b := r.fill
	if b == nil || b.n == 0 {
		return
	}
	r.fill = nil
	b.refs.Store(int32(len(r.shards)))
	for _, s := range r.shards {
		s.in <- b
	}
}

func (r *Runtime) startWorkers() {
	for _, s := range r.shards {
		s.in = make(chan *viewBatch, 4)
		s.done = make(chan struct{})
		go s.run(r.batchPool)
	}
	r.running = true
}

// run is a shard's worker loop: drain batches, run the owned instances
// over each view. Closing the in channel is the window-end barrier.
func (s *shard) run(pool *sync.Pool) {
	defer close(s.done)
	for b := range s.in {
		t0 := time.Now()
		s.sw.ProcessViews(b.views[:b.n])
		s.busy += time.Since(t0)
		if b.refs.Add(-1) == 0 {
			pool.Put(b)
		}
	}
}

// joinWorkers flushes the partial batch and waits for every shard to
// drain; once it returns the main goroutine owns all shard state again.
func (r *Runtime) joinWorkers() {
	if !r.running {
		return
	}
	r.dispatch()
	for _, s := range r.shards {
		close(s.in)
	}
	for _, s := range r.shards {
		<-s.done
	}
	r.running = false
}

// markWindowStart anchors the window-duration measurement and the window
// root span at the first frame of each window.
func (r *Runtime) markWindowStart() {
	if r.windowStart.IsZero() {
		r.windowStart = time.Now()
	}
	r.openRoot()
}

// openRoot starts the window's root span and re-parents the orchestration
// lane under it, so every subsequent stage span becomes its child. Inert
// when tracing is off (nil lane).
func (r *Runtime) openRoot() {
	if r.rootOpen {
		return
	}
	r.lane.SetContext(r.window, 0)
	r.troot = r.lane.Start(tracez.NameWindow)
	r.lane.SetContext(r.window, r.troot.ID())
	r.rootOpen = true
}

// CloseWindow ends the current window explicitly.
func (r *Runtime) CloseWindow() *WindowReport { return r.closeWindow() }

func (r *Runtime) closeWindow() *WindowReport {
	r.openRoot() // zero-frame windows still get a (short) trace tree
	ed := r.lane.Start(tracez.NameEmitterDecode)
	var (
		results   []stream.Result
		metrics   stream.Metrics
		stats     pisa.WindowStats
		dumpCount int
		emFrames  uint64
		emBad     uint64
	)
	var shardBusy []time.Duration
	if len(r.shards) > 0 {
		r.joinWorkers()
		shardBusy = make([]time.Duration, len(r.shards))
		for i, s := range r.shards {
			shardBusy[i], s.busy = s.busy, 0
			dumps, st := s.sw.EndWindow()
			s.em.HandleDumps(dumps)
			dumpCount += len(dumps)
			stats.Merge(st)
		}
		// Shards do not count PacketsIn (each saw every frame); the fan-out
		// side owns the count.
		stats.PacketsIn = r.framesIn
		r.framesIn = 0
	} else {
		r.flushSeq()
		dumps, st := r.sw.EndWindow()
		r.em.HandleDumps(dumps)
		dumpCount = len(dumps)
		stats = st
		if r.seqViews != nil {
			// Batched sequential mode counts frames at the runtime, exactly
			// like the sharded fan-out (ProcessViews never counts PacketsIn).
			stats.PacketsIn = r.framesIn
			r.framesIn = 0
		}
	}
	ed.Attr(tracez.AttrDumpTuples, uint64(dumpCount))
	ed.End()

	se := r.lane.Start(tracez.NameStreamEval)
	if len(r.shards) > 0 {
		metrics.PerQuery = make(map[stream.QueryKey]uint64)
		byKey := make(map[stream.QueryKey]stream.Result, len(r.order))
		for i := range r.shards {
			// Op spans recorded during each shard engine's close parent to
			// this window's stream_eval span.
			r.tz.Lane(i+1).SetContext(r.window, se.ID())
		}
		for _, s := range r.shards {
			res, m := s.engine.EndWindow()
			for i := range res {
				byKey[stream.QueryKey{QID: res[i].QID, Level: res[i].Level}] = res[i]
			}
			metrics.Merge(m)
			f, bad := s.em.WindowStats()
			emFrames += f
			emBad += bad
		}
		// Deterministic merge: report in global installation order, exactly
		// as the sequential engine orders its results.
		results = make([]stream.Result, 0, len(r.order))
		for _, k := range r.order {
			if res, ok := byKey[k]; ok {
				results = append(results, res)
			}
		}
	} else {
		// The sequential engine shares the orchestration lane; re-parent it
		// so its op spans nest under stream_eval rather than the root.
		r.lane.SetContext(r.window, se.ID())
		results, metrics = r.engine.EndWindow()
		r.lane.SetContext(r.window, r.troot.ID())
		emFrames, emBad = r.em.WindowStats()
	}
	se.Attr(tracez.AttrTuplesIn, metrics.TuplesIn)
	se.End()
	// Register dumps become tuples at the stream processor; count them into
	// the headline metric like any other delivered tuple.
	rep := &WindowReport{
		Index:      r.window,
		AllResults: results,
		TuplesToSP: metrics.TuplesIn,
		PerQuery:   metrics.PerQuery,
		Switch:     stats,
		ShardBusy:  shardBusy,
	}
	r.collisionSum += stats.Collisions
	r.packetsSum += stats.PacketsIn
	rep.EmitterFrames, rep.EmitterMalformed = emFrames, emBad

	for _, res := range results {
		if r.finest[res.QID] == res.Level {
			rep.Results = append(rep.Results, res)
		}
	}

	// Dynamic refinement: level From's results gate level To next window.
	fu := r.lane.Start(tracez.NameFilterUpdate)
	start := time.Now()
	for li, l := range r.links {
		keys := r.refinedKeys(results, l)
		table := planner.DynTableName(l.qid, int(l.to))
		r.dynOf(l.qid, l.to).Replace(table, keys)
		sw := r.swOf(l.qid, l.to)
		for _, side := range []pisa.Side{pisa.SideLeft, pisa.SideRight} {
			// Op 0 is the dynamic filter by construction of AugmentQuery;
			// instances whose cut keeps the filter at the stream processor
			// reject the update, which is expected.
			if n, err := sw.UpdateDynTable(l.qid, l.to, side, 0, keys); err == nil {
				rep.FilterUpdates += n
			}
		}
		rep.FilterUpdates += len(keys) // the SP-side table update
		fp := keyFingerprint(keys)
		changed := fp != r.lastKeys[li]
		if changed {
			r.lastKeys[li] = fp
			r.m.refTransitions.Inc()
		}
		// The flight recorder attributes the transition to the gated (finer)
		// instance: how many keys now admit its traffic, and whether the set
		// moved this window.
		if p := r.frProbes[stream.QueryKey{QID: l.qid, Level: l.to}]; p != nil {
			p.Refined(uint64(len(keys)), changed)
		}
	}
	rep.UpdateDuration = time.Since(start)
	fu.Attr(tracez.AttrEntries, uint64(rep.FilterUpdates))
	fu.End()

	// Feed the registry with the same values the report carries.
	r.m.windows.Inc()
	r.m.windowIndex.Set(int64(rep.Index))
	r.m.tuplesToSP.Add(rep.TuplesToSP)
	r.m.filterUpdates.Add(uint64(rep.FilterUpdates))
	r.m.filterUpdateNS.ObserveDuration(rep.UpdateDuration)
	if !r.windowStart.IsZero() {
		r.m.windowNS.ObserveDuration(time.Since(r.windowStart))
	}
	// Fan the report out to subscribers before the flight recorder seals the
	// window, so delivery bytes are attributed to the window they belong to.
	// Publish must not block (sinks absorb slow consumers in bounded queues).
	if r.sink != nil {
		pub := r.lane.Start(tracez.NamePublish)
		r.lane.SetContext(r.window, pub.ID())
		pubStart := time.Now()
		r.sink.Publish(rep)
		r.m.publishNS.ObserveDuration(time.Since(pubStart))
		pub.End()
		r.lane.SetContext(r.window, r.troot.ID())
	}
	// Freshness watermark: first frame of the window → results published.
	// Observed after publish (unlike window_ns, which excludes fan-out) so
	// it measures what a subscriber experiences.
	if !r.windowStart.IsZero() {
		fresh := time.Since(r.windowStart)
		r.m.freshNS.ObserveDuration(fresh)
		for _, h := range r.m.freshByQID {
			h.ObserveDuration(fresh)
		}
		for _, p := range r.frProbes {
			p.Fresh(fresh.Nanoseconds())
		}
		r.windowStart = time.Time{}
	}
	// Close the window's trace tree; the tracer decides retention from the
	// root's close latency.
	if r.rootOpen {
		r.tz.CloseWindow(r.window, r.troot.End().Nanoseconds())
		r.rootOpen = false
	}
	// Seal the window into the flight recorder with the very values the
	// report carries (a nil recorder no-ops).
	r.flight.Commit(rep.Index, stats.PacketsIn, shardBusy)
	r.window++
	return rep
}

// swOf returns the switch hosting the given instance (the owner shard's in
// sharded mode).
func (r *Runtime) swOf(qid uint16, level uint8) *pisa.Switch {
	if len(r.shards) > 0 {
		return r.shards[r.owner[stream.QueryKey{QID: qid, Level: level}]].sw
	}
	return r.sw
}

// dynOf returns the dynamic filter tables guarding the given instance.
func (r *Runtime) dynOf(qid uint16, level uint8) *stream.DynTables {
	if len(r.shards) > 0 {
		return r.shards[r.owner[stream.QueryKey{QID: qid, Level: level}]].engine.Dyn()
	}
	return r.engine.Dyn()
}

// refinedKeys extracts the dyn-table keys from one level's results. For
// join queries the gate is the intersection of the sub-queries' outputs
// (the paper's Section 4.1: "their output at coarser levels determines
// which portion of traffic to process for the finer levels") — the final
// post-join condition (e.g. a payload keyword) must not gate refinement, or
// the victim would never be zoomed in on.
func (r *Runtime) refinedKeys(results []stream.Result, l link) []string {
	var keys []string
	for i := range results {
		res := &results[i]
		if res.QID != l.qid || res.Level != l.from {
			continue
		}
		if res.RightOutputs == nil && res.LeftOutputs == nil {
			for _, t := range res.Tuples {
				if l.keyCol < len(t) {
					keys = append(keys, stream.DynKeyFromValue(l.field, t[l.keyCol], int(l.from)))
				}
			}
			continue
		}
		right := sideKeySet(res.RightOutputs, res.RightSchema, l.field, int(l.from))
		left := sideKeySet(res.LeftOutputs, res.LeftSchema, l.field, int(l.from))
		switch {
		case left == nil:
			for k := range right {
				keys = append(keys, k)
			}
		case right == nil:
			for k := range left {
				keys = append(keys, k)
			}
		default:
			for k := range right {
				if _, ok := left[k]; ok {
					keys = append(keys, k)
				}
			}
		}
	}
	return keys
}

// sideKeySet collects a sub-pipeline's refinement keys; nil when the side
// has no outputs/schema (packet-phase left sides).
func sideKeySet(outs [][]tuple.Value, schema tuple.Schema, f fields.ID, level int) map[string]struct{} {
	if outs == nil || schema == nil {
		return nil
	}
	col := schema.Index(f)
	if col < 0 {
		return nil
	}
	set := make(map[string]struct{}, len(outs))
	for _, t := range outs {
		if col < len(t) {
			set[stream.DynKeyFromValue(f, t[col], level)] = struct{}{}
		}
	}
	return set
}

// CollisionRate returns the cumulative fraction of packets whose stateful
// updates overflowed the registers — the signal that triggers re-planning
// when traffic drifts from the training data (Section 3.3).
func (r *Runtime) CollisionRate() float64 {
	if r.packetsSum == 0 {
		return 0
	}
	return float64(r.collisionSum) / float64(r.packetsSum)
}

// NeedsReplan reports whether the collision rate passed the threshold.
func (r *Runtime) NeedsReplan(threshold float64) bool {
	return r.CollisionRate() > threshold
}

// EntrySummary describes where each installed instance was cut, for logs
// and the DESIGN.md-style plan dumps in the examples.
func (r *Runtime) EntrySummary() []string {
	var out []string
	for _, qp := range r.plan.Queries {
		for _, lp := range qp.Levels {
			out = append(out, fmt.Sprintf("q%-2d %-24s level /%-2d cut=%d/%d spEntry=op%d expectedN=%d",
				qp.Query.ID, qp.Query.Name, lp.Level, lp.Left.Cut,
				len(lp.Left.Pipe.Tables), entryOp(&lp.Left), lp.ExpectedN))
		}
	}
	return out
}
