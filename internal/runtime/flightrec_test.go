package runtime_test

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/fields"
	"repro/internal/flightrec"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracez"
)

// recordCounts renders one committed window's records into a canonical
// per-(query, level) string, the flight-recorder side of the differential.
func recordCounts(recs []flightrec.Record) string {
	sorted := append([]flightrec.Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].QID != sorted[j].QID {
			return sorted[i].QID < sorted[j].QID
		}
		return sorted[i].Level < sorted[j].Level
	})
	var b strings.Builder
	for _, r := range sorted {
		if r.TuplesToSP == 0 {
			// PerQuery omits zero-count instances; the recorder keeps them
			// (an idle instance is still information), so drop zeros from
			// both renderings.
			continue
		}
		fmt.Fprintf(&b, "q%d/%d=%d\n", r.QID, r.Level, r.TuplesToSP)
	}
	return b.String()
}

// perQueryCounts renders a window report's PerQuery map the same way.
func perQueryCounts(rep *runtime.WindowReport) string {
	keys := make([]stream.QueryKey, 0, len(rep.PerQuery))
	for k := range rep.PerQuery {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].QID != keys[j].QID {
			return keys[i].QID < keys[j].QID
		}
		return keys[i].Level < keys[j].Level
	})
	var b strings.Builder
	for _, k := range keys {
		if rep.PerQuery[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "q%d/%d=%d\n", k.QID, k.Level, rep.PerQuery[k])
	}
	return b.String()
}

// TestFlightRecMatchesReports is the recorder's differential contract: at
// every worker count, each committed window's per-(query, level) tuple
// counts must equal the sequential runtime's WindowReport.PerQuery, and the
// summed switch-side counters must equal the report's WindowStats. The
// recorder shares the underlying increments with the report, so any
// divergence means an instrumentation point was dropped or double-counted.
func TestFlightRecMatchesReports(t *testing.T) {
	scale := eval.SmallScale()
	w, err := eval.NewWorkload(scale)
	if err != nil {
		t.Fatal(err)
	}
	qs := queries.All(eval.ScaledParams(scale))
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	plan, err := planner.PlanQueries(tr, qs, cfg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Sequential baseline: the per-window PerQuery strings every worker
	// count's recorder must reproduce.
	var want []string
	{
		rt, err := runtime.NewWithOptions(plan, cfg, runtime.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w.Gen.Windows(); i++ {
			want = append(want, perQueryCounts(rt.ProcessWindow(w.Frames(i))))
		}
	}

	for _, workers := range []int{0, 1, 2, 8} {
		rt, err := runtime.NewWithOptions(plan, cfg, runtime.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rec := flightrec.New(2*w.Gen.Windows(), nil)
		rt.AttachFlightRecorder(rec)
		for i := 0; i < w.Gen.Windows(); i++ {
			rep := rt.ProcessWindow(w.Frames(i))
			s := rec.Snapshot(0)
			if s.Window != rep.Index {
				t.Fatalf("workers=%d: snapshot window %d after report %d", workers, s.Window, rep.Index)
			}
			got := recordCounts(s.Queries)
			if got != want[i] {
				t.Errorf("workers=%d window %d: recorder tuple counts diverge from sequential report\n--- recorder\n%s--- sequential\n%s",
					workers, i, got, want[i])
			}
			// Switch-side counters: summing the records must reproduce the
			// window's WindowStats exactly, at every worker count.
			var tuples, mirrored, collisions, dumps, mirrorBytes, results uint64
			for _, r := range s.Queries {
				tuples += r.TuplesToSP
				mirrored += r.Mirrored
				collisions += r.Collisions
				dumps += r.DumpTuples
				mirrorBytes += r.MirrorBytes
				results += r.Results
				if r.PacketsIn != rep.Switch.PacketsIn {
					t.Errorf("workers=%d window %d q%d/%d: packetsIn %d, report %d",
						workers, i, r.QID, r.Level, r.PacketsIn, rep.Switch.PacketsIn)
				}
			}
			if tuples != rep.TuplesToSP {
				t.Errorf("workers=%d window %d: recorder tuples %d, report %d", workers, i, tuples, rep.TuplesToSP)
			}
			if mirrored != rep.Switch.Mirrored || collisions != rep.Switch.Collisions || dumps != rep.Switch.DumpTuples {
				t.Errorf("workers=%d window %d: recorder switch counters %d/%d/%d, report %d/%d/%d",
					workers, i, mirrored, collisions, dumps,
					rep.Switch.Mirrored, rep.Switch.Collisions, rep.Switch.DumpTuples)
			}
			if mirrored > 0 && mirrorBytes == 0 {
				t.Errorf("workers=%d window %d: %d mirrors but no bytes attributed", workers, i, mirrored)
			}
			var reported uint64
			for _, res := range rep.AllResults {
				reported += uint64(len(res.Tuples))
			}
			if results != reported {
				t.Errorf("workers=%d window %d: recorder results %d, report %d", workers, i, results, reported)
			}
		}
	}
}

// TestFlightRecBusyAttribution: on a sharded runtime, busy time attributed
// to instances must stay within each window's total shard busy time.
func TestFlightRecBusyAttribution(t *testing.T) {
	g, train := buildFloodTrace(t, 6000, 6, 0)
	qs := queries.TopEight(eval.ScaledParams(eval.SmallScale()))
	cfg := pisa.DefaultConfig()
	plan := planAll(t, qs, train, cfg)
	rt, err := runtime.NewWithOptions(plan, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := flightrec.New(8, nil)
	rt.AttachFlightRecorder(rec)
	sawBusy := false
	for i := 0; i < g.Windows(); i++ {
		rep := rt.ProcessWindow(framesWin(g, i))
		var total time.Duration
		for _, b := range rep.ShardBusy {
			total += b
		}
		var attributed int64
		for _, r := range rec.Snapshot(0).Queries {
			if r.BusyNS < 0 {
				t.Fatalf("window %d: negative busy %d", i, r.BusyNS)
			}
			attributed += r.BusyNS
		}
		if attributed > total.Nanoseconds() {
			t.Errorf("window %d: attributed %dns exceeds shard busy %dns", i, attributed, total.Nanoseconds())
		}
		if attributed > 0 {
			sawBusy = true
		}
	}
	if !sawBusy {
		t.Error("no window attributed any busy time on a sharded runtime")
	}
}

// TestFlightRecDriftDetectsPlanStaleness trains the planner on calm
// background traffic, then replays windows where a SYN flood starts after
// training. The flood's extra work is invisible to EstWork (trained
// pre-flood), so the drift ratio of the flood-facing query must climb above
// 1 while it sat near 1 on the calm windows — exactly the signal an
// operator uses to decide the plan is stale.
func TestFlightRecDriftDetectsPlanStaleness(t *testing.T) {
	const windows = 8
	// Flood begins at window 4; windows 0-1 train, 2-3 replay calm.
	g, train := buildFloodTrace(t, 6000, windows, 4)
	qs := []*query.Query{floodQuery(100)}
	cfg := pisa.DefaultConfig()
	plan := planAll(t, qs, train, cfg)
	rt, err := runtime.New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := flightrec.New(windows, nil)
	rt.AttachFlightRecorder(rec)

	maxAt := func(s flightrec.Snapshot) float64 {
		var max float64
		for _, r := range s.Queries {
			if r.Drift > max {
				max = r.Drift
			}
		}
		return max
	}
	var calm, flooded float64
	for i := 2; i < windows; i++ {
		rt.ProcessWindow(framesWin(g, i))
		d := maxAt(rec.Snapshot(0))
		if i == 3 {
			calm = d
		}
		if d > flooded {
			flooded = d
		}
	}
	if calm > 1.5 {
		t.Errorf("calm-window drift %.2f, want near 1 (plan freshly trained)", calm)
	}
	if flooded < 1.2 {
		t.Errorf("max drift %.2f after flood onset, want > 1.2 (plan visibly stale)", flooded)
	}
	if flooded <= calm {
		t.Errorf("drift did not move: calm %.2f, flooded %.2f", calm, flooded)
	}
}

// TestMetricsLint instruments a full deployment — runtime (switch, stream,
// emitter), flight recorder — into one registry and runs the metric-naming
// lint over it. This is the test `make check-metrics` executes.
func TestMetricsLint(t *testing.T) {
	g, train := buildFloodTrace(t, 4000, 4, 0)
	qs := queries.TopEight(eval.ScaledParams(eval.SmallScale()))
	cfg := pisa.DefaultConfig()
	plan := planAll(t, qs, train, cfg)
	rt, err := runtime.NewWithOptions(plan, cfg, runtime.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(io.Discard)
	tracer.Instrument(reg)
	tz := tracez.New(tracez.Options{JSONL: tracer})
	tz.Instrument(reg)
	rt.Instrument(reg, tz)
	rec := flightrec.New(4, nil)
	rec.Instrument(reg)
	rec.AttachTraceIndex(tz.Has)
	rt.AttachFlightRecorder(rec)
	rt.ProcessWindow(framesWin(g, 2))
	for _, problem := range reg.Lint() {
		t.Errorf("metric lint: %s", problem)
	}
}

// buildFloodTrace generates a deterministic trace whose SYN flood starts at
// window floodStart (0 floods the whole trace) and returns two training
// windows. With floodStart >= 2 the training windows see only background
// traffic, so the trained plan underestimates flood-window work.
func buildFloodTrace(t *testing.T, pkts, windows, floodStart int) (*trace.Generator, []planner.Frames) {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.PacketsPerWindow = pkts
	cfg.Windows = windows
	cfg.Hosts = 600
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Duration(floodStart) * cfg.Window
	g.AddAttack(trace.NewSYNFlood(trace.StandardVictim, 64, pkts/4, start, g.Duration()))
	var train []planner.Frames
	for i := 0; i < 2; i++ {
		train = append(train, planner.Frames(framesWin(g, i)))
	}
	return g, train
}

func framesWin(g *trace.Generator, i int) [][]byte {
	w := g.WindowRecords(i)
	frames := make([][]byte, len(w.Records))
	for j, r := range w.Records {
		frames[j] = r.Data
	}
	return frames
}

func floodQuery(th uint64) *query.Query {
	q := query.NewBuilder("newly_opened_tcp_conns", 3*time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, th)).
		MustBuild()
	q.ID = 1
	return q
}

func planAll(t *testing.T, qs []*query.Query, train []planner.Frames, cfg pisa.Config) *planner.Plan {
	t.Helper()
	tr, err := planner.Train(qs, []int{8, 16, 24}, train)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.PlanQueries(tr, qs, cfg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}
