package runtime

import (
	"fmt"
	"testing"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/query"
	"repro/internal/trace"
)

// TestSonataNeverMissesAcrossSeeds is the accuracy property behind the
// whole design: for varied workloads, the partitioned + refined plan must
// report every key the all-at-the-stream-processor plan reports (once its
// refinement pipeline has warmed up). Run over several seeds and queries so
// the property is exercised on traffic the thresholds were not tuned
// against.
func TestSonataNeverMissesAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence is slow")
	}
	p := queries.DefaultParams()
	p.NewTCPThresh = 150
	p.SpreaderThresh = 120
	p.DDoSThresh = 150
	mk := []func(queries.Params) *query.Query{
		queries.NewlyOpenedTCPConns,
		queries.Superspreader,
		queries.DDoS,
	}
	for seed := int64(1); seed <= 3; seed++ {
		for qi, make := range mk {
			q := make(p)
			q.ID = uint16(qi + 1)
			t.Run(fmt.Sprintf("seed%d/%s", seed, q.Name), func(t *testing.T) {
				cfg := trace.DefaultConfig()
				cfg.Seed = seed
				cfg.PacketsPerWindow = 5_000
				cfg.Windows = 6
				cfg.Hosts = 600
				g, err := trace.NewGenerator(cfg)
				if err != nil {
					t.Fatal(err)
				}
				trace.StandardAttackSuite(g)

				var train []planner.Frames
				for i := 0; i < 2; i++ {
					train = append(train, planner.Frames(framesOf(g.WindowRecords(i))))
				}
				tr, err := planner.Train([]*query.Query{q}, []int{8, 16, 24}, train)
				if err != nil {
					t.Fatal(err)
				}
				swCfg := pisa.DefaultConfig()

				run := func(mode planner.Mode) (map[uint64]bool, int) {
					opts := planner.DefaultOptions()
					opts.Mode = mode
					plan, err := planner.PlanQueries(tr, []*query.Query{q}, swCfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					rt, err := New(plan, swCfg)
					if err != nil {
						t.Fatal(err)
					}
					delay := plan.Queries[0].Delay()
					found := map[uint64]bool{}
					for w := 2; w < g.Windows(); w++ {
						rep := rt.ProcessWindow(framesOf(g.WindowRecords(w)))
						// Skip the refinement warm-up windows.
						if w-2 < delay-1 {
							continue
						}
						for _, res := range rep.Results {
							for _, tup := range res.Tuples {
								found[tup[0].U] = true
							}
						}
					}
					return found, delay
				}

				allSP, _ := run(planner.ModeAllSP)
				sonata, delay := run(planner.ModeSonata)
				// Compare on windows both plans reported (beyond warm-up).
				missed := 0
				for k := range allSP {
					if !sonata[k] {
						missed++
						t.Errorf("sonata (delay %d) missed key %d", delay, k)
					}
				}
				if len(allSP) == 0 {
					t.Log("no detections this seed; property vacuous")
				}
			})
		}
	}
}
