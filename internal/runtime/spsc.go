package runtime

import (
	goruntime "runtime"
	"sync/atomic"
)

// shardMsg is one slot of a shard's inbound ring: a view batch, a window
// close, or a worker stop. A close may carry the window's final partial
// batch, so the tail frames and the close ride one handoff instead of two
// (near-empty batches no longer pay their own wake).
type shardMsg struct {
	batch *viewBatch
	kind  uint8
}

const (
	msgBatch uint8 = iota
	msgClose
	msgStop
)

// shardQueueDepth is each shard's ring capacity (a power of two). Deep
// enough that the parse-side producer stays ahead of a momentarily slow
// shard without stalling the other shards' feed, shallow enough that a
// window's batches don't pile up unprocessed past the close barrier.
const shardQueueDepth = 16

// spscRing is a single-producer single-consumer ring of shardMsgs: the
// runtime's dispatch goroutine pushes, one shard worker pops. head/tail are
// monotonic counters (masked into buf); the Go memory model's ordering on
// the atomic loads/stores publishes each slot's contents to the other side,
// so the slots themselves need no synchronization. The consumer spins
// briefly when empty, then parks on the capacity-1 wake channel; the
// producer rings the doorbell only when it observes a parked consumer, so
// the steady-state handoff is two atomics and no channel operation — this
// is what replaced the depth-4 chan fan-out that ate the sharding dividend.
type spscRing struct {
	buf    []shardMsg
	mask   uint64
	head   atomic.Uint64 // next slot the consumer reads
	tail   atomic.Uint64 // next slot the producer writes
	parked atomic.Bool   // consumer parked on wake
	full   atomic.Bool   // producer parked on space
	wake   chan struct{}
	space  chan struct{}
}

func (q *spscRing) init(depth int) {
	q.buf = make([]shardMsg, depth)
	q.mask = uint64(depth - 1)
	q.wake = make(chan struct{}, 1)
	q.space = make(chan struct{}, 1)
}

// push enqueues m, parking when the ring stays full (backpressure: the
// parser must not run more than a ring ahead of the slowest shard, and
// spinning here would steal the core that slowest shard needs). The same
// flag/doorbell protocol as pop, mirrored.
func (q *spscRing) push(m shardMsg) {
	t := q.tail.Load()
	for spin := 0; t-q.head.Load() == uint64(len(q.buf)); {
		if spin < 4 {
			spin++
			goruntime.Gosched()
			continue
		}
		q.full.Store(true)
		if t-q.head.Load() != uint64(len(q.buf)) {
			q.full.Store(false)
			break
		}
		<-q.space
		q.full.Store(false)
	}
	q.buf[t&q.mask] = m
	q.tail.Store(t + 1)
	if q.parked.Load() {
		select {
		case q.wake <- struct{}{}:
		default:
		}
	}
}

// pop dequeues the next message, spinning briefly then parking when the
// ring is empty. The parked flag is set before the final emptiness check,
// so a producer that misses the flag must have published its slot first
// (both sides use sequentially consistent atomics) and the recheck sees it;
// a producer that sees the flag rings the doorbell. A stale doorbell token
// from an earlier near-miss only costs one extra loop iteration.
func (q *spscRing) pop() shardMsg {
	h := q.head.Load()
	for spin := 0; ; spin++ {
		if q.tail.Load() != h {
			m := q.buf[h&q.mask]
			q.buf[h&q.mask] = shardMsg{} // drop the batch reference for GC
			q.head.Store(h + 1)
			if q.full.Load() {
				select {
				case q.space <- struct{}{}:
				default:
				}
			}
			return m
		}
		if spin < 4 {
			goruntime.Gosched()
			continue
		}
		q.parked.Store(true)
		if q.tail.Load() != h {
			q.parked.Store(false)
			continue
		}
		<-q.wake
		q.parked.Store(false)
	}
}
