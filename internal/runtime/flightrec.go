package runtime

import (
	"fmt"

	"repro/internal/flightrec"
	"repro/internal/query"
	"repro/internal/stream"
)

// AttachFlightRecorder wires a flight recorder into the deployment: one
// probe per installed (query, level) instance, fed by the switch (per-stage
// packet counts, collisions, mirrors, register occupancy), the emitter
// (encoded byte volume), the engine (tuples in, per-stage SP counts, eval
// time), and the runtime itself (refinement transitions, window commit).
// The recorder is Reset first, so a recorder reused across deployments
// always reflects the live one. A nil recorder detaches.
func (r *Runtime) AttachFlightRecorder(rec *flightrec.Recorder) {
	r.flight = rec
	r.frProbes = nil
	var lookup func(qid uint16, level uint8) *flightrec.Probe
	if rec != nil {
		rec.Reset()
		refFrom := make(map[stream.QueryKey]int, len(r.links))
		for _, l := range r.links {
			refFrom[stream.QueryKey{QID: l.qid, Level: l.to}] = int(l.from)
		}
		r.frProbes = make(map[stream.QueryKey]*flightrec.Probe, len(r.infos))
		for _, in := range r.infos {
			stages, nLeft, nRight := stageInfos(in.aug, in.part)
			from, ok := refFrom[in.key]
			if !ok {
				from = -1
			}
			r.frProbes[in.key] = rec.Track(flightrec.TrackConfig{
				QID:     in.key.QID,
				Level:   in.key.Level,
				Shard:   r.owner[in.key], // zero for the sequential runtime
				EstWork: uint64(in.cost),
				RefFrom: from,
				NumLeft: nLeft, NumRight: nRight,
				Stages: stages,
			})
		}
		probes := r.frProbes
		lookup = func(qid uint16, level uint8) *flightrec.Probe {
			return probes[stream.QueryKey{QID: qid, Level: level}]
		}
	}
	r.frLookup = lookup
	// A sink installed before the recorder gets its probes now (and loses
	// them when the recorder detaches); SetResultSink covers the other order.
	if a, ok := r.sink.(FlightRecAttacher); ok {
		a.AttachFlightRec(lookup)
	}
	if len(r.shards) > 0 {
		for _, s := range r.shards {
			s.sw.AttachFlightRec(lookup)
			s.engine.AttachFlightRec(lookup)
			s.em.AttachFlightRec(lookup)
		}
		return
	}
	r.sw.AttachFlightRec(lookup)
	r.engine.AttachFlightRec(lookup)
	r.em.AttachFlightRec(lookup)
}

// stageInfos flattens one augmented query into the probe's global stage
// list: left ops, then right, then post-join, mirroring the engine's and
// switch's stage indexing.
func stageInfos(q *query.Query, part stream.Partition) (stages []flightrec.StageInfo, nLeft, nRight int) {
	nLeft = len(q.Left.Ops)
	for i := range q.Left.Ops {
		stages = append(stages, stageInfo(&q.Left.Ops[i], 'L', i, i < part.LeftStart, 0))
	}
	if q.HasJoin() {
		nRight = len(q.Right.Ops)
		for i := range q.Right.Ops {
			stages = append(stages, stageInfo(&q.Right.Ops[i], 'R', i, i < part.RightStart, 1))
		}
		for i := range q.Post.Ops {
			stages = append(stages, stageInfo(&q.Post.Ops[i], 'P', i, false, 2))
		}
	}
	return stages, nLeft, nRight
}

func stageInfo(o *query.Op, seg byte, idx int, onSwitch bool, segNo int) flightrec.StageInfo {
	kind := o.Kind.String()
	if o.DynFilterTable != "" {
		kind = "dynfilter"
	}
	where := "sp"
	if onSwitch {
		where = "sw"
	}
	return flightrec.StageInfo{
		Label:    fmt.Sprintf("%c%d %s@%s", seg, idx, kind, where),
		Kind:     kind,
		Stateful: o.Stateful(),
		OnSwitch: onSwitch,
		Seg:      segNo,
	}
}
