package runtime

import (
	"bytes"
	"testing"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/telemetry"
	"repro/internal/tracez"
)

// TestRegistryMatchesWindowReports is the consistency contract: after a
// multi-window run, the cumulative registry counters must equal the sums of
// the per-window WindowReport fields — both views come from the same
// increments, so any drift is a bug.
func TestRegistryMatchesWindowReports(t *testing.T) {
	g, train := buildWorkload(t, 5000, 5)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeSonata)
	rt, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rt.Instrument(reg, nil)

	var tuplesToSP, packets, collisions uint64
	var filterUpdates, windows uint64
	for w := 0; w < g.Windows(); w++ {
		rep := rt.ProcessWindow(framesOf(g.WindowRecords(w)))
		tuplesToSP += rep.TuplesToSP
		packets += rep.Switch.PacketsIn
		collisions += rep.Switch.Collisions
		filterUpdates += uint64(rep.FilterUpdates)
		windows++
	}
	if tuplesToSP == 0 {
		t.Fatal("workload produced no tuples; test is vacuous")
	}

	s := reg.Snapshot()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"sonata_runtime_tuples_to_sp_total", s.Counter("sonata_runtime_tuples_to_sp_total"), tuplesToSP},
		{"sonata_stream_tuples_in_total", s.Counter("sonata_stream_tuples_in_total"), tuplesToSP},
		{"sonata_runtime_windows_total", s.Counter("sonata_runtime_windows_total"), windows},
		{"sonata_runtime_filter_updates_total", s.Counter("sonata_runtime_filter_updates_total"), filterUpdates},
		{"sonata_switch_packets_total", s.Counter("sonata_switch_packets_total"), packets},
		{"sonata_switch_collisions_total", s.Counter("sonata_switch_collisions_total"), collisions},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (sum of WindowReports)", c.name, c.got, c.want)
		}
	}

	// The per-query breakdown must also total to the engine-wide counter.
	if got := s.CounterSum("sonata_stream_query_tuples_in_total{"); got != tuplesToSP {
		t.Errorf("per-query tuple counters sum to %d, want %d", got, tuplesToSP)
	}
	// Window timing: one observation per window, non-zero total.
	hv := s.Histograms["sonata_runtime_window_ns"]
	if hv.Count != windows {
		t.Errorf("window_ns count = %d, want %d", hv.Count, windows)
	}
	if hv.Sum == 0 {
		t.Error("window_ns sum = 0; windows cannot take zero time")
	}
	if got := s.Gauges["sonata_runtime_window_index"]; got != int64(windows-1) {
		t.Errorf("window_index = %d, want %d", got, windows-1)
	}
}

// TestTracerSpansPerWindow runs a few windows with the JSONL exporter
// attached to the trace buffer and asserts the back-compat contract: each
// processed window emits exactly one legacy span per pipeline stage, with
// non-zero durations, and the stream round-trips through encoding/json.
func TestTracerSpansPerWindow(t *testing.T) {
	g, train := buildWorkload(t, 4000, 4)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeSonata)
	rt, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := telemetry.NewTracer(&buf)
	tz := tracez.New(tracez.Options{JSONL: tracer, HeadEvery: -1})
	rt.Instrument(nil, tz) // nil registry: tracing works standalone

	const nWindows = 3
	for w := 0; w < nWindows; w++ {
		rt.ProcessWindow(framesOf(g.WindowRecords(w)))
	}
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}

	spans, err := telemetry.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Per window: switch_pass, emitter_decode, stream_eval, filter_update.
	// (trace_slice is emitted by the caller that assembles the input.)
	wantStages := []string{
		telemetry.StageSwitchPass, telemetry.StageEmitterDecode,
		telemetry.StageStreamEval, telemetry.StageFilterUpdate,
	}
	if len(spans) != nWindows*len(wantStages) {
		t.Fatalf("got %d spans, want %d (%d windows x %d stages)",
			len(spans), nWindows*len(wantStages), nWindows, len(wantStages))
	}
	perWindow := map[int]map[string]int{}
	for _, s := range spans {
		if s.DurationNS <= 0 {
			t.Errorf("span %s window %d has duration %d, want > 0", s.Stage, s.Window, s.DurationNS)
		}
		if perWindow[s.Window] == nil {
			perWindow[s.Window] = map[string]int{}
		}
		perWindow[s.Window][s.Stage]++
	}
	for w := 0; w < nWindows; w++ {
		for _, stage := range wantStages {
			if perWindow[w][stage] != 1 {
				t.Errorf("window %d stage %s: %d spans, want exactly 1", w, stage, perWindow[w][stage])
			}
		}
	}
}

// TestInstrumentNilSafe makes sure an uninstrumented runtime (the default)
// and a nil-registry instrumentation both process windows normally.
func TestInstrumentNilSafe(t *testing.T) {
	g, train := buildWorkload(t, 3000, 3)
	qs := []*query.Query{q1(100)}
	cfg := pisa.DefaultConfig()
	plan := planFor(t, qs, train, cfg, planner.ModeSonata)
	rt, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Instrument(nil, nil)
	rep := rt.ProcessWindow(framesOf(g.WindowRecords(2)))
	if rep.Switch.PacketsIn == 0 {
		t.Fatal("window did not process")
	}
}

func TestKeyFingerprint(t *testing.T) {
	a := keyFingerprint([]string{"b", "a", "c"})
	b := keyFingerprint([]string{"c", "b", "a"})
	if a != b {
		t.Error("fingerprint must be order-independent")
	}
	if keyFingerprint(nil) != "" {
		t.Error("empty key set must fingerprint to empty string")
	}
	if keyFingerprint([]string{"a"}) == keyFingerprint([]string{"b"}) {
		t.Error("distinct key sets must differ")
	}
}
