package runtime_test

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/queries"
	"repro/internal/runtime"
)

// lifecyclePlan builds a small multi-query plan shared by the persistent-
// worker lifecycle tests below. They run under the race detector via the
// `race` target in make check, so every path they take — zero-frame closes,
// mid-window Close, degraded inline processing — is exercised against the
// worker goroutines' ring and barrier synchronization.
func lifecyclePlan(t *testing.T) (*eval.Workload, *planner.Plan, pisa.Config) {
	t.Helper()
	scale := eval.SmallScale()
	w, err := eval.NewWorkload(scale)
	if err != nil {
		t.Fatal(err)
	}
	qs := queries.TopEight(eval.ScaledParams(scale))
	tr, err := planner.Train(qs, []int{8, 16, 24}, w.TrainingFrames())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisa.DefaultConfig()
	plan, err := planner.PlanQueries(tr, qs, cfg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return w, plan, cfg
}

func newLifecycleRuntime(t *testing.T, plan *planner.Plan, cfg pisa.Config, workers int) *runtime.Runtime {
	t.Helper()
	rt, err := runtime.NewWithOptions(plan, cfg, runtime.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestShardedZeroFrameWindows closes windows that saw no frames — before any
// traffic, between two real windows, and several in a row — and requires the
// sharded runtime's reports to match the batched sequential runtime's for the
// same schedule. A zero-frame close still runs the full barrier (every worker
// executes EndWindow on its shard), so under -race this doubles as a check
// that an empty epoch leaves no shard state behind.
func TestShardedZeroFrameWindows(t *testing.T) {
	w, plan, cfg := lifecyclePlan(t)

	run := func(workers int) []string {
		rt := newLifecycleRuntime(t, plan, cfg, workers)
		defer rt.Close()
		var snaps []string
		snap := func() { snaps = append(snaps, snapshotReport(rt.CloseWindow())) }
		snap() // zero-frame window before any traffic
		for _, f := range w.Frames(0) {
			rt.Process(f)
		}
		snap() // real window
		snap() // zero-frame window between real windows
		snap()
		snap() // consecutive zero-frame windows
		for _, f := range w.Frames(1) {
			rt.Process(f)
		}
		snap() // real window after the empty run
		return snaps
	}

	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d window %d diverged:\n--- sequential\n%s\n--- sharded\n%s",
					workers, i, want[i], got[i])
			}
		}
	}
}

// TestShardedCloseMidWindow stops the persistent workers halfway through a
// window. The contract: frames already pushed are fully processed before the
// workers exit, the rest of the window runs inline on the caller, and the
// window's report is bit-identical to one from a runtime that was never
// closed. Close must also be safe to repeat and after-close windows must
// keep producing correct (degraded, single-threaded) reports.
func TestShardedCloseMidWindow(t *testing.T) {
	w, plan, cfg := lifecyclePlan(t)

	baseline := func() []string {
		rt := newLifecycleRuntime(t, plan, cfg, 4)
		defer rt.Close()
		var snaps []string
		for i := 0; i < 2; i++ {
			for _, f := range w.Frames(i) {
				rt.Process(f)
			}
			snaps = append(snaps, snapshotReport(rt.CloseWindow()))
		}
		return snaps
	}()

	rt := newLifecycleRuntime(t, plan, cfg, 4)
	frames := w.Frames(0)
	for _, f := range frames[:len(frames)/2] {
		rt.Process(f)
	}
	rt.Close() // mid-window: workers drain their rings and exit
	rt.Close() // repeat must be a no-op
	for _, f := range frames[len(frames)/2:] {
		rt.Process(f)
	}
	if got := snapshotReport(rt.CloseWindow()); got != baseline[0] {
		t.Errorf("window spanning Close diverged:\n--- never closed\n%s\n--- closed mid-window\n%s",
			baseline[0], got)
	}
	// The runtime stays usable after Close: subsequent windows run inline.
	for _, f := range w.Frames(1) {
		rt.Process(f)
	}
	if got := snapshotReport(rt.CloseWindow()); got != baseline[1] {
		t.Errorf("window after Close diverged:\n--- never closed\n%s\n--- degraded\n%s",
			baseline[1], got)
	}
	rt.Close()
}

// TestShardedBackToBackCloseWindow hammers the close barrier: many
// CloseWindow calls with no Process in between, racing each epoch's
// close/merge against the previous one's worker-side reset, then a real
// window to prove the pipeline state survived.
func TestShardedBackToBackCloseWindow(t *testing.T) {
	w, plan, cfg := lifecyclePlan(t)

	run := func(workers int) []string {
		rt := newLifecycleRuntime(t, plan, cfg, workers)
		defer rt.Close()
		var snaps []string
		for _, f := range w.Frames(0) {
			rt.Process(f)
		}
		snaps = append(snaps, snapshotReport(rt.CloseWindow()))
		for i := 0; i < 16; i++ {
			snaps = append(snaps, snapshotReport(rt.CloseWindow()))
		}
		for _, f := range w.Frames(1) {
			rt.Process(f)
		}
		snaps = append(snaps, snapshotReport(rt.CloseWindow()))
		return snaps
	}

	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d snapshot %d diverged:\n--- sequential\n%s\n--- sharded\n%s",
					workers, i, want[i], got[i])
			}
		}
	}
}
