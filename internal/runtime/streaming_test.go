package runtime

import (
	"testing"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
	"repro/internal/telemetry"
)

// TestStreamingAPIMatchesBatch checks that feeding frames one at a time via
// Process + CloseWindow produces the same report as ProcessWindow — the
// runtime must not care how the window's packets arrive.
func TestStreamingAPIMatchesBatch(t *testing.T) {
	g, train := buildWorkload(t, 4000, 4)
	plan := planFor(t, []*query.Query{q1(100)}, train, pisa.DefaultConfig(), planner.ModeSonata)

	batch, err := New(plan, pisa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := New(plan, pisa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for w := 2; w < g.Windows(); w++ {
		frames := framesOf(g.WindowRecords(w))
		repA := batch.ProcessWindow(frames)
		for _, f := range frames {
			streaming.Process(f)
		}
		repB := streaming.CloseWindow()
		if repA.TuplesToSP != repB.TuplesToSP {
			t.Errorf("window %d: tuples %d vs %d", w, repA.TuplesToSP, repB.TuplesToSP)
		}
		if len(repA.Results) != len(repB.Results) {
			t.Errorf("window %d: results %d vs %d", w, len(repA.Results), len(repB.Results))
		}
		if repA.Switch.PacketsIn != repB.Switch.PacketsIn {
			t.Errorf("window %d: packets %d vs %d", w, repA.Switch.PacketsIn, repB.Switch.PacketsIn)
		}
	}
}

// TestStreamingShardedMatchesBatch repeats the streaming contract against a
// sharded runtime: frames fed one at a time through the fan-out path must
// close to the same report as the sequential batch runtime.
func TestStreamingShardedMatchesBatch(t *testing.T) {
	g, train := buildWorkload(t, 4000, 4)
	plan := planFor(t, []*query.Query{q1(100)}, train, pisa.DefaultConfig(), planner.ModeSonata)

	batch, err := New(plan, pisa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := NewWithOptions(plan, pisa.DefaultConfig(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for w := 2; w < g.Windows(); w++ {
		frames := framesOf(g.WindowRecords(w))
		repA := batch.ProcessWindow(frames)
		for _, f := range frames {
			streaming.Process(f)
		}
		repB := streaming.CloseWindow()
		if repA.TuplesToSP != repB.TuplesToSP {
			t.Errorf("window %d: tuples %d vs %d", w, repA.TuplesToSP, repB.TuplesToSP)
		}
		if len(repA.Results) != len(repB.Results) {
			t.Errorf("window %d: results %d vs %d", w, len(repA.Results), len(repB.Results))
		}
		if repA.Switch.PacketsIn != repB.Switch.PacketsIn {
			t.Errorf("window %d: packets %d vs %d", w, repA.Switch.PacketsIn, repB.Switch.PacketsIn)
		}
		if repA.EmitterFrames != repB.EmitterFrames {
			t.Errorf("window %d: emitter frames %d vs %d", w, repA.EmitterFrames, repB.EmitterFrames)
		}
	}
}

// TestStreamingWindowHistogramAnchoring pins the windowNS contract for
// streaming use: the duration measurement anchors at the first Process call
// of each window, one observation lands per closed window, and a window
// closed without any frames contributes no observation (there is no start
// to measure from) while still counting as a window.
func TestStreamingWindowHistogramAnchoring(t *testing.T) {
	g, train := buildWorkload(t, 3000, 4)
	plan := planFor(t, []*query.Query{q1(100)}, train, pisa.DefaultConfig(), planner.ModeSonata)

	for _, workers := range []int{1, 4} {
		rt, err := NewWithOptions(plan, pisa.DefaultConfig(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		rt.Instrument(reg, nil)

		const nWindows = 2
		for w := 0; w < nWindows; w++ {
			for _, f := range framesOf(g.WindowRecords(w)) {
				rt.Process(f)
			}
			rt.CloseWindow()
		}
		// An empty window: no frames, so no duration anchor.
		rt.CloseWindow()

		s := reg.Snapshot()
		hv := s.Histograms["sonata_runtime_window_ns"]
		if hv.Count != nWindows {
			t.Errorf("workers=%d: window_ns count = %d, want %d (empty window must not observe)",
				workers, hv.Count, nWindows)
		}
		if hv.Sum == 0 {
			t.Errorf("workers=%d: window_ns sum = 0; streamed windows cannot take zero time", workers)
		}
		if got := s.Counter("sonata_runtime_windows_total"); got != nWindows+1 {
			t.Errorf("workers=%d: windows_total = %d, want %d (empty window still closes)",
				workers, got, nWindows+1)
		}
	}
}
