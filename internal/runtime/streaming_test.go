package runtime

import (
	"testing"

	"repro/internal/pisa"
	"repro/internal/planner"
	"repro/internal/query"
)

// TestStreamingAPIMatchesBatch checks that feeding frames one at a time via
// Process + CloseWindow produces the same report as ProcessWindow — the
// runtime must not care how the window's packets arrive.
func TestStreamingAPIMatchesBatch(t *testing.T) {
	g, train := buildWorkload(t, 4000, 4)
	plan := planFor(t, []*query.Query{q1(100)}, train, pisa.DefaultConfig(), planner.ModeSonata)

	batch, err := New(plan, pisa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := New(plan, pisa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for w := 2; w < g.Windows(); w++ {
		frames := framesOf(g.WindowRecords(w))
		repA := batch.ProcessWindow(frames)
		for _, f := range frames {
			streaming.Process(f)
		}
		repB := streaming.CloseWindow()
		if repA.TuplesToSP != repB.TuplesToSP {
			t.Errorf("window %d: tuples %d vs %d", w, repA.TuplesToSP, repB.TuplesToSP)
		}
		if len(repA.Results) != len(repB.Results) {
			t.Errorf("window %d: results %d vs %d", w, len(repA.Results), len(repB.Results))
		}
		if repA.Switch.PacketsIn != repB.Switch.PacketsIn {
			t.Errorf("window %d: packets %d vs %d", w, repA.Switch.PacketsIn, repB.Switch.PacketsIn)
		}
	}
}
