// Package ilp implements a 0/1 integer linear program solver by branch and
// bound over LP relaxations (package lp). It fills the role Gurobi plays in
// the paper's query planner: Section 6.1 notes the authors capped Gurobi at
// 20 minutes and accepted the best incumbent; this solver takes the same
// time-budgeted, best-incumbent approach.
package ilp

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
)

// Problem is a minimization ILP. Variables listed in Binary must take
// values in {0,1}; the rest are continuous and non-negative.
type Problem struct {
	// C is the objective; its length fixes the variable count.
	C           []float64
	Constraints []lp.Constraint
	// Binary marks 0/1 variables by index.
	Binary []int
}

// Options tune the search.
type Options struct {
	// TimeBudget bounds the wall-clock search time; zero means 5 seconds.
	TimeBudget time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes; zero means 1e6.
	MaxNodes int
}

// Status classifies the solve outcome.
type Status uint8

const (
	// Optimal: the search closed the tree; the incumbent is optimal.
	Optimal Status = iota
	// Feasible: budget exhausted with an incumbent in hand (the paper's
	// "best possibly sub-optimal solution within 20 minutes").
	Feasible
	// Infeasible: no integer point satisfies the constraints.
	Infeasible
	// Unknown: the budget ran out before any integer point was found, with
	// subproblems still open — the instance may or may not be feasible.
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible(budget)"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown(budget)"
	}
}

// Solution is the solver's result.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int
}

const intTol = 1e-6

// Solve runs best-first branch and bound.
func Solve(p *Problem, opts Options) (Solution, error) {
	if opts.TimeBudget <= 0 {
		opts.TimeBudget = 5 * time.Second
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 1_000_000
	}
	for _, b := range p.Binary {
		if b < 0 || b >= len(p.C) {
			return Solution{}, fmt.Errorf("ilp: binary index %d out of range", b)
		}
	}
	isBin := make([]bool, len(p.C))
	for _, b := range p.Binary {
		isBin[b] = true
	}

	s := &search{prob: p, isBin: isBin, deadline: time.Now().Add(opts.TimeBudget),
		maxNodes: opts.MaxNodes, bestObj: math.Inf(1)}

	root := node{fixed: map[int]float64{}}
	s.expand(root)
	for len(s.heap) > 0 && s.nodes < s.maxNodes {
		if time.Now().After(s.deadline) {
			break
		}
		nd := s.pop()
		if nd.bound >= s.bestObj-1e-9 {
			continue // pruned
		}
		s.branch(nd)
	}

	switch {
	case s.bestX == nil:
		if len(s.heap) == 0 && s.nodes < s.maxNodes {
			// The tree closed without an integer point: proven infeasible.
			return Solution{Status: Infeasible, Nodes: s.nodes}, nil
		}
		return Solution{Status: Unknown, Nodes: s.nodes}, nil
	case len(s.heap) == 0:
		return Solution{Status: Optimal, X: s.bestX, Objective: s.bestObj, Nodes: s.nodes}, nil
	default:
		return Solution{Status: Feasible, X: s.bestX, Objective: s.bestObj, Nodes: s.nodes}, nil
	}
}

// node is one branch-and-bound subproblem: a set of fixed binary variables.
type node struct {
	fixed map[int]float64
	bound float64
	relax []float64
}

type search struct {
	prob     *Problem
	isBin    []bool
	deadline time.Time
	maxNodes int

	heap    []node
	nodes   int
	bestObj float64
	bestX   []float64
}

// expand solves the node's LP relaxation and either records an incumbent,
// prunes, or queues the node for branching.
func (s *search) expand(nd node) {
	s.nodes++
	sol, err := lp.Solve(s.relaxation(nd.fixed))
	if err != nil || sol.Status != lp.Optimal {
		return // infeasible or unbounded subtree
	}
	if sol.Objective >= s.bestObj-1e-9 {
		return // bound prune
	}
	if j := s.fractional(sol.X); j < 0 {
		// Integer feasible: new incumbent.
		s.bestObj = sol.Objective
		s.bestX = append([]float64(nil), sol.X...)
		return
	}
	nd.bound = sol.Objective
	nd.relax = sol.X
	s.push(nd)
}

// branch splits on the most fractional binary variable.
func (s *search) branch(nd node) {
	j := s.fractional(nd.relax)
	if j < 0 {
		return
	}
	for _, v := range []float64{s.roundDir(nd.relax[j]), 1 - s.roundDir(nd.relax[j])} {
		child := node{fixed: make(map[int]float64, len(nd.fixed)+1)}
		for k, fv := range nd.fixed {
			child.fixed[k] = fv
		}
		child.fixed[j] = v
		s.expand(child)
	}
}

func (s *search) roundDir(v float64) float64 {
	if v >= 0.5 {
		return 1
	}
	return 0
}

// fractional returns the most fractional binary index, or -1 when all
// binaries are integral.
func (s *search) fractional(x []float64) int {
	best, bestDist := -1, intTol
	for j := range x {
		if !s.isBin[j] {
			continue
		}
		f := math.Abs(x[j] - math.Round(x[j]))
		if f > bestDist {
			// Prefer the variable closest to 0.5.
			d := math.Abs(x[j] - 0.5)
			if best < 0 || d < math.Abs(x[best]-0.5) {
				best = j
			}
		}
	}
	return best
}

// relaxation builds the node's LP: the base constraints, 0<=x<=1 for
// binaries, and equality pins for fixed variables.
func (s *search) relaxation(fixed map[int]float64) *lp.Problem {
	p := &lp.Problem{C: s.prob.C}
	p.Constraints = append(p.Constraints, s.prob.Constraints...)
	for j, bin := range s.isBin {
		if !bin {
			continue
		}
		coef := make([]float64, j+1)
		coef[j] = 1
		if v, ok := fixed[j]; ok {
			p.Constraints = append(p.Constraints, lp.Constraint{Coef: coef, Rel: lp.EQ, RHS: v})
		} else {
			p.Constraints = append(p.Constraints, lp.Constraint{Coef: coef, Rel: lp.LE, RHS: 1})
		}
	}
	return p
}

// push/pop implement a best-bound priority queue (smallest bound first)
// via container/heap.
func (s *search) push(nd node) { heap.Push((*nodeHeap)(&s.heap), nd) }

func (s *search) pop() node { return heap.Pop((*nodeHeap)(&s.heap)).(node) }

type nodeHeap []node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	nd := old[n-1]
	*h = old[:n-1]
	return nd
}
