package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  => a=1,c=1 (17) vs b+c (20):
	// 4+2=6 fits, value 20. Optimal: b=1, c=1.
	p := &Problem{
		C: []float64{-10, -13, -7},
		Constraints: []lp.Constraint{
			{Coef: []float64{3, 4, 2}, Rel: lp.LE, RHS: 6},
		},
		Binary: []int{0, 1, 2},
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %+v %v", sol, err)
	}
	if math.Abs(sol.Objective+20) > 1e-6 {
		t.Fatalf("objective = %v (x=%v), want -20", sol.Objective, sol.X)
	}
	if math.Round(sol.X[1]) != 1 || math.Round(sol.X[2]) != 1 || math.Round(sol.X[0]) != 0 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestInfeasibleILP(t *testing.T) {
	// a + b = 1.5 with binary a, b has LP solutions but no integer ones...
	// actually a=1,b=0.5 is fractional-only; binaries cannot sum to 1.5.
	p := &Problem{
		C: []float64{1, 1},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1}, Rel: lp.EQ, RHS: 1.5},
		},
		Binary: []int{0, 1},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -y - 5b s.t. y <= 2 + 3b, y <= 4, b binary.
	// b=1: y = min(5,4) = 4 => obj -9.
	p := &Problem{
		C: []float64{-1, -5},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, -3}, Rel: lp.LE, RHS: 2},
			{Coef: []float64{1}, Rel: lp.LE, RHS: 4},
		},
		Binary: []int{1},
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %+v %v", sol, err)
	}
	if math.Abs(sol.Objective+9) > 1e-6 {
		t.Fatalf("objective = %v, want -9", sol.Objective)
	}
}

func TestExactCover(t *testing.T) {
	// Choose exactly one of three options per group; minimize cost.
	// Groups: {x0,x1,x2} cost {5,3,9}; {x3,x4} cost {2,1}; coupling
	// x1 + x4 <= 1 forces cost 3+2 or 5+1.
	p := &Problem{
		C: []float64{5, 3, 9, 2, 1},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1, 1}, Rel: lp.EQ, RHS: 1},
			{Coef: []float64{0, 0, 0, 1, 1}, Rel: lp.EQ, RHS: 1},
			{Coef: []float64{0, 1, 0, 0, 1}, Rel: lp.LE, RHS: 1},
		},
		Binary: []int{0, 1, 2, 3, 4},
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %+v %v", sol, err)
	}
	if math.Abs(sol.Objective-5) > 1e-6 { // x1 (3) + x3 (2)
		t.Fatalf("objective = %v (x=%v), want 5", sol.Objective, sol.X)
	}
}

func TestBudgetReturnsIncumbent(t *testing.T) {
	// A larger knapsack; with a tiny node budget the solver must still
	// return some feasible incumbent or Unknown, never a wrong Optimal.
	r := rand.New(rand.NewSource(7))
	n := 24
	p := &Problem{C: make([]float64, n)}
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		p.C[j] = -float64(1 + r.Intn(50))
		w[j] = float64(1 + r.Intn(20))
		p.Binary = append(p.Binary, j)
	}
	p.Constraints = []lp.Constraint{{Coef: w, Rel: lp.LE, RHS: 40}}
	sol, err := Solve(p, Options{TimeBudget: time.Second, MaxNodes: 30})
	if err != nil {
		t.Fatal(err)
	}
	switch sol.Status {
	case Optimal, Feasible:
		// Incumbent must satisfy the knapsack.
		tot := 0.0
		for j := range w {
			tot += w[j] * sol.X[j]
		}
		if tot > 40+1e-6 {
			t.Fatalf("incumbent violates constraint: %v", tot)
		}
	case Unknown:
		// Acceptable under a tiny budget.
	default:
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestBadBinaryIndex(t *testing.T) {
	p := &Problem{C: []float64{1}, Binary: []int{3}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("bad binary index accepted")
	}
}

// Property: on random small knapsacks, branch and bound matches brute
// force.
func TestMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8) // <= 9 binaries: brute force 512 points
		values := make([]float64, n)
		weights := make([]float64, n)
		for j := 0; j < n; j++ {
			values[j] = float64(1 + r.Intn(30))
			weights[j] = float64(1 + r.Intn(10))
		}
		cap := float64(5 + r.Intn(25))
		p := &Problem{C: make([]float64, n)}
		for j := range values {
			p.C[j] = -values[j]
			p.Binary = append(p.Binary, j)
		}
		p.Constraints = []lp.Constraint{{Coef: weights, Rel: lp.LE, RHS: cap}}
		sol, err := Solve(p, Options{TimeBudget: 10 * time.Second})
		if err != nil || sol.Status != Optimal {
			return false
		}
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			wsum, vsum := 0.0, 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					wsum += weights[j]
					vsum += values[j]
				}
			}
			if wsum <= cap && vsum > best {
				best = vsum
			}
		}
		return math.Abs(-sol.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
