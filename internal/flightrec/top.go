package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// WatchTop polls addr's /debug/queries endpoint every interval and renders a
// refreshing top-style view to w. It runs until the endpoint errors three
// times in a row (e.g. the watched process exited), so both binaries share
// one attach-mode implementation instead of each carrying a polling loop.
func WatchTop(w io.Writer, addr string, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	url := "http://" + addr + "/debug/queries"
	client := &http.Client{Timeout: interval}
	var prev *Snapshot
	failures := 0
	for {
		cur, err := fetchSnapshot(client, url)
		if err != nil {
			failures++
			if failures >= 3 {
				return fmt.Errorf("polling %s: %w", url, err)
			}
		} else {
			failures = 0
			// \x1b[H\x1b[2J homes the cursor and clears the screen, the
			// classic top(1) refresh.
			fmt.Fprint(w, "\x1b[H\x1b[2J")
			fmt.Fprint(w, RenderTop(prev, cur, interval.Seconds()))
			prev = cur
		}
		time.Sleep(interval)
	}
}

func fetchSnapshot(client *http.Client, url string) (*Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
