// Package flightrec is the per-query flight recorder: a fixed-capacity,
// allocation-bounded ring buffer of per-(query, refinement-level) window
// records. Each record carries the tuples entering and leaving every
// pipeline op, switch register occupancy and collision counts, the
// mirrored-tuple and bytes-to-SP volume, the refinement transition applied
// at the window's close, the shard busy time attributed back to the
// instance, and the planner's trained work estimate next to the observed
// op-level work with a rolling drift ratio — the continuous estimate-vs-
// actual signal that tells an operator when a plan has gone stale.
//
// The recorder is fed by the same increments that build the runtime's
// WindowReport (the switch, engine, and emitter bump a Probe exactly where
// they bump their WindowStats/Metrics counters), so the recorder can never
// disagree with the printed reports. Probes follow the telemetry package's
// handle discipline: a nil *Probe (or nil *Recorder) is a no-op on every
// method, so an unattached deployment pays only a nil check.
//
// Concurrency contract: a probe's window accumulators are written only by
// the goroutine that owns its instance (the sharded runtime's single-owner
// invariant); the runtime calls Commit from the main goroutine after the
// window-end join, and Snapshot readers only ever see committed ring slots
// under the recorder's lock.
package flightrec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// DefaultCapacity is the ring size (windows retained) when the caller does
// not choose one.
const DefaultCapacity = 64

// StageInfo statically describes one pipeline op of a tracked instance.
type StageInfo struct {
	// Label is the rendered stage name, e.g. "L0 dynfilter@sw".
	Label string
	// Kind is the op kind ("filter", "map", "reduce", "distinct").
	Kind string
	// Stateful marks reduce/distinct ops (they weigh 4x in observed work,
	// matching the planner's training cost model).
	Stateful bool
	// OnSwitch marks ops compiled into the data plane (before the cut).
	OnSwitch bool
	// Seg is the pipeline segment: 0 left, 1 right, 2 post-join. Out counts
	// for switch-resident stateless ops are derived from the next stage's
	// In, which is only valid within one segment.
	Seg int
}

// TrackConfig registers one (query, level) instance with the recorder.
type TrackConfig struct {
	QID   uint16
	Level uint8
	// Shard is the worker shard owning the instance (0 in sequential mode).
	Shard int
	// EstWork is the planner's trained per-window work estimate for the
	// instance (InstancePlan.EstWork summed over sides, floor 1).
	EstWork uint64
	// RefFrom is the coarser refinement level gating this instance, -1 when
	// the instance is not the target of a refinement link.
	RefFrom int
	// NumLeft / NumRight size the stage index bases: right-side ops map to
	// stage NumLeft+i, post-join ops to NumLeft+NumRight+i.
	NumLeft  int
	NumRight int
	// Stages lists every op: left, then right, then post, concatenated.
	Stages []StageInfo
}

// Probe is the per-instance window accumulator handed to the switch, the
// stream engine, and the emitter. All mutating methods are nil-safe no-ops.
type Probe struct {
	cfg TrackConfig

	// Window accumulators (reset by Commit). Written by the instance's
	// owner goroutine during the window; regUsed/dumpTuples/refinement by
	// the main goroutine at window close, after the worker join.
	tuplesToSP  uint64
	mirrored    uint64
	mirrorBytes uint64
	delivBytes  uint64
	collisions  uint64
	dumpTuples  uint64
	regUsed     uint64
	results     uint64
	evalNS      int64
	freshNS     int64
	opInSw      []uint64 // tuples entering each stage on the switch
	opInSP      []uint64 // tuples entering each stage at the stream processor
	opOut       []uint64 // emissions of each stage at the stream processor
	refKeys     uint64
	refChanged  bool

	// Static after attach.
	regCapacity uint64

	// Cumulative, updated by Commit.
	cumTuples uint64
	cumBytes  uint64
	drift     float64
	driftSet  bool
}

// RightBase returns the stage index of the right pipeline's first op.
func (p *Probe) RightBase() int { return p.cfg.NumLeft }

// PostBase returns the stage index of the post-join pipeline's first op.
func (p *Probe) PostBase() int { return p.cfg.NumLeft + p.cfg.NumRight }

// Tuple counts one tuple (or mirrored packet) delivered to the stream
// processor — the same increment that builds WindowReport.PerQuery.
func (p *Probe) Tuple() {
	if p != nil {
		p.tuplesToSP++
	}
}

// Mirror counts one mirror report leaving the switch.
func (p *Probe) Mirror() {
	if p != nil {
		p.mirrored++
	}
}

// Bytes counts encoded telemetry bytes crossing the monitoring port.
func (p *Probe) Bytes(n uint64) {
	if p != nil {
		p.mirrorBytes += n
	}
}

// Delivered counts encoded result bytes queued for subscribers on behalf of
// this instance — the subscription server's per-(query, level) attribution
// of the delivery path. Called from the publish step of window close (main
// goroutine), like the other boundary accumulators.
func (p *Probe) Delivered(n uint64) {
	if p != nil {
		p.delivBytes += n
	}
}

// Collision counts one register overflow shunted to the stream processor.
func (p *Probe) Collision() {
	if p != nil {
		p.collisions++
	}
}

// DumpTuple counts one register dump entry reported at the window boundary.
func (p *Probe) DumpTuple() {
	if p != nil {
		p.dumpTuples++
	}
}

// RegOccupied adds one bank's stored-key count to the window's occupancy
// sample (taken at the window boundary, before the reset).
func (p *Probe) RegOccupied(n uint64) {
	if p != nil {
		p.regUsed += n
	}
}

// AddRegCapacity accumulates the instance's total register slots (static;
// called once per bank at attach).
func (p *Probe) AddRegCapacity(n uint64) {
	if p != nil {
		p.regCapacity += n
	}
}

// Eval records the instance's window-close evaluation: result tuples and
// evaluation wall time.
func (p *Probe) Eval(results uint64, d time.Duration) {
	if p != nil {
		p.results += results
		p.evalNS += d.Nanoseconds()
	}
}

// Fresh records the window's freshness watermark: nanoseconds from the
// window's first frame to publish completion. Called once per window from
// the close path (main goroutine), like the other boundary accumulators.
func (p *Probe) Fresh(ns int64) {
	if p != nil {
		p.freshNS = ns
	}
}

// OpSwitch counts one packet entering the given stage in the data plane.
func (p *Probe) OpSwitch(stage int) {
	if p != nil {
		p.opInSw[stage]++
	}
}

// OpSP adds one stage's stream-processor entering/emission counts (the
// engine flushes its per-op counters here at window end).
func (p *Probe) OpSP(stage int, in, out uint64) {
	if p != nil {
		p.opInSP[stage] += in
		p.opOut[stage] += out
	}
}

// Refined records the refinement update applied at this window's close:
// the number of keys the coarser level reported (gating the next window)
// and whether the key set changed from the previous window.
func (p *Probe) Refined(keys uint64, changed bool) {
	if p != nil {
		p.refKeys = keys
		p.refChanged = changed
	}
}

// OpRecord is one pipeline stage of a committed record.
type OpRecord struct {
	Label string `json:"label"`
	// In is the tuples entering the op this window (switch- plus SP-side).
	In uint64 `json:"in"`
	// Out is the tuples the op emitted. For switch-resident stateless ops
	// it is derived as the next stage's In within the same segment (0 when
	// the op is the last of its segment).
	Out uint64 `json:"out"`
}

// Record is one (query, level) instance's committed window.
type Record struct {
	Window int    `json:"window"`
	QID    uint16 `json:"qid"`
	Level  uint8  `json:"level"`
	Shard  int    `json:"shard"`
	// PacketsIn is the window's total frame count (shared by every record;
	// Reduction = PacketsIn / max(TuplesToSP, 1) is the paper's headline
	// per-query tuple-reduction factor).
	PacketsIn   uint64  `json:"packets_in"`
	TuplesToSP  uint64  `json:"tuples_to_sp"`
	Reduction   float64 `json:"reduction"`
	Results     uint64  `json:"result_tuples"`
	Mirrored    uint64  `json:"mirrored"`
	MirrorBytes uint64  `json:"mirror_bytes"`
	// DeliveredBytes is the encoded update volume queued to subscribers for
	// this instance this window (0 when no subscription server is attached).
	DeliveredBytes uint64 `json:"delivered_bytes"`
	Collisions     uint64 `json:"collisions"`
	DumpTuples     uint64 `json:"dump_tuples"`
	RegUsed        uint64 `json:"reg_used"`
	RegCapacity    uint64 `json:"reg_capacity"`
	EvalNS         int64  `json:"eval_ns"`
	// FreshNS is the freshness watermark: nanoseconds from the window's
	// first frame to publish completion (0 when the runtime saw no frames).
	FreshNS int64 `json:"fresh_ns"`
	// BusyNS is the shard busy time attributed to this instance: the owner
	// shard's window busy time scaled by the instance's share of the
	// shard's observed work (0 in sequential mode, which reports no
	// per-shard busy times).
	BusyNS int64 `json:"busy_ns"`
	// EstWork is the planner's trained estimate; ObsWork the same cost
	// model evaluated on this window's observed per-op tuple counts
	// (stateful ops x4, collisions x8); Drift the rolling EWMA of
	// ObsWork/EstWork. Drift near 1.0 means the plan still matches
	// traffic; drift far from 1.0 flags a stale plan.
	EstWork uint64  `json:"est_work"`
	ObsWork uint64  `json:"obs_work"`
	Drift   float64 `json:"drift"`
	// RefFrom / RefKeys / RefChanged describe the refinement transition
	// applied at this window's close: the coarser level feeding the gate,
	// how many keys it reported, and whether the key set changed.
	RefFrom    int        `json:"ref_from"`
	RefKeys    uint64     `json:"ref_keys"`
	RefChanged bool       `json:"ref_changed"`
	CumTuples  uint64     `json:"cum_tuples"`
	CumBytes   uint64     `json:"cum_bytes"`
	Ops        []OpRecord `json:"ops"`
}

// Snapshot is the recorder state handed to /debug/queries consumers.
type Snapshot struct {
	// Window is the most recently committed window index (-1 before the
	// first commit).
	Window int `json:"window"`
	// Committed counts windows committed since the last Reset; Capacity is
	// the ring size and Evicted how many unread windows were overwritten.
	Committed uint64 `json:"committed"`
	Capacity  int    `json:"capacity"`
	Evicted   uint64 `json:"evicted"`
	// WindowP50NS/WindowP99NS and FreshP50NS/FreshP99NS are approximate
	// quantiles of the runtime's window-duration and freshness histograms
	// (0 when the deployment is uninstrumented or has no samples yet).
	WindowP50NS int64 `json:"window_p50_ns,omitempty"`
	WindowP99NS int64 `json:"window_p99_ns,omitempty"`
	FreshP50NS  int64 `json:"fresh_p50_ns,omitempty"`
	FreshP99NS  int64 `json:"fresh_p99_ns,omitempty"`
	// TraceURL points at the latest window's retained trace tree when the
	// tracer kept one (empty otherwise).
	TraceURL string `json:"trace_url,omitempty"`
	// Queries holds the latest window's records in installation order.
	Queries []Record `json:"queries"`
	// History holds up to the requested number of older windows, newest
	// first.
	History [][]Record `json:"history,omitempty"`
}

// slot is one ring entry: the records of one committed window.
type slot struct {
	seq     uint64 // 1-based commit number, 0 = never written
	window  int
	records []Record
}

// Recorder owns the probes and the ring. A nil *Recorder is a no-op.
type Recorder struct {
	mu       sync.Mutex
	tracer   *telemetry.Tracer
	capacity int
	probes   []*Probe
	slots    []slot
	commits  uint64
	served   uint64 // highest commit sequence a Snapshot has returned
	evicted  uint64
	// shardWork is commit scratch: per-shard observed-work sums for busy
	// attribution. Sized at ring allocation so Commit never allocates.
	shardWork []uint64
	mWindows  *telemetry.Counter
	mEvicts   *telemetry.Counter
	// windowNS/freshNS are read-side handles to the runtime's histograms
	// (same registry families; registration returns the existing metric),
	// powering the snapshot's latency quantiles.
	windowNS *telemetry.Histogram
	freshNS  *telemetry.Histogram
	// traceHas reports whether the trace buffer retained a given window,
	// wired by AttachTraceIndex; Snapshot cross-links /debug/trace from it.
	traceHas func(window int) bool
}

// New returns a recorder retaining capacity windows (DefaultCapacity when
// capacity <= 0). The tracer, which may be nil, receives a flightrec_evict
// span whenever the ring overwrites a window no Snapshot ever served —
// the signal that the recorder is underprovisioned for its poll rate.
func New(capacity int, tracer *telemetry.Tracer) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{capacity: capacity, tracer: tracer}
}

// Instrument registers the recorder's own metrics against reg (nil
// disables).
func (rec *Recorder) Instrument(reg *telemetry.Registry) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.mWindows = reg.Counter("sonata_flightrec_windows_total",
		"Windows committed to the flight recorder.")
	rec.mEvicts = reg.Counter("sonata_flightrec_evictions_total",
		"Ring slots overwritten before any snapshot served them.")
	// Help strings must match the runtime's registrations byte-for-byte:
	// the registry hands back the existing series either way around, and
	// the lint's duplicate-help rule sees each family once.
	rec.windowNS = reg.Histogram("sonata_runtime_window_ns",
		"End-to-end wall time per window in nanoseconds.",
		telemetry.DurationBuckets)
	rec.freshNS = reg.Histogram("sonata_freshness_ns",
		"Result freshness per window in nanoseconds: first frame to publish completion.",
		telemetry.DurationBuckets)
}

// AttachTraceIndex wires the trace buffer's retention index (typically
// tracez.Tracer.Has) so snapshots can cross-link /debug/trace for windows
// whose span tree was kept. Nil detaches.
func (rec *Recorder) AttachTraceIndex(has func(window int) bool) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.traceHas = has
}

// Reset drops all probes and committed windows. The runtime calls it when
// attaching a deployment, so a recorder reused across deployments (the
// eval harness runs many) always reflects the live one.
func (rec *Recorder) Reset() {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.probes = nil
	rec.slots = nil
	rec.commits, rec.served, rec.evicted = 0, 0, 0
}

// Track registers one instance and returns its probe. All Track calls must
// precede the first Commit (the runtime tracks at attach time).
func (rec *Recorder) Track(cfg TrackConfig) *Probe {
	if rec == nil {
		return nil
	}
	n := len(cfg.Stages)
	p := &Probe{cfg: cfg,
		opInSw: make([]uint64, n),
		opInSP: make([]uint64, n),
		opOut:  make([]uint64, n),
	}
	rec.mu.Lock()
	rec.probes = append(rec.probes, p)
	rec.slots = nil // ring is sized per probe set; reallocate on next commit
	rec.mu.Unlock()
	return p
}

// alloc builds the ring: every slot holds one preallocated Record per
// probe, each with its Ops slice sized to the probe's stage count, so
// Commit writes in place and never allocates.
func (rec *Recorder) alloc() {
	rec.slots = make([]slot, rec.capacity)
	maxShard := 0
	for _, p := range rec.probes {
		if p.cfg.Shard > maxShard {
			maxShard = p.cfg.Shard
		}
	}
	rec.shardWork = make([]uint64, maxShard+1)
	for i := range rec.slots {
		records := make([]Record, len(rec.probes))
		for j, p := range rec.probes {
			ops := make([]OpRecord, len(p.cfg.Stages))
			for k := range ops {
				ops[k].Label = p.cfg.Stages[k].Label
			}
			records[j] = Record{Ops: ops}
		}
		rec.slots[i].records = records
	}
}

// driftAlpha is the EWMA weight of the newest window's ObsWork/EstWork
// ratio; 0.5 converges within a few windows while smoothing one-off bursts.
const driftAlpha = 0.5

// Commit seals the closing window into the ring: it snapshots and resets
// every probe, computes observed work and the drift ratio, and attributes
// each shard's busy time across the instances it ran. The runtime calls it
// once per window, after the worker join, with the same PacketsIn and
// ShardBusy values the WindowReport carries. After the first call (which
// sizes the ring) Commit performs no allocation.
func (rec *Recorder) Commit(window int, packetsIn uint64, shardBusy []time.Duration) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.slots == nil {
		rec.alloc()
	}
	s := &rec.slots[rec.commits%uint64(rec.capacity)]
	if s.seq != 0 && s.seq > rec.served {
		rec.evicted++
		rec.mEvicts.Inc()
		if rec.tracer != nil {
			rec.tracer.Record(telemetry.Span{
				Window:  s.window,
				Stage:   telemetry.StageFlightRecEvict,
				StartNS: time.Now().UnixNano(),
				Attrs: map[string]uint64{
					"records":  uint64(len(s.records)),
					"capacity": uint64(rec.capacity),
				},
			})
		}
	}
	rec.commits++
	s.seq, s.window = rec.commits, window

	for i := range rec.shardWork {
		rec.shardWork[i] = 0
	}
	for j, p := range rec.probes {
		r := &s.records[j]
		rec.commitProbe(p, r, window, packetsIn)
		rec.shardWork[p.cfg.Shard] += r.ObsWork
	}
	// Busy attribution: an instance's share of its shard's busy time is its
	// share of the shard's observed work this window.
	for j, p := range rec.probes {
		r := &s.records[j]
		r.BusyNS = 0
		sh := p.cfg.Shard
		if sh < len(shardBusy) && rec.shardWork[sh] > 0 {
			r.BusyNS = int64(float64(shardBusy[sh]) *
				(float64(r.ObsWork) / float64(rec.shardWork[sh])))
		}
	}
	rec.mWindows.Inc()
}

// commitProbe fills one record from its probe and resets the probe's
// window accumulators.
func (rec *Recorder) commitProbe(p *Probe, r *Record, window int, packetsIn uint64) {
	st := p.cfg.Stages
	var obs uint64
	for j := range st {
		in := p.opInSP[j]
		if st[j].OnSwitch {
			in = p.opInSw[j]
		}
		if st[j].Stateful {
			in *= 4
		}
		obs += in
	}
	// Each collision costs the shunt mirror plus the SP-side re-execution —
	// the planner prices overflow at 8x when it builds EstWork, so the
	// observed side must too or drift would read high under collisions.
	obs += 8 * p.collisions

	est := p.cfg.EstWork
	if est == 0 {
		est = 1
	}
	ratio := float64(obs) / float64(est)
	if !p.driftSet {
		p.drift, p.driftSet = ratio, true
	} else {
		p.drift = (1-driftAlpha)*p.drift + driftAlpha*ratio
	}
	p.cumTuples += p.tuplesToSP
	p.cumBytes += p.mirrorBytes

	r.Window = window
	r.QID, r.Level, r.Shard = p.cfg.QID, p.cfg.Level, p.cfg.Shard
	r.PacketsIn = packetsIn
	r.TuplesToSP = p.tuplesToSP
	den := p.tuplesToSP
	if den == 0 {
		den = 1
	}
	r.Reduction = float64(packetsIn) / float64(den)
	r.Results = p.results
	r.Mirrored = p.mirrored
	r.MirrorBytes = p.mirrorBytes
	r.DeliveredBytes = p.delivBytes
	r.Collisions = p.collisions
	r.DumpTuples = p.dumpTuples
	r.RegUsed, r.RegCapacity = p.regUsed, p.regCapacity
	r.EvalNS = p.evalNS
	r.FreshNS = p.freshNS
	r.EstWork, r.ObsWork, r.Drift = p.cfg.EstWork, obs, p.drift
	r.RefFrom, r.RefKeys, r.RefChanged = p.cfg.RefFrom, p.refKeys, p.refChanged
	r.CumTuples, r.CumBytes = p.cumTuples, p.cumBytes
	for j := range st {
		op := &r.Ops[j]
		op.In = p.opInSw[j] + p.opInSP[j]
		out := p.opOut[j]
		// Switch-resident stateless ops have no SP-side emission counter;
		// their output is whatever entered the next stage of the same
		// segment (at the SP for the op just before the cut).
		if out == 0 && st[j].OnSwitch && j+1 < len(st) && st[j+1].Seg == st[j].Seg {
			if st[j+1].OnSwitch {
				out = p.opInSw[j+1]
			} else {
				out = p.opInSP[j+1]
			}
		}
		op.Out = out
	}

	// Reset the window accumulators; cumulative and static fields persist.
	p.tuplesToSP, p.mirrored, p.mirrorBytes, p.delivBytes = 0, 0, 0, 0
	p.collisions, p.dumpTuples, p.regUsed = 0, 0, 0
	p.results, p.evalNS, p.freshNS = 0, 0, 0
	p.refKeys, p.refChanged = 0, false
	for j := range p.opInSw {
		p.opInSw[j], p.opInSP[j], p.opOut[j] = 0, 0, 0
	}
}

// Snapshot copies the latest committed window (plus up to history older
// windows, newest first) out of the ring. It marks everything committed so
// far as served: a later overwrite of those slots is not an eviction.
func (rec *Recorder) Snapshot(history int) Snapshot {
	s := Snapshot{Window: -1}
	if rec == nil {
		return s
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	s.Committed, s.Capacity, s.Evicted = rec.commits, rec.capacity, rec.evicted
	s.WindowP50NS = int64(rec.windowNS.Quantile(0.5))
	s.WindowP99NS = int64(rec.windowNS.Quantile(0.99))
	s.FreshP50NS = int64(rec.freshNS.Quantile(0.5))
	s.FreshP99NS = int64(rec.freshNS.Quantile(0.99))
	rec.served = rec.commits
	if rec.commits == 0 {
		return s
	}
	latest := &rec.slots[(rec.commits-1)%uint64(rec.capacity)]
	s.Window = latest.window
	s.Queries = copyRecords(latest.records)
	if rec.traceHas != nil && rec.traceHas(s.Window) {
		s.TraceURL = fmt.Sprintf("/debug/trace?window=%d", s.Window)
	}
	if history > rec.capacity-1 {
		history = rec.capacity - 1
	}
	for h := 1; h <= history && uint64(h) < rec.commits; h++ {
		sl := &rec.slots[(rec.commits-1-uint64(h))%uint64(rec.capacity)]
		if sl.seq == 0 {
			break
		}
		s.History = append(s.History, copyRecords(sl.records))
	}
	return s
}

// copyRecords deep-copies ring records (slots are overwritten in place by
// later commits, so snapshots must not alias them).
func copyRecords(rs []Record) []Record {
	out := make([]Record, len(rs))
	for i := range rs {
		out[i] = rs[i]
		out[i].Ops = append([]OpRecord(nil), rs[i].Ops...)
	}
	return out
}
