package flightrec

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Handler serves the recorder as /debug/queries:
//
//	/debug/queries             JSON Snapshot (latest window)
//	/debug/queries?n=K         include up to K older windows as history
//	/debug/queries?fmt=text    aligned table, one row per (qid, level)
//	/debug/queries?fmt=text&ops=1   plus per-op in/out rows
func (rec *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		history := 0
		if v := q.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "flightrec: bad n parameter", http.StatusBadRequest)
				return
			}
			history = n
		}
		s := rec.Snapshot(history)
		if q.Get("fmt") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, RenderText(&s, q.Get("ops") == "1"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(&s)
	})
}

// RenderText renders a snapshot as an aligned human-readable table, one row
// per (qid, level) instance; showOps adds an indented in/out row per
// pipeline op.
func RenderText(s *Snapshot, showOps bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "window %d  (%d committed, capacity %d, evicted %d)\n",
		s.Window, s.Committed, s.Capacity, s.Evicted)
	if s.WindowP99NS > 0 || s.FreshP99NS > 0 {
		fmt.Fprintf(&b, "close p50 %s p99 %s   fresh p50 %s p99 %s\n",
			humanNS(s.WindowP50NS), humanNS(s.WindowP99NS),
			humanNS(s.FreshP50NS), humanNS(s.FreshP99NS))
	}
	if s.TraceURL != "" {
		fmt.Fprintf(&b, "trace: %s\n", s.TraceURL)
	}
	if len(s.Queries) == 0 {
		b.WriteString("no committed windows\n")
		return b.String()
	}
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "QID\tLVL\tSHD\tTUPLES\tREDUCE\tMIRROR\tBYTES\tDELIV\tCOLL\tDUMPS\tREG\tEST\tOBS\tDRIFT\tBUSY\tEVAL\tFRESH\tRESULTS\tREFINE\t")
	for i := range s.Queries {
		r := &s.Queries[i]
		reg := "-"
		if r.RegCapacity > 0 {
			reg = fmt.Sprintf("%d/%d", r.RegUsed, r.RegCapacity)
		}
		ref := "-"
		if r.RefFrom >= 0 {
			ref = fmt.Sprintf("/%d:%dk", r.RefFrom, r.RefKeys)
			if r.RefChanged {
				ref += "*"
			}
		}
		fmt.Fprintf(tw, "%d\t/%d\t%d\t%d\t%s\t%d\t%s\t%s\t%d\t%d\t%s\t%d\t%d\t%.2f\t%s\t%s\t%s\t%d\t%s\t\n",
			r.QID, r.Level, r.Shard, r.TuplesToSP, humanFactor(r.Reduction),
			r.Mirrored, humanBytes(r.MirrorBytes), humanBytes(r.DeliveredBytes),
			r.Collisions, r.DumpTuples,
			reg, r.EstWork, r.ObsWork, r.Drift,
			humanNS(r.BusyNS), humanNS(r.EvalNS), humanNS(r.FreshNS), r.Results, ref)
		if showOps {
			for _, op := range r.Ops {
				fmt.Fprintf(tw, "\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t%s in=%d out=%d\t\n",
					op.Label, op.In, op.Out)
			}
		}
	}
	tw.Flush()
	return b.String()
}

// RenderTop renders a refreshing top-style view from two consecutive polls:
// cur supplies the latest window, prev (which may be nil on the first
// frame) the cumulative baselines for rate columns. elapsedSec is the poll
// interval in seconds.
func RenderTop(prev, cur *Snapshot, elapsedSec float64) string {
	var b strings.Builder
	var totTuples, totPkts, totBytes uint64
	for i := range cur.Queries {
		totTuples += cur.Queries[i].TuplesToSP
		totBytes += cur.Queries[i].MirrorBytes
	}
	if len(cur.Queries) > 0 {
		totPkts = cur.Queries[0].PacketsIn
	}
	den := totTuples
	if den == 0 {
		den = 1
	}
	fmt.Fprintf(&b, "sonata top — window %d   %d pkts -> %d tuples (overall reduction %s)   %s to SP\n",
		cur.Window, totPkts, totTuples, humanFactor(float64(totPkts)/float64(den)),
		humanBytes(totBytes))
	fmt.Fprintf(&b, "windows committed %d   ring %d   evicted %d   close p50 %s p99 %s   fresh p50 %s p99 %s\n\n",
		cur.Committed, cur.Capacity, cur.Evicted,
		humanNS(cur.WindowP50NS), humanNS(cur.WindowP99NS),
		humanNS(cur.FreshP50NS), humanNS(cur.FreshP99NS))
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "QID\tLVL\tSHD\tTUPLES\tTUP/S\tREDUCE\tREG%\tCOLL\tDRIFT\tBUSY\tFRESH\tREFINE\t")
	prevCum := map[[2]uint16]uint64{}
	if prev != nil {
		for i := range prev.Queries {
			r := &prev.Queries[i]
			prevCum[[2]uint16{r.QID, uint16(r.Level)}] = r.CumTuples
		}
	}
	for i := range cur.Queries {
		r := &cur.Queries[i]
		rate := "-"
		if prev != nil && elapsedSec > 0 {
			d := r.CumTuples - prevCum[[2]uint16{r.QID, uint16(r.Level)}]
			rate = fmt.Sprintf("%.0f", float64(d)/elapsedSec)
		}
		regPct := "-"
		if r.RegCapacity > 0 {
			regPct = fmt.Sprintf("%.0f%%", 100*float64(r.RegUsed)/float64(r.RegCapacity))
		}
		ref := "-"
		if r.RefFrom >= 0 {
			ref = fmt.Sprintf("/%d:%dk", r.RefFrom, r.RefKeys)
			if r.RefChanged {
				ref += "*"
			}
		}
		fmt.Fprintf(tw, "%d\t/%d\t%d\t%d\t%s\t%s\t%s\t%d\t%.2f\t%s\t%s\t%s\t\n",
			r.QID, r.Level, r.Shard, r.TuplesToSP, rate,
			humanFactor(r.Reduction), regPct, r.Collisions, r.Drift,
			humanNS(r.BusyNS), humanNS(r.FreshNS), ref)
	}
	tw.Flush()
	if cur.TraceURL != "" {
		fmt.Fprintf(&b, "\ntrace: %s\n", cur.TraceURL)
	}
	return b.String()
}

// humanFactor renders a tuple-reduction factor compactly (e.g. "21000x").
func humanFactor(f float64) string {
	switch {
	case f >= 1000:
		return fmt.Sprintf("%.0fx", f)
	case f >= 10:
		return fmt.Sprintf("%.1fx", f)
	default:
		return fmt.Sprintf("%.2fx", f)
	}
}

// humanBytes renders a byte count with a unit suffix.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fkB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// humanNS renders nanoseconds as a compact duration.
func humanNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
