package flightrec

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func testStages() []StageInfo {
	return []StageInfo{
		{Label: "L0 filter@sw", Kind: "filter", OnSwitch: true, Seg: 0},
		{Label: "L1 map@sw", Kind: "map", OnSwitch: true, Seg: 0},
		{Label: "L2 reduce@sp", Kind: "reduce", Stateful: true, Seg: 0},
	}
}

// TestNilSafety: every probe and recorder method must no-op on nil, the
// telemetry handle discipline that lets instrumentation stay in place.
func TestNilSafety(t *testing.T) {
	var rec *Recorder
	rec.Instrument(nil)
	rec.Reset()
	rec.Commit(0, 0, nil)
	if p := rec.Track(TrackConfig{}); p != nil {
		t.Fatal("nil recorder returned a probe")
	}
	if s := rec.Snapshot(3); s.Window != -1 {
		t.Fatalf("nil recorder snapshot window = %d, want -1", s.Window)
	}
	var p *Probe
	p.Tuple()
	p.Mirror()
	p.Bytes(1)
	p.Collision()
	p.DumpTuple()
	p.RegOccupied(1)
	p.AddRegCapacity(1)
	p.Eval(1, time.Millisecond)
	p.OpSwitch(0)
	p.OpSP(0, 1, 1)
	p.Refined(1, true)
	p.Fresh(1)
	rec.AttachTraceIndex(func(int) bool { return true })
}

// TestFreshnessAndTraceLink: the freshness watermark lands in the record
// and resets with the window; snapshots carry latency quantiles and the
// /debug/trace cross-link when the trace index retained the window.
func TestFreshnessAndTraceLink(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := New(4, nil)
	rec.Instrument(reg)
	p := rec.Track(TrackConfig{QID: 1, Stages: testStages()})

	// Simulate what the runtime does per window: observe the histograms it
	// shares with the recorder, stamp the probe, commit.
	winNS := reg.Histogram("sonata_runtime_window_ns",
		"End-to-end wall time per window in nanoseconds.", telemetry.DurationBuckets)
	freshNS := reg.Histogram("sonata_freshness_ns",
		"Result freshness per window in nanoseconds: first frame to publish completion.",
		telemetry.DurationBuckets)
	winNS.Observe(2_000_000)
	freshNS.Observe(3_000_000)
	p.Fresh(3_000_000)
	rec.Commit(0, 100, nil)
	rec.AttachTraceIndex(func(w int) bool { return w == 0 })

	s := rec.Snapshot(0)
	if s.Queries[0].FreshNS != 3_000_000 {
		t.Errorf("FreshNS = %d, want 3000000", s.Queries[0].FreshNS)
	}
	if s.WindowP50NS <= 0 || s.FreshP50NS <= 0 {
		t.Errorf("quantiles missing: window p50 %d, fresh p50 %d", s.WindowP50NS, s.FreshP50NS)
	}
	if s.TraceURL != "/debug/trace?window=0" {
		t.Errorf("TraceURL = %q, want /debug/trace?window=0", s.TraceURL)
	}
	txt := RenderText(&s, false)
	for _, want := range []string{"FRESH", "3.0ms", "close p50", "trace: /debug/trace?window=0"} {
		if !strings.Contains(txt, want) {
			t.Errorf("RenderText missing %q:\n%s", want, txt)
		}
	}

	// Next window without a Fresh stamp: the accumulator must have reset.
	rec.Commit(1, 100, nil)
	s = rec.Snapshot(0)
	if s.Queries[0].FreshNS != 0 {
		t.Errorf("FreshNS after reset = %d, want 0", s.Queries[0].FreshNS)
	}
	if s.TraceURL != "" {
		t.Errorf("TraceURL for unretained window = %q, want empty", s.TraceURL)
	}
}

// TestRingEviction: an overwritten slot counts as evicted only if no
// snapshot ever served it.
func TestRingEviction(t *testing.T) {
	rec := New(2, nil)
	rec.Track(TrackConfig{QID: 1, Stages: testStages()})
	rec.Commit(0, 10, nil)
	rec.Commit(1, 10, nil)
	rec.Commit(2, 10, nil) // overwrites window 0, never served
	if s := rec.Snapshot(0); s.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", s.Evicted)
	}
	// Everything up to window 2 is now served; the next two commits
	// overwrite served slots.
	rec.Commit(3, 10, nil)
	rec.Commit(4, 10, nil)
	if s := rec.Snapshot(0); s.Evicted != 1 {
		t.Fatalf("evicted after serve = %d, want still 1", s.Evicted)
	}
	// That snapshot served windows 3 and 4, so three more commits are
	// needed before one lands on an unread slot again (window 5).
	rec.Commit(5, 10, nil)
	rec.Commit(6, 10, nil)
	rec.Commit(7, 10, nil)
	if s := rec.Snapshot(0); s.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", s.Evicted)
	}
}

// TestEvictSpan: overwriting an unread window must record a flightrec_evict
// span naming the lost window.
func TestEvictSpan(t *testing.T) {
	var buf bytes.Buffer
	rec := New(1, telemetry.NewTracer(&buf))
	rec.Track(TrackConfig{QID: 7, Stages: testStages()})
	rec.Commit(0, 5, nil)
	rec.Commit(1, 5, nil) // evicts window 0
	spans, err := telemetry.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Stage != telemetry.StageFlightRecEvict {
		t.Errorf("stage = %q, want %q", s.Stage, telemetry.StageFlightRecEvict)
	}
	if s.Window != 0 {
		t.Errorf("span window = %d, want 0 (the evicted window)", s.Window)
	}
	if s.Attrs["capacity"] != 1 || s.Attrs["records"] != 1 {
		t.Errorf("attrs = %v, want capacity=1 records=1", s.Attrs)
	}
}

// TestCommitRecordFields drives one probe through two windows and checks
// the derived fields: reduction factor, observed work, drift, out
// derivation for switch-resident stages, and cumulative counters.
func TestCommitRecordFields(t *testing.T) {
	rec := New(4, nil)
	p := rec.Track(TrackConfig{QID: 3, Level: 16, EstWork: 100,
		RefFrom: 8, NumLeft: 3, Stages: testStages()})

	for i := 0; i < 20; i++ {
		p.OpSwitch(0)
	}
	for i := 0; i < 10; i++ {
		p.OpSwitch(1)
	}
	for i := 0; i < 5; i++ {
		p.Tuple()
	}
	p.OpSP(2, 5, 2)
	p.Mirror()
	p.Bytes(64)
	p.Collision()
	p.DumpTuple()
	p.RegOccupied(7)
	p.AddRegCapacity(32)
	p.Eval(2, 3*time.Millisecond)
	p.Refined(4, true)
	rec.Commit(0, 1000, nil)

	s := rec.Snapshot(0)
	if len(s.Queries) != 1 {
		t.Fatalf("got %d records, want 1", len(s.Queries))
	}
	r := s.Queries[0]
	if r.TuplesToSP != 5 || r.PacketsIn != 1000 {
		t.Fatalf("tuples=%d packets=%d, want 5/1000", r.TuplesToSP, r.PacketsIn)
	}
	if r.Reduction != 200 {
		t.Errorf("reduction = %v, want 200", r.Reduction)
	}
	// Observed work: 20 + 10 + 4*5 (stateful) + 8*1 (collision) = 58.
	if r.ObsWork != 58 {
		t.Errorf("obs work = %d, want 58", r.ObsWork)
	}
	if math.Abs(r.Drift-0.58) > 1e-9 {
		t.Errorf("drift = %v, want 0.58", r.Drift)
	}
	if r.RegUsed != 7 || r.RegCapacity != 32 {
		t.Errorf("reg = %d/%d, want 7/32", r.RegUsed, r.RegCapacity)
	}
	if r.RefFrom != 8 || r.RefKeys != 4 || !r.RefChanged {
		t.Errorf("refinement = %d/%d/%v, want 8/4/true", r.RefFrom, r.RefKeys, r.RefChanged)
	}
	if r.Results != 2 || r.EvalNS != (3*time.Millisecond).Nanoseconds() {
		t.Errorf("results=%d evalNS=%d", r.Results, r.EvalNS)
	}
	// Out derivation: stage 0 is switch-resident with no SP-side counter,
	// so its out is stage 1's switch-side in; stage 1's out is stage 2's
	// SP-side in (the cut); stage 2 reported its own out.
	if got := r.Ops[0]; got.In != 20 || got.Out != 10 {
		t.Errorf("op0 = %+v, want in=20 out=10", got)
	}
	if got := r.Ops[1]; got.In != 10 || got.Out != 5 {
		t.Errorf("op1 = %+v, want in=10 out=5", got)
	}
	if got := r.Ops[2]; got.In != 5 || got.Out != 2 {
		t.Errorf("op2 = %+v, want in=5 out=2", got)
	}

	// Second, idle window: accumulators must have reset; drift is an EWMA
	// of 0.58 and 0/100.
	rec.Commit(1, 500, nil)
	s = rec.Snapshot(1)
	r = s.Queries[0]
	if r.TuplesToSP != 0 || r.ObsWork != 0 || r.Mirrored != 0 {
		t.Errorf("window accumulators not reset: %+v", r)
	}
	if math.Abs(r.Drift-0.29) > 1e-9 {
		t.Errorf("drift = %v, want 0.29 (EWMA)", r.Drift)
	}
	if r.CumTuples != 5 || r.CumBytes != 64 {
		t.Errorf("cumulative = %d/%d, want 5/64", r.CumTuples, r.CumBytes)
	}
	if len(s.History) != 1 || s.History[0][0].Window != 0 {
		t.Errorf("history = %+v, want one entry for window 0", s.History)
	}
}

// TestBusyAttribution: a shard's busy time splits across its instances in
// proportion to observed work.
func TestBusyAttribution(t *testing.T) {
	rec := New(4, nil)
	stages := []StageInfo{{Label: "L0 filter@sw", Kind: "filter", OnSwitch: true}}
	p1 := rec.Track(TrackConfig{QID: 1, Shard: 0, NumLeft: 1, Stages: stages})
	p2 := rec.Track(TrackConfig{QID: 2, Shard: 0, NumLeft: 1, Stages: stages})
	for i := 0; i < 30; i++ {
		p1.OpSwitch(0)
	}
	for i := 0; i < 10; i++ {
		p2.OpSwitch(0)
	}
	rec.Commit(0, 40, []time.Duration{4 * time.Millisecond})
	s := rec.Snapshot(0)
	if got := s.Queries[0].BusyNS; got != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("q1 busy = %d, want 3ms", got)
	}
	if got := s.Queries[1].BusyNS; got != (1 * time.Millisecond).Nanoseconds() {
		t.Errorf("q2 busy = %d, want 1ms", got)
	}
}

// TestCommitNoAllocs pins the per-window commit path to zero allocations
// after the first (ring-sizing) commit, independent of ring capacity.
func TestCommitNoAllocs(t *testing.T) {
	for _, capacity := range []int{2, 256} {
		rec := New(capacity, nil)
		p := rec.Track(TrackConfig{QID: 1, EstWork: 10, NumLeft: 3, Stages: testStages()})
		busy := []time.Duration{time.Millisecond}
		rec.Commit(0, 100, busy) // sizes the ring
		w := 1
		allocs := testing.AllocsPerRun(200, func() {
			p.OpSwitch(0)
			p.Tuple()
			p.OpSP(2, 3, 1)
			rec.Commit(w, 100, busy)
			w++
		})
		if allocs != 0 {
			t.Errorf("capacity %d: %v allocs per committed window, want 0", capacity, allocs)
		}
	}
}

// TestInstrument: the recorder's own counters track commits and evictions.
func TestInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := New(1, nil)
	rec.Instrument(reg)
	rec.Track(TrackConfig{QID: 1, Stages: testStages()})
	rec.Commit(0, 1, nil)
	rec.Commit(1, 1, nil)
	s := reg.Snapshot()
	if got := s.Counter("sonata_flightrec_windows_total"); got != 2 {
		t.Errorf("windows_total = %d, want 2", got)
	}
	if got := s.Counter("sonata_flightrec_evictions_total"); got != 1 {
		t.Errorf("evictions_total = %d, want 1", got)
	}
}

// TestHandler drives /debug/queries in-process: JSON with history, the text
// rendering, and parameter validation.
func TestHandler(t *testing.T) {
	rec := New(8, nil)
	p := rec.Track(TrackConfig{QID: 5, Level: 24, EstWork: 1, NumLeft: 3, Stages: testStages()})
	for w := 0; w < 3; w++ {
		p.Tuple()
		rec.Commit(w, 100, nil)
	}
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/queries?n=2")
	if code != 200 {
		t.Fatalf("JSON status = %d", code)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if s.Window != 2 || len(s.Queries) != 1 || len(s.History) != 2 {
		t.Errorf("snapshot = window %d, %d queries, %d history; want 2/1/2",
			s.Window, len(s.Queries), len(s.History))
	}
	if s.Queries[0].QID != 5 || s.Queries[0].Level != 24 {
		t.Errorf("record identity = q%d/r%d, want q5/r24", s.Queries[0].QID, s.Queries[0].Level)
	}

	if code, body := get("/debug/queries?fmt=text&ops=1"); code != 200 ||
		!strings.Contains(body, "QID") || !strings.Contains(body, "L0 filter@sw") {
		t.Errorf("text render: code %d body:\n%s", code, body)
	}
	if code, _ := get("/debug/queries?n=bogus"); code != 400 {
		t.Errorf("bad n: code %d, want 400", code)
	}
}

// TestRenderTop smoke-checks the top view with and without a previous frame.
func TestRenderTop(t *testing.T) {
	rec := New(4, nil)
	p := rec.Track(TrackConfig{QID: 9, EstWork: 1, RefFrom: 8, NumLeft: 3,
		Stages: testStages()})
	p.Tuple()
	p.AddRegCapacity(16)
	p.RegOccupied(4)
	rec.Commit(0, 50, nil)
	s1 := rec.Snapshot(0)
	first := RenderTop(nil, &s1, 1.0)
	if !strings.Contains(first, "sonata top") || !strings.Contains(first, "50.0x") {
		t.Errorf("first frame missing header/reduction:\n%s", first)
	}
	p.Tuple()
	p.Tuple()
	rec.Commit(1, 50, nil)
	s2 := rec.Snapshot(0)
	second := RenderTop(&s1, &s2, 2.0)
	if !strings.Contains(second, "window 1") {
		t.Errorf("second frame missing window header:\n%s", second)
	}
}
