// Package queries implements the eleven telemetry tasks of Table 3 in the
// paper, expressed against Sonata's query builder. Thresholds are
// parameterized so the evaluation can scale them with trace volume.
package queries

import (
	"fmt"
	"time"

	"repro/internal/fields"
	"repro/internal/query"
)

// Params holds the tunable thresholds (the Th, Th1, Th2 constants of the
// paper's example queries) and the shared window size.
type Params struct {
	Window time.Duration

	// NewTCPThresh is the per-host count of newly opened connections.
	NewTCPThresh uint64
	// SSHBruteThresh is the per-host count of distinct (source, packet
	// length) SSH login attempts.
	SSHBruteThresh uint64
	// SpreaderThresh is the distinct-destination fanout of a superspreader.
	SpreaderThresh uint64
	// PortScanThresh is the distinct destination-port count of a scanner.
	PortScanThresh uint64
	// DDoSThresh is the distinct-source count aimed at one host.
	DDoSThresh uint64
	// SYNFloodThresh is the per-host excess of SYNs over SYN-ACKs.
	SYNFloodThresh uint64
	// IncompleteThresh is the per-host excess of SYNs over FINs.
	IncompleteThresh uint64
	// SlowlorisBytesThresh (Th1) is the minimum byte volume for a host to be
	// considered, and SlowlorisRatioThresh (Th2) the scaled
	// connections-per-byte threshold.
	SlowlorisBytesThresh uint64
	SlowlorisRatioThresh uint64
	// SlowlorisScale rescales connections before the integer division.
	SlowlorisScale uint64
	// DNSTunnelThresh is the per-client count of distinct query names.
	DNSTunnelThresh uint64
	// ZorroTelnetThresh (Th1) is the count of similar-sized telnet packets,
	// ZorroKeywordThresh (Th2) the count of keyword payloads.
	ZorroTelnetThresh  uint64
	ZorroKeywordThresh uint64
	// ZorroLenBucket is the power-of-two bucket for "similar-sized" packets.
	ZorroLenBucket uint64
	// DNSReflectThresh is the distinct-resolver count of a reflection
	// victim.
	DNSReflectThresh uint64
}

// DefaultParams returns thresholds tuned for the synthetic workload's
// default scale (about 10^5 background packets per 3-second window).
func DefaultParams() Params {
	return Params{
		Window:               3 * time.Second,
		NewTCPThresh:         120,
		SSHBruteThresh:       30,
		SpreaderThresh:       150,
		PortScanThresh:       150,
		DDoSThresh:           200,
		SYNFloodThresh:       120,
		IncompleteThresh:     100,
		SlowlorisBytesThresh: 3000,
		SlowlorisRatioThresh: 15, // conns*1000/bytes
		SlowlorisScale:       1000,
		DNSTunnelThresh:      80,
		ZorroTelnetThresh:    50,
		ZorroKeywordThresh:   1,
		ZorroLenBucket:       64,
		DNSReflectThresh:     120,
	}
}

// NewlyOpenedTCPConns is Query 1 of the paper: hosts receiving more than
// Th pure-SYN packets in a window.
func NewlyOpenedTCPConns(p Params) *query.Query {
	return query.NewBuilder("newly_opened_tcp_conns", p.Window).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, p.NewTCPThresh)).
		MustBuild()
}

// SSHBruteForce detects hosts receiving many distinct (source, packet
// length) pairs on the SSH port — the signature of distributed
// password-guessing with fixed-size probes.
func SSHBruteForce(p Params) *query.Query {
	return query.NewBuilder("ssh_brute_force", p.Window).
		Filter(query.Eq(fields.Proto, fields.ProtoTCP), query.Eq(fields.DstPort, 22)).
		Map(query.F(fields.DstIP), query.RoundF(fields.PktLen, 4), query.F(fields.SrcIP)).
		Distinct().
		Map(query.C(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, p.SSHBruteThresh)).
		MustBuild()
}

// Superspreader detects sources contacting many distinct destinations.
func Superspreader(p Params) *query.Query {
	return query.NewBuilder("superspreader", p.Window).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
		Distinct().
		Map(query.C(fields.SrcIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.SrcIP).
		Filter(query.Gt(fields.AggVal, p.SpreaderThresh)).
		MustBuild()
}

// PortScan detects sources probing many distinct destination ports.
func PortScan(p Params) *query.Query {
	return query.NewBuilder("port_scan", p.Window).
		Filter(query.Eq(fields.Proto, fields.ProtoTCP)).
		Map(query.F(fields.SrcIP), query.F(fields.DstPort)).
		Distinct().
		Map(query.C(fields.SrcIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.SrcIP).
		Filter(query.Gt(fields.AggVal, p.PortScanThresh)).
		MustBuild()
}

// DDoS detects hosts receiving traffic from many distinct sources.
func DDoS(p Params) *query.Query {
	return query.NewBuilder("ddos", p.Window).
		Map(query.F(fields.DstIP), query.F(fields.SrcIP)).
		Distinct().
		Map(query.C(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, p.DDoSThresh)).
		MustBuild()
}

// TCPSYNFlood joins per-host SYN counts with per-host SYN-ACK responses and
// reports hosts whose SYN excess passes the threshold. The SYN-ACK counter
// keys on the responder (source) address renamed to the victim column.
func TCPSYNFlood(p Params) *query.Query {
	synAcks := query.NewBuilder("syn_acks", p.Window).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN|fields.FlagACK)).
		Map(query.Named(fields.DstIP, query.F(fields.SrcIP)), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP)
	return query.NewBuilder("tcp_syn_flood", p.Window).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		OuterJoin(synAcks, fields.DstIP).
		Map(query.C(fields.DstIP), query.Diff(fields.AggVal, fields.AggVal2)).
		Filter(query.Gt(fields.AggVal, p.SYNFloodThresh)).
		MustBuild()
}

// TCPIncompleteFlows reports hosts with many more connection openings
// (SYN) than completions (FIN).
func TCPIncompleteFlows(p Params) *query.Query {
	fins := query.NewBuilder("fins", p.Window).
		Filter(query.MaskEq(fields.TCPFlags, fields.FlagFIN, fields.FlagFIN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP)
	return query.NewBuilder("tcp_incomplete_flows", p.Window).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		OuterJoin(fins, fields.DstIP).
		Map(query.C(fields.DstIP), query.Diff(fields.AggVal, fields.AggVal2)).
		Filter(query.Gt(fields.AggVal, p.IncompleteThresh)).
		MustBuild()
}

// SlowlorisAttacks is Query 2 of the paper: hosts with a high ratio of
// connections to bytes. The left side counts distinct connections per host;
// the right side sums bytes per host (thresholded at Th1); the join divides.
func SlowlorisAttacks(p Params) *query.Query {
	bytesPerHost := query.NewBuilder("bytes_per_host", p.Window).
		Filter(query.Eq(fields.Proto, fields.ProtoTCP)).
		Map(query.F(fields.DstIP), query.F(fields.PktLen)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, p.SlowlorisBytesThresh))
	return query.NewBuilder("slowloris_attacks", p.Window).
		Filter(query.Eq(fields.Proto, fields.ProtoTCP)).
		Map(query.F(fields.DstIP), query.F(fields.SrcIP), query.F(fields.SrcPort)).
		Distinct().
		Map(query.C(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Join(bytesPerHost, fields.DstIP).
		Map(query.C(fields.DstIP), query.Ratio(fields.AggVal, fields.AggVal2, p.SlowlorisScale)).
		Filter(query.Gt(fields.AggVal, p.SlowlorisRatioThresh)).
		MustBuild()
}

// DNSTunneling detects clients issuing many DNS queries with distinct
// names; tunnels encode data in unique labels. Parsing the query name
// requires the stream processor.
func DNSTunneling(p Params) *query.Query {
	return query.NewBuilder("dns_tunneling", p.Window).
		Filter(query.Eq(fields.DNSQR, 0), query.Eq(fields.DstPort, 53)).
		Map(query.F(fields.SrcIP), query.F(fields.DNSQName)).
		Distinct().
		Map(query.C(fields.SrcIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.SrcIP).
		Filter(query.Gt(fields.AggVal, p.DNSTunnelThresh)).
		MustBuild()
}

// ZorroAttack is Query 3 of the paper: hosts that receive more than Th1
// similar-sized telnet packets and, among those, more than Th2 packets with
// the "zorro" keyword in the payload.
func ZorroAttack(p Params) *query.Query {
	telnetVolume := query.NewBuilder("telnet_volume", p.Window).
		Filter(query.Eq(fields.DstPort, 23)).
		Map(query.F(fields.DstIP), query.RoundF(fields.PktLen, p.ZorroLenBucket), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP, fields.PktLen).
		Filter(query.Gt(fields.AggVal, p.ZorroTelnetThresh))
	return query.NewBuilder("zorro_attack", p.Window).
		Filter(query.Eq(fields.DstPort, 23)).
		Join(telnetVolume, fields.DstIP).
		Filter(query.Contains(fields.Payload, "zorro")).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Ge(fields.AggVal, p.ZorroKeywordThresh)).
		MustBuild()
}

// DNSReflection detects hosts receiving DNS responses from many distinct
// resolvers — the victim side of an amplification attack.
func DNSReflection(p Params) *query.Query {
	return query.NewBuilder("dns_reflection", p.Window).
		Filter(query.Eq(fields.Proto, fields.ProtoUDP), query.Eq(fields.SrcPort, 53)).
		Map(query.F(fields.DstIP), query.F(fields.SrcIP)).
		Distinct().
		Map(query.C(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, p.DNSReflectThresh)).
		MustBuild()
}

// All returns the full Table 3 query set with IDs assigned in table order
// (1-11).
func All(p Params) []*query.Query {
	qs := []*query.Query{
		NewlyOpenedTCPConns(p),
		SSHBruteForce(p),
		Superspreader(p),
		PortScan(p),
		DDoS(p),
		TCPSYNFlood(p),
		TCPIncompleteFlows(p),
		SlowlorisAttacks(p),
		DNSTunneling(p),
		ZorroAttack(p),
		DNSReflection(p),
	}
	for i, q := range qs {
		q.ID = uint16(i + 1)
	}
	return qs
}

// TopEight returns the eight header-only queries evaluated in Figures 7 and
// 8 of the paper (those that process only layer-3/4 fields).
func TopEight(p Params) []*query.Query {
	qs := []*query.Query{
		NewlyOpenedTCPConns(p),
		SSHBruteForce(p),
		Superspreader(p),
		PortScan(p),
		DDoS(p),
		TCPSYNFlood(p),
		TCPIncompleteFlows(p),
		SlowlorisAttacks(p),
	}
	for i, q := range qs {
		q.ID = uint16(i + 1)
	}
	return qs
}

// ByName returns the named query from the full set.
func ByName(p Params, name string) (*query.Query, error) {
	for _, q := range All(p) {
		if q.Name == name {
			return q, nil
		}
	}
	return nil, fmt.Errorf("queries: no query named %q", name)
}
