package queries

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
)

func TestAllElevenBuild(t *testing.T) {
	p := DefaultParams()
	qs := All(p)
	if len(qs) != 11 {
		t.Fatalf("query count = %d", len(qs))
	}
	seen := map[string]bool{}
	for i, q := range qs {
		if q.ID != uint16(i+1) {
			t.Errorf("%s: ID = %d, want %d", q.Name, q.ID, i+1)
		}
		if seen[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		seen[q.Name] = true
		if err := query.Validate(q); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if q.LinesOfCode() >= 20 {
			t.Errorf("%s: %d lines, paper promises < 20", q.Name, q.LinesOfCode())
		}
	}
}

func TestTopEightAvoidDeepParsing(t *testing.T) {
	for _, q := range TopEight(DefaultParams()) {
		// The top eight only touch layer-3/4 headers: every pipeline must
		// have a nonzero switch-capable prefix.
		if n := query.SwitchPrefixLen(q.Left); n == 0 {
			t.Errorf("%s: left pipeline not switch-capable at all", q.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p := DefaultParams()
	q, err := ByName(p, "superspreader")
	if err != nil || q.Name != "superspreader" {
		t.Fatalf("ByName = %v, %v", q, err)
	}
	if _, err := ByName(p, "nonexistent"); err == nil {
		t.Error("ByName accepted unknown name")
	}
}

// TestEachQueryDetectsItsAttack runs every query All-SP style over a
// workload containing exactly its target attack and checks the victim
// appears in the results — the ground-truth detection property the whole
// system rests on.
func TestEachQueryDetectsItsAttack(t *testing.T) {
	const pkts = 8000
	p := DefaultParams()
	p.NewTCPThresh = 200
	p.SSHBruteThresh = 25
	p.SpreaderThresh = 60
	p.PortScanThresh = 60
	p.DDoSThresh = 70
	p.SYNFloodThresh = 200
	p.IncompleteThresh = 60
	p.SlowlorisBytesThresh = 2000
	p.SlowlorisRatioThresh = 5
	p.DNSTunnelThresh = 40
	p.ZorroTelnetThresh = 20
	p.DNSReflectThresh = 70

	victim := trace.StandardVictim
	attacker := packet.IPv4Addr(10, 200, 0, 1)
	cases := []struct {
		q      *query.Query
		attack func(g *trace.Generator)
		want   uint32 // expected key in results
	}{
		{NewlyOpenedTCPConns(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewSYNFlood(victim, 64, 400, 0, g.Duration()))
		}, victim},
		{SSHBruteForce(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewSSHBruteForce(victim, 48, 120, 0, g.Duration()))
		}, victim},
		{Superspreader(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewSuperspreader(attacker, 200, 300, 0, g.Duration()))
		}, attacker},
		{PortScan(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewPortScan(attacker, victim, 300, 350, 0, g.Duration()))
		}, attacker},
		{DDoS(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewDDoS(victim, 300, 400, 0, g.Duration()))
		}, victim},
		{TCPSYNFlood(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewSYNFlood(victim, 64, 400, 0, g.Duration()))
		}, victim},
		{TCPIncompleteFlows(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewTCPIncomplete(victim, 100, 300, 0, g.Duration()))
		}, victim},
		{SlowlorisAttacks(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewSlowloris(victim, 300, 0, g.Duration()))
		}, victim},
		{DNSTunneling(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewDNSTunnel(attacker, packet.IPv4Addr(8, 8, 8, 8),
				"exfil.bad.com", 80, 0, g.Duration()))
		}, attacker},
		{ZorroAttack(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewZorro(attacker, victim, 200, 0, g.Duration(), time.Second))
		}, victim},
		{DNSReflection(p), func(g *trace.Generator) {
			g.AddAttack(trace.NewDNSReflection(victim, 200, 400, 0, g.Duration()))
		}, victim},
	}

	for _, c := range cases {
		c := c
		t.Run(c.q.Name, func(t *testing.T) {
			cfg := trace.DefaultConfig()
			cfg.PacketsPerWindow = pkts
			cfg.Windows = 1
			cfg.Hosts = 500
			g, err := trace.NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.attack(g)

			c.q.ID = 1
			engine := stream.NewEngine(nil)
			if err := engine.Install(c.q, 0, stream.Partition{}); err != nil {
				t.Fatal(err)
			}
			parser := packet.NewParser(packet.ParserOptions{DecodeDNS: true})
			var pkt packet.Packet
			for _, r := range g.WindowRecords(0).Records {
				if parser.Parse(r.Data, &pkt) != nil {
					continue
				}
				engine.IngestPacket(1, 0, &pkt)
				if c.q.HasJoin() {
					engine.IngestRightPacket(1, 0, &pkt)
				}
			}
			results, _ := engine.EndWindow()
			found := false
			for _, tup := range results[0].Tuples {
				if len(tup) > 0 && tup[0].U == uint64(c.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("victim %s not among %d results: %v",
					packet.IPv4String(c.want), len(results[0].Tuples), results[0].Tuples)
			}
			// Precision: the needle list must stay tiny relative to hosts.
			if len(results[0].Tuples) > 25 {
				t.Errorf("%d results; query not selective", len(results[0].Tuples))
			}
		})
	}
}
