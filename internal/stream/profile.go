package stream

import (
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/tuple"
)

// PipelineProfile summarizes one pipeline's behaviour over one window of
// training traffic. It supplies the planner's workload inputs (Table 1):
// N_{q,t}, the tuples that would reach the stream processor if the pipeline
// were cut after operator t, and the state footprint of each stateful
// operator.
type PipelineProfile struct {
	// Input is the number of packets fed to the pipeline.
	Input uint64
	// OutAfter[i] is the number of records emitted by op i during the
	// window: a streaming pass count for stateless operators before any
	// state, and an end-of-window count (one per key) at and after the
	// first stateful operator — exactly the switch's reporting behaviour.
	// OutAfter[len(ops)] counts records that fell off the pipeline end.
	OutAfter []uint64
	// Keys[i] is the number of distinct keys held by stateful op i.
	Keys []uint64
	// KeyBits[i] is the width of stateful op i's key in bits.
	KeyBits []int
	// Outputs are the final tuples the pipeline produced.
	Outputs [][]tuple.Value
}

// Profiler replays training windows through a pipeline to measure workload
// costs. A zero Profiler is not usable; construct with NewProfiler.
//
// The profiler runs the same batched executor as the live engine: packets
// walk the packet-phase prefix one at a time (raw frames have no columnar
// form), and the tuples the landing map produces buffer into the column
// batch. EndWindow flushes the batch before draining state, so OutAfter and
// Keys — the planner's N_{q,t} inputs — are exactly what the per-tuple
// interpreter would have counted.
type Profiler struct {
	ops  []query.Op
	exec *pipeExec
}

// NewProfiler prepares a profiler over the full pipeline (partition point
// zero). The dyn tables allow profiling pipelines that contain dynamic
// refinement filters; pass nil when there are none.
func NewProfiler(ops []query.Op, dyn *DynTables) *Profiler {
	if dyn == nil {
		dyn = NewDynTables()
	}
	return &Profiler{ops: ops, exec: newPipeExec(ops, 0, dyn)}
}

// Dyn exposes the profiler's dynamic tables so callers can install
// refinement keys between windows.
func (p *Profiler) Dyn() *DynTables { return p.exec.dyn }

// Feed pushes one parsed packet into the pipeline.
func (p *Profiler) Feed(pkt *packet.Packet) {
	p.exec.ingestPacket(0, pkt)
	p.exec.inputCount++
}

// EndWindow closes the window and returns the profile: any tuples still
// buffered in the column batch flush through the op chain first, then state
// drains. Counters and state reset for the next window.
func (p *Profiler) EndWindow() PipelineProfile {
	prof := PipelineProfile{
		Input:    p.exec.inputCount,
		OutAfter: make([]uint64, len(p.ops)+1),
		Keys:     make([]uint64, len(p.ops)),
		KeyBits:  make([]int, len(p.ops)),
	}
	prof.Outputs = p.exec.endWindow()
	copy(prof.OutAfter, p.exec.outCounts)
	// Key counts are captured by endWindow at drain time: a stateful op fed
	// by another stateful op's flush only fills during the drain.
	for i := range p.ops {
		if p.exec.states[i] != nil {
			prof.Keys[i] = p.exec.lastKeys[i]
			prof.KeyBits[i] = statefulKeyBits(&p.ops[i])
		}
	}
	p.exec.resetCounts()
	p.exec.inputCount = 0
	return prof
}

// statefulKeyBits returns the metadata width of a stateful op's key.
func statefulKeyBits(o *query.Op) int {
	bits := 0
	in := o.InSchema()
	for _, k := range o.KeyCols {
		bits += in[k].Bits()
	}
	return bits
}
