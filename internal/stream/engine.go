package stream

import (
	"fmt"
	"sort"

	"repro/internal/fields"
	"repro/internal/flightrec"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/telemetry"
	"repro/internal/tracez"
	"repro/internal/tuple"
)

// Side distinguishes the two pipelines of a join query.
type Side uint8

const (
	// SideLeft is the main pipeline.
	SideLeft Side = iota
	// SideRight is the joined sub-query.
	SideRight
)

// Partition records where the planner cut each pipeline: ops with index
// below the start ran on the switch; the stream processor resumes there.
type Partition struct {
	LeftStart  int
	RightStart int
}

// Result is one query's output for one window at one refinement level.
type Result struct {
	QID    uint16
	Level  uint8
	Schema tuple.Schema
	Tuples [][]tuple.Value
	// LeftOutputs / RightOutputs are the sub-pipeline outputs of a join
	// query before the join (nil for non-join queries). Dynamic refinement
	// gates on these: the paper's case study identifies the victim from the
	// telnet-volume sub-query before the payload condition ever fires.
	LeftOutputs  [][]tuple.Value
	RightOutputs [][]tuple.Value
	LeftSchema   tuple.Schema
	RightSchema  tuple.Schema
}

// QueryKey identifies one installed (query, refinement level) instance.
type QueryKey struct {
	QID   uint16
	Level uint8
}

// Metrics counts the load placed on the stream processor, the paper's
// headline comparison metric.
type Metrics struct {
	// TuplesIn is the number of tuples (or mirrored packets) the stream
	// processor ingested this window.
	TuplesIn uint64
	// PerQuery breaks TuplesIn down by query instance.
	PerQuery map[QueryKey]uint64
}

// Merge folds another shard's window metrics into m. Query instances are
// disjoint across shards, so the per-query merge is a plain union and the
// total a plain sum — the associativity the sharded runtime relies on.
func (m *Metrics) Merge(o Metrics) {
	m.TuplesIn += o.TuplesIn
	if len(o.PerQuery) > 0 && m.PerQuery == nil {
		m.PerQuery = make(map[QueryKey]uint64, len(o.PerQuery))
	}
	for k, v := range o.PerQuery {
		m.PerQuery[k] += v
	}
}

// joinItem is a buffered left-side record of a packet-phase join awaiting
// the right side's window output.
type joinItem struct {
	key  string
	vals []tuple.Value
}

// runningQuery is the executable state of one installed query instance.
type runningQuery struct {
	q    *query.Query
	key  QueryKey
	part Partition

	left  *pipeExec
	right *pipeExec // nil without join
	post  *pipeExec // nil without join

	// Packet-phase-left join support: prePacketOps run at ingest (left ops
	// plus post's packet-phase filters); postMap is post's first map;
	// pending buffers mapped tuples keyed by join key.
	packetLeft  bool
	prePacket   *pipeExec
	postMapIdx  int // index of the map within Post.Ops; -1 if none
	pending     []joinItem
	joinKeyIdxL []int // join key columns in left output schema (tuple-left)
	rightKeyIdx []int // join key columns in right output schema

	// m holds the instance's pre-registered telemetry series (zero value
	// when the engine is uninstrumented).
	m queryMetrics
	// fr is the instance's flight-recorder probe (nil when no recorder is
	// attached; nil probes no-op).
	fr *flightrec.Probe
}

// Engine hosts the installed query instances and processes one window at a
// time. It is not safe for concurrent use; the runtime serializes access
// (ingest happens on the emitter path, EndWindow on the window boundary).
type Engine struct {
	dyn     *DynTables
	queries map[QueryKey]*runningQuery
	order   []QueryKey
	metrics Metrics
	// reg/m carry the telemetry registry and engine-wide handles; nil
	// handles (uninstrumented) make every increment a no-op.
	reg *telemetry.Registry
	m   engineMetrics
	// frLookup resolves a (qid, level) instance to its flight-recorder
	// probe (nil when no recorder is attached).
	frLookup func(qid uint16, level uint8) *flightrec.Probe
	// tring is the span lane EndWindow records per-instance op_eval spans
	// into (nil when tracing is off). The runtime assigns each shard engine
	// its own lane and sets the lane's parent before the window close.
	tring *tracez.Ring
	// scalar forces the per-tuple interpreter on every executor; the default
	// (false) is the columnar batched path. The two are bit-identical — scalar
	// mode exists as the differential-testing oracle and an escape hatch.
	scalar bool
}

// NewEngine returns an engine sharing the given dynamic filter tables with
// the runtime.
func NewEngine(dyn *DynTables) *Engine {
	if dyn == nil {
		dyn = NewDynTables()
	}
	return &Engine{dyn: dyn, queries: make(map[QueryKey]*runningQuery),
		metrics: Metrics{PerQuery: make(map[QueryKey]uint64)}}
}

// Dyn exposes the dynamic filter tables (the runtime installs refinement
// outputs through it).
func (e *Engine) Dyn() *DynTables { return e.dyn }

// Install registers a query instance at the given refinement level with the
// given partition. Installing the same (QID, Level) twice replaces the
// previous instance.
func (e *Engine) Install(q *query.Query, level uint8, part Partition) error {
	if err := query.Validate(q); err != nil {
		return err
	}
	if part.LeftStart < 0 || part.LeftStart > len(q.Left.Ops) {
		return fmt.Errorf("stream: left partition %d out of range", part.LeftStart)
	}
	rq := &runningQuery{
		q: q, key: QueryKey{q.ID, level}, part: part,
		left: newPipeExec(q.Left.Ops, part.LeftStart, e.dyn),
	}
	if q.HasJoin() {
		if part.RightStart < 0 || part.RightStart > len(q.Right.Ops) {
			return fmt.Errorf("stream: right partition %d out of range", part.RightStart)
		}
		rq.right = newPipeExec(q.Right.Ops, part.RightStart, e.dyn)
		rq.post = newPipeExec(q.Post.Ops, 0, e.dyn)
		rs := q.Right.OutSchema()
		for _, k := range q.JoinKeys {
			rq.rightKeyIdx = append(rq.rightKeyIdx, rs.Index(k))
		}
		if ls := q.Left.OutSchema(); ls != nil {
			for _, k := range q.JoinKeys {
				rq.joinKeyIdxL = append(rq.joinKeyIdxL, ls.Index(k))
			}
		} else {
			rq.packetLeft = true
			rq.postMapIdx = -1
			// Build the pre-packet executor: left ops plus post's
			// packet-phase filter prefix (they commute with the semi-join).
			pre := append([]query.Op(nil), q.Left.Ops...)
			for i := range q.Post.Ops {
				o := &q.Post.Ops[i]
				if o.Kind == query.OpMap {
					rq.postMapIdx = i
					break
				}
				if !o.PacketPhase() || o.Kind != query.OpFilter {
					return fmt.Errorf("stream: unsupported post-join op %v before map", o.Kind)
				}
				pre = append(pre, *o)
			}
			rq.prePacket = newPipeExec(pre, part.LeftStart, e.dyn)
		}
	}
	rq.left.scalar = e.scalar
	if rq.right != nil {
		rq.right.scalar = e.scalar
		rq.post.scalar = e.scalar
	}
	if rq.prePacket != nil {
		rq.prePacket.scalar = e.scalar
	}
	if _, exists := e.queries[rq.key]; !exists {
		e.order = append(e.order, rq.key)
	}
	e.instrumentQuery(rq)
	if e.frLookup != nil {
		rq.fr = e.frLookup(rq.key.QID, rq.key.Level)
	}
	e.queries[rq.key] = rq
	return nil
}

// SetScalar switches every installed (and future) executor between the
// columnar batched path (false, the default) and the per-tuple scalar
// interpreter (true). Safe only between windows: switching with rows
// buffered would strand them.
func (e *Engine) SetScalar(v bool) {
	e.scalar = v
	for _, key := range e.order {
		rq := e.queries[key]
		rq.left.scalar = v
		if rq.right != nil {
			rq.right.scalar = v
			rq.post.scalar = v
		}
		if rq.prePacket != nil {
			rq.prePacket.scalar = v
		}
	}
}

// AttachTracez assigns the span lane EndWindow records op_eval spans into.
// A nil ring detaches (recording becomes a no-op).
func (e *Engine) AttachTracez(r *tracez.Ring) { e.tring = r }

// AttachFlightRec wires the flight recorder's probe lookup into the engine
// and retro-attaches every already-installed instance. Instances installed
// later pick it up automatically. A nil lookup detaches.
func (e *Engine) AttachFlightRec(lookup func(qid uint16, level uint8) *flightrec.Probe) {
	e.frLookup = lookup
	for _, key := range e.order {
		rq := e.queries[key]
		rq.fr = nil
		if lookup != nil {
			rq.fr = lookup(key.QID, key.Level)
		}
	}
}

// Installed returns the keys of all installed query instances in
// installation order.
func (e *Engine) Installed() []QueryKey {
	return append([]QueryKey(nil), e.order...)
}

func (e *Engine) instance(qid uint16, level uint8) *runningQuery {
	rq, ok := e.queries[QueryKey{qid, level}]
	if !ok {
		panic(fmt.Sprintf("stream: no query instance q%d/r%d installed", qid, level))
	}
	return rq
}

func (e *Engine) count(rq *runningQuery) {
	e.metrics.TuplesIn++
	e.metrics.PerQuery[rq.key]++
	e.m.tuplesIn.Inc()
	rq.m.tuplesIn.Inc()
	// The flight recorder shares this increment with PerQuery, so the
	// /debug/queries tuple counts can never disagree with WindowReport.
	rq.fr.Tuple()
}

// IngestPacket delivers a raw (or mirrored) packet to the left pipeline of
// a query instance. The packet may be reused by the caller after return;
// nothing aliases it past this call.
func (e *Engine) IngestPacket(qid uint16, level uint8, pkt *packet.Packet) {
	rq := e.instance(qid, level)
	e.count(rq)
	if rq.packetLeft {
		e.ingestPacketLeft(rq, pkt)
		return
	}
	rq.left.ingestPacket(rq.part.LeftStart, pkt)
}

// IngestRightPacket delivers a raw packet to the right (joined) pipeline.
func (e *Engine) IngestRightPacket(qid uint16, level uint8, pkt *packet.Packet) {
	rq := e.instance(qid, level)
	e.count(rq)
	if rq.right == nil {
		panic(fmt.Sprintf("stream: q%d has no right pipeline", qid))
	}
	rq.right.ingestPacket(rq.part.RightStart, pkt)
}

// ingestPacketLeft handles the packet-phase-left join path: run left ops
// plus post's packet filters, then extract the join key and post-map tuple
// and buffer them until the right side's window output is known.
func (e *Engine) ingestPacketLeft(rq *runningQuery, pkt *packet.Packet) {
	pre := rq.prePacket
	// Run the filters; a surviving packet falls off the end of pre's ops.
	before := pre.outCounts[len(pre.ops)]
	pre.ingestPacket(rq.part.LeftStart, pkt)
	if pre.outCounts[len(pre.ops)] == before {
		return // dropped
	}
	keyVals := make([]tuple.Value, len(rq.q.JoinKeys))
	for i, f := range rq.q.JoinKeys {
		v, ok := pkt.Field(f)
		if !ok {
			return
		}
		keyVals[i] = v
	}
	key := tuple.Key(keyVals, identityCols(len(keyVals)))
	var vals []tuple.Value
	if rq.postMapIdx >= 0 {
		mapOp := &rq.q.Post.Ops[rq.postMapIdx]
		vals = make([]tuple.Value, len(mapOp.Cols))
		for j := range mapOp.Cols {
			v, ok := mapOp.Cols[j].Expr.EvalPacket(pkt)
			if !ok {
				return
			}
			vals[j] = v
		}
	} else {
		vals = keyVals
	}
	rq.pending = append(rq.pending, joinItem{key: key, vals: vals})
}

// IngestTuple delivers a tuple entering at the installed partition point of
// the given side.
func (e *Engine) IngestTuple(qid uint16, level uint8, side Side, vals []tuple.Value) {
	rq := e.instance(qid, level)
	e.count(rq)
	switch side {
	case SideLeft:
		rq.left.feedTuple(rq.part.LeftStart, vals)
	case SideRight:
		if rq.right == nil {
			panic(fmt.Sprintf("stream: q%d has no right pipeline", qid))
		}
		rq.right.feedTuple(rq.part.RightStart, vals)
	}
}

// IngestTupleAt delivers a tuple entering at an explicit op index — the
// collision-overflow path, where the switch shunts the stateful operator's
// input tuple and the stream processor runs the operator itself.
func (e *Engine) IngestTupleAt(qid uint16, level uint8, side Side, opIdx int, vals []tuple.Value) {
	rq := e.instance(qid, level)
	e.count(rq)
	ex := e.execFor(rq, side)
	ex.feedTuple(opIdx, vals)
}

func (e *Engine) execFor(rq *runningQuery, side Side) *pipeExec {
	if side == SideRight {
		if rq.right == nil {
			panic(fmt.Sprintf("stream: q%d has no right pipeline", rq.key.QID))
		}
		return rq.right
	}
	if rq.packetLeft {
		return rq.prePacket
	}
	return rq.left
}

// IngestAgg merges a pre-aggregated (key, value) record — a register dump
// from the switch — into the stateful operator at index opIdx of the given
// side, combining with any overflow packets the stream processor absorbed
// itself during the window.
func (e *Engine) IngestAgg(qid uint16, level uint8, side Side, opIdx int, keyVals []tuple.Value, agg uint64) {
	rq := e.instance(qid, level)
	e.count(rq)
	e.execFor(rq, side).mergeAgg(opIdx, keyVals, agg)
}

// EndWindow closes the current window: drains all stateful state, performs
// joins, runs post-join pipelines, and returns per-instance results plus
// the window's load metrics. Results are ordered by installation and tuples
// sorted for determinism.
func (e *Engine) EndWindow() ([]Result, Metrics) {
	results := make([]Result, 0, len(e.order))
	for _, key := range e.order {
		rq := e.queries[key]
		sp := e.tring.Start(tracez.NameOpEval)
		sp.Instance(key.QID, key.Level)
		res := Result{QID: key.QID, Level: key.Level, Schema: rq.q.FinalSchema()}
		if rq.q.HasJoin() {
			e.endJoin(rq, &res)
		} else {
			res.Tuples = rq.left.endWindow()
		}
		sortTuples(res.Tuples)
		sp.Attr(tracez.AttrTuplesIn, e.metrics.PerQuery[key])
		sp.Attr(tracez.AttrResults, uint64(len(res.Tuples)))
		elapsed := sp.End()
		rq.m.evalNS.ObserveDuration(elapsed)
		e.m.evalNS.ObserveDuration(elapsed)
		rq.m.results.Add(uint64(len(res.Tuples)))
		e.m.resultTuples.Add(uint64(len(res.Tuples)))
		if rq.fr != nil {
			rq.fr.Eval(uint64(len(res.Tuples)), elapsed)
			e.flushOpCounts(rq)
		}
		results = append(results, res)
		e.harvestBatchStats(rq)
	}
	m := e.metrics
	e.metrics = Metrics{PerQuery: make(map[QueryKey]uint64)}
	return results, m
}

// harvestBatchStats folds one instance's executor flush counters into the
// engine-wide batch telemetry and zeroes them for the next window.
func (e *Engine) harvestBatchStats(rq *runningQuery) {
	var flushes, rows uint64
	for _, ex := range []*pipeExec{rq.left, rq.right, rq.post, rq.prePacket} {
		if ex == nil {
			continue
		}
		flushes += ex.flushes
		rows += ex.flushRows
		ex.flushes, ex.flushRows = 0, 0
	}
	e.m.batchFlushes.Add(flushes)
	e.m.batchRows.Add(rows)
}

// flushOpCounts copies each executor's per-op window counters into the
// instance's flight-recorder probe under the probe's global stage indexing
// (left ops, then right, then post), then resets the executors' counters.
// The packet-phase-left path needs a remap: its pre-packet executor holds
// the left ops followed by post's packet-filter prefix, so indices past the
// left pipeline belong to the post segment.
func (e *Engine) flushOpCounts(rq *runningQuery) {
	p := rq.fr
	left := rq.left
	if rq.packetLeft {
		left = rq.prePacket
	}
	nLeft := len(rq.q.Left.Ops)
	for i := range left.ops {
		stage := i
		if i >= nLeft {
			stage = p.PostBase() + (i - nLeft)
		}
		p.OpSP(stage, left.inCounts[i], left.outCounts[i])
	}
	left.resetCounts()
	if rq.right != nil {
		for j := range rq.right.ops {
			p.OpSP(p.RightBase()+j, rq.right.inCounts[j], rq.right.outCounts[j])
		}
		rq.right.resetCounts()
		for j := range rq.post.ops {
			p.OpSP(p.PostBase()+j, rq.post.inCounts[j], rq.post.outCounts[j])
		}
		rq.post.resetCounts()
	}
}

// endJoin performs the window-end join and post pipeline for one instance,
// filling the result's final tuples and both sides' pre-join outputs.
func (e *Engine) endJoin(rq *runningQuery, res *Result) {
	rightOuts := rq.right.endWindow()
	rightBy := make(map[string][]tuple.Value, len(rightOuts))
	rs := rq.q.Right.OutSchema()
	for _, out := range rightOuts {
		k := tuple.Key(out, rq.rightKeyIdx)
		if _, dup := rightBy[k]; !dup { // aggregated keys are unique
			rightBy[k] = out
		}
	}
	res.RightOutputs = rightOuts
	res.RightSchema = rs

	if rq.packetLeft {
		// Semi-join the buffered packet-derived tuples, then resume the
		// post pipeline after its map.
		resume := rq.postMapIdx + 1
		if rq.postMapIdx < 0 {
			resume = len(rq.q.Post.Ops)
		}
		for _, item := range rq.pending {
			if _, ok := rightBy[item.key]; !ok {
				continue
			}
			rq.post.feedTuple(resume, item.vals)
		}
		rq.pending = nil
		rq.prePacket.endWindow() // reset any state; outputs unused
		res.Tuples = rq.post.endWindow()
		return
	}

	leftOuts := rq.left.endWindow()
	res.LeftOutputs = leftOuts
	res.LeftSchema = rq.q.Left.OutSchema()
	nonKeyR := nonKeyCols(rs, rq.rightKeyIdx)
	ls := rq.q.Left.OutSchema()
	nonKeyL := nonKeyCols(ls, rq.joinKeyIdxL)
	zeroRight := make([]tuple.Value, len(rs))
	for _, lo := range leftOuts {
		ro, ok := rightBy[tuple.Key(lo, rq.joinKeyIdxL)]
		if !ok {
			if !rq.q.JoinOuter {
				continue
			}
			ro = zeroRight // left-outer: absent aggregates read as zero
		}
		joined := make([]tuple.Value, 0, len(rq.joinKeyIdxL)+len(nonKeyL)+len(nonKeyR))
		for _, i := range rq.joinKeyIdxL {
			joined = append(joined, lo[i])
		}
		for _, i := range nonKeyL {
			joined = append(joined, lo[i])
		}
		for _, i := range nonKeyR {
			joined = append(joined, ro[i])
		}
		rq.post.feedTuple(0, joined)
	}
	res.Tuples = rq.post.endWindow()
}

func nonKeyCols(s tuple.Schema, keyIdx []int) []int {
	var out []int
	for i := range s {
		if !intsHave(keyIdx, i) {
			out = append(out, i)
		}
	}
	return out
}

func intsHave(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sortTuples(ts [][]tuple.Value) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for k := 0; k < n; k++ {
			if !a[k].Equal(b[k]) {
				return a[k].Less(b[k])
			}
		}
		return len(a) < len(b)
	})
}

// FieldOfResult is a convenience for tests and reports: the value of the
// named column in a result tuple.
func FieldOfResult(r *Result, t []tuple.Value, f fields.ID) (tuple.Value, bool) {
	i := r.Schema.Index(f)
	if i < 0 || i >= len(t) {
		return tuple.Value{}, false
	}
	return t[i], true
}
