package stream

// Columnar batched execution (DESIGN.md "batch/bitmap invariants").
//
// Tuples entering a pipeline suffix are buffered into a column-major batch
// (one []tuple.Value per field, recycled across windows) instead of being
// walked through the op chain one at a time. A flush runs the whole batch
// through the chain with op dispatch amortized per batch: filters clear bits
// in a selection bitmap instead of early-returning per tuple, maps evaluate
// column-at-a-time into preallocated ping-pong output columns, and
// reduce/distinct probe their keytab arena in a fused bulk loop.
//
// The batch flushes whenever per-tuple semantics could otherwise diverge
// from the scalar interpreter: at capacity, when the next tuple enters at a
// different op (or with a different width), before an out-of-band mergeAgg,
// and at window close before and between stateful drains. Because every
// flush preserves the arrival order of its rows, keytab first-touch
// (insertion) order — and with it every flush order, count, and report — is
// bit-identical to the per-tuple interpreter's.

import (
	"math/bits"

	"repro/internal/keytab"
	"repro/internal/query"
	"repro/internal/tuple"
)

// batchCap bounds the rows buffered between flushes. It matches the
// runtime's fan-out batch (DefaultBatchSize): big enough to amortize
// dispatch, small enough to stay in cache.
const batchCap = 256

// colBatch is the reusable column-major tuple buffer of one pipeExec. Only
// the first width columns are in use; entry is the op index its rows enter
// at (all rows of a batch share one entry point by construction).
type colBatch struct {
	entry int
	width int
	n     int
	cols  [][]tuple.Value
}

func (b *colBatch) reset() {
	for j := range b.cols {
		b.cols[j] = b.cols[j][:0]
	}
	b.n = 0
}

// bufferTuple appends one tuple (entering at op index at) to the batch,
// flushing first if the batch holds rows for a different entry point or
// width, and after if the batch reaches capacity. Values are copied; vals
// may live in caller scratch.
func (e *pipeExec) bufferTuple(at int, vals []tuple.Value) {
	if at >= len(e.ops) {
		// Fell off the end before any op: identical to the scalar tail.
		e.outCounts[len(e.ops)]++
		e.outVals = append(e.outArena(), vals...)
		e.outOffs = append(e.outOffs, len(e.outVals))
		return
	}
	b := &e.batch
	if b.n > 0 && (b.entry != at || b.width != len(vals)) {
		e.flushBatch()
	}
	if b.n == 0 {
		b.entry, b.width = at, len(vals)
		for len(b.cols) < len(vals) {
			b.cols = append(b.cols, nil)
		}
	}
	for j, v := range vals {
		b.cols[j] = append(b.cols[j], v)
	}
	b.n++
	if b.n >= batchCap {
		e.flushBatch()
	}
}

// bufferReduceRow buffers a drained reduce entry — its key columns plus the
// aggregate as the trailing column — entering at op index at. It is the
// batched form of the scalar drain's append(kv..., agg) row build, without
// the per-row allocation.
func (e *pipeExec) bufferReduceRow(at int, kv []tuple.Value, agg uint64) {
	if at >= len(e.ops) {
		e.outCounts[len(e.ops)]++
		arena := append(e.outArena(), kv...)
		e.outVals = append(arena, tuple.U64(agg))
		e.outOffs = append(e.outOffs, len(e.outVals))
		return
	}
	w := len(kv) + 1
	b := &e.batch
	if b.n > 0 && (b.entry != at || b.width != w) {
		e.flushBatch()
	}
	if b.n == 0 {
		b.entry, b.width = at, w
		for len(b.cols) < w {
			b.cols = append(b.cols, nil)
		}
	}
	for j, v := range kv {
		b.cols[j] = append(b.cols[j], v)
	}
	b.cols[len(kv)] = append(b.cols[len(kv)], tuple.U64(agg))
	b.n++
	if b.n >= batchCap {
		e.flushBatch()
	}
}

// flushBatch runs the buffered rows through the op chain column-wise. A
// no-op on an empty batch (and therefore always in scalar mode, which never
// buffers).
func (e *pipeExec) flushBatch() {
	b := &e.batch
	n := b.n
	if n == 0 {
		return
	}
	e.flushes++
	e.flushRows += uint64(n)
	cols := b.cols[:b.width]
	width := b.width
	e.sel = selAll(e.sel, n)
	live := n
	for i := b.entry; i < len(e.ops) && live > 0; i++ {
		o := &e.ops[i]
		e.inCounts[i] += uint64(live)
		switch o.Kind {
		case query.OpFilter:
			if o.DynFilterTable != "" {
				live = e.dynFilterCols(o, cols, live)
			} else {
				for ci := range o.Clauses {
					cl := &o.Clauses[ci]
					live = filterColumn(e.sel, n, cols[cl.Col], cl)
					if live == 0 {
						break
					}
				}
			}
			e.outCounts[i] += uint64(live)
		case query.OpMap:
			// Maps run branch-free over all n rows, deselected ones
			// included: tuple-phase expressions are total, so stale rows
			// just compute values nobody reads.
			out := e.nextMapCols(len(o.Cols), n)
			for j := range o.Cols {
				o.Cols[j].Expr.EvalTupleCols(cols, n, out[j])
			}
			cols, width = out, len(o.Cols)
			e.outCounts[i] += uint64(live)
		case query.OpReduce:
			e.reduceCols(o, e.states[i], cols, n)
			b.reset()
			return
		case query.OpDistinct:
			e.distinctCols(o, e.states[i], cols, n)
			b.reset()
			return
		}
	}
	if live > 0 {
		// Surviving rows fell off the end: gather each into an owned copy,
		// in row (arrival) order, exactly as the scalar tail does.
		e.outCounts[len(e.ops)] += uint64(live)
		rows := selRows(e.sel, n, e.bulkRows)
		e.bulkRows = rows
		arena := e.outArena()
		for _, r := range rows {
			for j := 0; j < width; j++ {
				arena = append(arena, cols[j][r])
			}
			e.outOffs = append(e.outOffs, len(arena))
		}
		e.outVals = arena
	}
	b.reset()
}

// nextMapCols returns a column set (width w, n rows each) for a map op's
// output, alternating between two buffers so a map never writes the columns
// it is reading (its input is either the batch itself or the other buffer).
func (e *pipeExec) nextMapCols(w, n int) [][]tuple.Value {
	e.mapPing ^= 1
	buf := e.mapColBufs[e.mapPing]
	for len(buf) < w {
		buf = append(buf, nil)
	}
	for j := 0; j < w; j++ {
		if cap(buf[j]) < n {
			buf[j] = make([]tuple.Value, n)
		}
		buf[j] = buf[j][:n]
	}
	e.mapColBufs[e.mapPing] = buf
	return buf[:w]
}

// dynFilterCols applies a dynamic-refinement filter to the batch: the
// masked lookup keys of all selected rows are built into the bulk scratch
// and tested in one ContainsKeyBatch call, which loads the table snapshot
// once for the whole batch. Returns the surviving row count.
func (e *pipeExec) dynFilterCols(o *query.Op, cols [][]tuple.Value, live int) int {
	rows := selRows(e.sel, e.batch.n, e.bulkRows)
	keys := e.bulkKeys[:0]
	ends := e.bulkEnds[:0]
	for _, r := range rows {
		for _, c := range o.DynKeyCols {
			keys = tuple.AppendKeyValue(keys, query.MaskValue(o.DynKeyField, cols[c][r], o.DynLevel))
		}
		ends = append(ends, uint32(len(keys)))
	}
	e.bulkKeys, e.bulkEnds, e.bulkRows = keys, ends, rows
	return e.dyn.ContainsKeyBatch(o.DynFilterTable, keys, ends, rows, e.sel, live)
}

// reduceCols folds the batch's selected rows into a reduce op's keytab in a
// fused bulk loop: grouping keys are encoded back-to-back (AppendKeyCols),
// resolved in one LookupBulk pass, then hits fold and misses insert in row
// order. Insertion order equals first-touch row order and the aggregation
// functions are commutative and associative, so the resulting state is
// bit-identical to per-tuple GetOrInsert.
func (e *pipeExec) reduceCols(o *query.Op, st *keytab.Table, cols [][]tuple.Value, n int) {
	rows := selRows(e.sel, n, e.bulkRows)
	keys := e.bulkKeys[:0]
	ends := e.bulkEnds[:0]
	for _, r := range rows {
		keys = tuple.AppendKeyCols(keys, cols, o.KeyCols, int(r))
		ends = append(ends, uint32(len(keys)))
	}
	e.bulkKeys, e.bulkEnds, e.bulkRows = keys, ends, rows
	if cap(e.bulkIdxs) < len(ends) {
		e.bulkIdxs = make([]int32, len(ends))
	}
	idxs := e.bulkIdxs[:len(ends)]
	st.LookupBulk(keys, ends, idxs)
	valCol := cols[o.ValCol]
	start := uint32(0)
	for i, end := range ends {
		v := valCol[rows[i]].U
		if idx := int(idxs[i]); idx >= 0 {
			st.SetAgg(idx, o.Func.Apply(st.Agg(idx), v))
		} else {
			// Absent at lookup time — either genuinely new or first seen
			// earlier in this same batch; GetOrInsertCols re-probes and
			// handles both.
			idx, existed := st.GetOrInsertCols(keys[start:end], cols, o.KeyCols, int(rows[i]), v)
			if existed {
				st.SetAgg(idx, o.Func.Apply(st.Agg(idx), v))
			}
		}
		start = end
	}
}

// distinctCols inserts the batch's selected rows into a distinct op's
// keytab; like the scalar path, hits are ignored.
func (e *pipeExec) distinctCols(o *query.Op, st *keytab.Table, cols [][]tuple.Value, n int) {
	rows := selRows(e.sel, n, e.bulkRows)
	keys := e.bulkKeys[:0]
	ends := e.bulkEnds[:0]
	for _, r := range rows {
		keys = tuple.AppendKeyCols(keys, cols, o.KeyCols, int(r))
		ends = append(ends, uint32(len(keys)))
	}
	e.bulkKeys, e.bulkEnds, e.bulkRows = keys, ends, rows
	if cap(e.bulkIdxs) < len(ends) {
		e.bulkIdxs = make([]int32, len(ends))
	}
	idxs := e.bulkIdxs[:len(ends)]
	st.LookupBulk(keys, ends, idxs)
	start := uint32(0)
	for i, end := range ends {
		if idxs[i] < 0 {
			st.GetOrInsertCols(keys[start:end], cols, o.KeyCols, int(rows[i]), 1)
		}
		start = end
	}
}

// filterColumn tests one filter clause against a column, clearing the
// selection bit of every failing row, and returns the surviving count. Only
// rows still selected are tested (bitmap iteration skips cleared words).
func filterColumn(sel []uint64, n int, col []tuple.Value, cl *query.Clause) int {
	live := 0
	nw := (n + 63) >> 6
	for w := 0; w < nw; w++ {
		m := sel[w]
		for b := m; b != 0; b &= b - 1 {
			r := w<<6 | bits.TrailingZeros64(b)
			if cl.MatchValue(col[r]) {
				live++
			} else {
				m &^= 1 << uint(r&63)
			}
		}
		sel[w] = m
	}
	return live
}

// selAll returns sel resized for n rows with every bit [0, n) set.
func selAll(sel []uint64, n int) []uint64 {
	nw := (n + 63) >> 6
	if cap(sel) < nw {
		sel = make([]uint64, nw)
	}
	sel = sel[:nw]
	for w := range sel {
		sel[w] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		sel[nw-1] = (uint64(1) << uint(r)) - 1
	}
	return sel
}

// selRows collects the selected row indices in ascending order into the
// (reused) rows scratch.
func selRows(sel []uint64, n int, rows []int32) []int32 {
	rows = rows[:0]
	nw := (n + 63) >> 6
	for w := 0; w < nw; w++ {
		for b := sel[w]; b != 0; b &= b - 1 {
			rows = append(rows, int32(w<<6|bits.TrailingZeros64(b)))
		}
	}
	return rows
}

// ContainsKeyBatch tests a batch of encoded keys against table, clearing
// the selection bit of each row whose key is absent. keys holds the
// concatenated encodings, ends[i] the end offset of key i, rows[i] the
// selection row key i guards. The snapshot pointer is loaded once for the
// whole batch (ContainsKey loads it per call); like ContainsKey, the lookup
// itself allocates nothing. Returns the surviving count given live rows
// were selected on entry.
func (d *DynTables) ContainsKeyBatch(table string, keys []byte, ends []uint32, rows []int32, sel []uint64, live int) int {
	set := d.snap.Load().sets[table]
	start := uint32(0)
	for i, end := range ends {
		if _, ok := set[string(keys[start:end])]; !ok {
			r := rows[i]
			sel[r>>6] &^= 1 << uint(r&63)
			live--
		}
		start = end
	}
	return live
}
