package stream

import (
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/tuple"
)

// mkSyn builds and parses a SYN packet to dst.
func mkSyn(t testing.TB, src, dst uint32) *packet.Packet {
	t.Helper()
	frame := packet.BuildFrame(nil, &packet.FrameSpec{
		SrcIP: src, DstIP: dst, Proto: 6, SrcPort: 999, DstPort: 80,
		TCPFlags: fields.FlagSYN, Pad: 60,
	})
	var pkt packet.Packet
	if err := packet.NewParser(packet.ParserOptions{}).Parse(frame, &pkt); err != nil {
		t.Fatal(err)
	}
	return &pkt
}

func query1(th uint64) *query.Query {
	q := query.NewBuilder("q1", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, th)).
		MustBuild()
	q.ID = 1
	return q
}

func TestFullQueryOnPackets(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Install(query1(3), 0, Partition{}); err != nil {
		t.Fatal(err)
	}
	victim := packet.IPv4Addr(9, 9, 9, 9)
	for i := 0; i < 5; i++ {
		e.IngestPacket(1, 0, mkSyn(t, uint32(i+1), victim))
	}
	e.IngestPacket(1, 0, mkSyn(t, 1, packet.IPv4Addr(8, 8, 8, 8))) // below threshold
	results, m := e.EndWindow()
	if m.TuplesIn != 6 {
		t.Errorf("TuplesIn = %d", m.TuplesIn)
	}
	if len(results) != 1 || len(results[0].Tuples) != 1 {
		t.Fatalf("results = %+v", results)
	}
	got := results[0].Tuples[0]
	if got[0].U != uint64(victim) || got[1].U != 5 {
		t.Errorf("result = %v", got)
	}
	// Window state must reset.
	results, _ = e.EndWindow()
	if len(results[0].Tuples) != 0 {
		t.Error("state leaked across windows")
	}
}

func TestPartitionedTupleEntry(t *testing.T) {
	// Switch executed filter+map (ops 0-1); SP resumes at the reduce.
	e := NewEngine(nil)
	if err := e.Install(query1(2), 0, Partition{LeftStart: 2}); err != nil {
		t.Fatal(err)
	}
	dst := tuple.U64(42)
	for i := 0; i < 4; i++ {
		e.IngestTuple(1, 0, SideLeft, []tuple.Value{dst, tuple.U64(1)})
	}
	results, _ := e.EndWindow()
	if len(results[0].Tuples) != 1 || results[0].Tuples[0][1].U != 4 {
		t.Fatalf("results = %+v", results)
	}
}

func TestRegisterDumpMergesWithOverflow(t *testing.T) {
	// Switch executed everything through the reduce; it dumps aggregated
	// counts at window end. Overflow packets for a colliding key were
	// processed SP-side during the window. Counts must combine.
	e := NewEngine(nil)
	if err := e.Install(query1(5), 0, Partition{LeftStart: 3}); err != nil {
		t.Fatal(err)
	}
	key := []tuple.Value{tuple.U64(7)}
	// Overflow path: raw map-output tuples merged into the reduce (op 2).
	for i := 0; i < 3; i++ {
		e.IngestAgg(1, 0, SideLeft, 2, key, 1)
	}
	// Register dump at window end: 4 more from the switch.
	e.IngestAgg(1, 0, SideLeft, 2, key, 4)
	results, _ := e.EndWindow()
	if len(results[0].Tuples) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if got := results[0].Tuples[0][1].U; got != 7 {
		t.Errorf("merged count = %d, want 7", got)
	}
}

func TestDistinctThenReduce(t *testing.T) {
	q := query.NewBuilder("spread", time.Second).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
		Distinct().
		Map(query.C(fields.SrcIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.SrcIP).
		Filter(query.Gt(fields.AggVal, 2)).
		MustBuild()
	q.ID = 3
	e := NewEngine(nil)
	if err := e.Install(q, 0, Partition{}); err != nil {
		t.Fatal(err)
	}
	spreader := uint32(1000)
	// Same destination repeated: distinct collapses it.
	for i := 0; i < 10; i++ {
		e.IngestPacket(3, 0, mkSyn(t, spreader, 2000))
	}
	if results, _ := e.EndWindow(); len(results[0].Tuples) != 0 {
		t.Error("repeated destination should not trip the distinct count")
	}
	// Three distinct destinations: fanout = 3 > 2.
	for d := uint32(0); d < 3; d++ {
		for i := 0; i < 4; i++ {
			e.IngestPacket(3, 0, mkSyn(t, spreader, 3000+d))
		}
	}
	results, _ := e.EndWindow()
	if len(results[0].Tuples) != 1 || results[0].Tuples[0][1].U != 3 {
		t.Fatalf("results = %+v", results[0].Tuples)
	}
}

func TestTupleJoinWithRatio(t *testing.T) {
	// Slowloris-style: conns per host joined with bytes per host.
	bytesQ := query.NewBuilder("bytes", time.Second).
		Filter(query.Eq(fields.Proto, 6)).
		Map(query.F(fields.DstIP), query.F(fields.PktLen)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 100))
	q := query.NewBuilder("loris", time.Second).
		Filter(query.Eq(fields.Proto, 6)).
		Map(query.F(fields.DstIP), query.F(fields.SrcIP), query.F(fields.SrcPort)).
		Distinct().
		Map(query.C(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Join(bytesQ, fields.DstIP).
		Map(query.C(fields.DstIP), query.Ratio(fields.AggVal, fields.AggVal2, 1000)).
		Filter(query.Gt(fields.AggVal, 10)).
		MustBuild()
	q.ID = 8
	e := NewEngine(nil)
	if err := e.Install(q, 0, Partition{}); err != nil {
		t.Fatal(err)
	}

	victim := packet.IPv4Addr(5, 5, 5, 5)
	normal := packet.IPv4Addr(6, 6, 6, 6)
	parser := packet.NewParser(packet.ParserOptions{})
	send := func(src, dst uint32, sport uint16, pad int) {
		frame := packet.BuildFrame(nil, &packet.FrameSpec{
			SrcIP: src, DstIP: dst, Proto: 6, SrcPort: sport, DstPort: 80,
			TCPFlags: fields.FlagACK, Pad: pad,
		})
		var pkt packet.Packet
		if err := parser.Parse(frame, &pkt); err != nil {
			t.Fatal(err)
		}
		// Both sides of the join see the full packet stream.
		e.IngestPacket(8, 0, &pkt)
		e.IngestRightPacket(8, 0, &pkt)
	}
	// Victim: 200 connections of 60 bytes each => 200*1000/12000 = 16 > 10.
	for i := 0; i < 200; i++ {
		send(uint32(100+i), victim, uint16(10000+i), 60)
	}
	// Normal server: 3 connections, lots of bytes.
	for i := 0; i < 3; i++ {
		for j := 0; j < 30; j++ {
			send(uint32(300+i), normal, uint16(20000+i), 1500)
		}
	}
	results, _ := e.EndWindow()
	if len(results[0].Tuples) != 1 {
		t.Fatalf("join results = %+v", results[0].Tuples)
	}
	if results[0].Tuples[0][0].U != uint64(victim) {
		t.Errorf("detected %v, want victim", results[0].Tuples[0][0])
	}
}

func TestPacketPhaseJoinZorro(t *testing.T) {
	vol := query.NewBuilder("vol", time.Second).
		Filter(query.Eq(fields.DstPort, 23)).
		Map(query.F(fields.DstIP), query.RoundF(fields.PktLen, 64), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP, fields.PktLen).
		Filter(query.Gt(fields.AggVal, 5))
	q := query.NewBuilder("zorro", time.Second).
		Filter(query.Eq(fields.DstPort, 23)).
		Join(vol, fields.DstIP).
		Filter(query.Contains(fields.Payload, "zorro")).
		Map(query.F(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Ge(fields.AggVal, 1)).
		MustBuild()
	q.ID = 10
	e := NewEngine(nil)
	if err := e.Install(q, 0, Partition{}); err != nil {
		t.Fatal(err)
	}

	victim := packet.IPv4Addr(99, 7, 0, 25)
	bystander := packet.IPv4Addr(99, 7, 0, 26)
	parser := packet.NewParser(packet.ParserOptions{})
	telnet := func(dst uint32, payload string, n int) {
		for i := 0; i < n; i++ {
			frame := packet.BuildFrame(nil, &packet.FrameSpec{
				SrcIP: 1, DstIP: dst, Proto: 6, SrcPort: 31337, DstPort: 23,
				TCPFlags: fields.FlagPSH, Payload: []byte(payload), Pad: 90,
			})
			var pkt packet.Packet
			if err := parser.Parse(frame, &pkt); err != nil {
				t.Fatal(err)
			}
			e.IngestPacket(10, 0, &pkt)
			e.IngestRightPacket(10, 0, &pkt)
		}
	}
	telnet(victim, "admin", 10)          // similar-sized brute force
	telnet(victim, "run zorro go", 2)    // keyword after shell
	telnet(bystander, "run zorro go", 1) // keyword but low volume: no match

	results, _ := e.EndWindow()
	if len(results[0].Tuples) != 1 {
		t.Fatalf("zorro results = %+v", results[0].Tuples)
	}
	got := results[0].Tuples[0]
	if got[0].U != uint64(victim) || got[1].U != 2 {
		t.Errorf("zorro result = %v", got)
	}
}

func TestDynamicFilterGatesTraffic(t *testing.T) {
	// Level-2 instance of query 1 whose head carries a dynamic filter on
	// dIP/8 as produced by query augmentation.
	q := query1(0)
	dynOp := query.NewDynPacketFilter("q1.r8", fields.DstIP, 8)
	q.Left.Ops = append([]query.Op{dynOp}, q.Left.Ops...)
	q.ID = 1

	dyn := NewDynTables()
	e := NewEngine(dyn)
	if err := e.Install(q, 2, Partition{}); err != nil {
		t.Fatal(err)
	}
	inside := packet.IPv4Addr(9, 1, 2, 3)
	outside := packet.IPv4Addr(10, 1, 2, 3)

	// Before any update the table is empty: nothing passes.
	e.IngestPacket(1, 2, mkSyn(t, 1, inside))
	if results, _ := e.EndWindow(); len(results[0].Tuples) != 0 {
		t.Error("empty dyn table let traffic through")
	}

	dyn.Replace("q1.r8", []string{
		DynKeyFromValue(fields.DstIP, tuple.U64(uint64(inside)), 8),
	})
	e.IngestPacket(1, 2, mkSyn(t, 1, inside))
	e.IngestPacket(1, 2, mkSyn(t, 1, outside))
	results, _ := e.EndWindow()
	if len(results[0].Tuples) != 1 || results[0].Tuples[0][0].U != uint64(inside) {
		t.Fatalf("dyn filter results = %+v", results[0].Tuples)
	}
}

func TestAggFunctionsThroughEngine(t *testing.T) {
	build := func(f query.AggFunc) *query.Query {
		q := query.NewBuilder("m", time.Second).
			Map(query.F(fields.DstIP), query.F(fields.PktLen)).
			Reduce(f, fields.DstIP).
			MustBuild()
		q.ID = 2
		return q
	}
	for _, c := range []struct {
		f    query.AggFunc
		want uint64
	}{{query.AggMax, 1500}, {query.AggMin, 60}, {query.AggSum, 1560}} {
		e := NewEngine(nil)
		if err := e.Install(build(c.f), 0, Partition{}); err != nil {
			t.Fatal(err)
		}
		parser := packet.NewParser(packet.ParserOptions{})
		for _, pad := range []int{60, 1500} {
			frame := packet.BuildFrame(nil, &packet.FrameSpec{
				SrcIP: 1, DstIP: 2, Proto: 6, Pad: pad})
			var pkt packet.Packet
			if err := parser.Parse(frame, &pkt); err != nil {
				t.Fatal(err)
			}
			e.IngestPacket(2, 0, &pkt)
		}
		results, _ := e.EndWindow()
		if len(results[0].Tuples) != 1 || results[0].Tuples[0][1].U != c.want {
			t.Errorf("%v: results = %+v, want %d", c.f, results[0].Tuples, c.want)
		}
	}
}

func TestMultipleLevelsIndependent(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Install(query1(0), 1, Partition{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(query1(0), 2, Partition{}); err != nil {
		t.Fatal(err)
	}
	e.IngestPacket(1, 1, mkSyn(t, 1, 50))
	results, m := e.EndWindow()
	if m.PerQuery[QueryKey{1, 1}] != 1 || m.PerQuery[QueryKey{1, 2}] != 0 {
		t.Errorf("per-query metrics = %+v", m.PerQuery)
	}
	var r1, r2 *Result
	for i := range results {
		switch results[i].Level {
		case 1:
			r1 = &results[i]
		case 2:
			r2 = &results[i]
		}
	}
	if len(r1.Tuples) != 1 || len(r2.Tuples) != 0 {
		t.Errorf("level isolation broken: %+v / %+v", r1.Tuples, r2.Tuples)
	}
}

func TestInstallValidation(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Install(query1(1), 0, Partition{LeftStart: 99}); err == nil {
		t.Error("out-of-range partition accepted")
	}
	bad := &query.Query{Name: "empty", Window: time.Second, Left: &query.Pipeline{}}
	if err := e.Install(bad, 0, Partition{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestDynTables(t *testing.T) {
	d := NewDynTables()
	if d.Contains("t", "k") {
		t.Error("empty table contained key")
	}
	d.Replace("t", []string{"a", "b"})
	if !d.Contains("t", "a") || !d.Contains("t", "b") || d.Contains("t", "c") {
		t.Error("membership wrong after Replace")
	}
	if d.Size("t") != 2 {
		t.Errorf("Size = %d", d.Size("t"))
	}
	d.Replace("t", []string{"c"})
	if d.Contains("t", "a") || !d.Contains("t", "c") {
		t.Error("Replace did not replace")
	}
}
