// Package stream implements Sonata's stream processor: a micro-batch
// dataflow engine executing the portions of each query that the planner
// leaves off the switch (the Spark Streaming role in the paper).
//
// Tuples enter mid-pipeline at the partition point chosen by the planner;
// stateful operators accumulate per-window state that is flushed when the
// window closes; join queries combine their sub-pipelines at flush time; and
// register dumps from the switch merge into the same aggregation state that
// collision-overflow packets were folded into, reproducing the paper's
// end-of-window reconciliation (Section 3.1.3).
package stream

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fields"
	"repro/internal/keytab"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/tuple"
)

// DynTables holds the dynamic-refinement filter sets, updated by the
// runtime at window boundaries and consulted by filter operators that carry
// a DynFilterTable tag. Readers see copy-on-write snapshots swapped through
// an atomic pointer, so the per-tuple Contains path takes no lock; writers
// (Replace) must be serialized by the caller, which the runtime does by
// updating tables only at window boundaries with the workers joined.
type DynTables struct {
	snap atomic.Pointer[dynSnapshot]
}

// dynSnapshot is one immutable generation of all tables. The inner sets are
// never mutated after publication.
type dynSnapshot struct {
	sets map[string]map[string]struct{}
}

// NewDynTables returns an empty table store.
func NewDynTables() *DynTables {
	d := &DynTables{}
	d.snap.Store(&dynSnapshot{sets: make(map[string]map[string]struct{})})
	return d
}

// Replace installs the allowed key set for a table, replacing any previous
// contents (the per-window refresh of Figure 4's red filters). It publishes
// a new snapshot; in-flight readers keep the old one.
func (d *DynTables) Replace(table string, keys []string) {
	cur := d.snap.Load()
	next := &dynSnapshot{sets: make(map[string]map[string]struct{}, len(cur.sets)+1)}
	for name, set := range cur.sets {
		next.sets[name] = set
	}
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	next.sets[table] = set
	d.snap.Store(next)
}

// Contains reports whether key is currently allowed by table. A table that
// was never installed admits nothing: finer refinement levels stay idle
// until the coarser level reports.
func (d *DynTables) Contains(table, key string) bool {
	set := d.snap.Load().sets[table]
	_, ok := set[key]
	return ok
}

// ContainsKey is the hot-path form of Contains: the key arrives as encoded
// bytes (typically a reused scratch buffer) and the lookup allocates
// nothing — the string conversion in the map index does not escape.
func (d *DynTables) ContainsKey(table string, key []byte) bool {
	set := d.snap.Load().sets[table]
	_, ok := set[string(key)]
	return ok
}

// Size returns the number of keys installed for a table.
func (d *DynTables) Size(table string) int {
	return len(d.snap.Load().sets[table])
}

// pipeExec executes the suffix of one pipeline, from op index start to the
// end. Inputs may be raw packets (when ops[start] is packet-phase) or
// tuples. Stateful operators hold per-window state; EndWindow drains them in
// order and returns the pipeline's outputs.
type pipeExec struct {
	ops   []query.Op
	start int
	dyn   *DynTables

	// states holds each stateful op's window state (nil for stateless ops):
	// an arena-backed table keyed by the encoded grouping key, holding the
	// running aggregate and the decoded key columns. Tables are reset, not
	// reallocated, at window end, so a steady-state window touches no
	// allocator.
	states []*keytab.Table
	// outCounts[i] counts emissions of op i this window (used by the
	// profiler to estimate the paper's N_{q,t}).
	outCounts []uint64
	// inCounts[i] counts tuples (or packets, or merged aggregates) entering
	// op i — the flight recorder's per-stage load signal. Reset together
	// with outCounts.
	inCounts []uint64
	// The output arena collects tuples that fell off the end of the
	// pipeline. Each row is an owned copy (inputs may live in caller
	// scratch, and flush-path tuples alias keytab storage), but instead of
	// one allocation per row, values append into outVals with outOffs
	// marking row ends; endWindow materializes the row headers into outRows.
	// All three recycle at the first output of the *next* window (outSealed
	// flips at endWindow), so a window's returned rows remain valid until
	// the next window closes — the retention contract WindowReport documents
	// for sinks, now load-bearing for the runtime's close path too.
	outVals   []tuple.Value
	outOffs   []int
	outRows   [][]tuple.Value
	outSealed bool
	// keyScratch avoids re-allocating key buffers on the hot path.
	keyScratch []byte
	// dynKeyScratch/dynValScratch back the dynamic-filter key build; separate
	// from keyScratch because a tuple can pass a dyn filter and then reach a
	// stateful op in the same walk.
	dynKeyScratch []byte
	dynValScratch []tuple.Value
	// inputCount tracks packets fed this window (profiling only).
	inputCount uint64
	// lastKeys[i] is the key count of stateful op i at the moment the last
	// endWindow drained it. Downstream stateful ops are only populated by
	// upstream flushes, so counts must be captured during the drain, not
	// before it.
	lastKeys []uint64

	// scalar selects the per-tuple interpreter over the batched executor —
	// the differential oracle mode. In scalar mode the batch is never
	// populated, so every flush is a no-op.
	scalar bool
	// batch buffers tuples entering the tuple-phase op chain until a flush
	// point (capacity, entry/width change, out-of-band merge, window close);
	// flushBatch in batch.go runs the columnar walk. All batch scratch below
	// is recycled across flushes and windows.
	batch colBatch
	// sel is the flush's selection bitmap: bit r live means row r has passed
	// every filter so far.
	sel []uint64
	// mapColBufs are the ping-pong column sets map ops evaluate into; a map
	// writes the buffer its input does not occupy, so chained maps never
	// alias. mapPing is the buffer the *previous* map wrote.
	mapColBufs [2][][]tuple.Value
	mapPing    int
	// mapOut[i] is op i's output-row scratch for the per-tuple walk (scalar
	// mode and the packet-phase map landing). Distinct ops get distinct
	// buffers so a downstream map can read its input while writing its own.
	mapOut [][]tuple.Value
	// bulkKeys/bulkEnds/bulkRows/bulkIdxs back the fused bulk probe: keys
	// holds the batch's concatenated grouping keys, ends their end offsets,
	// rows the selection row each key came from, idxs the LookupBulk results.
	bulkKeys []byte
	bulkEnds []uint32
	bulkRows []int32
	bulkIdxs []int32
	// flushes/flushRows count flushBatch invocations and the rows they
	// carried; the engine harvests them into telemetry at window close.
	flushes   uint64
	flushRows uint64
}

func newPipeExec(ops []query.Op, start int, dyn *DynTables) *pipeExec {
	e := &pipeExec{ops: ops, start: start, dyn: dyn,
		states: make([]*keytab.Table, len(ops)), outCounts: make([]uint64, len(ops)+1),
		inCounts: make([]uint64, len(ops))}
	// State exists for every stateful op, including those before the
	// partition point: register dumps from the switch merge into the state
	// of an op that nominally ran on the switch (see mergeAgg).
	for i := range ops {
		if ops[i].Stateful() {
			e.states[i] = keytab.New()
		}
	}
	return e
}

// ingestPacket pushes a raw packet through packet-phase ops starting at op
// index at; when a map converts it to a tuple the tuple continues through
// ingestTuple. Returns false if the packet was dropped by a filter.
func (e *pipeExec) ingestPacket(at int, pkt *packet.Packet) {
	for i := at; i < len(e.ops); i++ {
		e.inCounts[i]++
		o := &e.ops[i]
		if !o.PacketPhase() {
			panic(fmt.Sprintf("stream: op %d (%v) is tuple-phase but received a packet", i, o.Kind))
		}
		switch o.Kind {
		case query.OpFilter:
			if o.DynFilterTable != "" {
				v, ok := pkt.Field(o.DynKeyField)
				if !ok {
					return
				}
				e.dynKeyScratch = AppendDynKey(e.dynKeyScratch[:0], o.DynKeyField, v, o.DynLevel)
				if !e.dyn.ContainsKey(o.DynFilterTable, e.dynKeyScratch) {
					return
				}
			} else {
				for j := range o.Clauses {
					if !o.Clauses[j].MatchPacket(pkt) {
						return
					}
				}
			}
			e.outCounts[i]++
		case query.OpMap:
			vals := e.mapScratch(i, len(o.Cols))
			for j := range o.Cols {
				v, ok := o.Cols[j].Expr.EvalPacket(pkt)
				if !ok {
					return // packet lacks a required field
				}
				vals[j] = v
			}
			e.outCounts[i]++
			// The packet cannot be buffered (it lives in caller scratch), so
			// the landing map evaluates per packet; the tuple it produces is
			// copied into the batch (or walked scalar) from here.
			e.feedTuple(i+1, vals)
			return
		default:
			panic(fmt.Sprintf("stream: stateful op %v in packet phase", o.Kind))
		}
	}
	// Pipeline ended while still in packet phase: the result is the packet
	// itself; record its passage (callers that need the packets — the
	// packet-phase join path — intercept before this point).
	e.outCounts[len(e.ops)]++
}

// AppendDynKey appends the dynamic-filter lookup key for a single value
// masked to the filter's level, reusing dst's storage. The control path that
// installs table keys uses DynKeyFromValue (same encoding), so lookups
// always agree.
func AppendDynKey(dst []byte, f fields.ID, v tuple.Value, level int) []byte {
	return tuple.AppendKeyValue(dst, query.MaskValue(f, v, level))
}

// DynKeyFromValue builds the dynamic-filter lookup key for a single value
// masked to the filter's level — the allocating form used on the install
// side (runtime, planner training) where keys are retained.
func DynKeyFromValue(f fields.ID, v tuple.Value, level int) string {
	return string(AppendDynKey(nil, f, v, level))
}

// ingestTuple pushes a tuple through ops starting at index at, stopping at
// the first stateful op (which absorbs it into window state).
func (e *pipeExec) ingestTuple(at int, vals []tuple.Value) {
	for i := at; i < len(e.ops); i++ {
		e.inCounts[i]++
		o := &e.ops[i]
		switch o.Kind {
		case query.OpFilter:
			if o.DynFilterTable != "" {
				key := e.dynTupleKey(o, vals)
				if !e.dyn.ContainsKey(o.DynFilterTable, key) {
					return
				}
			} else {
				for j := range o.Clauses {
					if !o.Clauses[j].MatchTuple(vals) {
						return
					}
				}
			}
			e.outCounts[i]++
		case query.OpMap:
			// Per-op scratch instead of a per-tuple make: op i's buffer is
			// never the input of op i itself (walks visit each op once, with
			// strictly increasing indices), so reading vals while writing out
			// is alias-free, and everything downstream copies what it keeps.
			out := e.mapScratch(i, len(o.Cols))
			for j := range o.Cols {
				out[j] = o.Cols[j].Expr.EvalTuple(vals)
			}
			vals = out
			e.outCounts[i]++
		case query.OpReduce:
			st := e.states[i]
			e.keyScratch = tuple.AppendKey(e.keyScratch[:0], vals, o.KeyCols)
			idx, existed := st.GetOrInsert(e.keyScratch, vals, o.KeyCols, vals[o.ValCol].U)
			if existed {
				st.SetAgg(idx, o.Func.Apply(st.Agg(idx), vals[o.ValCol].U))
			}
			return
		case query.OpDistinct:
			st := e.states[i]
			e.keyScratch = tuple.AppendKey(e.keyScratch[:0], vals, o.KeyCols)
			st.GetOrInsert(e.keyScratch, vals, o.KeyCols, 1)
			return
		}
	}
	e.outCounts[len(e.ops)]++
	e.outVals = append(e.outArena(), vals...)
	e.outOffs = append(e.outOffs, len(e.outVals))
}

// outArena returns the output value arena ready for one more row's values,
// recycling the previous window's storage on the first output after a
// seal. Callers append the row's values and then its end offset.
func (e *pipeExec) outArena() []tuple.Value {
	if e.outSealed {
		e.outVals = e.outVals[:0]
		e.outOffs = e.outOffs[:0]
		e.outSealed = false
	}
	return e.outVals
}

// mergeAgg folds a pre-aggregated (key, value) produced by the switch into
// the stateful op at index at, using the op's own aggregation function so
// switch-side and overflow-side contributions combine correctly.
func (e *pipeExec) mergeAgg(at int, keyVals []tuple.Value, agg uint64) {
	// Folding out of band: flush buffered tuples first so the op's keytab
	// sees them in arrival order (first-touch order is the flush order).
	e.flushBatch()
	e.inCounts[at]++
	o := &e.ops[at]
	if !o.Stateful() {
		panic(fmt.Sprintf("stream: mergeAgg into stateless op %v", o.Kind))
	}
	st := e.states[at]
	e.keyScratch = tuple.AppendKey(e.keyScratch[:0], keyVals, identityCols(len(keyVals)))
	idx, existed := st.GetOrInsert(e.keyScratch, keyVals, nil, agg)
	if existed {
		st.SetAgg(idx, o.Func.Apply(st.Agg(idx), agg))
	}
}

// endWindow drains stateful state in pipeline order, cascading through
// downstream operators, and returns the final outputs. Keys flush in
// insertion (first-touch) order — deterministic, unlike the Go map's
// randomized iteration — and state is reset in place for the next window.
func (e *pipeExec) endWindow() [][]tuple.Value {
	// In-window traffic still sitting in the batch must reach the stateful
	// ops before any of them drains.
	e.flushBatch()
	if e.lastKeys == nil {
		e.lastKeys = make([]uint64, len(e.ops))
	}
	for i := 0; i < len(e.ops); i++ {
		st := e.states[i]
		if st == nil {
			continue
		}
		// Capture the key count now: every upstream stateful op has already
		// flushed into this one.
		e.lastKeys[i] = uint64(st.Len())
		o := &e.ops[i]
		n := st.Len()
		if !e.scalar {
			// Batched drain: buffer each flushed key row (entry i+1) and let
			// flushBatch walk the suffix columnar. The KeyVals slices alias
			// keytab storage, but bufferTuple copies the values immediately,
			// and the explicit flush below lands everything in the downstream
			// states before st resets.
			for k := 0; k < n; k++ {
				e.outCounts[i]++
				if o.Kind == query.OpReduce {
					e.bufferReduceRow(i+1, st.KeyVals(k), st.Agg(k))
				} else {
					e.bufferTuple(i+1, st.KeyVals(k))
				}
			}
			e.flushBatch()
			st.Reset()
			continue
		}
		for k := 0; k < n; k++ {
			kv := st.KeyVals(k)
			var out []tuple.Value
			switch o.Kind {
			case query.OpReduce:
				out = make([]tuple.Value, 0, len(kv)+1)
				out = append(out, kv...)
				out = append(out, tuple.U64(st.Agg(k)))
			case query.OpDistinct:
				out = kv
			}
			e.outCounts[i]++
			e.ingestTuple(i+1, out)
		}
		st.Reset()
	}
	return e.sealOutputs()
}

// sealOutputs materializes the window's output rows from the arena and
// seals it for recycling. Row headers are capacity-clamped so a consumer
// appending to a row cannot scribble into its neighbor. Returns nil (not
// an empty slice) for a window with no outputs — callers distinguish a
// side with no outputs from one with an empty output set.
func (e *pipeExec) sealOutputs() [][]tuple.Value {
	if e.outSealed {
		// Still sealed from the previous window: nothing was output since,
		// and the stale offsets must not be re-materialized.
		return nil
	}
	e.outSealed = true
	if len(e.outOffs) == 0 {
		return nil
	}
	rows := e.outRows[:0]
	start := 0
	for _, end := range e.outOffs {
		rows = append(rows, e.outVals[start:end:end])
		start = end
	}
	e.outRows = rows
	return rows
}

// feedTuple is the mode dispatch for tuples entering the op chain at index
// at: the per-tuple interpreter in scalar (oracle) mode, the column batch
// otherwise.
func (e *pipeExec) feedTuple(at int, vals []tuple.Value) {
	if e.scalar {
		e.ingestTuple(at, vals)
		return
	}
	e.bufferTuple(at, vals)
}

// mapScratch returns op i's map-output buffer, sized to n values. Buffers
// are per op index so no walk ever reads and writes the same one.
func (e *pipeExec) mapScratch(i, n int) []tuple.Value {
	if e.mapOut == nil {
		e.mapOut = make([][]tuple.Value, len(e.ops))
	}
	if cap(e.mapOut[i]) < n {
		e.mapOut[i] = make([]tuple.Value, n)
	}
	return e.mapOut[i][:n]
}

// resetCounts zeroes the per-op counters (profiling and flight-recorder
// granularity is one window).
func (e *pipeExec) resetCounts() {
	for i := range e.outCounts {
		e.outCounts[i] = 0
	}
	for i := range e.inCounts {
		e.inCounts[i] = 0
	}
}

// dynTupleKey builds the masked dynamic-filter key for a tuple-phase filter
// into the exec's scratch buffers; the result is valid until the next call.
func (e *pipeExec) dynTupleKey(o *query.Op, vals []tuple.Value) []byte {
	if cap(e.dynValScratch) < len(o.DynKeyCols) {
		e.dynValScratch = make([]tuple.Value, len(o.DynKeyCols))
	}
	masked := e.dynValScratch[:len(o.DynKeyCols)]
	for i, c := range o.DynKeyCols {
		masked[i] = query.MaskValue(o.DynKeyField, vals[c], o.DynLevel)
	}
	e.dynKeyScratch = tuple.AppendKey(e.dynKeyScratch[:0], masked, identityCols(len(masked)))
	return e.dynKeyScratch
}

var identityColCache = func() [][]int {
	c := make([][]int, 9)
	for n := range c {
		c[n] = make([]int, n)
		for i := 0; i < n; i++ {
			c[n][i] = i
		}
	}
	return c
}()

func identityCols(n int) []int {
	if n < len(identityColCache) {
		return identityColCache[n]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
