// Package stream implements Sonata's stream processor: a micro-batch
// dataflow engine executing the portions of each query that the planner
// leaves off the switch (the Spark Streaming role in the paper).
//
// Tuples enter mid-pipeline at the partition point chosen by the planner;
// stateful operators accumulate per-window state that is flushed when the
// window closes; join queries combine their sub-pipelines at flush time; and
// register dumps from the switch merge into the same aggregation state that
// collision-overflow packets were folded into, reproducing the paper's
// end-of-window reconciliation (Section 3.1.3).
package stream

import (
	"fmt"
	"sync"

	"repro/internal/fields"
	"repro/internal/packet"
	"repro/internal/query"
	"repro/internal/tuple"
)

// DynTables holds the dynamic-refinement filter sets, updated by the
// runtime at window boundaries and consulted by filter operators that carry
// a DynFilterTable tag. It is safe for concurrent use.
type DynTables struct {
	mu   sync.RWMutex
	sets map[string]map[string]struct{}
}

// NewDynTables returns an empty table store.
func NewDynTables() *DynTables {
	return &DynTables{sets: make(map[string]map[string]struct{})}
}

// Replace installs the allowed key set for a table, replacing any previous
// contents (the per-window refresh of Figure 4's red filters).
func (d *DynTables) Replace(table string, keys []string) {
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	d.mu.Lock()
	d.sets[table] = set
	d.mu.Unlock()
}

// Contains reports whether key is currently allowed by table. A table that
// was never installed admits nothing: finer refinement levels stay idle
// until the coarser level reports.
func (d *DynTables) Contains(table, key string) bool {
	d.mu.RLock()
	set := d.sets[table]
	_, ok := set[key]
	d.mu.RUnlock()
	return ok
}

// Size returns the number of keys installed for a table.
func (d *DynTables) Size(table string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.sets[table])
}

// opState is the per-window state of one stateful operator.
type opState struct {
	// agg maps encoded key -> running aggregate (reduce only).
	agg map[string]uint64
	// keyVals remembers the decoded key columns for rebuilding tuples.
	keyVals map[string][]tuple.Value
}

func newOpState() *opState {
	return &opState{agg: make(map[string]uint64), keyVals: make(map[string][]tuple.Value)}
}

// pipeExec executes the suffix of one pipeline, from op index start to the
// end. Inputs may be raw packets (when ops[start] is packet-phase) or
// tuples. Stateful operators hold per-window state; EndWindow drains them in
// order and returns the pipeline's outputs.
type pipeExec struct {
	ops   []query.Op
	start int
	dyn   *DynTables

	states []*opState // parallel to ops; nil for stateless ops
	// outCounts[i] counts emissions of op i this window (used by the
	// profiler to estimate the paper's N_{q,t}).
	outCounts []uint64
	// inCounts[i] counts tuples (or packets, or merged aggregates) entering
	// op i — the flight recorder's per-stage load signal. Reset together
	// with outCounts.
	inCounts []uint64
	// outputs collects tuples that fell off the end of the pipeline.
	outputs [][]tuple.Value
	// keyScratch avoids re-allocating key buffers on the hot path.
	keyScratch []byte
	// inputCount tracks packets fed this window (profiling only).
	inputCount uint64
	// lastKeys[i] is the key count of stateful op i at the moment the last
	// endWindow drained it. Downstream stateful ops are only populated by
	// upstream flushes, so counts must be captured during the drain, not
	// before it.
	lastKeys []uint64
}

func newPipeExec(ops []query.Op, start int, dyn *DynTables) *pipeExec {
	e := &pipeExec{ops: ops, start: start, dyn: dyn,
		states: make([]*opState, len(ops)), outCounts: make([]uint64, len(ops)+1),
		inCounts: make([]uint64, len(ops))}
	// State exists for every stateful op, including those before the
	// partition point: register dumps from the switch merge into the state
	// of an op that nominally ran on the switch (see mergeAgg).
	for i := range ops {
		if ops[i].Stateful() {
			e.states[i] = newOpState()
		}
	}
	return e
}

// ingestPacket pushes a raw packet through packet-phase ops starting at op
// index at; when a map converts it to a tuple the tuple continues through
// ingestTuple. Returns false if the packet was dropped by a filter.
func (e *pipeExec) ingestPacket(at int, pkt *packet.Packet) {
	for i := at; i < len(e.ops); i++ {
		e.inCounts[i]++
		o := &e.ops[i]
		if !o.PacketPhase() {
			panic(fmt.Sprintf("stream: op %d (%v) is tuple-phase but received a packet", i, o.Kind))
		}
		switch o.Kind {
		case query.OpFilter:
			if o.DynFilterTable != "" {
				v, ok := pkt.Field(o.DynKeyField)
				if !ok {
					return
				}
				key := DynKeyFromValue(o.DynKeyField, v, o.DynLevel)
				if !e.dyn.Contains(o.DynFilterTable, key) {
					return
				}
			} else {
				for j := range o.Clauses {
					if !o.Clauses[j].MatchPacket(pkt) {
						return
					}
				}
			}
			e.outCounts[i]++
		case query.OpMap:
			vals := make([]tuple.Value, len(o.Cols))
			for j := range o.Cols {
				v, ok := o.Cols[j].Expr.EvalPacket(pkt)
				if !ok {
					return // packet lacks a required field
				}
				vals[j] = v
			}
			e.outCounts[i]++
			e.ingestTuple(i+1, vals)
			return
		default:
			panic(fmt.Sprintf("stream: stateful op %v in packet phase", o.Kind))
		}
	}
	// Pipeline ended while still in packet phase: the result is the packet
	// itself; record its passage (callers that need the packets — the
	// packet-phase join path — intercept before this point).
	e.outCounts[len(e.ops)]++
}

// DynKeyFromValue builds the dynamic-filter lookup key for a single value
// masked to the filter's level. The runtime uses the same function when it
// installs the keys reported by the coarser level, so lookups always agree.
func DynKeyFromValue(f fields.ID, v tuple.Value, level int) string {
	masked := query.MaskValue(f, v, level)
	return tuple.Key([]tuple.Value{masked}, identityCols(1))
}

// ingestTuple pushes a tuple through ops starting at index at, stopping at
// the first stateful op (which absorbs it into window state).
func (e *pipeExec) ingestTuple(at int, vals []tuple.Value) {
	for i := at; i < len(e.ops); i++ {
		e.inCounts[i]++
		o := &e.ops[i]
		switch o.Kind {
		case query.OpFilter:
			if o.DynFilterTable != "" {
				key := e.dynTupleKey(o, vals)
				if !e.dyn.Contains(o.DynFilterTable, key) {
					return
				}
			} else {
				for j := range o.Clauses {
					if !o.Clauses[j].MatchTuple(vals) {
						return
					}
				}
			}
			e.outCounts[i]++
		case query.OpMap:
			out := make([]tuple.Value, len(o.Cols))
			for j := range o.Cols {
				out[j] = o.Cols[j].Expr.EvalTuple(vals)
			}
			vals = out
			e.outCounts[i]++
		case query.OpReduce:
			st := e.states[i]
			key := e.tupleKey(vals, o.KeyCols)
			if prev, ok := st.agg[key]; ok {
				st.agg[key] = o.Func.Apply(prev, vals[o.ValCol].U)
			} else {
				st.agg[key] = vals[o.ValCol].U
				st.keyVals[key] = pickVals(vals, o.KeyCols)
			}
			return
		case query.OpDistinct:
			st := e.states[i]
			key := e.tupleKey(vals, o.KeyCols)
			if _, ok := st.agg[key]; !ok {
				st.agg[key] = 1
				st.keyVals[key] = pickVals(vals, o.KeyCols)
			}
			return
		}
	}
	e.outCounts[len(e.ops)]++
	e.outputs = append(e.outputs, vals)
}

// mergeAgg folds a pre-aggregated (key, value) produced by the switch into
// the stateful op at index at, using the op's own aggregation function so
// switch-side and overflow-side contributions combine correctly.
func (e *pipeExec) mergeAgg(at int, keyVals []tuple.Value, agg uint64) {
	e.inCounts[at]++
	o := &e.ops[at]
	if !o.Stateful() {
		panic(fmt.Sprintf("stream: mergeAgg into stateless op %v", o.Kind))
	}
	st := e.states[at]
	idx := identityCols(len(keyVals))
	key := e.tupleKey(keyVals, idx)
	if prev, ok := st.agg[key]; ok {
		st.agg[key] = o.Func.Apply(prev, agg)
	} else {
		st.agg[key] = agg
		st.keyVals[key] = append([]tuple.Value(nil), keyVals...)
	}
}

// endWindow drains stateful state in pipeline order, cascading through
// downstream operators, and returns the final outputs. State is reset for
// the next window.
func (e *pipeExec) endWindow() [][]tuple.Value {
	if e.lastKeys == nil {
		e.lastKeys = make([]uint64, len(e.ops))
	}
	for i := 0; i < len(e.ops); i++ {
		st := e.states[i]
		if st == nil {
			continue
		}
		// Capture the key count now: every upstream stateful op has already
		// flushed into this one.
		e.lastKeys[i] = uint64(len(st.agg))
		o := &e.ops[i]
		for key, aggVal := range st.agg {
			kv := st.keyVals[key]
			var out []tuple.Value
			switch o.Kind {
			case query.OpReduce:
				out = make([]tuple.Value, 0, len(kv)+1)
				out = append(out, kv...)
				out = append(out, tuple.U64(aggVal))
			case query.OpDistinct:
				out = kv
			}
			e.outCounts[i]++
			e.ingestTuple(i+1, out)
		}
		e.states[i] = newOpState()
	}
	outs := e.outputs
	e.outputs = nil
	return outs
}

// resetCounts zeroes the per-op counters (profiling and flight-recorder
// granularity is one window).
func (e *pipeExec) resetCounts() {
	for i := range e.outCounts {
		e.outCounts[i] = 0
	}
	for i := range e.inCounts {
		e.inCounts[i] = 0
	}
}

// tupleKey encodes the selected columns as a grouping key, reusing the
// scratch buffer.
func (e *pipeExec) tupleKey(vals []tuple.Value, idx []int) string {
	e.keyScratch = tuple.AppendKey(e.keyScratch[:0], vals, idx)
	return string(e.keyScratch)
}

// dynTupleKey builds the masked dynamic-filter key for a tuple-phase filter.
func (e *pipeExec) dynTupleKey(o *query.Op, vals []tuple.Value) string {
	masked := make([]tuple.Value, len(o.DynKeyCols))
	for i, c := range o.DynKeyCols {
		masked[i] = query.MaskValue(o.DynKeyField, vals[c], o.DynLevel)
	}
	return tuple.Key(masked, identityCols(len(masked)))
}

func pickVals(vals []tuple.Value, idx []int) []tuple.Value {
	out := make([]tuple.Value, len(idx))
	for i, j := range idx {
		out[i] = vals[j]
	}
	return out
}

var identityColCache = func() [][]int {
	c := make([][]int, 9)
	for n := range c {
		c[n] = make([]int, n)
		for i := 0; i < n; i++ {
			c[n][i] = i
		}
	}
	return c
}()

func identityCols(n int) []int {
	if n < len(identityColCache) {
		return identityColCache[n]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
