package stream

import (
	"strconv"

	"repro/internal/telemetry"
)

// engineMetrics holds the stream processor's registry handles. Engine-wide
// totals live here; per-instance series hang off each runningQuery so the
// ingest path reaches them without a map lookup (the instance was already
// resolved to dispatch the tuple).
type engineMetrics struct {
	tuplesIn     *telemetry.Counter
	resultTuples *telemetry.Counter
	evalNS       *telemetry.Histogram
	batchFlushes *telemetry.Counter
	batchRows    *telemetry.Counter
}

// queryMetrics is the per-(query, level) instance slice of the registry.
type queryMetrics struct {
	tuplesIn *telemetry.Counter
	results  *telemetry.Counter
	evalNS   *telemetry.Histogram
}

// Instrument registers the engine's metrics against reg (nil disables) and
// retro-instruments every already-installed instance. Instances installed
// later pick the registry up automatically.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	e.reg = reg
	e.m = engineMetrics{
		tuplesIn: reg.Counter("sonata_stream_tuples_in_total",
			"Tuples (or mirrored packets) ingested by the stream processor."),
		resultTuples: reg.Counter("sonata_stream_result_tuples_total",
			"Result tuples produced across all query instances."),
		evalNS: reg.Histogram("sonata_stream_eval_ns",
			"Per-instance window-close evaluation time in nanoseconds.",
			telemetry.DurationBuckets),
		batchFlushes: reg.Counter("sonata_stream_batch_flushes_total",
			"Column-batch flushes run by the batched executor."),
		batchRows: reg.Counter("sonata_stream_batch_rows_total",
			"Tuples processed through column-batch flushes (rows per flush = ratio to flushes)."),
	}
	for _, key := range e.order {
		e.instrumentQuery(e.queries[key])
	}
}

// instrumentQuery registers one instance's labeled series.
func (e *Engine) instrumentQuery(rq *runningQuery) {
	if e.reg == nil {
		return
	}
	labels := []string{
		"qid", strconv.Itoa(int(rq.key.QID)),
		"level", strconv.Itoa(int(rq.key.Level)),
	}
	rq.m = queryMetrics{
		tuplesIn: e.reg.Counter("sonata_stream_query_tuples_in_total",
			"Tuples ingested by one (query, level) instance.", labels...),
		results: e.reg.Counter("sonata_stream_query_result_tuples_total",
			"Result tuples produced by one (query, level) instance.", labels...),
		evalNS: e.reg.Histogram("sonata_stream_query_eval_ns",
			"Window-close evaluation time of one (query, level) instance.",
			telemetry.DurationBuckets, labels...),
	}
}
