package stream

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/query"
	"repro/internal/tuple"
)

// fuzzShape builds one randomized query whose switch-side prefix
// (filter+map, entered past via LeftStart=2) feeds a tuple-phase suffix
// exercising a particular op-chain pattern. The tuple entry schema is
// always [SrcIP, DstIP, ConstV] (width 3). Parameters — thresholds, mask
// levels, aggregation functions, constants — are drawn from rng, so each
// seed explores a different chain.
func fuzzShape(rng *rand.Rand, shape int, id uint16) *query.Query {
	aggs := []query.AggFunc{query.AggSum, query.AggMax, query.AggMin}
	agg := aggs[rng.Intn(len(aggs))]
	// Thresholds from a spread of regimes: pass-most, pass-some, pass-none.
	ths := []uint64{0, 2, 5, 1 << 40}
	th := ths[rng.Intn(len(ths))]
	lvl := 8 * (1 + rng.Intn(4)) // /8 .. /32 prefix masks
	c := uint64(1 + rng.Intn(3))

	b := query.NewBuilder(fmt.Sprintf("fuzz%d", shape), time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP), query.ConstCol(1))
	switch shape {
	case 0: // stateless passthrough tail
	case 1: // single filter tail (all-filtered when th is huge)
		b = b.Filter(query.Gt(fields.SrcIP, th))
	case 2: // filter, re-map, reduce, threshold
		b = b.Filter(query.MaskEq(fields.SrcIP, 3, uint64(rng.Intn(4)))).
			Map(query.C(fields.DstIP), query.ConstCol(c)).
			Reduce(query.AggSum, fields.DstIP).
			Filter(query.Gt(fields.AggVal, th))
	case 3: // two-key reduce straight off the entry schema
		b = b.Reduce(agg, fields.SrcIP, fields.DstIP)
	case 4: // distinct then count distinct per key
		b = b.Distinct().
			Map(query.C(fields.SrcIP), query.ConstCol(1)).
			Reduce(query.AggSum, fields.SrcIP)
	case 5: // mask map then reduce (prefix aggregation)
		b = b.Map(query.MaskC(fields.SrcIP, lvl), query.C(fields.DstIP), query.ConstCol(1)).
			Reduce(agg, fields.SrcIP, fields.DstIP)
	case 6: // ratio map then threshold filter (ExprRatio incl. zero divisor)
		b = b.Map(query.C(fields.SrcIP), query.Ratio(fields.SrcIP, fields.DstIP, 100)).
			Filter(query.Ge(fields.AggVal, th))
	case 7: // diff map then max-reduce (ExprDiff saturation)
		b = b.Map(query.C(fields.SrcIP), query.Diff(fields.SrcIP, fields.DstIP)).
			Reduce(query.AggMax, fields.SrcIP)
	case 8: // filter then distinct tail
		b = b.Filter(query.Le(fields.DstIP, th)).Distinct()
	case 9: // chained filters with a shift-round bucket map between
		roundC := query.Column{Name: fields.SrcIP, Expr: query.Expr{
			Kind: query.ExprShiftRound, Shift: uint(1 + rng.Intn(3)),
			Sub: &query.Expr{Kind: query.ExprCol, Field: fields.SrcIP},
		}}
		b = b.Filter(query.Ne(fields.SrcIP, uint64(rng.Intn(8)))).
			Map(roundC, query.C(fields.DstIP), query.ConstCol(c)).
			Filter(query.Lt(fields.ConstV, c+1)).
			Reduce(query.AggSum, fields.SrcIP, fields.DstIP)
	}
	q := b.MustBuild()
	q.ID = id
	return q
}

// statefulOf returns the index and key width of the first stateful op in
// the left pipeline, or -1 when the chain is stateless.
func statefulOf(q *query.Query) (int, int) {
	for i := range q.Left.Ops {
		o := &q.Left.Ops[i]
		if o.Kind == query.OpReduce || o.Kind == query.OpDistinct {
			return i, len(o.KeyCols)
		}
	}
	return -1, 0
}

// snapshotEngineWindow closes a window on e and renders everything the
// batched path must reproduce bit-identically: result tuples (already
// deterministically sorted by the engine), the window's load metrics, and
// the per-op in/out funnels of the instance's executor (not reset here:
// no flight recorder is attached).
func snapshotEngineWindow(t *testing.T, e *Engine, key QueryKey) string {
	t.Helper()
	results, m := e.EndWindow()
	var sb strings.Builder
	fmt.Fprintf(&sb, "tuplesIn=%d perQuery=%d\n", m.TuplesIn, m.PerQuery[key])
	for _, res := range results {
		fmt.Fprintf(&sb, "q%d/%d:", res.QID, res.Level)
		for _, tp := range res.Tuples {
			sb.WriteString(" [")
			for j, v := range tp {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(v.String())
			}
			sb.WriteByte(']')
		}
		sb.WriteByte('\n')
	}
	ex := e.queries[key].left
	fmt.Fprintf(&sb, "in=%v out=%v\n", ex.inCounts, ex.outCounts)
	ex.resetCounts()
	return sb.String()
}

// TestBatchedMatchesScalarFuzz is the batched executor's randomized
// differential oracle: for every generated op chain, an identical tuple
// stream — including adversarial patterns: empty windows, all-filtered
// batches, window closes landing exactly on batch boundaries, mid-window
// register-dump merges, and explicit-entry (overflow-path) tuples — must
// produce bit-identical window snapshots from the batched engine and the
// per-tuple scalar interpreter.
func TestBatchedMatchesScalarFuzz(t *testing.T) {
	const shapes = 10
	for seed := int64(0); seed < 3*shapes; seed++ {
		shape := int(seed) % shapes
		rng := rand.New(rand.NewSource(seed))
		q := fuzzShape(rng, shape, uint16(shape+1))
		key := QueryKey{q.ID, 0}

		scalar := NewEngine(nil)
		scalar.SetScalar(true)
		batched := NewEngine(nil)
		for _, e := range []*Engine{scalar, batched} {
			if err := e.Install(q, 0, Partition{LeftStart: 2}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}

		mergeOp, keyWidth := statefulOf(q)
		// Window sizes hit batch-boundary edges exactly and at random.
		sizes := []int{0, 1, 255, 256, 257, 512, rng.Intn(700)}
		for w, n := range sizes {
			feed := func(e *Engine) {
				r := rand.New(rand.NewSource(seed*1000 + int64(w)))
				for i := 0; i < n; i++ {
					vals := []tuple.Value{
						tuple.U64(uint64(r.Intn(8))),
						tuple.U64(uint64(r.Intn(4))),
						tuple.U64(1),
					}
					switch {
					case mergeOp >= 0 && r.Intn(16) == 0:
						// Register-dump merge into the stateful op.
						kv := make([]tuple.Value, keyWidth)
						for j := range kv {
							kv[j] = tuple.U64(uint64(r.Intn(8)))
						}
						e.IngestAgg(q.ID, 0, SideLeft, mergeOp, kv, uint64(r.Intn(5)+1))
					case mergeOp >= 0 && r.Intn(16) == 0:
						// Collision-overflow path: explicit entry at the
						// stateful op itself.
						e.IngestTupleAt(q.ID, 0, SideLeft, mergeOp, vals)
					default:
						e.IngestTuple(q.ID, 0, SideLeft, vals)
					}
				}
			}
			feed(scalar)
			feed(batched)
			want := snapshotEngineWindow(t, scalar, key)
			got := snapshotEngineWindow(t, batched, key)
			if got != want {
				t.Fatalf("seed %d shape %d window %d (n=%d) diverged:\n--- scalar\n%s--- batched\n%s",
					seed, shape, w, n, want, got)
			}
		}
	}
}

// TestContainsKeyBatchMatchesScalar checks the bulk dyn-table probe against
// per-key ContainsKey over random key sets and selections.
func TestContainsKeyBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDynTables()
	var entries []string
	for i := 0; i < 50; i++ {
		entries = append(entries, DynKeyFromValue(fields.SrcIP, tuple.U64(uint64(rng.Intn(64))), 32))
	}
	d.Replace("t", entries)

	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(130)
		var keys []byte
		var ends []uint32
		var rows []int32
		sel := make([]uint64, (n+63)/64)
		want := make([]bool, n)
		live := 0
		for r := 0; r < n; r++ {
			if rng.Intn(4) == 0 {
				continue // deselected before the dyn filter
			}
			sel[r>>6] |= 1 << uint(r&63)
			v := tuple.U64(uint64(rng.Intn(96))) // some keys miss
			keys = AppendDynKey(keys, fields.SrcIP, v, 32)
			ends = append(ends, uint32(len(keys)))
			rows = append(rows, int32(r))
			want[r] = d.ContainsKey("t", AppendDynKey(nil, fields.SrcIP, v, 32))
			live++
		}
		wantLive := 0
		for _, ok := range want {
			if ok {
				wantLive++
			}
		}
		gotLive := d.ContainsKeyBatch("t", keys, ends, rows, sel, live)
		if gotLive != wantLive {
			t.Fatalf("trial %d: live = %d, want %d", trial, gotLive, wantLive)
		}
		for r := 0; r < n; r++ {
			got := sel[r>>6]&(1<<uint(r&63)) != 0
			if got != want[r] {
				t.Fatalf("trial %d row %d: selected=%v want %v", trial, r, got, want[r])
			}
		}
	}
}

// TestBatchedIngestSteadyStateZeroAlloc pins the batched ingest path's
// steady-state allocation behaviour: after warm-up, buffering tuples and
// flushing through filter+map+reduce must not allocate.
func TestBatchedIngestSteadyStateZeroAlloc(t *testing.T) {
	q := query.NewBuilder("zb", time.Second).
		Filter(query.Eq(fields.TCPFlags, fields.FlagSYN)).
		Map(query.F(fields.SrcIP), query.F(fields.DstIP), query.ConstCol(1)).
		Filter(query.Le(fields.SrcIP, 1<<32)).
		Map(query.C(fields.DstIP), query.ConstCol(1)).
		Reduce(query.AggSum, fields.DstIP).
		Filter(query.Gt(fields.AggVal, 1<<40)).
		MustBuild()
	q.ID = 1
	e := NewEngine(nil)
	if err := e.Install(q, 0, Partition{LeftStart: 2}); err != nil {
		t.Fatal(err)
	}
	vals := []tuple.Value{tuple.U64(5), tuple.U64(9), tuple.U64(1)}
	// Warm-up: grow batch columns, map buffers, bulk scratch, keytab.
	for w := 0; w < 3; w++ {
		for i := 0; i < 600; i++ {
			vals[0] = tuple.U64(uint64(i % 32))
			e.IngestTuple(1, 0, SideLeft, vals)
		}
		e.EndWindow()
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 600; i++ {
			vals[0] = tuple.U64(uint64(i % 32))
			e.IngestTuple(1, 0, SideLeft, vals)
		}
	})
	if avg > 0 {
		t.Errorf("batched ingest allocated %.2f allocs per 600-tuple run, want 0", avg)
	}
	e.EndWindow()
}
