package stream

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/query"
	"repro/internal/tuple"
)

// TestKeytabStateMatchesMapModel drives the engine's arena-backed operator
// state with a random workload and checks every window's output —
// bit-identically, including order — against a naive model built on Go maps
// plus an explicit insertion-order list. This is the differential oracle for
// the keytab rewrite: same tuples in, same tuples out, same order out.
func TestKeytabStateMatchesMapModel(t *testing.T) {
	t.Run("reduce", func(t *testing.T) {
		const th = 6
		e := NewEngine(nil)
		if err := e.Install(query1(th), 0, Partition{LeftStart: 2}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(41))
		for window := 0; window < 8; window++ {
			sums := make(map[uint64]uint64)
			var order []uint64
			touch := func(key, v uint64) {
				if _, seen := sums[key]; !seen {
					order = append(order, key)
				}
				sums[key] += v
			}
			// Mix direct tuples with pre-aggregated merges (the register-dump
			// path), over a key space small enough to guarantee hits and large
			// enough to force table growth past the initial capacity.
			n := 200 + rng.Intn(800)
			for i := 0; i < n; i++ {
				key := uint64(rng.Intn(64))
				if rng.Intn(4) == 0 {
					v := uint64(1 + rng.Intn(5))
					e.IngestAgg(1, 0, SideLeft, 2, []tuple.Value{tuple.U64(key)}, v)
					touch(key, v)
				} else {
					e.IngestTuple(1, 0, SideLeft, []tuple.Value{tuple.U64(key), tuple.U64(1)})
					touch(key, 1)
				}
			}
			results, _ := e.EndWindow()
			var want [][]tuple.Value
			for _, key := range order {
				if sums[key] > th {
					want = append(want, []tuple.Value{tuple.U64(key), tuple.U64(sums[key])})
				}
			}
			// The engine canonicalizes each result set at window close (the
			// order contract sharded runs are differentially tested against);
			// apply the same sort to the model.
			sortTuples(want)
			got := results[0].Tuples
			if len(got) != len(want) {
				t.Fatalf("window %d: %d tuples, model says %d", window, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if !got[i][j].Equal(want[i][j]) {
						t.Fatalf("window %d tuple %d: got %v, model says %v",
							window, i, got[i], want[i])
					}
				}
			}
		}
	})

	t.Run("distinct", func(t *testing.T) {
		q := query.NewBuilder("pairs", time.Second).
			Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
			Distinct().
			MustBuild()
		q.ID = 2
		e := NewEngine(nil)
		if err := e.Install(q, 0, Partition{LeftStart: 1}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(43))
		for window := 0; window < 8; window++ {
			seen := make(map[[2]uint64]bool)
			var order [][2]uint64
			n := 100 + rng.Intn(400)
			for i := 0; i < n; i++ {
				pair := [2]uint64{uint64(rng.Intn(16)), uint64(rng.Intn(16))}
				e.IngestTuple(2, 0, SideLeft,
					[]tuple.Value{tuple.U64(pair[0]), tuple.U64(pair[1])})
				if !seen[pair] {
					seen[pair] = true
					order = append(order, pair)
				}
			}
			results, _ := e.EndWindow()
			want := make([][]tuple.Value, len(order))
			for i, pair := range order {
				want[i] = []tuple.Value{tuple.U64(pair[0]), tuple.U64(pair[1])}
			}
			sortTuples(want)
			got := results[0].Tuples
			if len(got) != len(want) {
				t.Fatalf("window %d: %d tuples, model says %d", window, len(got), len(want))
			}
			for i := range want {
				if got[i][0].U != want[i][0].U || got[i][1].U != want[i][1].U {
					t.Fatalf("window %d tuple %d: got %v, model says %v",
						window, i, got[i], want[i])
				}
			}
		}
	})
}

// TestIngestSteadyStateZeroAlloc pins the tentpole's core claim: once a key
// exists in an operator's table, ingesting further tuples for it allocates
// nothing — and neither does repopulating a reset table whose arena is
// already sized (the steady-state window cycle).
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	t.Run("reduce", func(t *testing.T) {
		e := NewEngine(nil)
		if err := e.Install(query1(40), 0, Partition{LeftStart: 2}); err != nil {
			t.Fatal(err)
		}
		vals := []tuple.Value{tuple.U64(42), tuple.U64(1)}
		// Warm one full window cycle so the arena, slots, and key scratch are
		// all sized.
		e.IngestTuple(1, 0, SideLeft, vals)
		e.EndWindow()
		e.IngestTuple(1, 0, SideLeft, vals)
		if allocs := testing.AllocsPerRun(1000, func() {
			e.IngestTuple(1, 0, SideLeft, vals)
		}); allocs != 0 {
			t.Fatalf("reduce hit allocates %.1f/op, want 0", allocs)
		}
	})

	t.Run("distinct", func(t *testing.T) {
		q := query.NewBuilder("pairs", time.Second).
			Map(query.F(fields.SrcIP), query.F(fields.DstIP)).
			Distinct().
			MustBuild()
		q.ID = 2
		e := NewEngine(nil)
		if err := e.Install(q, 0, Partition{LeftStart: 1}); err != nil {
			t.Fatal(err)
		}
		vals := []tuple.Value{tuple.U64(7), tuple.U64(9)}
		e.IngestTuple(2, 0, SideLeft, vals)
		e.EndWindow()
		e.IngestTuple(2, 0, SideLeft, vals)
		if allocs := testing.AllocsPerRun(1000, func() {
			e.IngestTuple(2, 0, SideLeft, vals)
		}); allocs != 0 {
			t.Fatalf("distinct hit allocates %.1f/op, want 0", allocs)
		}
	})
}

// TestDynContainsKeyZeroAlloc pins the copy-on-write dynamic-filter lookup:
// the per-tuple membership check takes no lock and allocates nothing (the
// []byte→string conversion in the map index does not escape).
func TestDynContainsKeyZeroAlloc(t *testing.T) {
	d := NewDynTables()
	d.Replace("t", []string{DynKeyFromValue(fields.DstIP, tuple.U64(42), 32)})
	key := AppendDynKey(nil, fields.DstIP, tuple.U64(42), 32)
	if allocs := testing.AllocsPerRun(1000, func() {
		if !d.ContainsKey("t", key) {
			t.Fatal("installed key not found")
		}
	}); allocs != 0 {
		t.Fatalf("ContainsKey allocates %.1f/op, want 0", allocs)
	}
}
