package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 65535)
	base := time.Unix(1700000000, 123456000).UTC()
	pkts := [][]byte{
		{0x01},
		bytes.Repeat([]byte{0xab}, 600),
		{},
	}
	for i, p := range pkts {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), p); err != nil {
			t.Fatalf("WritePacket %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Header().LinkType != LinkTypeEthernet || r.Header().SnapLen != 65535 {
		t.Errorf("header = %+v", r.Header())
	}
	for i, want := range pkts {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if !bytes.Equal(rec.Data, want) {
			t.Errorf("record %d data mismatch: %d vs %d bytes", i, len(rec.Data), len(want))
		}
		wantTS := base.Add(time.Duration(i) * time.Millisecond)
		if !rec.TS.Equal(wantTS) {
			t.Errorf("record %d ts = %v, want %v", i, rec.TS, wantTS)
		}
		if rec.OrigLen != uint32(len(want)) {
			t.Errorf("record %d origlen = %d", i, rec.OrigLen)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 64)
	big := bytes.Repeat([]byte{0x7f}, 1500)
	if err := w.WritePacket(time.Unix(0, 0), big); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 64 {
		t.Errorf("captured %d bytes, want 64", len(rec.Data))
	}
	if rec.OrigLen != 1500 {
		t.Errorf("origlen = %d, want 1500", rec.OrigLen)
	}
}

func TestBigEndianAndNanoMagic(t *testing.T) {
	// Hand-assemble a big-endian nanosecond file with one record.
	var buf bytes.Buffer
	hdr := make([]byte, globalHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:4], MagicNanoseconds)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeRaw)
	buf.Write(hdr)
	rec := make([]byte, recordHeaderLen)
	binary.BigEndian.PutUint32(rec[0:4], 100)
	binary.BigEndian.PutUint32(rec[4:8], 999) // 999 ns
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Header().NanoRes || r.Header().LinkType != LinkTypeRaw {
		t.Errorf("header = %+v", r.Header())
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.TS.UnixNano() != 100*1e9+999 {
		t.Errorf("ts = %v", got.TS.UnixNano())
	}
}

func TestBadMagicRejected(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, globalHeaderLen))
	if _, err := NewReader(buf); err == nil {
		t.Fatal("zero magic accepted")
	}
}

func TestTruncatedRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 65535)
	w.WritePacket(time.Unix(0, 0), []byte{1, 2, 3, 4})
	w.Flush()
	raw := buf.Bytes()
	// Cut the file mid-record.
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
	// Cut the file mid-record-header.
	r, err = NewReader(bytes.NewReader(raw[:globalHeaderLen+4]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("mid-header truncation should be an error, got %v", err)
	}
}

func TestEmptyFileIsCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf, LinkTypeEthernet, 65535).Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF on empty capture, got %v", err)
	}
}
