// Package pcap reads and writes classic libpcap capture files (the format
// CAIDA traces are distributed in). Both microsecond and nanosecond magic
// variants and both byte orders are supported on read; writes use the
// microsecond little-endian form, which every tool understands.
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

const (
	// MagicMicroseconds is the classic magic for microsecond timestamps.
	MagicMicroseconds = 0xa1b2c3d4
	// MagicNanoseconds marks nanosecond-resolution captures.
	MagicNanoseconds = 0xa1b23c4d

	// LinkTypeEthernet is the DLT for Ethernet frames.
	LinkTypeEthernet = 1
	// LinkTypeRaw is the DLT for raw IP packets (CAIDA traces are often
	// distributed without layer-2 headers).
	LinkTypeRaw = 101

	globalHeaderLen = 24
	recordHeaderLen = 16
)

// Header is the global file header.
type Header struct {
	SnapLen  uint32
	LinkType uint32
	// NanoRes reports nanosecond timestamp resolution.
	NanoRes bool
}

// Record is one captured packet.
type Record struct {
	// TS is the capture timestamp.
	TS time.Time
	// OrigLen is the original packet length on the wire, which may exceed
	// len(Data) when the capture was truncated by the snap length.
	OrigLen uint32
	// Data is the captured bytes.
	Data []byte
}

// Writer writes a pcap file.
type Writer struct {
	w       *bufio.Writer
	snapLen uint32
	wrote   bool
}

// NewWriter creates a Writer that will emit a global header with the given
// link type and snap length on the first Write.
func NewWriter(w io.Writer, linkType, snapLen uint32) *Writer {
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<16), snapLen: snapLen}
	pw.writeHeader(linkType)
	return pw
}

func (w *Writer) writeHeader(linkType uint32) {
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)  // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4)  // version minor
	binary.LittleEndian.PutUint32(hdr[8:12], 0) // thiszone
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	binary.LittleEndian.PutUint32(hdr[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkType)
	w.w.Write(hdr[:])
}

// WritePacket appends one record. Data longer than the snap length is
// truncated, with OrigLen preserving the full size.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	origLen := uint32(len(data))
	if w.snapLen > 0 && origLen > w.snapLen {
		data = data[:w.snapLen]
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], origLen)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Flush writes buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a pcap file.
type Reader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	hdr   Header
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read global header: %w", err)
	}
	pr := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == MagicMicroseconds:
		pr.order = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		pr.order, pr.hdr.NanoRes = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		pr.order = binary.BigEndian
	case magicBE == MagicNanoseconds:
		pr.order, pr.hdr.NanoRes = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: bad magic %#08x", magicLE)
	}
	pr.hdr.SnapLen = pr.order.Uint32(hdr[16:20])
	pr.hdr.LinkType = pr.order.Uint32(hdr[20:24])
	return pr, nil
}

// Header returns the parsed global header.
func (r *Reader) Header() Header { return r.hdr }

// Next reads the next record. It returns io.EOF cleanly at end of file and
// io.ErrUnexpectedEOF on a truncated record. The returned Data is freshly
// allocated and safe to retain.
func (r *Reader) Next() (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: read record header: %w", io.ErrUnexpectedEOF)
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if r.hdr.SnapLen > 0 && capLen > r.hdr.SnapLen+65536 {
		return Record{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: read %d-byte record: %w", capLen, io.ErrUnexpectedEOF)
	}
	nanos := int64(frac)
	if !r.hdr.NanoRes {
		nanos *= 1000
	}
	return Record{
		TS:      time.Unix(int64(sec), nanos).UTC(),
		OrigLen: origLen,
		Data:    data,
	}, nil
}
