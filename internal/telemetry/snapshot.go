package telemetry

import "strings"

// HistogramValue is the frozen state of one histogram series.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Bounds  []uint64 `json:"bounds"`
	Buckets []uint64 `json:"buckets"` // cumulative, le semantics, +Inf last
}

// Snapshot is a point-in-time copy of every registered series. Snapshots
// are plain values: diff two of them to get per-interval rates, or hand one
// to encoding/json for the expvar view.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Snapshot freezes the registry. A nil registry yields an empty (but
// non-nil-mapped) snapshot so callers can diff unconditionally.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramValue),
	}
	r.each(func(m *metric) {
		switch m.kind {
		case kindCounter:
			s.Counters[m.name()] = m.c.Value()
		case kindGauge:
			s.Gauges[m.name()] = m.gaugeValue()
		case kindHistogram:
			s.Histograms[m.name()] = HistogramValue{
				Count:   m.h.Count(),
				Sum:     m.h.Sum(),
				Bounds:  append([]uint64(nil), m.h.bounds...),
				Buckets: m.h.Buckets(),
			}
		}
	})
	return s
}

// Diff returns the change from prev to s: counters and histogram
// counts/sums are subtracted (series absent from prev read as zero), gauges
// keep their current value. Benchmarks use this to turn cumulative
// counters into per-run deltas.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramValue, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistogramValue{
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
			Bounds: h.Bounds,
		}
		dh.Buckets = append([]uint64(nil), h.Buckets...)
		for i := range dh.Buckets {
			if i < len(p.Buckets) {
				dh.Buckets[i] -= p.Buckets[i]
			}
		}
		d.Histograms[name] = dh
	}
	return d
}

// Counter returns one counter series by full name (including any rendered
// labels), zero if absent.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// CounterSum sums every counter series whose name starts with prefix —
// the way to total a labeled family such as
// sonata_stream_tuples_in_total{...} across its instances.
func (s Snapshot) CounterSum(prefix string) uint64 {
	var total uint64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}
