package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestLabelEscapingGolden pins the text-format output for label values that
// need escaping. The exposition format defines exactly three escapes inside
// quoted label values — backslash, double-quote, and line feed — while tabs
// and non-ASCII runes pass through verbatim (the format is plain UTF-8).
func TestLabelEscapingGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sonata_hostile_total", "hostile label values",
		"path", `C:\temp\new`,
		"msg", "line1\nline2",
		"note", "tab\there \"quoted\" λ≤9").Add(1)

	var b strings.Builder
	reg.WritePrometheus(&b)

	// Labels sorted by key: msg, note, path. Tab and λ≤9 are verbatim.
	want := `sonata_hostile_total{msg="line1\nline2",note="tab` + "\t" +
		`here \"quoted\" λ≤9",path="C:\\temp\\new"} 1` + "\n"
	if got := b.String(); !strings.Contains(got, want) {
		t.Errorf("escaped series line missing\n--- want line ---\n%s--- got ---\n%s", want, got)
	}
	if !strings.Contains(b.String(), "tab\there") {
		t.Errorf("tab byte was escaped instead of passed through:\n%s", b.String())
	}
}

// TestLabelEscapingHistogram checks the le-label merge path escapes the
// existing label's value exactly once (no double escaping).
func TestLabelEscapingHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("sonata_probe_ns", "probe latency", []uint64{10},
		"target", `rack"7\a`).Observe(5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	for _, line := range []string{
		`sonata_probe_ns_bucket{target="rack\"7\\a",le="10"} 1`,
		`sonata_probe_ns_sum{target="rack\"7\\a"} 5`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("output missing %q\ngot:\n%s", line, b.String())
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`a\b`, `a\\b`},
		{`say "hi"`, `say \"hi\"`},
		{"two\nlines", `two\nlines`},
		{"tab\tstays", "tab\tstays"},
		{"λ≤9 — ok", "λ≤9 — ok"},
		{"", ""},
	}
	for _, c := range cases {
		if got := escapeLabelValue(c.in); got != c.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// lintProblems registers the given setup and returns Lint's messages.
func lintProblems(setup func(*Registry)) []string {
	reg := NewRegistry()
	setup(reg)
	return reg.Lint()
}

func wantProblem(t *testing.T, problems []string, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Errorf("lint problems %q missing %q", problems, substr)
}

func TestLintRules(t *testing.T) {
	wantProblem(t, lintProblems(func(r *Registry) {
		r.Counter("frames_total", "frames")
	}), "missing sonata_ prefix")

	wantProblem(t, lintProblems(func(r *Registry) {
		r.Counter("sonata_frames", "frames")
	}), "counter must end in _total")

	wantProblem(t, lintProblems(func(r *Registry) {
		r.Gauge("sonata_depth_total", "depth")
	}), "gauge must not end in _total")

	wantProblem(t, lintProblems(func(r *Registry) {
		r.Histogram("sonata_window_duration", "duration", []uint64{1})
	}), "histogram needs a unit suffix")

	wantProblem(t, lintProblems(func(r *Registry) {
		r.Histogram("sonata_peer_info", "peer facts", []uint64{1})
	}), "_info family must be a gauge")

	wantProblem(t, lintProblems(func(r *Registry) {
		r.Counter("sonata_frames_total", "")
	}), "empty HELP")

	wantProblem(t, lintProblems(func(r *Registry) {
		r.Counter("sonata_frames_total", "things counted")
		r.Counter("sonata_tuples_total", "things counted")
	}), "HELP text duplicates")
}

// TestLintClean: a registry following every rule — including a labeled
// family registered twice, which must be checked once — lints clean.
func TestLintClean(t *testing.T) {
	problems := lintProblems(func(r *Registry) {
		r.Counter("sonata_frames_total", "frames seen")
		r.Counter("sonata_tuples_total", "tuples per query", "qid", "1")
		r.Counter("sonata_tuples_total", "tuples per query", "qid", "2")
		r.Gauge("sonata_register_entries_used", "register occupancy")
		r.Histogram("sonata_window_ns", "window duration", []uint64{1000})
		r.Histogram("sonata_frame_bytes", "frame size", []uint64{64})
	})
	if len(problems) != 0 {
		t.Errorf("clean registry linted dirty: %q", problems)
	}
}

// TestBuildInfoLintsAndExports: the build-info and uptime gauges pass the
// naming lint, render on the Prometheus endpoint with their labels, and the
// uptime gauge is computed at collect time from the registered start.
func TestBuildInfoLintsAndExports(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, time.Now().Add(-90*time.Second))
	if problems := reg.Lint(); len(problems) != 0 {
		t.Errorf("build info metrics lint dirty: %q", problems)
	}

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{"sonata_build_info{", `goversion="go`, "sonata_process_uptime_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	s := reg.Snapshot()
	var info int64
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, "sonata_build_info{") {
			info = v
		}
	}
	if info != 1 {
		t.Errorf("sonata_build_info = %d, want constant 1", info)
	}
	if up := s.Gauges["sonata_process_uptime_seconds"]; up < 90 {
		t.Errorf("uptime gauge = %ds for a start 90s ago", up)
	}
}

// TestCounterSumEdges pins CounterSum's prefix semantics at the edges: the
// empty prefix totals every counter series, and a prefix equal to a full
// series name matches that series (plus any longer names it prefixes).
func TestCounterSumEdges(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sonata_a_total", "a").Add(3)
	reg.Counter("sonata_ab_total", "ab").Add(5)
	reg.Counter("sonata_b_total", "b", "qid", "1").Add(7)
	reg.Counter("sonata_b_total", "b", "qid", "2").Add(11)
	s := reg.Snapshot()

	if got := s.CounterSum(""); got != 26 {
		t.Errorf("CounterSum(\"\") = %d, want 26 (every counter)", got)
	}
	// "sonata_a_total" is both a complete unlabeled series name and a
	// prefix of "sonata_ab_total"'s family? It is not — prefix matching is
	// on the full series string, and "sonata_ab_total" does not start with
	// "sonata_a_total". Only the exact series matches.
	if got := s.CounterSum("sonata_a_total"); got != 3 {
		t.Errorf("CounterSum(full name) = %d, want 3", got)
	}
	// Family prefix of a labeled family sums its instances.
	if got := s.CounterSum("sonata_b_total"); got != 18 {
		t.Errorf("CounterSum(labeled family) = %d, want 18", got)
	}
	// A shared prefix crosses family boundaries by design.
	if got := s.CounterSum("sonata_a"); got != 8 {
		t.Errorf("CounterSum(\"sonata_a\") = %d, want 8", got)
	}
	if got := s.CounterSum("no_such"); got != 0 {
		t.Errorf("CounterSum(miss) = %d, want 0", got)
	}
}
