package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Lifecycle stage names for the per-window pipeline trace. One span per
// stage per window, in this order:
const (
	StageTraceSlice    = "trace_slice"    // slicing the input into windows
	StageSwitchPass    = "switch_pass"    // packets through the data plane
	StageEmitterDecode = "emitter_decode" // register dumps through the emitter
	StageStreamEval    = "stream_eval"    // stream-processor window close
	StageFilterUpdate  = "filter_update"  // dynamic-refinement table writes
	StagePublish       = "publish"        // result fan-out to subscribers
)

// StageFlightRecEvict is recorded (outside the per-window lifecycle above)
// when the flight recorder's ring overwrites a window no snapshot ever
// served — the signal that the recorder is underprovisioned.
const StageFlightRecEvict = "flightrec_evict"

// Span is one timed stage of one window's lifecycle. It serializes to a
// single JSONL line and round-trips through encoding/json.
type Span struct {
	Window     int               `json:"window"`
	Stage      string            `json:"stage"`
	StartNS    int64             `json:"start_ns"` // unix nanoseconds
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]uint64 `json:"attrs,omitempty"`
}

// Tracer appends spans as JSONL to a writer. It is safe for concurrent use
// and a nil *Tracer is a no-op, so components can carry one unconditionally.
type Tracer struct {
	mu       sync.Mutex
	w        io.Writer
	enc      *json.Encoder
	spans    uint64
	dropped  uint64
	err      error
	mSpans   *Counter
	mDropped *Counter
}

// NewTracer returns a tracer writing one JSON object per line to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, enc: json.NewEncoder(w)}
}

// Instrument exposes the tracer's write counters on reg.
func (t *Tracer) Instrument(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mSpans = reg.Counter("sonata_trace_spans_total",
		"Spans successfully written to the JSONL trace exporter.")
	t.mDropped = reg.Counter("sonata_trace_dropped_total",
		"Spans dropped by the JSONL trace exporter on write error.")
}

// Record writes one span. A span that fails to encode counts as dropped,
// not written.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(&s); err != nil {
		if t.err == nil {
			t.err = err
		}
		t.dropped++
		t.mDropped.Inc()
		return
	}
	t.spans++
	t.mSpans.Inc()
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Spans returns the number of spans successfully written.
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Dropped returns the number of spans lost to write errors.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ActiveSpan is a span in progress, returned by Start.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	start time.Time
}

// Start opens a span for the given window and stage. End (or EndAttrs)
// records it. On a nil tracer the returned span is inert.
func (t *Tracer) Start(window int, stage string) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &ActiveSpan{t: t, start: now,
		span: Span{Window: window, Stage: stage, StartNS: now.UnixNano()}}
}

// End records the span with its elapsed duration.
func (a *ActiveSpan) End() { a.EndAttrs(nil) }

// EndAttrs records the span with extra numeric attributes (e.g. tuple
// counts) attached.
func (a *ActiveSpan) EndAttrs(attrs map[string]uint64) {
	if a == nil {
		return
	}
	a.span.DurationNS = time.Since(a.start).Nanoseconds()
	a.span.Attrs = attrs
	a.t.Record(a.span)
}

// ReadSpans decodes a JSONL span stream, for tests and offline analysis.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, s)
	}
}
