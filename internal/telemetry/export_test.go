package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition output for a
// registry exercising every metric kind, labeled and unlabeled.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sonata_frames_total", "frames seen").Add(42)
	// Labels render sorted by key regardless of registration order.
	reg.Counter("sonata_tuples_total", "tuples per query", "qid", "1", "level", "16").Add(7)
	reg.Counter("sonata_tuples_total", "tuples per query", "qid", "2", "level", "24").Add(9)
	reg.Gauge("sonata_register_entries_used", "occupancy").Set(128)
	h := reg.Histogram("sonata_window_ns", "window duration", []uint64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)

	var b strings.Builder
	reg.WritePrometheus(&b)

	want := `# HELP sonata_frames_total frames seen
# TYPE sonata_frames_total counter
sonata_frames_total 42
# HELP sonata_tuples_total tuples per query
# TYPE sonata_tuples_total counter
sonata_tuples_total{level="16",qid="1"} 7
sonata_tuples_total{level="24",qid="2"} 9
# HELP sonata_register_entries_used occupancy
# TYPE sonata_register_entries_used gauge
sonata_register_entries_used 128
# HELP sonata_window_ns window duration
# TYPE sonata_window_ns histogram
sonata_window_ns_bucket{le="100"} 1
sonata_window_ns_bucket{le="1000"} 2
sonata_window_ns_bucket{le="+Inf"} 3
sonata_window_ns_sum 5550
sonata_window_ns_count 3
`
	if got := b.String(); got != want {
		t.Errorf("Prometheus output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusLabeledHistogram checks the le label merges into an
// existing label set instead of replacing it.
func TestPrometheusLabeledHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rtt_ns", "round trip", []uint64{10}, "type", "install")
	h.Observe(5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	for _, line := range []string{
		`rtt_ns_bucket{type="install",le="10"} 1`,
		`rtt_ns_bucket{type="install",le="+Inf"} 1`,
		`rtt_ns_sum{type="install"} 5`,
		`rtt_ns_count{type="install"} 1`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("output missing %q\ngot:\n%s", line, b.String())
		}
	}
}

// TestDebugMux drives the introspection endpoint in-process: /metrics must
// serve the text format, /debug/vars must include the registry snapshot
// under "sonata", and /debug/pprof/ must answer.
func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sonata_test_hits_total", "hits").Add(3)
	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "sonata_test_hits_total 3") {
		t.Errorf("/metrics: code %d, body %q", code, body)
	}
	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: code %d", code)
	}
	var vars struct {
		Sonata Snapshot `json:"sonata"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Sonata.Counters["sonata_test_hits_total"] != 3 {
		t.Errorf("expvar snapshot = %+v, want counter 3", vars.Sonata.Counters)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}

// TestServeDebug exercises the real listener path used by -debug-addr,
// binding port 0 so the test never collides.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "x").Inc()
	srv, addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("metrics body missing counter: %q", body)
	}
}
