package telemetry

import (
	"fmt"
	"strings"
)

// unitSuffixes are the unit tails a histogram family must carry so the
// series name states what its sum/buckets measure.
var unitSuffixes = []string{"_ns", "_bytes", "_seconds"}

// Lint checks every registered family against the project's metric naming
// rules and returns one message per violation (empty for a clean registry):
//
//   - every family carries the sonata_ prefix;
//   - counters end in _total, and nothing else does;
//   - _info families are gauges (the Prometheus info-metric convention:
//     a constant-1 gauge whose labels carry the facts);
//   - histograms end in a unit suffix (_ns, _bytes, _seconds);
//   - every family has non-empty HELP text;
//   - no two families share the same HELP text (a duplicate almost always
//     means a copy-pasted registration describing the wrong series).
//
// Labeled series of one family are checked once. `make check-metrics` runs
// Lint over a full deployment's registry.
func (r *Registry) Lint() []string {
	var problems []string
	seen := make(map[string]bool)
	helpOf := make(map[string]string)
	r.each(func(m *metric) {
		if seen[m.family] {
			return
		}
		seen[m.family] = true
		if !strings.HasPrefix(m.family, "sonata_") {
			problems = append(problems,
				fmt.Sprintf("%s: missing sonata_ prefix", m.family))
		}
		if m.help == "" {
			problems = append(problems,
				fmt.Sprintf("%s: empty HELP text", m.family))
		} else if prev, dup := helpOf[m.help]; dup {
			problems = append(problems,
				fmt.Sprintf("%s: HELP text duplicates %s", m.family, prev))
		} else {
			helpOf[m.help] = m.family
		}
		if strings.HasSuffix(m.family, "_info") && m.kind != kindGauge {
			problems = append(problems,
				fmt.Sprintf("%s: _info family must be a gauge", m.family))
		}
		switch m.kind {
		case kindCounter:
			if !strings.HasSuffix(m.family, "_total") {
				problems = append(problems,
					fmt.Sprintf("%s: counter must end in _total", m.family))
			}
		case kindGauge:
			if strings.HasSuffix(m.family, "_total") {
				problems = append(problems,
					fmt.Sprintf("%s: gauge must not end in _total", m.family))
			}
		case kindHistogram:
			unit := false
			for _, s := range unitSuffixes {
				if strings.HasSuffix(m.family, s) {
					unit = true
					break
				}
			}
			if !unit {
				problems = append(problems,
					fmt.Sprintf("%s: histogram needs a unit suffix (%s)",
						m.family, strings.Join(unitSuffixes, ", ")))
			}
		}
	})
	return problems
}
