package telemetry

import "testing"

// BenchmarkTelemetryCounter is the headline hot-path number: one atomic add
// per Inc, zero allocations.
func BenchmarkTelemetryCounter(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("lost increments")
	}
}

// BenchmarkTelemetryCounterNil measures the disabled path — the cost an
// uninstrumented deployment pays for instrumentation left in place.
func BenchmarkTelemetryCounterNil(b *testing.B) {
	var reg *Registry
	c := reg.Counter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryCounterParallel shows contention behaviour across
// GOMAXPROCS goroutines sharing one handle.
func BenchmarkTelemetryCounterParallel(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkTelemetryHistogram measures the bucket scan on the standard
// duration bounds.
func BenchmarkTelemetryHistogram(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_ns", "x", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) % 2_000_000)
	}
}
