// Package telemetry is the observability layer for the whole Sonata
// pipeline: a metrics registry whose hot-path handles (Counter, Gauge,
// Histogram) are allocation-free pre-registered atomics, a span tracer that
// records the per-window lifecycle as structured JSONL, and exporters
// (Prometheus text format, expvar, pprof) served over a debug HTTP
// endpoint.
//
// The design follows the production telemetry daemons that front real
// switch ASICs: components register every series once at install time and
// keep the returned handle; the per-packet path touches only that handle
// (one atomic add), never a map or a lock. A nil *Registry hands out nil
// handles whose methods are no-ops, so an uninstrumented deployment pays
// nothing — not even a branch on a package-level flag.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is usable;
// a nil *Counter is a no-op (the disabled-registry mode).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at registration
// time. Observation is a linear scan over the (few, fixed) bounds plus
// three atomic adds — no allocation, no lock. Bounds are inclusive upper
// bounds (Prometheus `le` semantics); an implicit +Inf bucket catches the
// rest. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(uint64(d.Nanoseconds()))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the cumulative per-bucket counts (le semantics), one per
// bound plus the +Inf bucket.
func (h *Histogram) Buckets() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// DurationBuckets is a general-purpose set of latency bounds in
// nanoseconds, from 1µs to 10s.
var DurationBuckets = []uint64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000,
	100_000_000, 1_000_000_000, 10_000_000_000,
}

// kind discriminates registered metrics.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series.
type metric struct {
	family string // metric name without labels
	labels string // rendered {k="v",...} or ""
	help   string
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	// gf, when set, computes the gauge's value at collection time instead of
	// reading the stored atomic (GaugeFunc registrations, e.g. uptime).
	gf func() int64
}

// gaugeValue reads a gauge metric, preferring the collect-time function.
func (m *metric) gaugeValue() int64 {
	if m.gf != nil {
		return m.gf()
	}
	return m.g.Value()
}

// name returns the full series name (family plus labels).
func (m *metric) name() string { return m.family + m.labels }

// Registry owns the registered metrics. Registration (Counter, Gauge,
// Histogram) takes a lock and may allocate; it happens at install time.
// The returned handles are lock-free. A nil *Registry returns nil handles
// everywhere, which makes instrumentation free to leave in place.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// renderLabels builds the deterministic {k="v",...} suffix from alternating
// key/value pairs, sorted by key.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be alternating key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format, which defines exactly three escapes inside quoted label values:
// backslash, double-quote, and line feed. Go's %q is close but not right —
// it additionally escapes tabs, non-printables, and non-ASCII runes, which
// the format (plain UTF-8) passes through verbatim, so scrapers would read
// a literal backslash sequence instead of the original value.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// register returns the existing metric for the series or creates it.
func (r *Registry) register(family, help string, k kind, labels []string, mk func(*metric)) *metric {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[family+ls]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", family+ls, k, m.kind))
		}
		return m
	}
	m := &metric{family: family, labels: ls, help: help, kind: k}
	mk(m)
	r.byName[m.name()] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or fetches) a counter series. Optional labels are
// alternating key/value pairs; they become part of the series identity.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, labels, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, labels, func(m *metric) { m.g = &Gauge{} }).g
}

// GaugeFunc registers a gauge series whose value is computed by fn at every
// collection (Snapshot, WritePrometheus) instead of being stored — the shape
// for derived values such as process uptime. Re-registering an existing
// series re-points it at fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	m := r.register(name, help, kindGauge, labels, func(m *metric) { m.g = &Gauge{} })
	r.mu.Lock()
	m.gf = fn
	r.mu.Unlock()
}

// Histogram registers (or fetches) a histogram series with the given
// inclusive upper bounds (ascending). Re-registering an existing series
// keeps the original bounds.
func (r *Registry) Histogram(name, help string, bounds []uint64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending", name))
		}
	}
	return r.register(name, help, kindHistogram, labels, func(m *metric) {
		b := append([]uint64(nil), bounds...)
		m.h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}).h
}

// each visits registered metrics in registration order under the lock.
func (r *Registry) each(fn func(*metric)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	for _, m := range metrics {
		fn(m)
	}
}
