package telemetry

import (
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one counter, gauge, and histogram from
// many goroutines; run under -race this doubles as the data-race proof,
// and the final values prove no increment was lost.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test counter")
	g := reg.Gauge("g", "test gauge")
	h := reg.Histogram("h_ns", "test histogram", []uint64{10, 100, 1000})

	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed + uint64(i)%1500)
			}
		}(uint64(w))
	}
	// Concurrent registration of the same series must return the same
	// handle, not a fresh one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if reg.Counter("c_total", "test counter") != c {
				t.Error("re-registration returned a different handle")
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	buckets := h.Buckets()
	if buckets[len(buckets)-1] != workers*perWorker {
		t.Errorf("+Inf bucket = %d, want %d", buckets[len(buckets)-1], workers*perWorker)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound (le)
// semantics at every boundary.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []uint64{10, 100, 1000}
	cases := []struct {
		v    uint64
		want int // bucket index the raw observation lands in
	}{
		{0, 0},
		{9, 0},
		{10, 0},   // on the bound: le semantics include it
		{11, 1},   // just past the first bound
		{100, 1},  // on the second bound
		{101, 2},  // just past
		{1000, 2}, // on the last bound
		{1001, 3}, // overflow lands in +Inf
		{^uint64(0), 3},
	}
	for _, tc := range cases {
		reg := NewRegistry()
		h := reg.Histogram("h", "boundary test", bounds)
		h.Observe(tc.v)
		buckets := h.Buckets() // cumulative
		for i, cum := range buckets {
			want := uint64(0)
			if i >= tc.want {
				want = 1 // cumulative: every bucket at/after the landing one
			}
			if cum != want {
				t.Errorf("Observe(%d): bucket[%d] = %d, want %d", tc.v, i, cum, want)
			}
		}
		if h.Sum() != tc.v {
			t.Errorf("Observe(%d): sum = %d", tc.v, h.Sum())
		}
	}
}

// TestNilHandles checks the disabled mode: a nil registry hands out nil
// handles whose every method is a safe no-op.
func TestNilHandles(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c_total", "x")
	g := reg.Gauge("g", "x")
	h := reg.Histogram("h", "x", []uint64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	if got := h.Buckets(); got != nil {
		t.Errorf("nil histogram buckets = %v, want nil", got)
	}
	// Nil registry snapshot diffs cleanly against a real one.
	s := reg.Snapshot()
	if len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestHotPathAllocationFree is the acceptance criterion: counter and gauge
// increments and histogram observations allocate nothing, instrumented or
// not.
func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "x")
	g := reg.Gauge("g", "x")
	h := reg.Histogram("h", "x", DurationBuckets)
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram

	checks := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.Add", func() { g.Add(-2) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Gauge.Set", func() { nilG.Set(1) }},
		{"nil Histogram.Observe", func() { nilH.Observe(1) }},
	}
	for _, tc := range checks {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestSnapshotDiff(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("tuples_total", "x", "qid", "1")
	c2 := reg.Counter("tuples_total", "x", "qid", "2")
	g := reg.Gauge("occupancy", "x")
	h := reg.Histogram("lat", "x", []uint64{10})

	c.Add(10)
	c2.Add(1)
	g.Set(5)
	h.Observe(4)
	before := reg.Snapshot()

	c.Add(7)
	c2.Add(2)
	g.Set(9)
	h.Observe(20)
	diff := reg.Snapshot().Diff(before)

	if got := diff.Counter(`tuples_total{qid="1"}`); got != 7 {
		t.Errorf("diff counter qid=1 = %d, want 7", got)
	}
	if got := diff.CounterSum("tuples_total"); got != 9 {
		t.Errorf("diff family sum = %d, want 9", got)
	}
	if got := diff.Gauges["occupancy"]; got != 9 {
		t.Errorf("diff gauge = %d, want current value 9", got)
	}
	hv := diff.Histograms["lat"]
	if hv.Count != 1 || hv.Sum != 20 {
		t.Errorf("diff histogram = %+v, want count 1 sum 20", hv)
	}
	if hv.Buckets[0] != 0 || hv.Buckets[1] != 1 {
		t.Errorf("diff histogram buckets = %v, want [0 1]", hv.Buckets)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("m", "x")
	reg.Gauge("m", "x")
}
