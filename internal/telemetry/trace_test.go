package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTracerRoundTrip writes the five lifecycle stages for a window and
// decodes them back: one JSON object per line, every field preserved.
func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	stages := []string{
		StageTraceSlice, StageSwitchPass, StageEmitterDecode,
		StageStreamEval, StageFilterUpdate,
	}
	for i, stage := range stages {
		s := tr.Start(3, stage)
		time.Sleep(time.Millisecond) // guarantee a non-zero duration
		s.EndAttrs(map[string]uint64{"n": uint64(i)})
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if tr.Spans() != uint64(len(stages)) {
		t.Fatalf("recorded %d spans, want %d", tr.Spans(), len(stages))
	}

	// JSONL shape: exactly one object per line, each parseable on its own.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(stages) {
		t.Fatalf("got %d lines, want %d", len(lines), len(stages))
	}
	for i, line := range lines {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %d not standalone JSON: %v", i, err)
		}
	}

	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(stages) {
		t.Fatalf("decoded %d spans, want %d", len(spans), len(stages))
	}
	for i, s := range spans {
		if s.Stage != stages[i] {
			t.Errorf("span %d stage = %q, want %q", i, s.Stage, stages[i])
		}
		if s.Window != 3 {
			t.Errorf("span %d window = %d, want 3", i, s.Window)
		}
		if s.DurationNS <= 0 {
			t.Errorf("span %d duration = %d, want > 0", i, s.DurationNS)
		}
		if s.StartNS == 0 {
			t.Errorf("span %d start_ns missing", i)
		}
		if s.Attrs["n"] != uint64(i) {
			t.Errorf("span %d attrs = %v, want n=%d", i, s.Attrs, i)
		}
	}
}

// TestNilTracer checks the disabled mode end-to-end: nil tracer, nil active
// span, all no-ops.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	s := tr.Start(0, StageSwitchPass)
	if s != nil {
		t.Fatal("nil tracer must return a nil active span")
	}
	s.End()
	s.EndAttrs(map[string]uint64{"x": 1})
	tr.Record(Span{})
	if tr.Err() != nil || tr.Spans() != 0 {
		t.Error("nil tracer must read as empty")
	}
}

// TestReadSpansMalformed checks a truncated stream reports an error rather
// than silently dropping the tail.
func TestReadSpansMalformed(t *testing.T) {
	r := strings.NewReader(`{"window":1,"stage":"switch_pass","start_ns":1,"duration_ns":2}` + "\n" + `{"window":`)
	spans, err := ReadSpans(r)
	if err == nil {
		t.Fatal("want error on truncated JSONL")
	}
	if len(spans) != 1 {
		t.Errorf("got %d complete spans before the error, want 1", len(spans))
	}
}
