package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestTracerRoundTrip writes the five lifecycle stages for a window and
// decodes them back: one JSON object per line, every field preserved.
func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	stages := []string{
		StageTraceSlice, StageSwitchPass, StageEmitterDecode,
		StageStreamEval, StageFilterUpdate,
	}
	for i, stage := range stages {
		s := tr.Start(3, stage)
		time.Sleep(time.Millisecond) // guarantee a non-zero duration
		s.EndAttrs(map[string]uint64{"n": uint64(i)})
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if tr.Spans() != uint64(len(stages)) {
		t.Fatalf("recorded %d spans, want %d", tr.Spans(), len(stages))
	}

	// JSONL shape: exactly one object per line, each parseable on its own.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(stages) {
		t.Fatalf("got %d lines, want %d", len(lines), len(stages))
	}
	for i, line := range lines {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %d not standalone JSON: %v", i, err)
		}
	}

	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(stages) {
		t.Fatalf("decoded %d spans, want %d", len(spans), len(stages))
	}
	for i, s := range spans {
		if s.Stage != stages[i] {
			t.Errorf("span %d stage = %q, want %q", i, s.Stage, stages[i])
		}
		if s.Window != 3 {
			t.Errorf("span %d window = %d, want 3", i, s.Window)
		}
		if s.DurationNS <= 0 {
			t.Errorf("span %d duration = %d, want > 0", i, s.DurationNS)
		}
		if s.StartNS == 0 {
			t.Errorf("span %d start_ns missing", i)
		}
		if s.Attrs["n"] != uint64(i) {
			t.Errorf("span %d attrs = %v, want n=%d", i, s.Attrs, i)
		}
	}
}

// TestNilTracer checks the disabled mode end-to-end: nil tracer, nil active
// span, all no-ops.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	s := tr.Start(0, StageSwitchPass)
	if s != nil {
		t.Fatal("nil tracer must return a nil active span")
	}
	s.End()
	s.EndAttrs(map[string]uint64{"x": 1})
	tr.Record(Span{})
	if tr.Err() != nil || tr.Spans() != 0 {
		t.Error("nil tracer must read as empty")
	}
}

// errWriter fails every write after the first n bytes succeed.
type errWriter struct{ budget int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestTracerWriteFailure pins the drop accounting: spans that fail to
// encode count as dropped, never as written, and the registry counters
// track both sides.
func TestTracerWriteFailure(t *testing.T) {
	tr := NewTracer(&errWriter{budget: 1 << 10})
	reg := NewRegistry()
	tr.Instrument(reg)

	var wrote int
	for i := 0; i < 50; i++ {
		tr.Record(Span{Window: i, Stage: StageSwitchPass})
		if tr.Err() == nil {
			wrote++
		}
	}
	if tr.Err() == nil {
		t.Fatal("writer never failed; budget too large")
	}
	if tr.Spans() != uint64(wrote) {
		t.Errorf("Spans() = %d, want %d (failed writes must not count)", tr.Spans(), wrote)
	}
	if tr.Spans()+tr.Dropped() != 50 {
		t.Errorf("spans %d + dropped %d != 50 recorded", tr.Spans(), tr.Dropped())
	}
	if tr.Dropped() == 0 {
		t.Error("Dropped() = 0 after write errors")
	}

	snap := reg.Snapshot()
	if got := snap.Counter("sonata_trace_spans_total"); got != tr.Spans() {
		t.Errorf("sonata_trace_spans_total = %d, want %d", got, tr.Spans())
	}
	if got := snap.Counter("sonata_trace_dropped_total"); got != tr.Dropped() {
		t.Errorf("sonata_trace_dropped_total = %d, want %d", got, tr.Dropped())
	}
	if problems := reg.Lint(); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}

	// Instrument must be nil-safe in both directions.
	var nilTr *Tracer
	nilTr.Instrument(reg)
	tr.Instrument(nil)
	if nilTr.Dropped() != 0 {
		t.Error("nil tracer Dropped() != 0")
	}
}

// TestReadSpansMalformed checks a truncated stream reports an error rather
// than silently dropping the tail.
func TestReadSpansMalformed(t *testing.T) {
	r := strings.NewReader(`{"window":1,"stage":"switch_pass","start_ns":1,"duration_ns":2}` + "\n" + `{"window":`)
	spans, err := ReadSpans(r)
	if err == nil {
		t.Fatal("want error on truncated JSONL")
	}
	if len(spans) != 1 {
		t.Errorf("got %d complete spans before the error, want 1", len(spans))
	}
}
