package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Families keep registration order;
// HELP/TYPE headers are emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	lastFamily := ""
	r.each(func(m *metric) {
		if m.family != lastFamily {
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.family, m.kind)
			lastFamily = m.family
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", m.name(), m.c.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s %d\n", m.name(), m.gaugeValue())
		case kindHistogram:
			writeHistogram(w, m)
		}
	})
}

// writeHistogram renders one histogram series: cumulative buckets with an
// le label merged into any registered labels, then _sum and _count.
func writeHistogram(w io.Writer, m *metric) {
	buckets := m.h.Buckets()
	for i, cum := range buckets {
		le := "+Inf"
		if i < len(m.h.bounds) {
			le = fmt.Sprintf("%d", m.h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.family, mergeLabel(m.labels, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", m.family, m.labels, m.h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", m.family, m.labels, m.h.Count())
}

// mergeLabel appends one label to an already-rendered label set, using the
// same text-format escaping as renderLabels.
func mergeLabel(rendered, k, v string) string {
	if rendered == "" {
		return fmt.Sprintf(`{%s="%s"}`, k, escapeLabelValue(v))
	}
	return fmt.Sprintf(`%s,%s="%s"}`, rendered[:len(rendered)-1], k, escapeLabelValue(v))
}

// Handler serves the registry as Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// expvar publication: the expvar package forbids double-Publish, so the
// variable is registered once and reads through an atomic pointer that
// always reflects the most recently exposed registry.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry's snapshot under the "sonata" expvar
// variable (visible at /debug/vars). Later calls re-point the variable at
// the new registry.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("sonata", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// NewDebugMux wires the full introspection surface for a registry:
//
//	/metrics       Prometheus text format
//	/debug/vars    expvar JSON (incl. the "sonata" snapshot)
//	/debug/pprof/  the standard pprof index, profiles, and traces
func NewDebugMux(r *Registry) *http.ServeMux {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr in a background goroutine
// and returns the listening server (Close it to stop). The bound address
// is available via the returned listener address, which matters when addr
// uses port 0.
func ServeDebug(addr string, r *Registry) (*http.Server, net.Addr, error) {
	return ServeDebugMux(addr, NewDebugMux(r))
}

// ServeDebugMux is ServeDebug for a caller-assembled mux — start from
// NewDebugMux, mount extra handlers (e.g. /debug/queries), then serve.
func ServeDebugMux(addr string, mux *http.ServeMux) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
