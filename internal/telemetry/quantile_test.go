package telemetry

import "testing"

// TestHistogramQuantile checks interpolation against a known distribution,
// on both the live histogram and its frozen snapshot.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sonata_test_q_ns", "Quantile test histogram in nanoseconds.",
		[]uint64{100, 200, 400, 800})

	// 100 observations uniform in (0, 100]: p50 lands mid-bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(uint64(i))
	}
	if got := h.Quantile(0.5); got < 40 || got > 60 {
		t.Errorf("p50 = %d, want ≈50", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %d, want bucket bound 100", got)
	}

	// One outlier past every bound clamps to the largest finite bound.
	h.Observe(10_000)
	if got := h.Quantile(1.0); got != 800 {
		t.Errorf("p100 with +Inf outlier = %d, want clamp to 800", got)
	}

	// Frozen snapshot agrees with the live histogram.
	snap := reg.Snapshot()
	hv := snap.Histograms["sonata_test_q_ns"]
	if live, frozen := h.Quantile(0.99), hv.Quantile(0.99); live != frozen {
		t.Errorf("live p99 %d != snapshot p99 %d", live, frozen)
	}

	// Edge cases: nil histogram, empty value.
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile != 0")
	}
	if (HistogramValue{}).Quantile(0.5) != 0 {
		t.Error("empty HistogramValue quantile != 0")
	}

	// Mass concentrated in one bucket: quantiles stay inside it.
	reg2 := NewRegistry()
	h2 := reg2.Histogram("sonata_test_q2_ns", "Second quantile test histogram in nanoseconds.",
		[]uint64{100, 200})
	for i := 0; i < 10; i++ {
		h2.Observe(150)
	}
	if got := h2.Quantile(0.5); got <= 100 || got > 200 {
		t.Errorf("single-bucket p50 = %d, want in (100, 200]", got)
	}
}
