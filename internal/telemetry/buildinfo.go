package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterBuildInfo exposes process identity on the registry, following the
// Prometheus *_info convention: a constant-1 gauge whose labels carry the
// build facts, plus a collect-time uptime gauge anchored at start. Both
// binaries call this right after creating their registry, so every scrape
// states which build produced it.
//
//	sonata_build_info{goversion="go1.24.0",version="(devel)"} 1
//	sonata_process_uptime_seconds 42
func RegisterBuildInfo(r *Registry, start time.Time) {
	if r == nil {
		return
	}
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	r.Gauge("sonata_build_info",
		"Constant 1; labels carry the module version and Go toolchain.",
		"version", version, "goversion", runtime.Version()).Set(1)
	r.GaugeFunc("sonata_process_uptime_seconds",
		"Seconds since the process registered its build info.",
		func() int64 { return int64(time.Since(start).Seconds()) })
}
