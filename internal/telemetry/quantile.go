package telemetry

// quantileFromBuckets resolves the q-th quantile from cumulative bucket
// counts (le semantics, +Inf last) over the given finite bounds, with
// linear interpolation inside the containing bucket. The +Inf bucket
// clamps to the largest finite bound — the histogram cannot say more.
func quantileFromBuckets(bounds, cum []uint64, q float64) uint64 {
	if len(cum) == 0 || cum[len(cum)-1] == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	for i, c := range cum {
		if float64(c) < target {
			continue
		}
		if i >= len(bounds) { // +Inf bucket
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		var lo uint64
		var below float64
		if i > 0 {
			lo = bounds[i-1]
			below = float64(cum[i-1])
		}
		width := float64(bounds[i] - lo)
		inBucket := float64(c) - below
		if inBucket <= 0 {
			return bounds[i]
		}
		return lo + uint64(width*(target-below)/inBucket)
	}
	return bounds[len(bounds)-1]
}

// Quantile returns an approximate q-th quantile (0 < q <= 1) of the
// observed values, interpolated within the histogram's buckets. Nil-safe.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	return quantileFromBuckets(h.bounds, h.Buckets(), q)
}

// Quantile returns an approximate q-th quantile of a frozen histogram
// series, interpolated within its buckets.
func (v HistogramValue) Quantile(q float64) uint64 {
	return quantileFromBuckets(v.Bounds, v.Buckets, q)
}
