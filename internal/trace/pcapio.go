package trace

import (
	"fmt"
	"io"
	"time"

	"repro/internal/pcap"
)

// WritePcap streams every window of g to w as a classic pcap capture.
// Virtual timestamps are anchored at epoch, which keeps files byte-for-byte
// reproducible.
func WritePcap(w io.Writer, g *Generator) error {
	return WritePcapParallel(w, g, 1)
}

// WritePcapParallel is WritePcap with window generation spread over up to
// workers goroutines. Windows are written in order and generation is pure
// per window, so the output bytes are identical at any worker count.
func WritePcapParallel(w io.Writer, g *Generator, workers int) error {
	pw := pcap.NewWriter(w, pcap.LinkTypeEthernet, 65535)
	var werr error
	g.GenerateWindows(workers, func(win Window) {
		if werr != nil {
			return
		}
		for _, rec := range win.Records {
			if err := pw.WritePacket(time.Unix(0, 0).Add(rec.TS), rec.Data); err != nil {
				werr = fmt.Errorf("trace: window %d: %w", win.Index, err)
				return
			}
		}
	})
	if werr != nil {
		return werr
	}
	return pw.Flush()
}

// ReadPcap loads a capture into records with timestamps relative to the
// first packet.
func ReadPcap(r io.Reader) ([]Record, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	var base time.Time
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if base.IsZero() {
			base = rec.TS
		}
		recs = append(recs, Record{TS: rec.TS.Sub(base), Data: rec.Data})
	}
	return recs, nil
}

// StandardVictim is the case-study victim address used throughout the
// evaluation; it matches the 99.7.0.25 host from the paper's Figure 9.
var StandardVictim = ip4(99, 7, 0, 25)

func ip4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// StandardAttackSuite registers one instance of every attack class on g,
// sized relative to the generator's background budget so the needles stay
// needles as the workload scales. Attacks run from the beginning through
// the end of the trace so every window carries signal, except Zorro, whose
// phased timeline is driven by the case study.
func StandardAttackSuite(g *Generator) {
	cfg := g.Config()
	full := span{0, g.Duration()}
	rate := cfg.PacketsPerWindow

	g.AddAttack(NewSYNFlood(StandardVictim, 256, rate/50, full.Start, full.End))
	g.AddAttack(NewSSHBruteForce(ip4(99, 7, 1, 40), 48, rate/200, full.Start, full.End))
	g.AddAttack(NewSuperspreader(ip4(99, 9, 3, 7), 600, rate/100, full.Start, full.End))
	g.AddAttack(NewPortScan(ip4(10, 200, 0, 1), ip4(99, 7, 2, 50), 800, rate/100, full.Start, full.End))
	g.AddAttack(NewDDoS(ip4(99, 8, 0, 10), 900, rate/50, full.Start, full.End))
	g.AddAttack(NewTCPIncomplete(ip4(99, 8, 1, 20), 300, rate/100, full.Start, full.End))
	g.AddAttack(NewSlowloris(ip4(99, 7, 3, 80), rate/200, full.Start, full.End))
	g.AddAttack(NewDNSTunnel(ip4(99, 9, 0, 66), ip4(8, 8, 8, 8), "exfil.bad-domain.com", rate/200, full.Start, full.End))
	g.AddAttack(NewDNSReflection(ip4(99, 8, 2, 30), 400, rate/50, full.Start, full.End))
}
