package trace

import (
	"math"
	"math/rand"

	"repro/internal/packet"
)

// hostPopulation is a set of IPv4 addresses with Zipf-ranked popularity,
// clustered into a small number of /8, /16 and /24 prefixes so that coarse
// aggregation concentrates traffic (the property dynamic refinement
// exploits).
type hostPopulation struct {
	addrs []uint32
	zipfS float64
}

// newHostPopulation builds n hosts spread over the given number of /8
// groups. Within each /8 the /16 and /24 bytes are drawn from small pools so
// siblings share prefixes. The same rng must be used for sampling to keep
// generation deterministic.
func newHostPopulation(r *rand.Rand, n, slash8s int, zipfS float64) *hostPopulation {
	if n <= 0 {
		panic("trace: empty host population")
	}
	if slash8s <= 0 {
		slash8s = 1
	}
	// Pick distinct /8 values, avoiding 0, 10 (used by attack actors), 127,
	// and 224+ (multicast).
	used := map[byte]bool{0: true, 10: true, 127: true}
	tops := make([]byte, 0, slash8s)
	for len(tops) < slash8s {
		b := byte(r.Intn(223) + 1)
		if used[b] {
			continue
		}
		used[b] = true
		tops = append(tops, b)
	}
	// Each /8 gets a handful of /16s; each /16 a handful of /24s.
	addrs := make([]uint32, 0, n)
	seen := make(map[uint32]bool, n)
	for len(addrs) < n {
		top := tops[r.Intn(len(tops))]
		b16 := byte(r.Intn(8))  // 8 /16s per /8
		b24 := byte(r.Intn(16)) // 16 /24s per /16
		host := byte(r.Intn(254) + 1)
		a := packet.IPv4Addr(top, b16, b24, host)
		if seen[a] {
			continue
		}
		seen[a] = true
		addrs = append(addrs, a)
	}
	return &hostPopulation{addrs: addrs, zipfS: zipfS}
}

// hostSampler draws hosts with Zipf-ranked popularity from its own rng, so
// each window samples independently: windows own their randomness and can be
// generated in any order — or concurrently — with identical results.
type hostSampler struct {
	addrs []uint32
	zipf  *rand.Zipf
}

// sampler binds a popularity sampler over the population to r.
func (h *hostPopulation) sampler(r *rand.Rand) *hostSampler {
	return &hostSampler{addrs: h.addrs, zipf: rand.NewZipf(r, h.zipfS, 1, uint64(len(h.addrs)-1))}
}

// pick returns a host with Zipf-ranked popularity.
func (s *hostSampler) pick() uint32 {
	return s.addrs[s.zipf.Uint64()]
}

// pickUniform returns a host uniformly at random.
func (h *hostPopulation) pickUniform(r *rand.Rand) uint32 {
	return h.addrs[r.Intn(len(h.addrs))]
}

// servicePort draws a destination port from a realistic service mix.
func servicePort(r *rand.Rand) uint16 {
	switch x := r.Float64(); {
	case x < 0.35:
		return 443
	case x < 0.60:
		return 80
	case x < 0.70:
		return 53
	case x < 0.73:
		return 22
	case x < 0.745:
		return 25
	case x < 0.755:
		return 23
	case x < 0.77:
		return 123
	default:
		return uint16(1024 + r.Intn(64511))
	}
}

// ephemeralPort draws a client-side source port.
func ephemeralPort(r *rand.Rand) uint16 {
	return uint16(32768 + r.Intn(28000))
}

// paretoInt draws a Pareto-distributed integer with the given minimum and
// shape alpha, capped at max to bound memory.
func paretoInt(r *rand.Rand, min int, alpha float64, max int) int {
	u := r.Float64()
	if u == 0 {
		u = 1e-12
	}
	v := float64(min) / math.Pow(u, 1/alpha)
	n := int(v)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}
