// Package trace generates and replays synthetic packet traces that stand in
// for the CAIDA backbone captures used in the paper.
//
// The paper's planner and refinement machinery depend on three statistical
// properties of real traffic, all of which the generator reproduces:
//
//  1. heavy-tailed per-key packet counts (a few hosts dominate),
//  2. prefix locality (hosts cluster inside shared /8, /16, /24 prefixes, so
//     aggregating at a coarse prefix concentrates traffic the way
//     prefix-preserving-anonymized CAIDA data does), and
//  3. tiny needle-to-haystack ratios (the traffic satisfying a query is a
//     vanishing fraction of the total).
//
// Generation is deterministic given a seed, and is performed window by
// window so multi-gigabyte traces never need to be materialized at once.
package trace

import (
	"sort"
	"time"
)

// Record is one packet with its virtual capture time, expressed as an offset
// from the start of the trace.
type Record struct {
	TS   time.Duration
	Data []byte
}

// Window is the set of packets falling inside one query window, sorted by
// timestamp.
type Window struct {
	Index   int
	Start   time.Duration
	Records []Record
}

// AttackKind labels the injected event classes, one per telemetry query in
// Table 3 of the paper.
type AttackKind string

const (
	KindSYNFlood      AttackKind = "syn-flood"
	KindSSHBrute      AttackKind = "ssh-brute"
	KindSuperspreader AttackKind = "superspreader"
	KindPortScan      AttackKind = "port-scan"
	KindDDoS          AttackKind = "ddos"
	KindIncomplete    AttackKind = "tcp-incomplete"
	KindSlowloris     AttackKind = "slowloris"
	KindDNSTunnel     AttackKind = "dns-tunnel"
	KindZorro         AttackKind = "zorro"
	KindDNSReflection AttackKind = "dns-reflection"
	KindNewTCP        AttackKind = "new-tcp-conns"
)

// GroundTruth records what an injected attack did, so tests and the
// case-study harness can check detections against it.
type GroundTruth struct {
	Kind     AttackKind
	Victim   uint32 // the key the query should report (vantage-dependent)
	Attacker uint32
	Domain   string // for DNS attacks
	Start    time.Duration
	End      time.Duration
}

// sortRecords orders records by timestamp, with a stable tiebreak so
// generation is fully deterministic.
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].TS < recs[j].TS })
}

// Slice groups an already-sorted record list into windows of width w. Empty
// trailing windows are preserved up to total, so replay timing matches the
// trace duration even when traffic is bursty.
func Slice(recs []Record, w, total time.Duration) []Window {
	if w <= 0 {
		panic("trace: non-positive window")
	}
	n := int((total + w - 1) / w)
	if n == 0 {
		n = 1
	}
	wins := make([]Window, n)
	for i := range wins {
		wins[i].Index = i
		wins[i].Start = time.Duration(i) * w
	}
	for _, r := range recs {
		i := int(r.TS / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		wins[i].Records = append(wins[i].Records, r)
	}
	return wins
}
