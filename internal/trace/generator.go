package trace

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
)

// Config parameterizes the synthetic workload.
type Config struct {
	// Seed makes the whole trace deterministic.
	Seed int64
	// Window is the query window W; generation is organized per window.
	Window time.Duration
	// Windows is the number of windows in the trace.
	Windows int
	// PacketsPerWindow is the approximate background packet budget per
	// window (attack traffic is added on top).
	PacketsPerWindow int
	// Hosts is the size of each of the client and server populations.
	Hosts int
	// Slash8s controls prefix clustering: how many distinct /8s the server
	// population spans.
	Slash8s int
	// ZipfS is the Zipf skew of host popularity (must be > 1).
	ZipfS float64
	// DNSShare is the fraction of UDP flows that carry DNS.
	DNSShare float64
	// Payloads attaches real payload bytes to telnet traffic (needed by the
	// Zorro query); other traffic uses padding only to emulate size.
	Payloads bool
}

// DefaultConfig returns a workload comparable in shape (not volume) to the
// paper's CAIDA trace: heavy-tailed, prefix-clustered, mostly TCP.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Window:           3 * time.Second,
		Windows:          6,
		PacketsPerWindow: 100_000,
		Hosts:            8_000,
		Slash8s:          12,
		ZipfS:            1.2,
		DNSShare:         0.5,
		Payloads:         true,
	}
}

// WindowCtx carries per-window generation context to attack injectors.
type WindowCtx struct {
	Index int
	Start time.Duration
	Width time.Duration
	Rand  *rand.Rand
}

// rel converts a fraction of the window into an absolute record timestamp.
func (w WindowCtx) rel(frac float64) time.Duration {
	return w.Start + time.Duration(frac*float64(w.Width))
}

// Attack injects packets for one event class and reports its ground truth.
type Attack interface {
	Truth() GroundTruth
	// EmitWindow appends this attack's packets for the given window.
	EmitWindow(w WindowCtx, emit func(Record))
}

// Generator produces trace windows deterministically. WindowRecords is pure
// per window — all sampling state is derived from (Seed, window index) — so
// windows may be generated in any order or concurrently (see GenerateWindows).
type Generator struct {
	cfg     Config
	clients *hostPopulation
	servers *hostPopulation
	domains []string
	attacks []Attack
}

// winSamplers holds the window-scoped popularity samplers the background
// traffic draws from. They replace generator-wide samplers (whose shared rng
// made window generation order-dependent) without changing the sampled
// distributions.
type winSamplers struct {
	clients *hostSampler
	servers *hostSampler
	domZipf *rand.Zipf
}

// NewGenerator validates cfg and builds the host and domain populations.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Window <= 0 || cfg.Windows <= 0 {
		return nil, fmt.Errorf("trace: window %v x %d invalid", cfg.Window, cfg.Windows)
	}
	if cfg.PacketsPerWindow <= 0 {
		return nil, fmt.Errorf("trace: PacketsPerWindow must be positive")
	}
	if cfg.Hosts < 16 {
		return nil, fmt.Errorf("trace: need at least 16 hosts, got %d", cfg.Hosts)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("trace: ZipfS must exceed 1, got %v", cfg.ZipfS)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		cfg:     cfg,
		clients: newHostPopulation(r, cfg.Hosts, cfg.Slash8s, cfg.ZipfS),
		servers: newHostPopulation(r, cfg.Hosts, cfg.Slash8s, cfg.ZipfS),
	}
	g.domains = make([]string, 2000)
	tlds := []string{"com", "net", "org", "io"}
	for i := range g.domains {
		g.domains[i] = fmt.Sprintf("site%04d.%s", i, tlds[r.Intn(len(tlds))])
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// AddAttack registers an injector.
func (g *Generator) AddAttack(a Attack) { g.attacks = append(g.attacks, a) }

// Truth returns the ground truth of every registered attack.
func (g *Generator) Truth() []GroundTruth {
	out := make([]GroundTruth, len(g.attacks))
	for i, a := range g.attacks {
		out[i] = a.Truth()
	}
	return out
}

// Windows returns the number of windows in the trace.
func (g *Generator) Windows() int { return g.cfg.Windows }

// Duration returns the virtual length of the trace.
func (g *Generator) Duration() time.Duration {
	return time.Duration(g.cfg.Windows) * g.cfg.Window
}

// WindowRecords generates all packets (background plus attacks) for window
// i, sorted by timestamp. Each call regenerates deterministically, so
// callers may drop the slice and re-request it.
func (g *Generator) WindowRecords(i int) Window {
	if i < 0 || i >= g.cfg.Windows {
		panic(fmt.Sprintf("trace: window %d out of range [0,%d)", i, g.cfg.Windows))
	}
	start := time.Duration(i) * g.cfg.Window
	recs := make([]Record, 0, g.cfg.PacketsPerWindow+g.cfg.PacketsPerWindow/8)
	emit := func(r Record) { recs = append(recs, r) }

	// The popularity samplers get an rng of their own (distinct from the
	// background stream) so the number of draws a Zipf rejection loop burns
	// never shifts the flow-level randomness.
	sr := rand.New(rand.NewSource(g.cfg.Seed + int64(i)*1_000_003 + 29))
	s := &winSamplers{
		clients: g.clients.sampler(sr),
		servers: g.servers.sampler(sr),
		domZipf: rand.NewZipf(sr, g.cfg.ZipfS, 1, uint64(len(g.domains)-1)),
	}

	bg := rand.New(rand.NewSource(g.cfg.Seed + int64(i)*1_000_003 + 17))
	g.emitBackground(WindowCtx{Index: i, Start: start, Width: g.cfg.Window, Rand: bg}, s, emit)

	for ai, a := range g.attacks {
		ar := rand.New(rand.NewSource(g.cfg.Seed + int64(i)*1_000_003 + int64(ai+1)*7_919))
		a.EmitWindow(WindowCtx{Index: i, Start: start, Width: g.cfg.Window, Rand: ar}, emit)
	}
	sortRecords(recs)
	return Window{Index: i, Start: start, Records: recs}
}

// GenerateWindows produces every window of the trace using up to workers
// goroutines and delivers them to fn in index order from the calling
// goroutine. Window generation is pure per window (all sampling state is
// derived from the seed and the window index), so the records are
// byte-identical at any worker count.
func (g *Generator) GenerateWindows(workers int, fn func(Window)) {
	n := g.cfg.Windows
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(g.WindowRecords(i))
		}
		return
	}
	out := make([]chan Window, n)
	for i := range out {
		out[i] = make(chan Window, 1)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] <- g.WindowRecords(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		fn(<-out[i])
	}
	wg.Wait()
}

// emitBackground fills the window's background packet budget with flows.
func (g *Generator) emitBackground(w WindowCtx, s *winSamplers, emit func(Record)) {
	budget := g.cfg.PacketsPerWindow
	count := 0
	emitCounted := func(r Record) {
		emit(r)
		count++
	}
	for count < budget {
		switch x := w.Rand.Float64(); {
		case x < 0.84:
			g.emitTCPFlow(w, s, emitCounted)
		case x < 0.98:
			g.emitUDPFlow(w, s, emitCounted)
		default:
			g.emitOther(w, s, emitCounted)
		}
	}
}

var (
	macA = [6]byte{0x02, 0, 0, 0, 0, 0x01}
	macB = [6]byte{0x02, 0, 0, 0, 0, 0x02}
)

// frameSize pads a frame spec to a realistic wire size drawn from a bimodal
// packet-size mix.
func frameSize(r *rand.Rand) int {
	switch x := r.Float64(); {
	case x < 0.45:
		return 1500
	case x < 0.70:
		return 576 + r.Intn(300)
	default:
		return 60 + r.Intn(80)
	}
}

func (g *Generator) emitTCPFlow(w WindowCtx, s *winSamplers, emit func(Record)) {
	r := w.Rand
	client := s.clients.pick()
	server := s.servers.pick()
	sport := ephemeralPort(r)
	dport := servicePort(r)
	npkts := paretoInt(r, 4, 1.3, 48)
	startFrac := r.Float64() * 0.9
	span := (0.05 + r.Float64()*0.5) * (1 - startFrac) // flow stays inside window
	step := span / float64(npkts)

	ts := func(k int) time.Duration { return w.rel(startFrac + step*float64(k)) }
	seq := r.Uint32()

	// Handshake: SYN, SYN-ACK, ACK.
	emit(Record{ts(0), packet.BuildFrame(nil, &packet.FrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: client, DstIP: server, Proto: 6,
		SrcPort: sport, DstPort: dport, TCPFlags: flagSYN, Seq: seq, Pad: 60,
	})})
	emit(Record{ts(1), packet.BuildFrame(nil, &packet.FrameSpec{
		SrcMAC: macB, DstMAC: macA, SrcIP: server, DstIP: client, Proto: 6,
		SrcPort: dport, DstPort: sport, TCPFlags: flagSYN | flagACK, Seq: r.Uint32(), Ack: seq + 1, Pad: 60,
	})})
	emit(Record{ts(2), packet.BuildFrame(nil, &packet.FrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: client, DstIP: server, Proto: 6,
		SrcPort: sport, DstPort: dport, TCPFlags: flagACK, Seq: seq + 1, Pad: 60,
	})})

	// Data: mostly server to client.
	for k := 3; k < npkts-1; k++ {
		var payload []byte
		if g.cfg.Payloads && dport == 23 {
			payload = telnetChatter(r)
		}
		if r.Float64() < 0.7 {
			emit(Record{ts(k), packet.BuildFrame(nil, &packet.FrameSpec{
				SrcMAC: macB, DstMAC: macA, SrcIP: server, DstIP: client, Proto: 6,
				SrcPort: dport, DstPort: sport, TCPFlags: flagACK | flagPSH,
				Payload: payload, Pad: frameSize(r),
			})})
		} else {
			emit(Record{ts(k), packet.BuildFrame(nil, &packet.FrameSpec{
				SrcMAC: macA, DstMAC: macB, SrcIP: client, DstIP: server, Proto: 6,
				SrcPort: sport, DstPort: dport, TCPFlags: flagACK,
				Payload: payload, Pad: 60,
			})})
		}
	}
	// Most flows close cleanly; a small tail stays incomplete, which gives
	// the TCP-incomplete-flows query a realistic background level.
	if r.Float64() < 0.92 {
		emit(Record{ts(npkts - 1), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: client, DstIP: server, Proto: 6,
			SrcPort: sport, DstPort: dport, TCPFlags: flagFIN | flagACK, Pad: 60,
		})})
	}
}

func (g *Generator) emitUDPFlow(w WindowCtx, s *winSamplers, emit func(Record)) {
	r := w.Rand
	client := s.clients.pick()
	if r.Float64() < g.cfg.DNSShare {
		g.emitDNSExchange(w, s, client, emit)
		return
	}
	server := s.servers.pick()
	sport := ephemeralPort(r)
	dport := servicePort(r)
	n := 1 + r.Intn(8)
	startFrac := r.Float64() * 0.95
	for k := 0; k < n; k++ {
		emit(Record{w.rel(startFrac + float64(k)*0.002), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: client, DstIP: server, Proto: 17,
			SrcPort: sport, DstPort: dport, Pad: frameSize(r),
		})})
	}
}

func (g *Generator) emitDNSExchange(w WindowCtx, s *winSamplers, client uint32, emit func(Record)) {
	r := w.Rand
	resolver := s.servers.pick()
	sport := ephemeralPort(r)
	dom := g.domains[s.domZipf.Uint64()]
	qname := dom
	if r.Float64() < 0.6 {
		qname = "www." + dom
	}
	id := uint16(r.Uint32())
	startFrac := r.Float64() * 0.95
	spec := packet.FrameSpec{SrcMAC: macA, DstMAC: macB, SrcIP: client, DstIP: resolver, SrcPort: sport}
	emit(Record{w.rel(startFrac), packet.BuildDNSQuery(nil, &spec, id, qname, packet.DNSTypeA)})
	// Response with 1-3 A records.
	answers := make([]packet.DNSRecord, 1+r.Intn(3))
	for i := range answers {
		addr := g.servers.pickUniform(r)
		answers[i] = packet.DNSRecord{Name: qname, Type: packet.DNSTypeA, Class: 1, TTL: 300,
			Data: []byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)}}
	}
	rspec := packet.FrameSpec{SrcMAC: macB, DstMAC: macA, SrcIP: resolver, DstIP: client, DstPort: sport}
	emit(Record{w.rel(startFrac + 0.001), packet.BuildDNSResponse(nil, &rspec, id, qname, packet.DNSTypeA, answers)})
}

func (g *Generator) emitOther(w WindowCtx, s *winSamplers, emit func(Record)) {
	r := w.Rand
	emit(Record{w.rel(r.Float64()), packet.BuildFrame(nil, &packet.FrameSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: s.clients.pick(), DstIP: s.servers.pick(),
		Proto: 1, Pad: 84,
	})})
}

func telnetChatter(r *rand.Rand) []byte {
	lines := []string{"login: admin\r\n", "Password: \r\n", "$ ls -la\r\n", "$ uptime\r\n", "$ cat /proc/cpuinfo\r\n"}
	return []byte(lines[r.Intn(len(lines))])
}

// TCP flag bits (duplicated from fields to keep this package free of a
// dependency on the query layer).
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagPSH = 1 << 3
	flagACK = 1 << 4
)
